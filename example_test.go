package selfsim_test

// Testable godoc examples for the public API: these render on the package
// documentation page and are verified by `go test`.

import (
	"fmt"

	selfsim "repro"
)

// The quickstart: minimum consensus through link churn.
func ExampleSimulate() {
	g := selfsim.Ring(8)
	environment := selfsim.EdgeChurn(g, 0.3)
	res, err := selfsim.Simulate[int](selfsim.NewMin(), environment,
		[]int{9, 4, 7, 1, 8, 2, 6, 5},
		selfsim.Options{Seed: 1, StopOnConverged: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("final:", res.Final)
	// Output:
	// converged: true
	// final: [1 1 1 1 1 1 1 1]
}

// Non-consensus: one agent collects the sum (§4.2).
func ExampleNewSum() {
	res, err := selfsim.Simulate[int](selfsim.NewSum(),
		selfsim.Static(selfsim.Complete(4)), []int{3, 5, 3, 7},
		selfsim.Options{Seed: 1, StopOnConverged: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("target:", res.Target)
	// Output:
	// target: {0, 0, 0, 18}
}

// The paper's §4.3 example: computing the second smallest value via the
// (min, second-min) pair generalization.
func ExampleNewMinPair() {
	values := []int{3, 5, 3, 7}
	res, err := selfsim.Simulate[selfsim.Pair](selfsim.NewMinPair(len(values), 10),
		selfsim.Static(selfsim.Ring(4)), selfsim.InitialPairs(values),
		selfsim.Options{Seed: 1, StopOnConverged: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("every agent holds:", res.Final[0])
	// Output:
	// every agent holds: (3, 5)
}

// Distributed sorting on a line graph (§4.4).
func ExampleNewSorting() {
	values := []int{30, 10, 20}
	p, err := selfsim.NewSorting(values)
	if err != nil {
		panic(err)
	}
	res, err := selfsim.Simulate[selfsim.Item](p, selfsim.Static(selfsim.Line(3)),
		selfsim.InitialItems(values), selfsim.Options{Seed: 1, StopOnConverged: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("sorted:", res.Final)
	// Output:
	// sorted: [0:10 1:20 2:30]
}

// The §4.5 geometry pipeline: convex-hull consensus, then the
// circumscribing circle.
func ExampleCircumcircle() {
	pts := []selfsim.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	res, err := selfsim.Simulate[selfsim.HullState](selfsim.NewHull(pts),
		selfsim.Static(selfsim.Ring(4)), selfsim.InitialHulls(pts),
		selfsim.Options{Seed: 1, StopOnConverged: true, HEps: 1e-9})
	if err != nil {
		panic(err)
	}
	c := selfsim.Circumcircle(res.Final[0])
	fmt.Printf("center (%.0f, %.0f), radius %.4f\n", c.C.X, c.C.Y, c.R)
	// Output:
	// center (1, 1), radius 1.4142
}

// Checking a candidate f before building an algorithm on it: the §3.4
// super-idempotence condition refutes the median.
func ExampleExhaustiveSuperIdempotent() {
	err := selfsim.ExhaustiveSuperIdempotent(selfsim.MedianF(),
		selfsim.ExactEqual[int](), []int{0, 1, 2}, func(a, b int) int { return a - b }, 3)
	fmt.Println("median admits a self-similar algorithm:", err == nil)
	// Output:
	// median admits a self-similar algorithm: false
}

// Exhaustively discharging the §3.7 proof obligations on a small
// instance.
func ExampleModelCheck() {
	rep, err := selfsim.ModelCheck[int](selfsim.NewMin(), selfsim.Complete(3), []int{3, 1, 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("obligations hold:", rep.OK())
	// Output:
	// obligations hold: true
}

// The continuous extension: environment-gated averaging conserves the
// mean exactly.
func ExampleRunFlow() {
	g := selfsim.Ring(4)
	e := selfsim.EdgeChurn(g, 0.5)
	res, err := selfsim.RunFlow(e, []float64{1, 2, 3, 6},
		selfsim.FlowOptions{Dt: selfsim.MaxStableFlowDt(e), Rounds: 10000, Seed: 1, Tol: 1e-9})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Printf("consensus value: %.4f\n", res.Final[0])
	// Output:
	// converged: true
	// consensus value: 3.0000
}
