package selfsim

// Tests of the public API surface: everything a downstream user touches
// works through the façade alone.

import (
	"math/rand"
	"testing"
)

func TestPublicQuickstart(t *testing.T) {
	g := Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := Simulate[int](NewMin(), EdgeChurn(g, 0.3), vals,
		Options{Seed: 1, StopOnConverged: true, CheckSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Violations) != 0 {
		t.Fatalf("converged=%v violations=%v", res.Converged, res.Violations)
	}
	for _, v := range res.Final {
		if v != 1 {
			t.Errorf("final = %v", res.Final)
		}
	}
}

func TestPublicProblems(t *testing.T) {
	vals := []int{3, 5, 3, 7}
	cases := []struct {
		name string
		run  func(t *testing.T) bool
	}{
		{"max", func(t *testing.T) bool {
			res, err := Simulate[int](NewMax(10), Static(Ring(4)), vals, Options{Seed: 1, StopOnConverged: true})
			return err == nil && res.Converged && res.Final[0] == 7
		}},
		{"sum", func(t *testing.T) bool {
			res, err := Simulate[int](NewSum(), Static(Complete(4)), vals, Options{Seed: 1, StopOnConverged: true})
			return err == nil && res.Converged
		}},
		{"gcd", func(t *testing.T) bool {
			res, err := Simulate[int](NewGCD(), Static(Line(4)), []int{12, 18, 30, 6}, Options{Seed: 1, StopOnConverged: true})
			return err == nil && res.Converged && res.Final[0] == 6
		}},
		{"average", func(t *testing.T) bool {
			res, err := Simulate[float64](NewAverage(1e-9), Static(Ring(4)), []float64{1, 2, 3, 6}, Options{Seed: 1, StopOnConverged: true})
			return err == nil && res.Converged && res.Final[0] == 3
		}},
		{"minpair", func(t *testing.T) bool {
			res, err := Simulate[Pair](NewMinPair(4, 10), Static(Ring(4)), InitialPairs(vals), Options{Seed: 1, StopOnConverged: true})
			return err == nil && res.Converged && res.Final[0] == Pair{X: 3, Y: 5}
		}},
		{"ksmallest", func(t *testing.T) bool {
			res, err := Simulate[KVec](NewKSmallest(2, 4, 10), Static(Ring(4)), InitialKVecs(2, vals), Options{Seed: 1, StopOnConverged: true})
			return err == nil && res.Converged && res.Final[0].Vals[1] == 5
		}},
		{"partialmin", func(t *testing.T) bool {
			res, err := Simulate[int](NewPartialMin(), Static(Ring(4)), vals, Options{Seed: 1, StopOnConverged: true, MaxRounds: 5000})
			return err == nil && res.Converged
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !c.run(t) {
				t.Errorf("%s failed through the public API", c.name)
			}
		})
	}
}

func TestPublicSorting(t *testing.T) {
	vals := []int{30, 10, 20, 0}
	p, err := NewSorting(vals)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate[Item](p, EdgeChurn(Line(4), 0.7), InitialItems(vals),
		Options{Seed: 2, StopOnConverged: true, Mode: PairwiseMode})
	if err != nil || !res.Converged {
		t.Fatalf("sorting: %v / %v", err, res)
	}
}

func TestPublicHullAndCircle(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	res, err := Simulate[HullState](NewHull(pts), Static(Ring(4)), InitialHulls(pts),
		Options{Seed: 1, StopOnConverged: true, HEps: 1e-9})
	if err != nil || !res.Converged {
		t.Fatal("hull did not converge")
	}
	c := Circumcircle(res.Final[0])
	if d := c.R - 1.4142135623730951; d > 1e-6 || d < -1e-6 {
		t.Errorf("circle radius = %g", c.R)
	}
}

func TestPublicGraphs(t *testing.T) {
	if Line(5).M() != 4 || Ring(5).M() != 5 || Complete(5).M() != 10 ||
		Star(5).M() != 4 || Grid(2, 3).M() != 7 {
		t.Error("graph constructors wrong")
	}
	if !RandomConnected(12, 0.1, 3).Connected() {
		t.Error("RandomConnected not connected")
	}
}

func TestPublicEnvironments(t *testing.T) {
	g := Ring(6)
	envs := []Environment{
		Static(g), EdgeChurn(g, 0.5), PowerLoss(g, 0.3),
		Partitioner(g, 2, 3, 3), Adversary(g, 0.5, 5), RoundRobin(g),
	}
	for _, e := range envs {
		if e.Name() == "" || e.Graph() != g {
			t.Errorf("environment %T misconfigured", e)
		}
	}
	if _, err := Mobile(Ring(6), 0.3, 0.05); err == nil {
		t.Error("Mobile accepted non-complete graph")
	}
	if _, err := Mobile(Complete(6), 0.3, 0.05); err != nil {
		t.Error(err)
	}
}

func TestPublicAsync(t *testing.T) {
	res, err := SimulateAsync[int](NewMin(), Complete(6), []int{8, 3, 9, 5, 4, 7},
		DefaultAsyncOptions(1))
	if err != nil || !res.Converged {
		t.Fatalf("async: %v", err)
	}
}

func TestPublicCheckers(t *testing.T) {
	gen := func(r *rand.Rand) Multiset[int] {
		n := 1 + r.Intn(5)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(8)
		}
		return IntMultiset(vals...)
	}
	if err := CheckSuperIdempotent(NewMin().F(), ExactEqual[int](), gen, 300, 1); err != nil {
		t.Errorf("min flagged: %v", err)
	}
	if err := ExhaustiveSuperIdempotent(NewMin().F(), ExactEqual[int](),
		[]int{0, 1, 2}, func(a, b int) int { return a - b }, 3); err != nil {
		t.Errorf("min exhaustive: %v", err)
	}
}

func TestPublicModelCheck(t *testing.T) {
	rep, err := ModelCheck[int](NewMin(), Complete(3), []int{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("obligations failed: %s", rep.Summary())
	}
}

func TestPublicMultiset(t *testing.T) {
	m := NewMultiset(func(a, b string) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}, "b", "a", "b")
	if m.Len() != 3 || m.Count("b") != 2 {
		t.Errorf("multiset = %v", m)
	}
}

func TestRequirementsExposed(t *testing.T) {
	if NewMin().Requirement() != AnyConnected ||
		NewSum().Requirement() != CompleteGraph {
		t.Error("requirements not exposed correctly")
	}
	p, _ := NewSorting([]int{1, 2})
	if p.Requirement() != LineGraph {
		t.Error("sorting requirement")
	}
}

func TestPublicRangeAndSetUnion(t *testing.T) {
	vals := []int{9, 4, 7, 1}
	res, err := Simulate[Tuple[int, int]](NewRange(16), Static(Ring(4)), InitialTuples(vals),
		Options{Seed: 1, StopOnConverged: true, CheckSteps: true})
	if err != nil || !res.Converged {
		t.Fatalf("range: %v", err)
	}
	if res.Final[0] != (Tuple[int, int]{A: 1, B: 9}) {
		t.Errorf("range final = %v", res.Final[0])
	}

	init := []Set{SetOf(0, 1), SetOf(2), SetOf(3, 4), SetOf()}
	sres, err := Simulate[Set](NewSetUnion(), Static(Line(4)), init,
		Options{Seed: 1, StopOnConverged: true, CheckSteps: true})
	if err != nil || !sres.Converged {
		t.Fatalf("set-union: %v", err)
	}
	if sres.Final[0] != SetOf(0, 1, 2, 3, 4) {
		t.Errorf("set-union final = %v", sres.Final[0])
	}
}

func TestPublicProductCombinator(t *testing.T) {
	p := NewProduct[int, int](NewMin(), NewGCD())
	vals := []Tuple[int, int]{{A: 9, B: 12}, {A: 4, B: 18}, {A: 7, B: 30}}
	res, err := Simulate[Tuple[int, int]](p, Static(Ring(3)), vals,
		Options{Seed: 1, StopOnConverged: true, CheckSteps: true})
	if err != nil || !res.Converged {
		t.Fatalf("product: %v", err)
	}
	if res.Final[0] != (Tuple[int, int]{A: 4, B: 6}) {
		t.Errorf("product final = %v", res.Final[0])
	}
}

func TestPublicNewEnvironments(t *testing.T) {
	g := Ring(6)
	vals := []int{9, 4, 7, 1, 8, 2}
	for _, e := range []Environment{
		MarkovLinks(g, 0.2, 0.2),
		DayNight(g, 2, 4),
	} {
		res, err := Simulate[int](NewMin(), e, vals, Options{Seed: 3, StopOnConverged: true, MaxRounds: 10000})
		if err != nil || !res.Converged {
			t.Fatalf("%s: converged=%v err=%v", e.Name(), res != nil && res.Converged, err)
		}
	}
	comp, err := ComposeEnvironments(DayNight(g, 3, 3), EdgeChurn(g, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate[int](NewMin(), comp, vals, Options{Seed: 3, StopOnConverged: true, MaxRounds: 10000})
	if err != nil || !res.Converged {
		t.Fatal("composed environment failed")
	}
	if _, err := ComposeEnvironments(); err == nil {
		t.Error("empty compose accepted")
	}
}

func TestPublicFlow(t *testing.T) {
	g := Ring(8)
	e := EdgeChurn(g, 0.5)
	x0 := []float64{1, 2, 3, 4, 5, 6, 7, 12}
	dt := MaxStableFlowDt(e)
	if dt <= 0 {
		t.Fatalf("dt = %g", dt)
	}
	res, err := RunFlow(e, x0, FlowOptions{Dt: dt, Rounds: 50000, Seed: 1, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.MeanDrift > 1e-8 || res.MonotoneViolations != 0 {
		t.Errorf("flow: converged=%v drift=%g violations=%d",
			res.Converged, res.MeanDrift, res.MonotoneViolations)
	}
}

func TestPublicNegativeFunctions(t *testing.T) {
	cmp := func(a, b int) int { return a - b }
	if err := ExhaustiveSuperIdempotent(MedianF(), ExactEqual[int](), []int{0, 1, 2, 3}, cmp, 3); err == nil {
		t.Error("median not refuted")
	}
	if err := ExhaustiveSuperIdempotent(SecondSmallestF(), ExactEqual[int](), []int{0, 1, 2, 3}, cmp, 3); err == nil {
		t.Error("second-smallest not refuted")
	}
}
