// Package selfsim is a Go implementation of "Self-Similar Algorithms for
// Dynamic Distributed Systems" (K. Mani Chandy and Michel Charpentier,
// ICDCS 2007).
//
// A dynamic distributed system is a set of agents operating in an
// environment that may disable agents and communication links at any time
// — partitions, churn, power loss, adversarial jamming. A self-similar
// algorithm is one in which every group of agents that can still
// communicate behaves exactly as if the system consisted of that group
// alone: partitions never produce wrong answers, only smaller instances of
// the same computation, and the system speeds up or slows down with the
// resources the environment grants.
//
// The paper's methodology casts "compute f(S(0))" as constrained
// optimization — conserve a super-idempotent function f, strictly decrease
// a well-founded variant h — and this package packages that methodology as
// a library:
//
//   - Problems: Min, Max, Sum, Average, GCD, MinPair, KSmallest, Sorting,
//     Hull (every example in the paper's §4 plus natural extensions), each
//     exposing its f, its variant h, and concrete group/pairwise steps.
//   - Environments: static, random edge churn, power loss, partitions
//     that heal, fair and unfair adversaries, round-robin scheduling, and
//     random-waypoint mobility.
//   - Engines: a round-based simulator matching the paper's execution
//     model exactly (with built-in runtime verification of the
//     conservation law and the D-step discipline), and an asynchronous
//     goroutine-per-agent message-passing runtime. Both are built on one
//     shared engine core (monitors, convergence detection, deterministic
//     seeding, worker pool) with an allocation-free round hot path; see
//     DESIGN.md for the architecture.
//   - Checkers: machine verification of idempotence, super-idempotence,
//     the local-to-global properties, and exhaustive model checking of
//     the paper's proof obligations on small instances.
//
// # Quick start
//
//	g := selfsim.Ring(8)
//	environment := selfsim.EdgeChurn(g, 0.3) // each link up 30% of the time
//	res, err := selfsim.Simulate[int](selfsim.NewMin(), environment,
//	    []int{9, 4, 7, 1, 8, 2, 6, 5}, selfsim.Options{Seed: 1, StopOnConverged: true})
//	// res.Converged == true; res.Final is all 1s; res.Round tells how long
//	// the environment made the agents take.
//
// See the examples/ directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology and results.
package selfsim

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/flow"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mc"
	ms "repro/internal/multiset"
	"repro/internal/problems"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sim"
)

// --- Core abstractions (the paper's f, h, D) ---

// Problem bundles a distributed function f, its variant h, and concrete
// group/pairwise refinements of the optimization relation D. See
// core.Problem for the full contract.
type Problem[T any] = core.Problem[T]

// Function is the paper's distributed function f over multisets of agent
// states.
type Function[T any] = core.Function[T]

// Variant is the paper's variant (objective) function h.
type Variant[T any] = core.Variant[T]

// Multiset is an immutable bag of agent states — the domain of f and h.
type Multiset[T any] = ms.Multiset[T]

// Requirement describes the environment assumption a problem needs (§4).
type Requirement = core.Requirement

// Environment assumption constants.
const (
	AnyConnected  = core.AnyConnected
	CompleteGraph = core.CompleteGraph
	LineGraph     = core.LineGraph
)

// NewMultiset builds a multiset from elements and a three-way comparison.
func NewMultiset[T any](cmp func(a, b T) int, elems ...T) Multiset[T] {
	return ms.New(cmp, elems...)
}

// IntMultiset builds an integer multiset with the natural order.
func IntMultiset(vals ...int) Multiset[int] { return ms.OfInts(vals...) }

// --- Problems (§4 plus extensions) ---

// NewMin returns the §4.1 minimum-consensus problem.
func NewMin() Problem[int] { return problems.NewMin() }

// NewPartialMin returns minimum consensus with lazy steps (agents move to
// any value between their own and the group minimum), the slow end of the
// §4.1 algorithm class.
func NewPartialMin() Problem[int] { return &problems.Min{Partial: true} }

// NewMax returns maximum consensus for values strictly below bound.
func NewMax(bound int) Problem[int] { return problems.NewMax(bound) }

// NewSum returns the §4.2 sum problem (one agent ends with the total).
func NewSum() Problem[int] { return problems.NewSum() }

// NewAverage returns mean consensus over float64 states with the given
// convergence tolerance.
func NewAverage(tol float64) Problem[float64] { return problems.NewAverage(tol) }

// NewGCD returns gcd consensus over positive integers.
func NewGCD() Problem[int] { return problems.NewGCD() }

// Pair is the (smallest, second smallest) agent state of §4.3.
type Pair = problems.Pair

// NewMinPair returns the §4.3 generalized second-smallest problem for n
// agents with values strictly below bound. (The variant deviates from the
// paper's printed h, which is flawed; see internal/problems/minpair.go
// and EXPERIMENTS.md.)
func NewMinPair(n, bound int) Problem[Pair] { return problems.NewMinPair(n, bound) }

// InitialPairs builds the §4.3 initial state (x, x) per agent.
func InitialPairs(values []int) []Pair { return problems.InitialPairs(values) }

// KVec is the k-smallest vector agent state.
type KVec = problems.KVec

// NewKSmallest returns the k-smallest-values generalization for n agents
// with values strictly below bound.
func NewKSmallest(k, n, bound int) Problem[KVec] { return problems.NewKSmallest(k, n, bound) }

// InitialKVecs builds the k-smallest initial state per agent.
func InitialKVecs(k int, values []int) []KVec { return problems.InitialKVecs(k, values) }

// Item is the (index, value) agent state of the §4.4 sorting problem.
type Item = problems.Item

// NewSorting returns the §4.4 distributed sorting problem over the given
// distinct values (indexes 0..n−1).
func NewSorting(values []int) (Problem[Item], error) { return problems.NewSorting(values) }

// InitialItems builds the sorting initial state: agent i holds (i,
// values[i]).
func InitialItems(values []int) []Item { return problems.InitialItems(values) }

// Point is a point in the plane.
type Point = geom.Point

// Circle is a circle (center, radius).
type Circle = geom.Circle

// HullState is the §4.5 agent state: home coordinates plus current convex
// hull estimate.
type HullState = problems.HullState

// NewHull returns the §4.5 convex-hull problem over the given agent
// positions; the circumscribing circle is recovered with Circumcircle.
func NewHull(points []Point) Problem[HullState] { return problems.NewHull(points) }

// InitialHulls builds the hull initial state: each agent knows only its
// own position.
func InitialHulls(points []Point) []HullState { return problems.InitialHulls(points) }

// Circumcircle recovers the smallest circle containing all points from a
// converged hull state — the paper's original §4.5 goal.
func Circumcircle(s HullState) Circle { return problems.Circumcircle(s) }

// --- Communication graphs ---

// Graph is an undirected communication graph over agents.
type Graph = graph.Graph

// Line returns the linear graph 0—1—…—(n−1) (§4.4's assumption).
func Line(n int) *Graph { return graph.Line(n) }

// Ring returns the n-cycle.
func Ring(n int) *Graph { return graph.Ring(n) }

// Complete returns K_n (§4.2's assumption).
func Complete(n int) *Graph { return graph.Complete(n) }

// Star returns the star graph with hub 0.
func Star(n int) *Graph { return graph.Star(n) }

// Grid returns the rows×cols mesh.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// RandomConnected returns a connected G(n, p) (retrying / patching as
// needed), seeded deterministically.
func RandomConnected(n int, p float64, seed int64) *Graph {
	//lint:ignore detrand one-shot topology construction from a user-supplied seed before any engine runs; the golden-pinned graph family depends on this exact stdlib stream
	return graph.ConnectedErdosRenyi(n, p, rand.New(rand.NewSource(seed)))
}

// --- Environments (the adversary) ---

// Environment produces per-round edge/agent availability over a graph.
type Environment = env.Environment

// Static keeps everything up: the benign environment.
func Static(g *Graph) Environment { return env.NewStatic(g) }

// EdgeChurn makes each edge independently available with probability p
// per round.
func EdgeChurn(g *Graph, p float64) Environment { return env.NewEdgeChurn(g, p) }

// PowerLoss disables each agent independently with probability p per
// round.
func PowerLoss(g *Graph, p float64) Environment { return env.NewPowerLoss(g, p) }

// Partitioner alternates healthy phases with phases split into parts
// blocks.
func Partitioner(g *Graph, parts, healthyRounds, partitionRounds int) Environment {
	return env.NewPartitioner(g, parts, healthyRounds, partitionRounds)
}

// Adversary cuts cutFraction of edges each round, subject to a fairness
// window (every edge re-enabled at least once per window rounds);
// window ≤ 0 removes fairness and violates assumption (2).
func Adversary(g *Graph, cutFraction float64, window int) Environment {
	return env.NewAdversary(g, cutFraction, window)
}

// RoundRobin enables exactly one edge per round: the weakest fair
// environment.
func RoundRobin(g *Graph) Environment { return env.NewRoundRobin(g) }

// Mobile is random-waypoint mobility over the complete graph g: agents
// within radius can communicate.
func Mobile(g *Graph, radius, speed float64) (Environment, error) {
	return env.NewMobile(g, radius, speed)
}

// --- Engines ---

// Options configures a simulation run.
type Options = sim.Options

// Result reports a simulation run.
type Result[T any] = sim.Result[T]

// Mode selects component-wide or pairwise-gossip steps.
type Mode = sim.Mode

// Execution modes.
const (
	ComponentMode = sim.ComponentMode
	PairwiseMode  = sim.PairwiseMode
)

// DefaultParallelThreshold is the per-round group count at which the
// round engine fans group steps out to its persistent worker pool (sized
// to GOMAXPROCS). Options.ParallelThreshold overrides it; results are
// bit-for-bit identical either way, because every group steps on a
// private stream seeded in deterministic group order. See DESIGN.md §2.
const DefaultParallelThreshold = sim.DefaultParallelThreshold

// Simulate runs the round-based engine (the paper's execution model) for
// problem p over environment e from the given initial states.
func Simulate[T any](p Problem[T], e Environment, initial []T, opts Options) (*Result[T], error) {
	return sim.Run(p, e, initial, opts)
}

// AsyncOptions configures an asynchronous message-passing run.
type AsyncOptions = runtime.Options

// AsyncResult reports an asynchronous run.
type AsyncResult[T any] = runtime.Result[T]

// SimulateAsync runs the goroutine-per-agent message-passing runtime over
// graph g (links churned internally per opts).
func SimulateAsync[T any](p Problem[T], g *Graph, initial []T, opts AsyncOptions) (*AsyncResult[T], error) {
	return runtime.Run(p, g, initial, opts)
}

// DefaultAsyncOptions returns sensible asynchronous defaults: static
// links, 10s timeout.
func DefaultAsyncOptions(seed int64) AsyncOptions {
	return AsyncOptions{Seed: seed, LinkUpProbability: 1, Timeout: 10 * time.Second}
}

// SchedOptions configures a sharded event-loop scheduler run.
type SchedOptions = sched.Options

// SimulateSched runs the same asynchronous push-pull protocol as
// SimulateAsync on the sharded event-loop actor scheduler: P worker
// goroutines multiplex all N agents, so 10⁵–10⁶-agent systems are
// feasible. Returns the same AsyncResult as SimulateAsync, so the two
// engines are directly comparable.
func SimulateSched[T any](p Problem[T], g *Graph, initial []T, opts SchedOptions) (*AsyncResult[T], error) {
	return sched.Run(p, g, initial, opts)
}

// DefaultSchedOptions returns sensible scheduler defaults: one worker
// per core, static links, stealing on.
func DefaultSchedOptions(seed int64) SchedOptions {
	return SchedOptions{Seed: seed, LinkUpProbability: 1}
}

// --- Checkers (the §3 conditions as library calls) ---

// CheckSuperIdempotent draws trials random multiset pairs (X, Y) from gen
// and verifies f(X ∪ Y) = f(f(X) ∪ Y); it returns an error describing the
// first counterexample, or nil.
func CheckSuperIdempotent[T any](f Function[T], eq func(a, b Multiset[T]) bool,
	gen func(rng *rand.Rand) Multiset[T], trials int, seed int64) error {
	//lint:ignore detrand property-checker trial generation from a user-supplied seed; not on any engine path, and pinned counterexample traces depend on this stream
	v := core.CheckSuperIdempotent(f, eq, gen, gen, trials, rand.New(rand.NewSource(seed)))
	if v == nil {
		return nil
	}
	return v
}

// ExhaustiveSuperIdempotent verifies the singleton criterion (6) for every
// multiset over domain up to maxSize; it returns the first counterexample
// as an error, or nil.
func ExhaustiveSuperIdempotent[T any](f Function[T], eq func(a, b Multiset[T]) bool,
	domain []T, cmp func(a, b T) int, maxSize int) error {
	v := core.ExhaustiveSuperIdempotent(f, eq, domain, cmp, maxSize)
	if v == nil {
		return nil
	}
	return v
}

// ExactEqual returns the default multiset equality (cmp decides identity).
func ExactEqual[T any]() func(a, b Multiset[T]) bool { return core.ExactEqual[T]() }

// ModelCheckReport is the result of exhaustively checking the §3.7 proof
// obligations on a small instance.
type ModelCheckReport = mc.Report

// ModelCheck explores the full reachable state graph of problem p from
// the given initial states with groups formed over the edges of g (plus
// the whole-graph group), validating every transition as a D-step,
// checking that non-goal states are escapable and goal states stable.
func ModelCheck[T any](p Problem[T], g *Graph, initial []T) (*ModelCheckReport, error) {
	groups := make([][]int, 0, g.M()+1)
	for _, e := range g.Edges() {
		groups = append(groups, []int{e.A, e.B})
	}
	if g.N() > 0 {
		groups = append(groups, mc.WholeGroup(g.N())[0])
	}
	return mc.Explore(mc.Spec[T]{
		Initial: initial,
		Groups:  groups,
		Succ:    mc.ProblemSucc(p),
		Problem: p,
	})
}

// --- Additional problems and combinators ---

// Tuple is the agent state of a product problem.
type Tuple[A, B any] = problems.Tuple[A, B]

// NewProduct composes two problems into one: f applies componentwise and
// h adds — the methodology composes. Component problems must use exact
// equality (all the integer problems here do).
func NewProduct[A, B any](pa Problem[A], pb Problem[B]) Problem[Tuple[A, B]] {
	return problems.NewProduct(pa, pb)
}

// NewRange returns min × max: every agent learns both extremes (values
// strictly below bound).
func NewRange(bound int) Problem[Tuple[int, int]] { return problems.NewRange(bound) }

// InitialTuples pairs each value with itself, the initial state for
// same-typed products such as Range.
func InitialTuples(values []int) []Tuple[int, int] { return problems.InitialTuples(values) }

// Set is a ≤64-element set as a bitmask, the state of set-union
// consensus.
type Set = problems.Set

// SetOf builds a Set from element indices (0–63).
func SetOf(elems ...int) Set { return problems.SetOf(elems...) }

// NewSetUnion returns set-union consensus: every agent ends with the
// union of all initial sets.
func NewSetUnion() Problem[Set] { return problems.NewSetUnion() }

// MedianF is the (lower) median consensus function — idempotent but NOT
// super-idempotent; exposed so downstream designers can watch the
// checkers refute a tempting f (see examples/designcheck).
func MedianF() Function[int] { return problems.MedianF() }

// SecondSmallestF is the §4.3 naive second-smallest function — the
// paper's own example of an f the checkers must refute.
func SecondSmallestF() Function[int] { return problems.SecondSmallestF() }

// --- Additional environments ---

// MarkovLinks is bursty link churn: each edge is an independent on/off
// Markov chain (stationary availability pDownToUp/(pUpToDown+pDownToUp)).
func MarkovLinks(g *Graph, pUpToDown, pDownToUp float64) Environment {
	return env.NewMarkovLinks(g, pUpToDown, pDownToUp)
}

// DayNight alternates dayRounds of full availability with nightRounds of
// total blackout.
func DayNight(g *Graph, dayRounds, nightRounds int) Environment {
	return env.NewDayNight(g, dayRounds, nightRounds)
}

// ComposeEnvironments layers environments over the same graph: an edge or
// agent is up only when every layer agrees.
func ComposeEnvironments(layers ...Environment) (Environment, error) {
	return env.NewCompose(layers...)
}

// --- Continuous-state extension (§1.2) ---

// FlowOptions configures a continuous Laplacian-averaging run.
type FlowOptions = flow.Options

// FlowResult reports a continuous run.
type FlowResult = flow.Result

// RunFlow executes environment-gated Laplacian averaging — the paper's
// §1.2 continuous-dynamics extension: the mean is conserved exactly, the
// disagreement Σ(xi−xj)² contracts for any dt below MaxStableFlowDt, and
// partitioned components hold their own means (self-similarity in
// continuous state).
func RunFlow(e Environment, x0 []float64, opts FlowOptions) (*FlowResult, error) {
	return flow.Run(e, x0, opts)
}

// MaxStableFlowDt returns a provably stable Euler step for the
// environment's graph.
func MaxStableFlowDt(e Environment) float64 { return flow.MaxStableDt(e) }

// Hypercube returns the d-dimensional hypercube over 2^d agents.
func Hypercube(d int) *Graph { return graph.Hypercube(d) }

// Torus returns the rows×cols wraparound mesh.
func Torus(rows, cols int) *Graph { return graph.Torus(rows, cols) }

// BinaryTree returns the complete binary tree over n agents — the
// worst-case topology under churn (every edge is a cut edge).
func BinaryTree(n int) *Graph { return graph.BinaryTree(n) }
