// Command sweep runs a declarative scenario grid — (environment ×
// problem × topology × size × dynamics × mode × seed) — in one process
// on the batched grid runner (internal/sweep) and renders the results
// as CSV or Markdown.
//
//	sweep                                        # default demo grid
//	sweep -envs churn:0.9,static -problems min,gcd \
//	      -topos ring,hypercube -sizes 64,256 \
//	      -modes component,pairwise -seeds 4     # explicit grid
//	sweep -dynamics none,partition:2:1:40,crashes:0.02:20  # fault axis
//	sweep -cells 0-9,42 ...                      # subset of a grid
//	sweep -format csv -o matrix.csv              # machine-readable
//
// Every cell's result is bit-identical to an independent run of the
// simulation engine with the same options (per-cell seeds are derived
// substreams of -base-seed, never functions of worker identity), so a
// grid is reproducible from its flag set alone; -workers changes
// wall-clock only, and -cells selects a subset of an EXISTING grid —
// cell indices and seeds are those of the full grid, so a filtered
// run's cells match the unfiltered run's bit for bit.
//
// Every axis value is validated before any cell runs; an unknown
// environment, problem, topology, dynamics schedule, mode, or format
// exits non-zero with a message naming the known values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dynamics"
	"repro/internal/env"
	"repro/internal/obs"
	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	envs := flag.String("envs", "churn:0.9,static", "comma-separated environment specs (static, churn:P, powerloss:P, adversary:CUT:W)")
	probs := flag.String("problems", "min,max,gcd", "comma-separated problem families (min, max, sum, gcd)")
	topos := flag.String("topos", "ring,hypercube", "comma-separated topology families (ring, line, complete, star, tree, hypercube, torus)")
	sizes := flag.String("sizes", "32", "comma-separated system sizes")
	dyns := flag.String("dynamics", "none", "comma-separated dynamics schedules (none, crashes:RATE:MEANDOWN, partition:PARTS:FROM:TO, partitioncycle:PARTS:H:D, flap:K:FROM:TO, burst:Q:FROM:TO, join:K:TOPO:ROUND, amnesiacflap:K:FROM:TO)")
	modes := flag.String("modes", "component,pairwise", "comma-separated interaction modes (component, pairwise)")
	seeds := flag.Int("seeds", 4, "seed replicas per combination")
	baseSeed := flag.Int64("base-seed", 1, "root of every cell's seed substream")
	maxRounds := flag.Int("maxrounds", 60_000, "per-cell round cap")
	shards := flag.Int("shards", 0, "per-cell state-shard override (0 = auto)")
	workers := flag.Int("workers", 0, "sweep worker slots (0 = GOMAXPROCS; results are identical for any value)")
	cells := flag.String("cells", "", "cell-index filter, e.g. 0-9,42,100-199 (empty = the whole grid)")
	format := flag.String("format", "markdown", "output format: markdown or csv")
	out := flag.String("o", "", "write the table to this file instead of stdout")
	trace := flag.String("trace", "", "write a JSONL observability trace (one event per engine phase and per cell) to this file; results are byte-identical with or without it")
	phaseMetrics := flag.Bool("phase-metrics", false, "print merged per-phase timing and counter tables to stderr after the run")
	pprofLabels := flag.Bool("pprof-labels", false, "attach pprof phase labels to probed cells so CPU profiles attribute samples to engine phases")
	flag.Parse()

	// Validate everything — including the output format — before the
	// grid runs: a typo must not discard a long run's results.
	if *format != "markdown" && *format != "csv" {
		fail(fmt.Errorf("sweep: unknown format %q (want markdown or csv)", *format))
	}
	axes, err := buildAxes(*envs, *probs, *topos, *sizes, *dyns, *modes, *seeds, *baseSeed, *maxRounds, *shards)
	if err != nil {
		fail(err)
	}
	grid, err := axes.Grid()
	if err != nil {
		fail(err)
	}
	if *cells != "" {
		if grid, err = filterCells(grid, *cells); err != nil {
			fail(err)
		}
	}
	// The trace sink is part of up-front validation: an unwritable -trace
	// path must fail here, before any cell runs, not after the grid.
	var tw *obs.TraceWriter
	var traceFile *os.File
	if *trace != "" {
		traceFile, err = openTraceFile(*trace)
		if err != nil {
			fail(err)
		}
		tw = obs.NewTraceWriter(traceFile)
	}
	sopts := sweep.Options{Workers: *workers}
	if tw != nil || *phaseMetrics || *pprofLabels {
		// One probe per worker slot (obs timers are single-goroutine),
		// sharing the trace sink; ObsReport merges them after the run.
		sopts.NewProbe = func(worker int) *obs.Probe {
			return obs.NewProbe(obs.Config{Trace: tw, Shard: worker, PprofLabels: *pprofLabels})
		}
	}
	runner := sweep.NewRunner(sopts)
	defer runner.Close()
	res, err := runner.Run(grid)
	if err != nil {
		fail(err)
	}

	rendered := res.Table.CSV()
	if *format == "markdown" {
		rendered = res.Table.Markdown()
	}

	converged := 0
	for _, c := range res.Cells {
		if c.Converged {
			converged++
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(rendered), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		fmt.Print(rendered)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells, %d converged, %v wall-clock\n",
		len(res.Cells), converged, res.Elapsed.Round(1e6))
	if tw != nil {
		if err := tw.Flush(); err != nil {
			fail(fmt.Errorf("sweep: writing -trace %q: %w", *trace, err))
		}
		if err := traceFile.Close(); err != nil {
			fail(fmt.Errorf("sweep: closing -trace %q: %w", *trace, err))
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote trace %s\n", *trace)
	}
	if *phaseMetrics {
		// Stderr, like the summary line: stdout carries the result table
		// only, so enabling metrics changes no result bytes.
		rep := runner.ObsReport()
		fmt.Fprintf(os.Stderr, "\nphase timing (all workers merged):\n%s\ncounters:\n%s",
			rep.PhaseTable(), rep.CounterTable())
	}
}

// openTraceFile validates and opens the -trace path up front — before any
// cell runs — so a typo'd or unwritable path fails immediately with a
// clear error instead of discarding a long grid's trace at the end.
func openTraceFile(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: cannot write -trace %q: %w", path, err)
	}
	return f, nil
}

// buildAxes parses every axis flag through the env/problems/dynamics/
// sweep registries.
func buildAxes(envSpec, probSpec, topoSpec, sizeSpec, dynSpec, modeSpec string, seeds int, baseSeed int64, maxRounds, shards int) (sweep.Axes, error) {
	a := sweep.Axes{Seeds: seeds, BaseSeed: baseSeed, MaxRounds: maxRounds, Shards: shards}
	for _, s := range splitList(envSpec) {
		d, err := env.ParseDesc(s)
		if err != nil {
			return a, err
		}
		a.Envs = append(a.Envs, d)
	}
	for _, s := range splitList(dynSpec) {
		d, err := dynamics.ParseDesc(s)
		if err != nil {
			return a, err
		}
		a.Dynamics = append(a.Dynamics, d)
	}
	for _, s := range splitList(probSpec) {
		d, err := problems.ParseDesc(s)
		if err != nil {
			return a, err
		}
		a.Problems = append(a.Problems, d)
	}
	for _, s := range splitList(topoSpec) {
		topo, err := sweep.ParseTopo(s)
		if err != nil {
			return a, err
		}
		a.Topos = append(a.Topos, topo)
	}
	for _, s := range splitList(sizeSpec) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return a, fmt.Errorf("sweep: bad size %q", s)
		}
		a.Sizes = append(a.Sizes, n)
	}
	for _, s := range splitList(modeSpec) {
		switch s {
		case "component":
			a.Modes = append(a.Modes, sim.ComponentMode)
		case "pairwise":
			a.Modes = append(a.Modes, sim.PairwiseMode)
		default:
			return a, fmt.Errorf("sweep: unknown mode %q (want component or pairwise)", s)
		}
	}
	return a, nil
}

// filterCells restricts a grid to the cells whose index matches the
// comma-separated list of indices and inclusive ranges in spec
// ("0-9,42"). Cells keep their original Index — and therefore their
// seeds — so a filtered cell's result is bit-identical to the same cell
// of the unfiltered grid.
func filterCells(g *sweep.Grid, spec string) (*sweep.Grid, error) {
	keep := make(map[int]bool)
	for _, part := range splitList(spec) {
		lo, hi, ok := strings.Cut(part, "-")
		if !ok {
			hi = lo
		}
		a, errA := strconv.Atoi(lo)
		b, errB := strconv.Atoi(hi)
		if errA != nil || errB != nil || a < 0 || b < a {
			return nil, fmt.Errorf("sweep: bad -cells entry %q (want INDEX or LO-HI)", part)
		}
		for i := a; i <= b; i++ {
			keep[i] = true
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("sweep: -cells %q selects nothing", spec)
	}
	out := &sweep.Grid{}
	for _, c := range g.Cells {
		if keep[c.Index] {
			out.Cells = append(out.Cells, c)
		}
	}
	if len(out.Cells) == 0 {
		return nil, fmt.Errorf("sweep: -cells %q matches none of the grid's %d cells", spec, len(g.Cells))
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
