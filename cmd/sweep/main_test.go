package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goodAxes is a known-valid flag set buildAxes must accept.
func goodAxes() (string, string, string, string, string, string) {
	return "churn:0.9,static", "min,gcd", "ring,hypercube", "16,32",
		"none,partition:2:1:40,crashes:0.02:20,burst:0.5:0:10,flap:2:1:20,partitioncycle:2:5:5,join:4:ring:10,amnesiacflap:2:1:20",
		"component,pairwise"
}

// TestBuildAxesAcceptsKnownValues: the full registry surface round-trips
// through the CLI parser.
func TestBuildAxesAcceptsKnownValues(t *testing.T) {
	envs, probs, topos, sizes, dyns, modes := goodAxes()
	a, err := buildAxes(envs, probs, topos, sizes, dyns, modes, 2, 1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Envs) != 2 || len(a.Problems) != 2 || len(a.Topos) != 2 ||
		len(a.Sizes) != 2 || len(a.Dynamics) != 8 || len(a.Modes) != 2 {
		t.Fatalf("axes lost values: %+v", a)
	}
	grid, err := a.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2 * 2 * 8 * 2 * 2; len(grid.Cells) != want {
		t.Fatalf("grid has %d cells, want %d", len(grid.Cells), want)
	}
}

// TestBuildAxesRejectsUnknownValues is the loud-failure satellite: every
// axis rejects a bad value with an error that names the offender — and,
// for unknown registry families, lists the valid registered names — so
// cmd/sweep exits non-zero with an actionable message instead of
// silently running a wrong grid.
func TestBuildAxesRejectsUnknownValues(t *testing.T) {
	envs, probs, topos, sizes, dyns, modes := goodAxes()
	cases := []struct {
		name string
		call func() error
		want []string
	}{
		{"bad env", func() error {
			_, err := buildAxes("chrn:0.9", probs, topos, sizes, dyns, modes, 1, 1, 10, 0)
			return err
		}, []string{"chrn", "static", "churn", "powerloss", "adversary"}},
		{"bad env param", func() error {
			_, err := buildAxes("churn:2.0", probs, topos, sizes, dyns, modes, 1, 1, 10, 0)
			return err
		}, []string{"churn:2.0"}},
		{"bad problem", func() error {
			_, err := buildAxes(envs, "minn", topos, sizes, dyns, modes, 1, 1, 10, 0)
			return err
		}, []string{"minn"}},
		{"bad topo", func() error {
			_, err := buildAxes(envs, probs, "moebius", sizes, dyns, modes, 1, 1, 10, 0)
			return err
		}, []string{"moebius", "ring", "hypercube"}},
		{"bad size", func() error {
			_, err := buildAxes(envs, probs, topos, "32,huge", dyns, modes, 1, 1, 10, 0)
			return err
		}, []string{"huge"}},
		{"bad dynamics", func() error {
			_, err := buildAxes(envs, probs, topos, sizes, "meteor:0.5", modes, 1, 1, 10, 0)
			return err
		}, []string{"meteor", "crashes", "join", "amnesiacflap"}},
		{"bad dynamics param", func() error {
			_, err := buildAxes(envs, probs, topos, sizes, "partition:1:0:10", modes, 1, 1, 10, 0)
			return err
		}, []string{"partition:1:0:10"}},
		{"bad join topology", func() error {
			_, err := buildAxes(envs, probs, topos, sizes, "join:4:torus:10", modes, 1, 1, 10, 0)
			return err
		}, []string{"torus", "ring", "hypercube", "pref"}},
		{"bad mode", func() error {
			_, err := buildAxes(envs, probs, topos, sizes, dyns, "gossip", 1, 1, 10, 0)
			return err
		}, []string{"gossip"}},
	}
	for _, c := range cases {
		err := c.call()
		if err == nil {
			t.Errorf("%s: expected an error", c.name)
			continue
		}
		for _, want := range c.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not name %q", c.name, err, want)
			}
		}
	}
}

// TestFilterCells pins the -cells subset flag: indices and ranges
// select, original indices (and therefore seeds) are preserved, junk is
// rejected.
func TestFilterCells(t *testing.T) {
	envs, probs, topos, _, _, _ := goodAxes()
	a, err := buildAxes(envs, probs, topos, "16", "none", "component", 2, 7, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := a.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 16 {
		t.Fatalf("full grid has %d cells, want 16", len(grid.Cells))
	}

	sub, err := filterCells(grid, "0-2,9,14-15")
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, c := range sub.Cells {
		got = append(got, c.Index)
	}
	want := []int{0, 1, 2, 9, 14, 15}
	if len(got) != len(want) {
		t.Fatalf("filtered indices %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("filtered indices %v, want %v", got, want)
		}
		if sub.Cells[i].Opts.Seed != grid.Cells[want[i]].Opts.Seed {
			t.Fatalf("cell %d: filtered seed differs from the full grid's", want[i])
		}
	}

	for _, bad := range []string{"", "x", "5-2", "-3", "9-", "400"} {
		if _, err := filterCells(grid, bad); err == nil {
			t.Errorf("filterCells(%q): expected an error", bad)
		}
	}
}

// TestOpenTraceFileRejectsUnwritablePath pins the up-front -trace
// validation: a path that cannot be created fails immediately — before
// any cell runs — with an error naming both the flag and the path, and a
// writable path opens cleanly.
func TestOpenTraceFileRejectsUnwritablePath(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "no-such-subdir", "trace.jsonl")
	if _, err := openTraceFile(bad); err == nil {
		t.Fatalf("openTraceFile(%q): expected an error", bad)
	} else {
		for _, want := range []string{"-trace", bad} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not name %q", err, want)
			}
		}
	}
	// A directory is unwritable as a file too — same loud failure.
	if _, err := openTraceFile(dir); err == nil {
		t.Fatalf("openTraceFile(%q) on a directory: expected an error", dir)
	}

	good := filepath.Join(dir, "trace.jsonl")
	f, err := openTraceFile(good)
	if err != nil {
		t.Fatalf("openTraceFile(%q): %v", good, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(good); err != nil {
		t.Fatalf("trace file not created: %v", err)
	}
}
