// Command figures regenerates the paper's three figures as machine-checked
// artifacts:
//
//	figures -fig 1   # Fig. 1: out-of-order-pairs objective lacks local-to-global
//	figures -fig 2   # Fig. 2: circumscribing circle is not super-idempotent
//	figures -fig 3   # Fig. 3: convex hull is super-idempotent
//	figures          # all three
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1, 2 or 3; 0 = all)")
	quick := flag.Bool("quick", false, "reduced trial counts")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}

	sections := map[int]func(experiments.Config) experiments.Section{
		1: experiments.E1Fig1,
		2: experiments.E2Fig2,
		3: experiments.E3Fig3,
	}

	run := func(n int) bool {
		sec := sections[n](cfg)
		fmt.Printf("== %s: %s ==\n\nPaper's claim: %s\n\n%s\n", sec.ID, sec.Title, sec.Claim, sec.Body)
		if sec.ShapeHolds {
			fmt.Println("RESULT: the figure's claim holds. ✓")
		} else {
			fmt.Println("RESULT: the figure's claim DOES NOT hold. ✗")
		}
		fmt.Println()
		return sec.ShapeHolds
	}

	ok := true
	switch *fig {
	case 0:
		for n := 1; n <= 3; n++ {
			ok = run(n) && ok
		}
	case 1, 2, 3:
		ok = run(*fig)
	default:
		fmt.Fprintln(os.Stderr, "figures: -fig must be 0, 1, 2 or 3")
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}
