package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestVetToolSmoke is the multichecker end-to-end test: it builds the
// detlint binary, lays out a throwaway single-file module with one
// violation per analyzer (plus one suppressed site), and runs the real
// `go vet -vettool` pipeline against it — the exact invocation CI uses
// — expecting vet to fail with each analyzer's diagnostic and to stay
// silent about the suppressed line.
func TestVetToolSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not found: %v", err)
	}

	tmp := t.TempDir()
	tool := filepath.Join(tmp, "detlint")
	if runtime.GOOS == "windows" {
		tool += ".exe"
	}
	build := exec.Command(goBin, "build", "-o", tool, "repro/cmd/detlint")
	build.Dir = mustModuleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building detlint: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "fixturemod")
	writeFile(t, filepath.Join(mod, "go.mod"), "module fixturemod\n\ngo 1.24\n")
	writeFile(t, filepath.Join(mod, "fixture.go"), `package fixturemod

import (
	"math/rand"
	"time"
)

func Draw() int {
	return rand.New(rand.NewSource(1)).Intn(10)
}

func Stamp() int64 { return time.Now().UnixNano() }

func Sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

//det:hotpath
func Hot() []int { return make([]int, 8) }

func Suppressed() int64 {
	//lint:ignore timenow smoke fixture: suppression must silence this line
	return time.Now().UnixNano()
}
`)

	vet := exec.Command(goBin, "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool=detlint passed over a module full of violations\n%s", out)
	}
	text := string(out)
	for _, want := range []string{
		"math/rand.New draws outside",
		"math/rand.NewSource draws outside",
		"time.Now reads wall-clock",
		"range over map m iterates in nondeterministic order",
		"hotpath Hot: make allocates per call",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("vet output missing %q\n%s", want, text)
		}
	}
	if strings.Count(text, "time.Now reads") != 1 {
		t.Errorf("suppressed time.Now line still reported:\n%s", text)
	}
}

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/detlint → repo root
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
