// Detlint is the repo's determinism & hot-path contract checker: the
// internal/lint analyzer suite packaged as a vet tool.
//
// It is a unitchecker binary — the multichecker form that speaks `go
// vet`'s driver protocol — so the whole suite runs over the module
// with:
//
//	go build -o bin/detlint ./cmd/detlint
//	go vet -vettool=$PWD/bin/detlint ./...
//
// (vet's -vettool REPLACES the standard analyzers, so CI runs plain
// `go vet ./...` alongside.) Diagnostics are suppressed per site by
// `//lint:ignore <analyzer> <justification>` directives; the
// justification is mandatory and its absence is itself a diagnostic.
// See internal/lint and DESIGN.md "Invariants as analyzers".
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	unitchecker.Main(lint.All()...)
}
