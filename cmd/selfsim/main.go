// Command selfsim runs one self-similar computation under a chosen
// dynamic environment and reports how it went.
//
//	selfsim -problem min -graph ring -n 16 -env churn -p 0.3 -seed 7
//	selfsim -problem sum -graph complete -n 8 -mode pairwise
//	selfsim -problem sort -graph line -n 12 -env partition
//	selfsim -problem hull -graph ring -n 10 -env mobile
//
// Problems: min, max, sum, average, gcd, minpair, sort, hull.
// Graphs: line, ring, complete, star, grid, random.
// Environments: static, churn, power, partition, adversary, unfair,
// roundrobin, mobile.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
)

func main() {
	var (
		problem   = flag.String("problem", "min", "min | max | sum | average | gcd | minpair | sort | hull")
		graphName = flag.String("graph", "ring", "line | ring | complete | star | grid | random")
		n         = flag.Int("n", 16, "number of agents")
		envName   = flag.String("env", "churn", "static | churn | power | partition | adversary | unfair | roundrobin | mobile")
		p         = flag.Float64("p", 0.5, "availability probability (churn/power) or cut fraction (adversary)")
		seed      = flag.Int64("seed", 1, "random seed")
		mode      = flag.String("mode", "component", "component | pairwise")
		maxRounds = flag.Int("rounds", 100000, "maximum rounds")
		verbose   = flag.Bool("v", false, "print the h trajectory")
	)
	flag.Parse()

	g, err := buildGraph(*graphName, *n, *seed)
	if err != nil {
		fail(err)
	}
	e, err := buildEnv(*envName, g, *p)
	if err != nil {
		fail(err)
	}
	opts := sim.Options{
		Seed: *seed, StopOnConverged: true, MaxRounds: *maxRounds,
		CheckSteps: true, RecordH: *verbose, HEps: 1e-9,
	}
	if *mode == "pairwise" {
		opts.Mode = sim.PairwiseMode
	}

	//lint:ignore detrand CLI demo input generation from the -seed flag; documented output transcripts depend on this exact stdlib stream
	rng := rand.New(rand.NewSource(*seed))
	vals := rng.Perm(4 * *n)[:*n]

	switch *problem {
	case "min":
		res, err := sim.Run[int](problems.NewMin(), e, vals, opts)
		report(res, err, *verbose)
	case "max":
		res, err := sim.Run[int](problems.NewMax(4**n+1), e, vals, opts)
		report(res, err, *verbose)
	case "sum":
		res, err := sim.Run[int](problems.NewSum(), e, vals, opts)
		report(res, err, *verbose)
	case "gcd":
		for i := range vals {
			vals[i] = (vals[i] + 1) * 3
		}
		res, err := sim.Run[int](problems.NewGCD(), e, vals, opts)
		report(res, err, *verbose)
	case "average":
		fv := make([]float64, *n)
		for i, v := range vals {
			fv[i] = float64(v)
		}
		res, err := sim.Run[float64](problems.NewAverage(1e-9), e, fv, opts)
		report(res, err, *verbose)
	case "minpair":
		res, err := sim.Run[problems.Pair](problems.NewMinPair(*n, 4**n+1), e, problems.InitialPairs(vals), opts)
		report(res, err, *verbose)
	case "sort":
		sp, err := problems.NewSorting(vals)
		if err != nil {
			fail(err)
		}
		res, err := sim.Run[problems.Item](sp, e, problems.InitialItems(vals), opts)
		report(res, err, *verbose)
	case "hull":
		pts := make([]geom.Point, *n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		res, err := sim.Run[problems.HullState](problems.NewHull(pts), e, problems.InitialHulls(pts), opts)
		report(res, err, *verbose)
	default:
		fail(fmt.Errorf("unknown problem %q", *problem))
	}
}

func buildGraph(name string, n int, seed int64) (*graph.Graph, error) {
	switch name {
	case "line":
		return graph.Line(n), nil
	case "ring":
		return graph.Ring(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "star":
		return graph.Star(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "random":
		//lint:ignore detrand one-shot CLI topology construction from the -seed flag, before any engine runs
		return graph.ConnectedErdosRenyi(n, 0.2, rand.New(rand.NewSource(seed))), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}

func buildEnv(name string, g *graph.Graph, p float64) (env.Environment, error) {
	switch name {
	case "static":
		return env.NewStatic(g), nil
	case "churn":
		return env.NewEdgeChurn(g, p), nil
	case "power":
		return env.NewPowerLoss(g, p), nil
	case "partition":
		return env.NewPartitioner(g, 2, 5, 20), nil
	case "adversary":
		return env.NewAdversary(g, p, 10), nil
	case "unfair":
		return env.NewAdversary(g, p, 0), nil
	case "roundrobin":
		return env.NewRoundRobin(g), nil
	case "mobile":
		return env.NewMobile(g, 0.35, 0.05)
	default:
		return nil, fmt.Errorf("unknown environment %q", name)
	}
}

func report[T any](res *sim.Result[T], err error, verbose bool) {
	if err != nil {
		fail(err)
	}
	fmt.Printf("converged:    %v\n", res.Converged)
	fmt.Printf("round:        %d\n", res.Round)
	fmt.Printf("group steps:  %d\n", res.GroupSteps)
	fmt.Printf("messages:     %d\n", res.Messages)
	fmt.Printf("violations:   %d\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
	fmt.Printf("target:       %s\n", truncate(fmt.Sprint(res.Target), 100))
	fmt.Printf("final states: %s\n", truncate(fmt.Sprint(res.Final), 100))
	if verbose {
		fmt.Printf("h trajectory: %v\n", res.HTrace)
	}
	if !res.Converged || len(res.Violations) > 0 {
		os.Exit(1)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "selfsim:", err)
	os.Exit(2)
}
