// Designcheck: the paper's design methodology as an interactive workflow.
//
// §3 of the paper gives a recipe for deciding whether a distributed
// function f admits a self-similar algorithm: f must be super-idempotent
// (f(X ∪ Y) = f(f(X) ∪ Y)). This example plays the role of a designer
// trying three candidate functions and letting the library's checkers
// accept or refute each:
//
//  1. median — looks like min/max, but the checker finds a concrete
//     counterexample (it is idempotent, not super-idempotent);
//  2. second smallest — the paper's own §4.3 negative example, refuted
//     with the paper's own counterexample shape;
//  3. range (min × max via the product combinator) — passes, and then
//     runs to convergence under churn.
//
// Run with:
//
//	go run ./examples/designcheck
package main

import (
	"fmt"
	"log"
	"math/rand"

	selfsim "repro"
)

func main() {
	gen := func(r *rand.Rand) selfsim.Multiset[int] {
		n := 1 + r.Intn(6)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(10)
		}
		return selfsim.IntMultiset(vals...)
	}
	intCmp := func(a, b int) int { return a - b }
	domain := []int{0, 1, 2, 3}

	fmt.Println("Candidate 1: median consensus")
	err := selfsim.ExhaustiveSuperIdempotent(selfsim.MedianF(), selfsim.ExactEqual[int](), domain, intCmp, 3)
	if err == nil {
		log.Fatal("expected median to be refuted")
	}
	fmt.Printf("  REFUTED: %v\n", err)
	fmt.Println("  → no self-similar algorithm computes the median directly (§3.4).")
	fmt.Println()

	fmt.Println("Candidate 2: second smallest (the paper's §4.3 example)")
	err = selfsim.ExhaustiveSuperIdempotent(selfsim.SecondSmallestF(), selfsim.ExactEqual[int](), domain, intCmp, 3)
	if err == nil {
		log.Fatal("expected second-smallest to be refuted")
	}
	fmt.Printf("  REFUTED: %v\n", err)
	fmt.Println("  → the paper's fix: generalize the state (min-pair), as NewMinPair does.")
	fmt.Println()

	fmt.Println("Candidate 3: range = min × max (product combinator)")
	rangeP := selfsim.NewRange(64)
	if err := selfsim.CheckSuperIdempotent(rangeP.F(), selfsim.ExactEqual[selfsim.Tuple[int, int]](),
		func(r *rand.Rand) selfsim.Multiset[selfsim.Tuple[int, int]] {
			m := gen(r)
			tuples := make([]selfsim.Tuple[int, int], m.Len())
			for i := range tuples {
				tuples[i] = selfsim.Tuple[int, int]{A: m.At(i), B: m.At(i)}
			}
			return selfsim.NewMultiset(rangeP.Cmp(), tuples...)
		}, 1000, 1); err != nil {
		log.Fatalf("range unexpectedly refuted: %v", err)
	}
	fmt.Println("  ACCEPTED: no counterexample in 1000 random trials.")

	// Obligations on a small instance, exhaustively.
	rep, err := selfsim.ModelCheck[selfsim.Tuple[int, int]](rangeP, selfsim.Complete(3),
		selfsim.InitialTuples([]int{4, 1, 3}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  model check (K3): %s\n", rep.Summary())
	if !rep.OK() {
		log.Fatal("obligations failed")
	}

	// And it runs.
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := selfsim.Simulate[selfsim.Tuple[int, int]](rangeP,
		selfsim.MarkovLinks(selfsim.Ring(len(vals)), 0.3, 0.2),
		selfsim.InitialTuples(vals),
		selfsim.Options{Seed: 9, StopOnConverged: true, CheckSteps: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  run under bursty churn: converged=%v in %d rounds; every agent holds %v\n",
		res.Converged, res.Round, res.Final[0])
}
