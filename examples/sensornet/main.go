// Sensornet: aggregate sensor readings in a field of unreliable motes.
//
// The paper's §3.1 motivating scenario: a sensor network must compute a
// function of sensor values — here the average temperature and the
// minimum battery level — while motes duty-cycle (power loss) and radio
// links fade (churn). Partitions split the field into valleys; each
// valley keeps aggregating on its own (self-similarity) and the global
// answer emerges once the field heals.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	selfsim "repro"
)

func main() {
	const motes = 24

	// A connected random radio topology.
	g := selfsim.RandomConnected(motes, 0.15, 42)
	fmt.Printf("radio topology: %s (%d links)\n\n", g.Name(), g.M())

	// Simulated readings.
	temps := make([]float64, motes)
	battery := make([]int, motes)
	for i := range temps {
		temps[i] = 15 + float64((i*37)%100)/10 // 15.0 … 24.9 °C
		battery[i] = 20 + (i*53)%80            // 20 … 99 %
	}

	// --- Average temperature under power loss ---
	res, err := selfsim.Simulate[float64](selfsim.NewAverage(1e-6),
		selfsim.PowerLoss(g, 0.3), temps,
		selfsim.Options{Seed: 7, StopOnConverged: true, HEps: 1e-9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average temperature: %.3f °C (every mote agrees)\n", res.Final[0])
	fmt.Printf("  converged in %d rounds with 30%% of motes asleep each round\n\n", res.Round)

	// --- Minimum battery under link churn + partitions ---
	minRes, err := selfsim.Simulate[int](selfsim.NewMin(),
		selfsim.Partitioner(g, 3, 4, 12), battery,
		selfsim.Options{Seed: 7, StopOnConverged: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum battery level: %d%%\n", minRes.Final[0])
	fmt.Printf("  converged in %d rounds despite 3-way partitions (12 of every 16 rounds)\n\n", minRes.Round)

	// --- Total energy budget (the §4.2 non-consensus sum) ---
	sumRes, err := selfsim.Simulate[int](selfsim.NewSum(),
		selfsim.EdgeChurn(selfsim.Complete(motes), 0.2), battery,
		selfsim.Options{Seed: 7, StopOnConverged: true, Mode: selfsim.PairwiseMode})
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, v := range sumRes.Final {
		total += v
	}
	fmt.Printf("total energy budget: %d%% aggregated at one mote (pairwise gossip)\n", total)
	fmt.Printf("  converged in %d rounds; the sum problem needs the complete\n", sumRes.Round)
	fmt.Println("  interaction graph (§4.2) — depleted motes cannot relay.")
}
