// Quickstart: minimum consensus in a dynamic distributed system.
//
// Eight agents hold integers. The environment is hostile: every
// communication link is only up 30% of the time. The self-similar
// algorithm still drives every agent to the global minimum — it just
// takes as long as the environment dictates.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	selfsim "repro"
)

func main() {
	values := []int{9, 4, 7, 1, 8, 2, 6, 5}

	g := selfsim.Ring(len(values))
	environment := selfsim.EdgeChurn(g, 0.3) // each link up 30% of rounds

	res, err := selfsim.Simulate[int](selfsim.NewMin(), environment, values,
		selfsim.Options{
			Seed:            1,
			StopOnConverged: true,
			CheckSteps:      true, // verify every step is a valid D-step
			RecordH:         true,
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("initial values: %v\n", values)
	fmt.Printf("target f(S(0)): %v\n", res.Target)
	fmt.Printf("converged:      %v after %d rounds\n", res.Converged, res.Round)
	fmt.Printf("final states:   %v\n", res.Final)
	fmt.Printf("messages:       %d\n", res.Messages)
	fmt.Printf("h trajectory:   %v\n", res.HTrace)

	// The same system under a benign environment: one round.
	fast, err := selfsim.Simulate[int](selfsim.NewMin(), selfsim.Static(g), values,
		selfsim.Options{Seed: 1, StopOnConverged: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a benign environment the same algorithm takes %d round(s) —\n", fast.Round)
	fmt.Println("self-similar algorithms speed up or slow down with the resources available.")
}
