// Geofence: mobile agents agree on the perimeter that contains them all.
//
// The paper's §4.5 example with its mobile-agent motivation: drones
// moving through an area must agree on the convex hull of their positions
// and the circumscribing circle (the tightest circular geofence). Agents
// communicate only when within radio range, so the interaction graph
// changes every step (random-waypoint mobility).
//
// The run is repeated on the asynchronous goroutine-per-agent runtime to
// show the same algorithm working without any round structure.
//
// Run with:
//
//	go run ./examples/geofence
package main

import (
	"fmt"
	"log"

	selfsim "repro"
)

func main() {
	positions := []selfsim.Point{
		{X: 1, Y: 1}, {X: 8, Y: 2}, {X: 4, Y: 7}, {X: 2, Y: 5},
		{X: 9, Y: 6}, {X: 6, Y: 4}, {X: 3, Y: 9}, {X: 7, Y: 8},
	}
	problem := selfsim.NewHull(positions)

	// --- Round-based run under random-waypoint mobility ---
	g := selfsim.Complete(len(positions)) // pairs in range can talk
	mobile, err := selfsim.Mobile(g, 0.35, 0.04)
	if err != nil {
		log.Fatal(err)
	}
	res, err := selfsim.Simulate[selfsim.HullState](problem, mobile,
		selfsim.InitialHulls(positions),
		selfsim.Options{Seed: 5, StopOnConverged: true, HEps: 1e-9})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Converged {
		log.Fatalf("did not converge in %d rounds", res.Rounds)
	}

	hull := res.Final[0].V
	circle := selfsim.Circumcircle(res.Final[0])
	fmt.Printf("agents:             %d (random-waypoint mobility, radio range 0.35)\n", len(positions))
	fmt.Printf("converged in:       %d rounds\n", res.Round)
	fmt.Printf("hull vertices:      %v\n", hull)
	fmt.Printf("geofence circle:    center %v, radius %.4f\n\n", circle.C, circle.R)

	// --- The same computation on the asynchronous runtime ---
	asyncRes, err := selfsim.SimulateAsync[selfsim.HullState](problem,
		selfsim.Ring(len(positions)), selfsim.InitialHulls(positions),
		selfsim.DefaultAsyncOptions(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async runtime:      converged=%v after %d gossip exchanges\n",
		asyncRes.Converged, asyncRes.Ops)
	fmt.Printf("async circle:       %v (same answer, no rounds, no coordinator)\n",
		selfsim.Circumcircle(asyncRes.Final[0]))
}
