// Sorting: a distributed array sorts itself while an adversary cuts links.
//
// §4.4 of the paper: agent i owns array slot i and currently holds some
// value; agents swap out-of-order values with neighbours. The environment
// here is an adversary that cuts 70% of the links every round (subject to
// a fairness window, so assumption (2) holds). Progress is measured by
// the paper's squared-displacement objective h — printed as the run
// proceeds, strictly decreasing to zero.
//
// Run with:
//
//	go run ./examples/sorting
package main

import (
	"fmt"
	"log"

	selfsim "repro"
)

func main() {
	values := []int{70, 20, 60, 10, 50, 0, 40, 30, 90, 80}
	problem, err := selfsim.NewSorting(values)
	if err != nil {
		log.Fatal(err)
	}

	g := selfsim.Line(len(values)) // §4.4: the line suffices
	environment := selfsim.Adversary(g, 0.7, 8)

	res, err := selfsim.Simulate[selfsim.Item](problem, environment,
		selfsim.InitialItems(values),
		selfsim.Options{
			Seed:            3,
			StopOnConverged: true,
			Mode:            selfsim.PairwiseMode, // adjacent swaps only
			RecordH:         true,
			CheckSteps:      true,
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("initial array: %v\n", values)
	fmt.Printf("sorted after %d rounds under a 70%%-cut adversary\n\n", res.Round)

	fmt.Println("objective h = Σ (position − desired position)², every ~10 rounds:")
	for i := 0; i < len(res.HTrace); i += 10 {
		fmt.Printf("  round %3d: h = %g\n", i, res.HTrace[i])
	}
	fmt.Printf("  round %3d: h = %g\n\n", len(res.HTrace)-1, res.HTrace[len(res.HTrace)-1])

	final := make([]int, len(values))
	for _, it := range res.Final {
		final[it.Index] = it.Value
	}
	fmt.Printf("final array:   %v\n", final)
	fmt.Printf("monitor violations: %d (every swap was a valid D-step)\n", len(res.Violations))
}
