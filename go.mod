module repro

go 1.24

require golang.org/x/tools v0.0.0-00010101000000-000000000000

replace golang.org/x/tools => ./third_party/golang.org/x/tools
