#!/usr/bin/env bash
# Record the steady-state round-scaling benchmarks to BENCH_roundscale.json.
#
# Runs BenchmarkSimRoundScale (N ∈ {10⁴, 10⁵, 10⁶} pairwise churn cells
# on a warm sweep worker — see bench_test.go) plus its probes-ON twin
# BenchmarkSimRoundProbed, and writes per-N ns/round and allocs/round
# plus a phase_split row breaking one probed cell's round into engine
# phases (env/touched/update/match/step/monitor). The round count is
# parsed from each benchmark's rounds/op metric — never hardcoded here —
# so a bench_test.go retune cannot silently skew the recorded per-round
# numbers. CI uploads the file as a build artifact, so the scaling row is
# recorded per commit; the claim to watch is allocs/round staying flat in
# N (the delta-indexed round path heaps per change and per round, never
# per agent or per edge), while ns/round grows with the matching draw's
# O(usable edges).
#
# The file also records the sched engine's scaling row: BenchmarkSchedScale
# runs min over the hypercube at N = 2^10, 2^13, 2^17 on the sharded
# actor runtime and reports proper steps per wall-clock second from the
# engine's own clock (see Result.ProperStepsPerSec); the claim to watch
# there is throughput staying within one order of magnitude across three
# decades of N while allocs/op stays setup-only flat.
#
# Usage: scripts/bench_record.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out_file=${1:-BENCH_roundscale.json}
# The benchmark's sub-benchmark grid: a cell silently dropping out (a
# skip, an OOM kill, a renamed sub-benchmark) must fail the record, not
# produce a shorter file that downstream diffing misreads as a trend.
expected_cells=3
expected_sched_cells=3

out=$(go test -run '^$' -bench 'BenchmarkSimRoundScale$|BenchmarkSimRoundProbed$|BenchmarkSchedScale$' -benchtime=1x -benchmem .)
echo "$out"

echo "$out" | awk -v want="$expected_cells" -v want_sched="$expected_sched_cells" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  # roundsof scans the current benchmark line for its rounds/op metric;
  # "" if the benchmark did not report one.
  function roundsof(   i) {
    for (i = 2; i <= NF; i++) if ($i == "rounds/op") return $(i - 1)
    return ""
  }
  $1 ~ /^BenchmarkSimRoundScale\/N=/ {
    split($1, parts, "=")
    sub(/-[0-9]+$/, "", parts[2])   # strip the GOMAXPROCS suffix if present
    cells++
    rounds = roundsof()
    if (parts[2] !~ /^[0-9]+$/ || $3 !~ /^[0-9.]+$/ || rounds !~ /^[0-9.]+$/ || rounds + 0 <= 0 ||
        $(NF-1) !~ /^[0-9]+$/ || $NF != "allocs/op") {
      printf "bench_record: unparseable benchmark line: %s\n", $0 > "/dev/stderr"
      bad = 1
      next
    }
    n[cells] = parts[2]
    ns[cells] = $3
    allocs[cells] = $(NF-1)
    rop[cells] = rounds + 0
    if (rop[cells] != rop[1]) {
      printf "bench_record: rounds/op differs across cells (%s vs %s)\n", rop[cells], rop[1] > "/dev/stderr"
      bad = 1
    }
  }
  # ppsof scans the current benchmark line for its propersteps/s metric.
  function ppsof(   i) {
    for (i = 2; i <= NF; i++) if ($i == "propersteps/s") return $(i - 1)
    return ""
  }
  $1 ~ /^BenchmarkSchedScale\/N=/ {
    split($1, sparts, "=")
    sub(/-[0-9]+$/, "", sparts[2])
    scells++
    pps = ppsof()
    if (sparts[2] !~ /^[0-9]+$/ || pps !~ /^[0-9.]+(e\+?[0-9]+)?$/ || pps + 0 <= 0 ||
        $(NF-1) !~ /^[0-9]+$/ || $NF != "allocs/op") {
      printf "bench_record: unparseable sched benchmark line: %s\n", $0 > "/dev/stderr"
      bad = 1
      next
    }
    sn[scells] = sparts[2]
    spps[scells] = pps + 0
    sallocs[scells] = $(NF-1)
  }
  $1 ~ /^BenchmarkSimRoundProbed/ {
    probed_rounds = roundsof() + 0
    if (probed_rounds <= 0 || $NF != "allocs/op") {
      printf "bench_record: unparseable benchmark line: %s\n", $0 > "/dev/stderr"
      bad = 1
      next
    }
    # Collect every ns_<phase>/round metric the probed benchmark reports.
    nphase = 0
    for (i = 2; i <= NF; i++)
      if ($i ~ /^ns_[a-z]+\/round$/) {
        nphase++
        pname[nphase] = substr($i, 4, length($i) - 9)   # "ns_env/round" -> "env"
        pns[nphase] = $(i - 1)
      }
    probed = 1
  }
  END {
    if (bad) exit 1
    if (cells != want) {
      printf "bench_record: got %d BenchmarkSimRoundScale cells, want %d\n", cells, want > "/dev/stderr"
      exit 1
    }
    if (!probed || nphase == 0) {
      printf "bench_record: no BenchmarkSimRoundProbed phase metrics in output\n" > "/dev/stderr"
      exit 1
    }
    if (scells != want_sched) {
      printf "bench_record: got %d BenchmarkSchedScale cells, want %d\n", scells, want_sched > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkSimRoundScale\",\n"
    printf "  \"recorded\": \"%s\",\n", date
    printf "  \"rounds_per_op\": %d,\n", rop[1]
    printf "  \"cells\": [\n"
    for (i = 1; i <= cells; i++)
      printf "    {\"n\": %s, \"ns_per_round\": %.1f, \"allocs_per_round\": %.3f}%s\n",
        n[i], ns[i] / rop[i], allocs[i] / rop[i], (i < cells ? "," : "")
    printf "  ],\n"
    printf "  \"phase_split\": {\n"
    printf "    \"benchmark\": \"BenchmarkSimRoundProbed\", \"n\": 100000, \"rounds_per_op\": %d,\n", probed_rounds
    printf "    \"ns_per_round\": {"
    for (i = 1; i <= nphase; i++)
      printf "\"%s\": %.1f%s", pname[i], pns[i], (i < nphase ? ", " : "")
    printf "}\n"
    printf "  },\n"
    printf "  \"sched_scale\": {\n"
    printf "    \"benchmark\": \"BenchmarkSchedScale\",\n"
    printf "    \"cells\": [\n"
    for (i = 1; i <= scells; i++)
      printf "      {\"n\": %s, \"propersteps_per_sec\": %.0f, \"allocs_per_op\": %s}%s\n",
        sn[i], spps[i], sallocs[i], (i < scells ? "," : "")
    printf "    ]\n"
    printf "  }\n}\n"
  }
' > "$out_file"

echo "wrote $out_file:"
cat "$out_file"
