#!/usr/bin/env bash
# Record the steady-state round-scaling benchmarks to BENCH_roundscale.json.
#
# Runs BenchmarkSimRoundScale (N ∈ {10⁴, 10⁵, 10⁶} pairwise churn cells
# on a warm sweep worker, 32 fixed rounds per op — see bench_test.go) and
# writes per-N ns/round and allocs/round. CI uploads the file as a build
# artifact, so the scaling row is recorded per commit; the claim to watch
# is allocs/round staying flat in N (the delta-indexed round path heaps
# per change and per round, never per agent or per edge), while ns/round
# grows with the matching draw's O(usable edges).
#
# Usage: scripts/bench_record.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out_file=${1:-BENCH_roundscale.json}
rounds_per_op=32
# The benchmark's sub-benchmark grid: a cell silently dropping out (a
# skip, an OOM kill, a renamed sub-benchmark) must fail the record, not
# produce a shorter file that downstream diffing misreads as a trend.
expected_cells=3

out=$(go test -run '^$' -bench 'BenchmarkSimRoundScale$' -benchtime=1x -benchmem .)
echo "$out"

echo "$out" | awk -v rounds="$rounds_per_op" -v want="$expected_cells" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
  $1 ~ /^BenchmarkSimRoundScale\/N=/ {
    split($1, parts, "=")
    sub(/-[0-9]+$/, "", parts[2])   # strip the GOMAXPROCS suffix if present
    cells++
    if (parts[2] !~ /^[0-9]+$/ || $3 !~ /^[0-9.]+$/ || $(NF-1) !~ /^[0-9]+$/ || $NF != "allocs/op") {
      printf "bench_record: unparseable benchmark line: %s\n", $0 > "/dev/stderr"
      bad = 1
      next
    }
    n[cells] = parts[2]
    ns[cells] = $3
    allocs[cells] = $(NF-1)
  }
  END {
    if (bad) exit 1
    if (cells != want) {
      printf "bench_record: got %d BenchmarkSimRoundScale cells, want %d\n", cells, want > "/dev/stderr"
      exit 1
    }
    printf "{\n"
    printf "  \"benchmark\": \"BenchmarkSimRoundScale\",\n"
    printf "  \"recorded\": \"%s\",\n", date
    printf "  \"rounds_per_op\": %d,\n", rounds
    printf "  \"cells\": [\n"
    for (i = 1; i <= cells; i++)
      printf "    {\"n\": %s, \"ns_per_round\": %.1f, \"allocs_per_round\": %.3f}%s\n",
        n[i], ns[i] / rounds, allocs[i] / rounds, (i < cells ? "," : "")
    printf "  ]\n}\n"
  }
' > "$out_file"

echo "wrote $out_file:"
cat "$out_file"
