#!/usr/bin/env bash
# Hard allocation budgets for the engine hot paths, enforced in CI.
#
# BenchmarkSimComponentRing64 pins the round-based engine's zero-alloc
# round loop. Its allocs/op is one GroupStep copy per executed group step
# (the Problem API returns a fresh after-state so callers can never alias
# internal scratch) plus one-time setup; the budget of 1600 sits ~15%
# above the ~1374 the fixed seed produces after the PR 3 re-baseline (the
# sparse-churn environment changed the fixed-seed trajectory, not the
# per-step cost). BenchmarkSimPairwiseSharded4k pins the sharded pairwise
# round: the partitioned matcher's buffers are engine-owned and reused
# and PairStep is allocation-free, so a 4096-agent run sits near 710
# allocs/op, almost all setup — a regression to even one allocation per
# matched pair would add ~65k and fail loudly. BenchmarkAsyncRuntimeMin
# pins the asynchronous runtime after the reusable-reply-channel and
# receptive-backoff fixes: it runs near 500 allocs/op (scheduling-noisy),
# and the budget of 1200 is far below the ~4000 allocs/op the
# per-exchange-channel implementation cost, so a regression to
# O(exchanges) allocation fails loudly. BenchmarkSweepGrid pins the
# scenario-grid runner's warm-engine contract: one persistent Runner
# executes a 24-cell pairwise grid per op, so steady-state cells pay only
# per-run bookkeeping (~40 allocs/cell — Result, probe, env masks,
# final-state copy; ~978 allocs/op measured after the bitset-mask
# migration, budget 1200, far below the several-thousand a grid whose
# cells re-paid engine set-up — tracker, matcher, pool, seeder source —
# would cost).
#
# BenchmarkSimWithDynamics is BenchmarkSimComponentRing64 with an EMPTY
# dynamics schedule attached and shares its 1600 budget: the dynamics
# hook (per-round Begin/EndRound + frozen check) must add ~0 allocs/round
# — the fixed seed measures ~1384 vs ~1377 plain, the difference being
# one-time applier setup. A regression that allocates per round (mask
# copies, per-event garbage) multiplies the number and fails loudly.
#
# BenchmarkSimPairwiseDelta1e5 pins the O(changes) steady-state round
# path: 64 post-warmup pairwise rounds at N = 10⁵ on a warm sweep worker
# (availability 0.999, so ~0.1% of edges flip per round and the
# usable-edge delta index absorbs them incrementally). The fixed seed
# measures ~256 allocs/op — exclusively per-run bookkeeping (Result,
# probe, environment, initial/final state copies); the 64 delta-indexed
# rounds themselves are allocation-free. The budget of 400 sits ~55%
# above that: a regression that allocates even once per round adds 64
# and fails, and one that re-pays any O(N) or O(E) buffer per round
# blows through it by orders of magnitude.
#
# BenchmarkJoinSplice pins the growable-population attachment path: a
# warm worker runs a Ring(4096) pairwise cell that splices 8 agents in
# at round 4 (32 fixed rounds per op). Each op pays per-run bookkeeping
# plus the join machinery — the clone of the pristine grid graph, the
# ring splice, the extended cached partition, matcher/mask/tracker
# growth, and the joiners' identity-keyed seeder substreams — all of
# which must be O(joined subgraph + changed edges). The fixed seed
# measures ~267 allocs/op; the budget of 400 sits ~50% above, so a
# regression that allocates per agent (4096 would blow through it) or
# per round after the splice fails loudly.
#
# BenchmarkSimRoundProbed is the same warm pairwise delta cell at
# N = 10⁵ (32 rounds/op) with an observability probe ATTACHED, and it
# shares the 400 budget: the probe's hot path (BeginRound/Begin/End/Add
# and the counter increments inside the pool, shards, and round loop)
# must be allocation-free, so probes-on allocs/op equals the unprobed
# per-run bookkeeping (~165 measured — fewer rounds than Delta1e5's 64,
# same fixed-cost set). A regression that allocates per phase sample
# adds hundreds per op (32 rounds × 7+ phase brackets) and fails loudly.
#
# BenchmarkSchedExchange1e4 pins the sharded actor scheduler's
# per-exchange allocation contract: an 8192-agent hypercube min cell with
# a 60·N (~500k) initiation budget runs to convergence in ~73 allocs/op —
# exclusively setup (shard structs, mailbox slab, CSR arrays, run
# queues); the event loop's push/pop/steal/defer hot path is
# allocation-free by the detlint hotalloc contract. The budget of 400
# sits ~5× above setup: a regression that allocates even one object per
# exchange (a boxed message, a heap node) adds tens of thousands and
# fails loudly.
#
# Benchmarks run one iteration with a fixed seed, so allocs/op is a stable
# budget number for the simulator and a bounded-noise one for the runtime.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench 'BenchmarkSimComponentRing64$|BenchmarkSimPairwiseSharded4k$|BenchmarkAsyncRuntimeMin$|BenchmarkSweepGrid$|BenchmarkSimWithDynamics$|BenchmarkSimPairwiseDelta1e5$|BenchmarkJoinSplice$|BenchmarkSimRoundProbed$|BenchmarkSchedExchange1e4$' -benchtime=1x -benchmem .)
echo "$out"

fail=0
check() {
  local name=$1 budget=$2 line allocs unit
  line=$(echo "$out" | awk -v n="^$name" '$1 ~ n {print; exit}')
  if [ -z "$line" ]; then
    echo "BUDGET FAIL: $name: no benchmark output (renamed? build failure swallowed?)" >&2
    fail=1
    return
  fi
  allocs=$(echo "$line" | awk '{print $(NF-1)}')
  unit=$(echo "$line" | awk '{print $NF}')
  # Parse defensively: a format drift (missing -benchmem columns, a
  # non-integer in the allocs field) must fail the budget, not slip
  # through an arithmetic-test error as a pass.
  if [ "$unit" != "allocs/op" ] || ! [[ "$allocs" =~ ^[0-9]+$ ]]; then
    echo "BUDGET FAIL: $name: unparseable benchmark line (want '<n> allocs/op' tail): $line" >&2
    fail=1
    return
  fi
  if [ "$allocs" -gt "$budget" ]; then
    echo "BUDGET FAIL: $name: $allocs allocs/op > budget $budget" >&2
    fail=1
  else
    echo "BUDGET OK: $name: $allocs allocs/op <= $budget"
  fi
}

check BenchmarkSimComponentRing64 1600
check BenchmarkSimPairwiseSharded4k 1500
check BenchmarkAsyncRuntimeMin 1200
check BenchmarkSweepGrid 1200
check BenchmarkSimWithDynamics 1600
check BenchmarkSimPairwiseDelta1e5 400
check BenchmarkJoinSplice 400
check BenchmarkSimRoundProbed 400
check BenchmarkSchedExchange1e4 400
exit $fail
