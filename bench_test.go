package selfsim

// Benchmark harness: one benchmark per reproduction experiment (E1–E17,
// regenerating the paper's Figures 1–3 and every prose claim — see
// DESIGN.md §5 for the experiment index), plus micro-benchmarks of the
// substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute the same code paths as
// cmd/experiments at quick scale, so `-bench` doubles as a smoke test of
// the full harness; ns/op numbers measure the cost of regenerating each
// experiment.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dynamics"
	sweepenv "repro/internal/env"
	"repro/internal/experiments"
	"repro/internal/geom"
	ms "repro/internal/multiset"
	"repro/internal/obs"
	"repro/internal/problems"
	"repro/internal/sweep"
)

func benchSection(b *testing.B, run func(experiments.Config) experiments.Section) {
	b.Helper()
	cfg := experiments.QuickConfig()
	for i := 0; i < b.N; i++ {
		sec := run(cfg)
		if !sec.ShapeHolds {
			b.Fatalf("%s: shape does not hold\n%s", sec.ID, sec.Body)
		}
	}
}

// --- One benchmark per experiment (tables & figures) ---

// BenchmarkE1Fig1Sorting regenerates Fig. 1: exhaustive local-to-global
// search for the out-of-order-pairs objective.
func BenchmarkE1Fig1Sorting(b *testing.B) { benchSection(b, experiments.E1Fig1) }

// BenchmarkE2Fig2Circle regenerates Fig. 2: the naive circumscribing
// circle is not super-idempotent.
func BenchmarkE2Fig2Circle(b *testing.B) { benchSection(b, experiments.E2Fig2) }

// BenchmarkE3Fig3Hull regenerates Fig. 3: the convex hull is
// super-idempotent and computes the circumscribing circle under churn.
func BenchmarkE3Fig3Hull(b *testing.B) { benchSection(b, experiments.E3Fig3) }

// BenchmarkE4Adaptivity regenerates the availability sweep (rounds vs p).
func BenchmarkE4Adaptivity(b *testing.B) { benchSection(b, experiments.E4Adaptivity) }

// BenchmarkE5Partition regenerates the partition/heal/snapshot
// comparison.
func BenchmarkE5Partition(b *testing.B) { benchSection(b, experiments.E5Partition) }

// BenchmarkE6Scale regenerates the rounds-vs-N scalability table.
func BenchmarkE6Scale(b *testing.B) { benchSection(b, experiments.E6Scale) }

// BenchmarkE7Sum regenerates the §4.2 complete-graph requirement table.
func BenchmarkE7Sum(b *testing.B) { benchSection(b, experiments.E7Sum) }

// BenchmarkE8Sort regenerates the §4.4 line-graph sorting table.
func BenchmarkE8Sort(b *testing.B) { benchSection(b, experiments.E8Sort) }

// BenchmarkE9Checkers regenerates the super-idempotence classification
// table.
func BenchmarkE9Checkers(b *testing.B) { benchSection(b, experiments.E9Classification) }

// BenchmarkE10ModelCheck regenerates the proof-obligation model-checking
// table.
func BenchmarkE10ModelCheck(b *testing.B) { benchSection(b, experiments.E10ModelCheck) }

// BenchmarkE11Ablation regenerates the granularity/baseline ablation.
func BenchmarkE11Ablation(b *testing.B) { benchSection(b, experiments.E11Ablation) }

// BenchmarkE12Fairness regenerates the fairness ablation.
func BenchmarkE12Fairness(b *testing.B) { benchSection(b, experiments.E12Fairness) }

// --- Round-engine hot-path benchmarks (allocation budget) ---
//
// The BenchmarkSim* pair measures the round-based engine itself — one full
// simulated system per iteration with a FIXED seed, so every iteration
// executes the identical round sequence and allocs/op is a stable budget
// number. DESIGN.md records the before/after numbers for the
// zero-allocation engine-core refactor.

// BenchmarkSimComponentRing64 measures the ComponentMode hot path: min
// consensus on a 64-ring at 50% edge availability.
func BenchmarkSimComponentRing64(b *testing.B) {
	g := Ring(64)
	vals := rand.New(rand.NewSource(1)).Perm(256)[:64]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate[int](NewMin(), EdgeChurn(g, 0.5), vals,
			Options{Seed: 1, StopOnConverged: true, MaxRounds: 100_000})
		if err != nil || !res.Converged {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkSimPairwiseComplete32 measures the PairwiseMode hot path: sum
// on K32 at 50% edge availability.
func BenchmarkSimPairwiseComplete32(b *testing.B) {
	g := Complete(32)
	vals := rand.New(rand.NewSource(2)).Perm(128)[:32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate[int](NewSum(), EdgeChurn(g, 0.5), vals,
			Options{Seed: 2, StopOnConverged: true, MaxRounds: 100_000, Mode: PairwiseMode})
		if err != nil || !res.Converged {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkSimShardedRing10k measures the sharded state layout end to
// end: min consensus on a 10⁴-ring at 99% availability, 4 shards, fixed
// seed — the per-round delta staging, parallel shard repair, P-way merged
// snapshot, and sharded monitor reduction all on the hot path.
func BenchmarkSimShardedRing10k(b *testing.B) {
	g := Ring(10_000)
	vals := rand.New(rand.NewSource(7)).Perm(40_000)[:10_000]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate[int](NewMin(), EdgeChurn(g, 0.99), vals,
			Options{Seed: 7, StopOnConverged: true, MaxRounds: 200_000, Shards: 4})
		if err != nil || !res.Converged {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkSimPairwiseSharded4k measures the sharded pairwise round end
// to end: min gossip on a 4096-agent hypercube at 99% availability with
// the partitioned matcher forced to 4 blocks (so the boundary
// reconciliation pass is on the hot path), 4 state shards, fixed seed.
// The per-round matching buffers are matcher-owned and reused, so
// allocs/op is a stable budget number like the component path's
// (enforced by scripts/check_alloc_budget.sh).
func BenchmarkSimPairwiseSharded4k(b *testing.B) {
	g := Hypercube(12)
	vals := rand.New(rand.NewSource(9)).Perm(4 * g.N())[:g.N()]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate[int](NewMin(), EdgeChurn(g, 0.99), vals,
			Options{Seed: 9, StopOnConverged: true, MaxRounds: 200_000,
				Mode: PairwiseMode, Shards: 4, MatchBlocks: 4})
		if err != nil || !res.Converged {
			b.Fatal("run failed")
		}
	}
}

// benchWarmPairwiseCell runs one fixed-seed pairwise churn cell on a
// persistent warm sweep worker: a FIXED number of rounds per iteration
// (StopOnConverged off), so ns/op ÷ rounds and allocs/op ÷ rounds are
// per-round numbers. Availability 0.999 puts the system in the sparse
// regime the delta index targets — ~0.1% of edges flip per round, so a
// round's index maintenance is O(changes) while the matching draw itself
// remains the algorithm's O(usable edges).
func benchWarmPairwiseCell(b *testing.B, w *sweep.Worker, g *Graph, rounds int) {
	benchWarmPairwiseCellProbed(b, w, g, rounds, nil)
}

// benchWarmPairwiseCellProbed is benchWarmPairwiseCell with an optional
// observability probe attached to the MEASURED iterations (the warm-up
// run stays unprobed, so the probe's aggregates cover exactly
// rounds×b.N rounds). Every run reports rounds/op as a benchmark metric
// — scripts/bench_record.sh parses it instead of hardcoding the round
// count — and a probed run additionally reports per-phase ns_*/round
// metrics, which bench_record.sh records as the phase_split row of
// BENCH_roundscale.json.
func benchWarmPairwiseCellProbed(b *testing.B, w *sweep.Worker, g *Graph, rounds int, probe *obs.Probe) {
	cell := sweep.Cell{
		Env:      sweepenv.ChurnDesc(0.999),
		Problem:  problems.MinDesc(),
		Topo:     "ring",
		Graph:    g,
		Mode:     PairwiseMode,
		InitSeed: int64(g.N()),
		Opts: Options{Seed: 1, MaxRounds: rounds,
			Mode: PairwiseMode, Shards: 4},
	}
	if _, err := w.Do(cell); err != nil { // warm the engine scratch
		b.Fatal(err)
	}
	cell.Opts.Probe = probe
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr, err := w.Do(cell)
		if err != nil || cr.Rounds != rounds {
			b.Fatalf("cell run failed: %v (rounds=%d)", err, cr.Rounds)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rounds), "rounds/op")
	if probe != nil {
		rep := probe.Report()
		total := float64(rounds) * float64(b.N)
		for _, ph := range []obs.Phase{
			obs.PhaseEnvStep, obs.PhaseTouched, obs.PhaseMatcherUpdate,
			obs.PhaseMatch, obs.PhaseGroupStep, obs.PhaseMonitor,
		} {
			b.ReportMetric(float64(rep.PhaseNs(ph))/total, "ns_"+ph.String()+"/round")
		}
	}
}

// BenchmarkSimRoundScale measures steady-state pairwise round cost at
// N ∈ {10⁴, 10⁵, 10⁶} on a warm engine, roundsPerOp rounds per
// iteration. scripts/bench_record.sh runs this family and records
// ns/round and allocs/round per N in BENCH_roundscale.json; the headline
// acceptance claim is allocs/round flat in N (heap traffic tracks
// changes and rounds, not graph size).
func BenchmarkSimRoundScale(b *testing.B) {
	const roundsPerOp = 32
	w := sweep.NewWorker()
	defer w.Close()
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			benchWarmPairwiseCell(b, w, Ring(n), roundsPerOp)
		})
	}
}

// BenchmarkSimPairwiseDelta1e5 is the steady-state allocation-budget
// benchmark for the O(changes) round path at N = 10⁵ (64 rounds per op
// on a warm engine — post-warmup, so engine set-up is off the meter and
// allocs/op pins per-run bookkeeping plus 64 delta-indexed rounds). Its
// hard budget lives in scripts/check_alloc_budget.sh.
func BenchmarkSimPairwiseDelta1e5(b *testing.B) {
	w := sweep.NewWorker()
	defer w.Close()
	benchWarmPairwiseCell(b, w, Ring(100_000), 64)
}

// BenchmarkSimRoundProbed is the probes-ON twin of the round-scale
// family: the same warm pairwise delta cell at N = 10⁵, 32 rounds per
// op, with an obs.Probe (real clock, no trace sink) attached to every
// measured run. It serves two scripts: scripts/check_alloc_budget.sh
// enforces a hard allocs/op budget — the probe's Begin/End/Add hot path
// must stay allocation-free, so the budget matches the unprobed cell's
// per-run bookkeeping — and scripts/bench_record.sh records the
// ns_*/round metrics as the phase_split row of BENCH_roundscale.json.
func BenchmarkSimRoundProbed(b *testing.B) {
	w := sweep.NewWorker()
	defer w.Close()
	probe := obs.NewProbe(obs.Config{})
	benchWarmPairwiseCellProbed(b, w, Ring(100_000), 32, probe)
}

// BenchmarkE15Scaling regenerates the 10⁴–10⁵-agent scaling study.
func BenchmarkE15Scaling(b *testing.B) { benchSection(b, experiments.E15Scaling) }

// BenchmarkE16ScenarioMatrix regenerates the scenario-matrix grid on the
// batched sweep runner.
func BenchmarkE16ScenarioMatrix(b *testing.B) { benchSection(b, experiments.E16ScenarioMatrix) }

// BenchmarkE17Dynamics regenerates the fault-and-dynamism matrix
// (scripted crash/recover, partition/heal, burst schedules).
func BenchmarkE17Dynamics(b *testing.B) { benchSection(b, experiments.E17Dynamics) }

// BenchmarkE18RoundCost regenerates the steady-state round-cost study —
// fixed-round pairwise cells at N up to 10⁶ on the delta-indexed engine.
func BenchmarkE18RoundCost(b *testing.B) { benchSection(b, experiments.E18RoundCost) }

// BenchmarkE19Membership regenerates the growable-population study: the
// §3.4 amnesiac-rejoin classification plus the join-laden layout-
// determinism matrix.
func BenchmarkE19Membership(b *testing.B) { benchSection(b, experiments.E19Membership) }

// BenchmarkJoinSplice measures a join-laden cell on a warm worker:
// Ring(4096) pairwise churn, 8 agents spliced in at round 4, 32 fixed
// rounds per op. Relative to the join-free warm-cell benchmarks each op
// adds everything the growable-population path allocates — the clone of
// the pristine grid graph, the ring splice, the partition extension,
// matcher/mask/tracker growth, and the joiners' identity-keyed seeder
// substreams. scripts/check_alloc_budget.sh pins allocs/op so
// attachment stays O(joined subgraph + changed edges) and never
// regresses into a per-round or per-agent rebuild.
func BenchmarkJoinSplice(b *testing.B) {
	w := sweep.NewWorker()
	defer w.Close()
	cell := sweep.Cell{
		Env:      sweepenv.ChurnDesc(0.999),
		Problem:  problems.MinDesc(),
		Topo:     "ring",
		Graph:    Ring(4096),
		Mode:     PairwiseMode,
		InitSeed: 17,
		Opts: Options{Seed: 1, MaxRounds: 32, Mode: PairwiseMode, Shards: 4,
			Dynamics: dynamics.NewSchedule(dynamics.Join(8, "ring", 4))},
	}
	if _, err := w.Do(cell); err != nil { // warm the engine scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr, err := w.Do(cell)
		if err != nil || cr.Rounds != 32 || cr.Dyn == nil || cr.Dyn.Joins != 8 {
			b.Fatalf("join cell run failed: %v (rounds=%d)", err, cr.Rounds)
		}
	}
}

// BenchmarkSimWithDynamics is BenchmarkSimComponentRing64 with an EMPTY
// dynamics schedule attached: the same run, rounds, and results, plus
// the dynamics hook on the hot path (per-round Begin/EndRound, the
// frozen check over an empty list). Its CI allocation budget equals the
// plain component budget, pinning the subsystem contract that an empty
// schedule adds ~0 allocs/round — the hook must stay invisible until a
// schedule actually fires something.
func BenchmarkSimWithDynamics(b *testing.B) {
	g := Ring(64)
	vals := rand.New(rand.NewSource(1)).Perm(256)[:64]
	empty := dynamics.NewSchedule()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate[int](NewMin(), EdgeChurn(g, 0.5), vals,
			Options{Seed: 1, StopOnConverged: true, MaxRounds: 100_000, Dynamics: empty})
		if err != nil || !res.Converged {
			b.Fatal("run failed")
		}
	}
}

// benchAsyncBackoff is the backoff field-validation harness (ROADMAP
// item): min consensus on the COMPLETE graph at 10³ agents — the
// high-degree regime where busy-rejection probability is largest and
// the fixed 512µs ladder was never tuned — under either backoff policy.
// It reports ProperSteps/sec (useful throughput) and the busy-rejection
// counts the controller feeds on; EXPERIMENTS.md's appendix records the
// measured comparison and the tuned rejectionRateShift.
func benchAsyncBackoff(b *testing.B, fixed bool) {
	g := Complete(1000)
	vals := rand.New(rand.NewSource(11)).Perm(4000)[:1000]
	var props, rejs, ops int
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		o := DefaultAsyncOptions(int64(i) + 1)
		o.Timeout = 60 * time.Second
		o.MaxOps = 5_000_000
		// The backoff study isolates contention: keep the link table
		// static instead of re-rolling 5·10⁵ edges every 16 initiations.
		o.RefreshEvery = 1 << 30
		o.FixedBackoff = fixed
		res, err := SimulateAsync[int](NewMin(), g, vals, o)
		if err != nil || !res.Converged {
			b.Fatal("async run failed")
		}
		props += res.ProperSteps
		rejs += res.Rejections
		ops += res.Ops
	}
	elapsed := time.Since(start).Seconds()
	b.ReportMetric(float64(props)/elapsed, "propersteps/s")
	b.ReportMetric(float64(rejs)/float64(b.N), "rejections/run")
	b.ReportMetric(float64(ops)/float64(b.N), "ops/run")
}

// BenchmarkAsyncBackoffAIMDComplete1k measures the adaptive AIMD
// controller on K1000.
func BenchmarkAsyncBackoffAIMDComplete1k(b *testing.B) { benchAsyncBackoff(b, false) }

// BenchmarkAsyncBackoffFixedComplete1k measures the legacy fixed
// doubling ladder on the same system — the baseline the AIMD controller
// replaced.
func BenchmarkAsyncBackoffFixedComplete1k(b *testing.B) { benchAsyncBackoff(b, true) }

// BenchmarkSweepGrid measures the batched scenario-grid runner in steady
// state: one persistent Runner (warm workers — pool, trackers, matcher
// scratch, arenas survive between cells AND between grids) executes the
// same 24-cell pairwise grid every iteration, serially (Workers: 1) so
// allocs/op is a stable budget number. Pairwise min/max/gcd cells step
// allocation-free, so allocs/op is per-cell run bookkeeping (Result,
// probe, environment masks, final-state copy) plus table rendering —
// NOT engine set-up, which only the first (untimed) grid pays. The CI
// allocation budget in scripts/check_alloc_budget.sh pins exactly that:
// a regression that re-pays tracker/matcher/pool construction per cell
// multiplies the number and fails loudly.
func BenchmarkSweepGrid(b *testing.B) {
	axes := sweep.Axes{
		Envs:      []sweepenv.Desc{sweepenv.ChurnDesc(0.9), sweepenv.StaticDesc()},
		Problems:  []problems.Desc{problems.MinDesc(), problems.MaxDesc(), problems.GCDDesc()},
		Topos:     []sweep.Topo{sweep.CompleteTopo()},
		Sizes:     []int{32},
		Modes:     []Mode{PairwiseMode},
		Seeds:     4,
		BaseSeed:  9,
		MaxRounds: 60_000,
	}
	grid, err := axes.Grid()
	if err != nil {
		b.Fatal(err)
	}
	runner := sweep.NewRunner(sweep.Options{Workers: 1})
	defer runner.Close()
	if _, err := runner.Run(grid); err != nil { // warm the workers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(grid)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Cells {
			if !c.Converged || c.Violations != 0 {
				b.Fatalf("cell %d: converged=%v violations=%d", c.Cell.Index, c.Converged, c.Violations)
			}
		}
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkEngineRoundRing64 measures one simulated system per iteration:
// min consensus on a 64-ring at 50% availability.
func BenchmarkEngineRoundRing64(b *testing.B) {
	g := Ring(64)
	vals := rand.New(rand.NewSource(1)).Perm(256)[:64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate[int](NewMin(), EdgeChurn(g, 0.5), vals,
			Options{Seed: int64(i), StopOnConverged: true, MaxRounds: 100_000})
		if err != nil || !res.Converged {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkEnginePairwiseComplete32 measures pairwise-gossip sum runs.
func BenchmarkEnginePairwiseComplete32(b *testing.B) {
	g := Complete(32)
	vals := rand.New(rand.NewSource(2)).Perm(128)[:32]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate[int](NewSum(), EdgeChurn(g, 0.5), vals,
			Options{Seed: int64(i), StopOnConverged: true, MaxRounds: 100_000, Mode: PairwiseMode})
		if err != nil || !res.Converged {
			b.Fatal("run failed")
		}
	}
}

// BenchmarkAsyncRuntimeMin measures the goroutine-per-agent runtime.
func BenchmarkAsyncRuntimeMin(b *testing.B) {
	g := Ring(16)
	vals := rand.New(rand.NewSource(3)).Perm(64)[:16]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SimulateAsync[int](NewMin(), g, vals, DefaultAsyncOptions(int64(i)))
		if err != nil || !res.Converged {
			b.Fatal("async run failed")
		}
	}
}

// BenchmarkMultisetUnion measures the canonical-merge union on 1k+1k
// elements.
func BenchmarkMultisetUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := ms.OfInts(rng.Perm(1000)...)
	c := ms.OfInts(rng.Perm(1000)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Union(c).Len() != 2000 {
			b.Fatal("bad union")
		}
	}
}

// BenchmarkConvexHull1000 measures the monotone-chain hull on 1000 random
// points.
func BenchmarkConvexHull1000(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(geom.ConvexHull(pts)) < 3 {
			b.Fatal("degenerate hull")
		}
	}
}

// BenchmarkEnclosingCircle1000 measures Welzl's algorithm on 1000 points.
func BenchmarkEnclosingCircle1000(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if geom.EnclosingCircle(pts).R <= 0 {
			b.Fatal("degenerate circle")
		}
	}
}

// BenchmarkSuperIdempotenceChecker measures the randomized checker on the
// min function.
func BenchmarkSuperIdempotenceChecker(b *testing.B) {
	gen := func(r *rand.Rand) ms.Multiset[int] {
		n := 1 + r.Intn(8)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(16)
		}
		return ms.OfInts(vals...)
	}
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckSuperIdempotent(problems.MinF(), ExactEqual[int](), gen, 100, rng.Int63()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelCheckMinK4 measures exhaustive exploration of min over K4
// pairs.
func BenchmarkModelCheckMinK4(b *testing.B) {
	g := Complete(4)
	for i := 0; i < b.N; i++ {
		rep, err := ModelCheck[int](NewMin(), g, []int{5, 1, 3, 2})
		if err != nil || !rep.OK() {
			b.Fatal("model check failed")
		}
	}
}

// BenchmarkE13Continuous regenerates the continuous-extension experiment.
func BenchmarkE13Continuous(b *testing.B) { benchSection(b, experiments.E13Continuous) }

// BenchmarkFlowRing64 measures one full continuous averaging run on a
// 64-ring under churn.
func BenchmarkFlowRing64(b *testing.B) {
	g := Ring(64)
	x0 := make([]float64, 64)
	for i := range x0 {
		x0[i] = float64((i * 37) % 101)
	}
	e := EdgeChurn(g, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunFlow(e, x0, FlowOptions{Dt: 0.2, Rounds: 200_000, Seed: int64(i), Tol: 1e-6})
		if err != nil || !res.Converged {
			b.Fatal("flow run failed")
		}
	}
}

// BenchmarkAblationCheckStepsOverhead quantifies the runtime-verification
// monitor's cost: the same run with and without D-step checking.
func BenchmarkAblationCheckStepsOverhead(b *testing.B) {
	g := Ring(32)
	vals := rand.New(rand.NewSource(8)).Perm(128)[:32]
	for _, check := range []bool{false, true} {
		name := "monitor-off"
		if check {
			name = "monitor-on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Simulate[int](NewMin(), EdgeChurn(g, 0.5), vals,
					Options{Seed: int64(i), StopOnConverged: true, CheckSteps: check, MaxRounds: 100_000})
				if err != nil || !res.Converged {
					b.Fatal("run failed")
				}
			}
		})
	}
}

// BenchmarkE14EscapePostulate regenerates the §2.1 escape-postulate
// demonstration.
func BenchmarkE14EscapePostulate(b *testing.B) { benchSection(b, experiments.E14EscapePostulate) }

// BenchmarkAblationGreedyVsPartialMin compares the two ends of the §4.1
// algorithm class: full jumps to the group minimum vs. lazy partial
// moves.
func BenchmarkAblationGreedyVsPartialMin(b *testing.B) {
	g := Ring(24)
	vals := rand.New(rand.NewSource(9)).Perm(96)[:24]
	for _, cfgCase := range []struct {
		name string
		p    Problem[int]
	}{
		{"greedy", NewMin()},
		{"partial", NewPartialMin()},
	} {
		b.Run(cfgCase.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Simulate[int](cfgCase.p, EdgeChurn(g, 0.5), vals,
					Options{Seed: int64(i), StopOnConverged: true, MaxRounds: 200_000})
				if err != nil || !res.Converged {
					b.Fatal("run failed")
				}
			}
		})
	}
}

// --- Sched runtime: E20's sharded engine measured directly ---

// BenchmarkSchedExchange1e4 pins the sharded scheduler's per-exchange
// allocation contract at N = 8192 (min over Hypercube(13), 60·N
// initiation budget, ~15k exchanges to convergence): mailbox rings, run
// queues, and deferred heaps are preallocated, so a whole run costs only
// its O(shards + population arrays) setup allocations — allocs/op stays
// in the hundreds for half a million available initiations, and
// scripts/check_alloc_budget.sh enforces a hard budget on it. A
// regression that allocates per exchange (one message box, one heap node)
// adds tens of thousands and fails loudly.
func BenchmarkSchedExchange1e4(b *testing.B) {
	const dim = 13
	const n = 1 << dim
	g := Hypercube(dim)
	vals := make([]int, n)
	for i := range vals {
		vals[i] = 2 + (i*7919)%997
	}
	vals[n/2] = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := DefaultSchedOptions(int64(i + 1))
		o.MaxOps = 60 * n
		o.Timeout = 2 * time.Minute
		res, err := SimulateSched[int](NewMin(), g, vals, o)
		if err != nil || !res.Converged {
			b.Fatalf("sched run failed: %v", err)
		}
	}
}

// BenchmarkSchedScale is the recorded scaling row (scripts/
// bench_record.sh → BENCH_roundscale.json): min over the hypercube at
// N = 2¹⁰, 2¹³, 2¹⁷ on the sharded scheduler, reporting proper steps
// per wall-clock second via the engine's own sanctioned clock. The
// log-diameter topology converges within the 60·N budget at every size,
// so the metric compares like with like as N grows three decades.
func BenchmarkSchedScale(b *testing.B) {
	for _, dim := range []int{10, 13, 17} {
		dim := dim
		n := 1 << dim
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			g := Hypercube(dim)
			vals := make([]int, n)
			for i := range vals {
				vals[i] = 2 + (i*7919)%997
			}
			vals[n/2] = 1
			var proper int
			var elapsed time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := DefaultSchedOptions(20)
				o.MaxOps = 60 * n
				o.Timeout = 2 * time.Minute
				res, err := SimulateSched[int](NewMin(), g, vals, o)
				if err != nil || !res.Converged {
					b.Fatalf("sched run failed: %v", err)
				}
				proper += res.ProperSteps
				elapsed += res.Elapsed
			}
			if elapsed > 0 {
				b.ReportMetric(float64(proper)/elapsed.Seconds(), "propersteps/s")
			}
		})
	}
}
