package experiments

import (
	goruntime "runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
)

// TestAllShapesHold runs every experiment at quick scale and asserts the
// paper's qualitative shape is observed — the headline integration test
// of the reproduction.
func TestAllShapesHold(t *testing.T) {
	for _, sec := range All(QuickConfig()) {
		sec := sec
		t.Run(sec.ID, func(t *testing.T) {
			if !sec.ShapeHolds {
				t.Errorf("%s (%s): shape does not hold\n%s", sec.ID, sec.Title, sec.Body)
			}
			if sec.Body == "" || sec.Claim == "" || sec.Title == "" {
				t.Errorf("%s: incomplete section", sec.ID)
			}
		})
	}
}

func TestE1MentionsDiscrepancy(t *testing.T) {
	sec := E1Fig1(QuickConfig())
	if !strings.Contains(sec.Body, "do not match") {
		t.Error("E1 must document the printed-h discrepancy")
	}
	if !strings.Contains(sec.Body, "YES") {
		t.Error("E1 must exhibit a violation at n=5")
	}
}

func TestE9TableComplete(t *testing.T) {
	sec := E9Classification(QuickConfig())
	for _, fn := range []string{"min", "sum", "second smallest", "sort", "circumscribing circle", "convex hull", "min-pair", "gcd"} {
		if !strings.Contains(sec.Body, fn) {
			t.Errorf("classification table missing %q", fn)
		}
	}
}

func TestConfigs(t *testing.T) {
	if DefaultConfig().Seeds <= QuickConfig().Seeds {
		t.Error("default config should use more seeds than quick")
	}
}

func TestForEachSeedVisitsEverySeedOnce(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	counts := make([]atomic.Int32, 100)
	forEachSeed(len(counts), func(s int) { counts[s].Add(1) })
	for s := range counts {
		if got := counts[s].Load(); got != 1 {
			t.Fatalf("seed %d visited %d times, want 1", s, got)
		}
	}
	forEachSeed(0, func(int) { t.Fatal("n=0 must not invoke body") })
}

// TestParallelSweepBitIdentical renders a seed-sweeping experiment with
// the worker pool saturated and serially, and requires byte-identical
// bodies: each seed owns its RNG, so parallelism must be invisible in
// results.
func TestParallelSweepBitIdentical(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	parallel := E4Adaptivity(QuickConfig())
	goruntime.GOMAXPROCS(1)
	serial := E4Adaptivity(QuickConfig())
	goruntime.GOMAXPROCS(old)
	if parallel.Body != serial.Body {
		t.Fatalf("parallel sweep diverged from serial sweep:\n--- parallel ---\n%s\n--- serial ---\n%s",
			parallel.Body, serial.Body)
	}
	if !parallel.ShapeHolds {
		t.Fatal("E4 shape does not hold")
	}
}

// TestNestedSweepRespectsWorkerBudget: a seed sweep whose bodies run
// sharded, pool-parallel simulations must never hold more than
// GOMAXPROCS−1 extra worker slots in total — the sweep workers and every
// nested engine pool draw from the same process-wide budget, so workers ×
// shards cannot oversubscribe the machine.
func TestNestedSweepRespectsWorkerBudget(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	engine.ResetSlotPeak()
	g := graph.Ring(64)
	forEachSeed(8, func(s int) {
		res, err := sim.Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.6), initialValues(64, int64(s)+1),
			sim.Options{Seed: int64(s) + 1, StopOnConverged: true, MaxRounds: 60_000,
				Shards: 4, ParallelThreshold: 1, Mode: sim.PairwiseMode, MatchBlocks: 4})
		if err != nil || !res.Converged {
			t.Errorf("seed %d: err=%v converged=%v", s, err, res != nil && res.Converged)
		}
	})
	budget := goruntime.GOMAXPROCS(0) - 1
	if peak := engine.SlotPeak(); peak > budget {
		t.Errorf("nested sweep held %d extra-worker slots, budget is %d", peak, budget)
	} else if peak == 0 {
		t.Error("budget never engaged — sweep/pools not routed through AcquireSlots")
	}
}
