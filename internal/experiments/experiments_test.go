package experiments

import (
	"strings"
	"testing"
)

// TestAllShapesHold runs every experiment at quick scale and asserts the
// paper's qualitative shape is observed — the headline integration test
// of the reproduction.
func TestAllShapesHold(t *testing.T) {
	for _, sec := range All(QuickConfig()) {
		sec := sec
		t.Run(sec.ID, func(t *testing.T) {
			if !sec.ShapeHolds {
				t.Errorf("%s (%s): shape does not hold\n%s", sec.ID, sec.Title, sec.Body)
			}
			if sec.Body == "" || sec.Claim == "" || sec.Title == "" {
				t.Errorf("%s: incomplete section", sec.ID)
			}
		})
	}
}

func TestE1MentionsDiscrepancy(t *testing.T) {
	sec := E1Fig1(QuickConfig())
	if !strings.Contains(sec.Body, "do not match") {
		t.Error("E1 must document the printed-h discrepancy")
	}
	if !strings.Contains(sec.Body, "YES") {
		t.Error("E1 must exhibit a violation at n=5")
	}
}

func TestE9TableComplete(t *testing.T) {
	sec := E9Classification(QuickConfig())
	for _, fn := range []string{"min", "sum", "second smallest", "sort", "circumscribing circle", "convex hull", "min-pair", "gcd"} {
		if !strings.Contains(sec.Body, fn) {
			t.Errorf("classification table missing %q", fn)
		}
	}
}

func TestConfigs(t *testing.T) {
	if DefaultConfig().Seeds <= QuickConfig().Seeds {
		t.Error("default config should use more seeds than quick")
	}
}
