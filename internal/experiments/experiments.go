// Package experiments implements the reproduction experiments E1–E17
// catalogued in DESIGN.md: Figures 1–3 of the paper as executable
// artifacts, measurable versions of every quantitative claim the paper
// makes in prose, the large-N scaling study (E15), the scenario matrix
// on the batched sweep runner (E16), and the fault-and-dynamism matrix
// over scripted crash/partition/burst schedules (E17). cmd/experiments
// renders the results into the report; bench_test.go at the repository
// root exposes each as a benchmark.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/dynsys"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/flow"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/metrics"
	ms "repro/internal/multiset"
	"repro/internal/obs"
	"repro/internal/problems"
	rt "repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Config scales the experiments.
type Config struct {
	// Seeds is the number of independent runs per data point.
	Seeds int
	// Quick shrinks sweeps for fast test runs.
	Quick bool
	// Obs, when non-nil, is the observability probe instrumented sections
	// attach to their measured runs (E18 brackets each round-cost cell
	// with it, so its phase timers and trace events land here).
	// cmd/experiments builds one from -trace / -phase-metrics /
	// -pprof-labels; nil makes such sections use a private probe, which
	// still feeds their phase tables. Observe-never-perturb: section
	// results are identical either way.
	Obs *obs.Probe
}

// DefaultConfig returns the configuration used to produce EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Seeds: 20} }

// QuickConfig returns a configuration small enough for unit tests.
func QuickConfig() Config { return Config{Seeds: 3, Quick: true} }

// Section is one rendered experiment.
type Section struct {
	// ID is the experiment identifier (E1…E12).
	ID string
	// Title names the experiment.
	Title string
	// Claim quotes or paraphrases the paper's claim under test.
	Claim string
	// Body is the rendered markdown (tables, findings).
	Body string
	// ShapeHolds reports whether the qualitative shape of the paper's
	// claim was observed.
	ShapeHolds bool
}

// All runs every experiment.
func All(cfg Config) []Section {
	return []Section{
		E1Fig1(cfg), E2Fig2(cfg), E3Fig3(cfg), E4Adaptivity(cfg),
		E5Partition(cfg), E6Scale(cfg), E7Sum(cfg), E8Sort(cfg),
		E9Classification(cfg), E10ModelCheck(cfg), E11Ablation(cfg),
		E12Fairness(cfg), E13Continuous(cfg), E14EscapePostulate(cfg),
		E15Scaling(cfg), E16ScenarioMatrix(cfg), E17Dynamics(cfg),
		E18RoundCost(cfg), E19Membership(cfg), E20SchedScale(cfg),
	}
}

func initialValues(n int, seed int64) []int {
	//lint:ignore detrand experiment trial stream with a hard-coded seed; EXPERIMENTS.md tables are byte-pinned to these exact stdlib draws
	rng := rand.New(rand.NewSource(seed))
	vals := rng.Perm(4 * n)[:n]
	return vals
}

// forEachSeed runs body(s) for every seed index 0 ≤ s < n on an engine
// worker pool (threshold 0: always engaged). The pool draws its extra
// workers from the process-wide worker-slot budget and the caller
// participates, so the sweep uses at most GOMAXPROCS goroutines even
// when seeds nest sharded, pool-parallel runs — the nested pools draw
// from the same budget, so workers × shards can never oversubscribe the
// machine. Each seed owns its entire RNG stream (mk closures build
// problem, environment, and options from the seed alone), so fanning
// seeds out changes wall-clock time only: aggregation happens afterwards
// in seed order and results stay bit-for-bit identical to the sequential
// loop.
func forEachSeed(n int, body func(s int)) {
	pool := engine.NewPool(0, 0)
	defer pool.Close()
	pool.DoAll(n, func(_, s int) { body(s) })
}

func medianRounds[T any](cfg Config, mk func(seed int64) (*sim.Result[T], error)) (float64, float64, error) {
	results := make([]*sim.Result[T], cfg.Seeds)
	errs := make([]error, cfg.Seeds)
	forEachSeed(cfg.Seeds, func(s int) {
		results[s], errs[s] = mk(int64(s) + 1)
	})
	var rounds metrics.Sample
	converged := 0
	for s := 0; s < cfg.Seeds; s++ {
		if errs[s] != nil {
			return 0, 0, errs[s]
		}
		res := results[s]
		if res.Converged {
			converged++
			rounds.AddInt(res.Round)
		} else {
			rounds.AddInt(res.Rounds)
		}
	}
	return rounds.Median(), float64(converged) / float64(cfg.Seeds), nil
}

// --- E1 / Fig. 1 ---

// E1Fig1 reproduces the content of the paper's Fig. 1: the
// out-of-order-pairs objective for sorting lacks the local-to-global
// property, while the squared-displacement objective has it.
func E1Fig1(cfg Config) Section {
	var b strings.Builder

	// (a) The paper's printed example, recomputed.
	before, after, bIdx, cIdx := problems.PaperFig1States()
	h := problems.InversionsH()
	cmpItems := problems.CompareItems
	toItems := func(vals []int, idxs []int) ms.Multiset[problems.Item] {
		items := make([]problems.Item, len(idxs))
		for i, ix := range idxs {
			items[i] = problems.Item{Index: ix, Value: vals[ix]}
		}
		return ms.New(cmpItems, items...)
	}
	all := func(vals []int) ms.Multiset[problems.Item] {
		return ms.New(cmpItems, problems.InitialItems(vals)...)
	}
	t := metrics.NewTable("state", "paper's printed h", "recomputed h (out-of-order pairs)")
	t.AddRowf("S_B∪C = "+fmt.Sprint(before), 14, h.Value(all(before)))
	t.AddRowf("S_B   = values of B in "+fmt.Sprint(before), 10, h.Value(toItems(before, bIdx)))
	t.AddRowf("S'_B∪C = "+fmt.Sprint(after), 15, h.Value(all(after)))
	t.AddRowf("S'_B  = values of B in "+fmt.Sprint(after), 9, h.Value(toItems(after, cIdxComplement(bIdx, cIdx, after))))
	b.WriteString("Paper's printed example (B = indexes {1,3,4,5,6,7}, C = {2}, 1-based):\n\n")
	b.WriteString(t.String())
	b.WriteString("\nThe printed h values do not match the paper's own definition of h\n" +
		"(the number of out-of-order pairs) under our arithmetic — and under the\n" +
		"literal definition the printed transition does NOT witness a violation\n" +
		"(both B's count and the union's count decrease). The figure's CLAIM is\n" +
		"nevertheless correct, as the exhaustive search below shows.\n\n")

	// (b) Exhaustive search: no violation at n ≤ 4, violation at n = 5.
	t2 := metrics.NewTable("array size n", "violation of (10) exists?", "witness")
	shape := true
	for n := 3; n <= 5; n++ {
		v := problems.FindInversionsL2GViolation(n)
		switch {
		case n <= 4 && v != nil:
			shape = false
			t2.AddRowf(n, "yes (unexpected)", v.String())
		case n <= 4:
			t2.AddRowf(n, "no (exhaustive)", "—")
		case v == nil:
			shape = false
			t2.AddRowf(n, "no (unexpected)", "—")
		default:
			t2.AddRowf(n, "YES", v.String())
		}
	}
	b.WriteString("Exhaustive search over all partitions and all B-improving permutations:\n\n")
	b.WriteString(t2.String())

	// (c) The replacement objective is clean.
	t3 := metrics.NewTable("array size n", "squared-displacement violation?")
	for n := 3; n <= 5; n++ {
		if v := problems.VerifyDisplacementL2G(n); v != nil {
			shape = false
			t3.AddRowf(n, "yes (unexpected): "+v.String())
		} else {
			t3.AddRowf(n, "no (exhaustive)")
		}
	}
	b.WriteString("\nThe paper's replacement objective Σ(i−ord(x))²:\n\n")
	b.WriteString(t3.String())
	_ = cfg

	return Section{
		ID:    "E1",
		Title: "Fig. 1 — \"number of out-of-order pairs\" lacks the local-to-global property",
		Claim: "§4.4/Fig. 1: the out-of-order-pairs objective does not satisfy (10); the squared-displacement objective does.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// cIdxComplement returns B's indexes (the complement of C) — helper to
// make the table construction explicit about which values belong to B
// after the transition.
func cIdxComplement(bIdx, _ []int, _ []int) []int { return bIdx }

// --- E2 / Fig. 2 ---

// E2Fig2 reproduces Fig. 2: the naive circumscribing-circle function is
// idempotent but not super-idempotent.
func E2Fig2(cfg Config) Section {
	var b strings.Builder
	f := problems.CircumcircleNaiveF()
	eq := problems.CircleStatesEqual(1e-6)

	pts := problems.Fig2Configuration()
	all := problems.InitialCircles(pts)
	x := ms.New(problems.CompareCircleStates, all[0], all[1], all[2])
	y := ms.New(problems.CompareCircleStates, all[3])
	direct := f.Apply(x.Union(y)).At(0).Est
	via := f.Apply(f.Apply(x).Union(y)).At(0).Est

	t := metrics.NewTable("quantity", "circle", "radius")
	t.AddRowf("f(S_B ∪ S_C)   (solid circle in Fig. 2)", direct.String(), direct.R)
	t.AddRowf("f(f(S_B) ∪ S_C) (dashed circle in Fig. 2)", via.String(), via.R)
	b.WriteString(fmt.Sprintf("Configuration (agents 1–3 = B, agent 4 = C): %v\n\n", pts))
	b.WriteString(t.String())
	shape := !direct.Near(via, 1e-6) && via.R > direct.R

	// Violation frequency over random configurations.
	//lint:ignore detrand experiment trial stream with a hard-coded seed; EXPERIMENTS.md tables are byte-pinned to these exact stdlib draws
	rng := rand.New(rand.NewSource(7))
	trials := 400
	if cfg.Quick {
		trials = 60
	}
	violations := 0
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(3)
		ps := make([]geom.Point, n)
		for j := range ps {
			ps[j] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		states := problems.InitialCircles(ps)
		k := 1 + rng.Intn(n-1)
		xs := ms.New(problems.CompareCircleStates, states[:k]...)
		ys := ms.New(problems.CompareCircleStates, states[k:]...)
		d := f.Apply(xs.Union(ys))
		v := f.Apply(f.Apply(xs).Union(ys))
		if !eq(d, v) {
			violations++
		}
	}
	b.WriteString(fmt.Sprintf("\nRandom split check: %d/%d random configurations violate super-idempotence\n"+
		"(violations are generic, not a corner case).\n", violations, trials))
	if violations == 0 {
		shape = false
	}

	return Section{
		ID:    "E2",
		Title: "Fig. 2 — the circumscribing-circle function is not super-idempotent",
		Claim: "§4.5/Fig. 2: f(S_B ∪ S_C) ≠ f(f(S_B) ∪ S_C) for the naive circle function.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E3 / Fig. 3 ---

// E3Fig3 reproduces Fig. 3: the convex-hull function is super-idempotent,
// and the hull algorithm computes the circumscribing circle under churn.
func E3Fig3(cfg Config) Section {
	var b strings.Builder
	f := problems.HullF()
	eq := problems.HullStatesEqual(1e-7)

	//lint:ignore detrand experiment trial stream with a hard-coded seed; EXPERIMENTS.md tables are byte-pinned to these exact stdlib draws
	rng := rand.New(rand.NewSource(11))
	trials := 400
	if cfg.Quick {
		trials = 60
	}
	violations := 0
	for i := 0; i < trials; i++ {
		n := 2 + rng.Intn(5)
		ps := make([]geom.Point, n)
		for j := range ps {
			ps[j] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		states := problems.InitialHulls(ps)
		k := 1 + rng.Intn(n)
		xs := ms.New(problems.CompareHullStates, states[:k]...)
		ys := ms.New(problems.CompareHullStates, states[k:]...)
		d := f.Apply(xs.Union(ys))
		v := f.Apply(f.Apply(xs).Union(ys))
		if !eq(d, v) {
			violations++
		}
	}
	b.WriteString(fmt.Sprintf("Super-idempotence: %d/%d random splits violated (expected 0).\n\n", violations, trials))
	shape := violations == 0

	// End-to-end under churn: every agent's derived circumcircle matches
	// the direct computation.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 1}, {X: 2, Y: 5}, {X: 6, Y: 3}, {X: 1, Y: 4}, {X: 5, Y: 5}, {X: 3, Y: 0.5}, {X: 0.5, Y: 3}}
	p := problems.NewHull(pts)
	g := graph.Ring(len(pts))
	res, err := sim.Run(p, env.NewEdgeChurn(g, 0.4), problems.InitialHulls(pts),
		sim.Options{ParallelThreshold: -1, Seed: 3, StopOnConverged: true, HEps: 1e-9, MaxRounds: 5000})
	if err != nil || !res.Converged {
		shape = false
		b.WriteString(fmt.Sprintf("hull run failed: converged=%v err=%v\n", res != nil && res.Converged, err))
	} else {
		want := geom.EnclosingCircle(pts)
		got := problems.Circumcircle(res.Final[0])
		b.WriteString(fmt.Sprintf("Under 40%% edge availability, all %d agents converged in %d rounds;\n"+
			"derived circumscribing circle %v matches direct computation %v.\n",
			len(pts), res.Round, got, want))
		if !got.Near(want, 1e-6) {
			shape = false
		}
	}

	return Section{
		ID:    "E3",
		Title: "Fig. 3 — the convex-hull function is super-idempotent",
		Claim: "§4.5/Fig. 3: hull of all points = hull of (hull of subset ∪ rest); hull consensus yields the circumscribing circle.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E4: adaptivity ---

// E4Adaptivity measures convergence rounds of min consensus as per-edge
// availability drops: the paper's "speed up or slow down depending on the
// resources available".
func E4Adaptivity(cfg Config) Section {
	var b strings.Builder
	n := 16
	if cfg.Quick {
		n = 8
	}
	ps := []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05}
	if cfg.Quick {
		ps = []float64{1.0, 0.4, 0.1}
	}
	shape := true
	for _, family := range []struct {
		name string
		mk   func() *graph.Graph
	}{
		{"ring", func() *graph.Graph { return graph.Ring(n) }},
		{"random connected (p=0.2)", func() *graph.Graph {
			//lint:ignore detrand one-shot experiment topology with a hard-coded seed; the E-table rows are pinned to this exact graph
			return graph.ConnectedErdosRenyi(n, 0.2, rand.New(rand.NewSource(5)))
		}},
	} {
		t := metrics.NewTable("edge availability p", "median rounds to converge", "convergence rate")
		prev := 0.0
		for _, p := range ps {
			med, rate, err := medianRounds[int](cfg, func(seed int64) (*sim.Result[int], error) {
				g := family.mk()
				return sim.Run[int](problems.NewMin(), env.NewEdgeChurn(g, p), initialValues(n, seed),
					sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 60_000})
			})
			if err != nil {
				return Section{ID: "E4", Title: "adaptivity", Body: "error: " + err.Error()}
			}
			t.AddRowf(p, med, fmt.Sprintf("%.0f%%", rate*100))
			if rate < 1 {
				shape = false // correctness must never degrade, only speed
			}
			if med < prev-1e-9 && p < 1 {
				// Rounds must not decrease as availability drops (allow
				// exact ties at high availability).
				shape = shape && med >= prev*0.8 // tolerate small median noise
			}
			prev = med
		}
		b.WriteString(fmt.Sprintf("Minimum consensus on %s, N=%d (median of %d seeds):\n\n", family.name, n, cfg.Seeds))
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return Section{
		ID:    "E4",
		Title: "Adaptivity — convergence time vs. available resources",
		Claim: "§1: \"algorithms speed up or slow down depending on the resources available\" — and stay correct.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E5: partitions and the snapshot baseline ---

// E5Partition shows self-similar behaviour across a partition (each block
// converges to its own f), recovery on heal, and the snapshot baseline
// stalling for the entire partition.
func E5Partition(cfg Config) Section {
	var b strings.Builder
	n := 12
	g := graph.Complete(n)
	vals := initialValues(n, 42)

	// Permanent partition into 3 blocks.
	e := env.NewPartitioner(g, 3, 0, 1<<30)
	res, err := sim.Run[int](problems.NewMin(), e, vals, sim.Options{ParallelThreshold: -1, Seed: 1, MaxRounds: 30})
	shape := err == nil && !res.Converged
	blocks := metrics.NewTable("block", "members", "block minimum", "all members agree?")
	per := (n + 2) / 3
	for blk := 0; blk < 3; blk++ {
		lo, hi := blk*per, (blk+1)*per
		if hi > n {
			hi = n
		}
		minV := vals[lo]
		for _, v := range vals[lo:hi] {
			if v < minV {
				minV = v
			}
		}
		agree := true
		for _, v := range res.Final[lo:hi] {
			if v != minV {
				agree = false
			}
		}
		if !agree {
			shape = false
		}
		blocks.AddRowf(blk, fmt.Sprintf("%d–%d", lo, hi-1), minV, agree)
	}
	b.WriteString("Permanent 3-way partition (min consensus, N=12): each block behaves as\n" +
		"if it were the entire system (self-similarity):\n\n")
	b.WriteString(blocks.String())

	// Healing partition: global convergence; snapshot baseline stalls
	// while partitioned.
	t := metrics.NewTable("algorithm", "partition 60 rounds then heal: converged?", "round")
	heal := func() env.Environment { return env.NewPartitioner(g, 3, 0, 60) }
	// After 60 partitioned rounds the environment heals (healthy phase of
	// the next period has length 0 — so use healthy=5).
	healEnv := func() env.Environment { return env.NewPartitioner(g, 3, 5, 60) }
	_ = heal
	resHeal, err2 := sim.Run[int](problems.NewMin(), healEnv(), vals, sim.Options{ParallelThreshold: -1, Seed: 2, StopOnConverged: true, MaxRounds: 1000})
	if err2 != nil || !resHeal.Converged {
		shape = false
	}
	t.AddRowf("self-similar min", resHeal.Converged, resHeal.Round)
	snap, err3 := baseline.Snapshot(healEnv(), vals, 1000, 2)
	if err3 != nil {
		shape = false
	}
	t.AddRowf("snapshot baseline", snap.Converged, snap.Round)
	b.WriteString("\nPartition that heals after 60 rounds (healthy window 5 rounds per period):\n\n")
	b.WriteString(t.String())
	b.WriteString(fmt.Sprintf("\nSnapshot restarts during the run: %d (every break of the collection tree\n"+
		"forces a restart — the §5 critique made measurable).\n", snap.Restarts))
	// The self-similar algorithm must converge no later than the snapshot
	// (it exploits the partition period; snapshot cannot).
	if snap.Converged && snap.Round < resHeal.Round {
		shape = false
	}
	_ = cfg
	return Section{
		ID:    "E5",
		Title: "Partitions — self-similar progress vs. snapshot stalls",
		Claim: "§1/§5: partitioned groups behave like the whole system; snapshot approaches are inefficient in dynamic systems.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E6: scalability ---

// E6Scale measures rounds to convergence vs. N for several problems and
// graphs.
func E6Scale(cfg Config) Section {
	var b strings.Builder
	sizes := []int{8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	shape := true
	t := metrics.NewTable(append([]string{"problem / graph"}, intsToStrings(sizes)...)...)

	addRow := func(name string, run func(n int, seed int64) (*sim.Result[int], error)) {
		cells := []any{name}
		for _, n := range sizes {
			med, rate, err := medianRounds[int](cfg, func(seed int64) (*sim.Result[int], error) { return run(n, seed) })
			if err != nil || rate < 1 {
				shape = false
				cells = append(cells, "FAIL")
				continue
			}
			cells = append(cells, med)
		}
		t.AddRowf(cells...)
	}

	addRow("min / ring, churn 0.5", func(n int, seed int64) (*sim.Result[int], error) {
		return sim.Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(n), 0.5), initialValues(n, seed),
			sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 60_000})
	})
	addRow("min / complete, churn 0.5", func(n int, seed int64) (*sim.Result[int], error) {
		return sim.Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Complete(n), 0.5), initialValues(n, seed),
			sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 60_000})
	})
	addRow("min / hypercube, churn 0.5", func(n int, seed int64) (*sim.Result[int], error) {
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		g := graph.Hypercube(d)
		vals := initialValues(g.N(), seed)
		return sim.Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.5), vals,
			sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 60_000})
	})
	addRow("min / binary tree, churn 0.5", func(n int, seed int64) (*sim.Result[int], error) {
		return sim.Run[int](problems.NewMin(), env.NewEdgeChurn(graph.BinaryTree(n), 0.5), initialValues(n, seed),
			sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 60_000})
	})
	addRow("gcd / ring, churn 0.5", func(n int, seed int64) (*sim.Result[int], error) {
		vals := initialValues(n, seed)
		for i := range vals {
			vals[i] = (vals[i] + 1) * 6
		}
		return sim.Run[int](problems.NewGCD(), env.NewEdgeChurn(graph.Ring(n), 0.5), vals,
			sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 60_000})
	})
	addRow("sum / complete, pairwise, churn 0.5", func(n int, seed int64) (*sim.Result[int], error) {
		return sim.Run[int](problems.NewSum(), env.NewEdgeChurn(graph.Complete(n), 0.5), initialValues(n, seed),
			sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 60_000, Mode: sim.PairwiseMode})
	})

	b.WriteString(fmt.Sprintf("Median rounds to convergence (%d seeds), by system size N:\n\n", cfg.Seeds))
	b.WriteString(t.String())
	return Section{
		ID:    "E6",
		Title: "Scalability — rounds to convergence vs. N",
		Claim: "§3: one methodology, many problems; convergence scales with system size and graph family.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

func intsToStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("N=%d", x)
	}
	return out
}

// --- E7: sum needs the complete graph ---

// E7Sum reproduces §4.2's environment-assumption claim: under pairwise
// gossip, sum converges on the complete graph but stalls on sparse graphs
// where zero-valued agents separate the non-zero ones.
func E7Sum(cfg Config) Section {
	var b strings.Builder
	n := 10
	vals := make([]int, n)
	for i := 0; i < n; i += 2 {
		vals[i] = i + 1 // non-zero at even positions, zeros between them
	}
	t := metrics.NewTable("graph", "converged (pairwise gossip)?", "median rounds")
	shape := true
	for _, fam := range []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"complete (paper's assumption)", graph.Complete(n), true},
		{"ring", graph.Ring(n), false},
		{"line", graph.Line(n), false},
	} {
		med, rate, err := medianRounds[int](cfg, func(seed int64) (*sim.Result[int], error) {
			return sim.Run[int](problems.NewSum(), env.NewEdgeChurn(fam.g, 0.8), vals,
				sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 3000, Mode: sim.PairwiseMode})
		})
		if err != nil {
			shape = false
			continue
		}
		conv := rate == 1
		stall := rate == 0
		t.AddRowf(fam.name, fmt.Sprintf("%.0f%% of seeds", rate*100), med)
		if fam.want && !conv {
			shape = false
		}
		if !fam.want && !stall {
			shape = false
		}
	}
	b.WriteString("Sum with zeros separating the non-zero agents (pairwise gossip, edge\n" +
		"availability 0.8): zero agents cannot act as couriers, so only the\n" +
		"complete graph satisfies obligation (9):\n\n")
	b.WriteString(t.String())
	return Section{
		ID:    "E7",
		Title: "Sum — the complete-graph environment assumption (§4.2)",
		Claim: "§4.2: \"the weakest assumption that guarantees termination is that any two agents have the opportunity to communicate infinitely often.\"",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E8: sorting on a line ---

// E8Sort reproduces §4.4's environment claim: a line graph suffices for
// sorting; adjacent-swap convergence grows ~quadratically with N, while
// richer graphs with full-group sorting are much faster.
func E8Sort(cfg Config) Section {
	var b strings.Builder
	sizes := []int{8, 16, 32}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	t := metrics.NewTable("N", "line + pairwise swaps (median rounds)", "complete + component sort (median rounds)")
	shape := true
	var lineRounds []float64
	for _, n := range sizes {
		vals := initialValues(n, int64(n))
		pLine, err := problems.NewSorting(vals)
		if err != nil {
			return Section{ID: "E8", Body: err.Error()}
		}
		medLine, rateLine, err := medianRounds[problems.Item](cfg, func(seed int64) (*sim.Result[problems.Item], error) {
			return sim.Run[problems.Item](pLine, env.NewEdgeChurn(graph.Line(n), 0.8), problems.InitialItems(vals),
				sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 200_000, Mode: sim.PairwiseMode})
		})
		if err != nil || rateLine < 1 {
			shape = false
		}
		medFull, rateFull, err := medianRounds[problems.Item](cfg, func(seed int64) (*sim.Result[problems.Item], error) {
			return sim.Run[problems.Item](pLine, env.NewEdgeChurn(graph.Complete(n), 0.8), problems.InitialItems(vals),
				sim.Options{ParallelThreshold: -1, Seed: seed, StopOnConverged: true, MaxRounds: 200_000})
		})
		if err != nil || rateFull < 1 {
			shape = false
		}
		lineRounds = append(lineRounds, medLine)
		t.AddRowf(n, medLine, medFull)
		if medFull > medLine {
			shape = false // richer resources must not be slower
		}
	}
	b.WriteString(fmt.Sprintf("Sorting under 80%% edge availability (%d seeds):\n\n", cfg.Seeds))
	b.WriteString(t.String())
	if len(lineRounds) >= 2 {
		ratio := lineRounds[len(lineRounds)-1] / lineRounds[len(lineRounds)-2]
		b.WriteString(fmt.Sprintf("\nLine-graph growth when N doubles: ×%.1f (bubble-sort-like ≈ ×4 expected; \n"+
			"anything clearly super-linear confirms the shape).\n", ratio))
		if ratio < 1.5 {
			shape = false
		}
	}
	return Section{
		ID:    "E8",
		Title: "Sorting — the line-graph environment assumption (§4.4)",
		Claim: "§4.4: a linear graph in index order satisfies obligation (9); adjacent swaps sort, slowly; richer environments are faster.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E9: classification table ---

// E9Classification machine-checks the paper's classification of every
// function: idempotent? super-idempotent?
func E9Classification(cfg Config) Section {
	var b strings.Builder
	trials := 1500
	if cfg.Quick {
		trials = 200
	}
	//lint:ignore detrand experiment trial stream with a hard-coded seed; EXPERIMENTS.md tables are byte-pinned to these exact stdlib draws
	rng := rand.New(rand.NewSource(9))
	intGen := func(maxLen, maxVal int) core.Gen[int] {
		return func(r *rand.Rand) ms.Multiset[int] {
			n := 1 + r.Intn(maxLen)
			vals := make([]int, n)
			for i := range vals {
				vals[i] = r.Intn(maxVal)
			}
			return ms.OfInts(vals...)
		}
	}
	eqI := core.ExactEqual[int]()
	gen := intGen(6, 8)

	t := metrics.NewTable("function f", "idempotent", "super-idempotent", "paper says")
	shape := true
	check := func(name string, idem, super bool, wantSuper bool, paper string) {
		t.AddRowf(name, idem, super, paper)
		if super != wantSuper || !idem {
			shape = false
		}
	}

	intSuper := func(f core.Function[int]) (bool, bool) {
		idem := core.CheckIdempotent(f, eqI, gen, trials, rng) == nil
		super := core.CheckSuperIdempotent(f, eqI, gen, gen, trials, rng) == nil &&
			core.ExhaustiveSuperIdempotent(f, eqI, []int{0, 1, 2, 3}, ms.OrderedCmp[int](), 3) == nil
		return idem, super
	}
	i, s := intSuper(problems.MinF())
	check("min (§4.1)", i, s, true, "super-idempotent")
	i, s = intSuper(problems.MaxF())
	check("max (extension)", i, s, true, "—")
	i, s = intSuper(problems.SumF())
	check("sum (§4.2)", i, s, true, "super-idempotent")
	i, s = intSuper(problems.GCDF())
	check("gcd (extension)", i, s, true, "—")
	i, s = intSuper(problems.SecondSmallestF())
	check("second smallest (§4.3, naive)", i, s, false, "NOT super-idempotent")

	// Pair domain.
	eqP := core.ExactEqual[problems.Pair]()
	var pairDomain []problems.Pair
	for x := 0; x < 3; x++ {
		for y := x; y < 3; y++ {
			pairDomain = append(pairDomain, problems.Pair{X: x, Y: y})
		}
	}
	pairSuper := core.ExhaustiveSuperIdempotent(problems.MinPairF(), eqP, pairDomain, problems.ComparePairs, 3) == nil
	check("min-pair (§4.3, generalized)", true, pairSuper, true, "super-idempotent")

	// Sorting.
	eqS := core.ExactEqual[problems.Item]()
	sortGen := func(r *rand.Rand) ms.Multiset[problems.Item] {
		n := 1 + r.Intn(5)
		idx := r.Perm(8)[:n]
		vals := r.Perm(8)[:n]
		items := make([]problems.Item, n)
		for j := range items {
			items[j] = problems.Item{Index: idx[j], Value: vals[j]}
		}
		return ms.New(problems.CompareItems, items...)
	}
	sortIdem := core.CheckIdempotent(problems.SortF(), eqS, sortGen, trials, rng) == nil
	sortSuper := core.CheckSuperIdempotent(problems.SortF(), eqS, sortGen, sortGen, trials, rng) == nil
	check("sort (§4.4)", sortIdem, sortSuper, true, "super-idempotent")

	// Geometry.
	eqC := problems.CircleStatesEqual(1e-6)
	circleGen := func(r *rand.Rand) ms.Multiset[problems.CircleState] {
		n := 1 + r.Intn(4)
		ps := make([]geom.Point, n)
		for j := range ps {
			ps[j] = geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}
		}
		return ms.New(problems.CompareCircleStates, problems.InitialCircles(ps)...)
	}
	geoTrials := trials / 4
	circleIdem := core.CheckIdempotent(problems.CircumcircleNaiveF(), eqC, circleGen, geoTrials, rng) == nil
	circleSuper := core.CheckSuperIdempotent(problems.CircumcircleNaiveF(), eqC, circleGen, circleGen, geoTrials, rng) == nil
	check("circumscribing circle (§4.5, naive)", circleIdem, circleSuper, false, "NOT super-idempotent")

	eqH := problems.HullStatesEqual(1e-7)
	hullGen := func(r *rand.Rand) ms.Multiset[problems.HullState] {
		n := 1 + r.Intn(4)
		ps := make([]geom.Point, n)
		for j := range ps {
			ps[j] = geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}
		}
		return ms.New(problems.CompareHullStates, problems.InitialHulls(ps)...)
	}
	hullIdem := core.CheckIdempotent(problems.HullF(), eqH, hullGen, geoTrials, rng) == nil
	hullSuper := core.CheckSuperIdempotent(problems.HullF(), eqH, hullGen, hullGen, geoTrials, rng) == nil
	check("convex hull (§4.5, generalized)", hullIdem, hullSuper, true, "super-idempotent")

	b.WriteString("Machine-checked classification (randomized + exhaustive checkers; a\n" +
		"\"false\" in super-idempotent is a concrete counterexample found):\n\n")
	b.WriteString(t.String())
	return Section{
		ID:    "E9",
		Title: "Classification — which f are super-idempotent (§3.4, §4)",
		Claim: "§4: min/sum/sort/hull/min-pair are super-idempotent; second-smallest and the naive circle are idempotent but not super-idempotent.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E10: model checking ---

// E10ModelCheck discharges the §3.7 proof obligations exhaustively on
// small instances.
func E10ModelCheck(cfg Config) Section {
	var b strings.Builder
	t := metrics.NewTable("instance", "states", "transitions", "obligations hold?")
	shape := true
	add := func(name string, rep *mc.Report, err error, wantOK bool) {
		if err != nil {
			shape = false
			t.AddRowf(name, "—", "—", "ERROR: "+err.Error())
			return
		}
		ok := rep.OK()
		t.AddRowf(name, rep.States, rep.Transitions, ok)
		if ok != wantOK {
			shape = false
		}
	}

	pm := problems.NewMin()
	rep, err := mc.Explore(mc.Spec[int]{
		Initial: []int{3, 1, 2, 4}, Groups: mc.AllPairs(4), Succ: mc.ProblemSucc[int](pm), Problem: pm,
	})
	add("min, K4 pairs, implemented R", rep, err, true)

	rep, err = mc.Explore(mc.Spec[int]{
		Initial: []int{3, 1, 2}, Groups: append(mc.AllPairs(3), mc.WholeGroup(3)...),
		Succ: mc.DomainSucc[int](pm, []int{0, 1, 2, 3}, 0), Problem: pm,
	})
	add("min, K3, FULL relation D over domain {0..3}", rep, err, true)

	psum := problems.NewSum()
	rep, err = mc.Explore(mc.Spec[int]{
		Initial: []int{2, 3, 1}, Groups: mc.AllPairs(3), Succ: mc.ProblemSucc[int](psum), Problem: psum,
	})
	add("sum, K3 pairs", rep, err, true)

	rep, err = mc.Explore(mc.Spec[int]{
		Initial: []int{2, 0, 3}, Groups: mc.PathPairs(3), Succ: mc.ProblemSucc[int](psum), Problem: psum,
	})
	add("sum, line with zero separator (dead end EXPECTED)", rep, err, false)
	if err == nil && len(rep.DeadEnds) == 0 {
		shape = false
	}

	vals := []int{2, 0, 1}
	psort, _ := problems.NewSorting(vals)
	rep, err = mc.Explore(mc.Spec[problems.Item]{
		Initial: problems.InitialItems(vals), Groups: mc.PathPairs(3),
		Succ: mc.ProblemSucc[problems.Item](psort), Problem: psort,
	})
	add("sorting, line of 3", rep, err, true)

	pp := problems.NewMinPair(3, 6)
	rep2, err := mc.Explore(mc.Spec[problems.Pair]{
		Initial: problems.InitialPairs([]int{2, 5, 4}),
		Groups:  append(mc.AllPairs(3), mc.WholeGroup(3)...),
		Succ:    mc.ProblemSucc[problems.Pair](pp), Problem: pp,
	})
	add("min-pair (corrected variant), K3", rep2, err, true)

	b.WriteString("Exhaustive exploration of the full reachable state graph; \"obligations\"\n" +
		"= every transition is a D-step, non-goal states are escapable, goal\n" +
		"states are stable ((9), (10), (4) of §3):\n\n")
	b.WriteString(t.String())
	b.WriteString("\nThe sum/line dead end is the model-checking view of §4.2's complete-graph\n" +
		"requirement: a reachable non-goal state no enabled group can escape.\n")
	_ = cfg
	return Section{
		ID:    "E10",
		Title: "Model checking — the §3.7 proof obligations on small instances",
		Claim: "§3.7: R implements D; nonoptimal states are escapable; goal states are stable.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E11: ablation ---

// E11Ablation compares group granularity (component vs. pairwise) and the
// flooding baseline's state cost.
func E11Ablation(cfg Config) Section {
	var b strings.Builder
	n := 16
	if cfg.Quick {
		n = 8
	}
	g := graph.Ring(n)
	shape := true

	t := metrics.NewTable("configuration", "median rounds", "median messages")
	type cfgRow struct {
		name string
		mode sim.Mode
	}
	var compRounds, pairRounds float64
	for _, row := range []cfgRow{{"component steps", sim.ComponentMode}, {"pairwise gossip", sim.PairwiseMode}} {
		results := make([]*sim.Result[int], cfg.Seeds)
		forEachSeed(cfg.Seeds, func(s int) {
			res, err := sim.Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.5), initialValues(n, int64(s)),
				sim.Options{ParallelThreshold: -1, Seed: int64(s), StopOnConverged: true, MaxRounds: 60_000, Mode: row.mode})
			if err == nil {
				results[s] = res
			}
		})
		var rounds, msgs metrics.Sample
		for _, res := range results {
			if res == nil || !res.Converged {
				shape = false
				continue
			}
			rounds.AddInt(res.Round)
			msgs.AddInt(res.Messages)
		}
		t.AddRowf(row.name, rounds.Median(), msgs.Median())
		if row.mode == sim.ComponentMode {
			compRounds = rounds.Median()
		} else {
			pairRounds = rounds.Median()
		}
	}
	if compRounds > pairRounds {
		shape = false // exploiting larger groups must not be slower
	}
	b.WriteString(fmt.Sprintf("Group-granularity ablation (min on ring(%d), churn 0.5, %d seeds):\n\n", n, cfg.Seeds))
	b.WriteString(t.String())

	// State-size comparison against flooding.
	t2 := metrics.NewTable("algorithm", "per-agent state (values)", "median rounds (churn 0.3)")
	floods := make([]*baseline.Result, cfg.Seeds)
	selfs := make([]*sim.Result[int], cfg.Seeds)
	forEachSeed(cfg.Seeds, func(s int) {
		if fr, err := baseline.Flooding(env.NewEdgeChurn(g, 0.3), initialValues(n, int64(s)), 60_000, int64(s)); err == nil {
			floods[s] = fr
		}
		if sr, err := sim.Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.3), initialValues(n, int64(s)),
			sim.Options{ParallelThreshold: -1, Seed: int64(s), StopOnConverged: true, MaxRounds: 60_000}); err == nil {
			selfs[s] = sr
		}
	})
	var floodRounds, selfRounds metrics.Sample
	maxState := 0
	for s := 0; s < cfg.Seeds; s++ {
		fr, sr := floods[s], selfs[s]
		if fr == nil || !fr.Converged {
			shape = false
			continue
		}
		floodRounds.AddInt(fr.Round)
		if fr.MaxStateSize > maxState {
			maxState = fr.MaxStateSize
		}
		if sr == nil || !sr.Converged {
			shape = false
			continue
		}
		selfRounds.AddInt(sr.Round)
	}
	t2.AddRowf("self-similar min", 1, selfRounds.Median())
	t2.AddRowf("flooding baseline", maxState, floodRounds.Median())
	b.WriteString("\nState cost vs. the flooding (group-communication) baseline:\n\n")
	b.WriteString(t2.String())
	if maxState < n {
		shape = false // flooding must pay Θ(N) state
	}
	return Section{
		ID:    "E11",
		Title: "Ablation — group granularity and baseline state cost",
		Claim: "§5: the algorithm class spans efficient (big groups) to minimal (pairwise); group-communication baselines pay Θ(N) state.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E12: fairness ---

// E12Fairness shows that assumption (2) is load-bearing: a fair adversary
// cannot prevent convergence, an unfair one can — selectively, exactly
// where the theory says.
func E12Fairness(cfg Config) Section {
	var b strings.Builder
	n := 8
	g := graph.Complete(n)
	vals := initialValues(n, 77)
	shape := true

	t := metrics.NewTable("environment", "min converges?", "sum (pairwise) converges?")
	run := func(e func() env.Environment) (bool, bool) {
		minSeed := make([]bool, cfg.Seeds)
		sumSeed := make([]bool, cfg.Seeds)
		forEachSeed(cfg.Seeds, func(s int) {
			r1, err := sim.Run[int](problems.NewMin(), e(), vals,
				sim.Options{ParallelThreshold: -1, Seed: int64(s), StopOnConverged: true, MaxRounds: 4000})
			minSeed[s] = err == nil && r1.Converged
			r2, err := sim.Run[int](problems.NewSum(), e(), vals,
				sim.Options{ParallelThreshold: -1, Seed: int64(s), StopOnConverged: true, MaxRounds: 4000, Mode: sim.PairwiseMode})
			sumSeed[s] = err == nil && r2.Converged
		})
		minOK, sumOK := true, true
		for s := 0; s < cfg.Seeds; s++ {
			minOK = minOK && minSeed[s]
			sumOK = sumOK && sumSeed[s]
		}
		return minOK, sumOK
	}

	minOK, sumOK := run(func() env.Environment { return env.NewAdversary(g, 0.8, 10) })
	t.AddRowf("adversary cutting 80% of edges, fairness window 10", minOK, sumOK)
	if !minOK || !sumOK {
		shape = false
	}

	// Unfair: permanently starve all edges of agent 0 (which holds a
	// non-minimal, non-zero value): both problems must fail globally,
	// min must still succeed among the others.
	var starved []int
	for id, edge := range g.Edges() {
		if edge.A == 0 || edge.B == 0 {
			starved = append(starved, id)
		}
	}
	minOK, sumOK = run(func() env.Environment { return env.NewStarver(g, starved) })
	t.AddRowf("starver isolating agent 0 (violates (2))", minOK, sumOK)
	if minOK || sumOK {
		shape = false
	}

	// The strongest opponent: an adversary that WATCHES the computation
	// and cuts exactly the edges whose endpoints disagree. With a
	// fairness window it still cannot prevent convergence; without one it
	// blocks min outright.
	feedbackRun := func(window int) bool {
		okSeed := make([]bool, cfg.Seeds)
		forEachSeed(cfg.Seeds, func(s int) {
			r, err := sim.Run[int](problems.NewMin(), env.NewAdversary(g, 1.0, window), vals,
				sim.Options{ParallelThreshold: -1, Seed: int64(s), StopOnConverged: true, MaxRounds: 4000, AdversaryFeedback: true})
			okSeed[s] = err == nil && r.Converged
		})
		for _, ok := range okSeed {
			if !ok {
				return false
			}
		}
		return true
	}
	fairFeedback := feedbackRun(10)
	unfairFeedback := feedbackRun(0)
	t.AddRowf("omniscient adversary, fairness window 10", fairFeedback, "—")
	t.AddRowf("omniscient adversary, NO fairness window", unfairFeedback, "—")
	if !fairFeedback || unfairFeedback {
		shape = false
	}
	b.WriteString("Fairness ablation (N=8, complete graph):\n\n")
	b.WriteString(t.String())
	b.WriteString("\nUnder the fair adversary every Q_e holds infinitely often, so the\n" +
		"correctness theorem applies and everything converges (slowly). The\n" +
		"starver violates (2) for agent 0's edges: global convergence is\n" +
		"impossible, while the other agents still reach their group's fixpoint\n" +
		"(self-similarity).\n")
	return Section{
		ID:    "E12",
		Title: "Fairness — assumption (2) is necessary and sufficient in practice",
		Claim: "§2: progress requires each Q ∈ Q to hold infinitely often (the escape postulate's hypothesis).",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E13: the continuous-state extension (§1.2) ---

// E13Continuous exercises the paper's §1.2 remark about systems "in which
// variables change value continuously with time": environment-gated
// Laplacian averaging conserves the mean exactly, contracts disagreement
// monotonically below the stability threshold, and holds per-block means
// across partitions — the self-similar structure in continuous state.
func E13Continuous(cfg Config) Section {
	var b strings.Builder
	n := 12
	g := graph.Ring(n)
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = float64((i*7+3)%20) * 1.5
	}
	shape := true

	t := metrics.NewTable("environment", "dt", "converged", "rounds", "mean drift", "monotone violations")
	for _, row := range []struct {
		name string
		e    env.Environment
		dt   float64
	}{
		{"static", env.NewStatic(g), 0.25},
		{"edge churn p=0.4", env.NewEdgeChurn(g, 0.4), 0.25},
		{"bursty (markov)", env.NewMarkovLinks(g, 0.2, 0.2), 0.25},
		{"power loss p=0.3", env.NewPowerLoss(g, 0.3), 0.25},
	} {
		res, err := flow.Run(row.e, x0, flow.Options{Dt: row.dt, Rounds: 60_000, Seed: 5, Tol: 1e-8})
		if err != nil {
			return Section{ID: "E13", Body: err.Error()}
		}
		t.AddRowf(row.name, row.dt, res.Converged, res.ConvergedRound, res.MeanDrift, res.MonotoneViolations)
		if !res.Converged || res.MeanDrift > 1e-7 || res.MonotoneViolations != 0 {
			shape = false
		}
	}
	b.WriteString("Laplacian averaging flow x' = x + dt·Σ(x_j − x_i) over available links\n")
	b.WriteString(fmt.Sprintf("(N=%d ring; conservation of the mean is the continuous f, the\n", n))
	b.WriteString("disagreement Σ(xi−xj)² the continuous variant h):\n\n")
	b.WriteString(t.String())

	// Stability boundary: above dt_max the variant discipline breaks.
	unstable, err := flow.Run(env.NewStatic(graph.Complete(8)),
		[]float64{0, 1, 2, 3, 4, 5, 6, 70}, flow.Options{Dt: 0.4, Rounds: 300, Seed: 6})
	if err != nil {
		return Section{ID: "E13", Body: err.Error()}
	}
	b.WriteString(fmt.Sprintf("\nAbove the stability bound (K8, dt=0.4 > 1/8): monotone violations = %d,\n"+
		"converged = %v — the well-foundedness requirement of §3.5 has a real\n"+
		"continuous analogue (step-size limits).\n",
		unstable.MonotoneViolations, unstable.Converged))
	if unstable.MonotoneViolations == 0 && unstable.Converged {
		shape = false
	}

	// Partition: per-block means (continuous self-similarity).
	part, err := flow.Run(env.NewPartitioner(graph.Complete(6), 2, 0, 1<<30),
		[]float64{0, 3, 6, 10, 20, 30}, flow.Options{Dt: 0.1, Rounds: 5000, Seed: 7, Tol: 1e-12})
	if err != nil {
		return Section{ID: "E13", Body: err.Error()}
	}
	blockOK := math.Abs(part.Final[0]-3) < 1e-6 && math.Abs(part.Final[5]-20) < 1e-6
	b.WriteString(fmt.Sprintf("\nPermanent 2-way partition: block means %.4g and %.4g (want 3 and 20),\n"+
		"global convergence %v — each component contracts to its own mean.\n",
		part.Final[0], part.Final[5], part.Converged))
	if !blockOK || part.Converged {
		shape = false
	}
	_ = cfg
	return Section{
		ID:    "E13",
		Title: "Continuous extension — environment-gated averaging flow (§1.2)",
		Claim: "§1.2: the methodology extends to systems whose variables change continuously (difference equations); cited dynamic-consensus literature [10,12].",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E15: scaling study ---

// E15Scaling pushes the round-based engine to N = 10⁴–10⁵ agents across
// graph families and BOTH interaction patterns. E6 stops at N = 64
// because the seed engine resorted the global snapshot every round; the
// sharded state layout (per-shard trackers with per-round staged deltas,
// a P-way merged snapshot, and the sharded monitor reduction — see
// engine.Shards) makes large-N component rounds affordable, and the
// partitioned pairwise matcher (per-block interior matchings fanned out
// across the pool, sequential boundary reconciliation — see
// engine.PairMatcher) plus the sparse-churn environment step and the
// O(1)-reseed group streams do the same for pairwise gossip, so this
// experiment records what the paper's prose promises implicitly: the
// methodology has no small-N assumption at either granularity extreme.
// Component cells scale availability with N so components stay a fixed
// small fraction of the ring (otherwise rounds-to-converge on a ring is
// Θ(N / component length)); pairwise cells use low-diameter families
// (torus, hypercube) because gossip moves information one hop per round.
// Recorded per cell: rounds to convergence, wall-clock, total heap
// allocations (runtime.MemStats.Mallocs), and allocs per round — the
// last is the scaling analogue of the BenchmarkSim* allocs/op budget and
// stays flat in N because the round hot path reuses every buffer.
func E15Scaling(cfg Config) Section {
	var b strings.Builder
	type cell struct {
		family string
		g      *graph.Graph
		avail  float64
		mode   sim.Mode
	}
	hyperDim := func(n int) int {
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		return d
	}
	cells := []cell{
		{"ring", graph.Ring(10_000), 0.99, sim.ComponentMode},
		{"torus", graph.Torus(100, 100), 0.99, sim.ComponentMode},
		{"hypercube", graph.Hypercube(hyperDim(8192)), 0.99, sim.ComponentMode},
		{"ring", graph.Ring(100_000), 0.999, sim.ComponentMode},
		{"torus", graph.Torus(100, 100), 0.99, sim.PairwiseMode},
		{"hypercube", graph.Hypercube(hyperDim(16384)), 0.99, sim.PairwiseMode},
		{"hypercube", graph.Hypercube(hyperDim(100_000)), 0.999, sim.PairwiseMode},
	}
	if cfg.Quick {
		// Quick keeps the headline N = 10⁵ cells — the whole point of the
		// study, and both finish in CI-friendly seconds — but shrinks the
		// supporting families.
		cells = []cell{
			{"ring", graph.Ring(10_000), 0.99, sim.ComponentMode},
			{"torus", graph.Torus(60, 60), 0.99, sim.ComponentMode},
			{"hypercube", graph.Hypercube(hyperDim(4096)), 0.99, sim.ComponentMode},
			{"ring", graph.Ring(100_000), 0.999, sim.ComponentMode},
			{"hypercube", graph.Hypercube(hyperDim(4096)), 0.99, sim.PairwiseMode},
			{"hypercube", graph.Hypercube(hyperDim(100_000)), 0.999, sim.PairwiseMode},
		}
	}

	// The cells run back to back on ONE warm sweep worker (persistent
	// pool, trackers, matcher scratch, arenas handed between cells via
	// sim.RunWith) — the E15 port onto the scenario-grid subsystem. Each
	// cell's result is bit-identical to the independent sim.Run the
	// pre-sweep E15 performed (the sweep determinism golden test pins
	// that contract); the alloc columns now also witness warm-engine
	// reuse — cells after the first stop paying engine set-up.
	w := sweep.NewWorker()
	defer w.Close()
	shape := true
	t := metrics.NewTable("graph family", "N", "mode", "edge availability",
		"rounds", "wall-clock", "heap allocs", "allocs/round")
	for _, c := range cells {
		n := c.g.N()
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		cr, err := w.Do(sweep.Cell{
			Env:      env.ChurnDesc(c.avail),
			Problem:  problems.MinDesc(),
			Topo:     c.family,
			Graph:    c.g,
			Mode:     c.mode,
			InitSeed: int64(n), // the pre-sweep E15 drew initial values from seed n
			Opts: sim.Options{Seed: 1, StopOnConverged: true, MaxRounds: 200_000, Mode: c.mode,
				Shards: 4 /* force the sharded layout; results are layout-invariant */},
		})
		runtime.ReadMemStats(&m1)
		if err != nil || !cr.Converged || cr.Violations != 0 {
			shape = false
			t.AddRowf(c.family, n, c.mode.String(), c.avail, "FAIL", "—", "—", "—")
			continue
		}
		allocs := m1.Mallocs - m0.Mallocs
		t.AddRowf(c.family, n, c.mode.String(), c.avail, cr.Round,
			cr.Duration.Round(time.Millisecond).String(), allocs, allocs/uint64(cr.Rounds))
	}
	b.WriteString("Minimum consensus at scale, sharded state layout (P = 4 shards; results\n" +
		"are bit-identical to the single-tracker engine — pinned by the sharded\n" +
		"golden equivalence tests, for the pairwise rows with the partitioned\n" +
		"matcher included), all cells executed on one warm sweep worker. One\n" +
		"seed per cell; wall-clock and alloc columns are environment-dependent\n" +
		"and indicative, rounds are exact:\n\n")
	b.WriteString(t.String())
	b.WriteString("\nAllocs/round is flat in N: the round loop stages deltas into reused\n" +
		"per-shard buffers, repairs each shard tracker once per round, draws\n" +
		"pairwise matchings into matcher-owned buffers, and the monitors\n" +
		"evaluate f through reusable ApplyInto buffers — so heap traffic tracks\n" +
		"rounds, not agents × rounds. The pairwise rows are the ones PR 3\n" +
		"unblocks: the matcher partitions the O(E) matching across blocks, the\n" +
		"environment samples only flipped edges per round, and group streams\n" +
		"reseed in O(1), so a 10⁵-agent gossip round costs milliseconds.\n")
	return Section{
		ID:    "E15",
		Title: "Scaling study — 10⁴–10⁵ agents on the sharded engine, both interaction patterns",
		Claim: "§2.1/§3: the conservation law holds for any partition of the agent multiset — the license to shard the state array; nothing in the methodology is small-N, even at the pairwise-gossip granularity minimum.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E18: steady-state round cost at 10⁶ agents ---

// E18RoundCost extends the scaling series past E15's 10⁵ ceiling to
// N = 10⁶ agents, and changes the question: not rounds-to-converge
// (a 10⁶-ring needs ~N rounds; E15 covers convergence at sizes where it
// is affordable) but the STEADY-STATE cost of a round once the system is
// warm. Every cell runs a FIXED number of pairwise rounds at 99.9%
// availability — the sparse regime where ~0.1% of edges flip per round —
// on one warm sweep worker, recording wall-clock/round and heap
// allocs/round. The usable-edge delta index (engine.PairMatcher.Update
// fed by the environment's flip lists and the dynamics overlay logs),
// the bitset masks, and the O(changes) fairness probe make index
// maintenance proportional to changes, so allocs/round must stay FLAT
// from 10⁴ to 10⁶ (heap traffic tracks changes and per-run bookkeeping,
// never agents or edges) while ns/round grows only with the matching
// draw itself — the algorithm's per-round O(usable edges) work, not an
// artifact of the harness. The quiescent extreme is pinned separately by
// the matcher benchmarks (a zero-change Update is ~10⁵× cheaper than the
// O(E) rescan it replaces) and the scaling row is recorded per commit by
// scripts/bench_record.sh.
func E18RoundCost(cfg Config) Section {
	var b strings.Builder
	rounds := 64
	type cell struct {
		family string
		g      *graph.Graph
	}
	cells := []cell{
		{"ring", graph.Ring(10_000)},
		{"ring", graph.Ring(100_000)},
		{"ring", graph.Ring(1_000_000)},
	}
	if !cfg.Quick {
		cells = append(cells, cell{"torus", graph.Torus(1000, 1000)})
	} else {
		rounds = 24
	}

	w := sweep.NewWorker()
	defer w.Close()
	// The observability probe supplies the ns_per_phase breakdown: each
	// measured cell runs with the probe attached and the per-cell delta of
	// its phase timers (Report().Sub) fills the phase columns. A caller
	// probe (cfg.Obs — cmd/experiments' -trace/-phase-metrics plumbing)
	// is used when present so trace events land in the requested sink.
	probe := cfg.Obs
	if probe == nil {
		probe = obs.NewProbe(obs.Config{})
	}
	phaseCols := []obs.Phase{obs.PhaseEnvStep, obs.PhaseMatcherUpdate,
		obs.PhaseMatch, obs.PhaseGroupStep, obs.PhaseMonitor}
	shape := true
	t := metrics.NewTable("graph family", "N", "rounds", "wall-clock",
		"ns/round", "heap allocs", "allocs/round",
		"env ns/rd", "update ns/rd", "match ns/rd", "step ns/rd", "monitor ns/rd")
	var aprFirst, aprLast float64
	for i, c := range cells {
		n := c.g.N()
		cellSpec := sweep.Cell{
			Env:      env.ChurnDesc(0.999),
			Problem:  problems.MinDesc(),
			Topo:     c.family,
			Graph:    c.g,
			Mode:     sim.PairwiseMode,
			InitSeed: int64(n),
			Opts: sim.Options{Seed: 1, MaxRounds: rounds,
				Mode: sim.PairwiseMode, Shards: 4},
		}
		// Steady state is the subject: the first (untimed) run pays the
		// one-time engine growth for this size — trackers, masks, the
		// matcher's O(blocks) index — and the measured second run is the
		// warm regime the benchmarks pin.
		if _, err := w.Do(cellSpec); err != nil {
			shape = false
			t.AddRowf(c.family, n, "FAIL", "—", "—", "—", "—", "—", "—", "—", "—", "—")
			continue
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		snap := probe.Report()
		cellSpec.Opts.Probe = probe // measured run only: the warm-up run stays unprobed
		cr, err := w.Do(cellSpec)
		cellSpec.Opts.Probe = nil
		phases := probe.Report().Sub(snap)
		runtime.ReadMemStats(&m1)
		if err != nil || cr.Rounds != rounds || cr.Violations != 0 {
			shape = false
			t.AddRowf(c.family, n, "FAIL", "—", "—", "—", "—", "—", "—", "—", "—", "—")
			continue
		}
		allocs := m1.Mallocs - m0.Mallocs
		apr := float64(allocs) / float64(rounds)
		if i == 0 {
			aprFirst = apr
		}
		aprLast = apr
		if c.g.N() == 1_000_000 && cr.Duration > 60*time.Second {
			shape = false // the headline cell must stay interactive
		}
		row := []any{c.family, n, cr.Rounds,
			cr.Duration.Round(time.Millisecond).String(),
			cr.Duration.Nanoseconds()/int64(rounds), allocs, fmt.Sprintf("%.1f", apr)}
		for _, ph := range phaseCols {
			row = append(row, phases.PhaseNs(ph)/int64(rounds))
		}
		t.AddRowf(row...)
	}
	// Flat means "not a function of graph size": across a 100× size range
	// the per-round allocation count may wiggle with per-run bookkeeping
	// (result copies, probe, environment setup amortized over the fixed
	// round budget) but an O(N) or O(E) regression multiplies it by
	// orders of magnitude.
	if aprFirst == 0 || aprLast > 10*aprFirst+10 {
		shape = false
	}
	b.WriteString("Steady-state pairwise round cost at 99.9% availability, fixed round\n" +
		"budget per cell, all cells on one warm sweep worker (engine scratch,\n" +
		"trackers, matcher index handed between cells). One seed per cell;\n" +
		"wall-clock and alloc columns are environment-dependent and\n" +
		"indicative:\n\n")
	b.WriteString(t.String())
	b.WriteString("\nAllocs/round is flat from 10⁴ to 10⁶ agents: the round loop touches\n" +
		"reused buffers only, and the delta index absorbs the ~0.1% of edges\n" +
		"that flip per round in O(changes) — the masks' word-level diff yields\n" +
		"exactly the flipped ids, the matcher reexamines only those edges'\n" +
		"buckets, and the fairness probe advances only touched trackers.\n" +
		"Ns/round grows with N because a pairwise round genuinely draws a\n" +
		"random maximal matching over every usable edge — the algorithm's own\n" +
		"work, which the tree-ordered parallel reconciliation fans out across\n" +
		"blocks without changing a single drawn bit.\n")
	b.WriteString("\nThe ns_per_phase columns come from the observability probe\n" +
		"(internal/obs) attached to each measured run: the O(N)-per-round work\n" +
		"— `step` (group steps over matched pairs) and `monitor` (shard flush,\n" +
		"merged snapshot, conservation check) — carries the round, `match` (the\n" +
		"matching draw over usable edges) sits next, and the O(changes) phases\n" +
		"(`env`, `update`) stay orders of magnitude below them, which is the\n" +
		"delta index's contribution in one row. Attaching the probe changes no\n" +
		"result bytes. Aggregate timing across the measured cells:\n\n")
	b.WriteString(probe.Report().PhaseTable().String())
	return Section{
		ID:    "E18",
		Title: "Round-cost study — O(changes) delta-indexed rounds at 10⁶ agents",
		Claim: "§1/§2.1: the methodology has no small-N assumption — a million-agent system is steppable interactively because steady-state round cost tracks what changed, not the size of the graph.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E16: the scenario matrix ---

// E16ScenarioMatrix runs a full (environment × problem × topology ×
// mode × seed) grid through the batched scenario-grid runner
// (internal/sweep) — the "as many scenarios as you can imagine" matrix
// in one process. The paper's self-similar framing is what makes the
// grid meaningful: every cell is the SAME engine under different
// resources, so the matrix is a direct, machine-checked reading of §1's
// claim that the algorithms adapt to the environment without changing
// shape — every consensus cell must converge with zero monitor
// violations, at every granularity, on every topology, under every
// environment in the grid. Cells fan out over warm workers (shared
// engine state between cells) under the process-wide worker budget, and
// every cell's result is bit-identical to an independent sim.Run — the
// sweep determinism golden test pins that, so this table is
// reproducible from the grid declaration alone.
func E16ScenarioMatrix(cfg Config) Section {
	var b strings.Builder
	n := 32
	seeds := cfg.Seeds
	if cfg.Quick {
		n = 16
	}
	axes := sweep.Axes{
		Envs:      []env.Desc{env.ChurnDesc(0.9), env.StaticDesc()},
		Problems:  []problems.Desc{problems.MinDesc(), problems.MaxDesc(), problems.GCDDesc()},
		Topos:     []sweep.Topo{sweep.RingTopo(), sweep.HypercubeTopo()},
		Sizes:     []int{n},
		Modes:     []sim.Mode{sim.ComponentMode, sim.PairwiseMode},
		Seeds:     seeds,
		BaseSeed:  16,
		MaxRounds: 60_000,
	}
	grid, err := axes.Grid()
	if err != nil {
		return Section{ID: "E16", Title: "scenario matrix", Body: "error: " + err.Error()}
	}
	res, err := sweep.Run(grid, sweep.Options{})
	if err != nil {
		return Section{ID: "E16", Title: "scenario matrix", Body: "error: " + err.Error()}
	}

	// Aggregate the per-cell results over the seed axis: one row per
	// (environment, problem, topology, mode), median rounds across the
	// replicas — the scenario-matrix table EXPERIMENTS.md records.
	shape := true
	type key struct{ e, p, topo, mode string }
	rows := map[key]*metrics.Sample{}
	conv := map[key]int{}
	order := []key{}
	cellsPer := map[key]int{}
	for _, c := range res.Cells {
		k := key{c.Cell.Env.Name, c.Cell.Problem.Name, c.Cell.Topo, c.Cell.Mode.String()}
		if rows[k] == nil {
			rows[k] = &metrics.Sample{}
			order = append(order, k)
		}
		rows[k].AddInt(c.Round)
		cellsPer[k]++
		if c.Converged {
			conv[k]++
		}
		if !c.Converged || c.Violations != 0 {
			shape = false
		}
	}
	t := metrics.NewTable("environment", "problem", "topology", "mode", "median rounds", "converged")
	for _, k := range order {
		t.AddRowf(k.e, k.p, k.topo, k.mode, rows[k].Median(),
			fmt.Sprintf("%d/%d", conv[k], cellsPer[k]))
	}
	b.WriteString(fmt.Sprintf("Scenario grid: %d environments × %d problems × %d topologies × %d modes\n"+
		"× %d seeds = %d cells (N = %d), one process, warm sweep workers:\n\n",
		len(axes.Envs), len(axes.Problems), len(axes.Topos), len(axes.Modes), seeds, len(grid.Cells), n))
	b.WriteString(t.String())
	b.WriteString("\nEvery cell converged with zero monitor violations (the conservation law\n" +
		"and variant descent hold pointwise over the whole matrix). Rounds adapt\n" +
		"to the environment and granularity — static beats churn, component\n" +
		"steps beat gossip — while correctness never varies: §1's adaptivity\n" +
		"claim, read across an entire grid at once. Regenerate any single cell\n" +
		"independently with cmd/sweep; results are bit-identical by the seed-\n" +
		"substream contract.\n")
	return Section{
		ID:    "E16",
		Title: "Scenario matrix — the full grid on the batched sweep runner",
		Claim: "§1: \"algorithms speed up or slow down depending on the resources available\" — uniformly, over every (environment × problem × topology × mode) combination.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E17: the fault-and-dynamism matrix ---

// E17Dynamics runs a scenario matrix whose third axis is a scripted
// fault schedule (internal/dynamics): agent crashes that freeze state
// and gate convergence until recovery, partition windows whose heal
// round makes rounds-to-reconverge measurable, and churn bursts — the
// dynamism the paper is actually ABOUT, turned into ≥300 machine-checked
// grid cells. Three properties are asserted pointwise over the whole
// matrix:
//
//   - zero monitor violations anywhere — the conservation law f(S) = S*
//     and the variant descent hold through every crash, partition, and
//     burst, and the frozen-state check certifies that crashed agents
//     never moved;
//   - reconvergence after every heal — every cell that experienced a
//     partition heal converges, and the (convergence − heal) gap is the
//     reconvergence cost the table reports;
//   - determinism — every cell is bit-identical to an independent
//     sim.Run and to every worker/shard count (the sweep dynamics
//     determinism tests pin this), so the matrix reproduces from its
//     declaration alone.
func E17Dynamics(cfg Config) Section {
	var b strings.Builder
	n := 32
	if cfg.Quick {
		n = 16
	}
	// Seeds is fixed at 4 (not cfg.Seeds): the matrix's breadth comes
	// from the dynamics axis, and 480 cells at n = 32 keep the full run
	// CI-friendly while clearing the ≥300-dynamics-cell bar.
	const seeds = 4
	axes := sweep.Axes{
		Envs:     []env.Desc{env.ChurnDesc(0.9), env.StaticDesc()},
		Problems: []problems.Desc{problems.MinDesc(), problems.MaxDesc(), problems.GCDDesc()},
		Topos:    []sweep.Topo{sweep.RingTopo(), sweep.HypercubeTopo()},
		Sizes:    []int{n},
		Dynamics: []dynamics.Desc{
			dynamics.NoneDesc(),
			dynamics.CrashesDesc(0.02, 15),
			dynamics.PartitionDesc(2, 0, 40),
			dynamics.FlapDesc(3, 0, 30),
			dynamics.BurstDesc(0.6, 0, 25),
		},
		Modes:     []sim.Mode{sim.ComponentMode, sim.PairwiseMode},
		Seeds:     seeds,
		BaseSeed:  17,
		MaxRounds: 60_000,
	}
	grid, err := axes.Grid()
	if err != nil {
		return Section{ID: "E17", Title: "dynamics matrix", Body: "error: " + err.Error()}
	}
	res, err := sweep.Run(grid, sweep.Options{})
	if err != nil {
		return Section{ID: "E17", Title: "dynamics matrix", Body: "error: " + err.Error()}
	}

	shape := true
	dynCells, healCells, crashes, recoveries := 0, 0, 0, 0
	type key struct{ dyn, p, mode string }
	rows := map[key]*metrics.Sample{}
	reconv := map[key]*metrics.Sample{}
	conv := map[key]int{}
	cellsPer := map[key]int{}
	var order []key
	for _, c := range res.Cells {
		k := key{c.Cell.Dyn.Name, c.Cell.Problem.Name, c.Cell.Mode.String()}
		if rows[k] == nil {
			rows[k] = &metrics.Sample{}
			reconv[k] = &metrics.Sample{}
			order = append(order, k)
		}
		rows[k].AddInt(c.Round)
		cellsPer[k]++
		if c.Converged {
			conv[k]++
		}
		// The two pointwise correctness criteria: zero violations (the
		// conservation law, the variant descent, AND the frozen-state
		// check all feed Violations) and convergence through the faults.
		if !c.Converged || c.Violations != 0 {
			shape = false
		}
		if c.Cell.Dyn.Name != "none" {
			dynCells++
			if c.Dyn == nil {
				shape = false
				continue
			}
			crashes += c.Dyn.Crashes
			recoveries += c.Dyn.Recoveries
			if c.Dyn.Heals > 0 {
				healCells++
				// Reconvergence after the heal: the run converged (checked
				// above) strictly after the last heal took effect — a heal
				// is only recorded while the run is still going.
				gap := c.Round - c.Dyn.LastHealRound
				if gap <= 0 {
					shape = false
				}
				reconv[k].AddInt(gap)
			}
		}
	}
	if dynCells < 300 {
		shape = false // the acceptance bar: ≥300 genuine dynamics cells
	}

	t := metrics.NewTable("dynamics", "problem", "mode", "median rounds",
		"median reconverge", "converged")
	for _, k := range order {
		rc := "—"
		if reconv[k].N() > 0 {
			rc = fmt.Sprint(reconv[k].Median())
		}
		t.AddRowf(k.dyn, k.p, k.mode, rows[k].Median(), rc,
			fmt.Sprintf("%d/%d", conv[k], cellsPer[k]))
	}
	b.WriteString(fmt.Sprintf("Fault matrix: %d environments × %d problems × %d topologies × %d dynamics\n"+
		"schedules × %d modes × %d seeds = %d cells (N = %d, %d with live dynamics),\n"+
		"one process, warm sweep workers. %d agent crashes and %d recoveries were\n"+
		"injected across the matrix; %d cells crossed a partition heal:\n\n",
		len(axes.Envs), len(axes.Problems), len(axes.Topos), len(axes.Dynamics),
		len(axes.Modes), seeds, len(grid.Cells), n, dynCells, crashes, recoveries, healCells))
	b.WriteString(t.String())
	b.WriteString("\nEvery cell converged with zero monitor violations — including the\n" +
		"frozen-state check certifying that crashed agents never changed state\n" +
		"while down — and every cell that lived through a partition heal\n" +
		"reconverged after it (median reconvergence gaps above). Crash cells\n" +
		"are gated exactly as the theory predicts: a frozen agent's value is\n" +
		"unreachable until it wakes, so \"median rounds\" tracks the injected\n" +
		"downtime, not the algorithm. Rerun any cell independently with\n" +
		"cmd/sweep's -dynamics and -cells flags; results are bit-identical by\n" +
		"the seed-substream contract.\n")
	return Section{
		ID:    "E17",
		Title: "Dynamics matrix — scripted crash/recover, partition/heal, and burst schedules",
		Claim: "§1/§2: computations remain correct while agents come and go and the interaction graph shifts — conservation and descent hold through faults, and convergence resumes when the environment allows.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E19: growable populations and the amnesiac-rejoin classification ---

// E19Membership reads §3.4's classification empirically. Super-idempotence
// f(f(X) ∪ Y) = f(X ∪ Y) makes JOIN handling exact: the monitor retargets
// by folding the joiners into the achieved target. The amnesiac-rejoin
// fault is harsher — a recovering agent re-enters with its INITIAL state,
// re-introducing values that may already have been absorbed. Functions
// insensitive to re-introduced inputs (min, max, gcd: duplicates never
// change the result) keep the conservation law through it; sum is not
// (a reset duplicates or destroys absorbed mass), and the monitor must
// DETECT every such violation rather than silently re-converge.
//
// The experiment has two halves: (1) the classification table — identical
// amnesiac flaps against min/max/gcd/sum, counting injected resets and
// detected violations; (2) the join determinism matrix — join-laden grids
// over all three attachment families replayed across engine layouts
// (state shards × matcher blocks × sweep workers × GOMAXPROCS), where
// results must be bit-identical within each matcher-block setting (the
// block count is part of the algorithm, like a seed; shards, workers, and
// GOMAXPROCS are layout only and must be invisible).
func E19Membership(cfg Config) Section {
	var b strings.Builder
	shape := true

	// --- Half 1: the §3.4 classification under amnesiac rejoin ---
	n := 16
	seeds := cfg.Seeds
	flap := func() *dynamics.Schedule {
		return dynamics.NewSchedule(
			dynamics.At(1, dynamics.CrashRandom(4)),
			dynamics.At(6, dynamics.RecoverAll()),
			dynamics.AmnesiacRejoin(),
		)
	}
	classVals := func(seed int64, mult int) []int {
		vals := initialValues(n, seed)
		for i := range vals {
			vals[i] = (vals[i] + 1) * mult
		}
		return vals
	}
	type fn struct {
		name, class string
		run         func(seed int64) (*sim.Result[int], error)
	}
	// Pairwise on a ring for the consensus functions: slow enough
	// convergence that the flap fires mid-run. Sum runs pairwise on the
	// complete graph (§4.2's requirement) with a round cap, because a
	// genuine conservation violation makes its target unreachable.
	fns := []fn{
		{"min", "insensitive", func(seed int64) (*sim.Result[int], error) {
			return sim.Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(n), 0.9),
				classVals(seed, 1), sim.Options{Seed: seed, Mode: sim.PairwiseMode, StopOnConverged: true, MaxRounds: 2_000, Dynamics: flap()})
		}},
		{"max", "insensitive", func(seed int64) (*sim.Result[int], error) {
			return sim.Run[int](problems.NewMax(16*n), env.NewEdgeChurn(graph.Ring(n), 0.9),
				classVals(seed, 1), sim.Options{Seed: seed, Mode: sim.PairwiseMode, StopOnConverged: true, MaxRounds: 2_000, Dynamics: flap()})
		}},
		{"gcd", "insensitive", func(seed int64) (*sim.Result[int], error) {
			return sim.Run[int](problems.NewGCD(), env.NewEdgeChurn(graph.Ring(n), 0.9),
				classVals(seed, 6), sim.Options{Seed: seed, Mode: sim.PairwiseMode, StopOnConverged: true, MaxRounds: 2_000, Dynamics: flap()})
		}},
		{"sum", "sensitive", func(seed int64) (*sim.Result[int], error) {
			return sim.Run[int](problems.NewSum(), env.NewEdgeChurn(graph.Complete(n), 0.9),
				classVals(seed, 1), sim.Options{Seed: seed, Mode: sim.PairwiseMode, StopOnConverged: true, MaxRounds: 120, Dynamics: flap()})
		}},
	}
	ct := metrics.NewTable("f", "§3.4 class", "runs", "resets injected",
		"runs w/ violations", "converged")
	for _, f := range fns {
		results := make([]*sim.Result[int], seeds)
		errs := make([]error, seeds)
		f := f
		forEachSeed(seeds, func(s int) {
			results[s], errs[s] = f.run(int64(s) + 1)
		})
		resets, violRuns, conv := 0, 0, 0
		for s := 0; s < seeds; s++ {
			if errs[s] != nil {
				return Section{ID: "E19", Title: "membership", Body: "error: " + errs[s].Error()}
			}
			r := results[s]
			if r.Dynamics == nil || r.Dynamics.AmnesiacResets == 0 {
				shape = false // the fault never fired — the row is vacuous
				continue
			}
			resets += r.Dynamics.AmnesiacResets
			if len(r.Violations) > 0 {
				violRuns++
			}
			if r.Converged {
				conv++
			}
		}
		switch f.class {
		case "insensitive":
			// Zero violations AND full reconvergence, every run.
			if violRuns != 0 || conv != seeds {
				shape = false
			}
		case "sensitive":
			// The monitor must detect the violation in every run.
			if violRuns != seeds {
				shape = false
			}
		}
		ct.AddRowf(f.name, f.class, seeds, resets, violRuns,
			fmt.Sprintf("%d/%d", conv, seeds))
	}
	b.WriteString(fmt.Sprintf("Identical amnesiac flaps (4 agents crash at round 1, ALL rejoin at\n"+
		"round 6 with their initial states) against each function, N = %d,\n"+
		"%d seeds each:\n\n", n, seeds))
	b.WriteString(ct.String())
	b.WriteString("\nThe split is exactly §3.4's: min, max, and gcd are insensitive to\n" +
		"re-introduced initial values (a duplicate never changes an extremum or\n" +
		"a gcd), so the conservation law survives amnesiac re-entry and every\n" +
		"run reconverges with zero violations. Sum is not — a reset duplicates\n" +
		"mass the system already absorbed — and the monitor flags every such\n" +
		"run rather than letting it pass as converged.\n\n")

	// --- Half 2: join determinism across engine layouts ---
	gn := 24
	joinSeeds := 3
	mkGrid := func(topo sweep.Topo, dyns []dynamics.Desc, shards, blocks int) (*sweep.Grid, error) {
		a := sweep.Axes{
			Envs:      []env.Desc{env.ChurnDesc(0.9)},
			Problems:  []problems.Desc{problems.MinDesc()},
			Topos:     []sweep.Topo{topo},
			Sizes:     []int{gn},
			Dynamics:  dyns,
			Modes:     []sim.Mode{sim.ComponentMode, sim.PairwiseMode},
			Seeds:     joinSeeds,
			BaseSeed:  19,
			MaxRounds: 60_000,
		}
		a.Shards, a.MatchBlocks = shards, blocks
		return a.Grid()
	}
	ringDyns := []dynamics.Desc{
		dynamics.JoinDesc(4, "ring", 8),
		dynamics.JoinDesc(3, "pref", 6),
		dynamics.AmnesiacFlapDesc(3, 2, 12),
	}
	cubeDyns := []dynamics.Desc{dynamics.JoinDesc(8, "hypercube", 5)}

	fingerprint := func(res *sweep.Result) string {
		var sb strings.Builder
		for _, c := range res.Cells {
			sb.WriteString(fmt.Sprintf("i=%d conv=%v round=%d steps=%d msgs=%d viol=%d final=%v",
				c.Cell.Index, c.Converged, c.Round, c.GroupSteps, c.Messages, c.Violations, c.Final))
			if c.Dyn != nil {
				sb.WriteString(fmt.Sprintf(" dyn=%+v", *c.Dyn))
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	type layout struct {
		name     string
		shards   int
		workers  int
		gomaxp   int // 0 = leave as is
	}
	layouts := []layout{
		{"shards=1 workers=1", 1, 1, 0},
		{"shards=4 workers=2", 4, 2, 0},
		{"shards=4 workers=all", 4, 0, 0},
		{"shards=1 workers=2 GOMAXPROCS=2", 1, 2, 2},
	}
	dt := metrics.NewTable("grid", "matcher blocks", "cells", "joins injected",
		"layouts bit-identical")
	grids := []struct {
		name string
		topo sweep.Topo
		dyns []dynamics.Desc
	}{
		{"ring splice + preferential + amnesiac", sweep.RingTopo(), ringDyns},
		{"hypercube dimension fill", sweep.HypercubeTopo(), cubeDyns},
	}
	for _, gspec := range grids {
		for _, blocks := range []int{0, 3} {
			var ref string
			identical := true
			cells, joins := 0, 0
			for _, l := range layouts {
				grid, err := mkGrid(gspec.topo, gspec.dyns, l.shards, blocks)
				if err != nil {
					return Section{ID: "E19", Title: "membership", Body: "error: " + err.Error()}
				}
				var res *sweep.Result
				if l.gomaxp > 0 {
					old := runtime.GOMAXPROCS(l.gomaxp)
					res, err = sweep.Run(grid, sweep.Options{Workers: l.workers, KeepFinal: true})
					runtime.GOMAXPROCS(old)
				} else {
					res, err = sweep.Run(grid, sweep.Options{Workers: l.workers, KeepFinal: true})
				}
				if err != nil {
					return Section{ID: "E19", Title: "membership", Body: "error: " + err.Error()}
				}
				fp := fingerprint(res)
				if ref == "" {
					ref = fp
					cells = len(res.Cells)
					for _, c := range res.Cells {
						if c.Violations != 0 || !c.Converged {
							shape = false
						}
						if c.Dyn != nil {
							joins += c.Dyn.Joins
						}
					}
					if joins == 0 {
						shape = false
					}
				} else if fp != ref {
					identical = false
					shape = false
				}
			}
			dt.AddRowf(gspec.name, blockLabel(blocks), cells, joins, identical)
		}
	}
	b.WriteString(fmt.Sprintf("Join-laden grids (all three attachment families: ring splice,\n"+
		"hypercube dimension fill, preferential attachment; N = %d founding\n"+
		"agents, %d seeds, component and pairwise modes) replayed across engine\n"+
		"layouts — state shards × sweep workers × GOMAXPROCS — per matcher\n"+
		"block setting:\n\n", gn, joinSeeds))
	b.WriteString(dt.String())
	b.WriteString("\nEvery layout produced byte-identical cell results, dynamics reports,\n" +
		"and final states: joiners append to the last shard without rebalancing,\n" +
		"substreams key on stable agent identity, and the matcher's grown\n" +
		"buckets keep their indices — so membership changes are as invisible to\n" +
		"the machine layout as any other event. The matcher block count is part\n" +
		"of the algorithm (a different block count draws a different, equally\n" +
		"valid matching, exactly like a different seed), so identity is asserted\n" +
		"within each block setting, never across.\n")
	return Section{
		ID:    "E19",
		Title: "Growable populations — JOIN events and the amnesiac-rejoin classification",
		Claim: "§3.4: f(f(X) ∪ Y) = f(X ∪ Y) makes incremental admission exact — and under amnesiac rejoin, duplicate-insensitive functions (min, max, gcd) keep the conservation law while sum's violations are detected, never masked.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// blockLabel renders a MatchBlocks setting for the E19 table.
func blockLabel(blocks int) string {
	if blocks == 0 {
		return "auto"
	}
	return fmt.Sprint(blocks)
}

// --- E14: the escape postulate (§2.1) ---

// E14EscapePostulate makes the paper's §2.1 discussion executable: the
// escape postulate (1) is an assumption, not a theorem — an environment
// that "always transits from G to G' before the agents can take a step"
// defeats it even though Q holds infinitely often, while a weakly fair
// scheduler validates it.
func E14EscapePostulate(cfg Config) Section {
	var b strings.Builder
	eq := func(a, s []int) bool { return a[0] == s[0] && a[1] == s[1] }
	sys := &dynsys.System[int]{
		EnvStates: []string{"up-A", "up-B"},
		Eq:        eq,
		AgentSucc: func(g int, s []int) [][]int {
			m := s[0]
			if s[1] < m {
				m = s[1]
			}
			if s[0] == m && s[1] == m {
				return nil
			}
			return [][]int{{m, m}}
		},
	}
	q := map[int]bool{0: true, 1: true}
	t := metrics.NewTable("scheduler", "□◇Q", "S # Q throughout", "◇(S≠S)", "postulate holds")
	shape := true
	for _, sched := range []dynsys.Scheduler[int]{
		dynsys.EnvFlipper[int]{},
		dynsys.WeaklyFair[int]{Period: 3},
	} {
		trace, err := dynsys.Run(sys, sched, 0, []int{5, 3}, 300, 1)
		if err != nil {
			return Section{ID: "E14", Body: err.Error()}
		}
		rep := dynsys.CheckPostulate(sys, trace, q)
		t.AddRowf(sched.Name(), rep.QInfinitelyOften, rep.EscapableThroughout,
			rep.AgentsEverMoved, rep.Holds)
		switch sched.(type) {
		case dynsys.EnvFlipper[int]:
			if rep.Holds || !rep.QInfinitelyOften || !rep.EscapableThroughout {
				shape = false
			}
		default:
			if !rep.Holds || !rep.AgentsEverMoved {
				shape = false
			}
		}
	}
	b.WriteString("Two-agent minimum consensus in the §2 (G,S) product system; Q = {up-A,\n")
	b.WriteString("up-B} (both environment states enable the agents):\n\n")
	b.WriteString(t.String())
	b.WriteString("\nThe flipper scheduler realizes the paper's §2.1 scenario: the\n" +
		"hypotheses of the escape postulate hold at every instant, yet the agents\n" +
		"never move — the postulate is a genuine assumption that implementations\n" +
		"must discharge (our round-based engine does so by construction: every\n" +
		"environment transition is followed by an agents-transition).\n")
	_ = cfg
	return Section{
		ID:    "E14",
		Title: "Escape postulate — the paper's §2.1 counterexample, executable",
		Claim: "§2.1: the escape postulate is an assumption; an environment that always transits before agents act defeats it even though ♦Q … □◇Q holds.",
		Body:  b.String(), ShapeHolds: shape,
	}
}

// --- E20: sharded actor scheduler — the 10⁵-agent scaling study ---

// E20SchedScale compares the two realizations of §4.5's asynchronous
// message-passing remark head to head: the literal one goroutine per
// agent (internal/runtime) against the sharded event-loop actor runtime
// (internal/sched) that multiplexes the whole population onto a handful
// of per-shard run queues. Same protocol, same busy-guard semantics,
// same monitor — the only thing that changes is who schedules the
// agents. The study sweeps min and sum over ring and hypercube at
// N = 2¹⁰, 2¹³, 2¹⁷ and records convergence, throughput (proper steps
// per wall-clock second), and allocations per initiated exchange.
func E20SchedScale(cfg Config) Section {
	var b strings.Builder
	type dim struct{ d, n int }
	sizes := []dim{{10, 1 << 10}, {13, 1 << 13}, {17, 1 << 17}}
	// 2¹³ is the largest population the goroutine engine gets: 2¹⁷ would
	// mean 131072 goroutines plus per-agent channels — feasible on a big
	// box but not a CI budget, which is precisely the scaling wall the
	// sched subsystem exists to remove.
	gorCap := 1 << 13
	if cfg.Quick {
		sizes = []dim{{8, 1 << 8}, {10, 1 << 10}}
	}
	type prob struct {
		name string
		mk   func() core.Problem[int]
	}
	probs := []prob{
		{"min", func() core.Problem[int] { return problems.NewMin() }},
		{"sum", func() core.Problem[int] { return problems.NewSum() }},
	}

	shape := true
	violations := 0
	skipped := 0
	gorPPS := map[string]float64{}   // "problem/topo/n" → proper steps/sec
	schedPPS := map[string]float64{} // same key
	var schedMinHyperAllocs []float64
	largestBoth := 0 // largest N at which both engines ran
	for _, sz := range sizes {
		if sz.n <= gorCap && sz.n > largestBoth {
			largestBoth = sz.n
		}
	}

	t := metrics.NewTable("engine", "problem", "topology", "N", "converged",
		"ops", "proper", "elapsed", "proper/s", "allocs/exch")
	for _, pr := range probs {
		for _, topo := range []string{"ring", "hypercube"} {
			for _, sz := range sizes {
				var g *graph.Graph
				if topo == "ring" {
					g = graph.Ring(sz.n)
				} else {
					g = graph.Hypercube(sz.d)
				}
				vals := make([]int, sz.n)
				for i := range vals {
					vals[i] = 2 + (i*7919)%997
				}
				vals[sz.n/2] = 1 // planted global minimum
				budget := 60 * sz.n
				for _, eng := range []string{"goroutine", "sched"} {
					if eng == "goroutine" && sz.n > gorCap {
						skipped++
						continue
					}
					// Allocation accounting wants a quiet heap: cells run
					// strictly sequentially, GC fences each one.
					var m0, m1 runtime.MemStats
					runtime.GC()
					runtime.ReadMemStats(&m0)
					var res *rt.Result[int]
					var err error
					if eng == "goroutine" {
						res, err = rt.Run[int](pr.mk(), g, vals, rt.Options{
							Seed: 20, LinkUpProbability: 1,
							MaxOps: budget, Timeout: 2 * time.Minute,
						})
					} else {
						res, err = sched.Run[int](pr.mk(), g, vals, sched.Options{
							Seed: 20, LinkUpProbability: 1,
							MaxOps: budget, Timeout: 2 * time.Minute,
						})
					}
					if err != nil {
						return Section{ID: "E20", Title: "sched scaling", Body: "error: " + err.Error()}
					}
					runtime.ReadMemStats(&m1)
					ops := res.Ops
					if ops < 1 {
						ops = 1
					}
					allocs := float64(m1.Mallocs-m0.Mallocs) / float64(ops)
					pps := res.ProperStepsPerSec()
					key := fmt.Sprintf("%s/%s/%d", pr.name, topo, sz.n)
					if eng == "goroutine" {
						gorPPS[key] = pps
					} else {
						schedPPS[key] = pps
						if pr.name == "min" && topo == "hypercube" {
							schedMinHyperAllocs = append(schedMinHyperAllocs, allocs)
							// The acceptance cell: min over the hypercube must
							// converge at every size, 10⁵ included — the log-
							// diameter topology is where 60·N initiations
							// genuinely suffice.
							if !res.Converged {
								shape = false
							}
						}
					}
					violations += len(res.Violations)
					t.AddRowf(eng, pr.name, topo, sz.n, res.Converged,
						res.Ops, res.ProperSteps,
						res.Elapsed.Round(time.Millisecond),
						fmt.Sprintf("%.0f", pps), fmt.Sprintf("%.3f", allocs))
				}
			}
		}
	}
	if violations != 0 {
		shape = false
	}

	// Throughput bar: ≥5× the goroutine engine's proper steps/sec on min
	// at the largest population both engines ran (2¹³ full, 2¹⁰ quick).
	speedup := 0.0
	for _, topo := range []string{"ring", "hypercube"} {
		key := fmt.Sprintf("min/%s/%d", topo, largestBoth)
		if gorPPS[key] > 0 && schedPPS[key]/gorPPS[key] > speedup {
			speedup = schedPPS[key] / gorPPS[key]
		}
	}
	if speedup < 5 {
		shape = false
	}
	// Allocation bar: allocs/exchange on the sched engine must stay flat
	// as N grows — the mailbox rings, run queues, and deferred heaps are
	// all preallocated, so the per-exchange cost cannot scale with the
	// population. "Flat" = max within 2× of min, or under an absolute
	// floor where the ratio is just measurement noise.
	minA, maxA := math.Inf(1), 0.0
	for _, a := range schedMinHyperAllocs {
		minA = math.Min(minA, a)
		maxA = math.Max(maxA, a)
	}
	flat := maxA < 0.05 || maxA <= 2*minA
	if !flat {
		shape = false
	}

	b.WriteString(fmt.Sprintf("Engines head to head on §4.5's asynchronous realization: %d cells\n"+
		"(min/sum × ring/hypercube × N up to %d), budget 60·N initiations each,\n"+
		"one process, cells sequential with GC fences for exact allocation\n"+
		"accounting. %d goroutine-per-agent cells above N = %d are skipped —\n"+
		"that population's goroutine and channel footprint is the scaling wall\n"+
		"the sched runtime removes:\n\n",
		len(probs)*2*len(sizes)*2-skipped, sizes[len(sizes)-1].n, skipped, gorCap))
	b.WriteString(t.String())
	b.WriteString(fmt.Sprintf("\nBest min-problem speedup at N = %d (the largest head-to-head size):\n"+
		"%.0f× proper steps/sec; sched allocs/exchange across sizes stays in\n"+
		"[%.3f, %.3f]. Ring cells at large N wind down on budget rather than\n"+
		"converge — a constant-degree ring moves information one hop per O(N)\n"+
		"random initiations, so convergence needs Θ(N²) exchanges; the\n"+
		"hypercube's log diameter is what makes 10⁵ agents feasible, and the\n"+
		"sum cells collect total mass onto a single agent by random coalescence,\n"+
		"slower still. Throughput is measured on converged and budget-bound\n"+
		"cells alike (proper steps per second is well-defined either way), and\n"+
		"the monitor asserted conservation and descent in every cell: %d\n"+
		"violations.\n", largestBoth, speedup, minA, maxA, violations))
	return Section{
		ID:    "E20",
		Title: "Sharded actor scheduler — async exchanges at 10⁵ agents without per-agent goroutines",
		Claim: "§4.5: the asynchronous message-passing realization scales to 10⁵-agent populations when agents are multiplexed onto per-shard event loops — same protocol, same monitor verdicts, ≥5× the goroutine engine's throughput with flat per-exchange allocation.",
		Body:  b.String(), ShapeHolds: shape,
	}
}
