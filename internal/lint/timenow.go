package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// TimeNow flags wall-clock reads (time.Now, time.Since) in library
// packages. A result that embeds a wall-clock observation is a function
// of the machine and the scheduler, not of (seed, partition); the
// engines must never branch on one. Wall-clock belongs to
//
//   - tests and benchmarks (_test.go is always exempt),
//   - CLI reporting (package main is exempt — printing a duration to a
//     terminal is what cmd/ is for), and
//   - explicitly annotated measurement plumbing (the sweep runner's
//     CellResult.Duration is wall-clock BY CONTRACT and documented as
//     the one machine-dependent field; it carries the directive).
//
// Timers and deadlines (time.NewTimer, context.WithTimeout) are
// scheduling machinery, not result inputs, and are not flagged.
var TimeNow = &analysis.Analyzer{
	Name: "timenow",
	Doc: "flag time.Now/time.Since outside tests, benchmarks, and CLI reporting; " +
		"results must not observe wall-clock",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Directives},
	Run:      runTimeNow,
}

func runTimeNow(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[Directives].(*Index)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if isTestFile(pass, n.Pos()) {
			return
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return
		}
		if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
			return
		}
		switch fn.Name() {
		case "Now", "Since", "Until":
			report(pass, ix, call.Pos(),
				"time.%s reads wall-clock in library code: results must be a function of (seed, partition) — move to the CLI/reporting layer or //lint:ignore timenow <why it cannot reach results>",
				fn.Name())
		}
	})
	return nil, nil
}
