package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MaskConv enforces the bitset zero-value convention at env.State's
// boundary. State.EdgeUp / State.AgentUp are bitset.Sets whose ZERO
// value means "absent mask — everything up" (the nil-[]bool convention
// the masks inherited). Direct indexing ignores that:
//
//	s.EdgeUp.Get(id)   // panics on an absent mask
//	s.EdgeUp.Len()     // 0 for an absent mask, not the edge count
//	s.EdgeUp.Count()   // 0 for an absent mask that means ALL up
//
// so every read outside internal/env must go through the helpers that
// encode the convention — State.EdgeIsUp, State.AgentIsUp,
// State.Usable — or guard the direct access with an IsZero test in the
// same statement (the one pattern the helpers cannot express: "is this
// specific agent known-down", which wants absent to read as false).
var MaskConv = &analysis.Analyzer{
	Name: "maskconv",
	Doc: "flag direct Get/Len/Count on env.State's EdgeUp/AgentUp masks outside " +
		"internal/env; the zero-value = all-up convention requires EdgeIsUp/AgentIsUp/Usable",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Directives},
	Run:      runMaskConv,
}

// envPackage reports whether path is the env package itself (where the
// helpers live) or its fixture stand-in.
func envPackage(path string) bool {
	return path == "repro/internal/env" || path == "env" || strings.HasSuffix(path, "/env")
}

func runMaskConv(pass *analysis.Pass) (any, error) {
	if envPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[Directives].(*Index)
	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || isTestFile(pass, n.Pos()) {
			return true
		}
		call := n.(*ast.CallExpr)
		method, mask, ok := stateMaskCall(pass, call)
		if !ok {
			return true
		}
		switch method {
		case "Get", "Len", "Count":
		default:
			return true
		}
		if method == "Get" && guardedByIsZero(pass, call, stack) {
			return true
		}
		helper := "EdgeIsUp"
		if mask == "AgentUp" {
			helper = "AgentIsUp"
		}
		report(pass, ix, call.Pos(),
			"direct %s on State.%s misreads the absent (zero-value = all-up) mask: use State.%s/Usable, or guard with %s.IsZero() in the same statement",
			method, mask, helper, mask)
		return true
	})
	return nil, nil
}

// stateMaskCall matches calls of the shape <expr>.EdgeUp.<m>(...) or
// <expr>.AgentUp.<m>(...) where <expr> has the env.State named type,
// returning the method and mask field names.
func stateMaskCall(pass *analysis.Pass, call *ast.CallExpr) (method, mask string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	field, okField := sel.X.(*ast.SelectorExpr)
	if !okField {
		return "", "", false
	}
	mask = field.Sel.Name
	if mask != "EdgeUp" && mask != "AgentUp" {
		return "", "", false
	}
	tv, okType := pass.TypesInfo.Types[field.X]
	if !okType || !isEnvState(tv.Type) {
		return "", "", false
	}
	return sel.Sel.Name, mask, true
}

// isEnvState reports whether t is (a pointer to) the named type State
// from the env package.
func isEnvState(t types.Type) bool {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "State" && obj.Pkg() != nil && envPackage(obj.Pkg().Path())
}

// guardedByIsZero reports whether the innermost enclosing statement of
// call also calls IsZero on the textually-identical mask selector —
// the sanctioned guard pattern:
//
//	if !es.AgentUp.IsZero() && !es.AgentUp.Get(a) { ... }
func guardedByIsZero(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	sel := call.Fun.(*ast.SelectorExpr)
	maskText := types.ExprString(sel.X)
	var stmt ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		if s, isStmt := stack[i].(ast.Stmt); isStmt {
			stmt = s
			break
		}
	}
	if stmt == nil {
		return false
	}
	guarded := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		c, isCall := n.(*ast.CallExpr)
		if !isCall || guarded {
			return !guarded
		}
		s, isSel := c.Fun.(*ast.SelectorExpr)
		if isSel && s.Sel.Name == "IsZero" && types.ExprString(s.X) == maskText {
			guarded = true
		}
		return !guarded
	})
	return guarded
}
