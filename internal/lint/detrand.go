package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// DetRand flags calls to math/rand (and math/rand/v2) PACKAGE-LEVEL
// functions in non-test code. Two distinct failure modes hide behind
// them:
//
//   - the package-global functions (rand.Intn, rand.Float64, rand.Seed,
//     ...) draw from a process-wide source, so results depend on
//     whatever else ran — the direct negation of the results-are-a-
//     function-of-(seed,partition) contract;
//   - the constructors (rand.New, rand.NewSource) mint private streams
//     whose SEEDING is invisible to the engine's substream discipline,
//     and whose lagged-Fibonacci source pays an O(607) rebuild per
//     reseed — the exact bottleneck engine.FastRand was built to remove
//     (>90% of a 10⁵-agent pairwise round before PR 3).
//
// Deterministic code takes a *rand.Rand (or engine.FastRand) value fed
// from an engine.SubSeed substream; METHOD calls on such values are
// allowed. The sanctioned constructor sites (engine.FastRand itself,
// the Seeder's master stream, golden-pinned legacy streams) carry
// //lint:ignore detrand directives recording why.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flag math/rand package-level calls in deterministic code; randomness " +
		"must flow through engine.SubSeed/engine.FastRand substreams",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Directives},
	Run:      runDetRand,
}

func runDetRand(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[Directives].(*Index)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if isTestFile(pass, n.Pos()) {
			return
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			// Method on a stream value (e.g. rng.Intn): the stream was
			// seeded by whoever built it — that construction site is
			// where the contract is enforced.
			return
		}
		report(pass, ix, call.Pos(),
			"%s.%s draws outside the seeded substream discipline: derive streams via engine.SubSeed/engine.FastRand (or annotate a sanctioned constructor with //lint:ignore detrand <why>)",
			path, fn.Name())
	})
	return nil, nil
}
