// Fixture for the detdirective analyzer: the ignore grammar itself is
// checked — a directive must name known analyzers and justify itself.
package directives

//lint:ignore // want `lint:ignore directive names no analyzer`
var a = 1

//lint:ignore detrand // want `lint:ignore detrand has no justification`
var b = 2

//lint:ignore nosuch because of a typo // want `lint:ignore names unknown analyzer "nosuch"`
var c = 3

//lint:ignore detrand,timenow fixture: a valid multi-analyzer directive parses cleanly
var d = 4
