// Fixture for the detrand analyzer: math/rand package-level calls are
// contract violations; method calls on stream values passed in are the
// sanctioned idiom; lint:ignore suppresses with a justification.
package detrand

import "math/rand"

func bad(seed int64) int {
	src := rand.NewSource(seed) // want `math/rand.NewSource draws outside the seeded substream discipline`
	r := rand.New(src)          // want `math/rand.New draws outside`
	_ = rand.Intn(4)            // want `math/rand.Intn draws outside`
	return r.Intn(10)           // method on a constructed stream: the construction was flagged, not the use
}

// takesStream is the contract-conforming shape: the stream arrives from
// a seeded substream, only methods are called.
func takesStream(rng *rand.Rand) int { return rng.Intn(3) }

//lint:ignore detrand fixture: sanctioned constructor seeded from a pinned substream
var sanctioned = rand.New(rand.NewSource(1))

func trailingForm() int64 {
	x := rand.Int63() //lint:ignore detrand fixture: demonstrates the same-line directive form
	return x
}
