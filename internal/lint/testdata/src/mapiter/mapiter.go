// Fixture for the mapiter analyzer: map ranges are order-nondeterminism
// in deterministic packages; slice ranges and justified sites pass.
package mapiter

import "sort"

func sum(m map[string]int) int {
	t := 0
	for _, v := range m { // want `range over map m iterates in nondeterministic order`
		t += v
	}
	return t
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//lint:ignore mapiter keys are collected then sorted before any ordered use
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sliceRange(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}
