// Fixture for the maskconv analyzer: direct mask indexing outside the
// env package bypasses the zero-value = all-up convention; helpers,
// IsZero-guarded reads, and justified sites pass.
package maskconv

import "env"

func bad(s env.State, e int) bool {
	return s.EdgeUp.Get(e) // want `direct Get on State.EdgeUp misreads the absent`
}

func badLen(s env.State) int {
	return s.AgentUp.Len() // want `direct Len on State.AgentUp misreads the absent`
}

func badCount(s env.State) int {
	return s.EdgeUp.Count() // want `direct Count on State.EdgeUp misreads the absent`
}

func badPtr(s *env.State, e int) bool {
	return s.EdgeUp.Get(e) // want `direct Get on State.EdgeUp misreads the absent`
}

// guarded is the sanctioned direct-read pattern: the same statement
// tests IsZero on the same mask, so absent reads as "not known-down".
func guarded(s env.State, a int) bool {
	return !s.AgentUp.IsZero() && !s.AgentUp.Get(a)
}

func viaHelper(s env.State, e int) bool { return s.EdgeIsUp(e) }

func ignored(s env.State, e int) bool {
	//lint:ignore maskconv fixture: provenance guarantees a non-zero mask here
	return s.EdgeUp.Get(e)
}
