// Fixture for the timenow analyzer: wall-clock reads in library code
// are flagged; timers/deadlines and justified reporting sites pass.
package timenow

import "time"

func bad() int64 {
	return time.Now().UnixNano() // want `time.Now reads wall-clock in library code`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads wall-clock`
}

func badUntil(t0 time.Time) time.Duration {
	return time.Until(t0) // want `time.Until reads wall-clock`
}

// timerOK: scheduling machinery is not a result input.
func timerOK() *time.Timer { return time.NewTimer(time.Second) }

func ignored() time.Time {
	//lint:ignore timenow fixture: reporting-only timestamp that never reaches results
	return time.Now()
}
