// Fixture for the sched mailbox-ring contract: internal/sched's
// per-agent mailboxes are fixed-capacity rings over a preallocated
// per-shard slab, so push and pop on the exchange hot path write into
// existing slots and allocate nothing. The clean pair below mirrors
// sched's pushMsg/popMsg and must pass; the boxed variant is the
// regression the analyzer exists to catch — a per-message heap object
// turns 10⁵-agent runs into allocation storms.
package hotalloc

type msg struct {
	from  int32
	state int
}

type mring struct {
	off        int32
	mask       uint32
	head, tail uint32
}

// pushSlab mirrors sched.pushMsg: slot write into a caller-owned slab,
// monotonic tail, no allocation — clean on the hot path.
//
//det:hotpath
func pushSlab(r *mring, slab []msg, m msg) {
	if r.tail-r.head > r.mask {
		panic("mailbox overflow")
	}
	slab[uint32(r.off)+(r.tail&r.mask)] = m
	r.tail++
}

// popSlab mirrors sched.popMsg: indexed read, monotonic head, the zero
// value returned by value — clean on the hot path.
//
//det:hotpath
func popSlab(r *mring, slab []msg) (msg, bool) {
	if r.head == r.tail {
		var zero msg
		return zero, false
	}
	m := slab[uint32(r.off)+(r.head&r.mask)]
	r.head++
	return m, true
}

type boxedRing struct {
	buf []*msg
}

// pushBoxed is the forbidden shape: boxing each message on push costs
// one heap object per exchange.
//
//det:hotpath
func (r *boxedRing) pushBoxed(m msg) {
	p := new(msg) // want `hotpath pushBoxed: new allocates per call`
	*p = m
	r.buf = append(r.buf, p)
}

// pushGrowing is the other forbidden shape: a mailbox that grows per
// message instead of being sized by the protocol bound up front.
//
//det:hotpath
func pushGrowing(m msg) []msg {
	var box []msg
	box = append(box, m) // want `hotpath pushGrowing: append to box, a local slice declared without capacity`
	return box
}
