// Fixture for the observability-probe contract: flat Begin/End/Add
// calls are the sanctioned instrumentation shape inside //det:hotpath
// functions (nil-receiver-safe, allocation-free), while wrapping the
// instrumented work in a closure passed to the probe allocates per call
// and is flagged.
package hotalloc

// Probe stands in for internal/obs.Probe.
type Probe struct{}

func (p *Probe) Begin(ph int)       {}
func (p *Probe) End(ph int)         {}
func (p *Probe) Add(c int, n int64) {}

// Scoped is the tempting-but-wrong API shape: timing a section by
// passing it as a callback.
func (p *Probe) Scoped(ph int, f func()) { f() }

//det:hotpath
func hotProbed(p *Probe, ids []int) {
	// The sanctioned shape: flat bracket calls, no allocation.
	p.Begin(1)
	p.Add(0, int64(len(ids)))
	p.End(1)
	// The flagged shape: a closure literal handed to the probe heaps a
	// func value (and captures) on every round.
	p.Scoped(1, func() { // want `hotpath hotProbed: closure literal allocates`
		p.Add(0, 1)
	})
}
