// Fixture for the hotalloc analyzer: inside //det:hotpath functions,
// per-call allocation constructs are flagged; unmarked functions and
// the caller-provided-dst append idiom pass.
package hotalloc

import "fmt"

//det:hotpath
func hot(dst []int, ids []int) []int {
	m := map[int]bool{} // want `hotpath hot: map literal allocates`
	_ = m
	s := []int{1, 2} // want `hotpath hot: slice literal allocates`
	_ = s
	b := make([]int, 4) // want `hotpath hot: make allocates per call`
	_ = b
	p := new(int) // want `hotpath hot: new allocates per call`
	_ = p
	fmt.Println(len(dst)) // want `hotpath hot: fmt.Println boxes operands`
	f := func() {}        // want `hotpath hot: closure literal allocates`
	f()
	var grow []int
	grow = append(grow, 1) // want `hotpath hot: append to grow, a local slice declared without capacity`
	_ = grow
	dst = append(dst, ids...) // append to a caller-provided buffer: the dst idiom, not flagged
	return dst
}

// cold is unmarked: the same constructs pass.
func cold() string {
	_ = map[int]bool{}
	_ = []int{1}
	return fmt.Sprintf("x")
}

//det:hotpath
func hotSanctioned() []int {
	//lint:ignore hotalloc fixture: one-time setup amortized over the whole run
	buf := make([]int, 0, 64)
	return buf
}
