// Fixture for the growable-population hot paths: the steady-state
// guard idiom — a //det:hotpath fast path that tests a counter and
// delegates all growth work to an unmarked slow function — passes, and
// allocation on the guarded path itself (paid every round, not once
// per join) is flagged.
package hotalloc

type growGraph struct {
	retiredCount int
	retired      []bool
	joinsLeft    int
}

// edgeRetired mirrors graph.EdgeRetired: a counter test plus an indexed
// probe, allocation-free, safe on the per-edge matching path.
//
//det:hotpath
func (g *growGraph) edgeRetired(id int) bool {
	return g.retiredCount != 0 && g.retired[id]
}

// growthFor mirrors dynamics.Applier.GrowthFor: the steady-state fast
// path is one counter test; every allocation lives in the unmarked
// slow function it delegates to, paid at most once per join round.
//
//det:hotpath
func (g *growGraph) growthFor(round int) ([]int, bool) {
	if g.joinsLeft == 0 {
		return nil, false
	}
	return g.growthSlow(round)
}

// growthSlow is unmarked: growth-op allocation (fresh id lists,
// spliced adjacency) is sanctioned off the fast path.
func (g *growGraph) growthSlow(round int) ([]int, bool) {
	ids := make([]int, 0, g.joinsLeft)
	for i := 0; i < g.joinsLeft; i++ {
		ids = append(ids, round+i)
	}
	g.joinsLeft = 0
	return ids, true
}

// growthForLeaky is the violation the marker exists to catch: the
// guarded path allocates per call even on rounds with no join.
//
//det:hotpath
func (g *growGraph) growthForLeaky(round int) ([]int, bool) {
	probe := make([]int, 1) // want `hotpath growthForLeaky: make allocates per call`
	probe[0] = round
	if g.joinsLeft == 0 {
		return nil, false
	}
	return g.growthSlow(round)
}
