// Package env is the maskconv fixture's stand-in for repro/internal/env:
// a State with EdgeUp/AgentUp mask fields following the zero-value =
// all-up convention, plus the helpers that encode it. The analyzer
// matches the State named type by package path suffix, so this fixture
// exercises exactly the production shape.
package env

// Mask is a minimal bitset.Set stand-in.
type Mask struct {
	bits []uint64
	n    int
}

func (m Mask) Get(i int) bool { return m.bits[i>>6]&(1<<(uint(i)&63)) != 0 }
func (m Mask) Len() int       { return m.n }
func (m Mask) Count() int     { c := 0; for _, w := range m.bits { _ = w; c++ }; return c }
func (m Mask) IsZero() bool   { return m.bits == nil && m.n == 0 }

// State mirrors env.State's mask fields.
type State struct {
	EdgeUp  Mask
	AgentUp Mask
}

func (s State) EdgeIsUp(id int) bool { return s.EdgeUp.IsZero() || s.EdgeUp.Get(id) }
func (s State) AgentIsUp(a int) bool { return s.AgentUp.IsZero() || s.AgentUp.Get(a) }
func (s State) Usable(id, a, b int) bool {
	return s.EdgeIsUp(id) && s.AgentIsUp(a) && s.AgentIsUp(b)
}
