// Package linttest is the repo's analysistest: it runs a go/analysis
// analyzer over fixture packages under testdata/src and checks the
// diagnostics against `// want` comments.
//
// The real golang.org/x/tools/go/analysis/analysistest is not part of
// the Go distribution's vendored x/tools (it drags in go/packages), and
// this repo vendors exactly the distribution's subset so the analyzer
// framework needs no network fetch — see
// third_party/golang.org/x/tools/README.vendored.md. This harness
// reimplements the slice of analysistest the suite needs:
//
//   - fixture layout testdata/src/<pkg>/*.go, with fixture packages
//     importable from one another by bare path (maskconv's fixtures
//     import an `env` stand-in package);
//   - stdlib imports type-checked from $GOROOT/src via the source
//     importer (no compiled export data needed);
//   - the analyzer's Requires DAG (inspect, the directive index) run in
//     dependency order, with only the analyzer under test reporting;
//   - `// want `+"`regex`"+` expectations matched by line: every
//     diagnostic must be expected and every expectation must fire.
//
// Analyzer facts are not supported (no analyzer in the suite uses
// them).
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named fixture package from dir (the testdata root,
// typically "testdata") and applies a to it, failing t on any
// mismatch between reported diagnostics and // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, dir, a, pkg)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld := newLoader(filepath.Join(dir, "src"))
	info, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, pkgPath, err)
	}

	var diags []analysis.Diagnostic
	if err := runAnalyzer(a, info, ld.fset, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	}, make(map[*analysis.Analyzer]any)); err != nil {
		t.Fatalf("%s: running on %s: %v", a.Name, pkgPath, err)
	}

	checkExpectations(t, a.Name, ld.fset, info.files, diags)
}

// pkgInfo is one type-checked fixture package.
type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader loads fixture packages by path, delegating non-fixture imports
// to the source importer (stdlib from $GOROOT/src).
type loader struct {
	root   string
	fset   *token.FileSet
	loaded map[string]*pkgInfo
	std    types.ImporterFrom
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:   root,
		fset:   fset,
		loaded: make(map[string]*pkgInfo),
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer for the type-checker: fixture
// packages win, everything else falls through to the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.root, path)); err == nil && fi.IsDir() {
		info, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return info.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return ld.Import(path)
}

func (ld *loader) load(path string) (*pkgInfo, error) {
	if info, ok := ld.loaded[path]; ok {
		return info, nil
	}
	pkgDir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", pkgDir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	ld.loaded[path] = pi
	return pi, nil
}

// runAnalyzer executes a and its Requires closure over one package,
// reporting only a's own diagnostics through report.
func runAnalyzer(a *analysis.Analyzer, pi *pkgInfo, fset *token.FileSet, report func(analysis.Diagnostic), results map[*analysis.Analyzer]any) error {
	if _, done := results[a]; done {
		return nil
	}
	for _, dep := range a.Requires {
		if err := runAnalyzer(dep, pi, fset, nil, results); err != nil {
			return err
		}
	}
	resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
	for _, dep := range a.Requires {
		resultOf[dep] = results[dep]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      pi.files,
		Pkg:        pi.pkg,
		TypesInfo:  pi.info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			if report != nil {
				report(d)
			}
		},
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	if a.ResultType != nil && res != nil {
		results[a] = res
	} else {
		results[a] = nil
	}
	return nil
}

// expectation is one parsed // want regex.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants extracts expectations from the fixture files' comments.
// Grammar (a strict subset of analysistest's): a comment of the form
//
//	// want `regex` `regex` ...
//
// attaches one expectation per regex to the comment's line. Double-
// quoted Go strings are accepted in place of backquoted ones.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := strings.TrimSpace(c.Text[idx+len("// want "):])
				pos := fset.Position(c.Pos())
				for rest != "" {
					var lit, tail string
					switch rest[0] {
					case '`':
						end := strings.Index(rest[1:], "`")
						if end < 0 {
							t.Fatalf("%s: unterminated // want backquote: %s", pos, c.Text)
						}
						lit, tail = rest[1:1+end], rest[end+2:]
					case '"':
						unq, err := strconv.Unquote(rest[:quotedEnd(rest)])
						if err != nil {
							t.Fatalf("%s: bad // want string %q: %v", pos, rest, err)
						}
						lit, tail = unq, rest[quotedEnd(rest):]
					default:
						t.Fatalf("%s: // want expects quoted regexes, got %q", pos, rest)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad // want regex %q: %v", pos, lit, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}
	return out
}

// quotedEnd returns the index just past the closing quote of the
// double-quoted Go string literal at the start of s.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return len(s)
}

func checkExpectations(t *testing.T, name string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: expected diagnostic at %s:%d matching %q, got none", name, filepath.Base(w.file), w.line, w.re)
		}
	}
}
