package lint

import (
	"go/token"
	"reflect"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Directive grammar:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// The directive suppresses the named analyzers' diagnostics on the
// directive's own line (trailing-comment form) and on the line directly
// below it (own-line form, the usual one). The justification is
// MANDATORY and free-form — a directive without one is itself a
// diagnostic, so every sanctioned exception records why it is
// sanctioned at the site, greppable as `lint:ignore`.
//
// Directives name concrete analyzers; there is deliberately no
// wildcard. An unknown analyzer name is a diagnostic too (it is almost
// always a typo that would otherwise silently suppress nothing).

// Directives validates every lint:ignore directive in the package and
// publishes an Index the other analyzers consult before reporting.
var Directives = &analysis.Analyzer{
	Name: "detdirective",
	Doc: "validate //lint:ignore directives: every suppression must name a known " +
		"analyzer and carry a non-empty justification",
	Run:        runDirectives,
	ResultType: reflect.TypeOf((*Index)(nil)),
}

// entry is one parsed, well-formed directive.
type entry struct {
	analyzers []string
	reason    string
}

// Index maps directive positions for one package: file → line → the
// directives that apply there. Built by the Directives analyzer;
// consumed through Suppressed.
type Index struct {
	fset  *token.FileSet
	lines map[string]map[int][]entry // filename → directive line → entries
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a directive on the same line or the line above.
func (ix *Index) Suppressed(analyzer string, pos token.Pos) bool {
	p := ix.fset.Position(pos)
	byLine := ix.lines[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, e := range byLine[line] {
			for _, a := range e.analyzers {
				if a == analyzer {
					return true
				}
			}
		}
	}
	return false
}

var directiveRe = regexp.MustCompile(`^//lint:ignore(\s|$)`)

func runDirectives(pass *analysis.Pass) (any, error) {
	known := make(map[string]bool)
	for _, n := range AnalyzerNames() {
		known[n] = true
	}
	ix := &Index{fset: pass.Fset, lines: make(map[string]map[int][]entry)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !directiveRe.MatchString(c.Text) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, "//lint:ignore")
				// A directive comment runs to end of line, so a fixture's
				// `// want` expectation can only live inside it; strip it
				// before parsing. (In production code this merely shortens
				// a justification that happened to embed the marker.)
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					pass.Reportf(c.Pos(), "lint:ignore directive names no analyzer (want //lint:ignore <analyzer> <justification>)")
					continue
				}
				names := strings.Split(fields[0], ",")
				bad := false
				for _, n := range names {
					if !known[n] {
						pass.Reportf(c.Pos(), "lint:ignore names unknown analyzer %q (known: %s)", n, strings.Join(AnalyzerNames(), ", "))
						bad = true
					}
				}
				if bad {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				if reason == "" {
					pass.Reportf(c.Pos(), "lint:ignore %s has no justification — the reason string is mandatory", fields[0])
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if ix.lines[p.Filename] == nil {
					ix.lines[p.Filename] = make(map[int][]entry)
				}
				ix.lines[p.Filename][p.Line] = append(ix.lines[p.Filename][p.Line], entry{analyzers: names, reason: reason})
			}
		}
	}
	return ix, nil
}
