package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapIter flags `for range` over map values in deterministic packages.
// Map iteration order is deliberately randomized by the Go runtime, so
// any map range on a path that feeds results, draws from a seeded
// stream, or writes output in visit order breaks bit-identical goldens
// nondeterministically — the worst kind of breakage, because it shows
// up only sometimes and never in the diff that caused it.
//
// The fix is to iterate a sorted key slice (or a deterministic index
// like the registry descriptor lists). Sites that are genuinely
// order-independent — accumulation into a commutative aggregate, bulk
// delete, building a set that is sorted before use — carry a
// //lint:ignore mapiter directive whose justification states the
// order-independence argument.
var MapIter = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag order-dependent map iteration in deterministic packages; " +
		"iterate sorted keys or justify order-independence",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Directives},
	Run:      runMapIter,
}

func runMapIter(pass *analysis.Pass) (any, error) {
	if !deterministicScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[Directives].(*Index)
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		if isTestFile(pass, n.Pos()) {
			return
		}
		rs := n.(*ast.RangeStmt)
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok || tv.Type == nil {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		report(pass, ix, rs.Pos(),
			"range over map %s iterates in nondeterministic order: iterate sorted keys, or //lint:ignore mapiter <why order cannot reach results>",
			types.ExprString(rs.X))
	})
	return nil, nil
}
