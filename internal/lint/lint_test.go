package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer gets a failing-then-fixed golden fixture: every fixture
// package contains violations (matched by // want), the conforming
// idiom (no diagnostic), and the lint:ignore escape hatch (suppressed,
// so also no diagnostic) — the three behaviours the suite's contract
// promises.

func TestDetRand(t *testing.T)  { linttest.Run(t, "testdata", lint.DetRand, "detrand") }
func TestMapIter(t *testing.T)  { linttest.Run(t, "testdata", lint.MapIter, "mapiter") }
func TestHotAlloc(t *testing.T) { linttest.Run(t, "testdata", lint.HotAlloc, "hotalloc") }
func TestMaskConv(t *testing.T) { linttest.Run(t, "testdata", lint.MaskConv, "maskconv") }
func TestTimeNow(t *testing.T)  { linttest.Run(t, "testdata", lint.TimeNow, "timenow") }

// TestDirectives pins the directive grammar itself: no analyzer name,
// no justification, and unknown analyzer are each diagnostics.
func TestDirectives(t *testing.T) { linttest.Run(t, "testdata", lint.Directives, "directives") }

// TestAllRegistered pins the suite composition cmd/detlint registers.
func TestAllRegistered(t *testing.T) {
	all := lint.All()
	names := make(map[string]bool, len(all))
	for _, a := range all {
		names[a.Name] = true
	}
	for _, want := range append(lint.AnalyzerNames(), "detdirective") {
		if !names[want] {
			t.Errorf("All() is missing analyzer %s", want)
		}
	}
	if len(all) != len(lint.AnalyzerNames())+1 {
		t.Errorf("All() has %d analyzers, want %d", len(all), len(lint.AnalyzerNames())+1)
	}
}
