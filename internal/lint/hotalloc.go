package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// HotAlloc is the static counterpart of scripts/check_alloc_budget.sh:
// inside functions whose doc comment carries the `//det:hotpath`
// marker, it flags constructs that heap-allocate per call. The alloc
// budgets catch a regression as a number after it ships; this analyzer
// names the exact expression before it does.
//
// Flagged inside a marked function:
//
//   - closure literals (the func value escapes into whatever takes it,
//     and captured variables move to the heap with it — the reason
//     bitset exposes Words()/AppendSelected as closure-free forms);
//   - map and slice composite literals (a fresh backing store per call);
//   - make and new (ditto, explicit);
//   - calls into fmt (every fmt call boxes its operands into ...any);
//   - append to a LOCAL slice declared without capacity in the same
//     function — growth reallocates per call. Appending to a
//     caller-provided buffer (parameter, field, or sized local) is the
//     sanctioned dst-append idiom and is not flagged.
//
// The marker is opt-in per function: hot loops earn it when an alloc
// budget or profile shows they matter, and the annotation then keeps
// them flat. One-time setup inside a marked function that genuinely
// must allocate carries //lint:ignore hotalloc with the amortization
// argument.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-inducing constructs in functions marked //det:hotpath " +
		"(closures, map/slice literals, make/new, fmt calls, unsized appends)",
	Requires: []*analysis.Analyzer{inspect.Analyzer, Directives},
	Run:      runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[Directives].(*Index)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !funcHasHotpathMarker(fd) || isTestFile(pass, fd.Pos()) {
			return
		}
		checkHotBody(pass, ix, fd)
	})
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, ix *Index, fd *ast.FuncDecl) {
	unsized := unsizedLocalSlices(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			report(pass, ix, e.Pos(), "hotpath %s: closure literal allocates (and moves captures to the heap); hoist it or use a closure-free form", fd.Name.Name)
			// Keep descending: the closure body runs on the hot path too.
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Type == nil {
				break
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				report(pass, ix, e.Pos(), "hotpath %s: map literal allocates a fresh table per call", fd.Name.Name)
			case *types.Slice:
				report(pass, ix, e.Pos(), "hotpath %s: slice literal allocates a fresh backing array per call", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, ix, fd, e, unsized)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, ix *Index, fd *ast.FuncDecl, call *ast.CallExpr, unsized map[*types.Var]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch pass.TypesInfo.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "make":
				report(pass, ix, call.Pos(), "hotpath %s: make allocates per call; hoist the buffer into reusable scratch", fd.Name.Name)
			case "new":
				report(pass, ix, call.Pos(), "hotpath %s: new allocates per call; hoist the value into reusable scratch", fd.Name.Name)
			case "append":
				if len(call.Args) == 0 {
					return
				}
				target, ok := call.Args[0].(*ast.Ident)
				if !ok {
					return
				}
				if v, ok := pass.TypesInfo.Uses[target].(*types.Var); ok && unsized[v] {
					report(pass, ix, call.Pos(), "hotpath %s: append to %s, a local slice declared without capacity — growth reallocates; size it or take a caller-provided dst", fd.Name.Name, target.Name)
				}
			}
			return
		}
	}
	if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(pass, ix, call.Pos(), "hotpath %s: fmt.%s boxes operands into ...any and allocates; format outside the hot path", fd.Name.Name, fn.Name())
	}
}

// unsizedLocalSlices collects the slice variables declared inside fd
// with no capacity: `var s []T` with no initializer, or `s := []T{}` /
// `s = []T{}` forms (empty literal). Slices built with make (any
// capacity) are already flagged at the make; parameters and fields
// belong to the caller.
func unsizedLocalSlices(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	mark := func(id *ast.Ident) {
		if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				out[v] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, id := range vs.Names {
					mark(id)
				}
			}
		case *ast.AssignStmt:
			if len(d.Lhs) != len(d.Rhs) {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if lit, ok := d.Rhs[i].(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}
