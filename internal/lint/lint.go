// Package lint is the repo's determinism & hot-path contract checker: a
// suite of go/analysis analyzers that turn the invariants every engine
// PR has so far defended only at runtime — golden equivalence matrices,
// allocation budgets — into machine-checked properties of the source.
//
// The contracts, one analyzer each (see DESIGN.md "Invariants as
// analyzers" for the full rationale):
//
//   - detrand: results must be a pure function of (seed, partition), so
//     all randomness flows through engine.SubSeed / engine.FastRand
//     substreams. Calling math/rand package-level functions (the global
//     source) or constructors (rand.New, rand.NewSource) anywhere in
//     non-test code is flagged; *rand.Rand VALUES passed in from a
//     seeded stream are fine.
//   - mapiter: `for range` over a map in a deterministic package is
//     iteration-order nondeterminism waiting to reach a golden. Flagged
//     unless the site is annotated with a sorted-keys justification.
//   - hotalloc: inside functions marked `//det:hotpath`, constructs
//     that allocate per call (closure literals, map/slice composite
//     literals, make/new, fmt calls, append to an unsized local slice)
//     are flagged — the static counterpart of
//     scripts/check_alloc_budget.sh.
//   - maskconv: env.State's EdgeUp/AgentUp masks use the bitset
//     zero-value = all-up convention; indexing them directly (.Get,
//     .Len, .Count) outside internal/env bypasses the convention and
//     misreads an absent mask as all-down. Use State.EdgeIsUp /
//     AgentIsUp / Usable, or guard with IsZero in the same statement.
//   - timenow: wall-clock reads (time.Now, time.Since) in library
//     packages make results machine-dependent; they belong in tests,
//     benchmarks, and CLI reporting (package main) only.
//
// Sanctioned exceptions carry a `//lint:ignore <analyzer> <reason>`
// directive with a mandatory justification, checked by the detdirective
// analyzer (see directives.go for the grammar).
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AnalyzerNames lists every analyzer in the suite, in the order they are
// registered. detdirective is part of the suite (it validates the
// directive grammar itself) but is not a valid target for an ignore
// directive.
func AnalyzerNames() []string {
	return []string{"detrand", "mapiter", "hotalloc", "maskconv", "timenow"}
}

// All returns the full suite, directives checker included — the list
// cmd/detlint registers with unitchecker.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Directives,
		DetRand,
		MapIter,
		HotAlloc,
		MaskConv,
		TimeNow,
	}
}

// isTestFile reports whether the file enclosing pos is a _test.go file.
// Analyzers see test files when vet analyzes a package's test variant;
// every contract here is about shipped engine code, so test files are
// uniformly out of scope.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// deterministicScope reports whether the package under analysis is part
// of the deterministic engine surface that mapiter polices. The engine
// tree is everything under repro/internal/ except the reporting layers
// (experiments renders tables, metrics is measurement plumbing) — those
// still ban wall-clock and unseeded randomness, but a map range that
// feeds a sorted table is routine there. Fixture packages under
// internal/lint/testdata use single-element paths and are always in
// scope so the golden suites can exercise the analyzers.
func deterministicScope(path string) bool {
	switch {
	case path == "repro":
		return true
	case strings.HasPrefix(path, "repro/internal/"):
		switch strings.TrimPrefix(path, "repro/internal/") {
		case "experiments", "metrics", "lint", "lint/linttest":
			return false
		}
		return true
	case !strings.Contains(path, "/") && !strings.Contains(path, "."):
		// Single-element path: a linttest fixture package.
		return true
	}
	return false
}

// report emits diag for analyzer a at pos unless a lint:ignore directive
// suppresses it. Every analyzer in the suite reports through this
// helper, which is what makes the directive grammar uniform.
func report(pass *analysis.Pass, ix *Index, pos token.Pos, format string, args ...any) {
	if ix.Suppressed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// funcHasHotpathMarker reports whether a function declaration carries
// the //det:hotpath marker in its doc comment.
func funcHasHotpathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//det:hotpath" || strings.HasPrefix(c.Text, "//det:hotpath ") {
			return true
		}
	}
	return false
}
