// Package mc is an exhaustive model checker for small instances of the
// paper's dynamic systems. It discharges the §3.7 proof obligations as
// machine checks over the full reachable state graph:
//
//   - "R implements D": every explored transition is validated as a
//     D-step (f conserved, h strictly decreased);
//   - "agents eventually transit out of nonoptimal states" (9): every
//     reachable non-goal state has at least one proper transition enabled
//     under some group the environment can form — together with the
//     escape postulate (1) and the environment assumption (2), this gives
//     convergence under every fair schedule;
//   - stability (4): goal states admit no proper transitions.
//
// Because the paper's state spaces are infinite, exhaustive checking works
// on finite sub-instances (few agents, small value domains). That cannot
// prove the general theorems, but it verifies the implementation against
// them exactly where the theorems say what must happen — and it refutes
// conclusively when something is wrong (as it does for the Fig. 1 variant
// and the §4.3 printed variant; see the tests).
package mc

import (
	"fmt"
	"sort"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

// Spec describes one finite instance to explore.
type Spec[T any] struct {
	// Initial is the initial (positional) agent state vector.
	Initial []T
	// Groups are the agent groups the environment can form (e.g. all
	// edges of a communication graph, plus larger components). Singleton
	// groups are allowed but can only stutter under a correct algorithm.
	Groups [][]int
	// Succ enumerates the possible next state vectors of a group holding
	// the given states (positional, same length). The identity need not
	// be included; stutters are always allowed implicitly.
	Succ func(states []T) [][]T
	// Problem supplies f, h, the state order, and equality for
	// validation.
	Problem core.Problem[T]
	// HEps is the strict-decrease slack for D-step validation.
	HEps float64
	// MaxStates aborts exploration beyond this many states (guard against
	// accidental explosion); 0 means 1_000_000.
	MaxStates int
}

// Report summarizes an exhaustive exploration.
type Report struct {
	// States is the number of reachable states (including the initial).
	States int
	// Transitions is the number of proper (state-changing) transitions
	// explored.
	Transitions int
	// GoalStates is the number of reachable states satisfying S = f(S) =
	// f(S(0)).
	GoalStates int
	// NonDSteps lists transitions that are not D-steps (obligation "R
	// implements D" violated).
	NonDSteps []string
	// DeadEnds lists non-goal states with no proper transition under any
	// group (obligation (9) violated: the state cannot be escaped even
	// with every group enabled).
	DeadEnds []string
	// UnstableGoals lists goal states with a proper outgoing transition
	// (stability (4) violated).
	UnstableGoals []string
	// Truncated reports that exploration hit MaxStates.
	Truncated bool
}

// OK reports whether all three obligations held on the explored instance.
func (r *Report) OK() bool {
	return !r.Truncated && len(r.NonDSteps) == 0 && len(r.DeadEnds) == 0 && len(r.UnstableGoals) == 0
}

// Summary renders a one-line verdict.
func (r *Report) Summary() string {
	return fmt.Sprintf("states=%d transitions=%d goals=%d nonD=%d deadEnds=%d unstableGoals=%d truncated=%v",
		r.States, r.Transitions, r.GoalStates, len(r.NonDSteps), len(r.DeadEnds), len(r.UnstableGoals), r.Truncated)
}

// Explore runs the exhaustive BFS over the instance's state graph.
func Explore[T any](spec Spec[T]) (*Report, error) {
	if spec.Succ == nil || spec.Problem == nil {
		return nil, fmt.Errorf("mc: Succ and Problem are required")
	}
	if len(spec.Initial) == 0 {
		return nil, fmt.Errorf("mc: empty initial state")
	}
	maxStates := spec.MaxStates
	if maxStates <= 0 {
		maxStates = 1_000_000
	}
	p := spec.Problem
	cmp := p.Cmp()
	f, h := p.F(), p.H()
	target := f.Apply(ms.New(cmp, spec.Initial...))

	encode := func(states []T) string {
		return fmt.Sprintf("%v", states)
	}
	isGoal := func(states []T) bool {
		return p.Equal(ms.New(cmp, states...), target)
	}

	rep := &Report{}
	seen := map[string][]T{}
	start := append([]T(nil), spec.Initial...)
	seen[encode(start)] = start
	queue := [][]T{start}
	rep.States = 1

	for len(queue) > 0 {
		if rep.States > maxStates {
			rep.Truncated = true
			break
		}
		cur := queue[0]
		queue = queue[1:]
		curGoal := isGoal(cur)
		if curGoal {
			rep.GoalStates++
		}
		properOut := false

		for _, group := range spec.Groups {
			gs := make([]T, len(group))
			for i, a := range group {
				gs[i] = cur[a]
			}
			beforeM := ms.New(cmp, gs...)
			for _, next := range spec.Succ(gs) {
				if len(next) != len(group) {
					return nil, fmt.Errorf("mc: Succ returned %d states for a group of %d", len(next), len(group))
				}
				afterM := ms.New(cmp, next...)
				if p.Equal(beforeM, afterM) {
					continue // stutter: always allowed, never explored
				}
				properOut = true
				rep.Transitions++
				if v := core.CheckDStep(f, h, p.Equal, beforeM, afterM, spec.HEps); !v.OK {
					rep.NonDSteps = append(rep.NonDSteps,
						fmt.Sprintf("state %v group %v → %v: %v", cur, group, next, v))
				}
				succ := append([]T(nil), cur...)
				for i, a := range group {
					succ[a] = next[i]
				}
				key := encode(succ)
				if _, ok := seen[key]; !ok {
					seen[key] = succ
					queue = append(queue, succ)
					rep.States++
				}
			}
		}

		switch {
		case curGoal && properOut:
			rep.UnstableGoals = append(rep.UnstableGoals, encode(cur))
		case !curGoal && !properOut:
			rep.DeadEnds = append(rep.DeadEnds, encode(cur))
		}
	}
	sort.Strings(rep.DeadEnds)
	return rep, nil
}

// ProblemSucc builds a successor enumerator from a problem's own
// (deterministic) GroupStep: the single transition the implemented
// algorithm would take. Checking with it verifies the implementation; it
// does not explore the full relation D.
func ProblemSucc[T any](p core.Problem[T]) func(states []T) [][]T {
	return func(states []T) [][]T {
		return [][]T{p.GroupStep(states, nil)}
	}
}

// DomainSucc builds a successor enumerator that explores the FULL
// relation D over a finite per-agent domain: every assignment of the
// group's members to domain values that conserves f and strictly
// decreases h. Use only with tiny domains and groups
// (|domain|^|group| assignments are enumerated).
func DomainSucc[T any](p core.Problem[T], domain []T, hEps float64) func(states []T) [][]T {
	f, h := p.F(), p.H()
	cmp := p.Cmp()
	return func(states []T) [][]T {
		var out [][]T
		beforeM := ms.New(cmp, states...)
		fBefore := f.Apply(beforeM)
		hBefore := h.Value(beforeM)
		assign := make([]T, len(states))
		var rec func(i int)
		rec = func(i int) {
			if i == len(states) {
				afterM := ms.New(cmp, assign...)
				if p.Equal(beforeM, afterM) {
					return
				}
				if !p.Equal(f.Apply(afterM), fBefore) {
					return
				}
				if !(h.Value(afterM) < hBefore-hEps) {
					return
				}
				out = append(out, append([]T(nil), assign...))
				return
			}
			for _, v := range domain {
				assign[i] = v
				rec(i + 1)
			}
		}
		rec(0)
		return out
	}
}

// AllPairs returns every 2-element group over n agents: the group
// structure induced by a complete communication graph under pairwise
// interaction.
func AllPairs(n int) [][]int {
	var out [][]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, []int{i, j})
		}
	}
	return out
}

// PathPairs returns the adjacent pairs 0–1, 1–2, …: the group structure of
// a line graph.
func PathPairs(n int) [][]int {
	var out [][]int
	for i := 0; i+1 < n; i++ {
		out = append(out, []int{i, i + 1})
	}
	return out
}

// WholeGroup returns the single group of all n agents.
func WholeGroup(n int) [][]int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return [][]int{g}
}
