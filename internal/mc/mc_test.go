package mc

import (
	"strings"
	"testing"

	"repro/internal/core"
	ms "repro/internal/multiset"
	"repro/internal/problems"
)

func TestExploreMinImplementation(t *testing.T) {
	// Min with the implemented group step over all pairs of a K3:
	// obligations must hold.
	p := problems.NewMin()
	rep, err := Explore(Spec[int]{
		Initial: []int{3, 1, 2},
		Groups:  AllPairs(3),
		Succ:    ProblemSucc[int](p),
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("obligations failed: %s", rep.Summary())
	}
	if rep.GoalStates != 1 {
		t.Errorf("goal states = %d, want 1", rep.GoalStates)
	}
	if rep.States < 3 {
		t.Errorf("suspiciously few states: %s", rep.Summary())
	}
}

func TestExploreMinFullRelation(t *testing.T) {
	// The FULL relation D for min over a small domain: every f-conserving
	// h-decreasing assignment. Obligations must hold for the relation
	// itself, not just our refinement.
	p := problems.NewMin()
	domain := []int{0, 1, 2, 3}
	rep, err := Explore(Spec[int]{
		Initial: []int{3, 1, 2},
		Groups:  append(AllPairs(3), WholeGroup(3)...),
		Succ:    DomainSucc[int](p, domain, 0),
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("obligations failed: %s", rep.Summary())
	}
	if rep.Transitions < 10 {
		t.Errorf("full relation explored too few transitions: %s", rep.Summary())
	}
}

func TestExploreSumOnPairs(t *testing.T) {
	p := problems.NewSum()
	rep, err := Explore(Spec[int]{
		Initial: []int{2, 3, 1},
		Groups:  AllPairs(3),
		Succ:    ProblemSucc[int](p),
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("obligations failed: %s", rep.Summary())
	}
}

// The paper's point about sum and sparse graphs as a model-checking fact:
// on a line graph with a zero separator, the relation reaches a dead end
// (a reachable non-goal state that no enabled group can escape).
func TestExploreSumLineDeadEnd(t *testing.T) {
	p := problems.NewSum()
	rep, err := Explore(Spec[int]{
		Initial: []int{2, 0, 3},
		Groups:  PathPairs(3), // line: 0–1, 1–2; agent 1 holds 0
		Succ:    ProblemSucc[int](p),
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DeadEnds) == 0 {
		t.Fatalf("expected a dead end (zero separator): %s", rep.Summary())
	}
	if len(rep.NonDSteps) != 0 || len(rep.UnstableGoals) != 0 {
		t.Errorf("unexpected violations: %s", rep.Summary())
	}
}

func TestExploreMinPairCorrectedVariant(t *testing.T) {
	p := problems.NewMinPair(3, 6)
	rep, err := Explore(Spec[problems.Pair]{
		Initial: problems.InitialPairs([]int{2, 5, 4}),
		Groups:  append(AllPairs(3), WholeGroup(3)...),
		Succ:    ProblemSucc[problems.Pair](p),
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("obligations failed: %s", rep.Summary())
	}
}

// paperVariantMinPair wraps MinPair but exposes the variant printed in the
// paper, so the checker can refute it mechanically.
type paperVariantMinPair struct{ *problems.MinPair }

func (p paperVariantMinPair) H() core.Variant[problems.Pair] { return p.MinPair.PaperH() }

func TestExploreRefutesPaperMinPairVariant(t *testing.T) {
	p := paperVariantMinPair{problems.NewMinPair(2, 6)}
	rep, err := Explore(Spec[problems.Pair]{
		Initial: problems.InitialPairs([]int{2, 5}),
		Groups:  WholeGroup(2),
		Succ:    ProblemSucc[problems.Pair](p.MinPair),
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The natural step S0 → f(S0) keeps Σ(x+y) constant: not a D-step
	// under the printed variant.
	if len(rep.NonDSteps) == 0 {
		t.Fatalf("expected the printed §4.3 variant to be refuted: %s", rep.Summary())
	}
}

func TestExploreSortingOnLine(t *testing.T) {
	vals := []int{2, 0, 1}
	p, err := problems.NewSorting(vals)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(Spec[problems.Item]{
		Initial: problems.InitialItems(vals),
		Groups:  PathPairs(3),
		Succ:    ProblemSucc[problems.Item](p),
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("obligations failed: %s", rep.Summary())
	}
}

func TestExploreGCD(t *testing.T) {
	p := problems.NewGCD()
	rep, err := Explore(Spec[int]{
		Initial: []int{4, 6, 10},
		Groups:  AllPairs(3),
		Succ:    ProblemSucc[int](p),
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("obligations failed: %s", rep.Summary())
	}
}

func TestExploreValidation(t *testing.T) {
	p := problems.NewMin()
	if _, err := Explore(Spec[int]{Initial: []int{1}, Groups: nil, Problem: p}); err == nil {
		t.Error("missing Succ accepted")
	}
	if _, err := Explore(Spec[int]{Succ: ProblemSucc[int](p), Problem: p}); err == nil {
		t.Error("empty initial accepted")
	}
}

func TestExploreTruncation(t *testing.T) {
	p := problems.NewMin()
	rep, err := Explore(Spec[int]{
		Initial:   []int{9, 7, 5, 3},
		Groups:    AllPairs(4),
		Succ:      DomainSucc[int](p, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0),
		Problem:   p,
		MaxStates: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("expected truncation")
	}
	if rep.OK() {
		t.Error("truncated report claims OK")
	}
}

func TestGroupHelpers(t *testing.T) {
	if len(AllPairs(4)) != 6 {
		t.Errorf("AllPairs(4) = %d", len(AllPairs(4)))
	}
	if len(PathPairs(4)) != 3 {
		t.Errorf("PathPairs(4) = %d", len(PathPairs(4)))
	}
	wg := WholeGroup(3)
	if len(wg) != 1 || len(wg[0]) != 3 {
		t.Errorf("WholeGroup(3) = %v", wg)
	}
}

func TestReportSummary(t *testing.T) {
	rep := &Report{States: 5, Transitions: 4, GoalStates: 1}
	if !strings.Contains(rep.Summary(), "states=5") {
		t.Errorf("summary = %q", rep.Summary())
	}
	if !rep.OK() {
		t.Error("clean report not OK")
	}
}

func TestUnstableGoalDetection(t *testing.T) {
	// Construct successors that move AWAY from a goal state: start at the
	// converged state and offer a transition that changes it while faking
	// f conservation failure — the checker must flag it as non-D and as
	// an unstable goal.
	p := problems.NewMin()
	rep, err := Explore(Spec[int]{
		Initial: []int{1, 1},
		Groups:  AllPairs(2),
		Succ: func(states []int) [][]int {
			return [][]int{{2, 2}} // escapes the goal
		},
		Problem: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UnstableGoals) == 0 {
		t.Errorf("unstable goal not detected: %s", rep.Summary())
	}
	if len(rep.NonDSteps) == 0 {
		t.Errorf("goal-escaping step not flagged as non-D: %s", rep.Summary())
	}
}

// Sanity: multiset equality of pairs used by the checker is exact.
func TestPairEncoding(t *testing.T) {
	a := ms.New(problems.ComparePairs, problems.Pair{X: 1, Y: 2})
	b := ms.New(problems.ComparePairs, problems.Pair{X: 1, Y: 2})
	if !a.Equal(b) {
		t.Error("pair multisets unequal")
	}
}
