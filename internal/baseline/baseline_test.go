package baseline

import (
	"testing"

	"repro/internal/env"
	"repro/internal/graph"
)

func vals(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i * 3
	}
	return out
}

func TestSnapshotStatic(t *testing.T) {
	g := graph.Line(6)
	res, err := Snapshot(env.NewStatic(g), vals(6), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("snapshot did not converge on a static line")
	}
	// Tree grows one hop per round: a 6-line needs 5 rounds.
	if res.Round != 5 {
		t.Errorf("rounds = %d, want 5", res.Round)
	}
	if res.Restarts != 0 {
		t.Errorf("restarts = %d on static env", res.Restarts)
	}
	if res.MaxStateSize != 6 {
		t.Errorf("max state = %d, want 6", res.MaxStateSize)
	}
}

func TestSnapshotStallsOnPartition(t *testing.T) {
	g := graph.Complete(6)
	e := env.NewPartitioner(g, 2, 0, 1_000_000) // permanent partition
	res, err := Snapshot(e, vals(6), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("snapshot converged across a permanent partition")
	}
}

func TestSnapshotRestartsUnderChurn(t *testing.T) {
	g := graph.Ring(10)
	e := env.NewEdgeChurn(g, 0.5)
	res, err := Snapshot(e, vals(10), 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Error("expected restarts under churn")
	}
}

func TestSnapshotValidation(t *testing.T) {
	g := graph.Line(3)
	if _, err := Snapshot(env.NewStatic(g), vals(2), 10, 1); err == nil {
		t.Error("value/agent mismatch accepted")
	}
}

func TestFloodingStatic(t *testing.T) {
	g := graph.Line(5)
	res, err := Flooding(env.NewStatic(g), vals(5), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("flooding did not converge")
	}
	// Knowledge spreads the full line in one round here because edge
	// exchanges cascade within a round in edge order; must converge in
	// ≤ diameter rounds regardless.
	if res.Round > 4 {
		t.Errorf("rounds = %d, want ≤ 4", res.Round)
	}
	if res.MaxStateSize != 5 {
		t.Errorf("max state = %d, want 5 (Θ(N) state is the point)", res.MaxStateSize)
	}
}

func TestFloodingSurvivesChurn(t *testing.T) {
	g := graph.Ring(10)
	e := env.NewEdgeChurn(g, 0.3)
	res, err := Flooding(e, vals(10), 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("flooding did not converge under churn")
	}
}

func TestFloodingStallsOnPermanentPartition(t *testing.T) {
	g := graph.Complete(6)
	e := env.NewPartitioner(g, 2, 0, 1_000_000)
	res, err := Flooding(e, vals(6), 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("flooding crossed a permanent partition")
	}
}

func TestFloodingValidation(t *testing.T) {
	g := graph.Line(3)
	if _, err := Flooding(env.NewStatic(g), vals(4), 10, 1); err == nil {
		t.Error("value/agent mismatch accepted")
	}
}
