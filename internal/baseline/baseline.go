// Package baseline implements the non-self-similar comparison algorithms
// the paper positions itself against (§5): "for each agent to take
// repeated global snapshots or to employ group communication protocols …
// these approaches work well in systems that are relatively static but are
// inefficient in dynamic systems."
//
// Two baselines are provided:
//
//   - Snapshot: a coordinator builds a spanning tree over available edges
//     and collects every agent's value; if any tree edge becomes
//     unavailable mid-collection the snapshot aborts and restarts. This is
//     the brittle "repeated global snapshots" strategy: it makes no
//     progress at all unless the environment stays good long enough for a
//     full collection, and partitions starve it forever.
//
//   - Flooding: every agent keeps the set of (agent, value) pairs it has
//     heard of and exchanges full sets over available edges (epidemic /
//     group-communication style). It is robust like the self-similar
//     algorithms but pays Θ(N) state and message size per agent, versus
//     O(1) for the self-similar solutions — the cost experiment E11
//     quantifies.
//
// Both baselines run under exactly the same env.Environment as the
// self-similar engine, so comparisons are apples to apples.
package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/env"
)

// Result reports a baseline run.
type Result struct {
	// Converged reports whether the goal was reached.
	Converged bool
	// Round is the first round at which the goal held (or the executed
	// round count when not converged).
	Round int
	// Messages counts messages sent.
	Messages int
	// Restarts counts snapshot aborts (Snapshot only).
	Restarts int
	// MaxStateSize is the largest per-agent state (in values) observed
	// (Flooding: up to N; Snapshot: coordinator reaches N).
	MaxStateSize int
}

// Snapshot runs the coordinator-snapshot baseline for an aggregate
// function over int values (the aggregate itself is irrelevant to the
// dynamics — collection is the hard part). The coordinator is agent 0.
//
// Each round, the coordinator grows a spanning tree over currently
// available edges (one hop per round, modelling request propagation); an
// agent joins the tree when a tree member reaches it over an available
// edge. If any tree edge is unavailable in a round, the whole collection
// aborts and restarts from scratch — a collected snapshot must be
// consistent, and the paper's point is precisely that dynamic environments
// keep invalidating it.
func Snapshot(e env.Environment, values []int, maxRounds int, seed int64) (*Result, error) {
	g := e.Graph()
	if len(values) != g.N() {
		return nil, fmt.Errorf("baseline: %d values for %d agents", len(values), g.N())
	}
	//lint:ignore detrand reference baseline keeps its own golden-pinned stdlib stream; it exists to be compared AGAINST the engines, not to share their substream discipline
	rng := rand.New(rand.NewSource(seed))
	res := &Result{}

	n := g.N()
	inTree := make([]bool, n)
	treeEdges := make([]int, 0, n-1)
	reset := func() {
		for i := range inTree {
			inTree[i] = false
		}
		inTree[0] = true
		treeEdges = treeEdges[:0]
	}
	reset()
	res.MaxStateSize = 1

	for round := 0; round < maxRounds; round++ {
		s := e.Step(round, rng)

		// Abort if the environment broke any collected tree edge or took
		// down a tree member.
		broken := false
		for _, id := range treeEdges {
			edge := g.Edge(id)
			if !s.Usable(id, edge.A, edge.B) {
				broken = true
				break
			}
		}
		if !s.AgentIsUp(0) {
			broken = true
		}
		if broken {
			res.Restarts++
			reset()
			continue
		}

		// Grow the tree one hop per round: any non-member adjacent (over
		// an available edge) to an agent that was a member at the start
		// of the round joins (request+reply = 2 messages). The frontier
		// is frozen so propagation takes one round per hop.
		frontier := make([]bool, n)
		copy(frontier, inTree)
		for id, edge := range g.Edges() {
			if !s.Usable(id, edge.A, edge.B) {
				continue
			}
			var other int
			switch {
			case frontier[edge.A] && !inTree[edge.B]:
				other = edge.B
			case frontier[edge.B] && !inTree[edge.A]:
				other = edge.A
			default:
				continue
			}
			inTree[other] = true
			treeEdges = append(treeEdges, id)
			res.Messages += 2
		}

		size := 0
		for _, in := range inTree {
			if in {
				size++
			}
		}
		if size > res.MaxStateSize {
			res.MaxStateSize = size
		}
		if size == n {
			res.Converged = true
			res.Round = round + 1
			return res, nil
		}
	}
	res.Round = maxRounds
	return res, nil
}

// Flooding runs the epidemic baseline: each agent holds the set of
// (agent id, value) pairs it knows; over every available edge both
// endpoints merge their sets; an agent "knows the answer" when it has all
// N pairs, and the run converges when every agent does.
func Flooding(e env.Environment, values []int, maxRounds int, seed int64) (*Result, error) {
	g := e.Graph()
	n := g.N()
	if len(values) != n {
		return nil, fmt.Errorf("baseline: %d values for %d agents", len(values), n)
	}
	//lint:ignore detrand reference baseline keeps its own golden-pinned stdlib stream; it exists to be compared AGAINST the engines, not to share their substream discipline
	rng := rand.New(rand.NewSource(seed))
	res := &Result{}

	know := make([][]bool, n)
	counts := make([]int, n)
	for i := range know {
		know[i] = make([]bool, n)
		know[i][i] = true
		counts[i] = 1
	}
	res.MaxStateSize = 1

	for round := 0; round < maxRounds; round++ {
		s := e.Step(round, rng)
		for id, edge := range g.Edges() {
			if !s.Usable(id, edge.A, edge.B) {
				continue
			}
			a, b := edge.A, edge.B
			// Exchange full sets (2 messages of size ≤ N values each;
			// count messages, track state size separately).
			res.Messages += 2
			for i := 0; i < n; i++ {
				if know[a][i] != know[b][i] {
					know[a][i] = true
					know[b][i] = true
				}
			}
			ca, cb := 0, 0
			for i := 0; i < n; i++ {
				if know[a][i] {
					ca++
				}
				if know[b][i] {
					cb++
				}
			}
			counts[a], counts[b] = ca, cb
			if ca > res.MaxStateSize {
				res.MaxStateSize = ca
			}
		}
		all := true
		for i := 0; i < n; i++ {
			if counts[i] != n {
				all = false
				break
			}
		}
		if all {
			res.Converged = true
			res.Round = round + 1
			return res, nil
		}
	}
	res.Round = maxRounds
	return res, nil
}
