// Population growth: incremental topology attachment.
//
// The paper's agents "come and go" (§1.1); this file is the "come" half.
// A Graph can grow mid-run: new agents are appended at the top of the
// index space and new edges are appended at the tail of the edge list, so
// every existing agent index, edge id, adjacency list prefix, and cached
// partition position stays valid. Three attachment families are provided,
// mirroring the static constructors:
//
//   - SpliceRing: open the ring at its closing edge {0, N-1} and splice
//     the newcomers into the gap, so the result is semantically
//     Ring(N+k). The only id ever removed from the live topology is the
//     closing edge, which is *retired* — its id is never reused, and all
//     mask/partition consumers skip it via EdgeRetired.
//   - GrowHypercube: dimension fill — each new vertex v links down to
//     every v with one set bit cleared, so growing 2^d → 2^(d+1) yields
//     exactly Hypercube(d+1). Purely additive.
//   - AttachPreferential: Barabási–Albert style, each newcomer links to
//     m distinct existing vertices with probability ∝ degree+1 on the
//     caller's deterministic substream. Purely additive.
//
// Each operation returns a Growth delta (new agent range, appended edge
// ids, retired edge ids) and extends every cached EdgePartition in place:
// new edges are classified and appended to the touched Interior list or
// boundary pair, new pairs go at the end, and the level schedule is
// re-derived by the same order-greedy coloring — which preserves the
// existing prefix's levels, so a warm matcher only has to append buckets,
// never remap them. That is how PR 6's O(changes) round cost survives
// joins: a growth op invalidates only what it touches.
package graph

import (
	"fmt"
	mathbits "math/bits"
	"sort"

	"repro/internal/bitset"
)

// Intner is the single-method randomness dependency of
// AttachPreferential — satisfied by both *math/rand.Rand and the
// engine's FastRand, without this package importing either.
type Intner interface{ Intn(n int) int }

// Growth is the delta produced by one population-growth operation.
type Growth struct {
	// FirstAgent is the index of the first appended agent (== N before
	// the operation); the new agents are FirstAgent..FirstAgent+NewAgents-1.
	FirstAgent int
	// NewAgents is the number of agents appended.
	NewAgents int
	// NewEdgeIDs lists the ids of the edges appended, ascending.
	NewEdgeIDs []int
	// RetiredEdgeIDs lists the ids retired (removed from the live
	// topology) by the operation, if any.
	RetiredEdgeIDs []int
}

// Gen returns the graph's growth generation: 0 at construction,
// incremented by every growth operation. Index structures built over the
// graph compare generations to detect staleness cheaply.
func (g *Graph) Gen() int { return g.gen }

// BaseN returns the founding population — the N the graph was constructed
// with, before any growth. Block sizing (PartitionEdges, engine shards)
// is keyed to BaseN so layouts agree before and after joins.
func (g *Graph) BaseN() int { return g.baseN }

// LiveM returns the number of live (non-retired) edges. M() counts every
// id ever issued, including retired ones.
func (g *Graph) LiveM() int { return len(g.edges) - g.retiredCount }

// EdgeRetired reports whether edge id has been retired by a growth
// operation. Retired ids keep their Edge entry (masks and partitions stay
// index-stable) but are skipped by components, matching, and EdgeID.
//det:hotpath
func (g *Graph) EdgeRetired(id int) bool {
	return g.retiredCount != 0 && g.retired.Get(id)
}

// Clone returns a deep copy of the graph sharing no mutable state with
// the original. The partition cache is not copied — partitions are pure
// functions of the edge history, so the clone rebuilds identical ones on
// demand. Sweep workers clone the shared pristine graph before running a
// join-laden cell, so repeated runs always grow from the same base.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:            g.n,
		name:         g.name,
		gen:          g.gen,
		baseN:        g.baseN,
		sortedM:      g.sortedM,
		retired:      g.retired.Clone(),
		retiredCount: g.retiredCount,
	}
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	// One flat backing with three-index per-vertex slices, like New: a
	// later per-vertex append reallocates only that vertex's list.
	flat := make([]int, 0, total)
	c.adj = make([][]int, len(g.adj))
	for v, a := range g.adj {
		start := len(flat)
		flat = append(flat, a...)
		c.adj[v] = flat[start:len(flat):len(flat)]
	}
	return c
}

// SpliceRing grows a ring by k agents: the current closing edge {0, N-1}
// is retired and the chain N-1 — N — … — N+k-1 — 0 is spliced into the
// gap, so the live topology afterwards is exactly Ring(N+k)'s. Requires
// N ≥ 3 and a live closing edge (the graph is a ring, original or
// previously spliced).
func (g *Graph) SpliceRing(k int) (Growth, error) {
	if k < 1 {
		return Growth{}, fmt.Errorf("graph: SpliceRing count %d (need ≥ 1)", k)
	}
	if g.n < 3 {
		return Growth{}, fmt.Errorf("graph: SpliceRing on %d vertices (need ≥ 3)", g.n)
	}
	closing, ok := g.EdgeID(0, g.n-1)
	if !ok {
		return Growth{}, fmt.Errorf("graph: SpliceRing: no live closing edge {0,%d} — not a ring", g.n-1)
	}
	oldN := g.n
	gr := Growth{FirstAgent: oldN, NewAgents: k}
	g.retireEdge(closing)
	gr.RetiredEdgeIDs = append(gr.RetiredEdgeIDs, closing)
	g.addAgents(k)
	prev := oldN - 1
	for v := oldN; v < oldN+k; v++ {
		gr.NewEdgeIDs = append(gr.NewEdgeIDs, g.addEdge(prev, v))
		prev = v
	}
	gr.NewEdgeIDs = append(gr.NewEdgeIDs, g.addEdge(0, prev))
	g.finishGrow(&gr)
	return gr, nil
}

// GrowHypercube appends k agents with hypercube dimension-fill wiring:
// each new vertex v links to every vertex obtained by clearing one set
// bit of v. Growing a Hypercube(d) from 2^d to 2^(d+1) vertices yields
// exactly Hypercube(d+1); partial fills are the natural intermediate
// topologies. Purely additive — no edge is retired.
func (g *Graph) GrowHypercube(k int) (Growth, error) {
	if k < 1 {
		return Growth{}, fmt.Errorf("graph: GrowHypercube count %d (need ≥ 1)", k)
	}
	if g.n < 1 {
		return Growth{}, fmt.Errorf("graph: GrowHypercube on empty graph")
	}
	oldN := g.n
	gr := Growth{FirstAgent: oldN, NewAgents: k}
	g.addAgents(k)
	for v := oldN; v < oldN+k; v++ {
		for b := 0; b < mathbits.Len(uint(v)); b++ {
			if v&(1<<uint(b)) != 0 {
				gr.NewEdgeIDs = append(gr.NewEdgeIDs, g.addEdge(v&^(1<<uint(b)), v))
			}
		}
	}
	g.finishGrow(&gr)
	return gr, nil
}

// AttachPreferential appends k agents, linking each to m distinct
// existing vertices drawn with probability proportional to degree+1
// (Barabási–Albert with add-one smoothing so isolated vertices stay
// reachable). Earlier newcomers are candidate targets for later ones and
// degrees update between newcomers, per the standard sequential model.
// All randomness comes from rng, which callers derive from a seeded
// substream — the result is a pure function of (graph, k, m, rng state).
func (g *Graph) AttachPreferential(k, m int, rng Intner) (Growth, error) {
	if k < 1 || m < 1 {
		return Growth{}, fmt.Errorf("graph: AttachPreferential k=%d m=%d (need ≥ 1)", k, m)
	}
	if g.n < 1 {
		return Growth{}, fmt.Errorf("graph: AttachPreferential on empty graph")
	}
	oldN := g.n
	gr := Growth{FirstAgent: oldN, NewAgents: k}
	g.addAgents(k)
	chosen := make([]int, 0, m)
	for v := oldN; v < oldN+k; v++ {
		want := m
		if want > v {
			want = v
		}
		// Total weight over candidates [0, v): live degree + 1 each.
		total := v
		for u := 0; u < v; u++ {
			total += len(g.adj[u])
		}
		chosen = chosen[:0]
		for len(chosen) < want {
			r := rng.Intn(total)
			u := 0
			for ; u < v-1; u++ {
				w := len(g.adj[u]) + 1
				if r < w {
					break
				}
				r -= w
			}
			dup := false
			for _, c := range chosen {
				if c == u {
					dup = true
					break
				}
			}
			if dup {
				continue // rejected duplicate: redraw from the same stream
			}
			chosen = append(chosen, u)
		}
		sort.Ints(chosen)
		for _, u := range chosen {
			gr.NewEdgeIDs = append(gr.NewEdgeIDs, g.addEdge(u, v))
		}
	}
	g.finishGrow(&gr)
	return gr, nil
}

// addAgents appends k isolated vertices and returns the first new index.
func (g *Graph) addAgents(k int) int {
	first := g.n
	g.n += k
	g.adj = append(g.adj, make([][]int, k)...)
	return first
}

// addEdge appends the live edge {a,b} at the tail of the edge list and
// returns its id. Callers guarantee the endpoints are in range and the
// edge is not already live (attachment constructions satisfy this by
// always wiring a brand-new vertex).
func (g *Graph) addEdge(a, b int) int {
	e := NewEdge(a, b)
	id := len(g.edges)
	g.edges = append(g.edges, e)
	if !g.retired.IsZero() {
		// Keep the retired mask's length equal to M so EdgeRetired can
		// probe any id without a bounds branch.
		g.retired = g.retired.Resized(len(g.edges), false)
	}
	g.adj[e.A] = append(g.adj[e.A], id)
	g.adj[e.B] = append(g.adj[e.B], id)
	return id
}

// retireEdge removes edge id from the live topology: its bit is set in
// the retired mask (the id and Edge entry survive so masks and partition
// indices stay stable) and it is dropped from both adjacency lists.
func (g *Graph) retireEdge(id int) {
	if g.retired.IsZero() {
		g.retired = bitset.New(len(g.edges))
	}
	g.retired.Set(id)
	g.retiredCount++
	e := g.edges[id]
	g.adj[e.A] = removeID(g.adj[e.A], id)
	g.adj[e.B] = removeID(g.adj[e.B], id)
}

func removeID(ids []int, id int) []int {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// finishGrow bumps the generation and extends every cached partition in
// place with the operation's new edges, so shared *EdgePartition pointers
// held by warm matchers stay valid and current.
func (g *Graph) finishGrow(gr *Growth) {
	g.gen++
	g.partMu.Lock()
	defer g.partMu.Unlock()
	if len(g.parts) == 0 {
		return
	}
	keys := make([]int, 0, len(g.parts))
	//lint:ignore mapiter key collection only — the keys are sorted before any partition is touched, so visit order cannot reach the extended lists
	for k := range g.parts {
		keys = append(keys, k)
	}
	sort.Ints(keys) // fixed order: partitions are independent, but keep the walk deterministic
	for _, k := range keys {
		p := g.parts[k]
		for _, id := range gr.NewEdgeIDs {
			g.extendPartitionLocked(p, id)
		}
		colorPairs(p)
	}
}

// extendPartitionLocked classifies one appended edge into partition p:
// interior edges append to their block's Interior list, boundary edges
// append to Boundary and to their block pair (new pairs go at the END of
// p.Pairs so existing pair indices — matcher bucket numbers — never
// shift). Callers re-derive Levels with colorPairs afterwards; the
// order-greedy coloring reproduces the prefix exactly. Must hold partMu.
func (g *Graph) extendPartitionLocked(p *EdgePartition, id int) {
	e := g.edges[id]
	ba, bb := p.Block(e.A), p.Block(e.B)
	if ba == bb {
		p.Interior[ba] = append(p.Interior[ba], id)
		return
	}
	if ba > bb {
		ba, bb = bb, ba
	}
	p.Boundary = append(p.Boundary, id)
	pi := -1
	for i := range p.Pairs {
		if p.Pairs[i].BI == ba && p.Pairs[i].BJ == bb {
			pi = i
			break
		}
	}
	if pi < 0 {
		pi = len(p.Pairs)
		p.Pairs = append(p.Pairs, BoundaryPair{BI: ba, BJ: bb})
	}
	p.Pairs[pi].Edges = append(p.Pairs[pi].Edges, id)
}
