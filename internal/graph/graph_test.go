package graph

import (
	"math/rand"
	"repro/internal/bitset"
	"testing"
	"testing/quick"
)

func TestNewEdgeCanonical(t *testing.T) {
	if NewEdge(5, 2) != (Edge{2, 5}) {
		t.Error("edge not canonicalized")
	}
	if NewEdge(2, 5) != (Edge{2, 5}) {
		t.Error("canonical edge changed")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 3, []Edge{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New("bad", 3, []Edge{{0, 3}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New("bad", 3, []Edge{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
	if _, err := New("bad", -1, nil); err == nil {
		t.Error("negative n accepted")
	}
	g, err := New("ok", 3, []Edge{{2, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Canonical order: (0,1) then (0,2).
	if g.Edge(0) != (Edge{0, 1}) || g.Edge(1) != (Edge{0, 2}) {
		t.Errorf("edges not sorted: %v", g.Edges())
	}
}

func TestLine(t *testing.T) {
	g := Line(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("line(5): n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Error("line not connected")
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("line(5) diameter = %d, want 4", d)
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Error("line degrees wrong")
	}
	if Line(1).M() != 0 || Line(0).N() != 0 {
		t.Error("tiny lines wrong")
	}
}

func TestRing(t *testing.T) {
	g := Ring(6)
	if g.M() != 6 {
		t.Errorf("ring(6) m = %d", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("ring degree(%d) = %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 3 {
		t.Errorf("ring(6) diameter = %d, want 3", d)
	}
	if Ring(2).M() != 1 {
		t.Error("ring(2) should degrade to line")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.M() != 10 {
		t.Errorf("K5 m = %d", g.M())
	}
	if d := g.Diameter(); d != 1 {
		t.Errorf("K5 diameter = %d", d)
	}
}

func TestStarAndGrid(t *testing.T) {
	s := Star(5)
	if s.M() != 4 || s.Degree(0) != 4 || s.Degree(3) != 1 {
		t.Errorf("star(5) wrong: m=%d", s.M())
	}
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Errorf("grid n = %d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Errorf("grid(3,4) m = %d, want 17", g.M())
	}
	if d := g.Diameter(); d != 5 {
		t.Errorf("grid(3,4) diameter = %d, want 5", d)
	}
}

func TestEdgeID(t *testing.T) {
	g := Ring(5)
	for i, e := range g.Edges() {
		id, ok := g.EdgeID(e.B, e.A) // reversed on purpose
		if !ok || id != i {
			t.Errorf("EdgeID(%v) = %d,%v want %d", e, id, ok, i)
		}
	}
	if _, ok := g.EdgeID(0, 2); ok {
		t.Error("phantom edge found")
	}
}

func TestNeighbors(t *testing.T) {
	g := Star(4)
	nb := g.Neighbors(0)
	if len(nb) != 3 {
		t.Fatalf("hub neighbors = %v", nb)
	}
	leaf := g.Neighbors(2)
	if len(leaf) != 1 || leaf[0] != 0 {
		t.Errorf("leaf neighbors = %v", leaf)
	}
}

func TestComponentsAllUp(t *testing.T) {
	g := Line(4)
	comps := g.Components(bitset.Set{}, bitset.Set{})
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Errorf("components = %v", comps)
	}
}

func TestComponentsEdgeMask(t *testing.T) {
	g := Line(4) // edges: 0-1, 1-2, 2-3
	mask := []bool{true, false, true}
	comps := g.Components(bitset.FromBools(mask), bitset.Set{})
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if comps[0][0] != 0 || comps[0][1] != 1 || comps[1][0] != 2 || comps[1][1] != 3 {
		t.Errorf("components = %v", comps)
	}
}

func TestComponentsAgentDown(t *testing.T) {
	g := Line(3) // 0-1, 1-2
	agentUp := []bool{true, false, true}
	comps := g.Components(bitset.Set{}, bitset.FromBools(agentUp))
	// Agent 1 down: all three are singletons (down agents form their own
	// groups; edges through them are unusable).
	if len(comps) != 3 {
		t.Errorf("components = %v", comps)
	}
}

func TestComponentsDeterministicOrder(t *testing.T) {
	g := Complete(6)
	mask := make([]bool, g.M())
	// Enable only 4—5.
	id, _ := g.EdgeID(4, 5)
	mask[id] = true
	comps := g.Components(bitset.FromBools(mask), bitset.Set{})
	if len(comps) != 5 {
		t.Fatalf("components = %v", comps)
	}
	for i := 0; i < 4; i++ {
		if len(comps[i]) != 1 || comps[i][0] != i {
			t.Errorf("component %d = %v", i, comps[i])
		}
	}
	last := comps[4]
	if len(last) != 2 || last[0] != 4 || last[1] != 5 {
		t.Errorf("merged component = %v", last)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g, err := New("two islands", 4, []Edge{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if d := g.Diameter(); d != -1 {
		t.Errorf("diameter = %d, want -1", d)
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(20, 0, rng)
	if g.M() != 0 {
		t.Error("G(n,0) has edges")
	}
	g = ErdosRenyi(20, 1, rng)
	if g.M() != 190 {
		t.Errorf("G(20,1) m = %d", g.M())
	}
}

func TestConnectedErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := ConnectedErdosRenyi(15, 0.05, rng) // sparse: forces fallback sometimes
		if !g.Connected() {
			t.Fatalf("trial %d: not connected", trial)
		}
	}
}

func TestRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pos := GeometricPositions(25, rng)
	if len(pos) != 25 {
		t.Fatal("positions count")
	}
	g1 := RandomGeometric(pos, 0.0)
	if g1.M() != 0 {
		t.Error("r=0 graph has edges")
	}
	g2 := RandomGeometric(pos, 2.0) // unit square: everything within √2
	if g2.M() != 300 {
		t.Errorf("r=2 graph m = %d, want 300", g2.M())
	}
	// Monotonicity in r.
	ga := RandomGeometric(pos, 0.2)
	gb := RandomGeometric(pos, 0.4)
	if ga.M() > gb.M() {
		t.Error("edge count not monotone in radius")
	}
}

func TestEdgesReturnsCopy(t *testing.T) {
	g := Line(3)
	es := g.Edges()
	es[0] = Edge{9, 9}
	if g.Edge(0) == (Edge{9, 9}) {
		t.Error("Edges aliases internal storage")
	}
}

// Property: the components under any mask partition the vertex set.
func TestPropComponentsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(2+r.Intn(12), 0.4, r)
		mask := make([]bool, g.M())
		for i := range mask {
			mask[i] = rng.Float64() < 0.5
		}
		agentUp := make([]bool, g.N())
		for i := range agentUp {
			agentUp[i] = rng.Float64() < 0.8
		}
		comps := g.Components(bitset.FromBools(mask), bitset.FromBools(agentUp))
		seen := make(map[int]bool)
		for _, comp := range comps {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: enabling more edges never increases the number of components.
func TestPropComponentsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		g := ErdosRenyi(3+rng.Intn(10), 0.5, rng)
		mask := make([]bool, g.M())
		for i := range mask {
			mask[i] = rng.Float64() < 0.3
		}
		before := len(g.Components(bitset.FromBools(mask), bitset.Set{}))
		// Enable one more edge (if any disabled).
		for i := range mask {
			if !mask[i] {
				mask[i] = true
				break
			}
		}
		after := len(g.Components(bitset.FromBools(mask), bitset.Set{}))
		if after > before {
			t.Fatalf("trial %d: components grew %d -> %d", trial, before, after)
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(3)
	if g.N() != 8 || g.M() != 12 {
		t.Fatalf("Q3: n=%d m=%d, want 8/12", g.N(), g.M())
	}
	for v := 0; v < 8; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 3 {
		t.Errorf("Q3 diameter = %d, want 3", d)
	}
	if g0 := Hypercube(0); g0.N() != 1 || g0.M() != 0 {
		t.Error("Q0 wrong")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus: n=%d m=%d, want 20/40", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Error("torus disconnected")
	}
	// Degenerate small torus: duplicate wrap edges must collapse.
	g2 := Torus(2, 2)
	if g2.N() != 4 || !g2.Connected() {
		t.Errorf("2x2 torus wrong: m=%d", g2.M())
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(7)
	if g.M() != 6 || !g.Connected() {
		t.Fatalf("btree(7): m=%d", g.M())
	}
	if g.Degree(0) != 2 {
		t.Errorf("root degree = %d", g.Degree(0))
	}
	// Leaves have degree 1.
	for v := 3; v < 7; v++ {
		if g.Degree(v) != 1 {
			t.Errorf("leaf %d degree = %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("btree(7) diameter = %d, want 4", d)
	}
	if BinaryTree(1).M() != 0 {
		t.Error("single-node tree has edges")
	}
}

// TestPartitionEdgesTiles: every edge id lands in exactly one interior
// list or the boundary list, interior endpoints share a block, boundary
// endpoints do not, and all lists stay ascending.
func TestPartitionEdgesTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		g := ErdosRenyi(1+rng.Intn(24), 0.4, rng)
		blocks := 1 + rng.Intn(6)
		p := g.PartitionEdges(blocks)
		if p.Blocks < 1 || (g.N() > 0 && p.Blocks > g.N()) {
			t.Fatalf("blocks=%d clamped to %d for n=%d", blocks, p.Blocks, g.N())
		}
		seen := make([]int, g.M())
		ascending := func(ids []int) bool {
			for i := 1; i < len(ids); i++ {
				if ids[i-1] >= ids[i] {
					return false
				}
			}
			return true
		}
		for b, ids := range p.Interior {
			if !ascending(ids) {
				t.Fatalf("interior[%d] not ascending: %v", b, ids)
			}
			for _, id := range ids {
				seen[id]++
				e := g.Edge(id)
				if p.Block(e.A) != b || p.Block(e.B) != b {
					t.Fatalf("edge %v listed interior to block %d (blocks %d/%d)",
						e, b, p.Block(e.A), p.Block(e.B))
				}
			}
		}
		if !ascending(p.Boundary) {
			t.Fatalf("boundary not ascending: %v", p.Boundary)
		}
		for _, id := range p.Boundary {
			seen[id]++
			e := g.Edge(id)
			if p.Block(e.A) == p.Block(e.B) {
				t.Fatalf("edge %v listed boundary but both endpoints in block %d", e, p.Block(e.A))
			}
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("edge %d classified %d times", id, c)
			}
		}
	}
}

// TestPartitionEdgesSingleBlock: blocks=1 (and any value ≤ 1) makes every
// edge interior — the serial special case of the sharded matcher.
func TestPartitionEdgesSingleBlock(t *testing.T) {
	g := Complete(9)
	for _, blocks := range []int{1, 0, -3} {
		p := g.PartitionEdges(blocks)
		if p.Blocks != 1 || len(p.Boundary) != 0 || len(p.Interior[0]) != g.M() {
			t.Fatalf("blocks=%d: got %d blocks, %d boundary, %d interior",
				blocks, p.Blocks, len(p.Boundary), len(p.Interior[0]))
		}
	}
	// And more blocks than agents clamps.
	if p := g.PartitionEdges(100); p.Blocks != 9 {
		t.Fatalf("overclamped blocks = %d", p.Blocks)
	}
}
