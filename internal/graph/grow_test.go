package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bitset"
)

// liveEdges returns the live (non-retired) edge set in canonical sorted
// order — the topology a grown graph denotes, independent of the
// append-only id history that produced it.
func liveEdges(g *Graph) []Edge {
	var out []Edge
	for id := 0; id < g.M(); id++ {
		if !g.EdgeRetired(id) {
			out = append(out, g.Edge(id))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// neighborSets returns every vertex's sorted neighbor list.
func neighborSets(g *Graph) [][]int {
	out := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(v)
		sort.Ints(ns)
		out[v] = ns
	}
	return out
}

// checkSameTopology asserts that grown and fresh denote the same
// topology: identical live edge sets, adjacency, components, and
// id-resolution behavior — even though their edge-id histories differ.
func checkSameTopology(t *testing.T, grown, fresh *Graph) {
	t.Helper()
	if grown.N() != fresh.N() {
		t.Fatalf("N: grown %d, fresh %d", grown.N(), fresh.N())
	}
	if grown.LiveM() != fresh.LiveM() {
		t.Fatalf("LiveM: grown %d, fresh %d", grown.LiveM(), fresh.LiveM())
	}
	ge, fe := liveEdges(grown), liveEdges(fresh)
	if !reflect.DeepEqual(ge, fe) {
		t.Fatalf("live edge sets differ\n grown: %v\n fresh: %v", ge, fe)
	}
	if !reflect.DeepEqual(neighborSets(grown), neighborSets(fresh)) {
		t.Fatal("adjacency neighbor sets differ")
	}
	if got, want := grown.Components(bitset.Set{}, bitset.Set{}), fresh.Components(bitset.Set{}, bitset.Set{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("components differ\n grown: %v\n fresh: %v", got, want)
	}
	// Every live edge resolves by endpoints in both graphs; every retired
	// id resolves in neither.
	for _, e := range ge {
		if _, ok := grown.EdgeID(e.A, e.B); !ok {
			t.Fatalf("grown graph cannot resolve live edge %v", e)
		}
		if _, ok := fresh.EdgeID(e.A, e.B); !ok {
			t.Fatalf("fresh graph cannot resolve live edge %v", e)
		}
	}
	for id := 0; id < grown.M(); id++ {
		if grown.EdgeRetired(id) {
			e := grown.Edge(id)
			if got, ok := grown.EdgeID(e.A, e.B); ok && grown.Edge(got) == e && grown.EdgeRetired(got) {
				t.Fatalf("EdgeID resolved retired id %d", got)
			}
		}
	}
}

// checkPartitionCoverage asserts the partition invariant on a possibly
// grown graph: every LIVE edge id appears exactly once across the
// Interior lists and the boundary Pairs, interior edges have both
// endpoints in their block, and the level schedule covers every pair
// once with no block repeated inside a level.
func checkPartitionCoverage(t *testing.T, g *Graph, blocks int) {
	t.Helper()
	p := g.PartitionEdges(blocks)
	seen := make(map[int]int)
	for b, ids := range p.Interior {
		for _, id := range ids {
			seen[id]++
			e := g.Edge(id)
			if p.Block(e.A) != b || p.Block(e.B) != b {
				t.Fatalf("blocks=%d: interior edge %d (%v) listed in block %d", blocks, id, e, b)
			}
		}
	}
	for _, pr := range p.Pairs {
		for _, id := range pr.Edges {
			seen[id]++
			e := g.Edge(id)
			ba, bb := p.Block(e.A), p.Block(e.B)
			if ba > bb {
				ba, bb = bb, ba
			}
			if ba != pr.BI || bb != pr.BJ {
				t.Fatalf("blocks=%d: boundary edge %d (%v) in pair (%d,%d), endpoints in (%d,%d)", blocks, id, e, pr.BI, pr.BJ, ba, bb)
			}
		}
	}
	for id := 0; id < g.M(); id++ {
		if g.EdgeRetired(id) {
			continue
		}
		if seen[id] != 1 {
			t.Fatalf("blocks=%d: live edge %d appears %d times in the partition", blocks, id, seen[id])
		}
	}
	// Retired ids may linger in founding Interior/Boundary lists (masks
	// skip them); they must not be double counted.
	covered := make(map[int]bool)
	for lvl, idxs := range p.Levels {
		used := make(map[int]bool)
		for _, k := range idxs {
			if covered[k] {
				t.Fatalf("blocks=%d: pair %d scheduled twice", blocks, k)
			}
			covered[k] = true
			pr := p.Pairs[k]
			if used[pr.BI] || used[pr.BJ] {
				t.Fatalf("blocks=%d: level %d reuses a block for pair (%d,%d)", blocks, lvl, pr.BI, pr.BJ)
			}
			used[pr.BI], used[pr.BJ] = true, true
		}
	}
	if len(covered) != len(p.Pairs) {
		t.Fatalf("blocks=%d: level schedule covers %d of %d pairs", blocks, len(covered), len(p.Pairs))
	}
}

// TestSpliceRingMatchesFreshRing: splicing k agents into Ring(n) denotes
// exactly Ring(n+k).
func TestSpliceRingMatchesFreshRing(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{3, 1}, {8, 4}, {16, 1}, {5, 7}} {
		g := Ring(tc.n)
		gr, err := g.SpliceRing(tc.k)
		if err != nil {
			t.Fatalf("SpliceRing(%d) on Ring(%d): %v", tc.k, tc.n, err)
		}
		if gr.FirstAgent != tc.n || gr.NewAgents != tc.k {
			t.Fatalf("growth record %+v, want FirstAgent=%d NewAgents=%d", gr, tc.n, tc.k)
		}
		if len(gr.RetiredEdgeIDs) != 1 {
			t.Fatalf("ring splice retired %d edges, want 1 (the closing edge)", len(gr.RetiredEdgeIDs))
		}
		checkSameTopology(t, g, Ring(tc.n+tc.k))
		for _, b := range []int{1, 2, 3} {
			checkPartitionCoverage(t, g, b)
		}
	}
}

// TestGrowHypercubeMatchesFreshHypercube: filling the next dimension of
// Hypercube(d) vertex by vertex denotes exactly Hypercube(d+1) once full
// (and a valid intermediate graph at every partial fill).
func TestGrowHypercubeMatchesFreshHypercube(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		n := 1 << uint(d)
		g := Hypercube(d)
		if _, err := g.GrowHypercube(n); err != nil {
			t.Fatalf("GrowHypercube(%d) on Hypercube(%d): %v", n, d, err)
		}
		checkSameTopology(t, g, Hypercube(d+1))
		checkPartitionCoverage(t, g, 2)

		// Partial fill: grow one vertex at a time; every step stays
		// consistent and the end state still matches the fresh cube.
		h := Hypercube(d)
		for i := 0; i < n; i++ {
			if _, err := h.GrowHypercube(1); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			checkPartitionCoverage(t, h, 3)
		}
		checkSameTopology(t, h, Hypercube(d+1))
	}
}

// TestAttachPreferentialMatchesFreshBuild: a preferentially grown graph
// denotes the same topology as a from-scratch graph constructed over its
// final live edge set, and the partition invariant holds throughout.
func TestAttachPreferentialMatchesFreshBuild(t *testing.T) {
	g := Complete(6)
	rng := rand.New(rand.NewSource(42))
	gr, err := g.AttachPreferential(5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if gr.NewAgents != 5 || len(gr.NewEdgeIDs) != 10 || len(gr.RetiredEdgeIDs) != 0 {
		t.Fatalf("growth record %+v, want 5 agents x 2 links, nothing retired", gr)
	}
	fresh, err := New("fresh", g.N(), liveEdges(g))
	if err != nil {
		t.Fatal(err)
	}
	checkSameTopology(t, g, fresh)
	for _, b := range []int{1, 2, 4} {
		checkPartitionCoverage(t, g, b)
	}

	// Same seed, same draws: the attachment is a pure function of
	// (graph, k, m, rng state).
	g2 := Complete(6)
	if _, err := g2.AttachPreferential(5, 2, rand.New(rand.NewSource(42))); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(liveEdges(g), liveEdges(g2)) {
		t.Fatal("same-seed preferential attachments diverged")
	}
}

// TestPartitionExtendMatchesFreshBuild is the incremental-index half of
// the attachment contract: a partition cached BEFORE growth and extended
// in place by the growth op must equal — field for field, order for
// order — a partition built from scratch AFTER the same growth. This is
// what keeps warm matchers (which alias the partition's id lists) valid
// across joins.
func TestPartitionExtendMatchesFreshBuild(t *testing.T) {
	grow := []func(g *Graph) error{
		func(g *Graph) error { _, err := g.SpliceRing(3); return err },
		func(g *Graph) error { _, err := g.SpliceRing(2); return err },
	}
	for _, blocks := range []int{1, 2, 3, 4} {
		a, b := Ring(12), Ring(12)
		pa := a.PartitionEdges(blocks) // cached pre-growth, extended in place
		for i, op := range grow {
			if err := op(a); err != nil {
				t.Fatalf("blocks=%d op %d: %v", blocks, i, err)
			}
			if err := op(b); err != nil {
				t.Fatalf("blocks=%d op %d: %v", blocks, i, err)
			}
		}
		pb := b.PartitionEdges(blocks) // built fresh post-growth
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("blocks=%d: extended partition differs from fresh build\n ext:   %+v\n fresh: %+v", blocks, pa, pb)
		}
	}
}

// TestCloneIsolation: growth on a clone leaves the original untouched,
// and the clone reproduces the original's topology exactly.
func TestCloneIsolation(t *testing.T) {
	g := Ring(10)
	wantN, wantM := g.N(), g.M()
	wantEdges := liveEdges(g)
	c := g.Clone()
	checkSameTopology(t, c, g)
	if _, err := c.SpliceRing(4); err != nil {
		t.Fatal(err)
	}
	if g.N() != wantN || g.M() != wantM || g.Gen() != 0 {
		t.Fatalf("growing the clone mutated the original: N=%d M=%d gen=%d", g.N(), g.M(), g.Gen())
	}
	if !reflect.DeepEqual(liveEdges(g), wantEdges) {
		t.Fatal("original edge set changed")
	}
	checkSameTopology(t, c, Ring(14))
}
