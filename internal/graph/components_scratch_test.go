package graph

import (
	"math/rand"
	"reflect"
	"repro/internal/bitset"
	"testing"
)

// TestComponentsIntoMatchesComponents cross-checks the scratch-reusing
// partition against the allocating reference on random graphs and masks,
// reusing ONE scratch across every query — the engine's per-round usage.
func TestComponentsIntoMatchesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var cs ComponentScratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		g := ConnectedErdosRenyi(n, 0.3, rng)
		edgeUp := make([]bool, g.M())
		agentUp := make([]bool, g.N())
		for i := range edgeUp {
			edgeUp[i] = rng.Float64() < 0.6
		}
		for i := range agentUp {
			agentUp[i] = rng.Float64() < 0.8
		}
		for _, masks := range []struct{ e, a []bool }{
			{edgeUp, agentUp}, {nil, agentUp}, {edgeUp, nil}, {nil, nil},
		} {
			eb, ab := bitset.FromBools(masks.e), bitset.FromBools(masks.a)
			want := g.Components(eb, ab)
			got := g.ComponentsInto(eb, ab, &cs)
			// Compare as [][]int values (got aliases scratch, so compare
			// before the next query, which invalidates it).
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d components, want %d", trial, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("trial %d component %d: %v, want %v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestComponentsEmptyGraph(t *testing.T) {
	g, err := New("empty", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Components(bitset.Set{}, bitset.Set{}); len(got) != 0 {
		t.Fatalf("empty graph components = %v", got)
	}
	var cs ComponentScratch
	if got := g.ComponentsInto(bitset.Set{}, bitset.Set{}, &cs); len(got) != 0 {
		t.Fatalf("empty graph ComponentsInto = %v", got)
	}
}
