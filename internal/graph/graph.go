// Package graph provides the communication graphs (A, E) over which the
// paper's environment assumptions are stated.
//
// §4 of the paper defines the environment-assumption sets Q in terms of a
// graph whose vertices are agents and whose edges are communication links:
// Q_e means "edge e exists and is available for communication", and
// Q_E = {Q_e | e ∈ E}. Different problems need different graphs — any
// connected graph for minimum and convex hull, a complete graph for sum,
// a linear graph (in index order) for sorting — so this package supplies
// the standard families plus connectivity machinery (connected components
// under an enabled-edge mask) that turns an environment state into the
// partition π of agents into communicating groups.
package graph

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/bitset"
)

// Edge is an undirected communication link between two agents, identified
// by their indices. Invariant: A < B.
type Edge struct {
	A, B int
}

// NewEdge returns the canonical form of the edge {a, b}.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// String renders the edge as "a—b".
func (e Edge) String() string { return fmt.Sprintf("%d—%d", e.A, e.B) }

// Graph is an undirected graph over agents 0..N-1 with a fixed edge list.
// Edge indices (positions in Edges) identify edges in enabled-edge masks.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]int // adjacency as edge indices, per vertex (flat backing)
	name  string

	// Growth state (see grow.go). Edge ids are append-only and stable:
	// sortedM is the length of the canonically sorted prefix EdgeID can
	// binary-search (edges appended by growth land on the tail), retired
	// marks ids removed from the live topology (never reused), gen
	// counts growth operations so index structures built over the graph
	// can detect staleness cheaply, and baseN is the founding population —
	// the N the graph was constructed with, which block sizing is keyed to
	// so partitions computed before and after growth agree.
	gen          int
	baseN        int
	sortedM      int
	retired      bitset.Set
	retiredCount int

	// Edge partitions are pure functions of (edge set, blocks), so they are
	// computed once per block count and cached on the graph. Graphs are
	// shared across sweep workers; the mutex makes the cache safe there.
	// Growth extends every cached partition in place (grow.go), so the
	// shared pointers stay valid.
	partMu sync.Mutex
	parts  map[int]*EdgePartition
}

// New builds a graph over n vertices with the given edges. Duplicate and
// self-loop edges are rejected. Edges are stored in canonical sorted order
// so edge indices are deterministic for a given edge set.
func New(name string, n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	canon := make([]Edge, 0, len(edges))
	for _, e := range edges {
		e = NewEdge(e.A, e.B)
		switch {
		case e.A == e.B:
			return nil, fmt.Errorf("graph: self-loop at %d", e.A)
		case e.A < 0 || e.B >= n:
			return nil, fmt.Errorf("graph: edge %v out of range [0,%d)", e, n)
		}
		canon = append(canon, e)
	}
	// Duplicate detection by sort + adjacent compare rather than a map: the
	// map was the dominant construction cost (and allocation) at 10⁷ edges.
	less := func(i, j int) bool {
		if canon[i].A != canon[j].A {
			return canon[i].A < canon[j].A
		}
		return canon[i].B < canon[j].B
	}
	if !sort.SliceIsSorted(canon, less) {
		sort.Slice(canon, less)
	}
	for i := 1; i < len(canon); i++ {
		if canon[i] == canon[i-1] {
			return nil, fmt.Errorf("graph: duplicate edge %v", canon[i])
		}
	}
	g := &Graph{n: n, edges: canon, name: name, baseN: n, sortedM: len(canon)}
	// Counted two-pass adjacency build over one flat backing array.
	deg := make([]int, n+1)
	for _, e := range canon {
		deg[e.A+1]++
		deg[e.B+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	flat := make([]int, 2*len(canon))
	g.adj = make([][]int, n)
	for v := 0; v < n; v++ {
		g.adj[v] = flat[deg[v]:deg[v]:deg[v+1]]
	}
	for idx, e := range canon {
		g.adj[e.A] = append(g.adj[e.A], idx)
		g.adj[e.B] = append(g.adj[e.B], idx)
	}
	return g, nil
}

// mustNew is used by the standard-family constructors, whose edge lists are
// correct by construction.
func mustNew(name string, n int, edges []Edge) *Graph {
	g, err := New(name, n, edges)
	if err != nil {
		panic("graph: internal construction error: " + err.Error())
	}
	return g
}

// Name returns the descriptive name of the graph family instance.
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices (agents).
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns a copy of the edge list; index i in the returned slice is
// the edge id used by enabled masks.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgesView returns the graph's edge list without copying. The returned
// slice is shared and MUST NOT be modified; use it for read-only scans
// where the O(E) copy of Edges would dominate (delta index rebuilds,
// per-round mask derivations).
func (g *Graph) EdgesView() []Edge { return g.edges }

// IncidentEdgeIDs returns the ids of the edges incident to v, ascending.
// The returned slice is shared and MUST NOT be modified; it is the
// primitive the usable-edge delta index uses to re-examine exactly the
// edges an agent flip can affect.
func (g *Graph) IncidentEdgeIDs(v int) []int { return g.adj[v] }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// EdgeID returns the id of the live edge {a,b} and whether it exists.
// The founding prefix of the edge list is canonically sorted and binary
// searched; edges appended by growth live on the (short) unsorted tail
// and are scanned linearly. Retired edges do not exist.
func (g *Graph) EdgeID(a, b int) (int, bool) {
	e := NewEdge(a, b)
	i := sort.Search(g.sortedM, func(i int) bool {
		if g.edges[i].A != e.A {
			return g.edges[i].A >= e.A
		}
		return g.edges[i].B >= e.B
	})
	if i < g.sortedM && g.edges[i] == e && !g.EdgeRetired(i) {
		return i, true
	}
	for id := g.sortedM; id < len(g.edges); id++ {
		if g.edges[id] == e && !g.EdgeRetired(id) {
			return id, true
		}
	}
	return -1, false
}

// Neighbors returns the vertices adjacent to v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for _, eid := range g.adj[v] {
		e := g.edges[eid]
		if e.A == v {
			out = append(out, e.B)
		} else {
			out = append(out, e.A)
		}
	}
	return out
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Components returns the partition of agents into connected components of
// the subgraph induced by enabled edges and up agents. This is exactly the
// paper's partition π: each component is a group B of agents that can
// execute a collaborative algorithm; down agents form singleton groups
// that are marked disabled (they "execute no actions and do not change
// state").
//
// edgeUp may be the zero Set (all edges enabled); agentUp may be the zero
// Set (all agents up). An edge is usable only when both endpoints are up.
// Each component's member list is sorted; components are ordered by their
// smallest member, so output is deterministic.
func (g *Graph) Components(edgeUp, agentUp bitset.Set) [][]int {
	return g.ComponentsInto(edgeUp, agentUp, &ComponentScratch{})
}

// ComponentScratch holds the reusable buffers of ComponentsInto so an
// engine can derive the partition π every round without allocating. The
// zero value is ready to use; buffers grow on first use and are retained.
type ComponentScratch struct {
	parent  []int
	compOf  []int // root vertex -> component index, -1 when unassigned
	offsets []int
	fill    []int
	members []int   // flat member storage, segmented by offsets
	comps   [][]int // slice headers into members
}

// ComponentsInto is Components with caller-owned scratch: the returned
// partition (and every member slice in it) aliases cs and is valid only
// until the next call with the same scratch. Output is identical to
// Components: members sorted ascending, components ordered by smallest
// member.
func (g *Graph) ComponentsInto(edgeUp, agentUp bitset.Set, cs *ComponentScratch) [][]int {
	n := g.n
	if n == 0 {
		return [][]int{}
	}
	if cap(cs.parent) < n {
		cs.parent = make([]int, n)
		cs.compOf = make([]int, n)
		cs.fill = make([]int, n)
		cs.members = make([]int, n)
		cs.offsets = make([]int, n+1)
	}
	parent := cs.parent[:n]
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	allAgents := agentUp.IsZero()
	union := func(e Edge) {
		if allAgents || (agentUp.Get(e.A) && agentUp.Get(e.B)) {
			ra, rb := find(e.A), find(e.B)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	if edgeUp.IsZero() {
		if g.retiredCount == 0 {
			for _, e := range g.edges {
				union(e)
			}
		} else {
			for id, e := range g.edges {
				if g.retired.Get(id) {
					continue
				}
				union(e)
			}
		}
	} else {
		// Word-skip scan: a fully-down region costs one word test per 64
		// edges, so the union pass is O(up edges + E/64) instead of O(E).
		// Retired edges are skipped even when the mask still carries their
		// bit — environments are not required to clear retired ids.
		for wi, w := range edgeUp.Words() {
			base := wi << 6
			for w != 0 {
				id := base + mathbits.TrailingZeros64(w)
				w &= w - 1
				if g.retiredCount != 0 && g.retired.Get(id) {
					continue
				}
				union(g.edges[id])
			}
		}
	}
	// Pass 1 (ascending): number components in order of first-seen vertex —
	// which is each component's smallest member — and count sizes.
	compOf := cs.compOf[:n]
	fill := cs.fill[:n]
	for i := range compOf {
		compOf[i] = -1
		fill[i] = 0
	}
	numComps := 0
	for v := 0; v < n; v++ {
		r := find(v)
		if compOf[r] < 0 {
			compOf[r] = numComps
			numComps++
		}
		fill[compOf[r]]++
	}
	offsets := cs.offsets[:numComps+1]
	offsets[0] = 0
	for c := 0; c < numComps; c++ {
		offsets[c+1] = offsets[c] + fill[c]
		fill[c] = 0
	}
	// Pass 2 (ascending): fill members, sorted within each component.
	members := cs.members[:n]
	for v := 0; v < n; v++ {
		c := compOf[find(v)]
		members[offsets[c]+fill[c]] = v
		fill[c]++
	}
	if cap(cs.comps) < numComps {
		cs.comps = make([][]int, numComps)
	}
	comps := cs.comps[:numComps]
	for c := 0; c < numComps; c++ {
		comps[c] = members[offsets[c]:offsets[c+1]:offsets[c+1]]
	}
	return comps
}

// EdgePartition is the edge-side view of a contiguous agent blocking: the
// agents 0..N-1 are split into Blocks blocks of BlockSize consecutive
// indices (the same blocking rule engine.Shards uses for state), and every
// edge is classified as either *interior* to the block holding both of its
// endpoints or as a *boundary* edge between two blocks. It is the static
// index a partitioned per-round algorithm (the sharded pairwise matcher)
// needs: interior edges of distinct blocks never share an endpoint, so
// per-block passes over Interior are embarrassingly parallel, while the
// Boundary list is the part that needs cross-block reconciliation.
type EdgePartition struct {
	// Blocks is the number of agent blocks (≥ 1).
	Blocks int
	// BlockSize is the number of consecutive agent indices per block
	// (the last block may be shorter).
	BlockSize int
	// Interior[b] lists, in ascending order, the ids of edges whose two
	// endpoints both lie in block b.
	Interior [][]int
	// Boundary lists, in ascending order, the ids of edges whose
	// endpoints lie in distinct blocks.
	Boundary []int
	// Pairs groups the boundary edges by their (ordered) block pair,
	// sorted by (BI, BJ). Every boundary edge appears in exactly one pair.
	Pairs []BoundaryPair
	// Levels is a deterministic schedule for reconciling boundary pairs
	// in parallel: each entry lists indices into Pairs, and within one
	// level no two pairs share a block — so the pairs of a level can
	// claim matches concurrently without touching the same agents. The
	// schedule is a greedy edge coloring of the block-pair multigraph,
	// a pure function of (edge set, blocks): it never depends on worker
	// count, masks, or seeds, which is what keeps parallel reconciliation
	// bit-identical across GOMAXPROCS and pool sizes.
	Levels [][]int
}

// BoundaryPair is the set of boundary edges between one pair of blocks.
type BoundaryPair struct {
	BI, BJ int   // owning blocks, BI < BJ
	Edges  []int // ascending edge ids with one endpoint in each block
}

// Block returns the block owning the given agent index. Agents appended
// by population growth (indices at or beyond Blocks·BlockSize) clamp to
// the last block — the "grow the last shard" rule; rebalancing happens
// only when an explicit epoch rebuilds the partition.
func (p *EdgePartition) Block(agent int) int {
	if b := agent / p.BlockSize; b < p.Blocks {
		return b
	}
	return p.Blocks - 1
}

// PartitionEdges returns the EdgePartition of the graph's edge set for the
// given number of contiguous agent blocks (clamped to [1, baseN] where
// baseN is the founding population). Every edge id appears in exactly one
// of the Interior lists or in Boundary, and with blocks == 1 every edge is
// interior.
//
// The result is computed once per block count and cached on the graph
// (partitions depend only on the edge history), so warm matcher rebuilds
// and repeated sweep cells skip the O(E) split. The returned partition is
// shared — callers must treat it as read-only. Block sizing is keyed to
// the founding population and growth-appended edges are applied as an
// ordered tail on top of the founding build, so a partition computed
// fresh after growth is identical — field for field, order for order — to
// one built before growth and extended incrementally.
func (g *Graph) PartitionEdges(blocks int) *EdgePartition {
	n := g.baseN
	if blocks < 1 {
		blocks = 1
	}
	if blocks > n && n > 0 {
		blocks = n
	}
	g.partMu.Lock()
	defer g.partMu.Unlock()
	if p, ok := g.parts[blocks]; ok {
		return p
	}
	bs := 1
	if n > 0 {
		bs = (n + blocks - 1) / blocks
	}
	p := &EdgePartition{Blocks: blocks, BlockSize: bs, Interior: make([][]int, blocks)}
	// Founding prefix: canonically sorted, every endpoint within baseN.
	for id, e := range g.edges[:g.sortedM] {
		ba, bb := e.A/bs, e.B/bs
		if ba == bb {
			p.Interior[ba] = append(p.Interior[ba], id)
		} else {
			p.Boundary = append(p.Boundary, id)
		}
	}
	g.buildPairSchedule(p)
	// Growth tail: replay appended edges in id order through the same
	// extension path incremental growth uses, so fresh and extended
	// builds coincide exactly.
	for id := g.sortedM; id < len(g.edges); id++ {
		g.extendPartitionLocked(p, id)
	}
	if g.sortedM < len(g.edges) {
		colorPairs(p)
	}
	if g.parts == nil {
		g.parts = make(map[int]*EdgePartition)
	}
	g.parts[blocks] = p
	return p
}

// buildPairSchedule groups p.Boundary by block pair and colors the pair
// multigraph greedily: pairs are visited in ascending (BI, BJ) order and
// each takes the smallest level not already holding either of its blocks.
// By Vizing-style greedy bounds the level count is at most 2·Δ−1 where Δ
// is the largest number of partner blocks any block has.
func (g *Graph) buildPairSchedule(p *EdgePartition) {
	if len(p.Boundary) == 0 {
		return
	}
	bs := p.BlockSize
	type key struct{ bi, bj int }
	groups := make(map[key]int, 16) // pair -> index in p.Pairs
	for _, id := range p.Boundary {
		e := g.edges[id]
		k := key{e.A / bs, e.B / bs}
		pi, ok := groups[k]
		if !ok {
			pi = len(p.Pairs)
			groups[k] = pi
			p.Pairs = append(p.Pairs, BoundaryPair{BI: k.bi, BJ: k.bj})
		}
		p.Pairs[pi].Edges = append(p.Pairs[pi].Edges, id)
	}
	sort.Slice(p.Pairs, func(i, j int) bool {
		if p.Pairs[i].BI != p.Pairs[j].BI {
			return p.Pairs[i].BI < p.Pairs[j].BI
		}
		return p.Pairs[i].BJ < p.Pairs[j].BJ
	})
	colorPairs(p)
}

// colorPairs (re)derives p.Levels by greedy coloring over the stored pair
// order: each pair takes the smallest level not already holding either of
// its blocks. The coloring is a pure deterministic function of the pair
// sequence, and because it is greedy in order, appending pairs at the end
// of p.Pairs and recoloring reproduces the existing prefix's levels
// exactly — which is what lets population growth extend a partition
// without disturbing the schedule already compiled into warm matchers.
func colorPairs(p *EdgePartition) {
	p.Levels = nil
	blockLevels := make([][]bool, p.Blocks) // blockLevels[b][l]: block b busy at level l
	free := func(b, l int) bool {
		return l >= len(blockLevels[b]) || !blockLevels[b][l]
	}
	occupy := func(b, l int) {
		for len(blockLevels[b]) <= l {
			blockLevels[b] = append(blockLevels[b], false)
		}
		blockLevels[b][l] = true
	}
	for pi := range p.Pairs {
		bi, bj := p.Pairs[pi].BI, p.Pairs[pi].BJ
		l := 0
		for !free(bi, l) || !free(bj, l) {
			l++
		}
		occupy(bi, l)
		occupy(bj, l)
		for len(p.Levels) <= l {
			p.Levels = append(p.Levels, nil)
		}
		p.Levels[l] = append(p.Levels[l], pi)
	}
}

// Connected reports whether the graph (with all edges enabled) is a single
// connected component. The empty graph is connected vacuously; a graph
// with no edges and ≥2 vertices is not.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	return len(g.Components(bitset.Set{}, bitset.Set{})) == 1
}

// Diameter returns the maximum over vertices of shortest-path hop distance,
// or -1 if the graph is disconnected.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return 0
	}
	worst := 0
	dist := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for src := 0; src < g.n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = queue[:0]
		queue = append(queue, src)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for _, d := range dist {
			if d == -1 {
				return -1
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// --- Standard families (§4 uses line, complete, and "any connected") ---

// Line returns the linear graph 0—1—2—…—(n−1): the paper's environment
// assumption for sorting (§4.4), where each agent communicates with the
// positions to the left and right of its index.
func Line(n int) *Graph {
	edges := make([]Edge, 0, maxInt(0, n-1))
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return mustNew(fmt.Sprintf("line(%d)", n), n, edges)
}

// Ring returns the cycle graph over n vertices (n ≥ 3 for a proper cycle;
// smaller n degrade to line).
func Ring(n int) *Graph {
	if n < 3 {
		g := Line(n)
		g.name = fmt.Sprintf("ring(%d)", n)
		return g
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, NewEdge(i, (i+1)%n))
	}
	return mustNew(fmt.Sprintf("ring(%d)", n), n, edges)
}

// Complete returns K_n: the paper's required assumption for the sum
// problem (§4.2), where any two agents must be able to communicate
// infinitely often.
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	return mustNew(fmt.Sprintf("complete(%d)", n), n, edges)
}

// Star returns the star graph with vertex 0 as hub.
func Star(n int) *Graph {
	edges := make([]Edge, 0, maxInt(0, n-1))
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, i})
	}
	return mustNew(fmt.Sprintf("star(%d)", n), n, edges)
}

// Grid returns the rows×cols 4-neighbour mesh.
func Grid(rows, cols int) *Graph {
	n := rows * cols
	edges := make([]Edge, 0, 2*n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	return mustNew(fmt.Sprintf("grid(%dx%d)", rows, cols), n, edges)
}

// ErdosRenyi returns G(n, p) with edges drawn independently with
// probability p from the given source. It does not guarantee connectivity;
// callers that need a connected instance should use ConnectedErdosRenyi.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	edges := make([]Edge, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{i, j})
			}
		}
	}
	return mustNew(fmt.Sprintf("gnp(%d,%.2f)", n, p), n, edges)
}

// ConnectedErdosRenyi draws G(n, p) instances until one is connected
// (retrying with the same source), up to a bounded number of attempts, and
// falls back to adding a random spanning path when unlucky. The result is
// always connected.
func ConnectedErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	for attempt := 0; attempt < 64; attempt++ {
		g := ErdosRenyi(n, p, rng)
		if g.Connected() {
			return g
		}
	}
	// Fall back: overlay a random Hamiltonian path to force connectivity.
	perm := rng.Perm(n)
	g := ErdosRenyi(n, p, rng)
	edges := g.Edges()
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		seen[e] = true
	}
	for i := 0; i+1 < n; i++ {
		e := NewEdge(perm[i], perm[i+1])
		if !seen[e] {
			edges = append(edges, e)
			seen[e] = true
		}
	}
	return mustNew(fmt.Sprintf("gnp+path(%d,%.2f)", n, p), n, edges)
}

// GeometricPositions places n points uniformly in the unit square.
func GeometricPositions(n int, rng *rand.Rand) [][2]float64 {
	pos := make([][2]float64, n)
	for i := range pos {
		pos[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	return pos
}

// RandomGeometric returns the random geometric graph over the given
// positions with connection radius r: vertices are adjacent when their
// Euclidean distance is at most r. This is the natural model for the
// paper's motivating mobile/wireless agents (§1.1).
func RandomGeometric(pos [][2]float64, r float64) *Graph {
	n := len(pos)
	edges := make([]Edge, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := pos[i][0] - pos[j][0]
			dy := pos[i][1] - pos[j][1]
			if math.Hypot(dx, dy) <= r {
				edges = append(edges, Edge{i, j})
			}
		}
	}
	return mustNew(fmt.Sprintf("rgg(%d,r=%.2f)", n, r), n, edges)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Hypercube returns the d-dimensional hypercube over 2^d vertices:
// vertices are adjacent when their indices differ in exactly one bit. A
// classic low-diameter, low-degree interconnect for scalability
// experiments.
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	edges := make([]Edge, 0, d*n/2)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				edges = append(edges, Edge{v, u})
			}
		}
	}
	return mustNew(fmt.Sprintf("hypercube(%d)", d), n, edges)
}

// Torus returns the rows×cols wraparound mesh (each vertex has degree 4
// for rows, cols ≥ 3).
func Torus(rows, cols int) *Graph {
	n := rows * cols
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	seen := make(map[Edge]bool, 2*n)
	edges := make([]Edge, 0, 2*n)
	add := func(a, b int) {
		if a == b {
			return
		}
		e := NewEdge(a, b)
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			add(id(r, c), id(r, c+1))
			add(id(r, c), id(r+1, c))
		}
	}
	return mustNew(fmt.Sprintf("torus(%dx%d)", rows, cols), n, edges)
}

// BinaryTree returns the complete binary tree over n vertices (vertex 0
// as root; vertex v's children are 2v+1 and 2v+2). Trees are the worst
// case for churn: every edge is a cut edge.
func BinaryTree(n int) *Graph {
	edges := make([]Edge, 0, maxInt(0, n-1))
	for v := 1; v < n; v++ {
		edges = append(edges, NewEdge(v, (v-1)/2))
	}
	return mustNew(fmt.Sprintf("btree(%d)", n), n, edges)
}
