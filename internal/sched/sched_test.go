package sched

import (
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/graph"
	ms "repro/internal/multiset"
	"repro/internal/obs"
	"repro/internal/problems"
	"repro/internal/runtime"
)

func topts() Options {
	return Options{Seed: 1, Timeout: 20 * time.Second}
}

func TestSchedMin(t *testing.T) {
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := Run[int](problems.NewMin(), g, vals, topts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final=%v after %d ops", res.Final, res.Ops)
	}
	for _, v := range res.Final {
		if v != 1 {
			t.Errorf("final = %v", res.Final)
		}
	}
	if res.ProperSteps == 0 {
		t.Error("no proper steps recorded")
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not stamped")
	}
	if res.ProperStepsPerSec() <= 0 {
		t.Error("ProperStepsPerSec not derivable")
	}
}

func TestSchedSumConservesTotal(t *testing.T) {
	// Sum over the complete graph: the paper's §4.2 assumption. The final
	// multiset must be exactly {total, 0, …, 0} — conservation at
	// quiescence despite transiently inconsistent views.
	g := graph.Complete(6)
	vals := []int{3, 1, 5, 2, 7, 4} // total 22
	res, err := Run[int](problems.NewSum(), g, vals, topts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sum did not converge: %v", res.Final)
	}
	if !ms.OfInts(res.Final...).Equal(ms.OfInts(22, 0, 0, 0, 0, 0)) {
		t.Errorf("final = %v, want {22,0,0,0,0,0}", res.Final)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
}

func TestSchedMatchesGoroutineRuntimeVerdicts(t *testing.T) {
	// The two async engines realize the same protocol; on the same inputs
	// both must converge to the same multiset (schedules differ, results
	// may not).
	g := graph.Hypercube(4)
	vals := make([]int, g.N())
	for i := range vals {
		vals[i] = (i*7)%31 + 1
	}
	want := 1 // min of vals is at i with (i*7)%31==0 → value 1
	res, err := Run[int](problems.NewMin(), g, vals, topts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sched did not converge: %v", res.Final)
	}
	for _, v := range res.Final {
		if v != want {
			t.Fatalf("sched final = %v, want all %d", res.Final, want)
		}
	}
	rres, err := runtime.Run[int](problems.NewMin(), g, vals, runtime.Options{Seed: 1, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rres.Converged {
		t.Fatalf("goroutine runtime did not converge: %v", rres.Final)
	}
	if !ms.OfInts(res.Final...).Equal(ms.OfInts(rres.Final...)) {
		t.Errorf("engines disagree: sched %v vs goroutine %v", res.Final, rres.Final)
	}
}

// resultKey is the deterministic skeleton of a Result: everything except
// wall-clock Elapsed.
type resultKey struct {
	converged                     bool
	ops, proper, rejections, lost int
	steals, checks                int
	final                         string
}

func key(t *testing.T, res *runtime.Result[int]) resultKey {
	t.Helper()
	fin := ""
	for _, v := range res.Final {
		fin += string(rune('A' + v%26)) // cheap canonical encoding for ints
	}
	return resultKey{
		converged: res.Converged, ops: res.Ops, proper: res.ProperSteps,
		rejections: res.Rejections, lost: res.Lost, steals: res.Steals,
		checks: res.QuiescenceChecks, final: fin,
	}
}

// TestSchedGoldenSingleWorker pins the determinism contract: with
// Workers=1 the whole run is a pure function of the seed — byte-stable
// across repetitions, across steal settings (no second shard to steal
// from), and across probe attachment. This is the sched analogue of the
// goroutine runtime's GOMAXPROCS(1) golden.
func TestSchedGoldenSingleWorker(t *testing.T) {
	g := graph.Ring(12)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5, 11, 3, 10, 12}
	run := func(noSteal bool, probe *obs.Probe) resultKey {
		o := topts()
		o.Workers = 1
		o.NoSteal = noSteal
		o.Probe = probe
		res, err := Run[int](problems.NewMin(), g, append([]int(nil), vals...), o)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("1-worker run did not converge: %v", res.Final)
		}
		return key(t, res)
	}

	base := run(false, nil)
	// The golden: pinned values, not just self-consistency. If a change
	// moves these on purpose (protocol or seeding change), re-pin and say
	// so in the commit.
	if base.ops != 129 || base.proper != 11 || base.final != "BBBBBBBBBBBB" {
		t.Errorf("1-worker golden moved: ops=%d proper=%d final=%q (expected ops=129 proper=11 final=BBBBBBBBBBBB)",
			base.ops, base.proper, base.final)
	}
	if again := run(false, nil); again != base {
		t.Errorf("1-worker run not reproducible: %+v vs %+v", again, base)
	}
	if noSteal := run(true, nil); noSteal != base {
		t.Errorf("NoSteal changed a 1-worker run: %+v vs %+v", noSteal, base)
	}
	probe := obs.NewProbe(obs.Config{})
	if probed := run(false, probe); probed != base {
		t.Errorf("attaching a probe changed a 1-worker run: %+v vs %+v", probed, base)
	}
	rep := probe.Report()
	if rep.Counters[obs.CounterSchedEnqueues] == 0 {
		t.Error("probe recorded no sched enqueues")
	}
}

// TestSchedStealNoLostWakeup is the sched analogue of the PR 2 sleep-poll
// bugfix test: with many workers racing over a tiny agent population,
// the last runnable agent is routinely stolen from a shard whose worker
// is about to sleep. The run must terminate by op budget or convergence
// — never by the wall-clock safety net — across many seeds.
func TestSchedStealNoLostWakeup(t *testing.T) {
	g := graph.Ring(8)
	for seed := int64(0); seed < 30; seed++ {
		vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
		o := Options{
			Seed:    seed,
			Workers: 8, // one agent per shard: every exchange crosses shards
			Timeout: 20 * time.Second,
			MaxOps:  5000,
		}
		start := time.Now()
		res, err := Run[int](problems.NewMin(), g, vals, o)
		if err != nil {
			t.Fatal(err)
		}
		if el := time.Since(start); el > 10*time.Second {
			t.Fatalf("seed %d: run took %v — wall-clock timeout path, a wakeup was lost", seed, el)
		}
		if !res.Converged && res.Ops < o.MaxOps {
			t.Fatalf("seed %d: stopped early without converging: ops=%d final=%v", seed, res.Ops, res.Final)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge within %d ops: %v", seed, o.MaxOps, res.Final)
		}
	}
}

func TestSchedStealsHappen(t *testing.T) {
	// Sanity for the steal path itself: some run in this configuration
	// must actually record steals (if none ever occur the lost-wakeup
	// test above is vacuous).
	total := 0
	for seed := int64(0); seed < 10; seed++ {
		n := 64
		g := graph.Ring(n)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = n - i
		}
		o := Options{Seed: seed, Workers: 4, Timeout: 20 * time.Second}
		res, err := Run[int](problems.NewMin(), g, vals, o)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Steals
	}
	if total == 0 {
		t.Skip("no steals observed in 10 seeds (scheduler kept every shard busy); steal path not exercised on this machine")
	}
}

func TestSchedFaults(t *testing.T) {
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	o := topts()
	o.Faults = &dynamics.Faults{LossP: 0.3, DelayMax: 80 * time.Microsecond}
	o.Seed = 5
	res, err := Run[int](problems.NewMin(), g, vals, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge under loss+delay: %v (ops=%d lost=%d)", res.Final, res.Ops, res.Lost)
	}
	if res.Lost == 0 {
		t.Error("LossP=0.3 lost no messages")
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations under faults: %v", res.Violations)
	}
}

func TestSchedIslandsTerminateByBudget(t *testing.T) {
	// Two disconnected islands: the global multiset can never reach the
	// whole-system target, so the run must wind down on its op budget —
	// quickly, via the drained-system detector, not the wall-clock net.
	g, err := graph.New("islands", 8, []graph.Edge{{A: 0, B: 1}, {A: 2, B: 3}})
	if err != nil {
		t.Fatal(err)
	}
	vals := []int{5, 3, 9, 1, 8, 8, 8, 8}
	o := topts()
	o.MaxOps = 400
	start := time.Now()
	res, err := Run[int](problems.NewMin(), g, vals, o)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("island run waited out the wall-clock timeout")
	}
	if res.Converged {
		t.Error("disconnected system reported global convergence")
	}
	if res.Ops > o.MaxOps {
		t.Errorf("ops %d exceeded budget %d", res.Ops, o.MaxOps)
	}
	// Each island must still have converged locally (self-similarity).
	if res.Final[0] != 3 || res.Final[1] != 3 {
		t.Errorf("island {0,1} did not settle to 3: %v", res.Final[:2])
	}
	if res.Final[2] != 1 || res.Final[3] != 1 {
		t.Errorf("island {2,3} did not settle to 1: %v", res.Final[2:4])
	}
}

func TestSchedValidation(t *testing.T) {
	g := graph.Ring(4)
	if _, err := Run[int](problems.NewMin(), g, []int{1, 2}, topts()); err == nil {
		t.Error("accepted wrong initial length")
	}
	if _, err := Run[int](problems.NewMin(), graph.Line(0), nil, topts()); err == nil {
		t.Error("accepted empty system")
	}
	o := topts()
	o.Faults = &dynamics.Faults{LossP: 1.5}
	if _, err := Run[int](problems.NewMin(), g, []int{1, 2, 3, 4}, o); err == nil {
		t.Error("accepted invalid faults")
	}
	// A join scheduled past the op budget can never be admitted.
	o = topts()
	o.Dynamics = dynamics.NewSchedule(dynamics.Join(1, "ring", 100))
	o.OpsPerEpoch = 10
	o.MaxOps = 50
	if _, err := Run[int](problems.NewMin(), g, []int{1, 2, 3, 4, 5}, o); err == nil {
		t.Error("accepted a join epoch beyond MaxOps")
	}
}

func TestSchedAlreadyConverged(t *testing.T) {
	g := graph.Ring(3)
	res, err := Run[int](problems.NewMin(), g, []int{2, 2, 2}, topts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Ops != 0 {
		t.Errorf("already-converged start: converged=%v ops=%d", res.Converged, res.Ops)
	}
}

func TestSchedLargeHypercube(t *testing.T) {
	// The acceptance cell: 10⁵-agent min over a hypercube converges with
	// zero violations in CI-feasible time. 2^17 = 131072 agents.
	if testing.Short() {
		t.Skip("large cell skipped in -short")
	}
	g := graph.Hypercube(17)
	n := g.N()
	vals := make([]int, n)
	for i := range vals {
		vals[i] = 2 + (i*2654435761)%100000
	}
	vals[n/3] = 1 // unique global minimum
	o := Options{Seed: 3, Timeout: 120 * time.Second, MaxOps: 60 * n}
	start := time.Now()
	res, err := Run[int](problems.NewMin(), g, vals, o)
	if err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	if !res.Converged {
		t.Fatalf("10⁵-agent hypercube did not converge: ops=%d proper=%d", res.Ops, res.ProperSteps)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations at 10⁵ agents: %v", res.Violations)
	}
	for i, v := range res.Final {
		if v != 1 {
			t.Fatalf("agent %d settled at %d, want 1", i, v)
		}
	}
	t.Logf("n=%d converged in %v: ops=%d proper=%d steals=%d checks=%d (%.0f proper/s)",
		n, el, res.Ops, res.ProperSteps, res.Steals, res.QuiescenceChecks, res.ProperStepsPerSec())
}
