package sched

// Message kinds of the push-pull/busy-guard protocol, unchanged from the
// goroutine runtime: a request carries the initiator's state to the
// partner; an OK reply carries the initiator's half of the PairStep back;
// a busy reply carries no state and rejects the exchange.
type msgKind uint8

const (
	msgRequest msgKind = iota
	msgReplyOK
	msgReplyBusy
)

// message is one protocol message. Messages live in the per-shard mailbox
// slab — never on the heap — so an exchange allocates nothing.
type message[T any] struct {
	from  int32
	kind  msgKind
	state T
}

// ring is one agent's mailbox: a fixed-capacity power-of-two ring of slab
// slots. The protocol bounds occupancy by construction — at most one
// request per live neighbour plus one in-flight reply — so the capacity
// (next power of two ≥ degree+2) can never be exceeded on a correct run;
// overflow is an invariant breach and panics. head and tail are monotonic
// (length = tail − head); off is the ring's base slot in its home shard's
// slab. All pushes and pops happen under the home shard's lock.
type ring struct {
	off        int32
	mask       uint32
	head, tail uint32
}

// pushMsg appends m to the ring backed by slab (a free function rather
// than a method because ring is deliberately not generic: one flat []ring
// indexed by agent id, one slab per shard). Caller holds the home shard's
// lock.
//
//det:hotpath
func pushMsg[T any](r *ring, slab []message[T], m message[T]) {
	if r.tail-r.head > r.mask {
		panic("sched: mailbox overflow (protocol invariant breach: more than degree+2 messages in flight to one agent)")
	}
	slab[uint32(r.off)+(r.tail&r.mask)] = m
	r.tail++
}

// popMsg removes and returns the oldest message, reporting false on an
// empty ring. Caller holds the home shard's lock.
//
//det:hotpath
func popMsg[T any](r *ring, slab []message[T]) (message[T], bool) {
	if r.head == r.tail {
		var zero message[T]
		return zero, false
	}
	m := slab[uint32(r.off)+(r.head&r.mask)]
	r.head++
	return m, true
}

// ringCap returns the power-of-two mailbox capacity for an agent of the
// given degree: the protocol bound (one request per neighbour, one reply)
// plus slack rounded up so the index mask is a single AND.
func ringCap(degree int) uint32 {
	need := uint32(degree + 2)
	c := uint32(1)
	for c < need {
		c <<= 1
	}
	return c
}
