// Package sched is the scale realization of the paper's §4.5 remark: the
// same asynchronous push-pull/busy-guard exchange protocol as
// internal/runtime, executed by a sharded event-loop actor scheduler
// instead of one goroutine per agent, so 10⁵–10⁶ agents cost P worker
// goroutines and zero per-exchange allocations.
//
// Architecture:
//
//   - N agents are split into P contiguous blocks (the engine.Shards
//     block-sizing convention; joiners home on the LAST shard). Each
//     shard owns its agents' mailboxes — fixed-capacity message rings
//     carved from one per-shard slab, no per-exchange channel or heap
//     allocation — plus a FIFO run queue and a deferred min-heap, and is
//     drained by one worker goroutine. Workers whose queue runs dry
//     steal runnable agents from other shards (one agent per steal, so
//     every scheduling-flag mutation happens under the agent's home
//     shard lock).
//
//   - Time is virtual: the global initiation counter. The goroutine
//     runtime parks a busy-rejected agent on a timer; here the same AIMD
//     controller (runtime.AIMD — multiplicative increase on rejection,
//     additive decrease on success, rejection-rate-scaled ceiling) is
//     ADMISSION CONTROL: the rejected agent is pushed on its home
//     deferred heap with a deadline in virtual ticks and the worker moves
//     on. A worker with no due or queued work fast-forwards its earliest
//     deferral rather than sleeping, so deadlines shape interleaving
//     without ever costing wall-clock and a run on a dead-quiet system
//     terminates immediately.
//
//   - The protocol and its semantic contract are unchanged: requests
//     carry the initiator's state; a partner that is not itself awaiting
//     a reply computes PairStep, adopts its half and replies with the
//     other (the pair transition is atomic at the partner); an awaiting
//     or crashed partner replies busy; the initiator admits no other
//     exchange while its half is in flight (its mailbox drains to busy
//     replies), so every completed exchange is exactly a D-step.
//     Conservation and variant descent are asserted at quiescence via the
//     shared engine.Monitor, against authoritative states gathered after
//     every worker has stopped.
//
//   - Determinism keys on stable agent identity, never on workers or
//     scheduling: every event that draws randomness (an initiation, a
//     served request, a busy-reply jitter) reseeds the worker's FastRand
//     with engine.SubSeed(engine.AgentSeed(seed, agent), eventIndex) —
//     O(1) reseeds, no per-agent generator state beyond a counter. With
//     Workers=1 the whole run — pops, steals (none), deferrals,
//     convergence checks — is a pure function of the seed, which is the
//     semantic pin: the 1-worker golden plays the same role GOMAXPROCS(1)
//     plays for the goroutine runtime, and it is byte-stable across steal
//     settings because stealing cannot occur with one shard.
//
//   - Dynamics run at EPOCH SAFEPOINTS: every OpsPerEpoch initiations the
//     crossing worker requests a stop-the-world pause, all workers park
//     at a barrier, and the requester applies one dynamics "round" —
//     graph growth (Join), crash/wake with amnesiac resets, and the
//     partition/burst edge-mask overlay, reusing dynamics.Applier
//     verbatim — then resumes the fleet. A crash landing on an agent
//     whose exchange half is in flight is DEFERRED until the reply is
//     adopted, so the pair transition is never torn by a fault.
//
// Divergence from the goroutine runtime, by design: link availability is
// a per-initiation Bernoulli draw on the initiator's stream rather than a
// globally refreshed link table (an O(E) refresh every 16 initiations
// does not scale to 10⁶ edges), and a system with no runnable agent —
// islands, everyone crashed, budget drained — terminates immediately
// instead of waiting out the wall-clock timeout.
package sched

import (
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
	ms "repro/internal/multiset"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Options configures a sharded-scheduler run. The zero value of every
// field selects a sensible default.
type Options struct {
	// Seed drives every random draw (neighbour selection, link and fault
	// draws, backoff jitter), keyed per agent identity.
	Seed int64
	// Workers is the number of shards and worker goroutines (default
	// GOMAXPROCS, clamped to the agent count). Workers=1 is the
	// deterministic replay configuration the golden test pins.
	Workers int
	// LinkUpProbability is the chance an initiation finds its link up
	// (1.0 = static network). Drawn per initiation on the initiator's
	// stream — see the package comment for the divergence note.
	LinkUpProbability float64
	// MaxOps bounds initiated exchanges (default max(1e6, 100·N)).
	MaxOps int
	// Timeout bounds wall-clock time (default 30s). Virtual time makes
	// this a safety net, not a scheduling instrument.
	Timeout time.Duration
	// Faults injects message loss and delivery delay at the exchange
	// layer (dynamics.Faults), on the initiator's stream. Delays are in
	// virtual ticks derived from DelayMax at 1µs/tick.
	Faults *dynamics.Faults
	// Dynamics scripts crash/wake, partition/burst windows, joins, and
	// amnesiac rejoins, applied at epoch safepoints (one schedule "round"
	// per OpsPerEpoch initiations). When it schedules joins, initial must
	// hold founding+joiner states (the sim convention).
	Dynamics *dynamics.Schedule
	// OpsPerEpoch is the epoch length in initiations (default N): the
	// sched analogue of a round for Dynamics schedules.
	OpsPerEpoch int
	// NoSteal disables work stealing (a worker then only drains its own
	// shard). Scheduling policy only: with Workers=1 results are
	// byte-identical either way, which the golden pins.
	NoSteal bool
	// CheckEvery rate-limits quiescence checks: the board is re-examined
	// only after at least CheckEvery initiations since the last check
	// (default max(64, N/2)), and only when some agent adopted since.
	// Checks stay event-driven and op-bounded — at most one per adoption —
	// but a 10⁵-agent run does not pay an O(N log N) snapshot per event.
	CheckEvery int
	// Probe records the exchange lifecycle and the scheduler's own
	// counters (enqueues, queue-depth samples, steals, admissions, parks)
	// on the observability layer. Counters only; never consulted for
	// scheduling, so attaching one leaves the 1-worker golden
	// byte-identical.
	Probe *obs.Probe
}

// Run executes problem p over graph g from the given initial states on
// the sharded event-loop scheduler until the observed state multiset
// equals the (possibly join-extended) target or a budget is exhausted.
// It returns the same Result type as the goroutine runtime so the two
// async engines are directly comparable.
func Run[T any](p core.Problem[T], g *graph.Graph, initial []T, opts Options) (*runtime.Result[T], error) {
	clk := obs.NewWallClock()
	start := clk.Now()

	n := g.N()
	if n == 0 {
		return nil, errors.New("sched: empty system")
	}
	joiners := 0
	if opts.Dynamics != nil {
		joiners = opts.Dynamics.TotalJoiners()
	}
	if len(initial) != n+joiners {
		if joiners > 0 {
			return nil, fmt.Errorf("sched: %d initial states for %d founding agents + %d scheduled joiners", len(initial), n, joiners)
		}
		return nil, fmt.Errorf("sched: %d initial states for %d agents", len(initial), n)
	}
	if opts.Workers <= 0 {
		opts.Workers = stdruntime.GOMAXPROCS(0)
	}
	if opts.Workers > n {
		opts.Workers = n
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = 1_000_000
		if m := 100 * n; m > opts.MaxOps {
			opts.MaxOps = m
		}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.LinkUpProbability <= 0 {
		opts.LinkUpProbability = 1
	}
	if opts.OpsPerEpoch <= 0 {
		opts.OpsPerEpoch = n
	}
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = n / 2
		if opts.CheckEvery < 64 {
			opts.CheckEvery = 64
		}
	}
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
	}
	if opts.Dynamics != nil {
		if last := opts.Dynamics.LastJoinRound(); last >= 0 && last*opts.OpsPerEpoch >= opts.MaxOps {
			return nil, fmt.Errorf("sched: MaxOps %d cannot reach join epoch %d of a schedule with horizon %d (OpsPerEpoch %d); raise MaxOps or lower OpsPerEpoch",
				opts.MaxOps, last, opts.Dynamics.Horizon(), opts.OpsPerEpoch)
		}
	}

	cmp := p.Cmp()
	initialM := ms.New(cmp, initial[:n]...)
	mon := engine.NewMonitor(p, initialM, 0)
	conv := engine.NewConvergence(p.Equal, mon.Target())
	res := &runtime.Result[T]{Target: mon.Target()}
	if opts.Dynamics == nil && conv.Observe(0, initialM) {
		res.Converged = true
		res.Final = append([]T(nil), initial...)
		res.Elapsed = time.Duration(clk.Now() - start)
		return res, nil
	}

	r := &run[T]{
		p:        p,
		g:        g,
		cmp:      cmp,
		opts:     opts,
		mon:      mon,
		conv:     conv,
		initVals: initial,
	}
	r.setup(n)

	if opts.Dynamics != nil {
		r.ap = opts.Dynamics.NewApplier(g, opts.Seed)
		// Epoch 0 fires before any exchange, like sim's round 0.
		r.applyEpoch(0)
	}

	timer := time.AfterFunc(opts.Timeout, r.halt)
	defer timer.Stop()

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(w)
		}(w)
	}
	wg.Wait()

	res.Final = r.states
	res.Ops = int(r.ops.Load())
	res.ProperSteps = int(r.properSteps.Load())
	res.Rejections = int(r.rejections.Load())
	res.Lost = int(r.lost.Load())
	res.Steals = int(r.steals.Load())
	res.QuiescenceChecks = int(r.checks.Load())
	res.Target = mon.Target()
	finalM := ms.New(cmp, r.states...)
	res.Converged = conv.Observe(res.Ops, finalM)
	mon.ObserveQuiescence(finalM)
	if r.ap != nil {
		// Frozen-state conservation: agents crashed at quiescence must
		// hold exactly the state recorded when they froze.
		frozen := make([]int, 0, 8)
		for a := range r.states {
			if r.crashed[a] {
				frozen = append(frozen, a)
			}
		}
		mon.CheckFrozen(int(r.ops.Load())/opts.OpsPerEpoch, cmp, frozen, r.frozenVals, r.states)
		rep := r.ap.Report()
		res.Dynamics = &rep
	}
	res.Violations = mon.Violations()
	res.Elapsed = time.Duration(clk.Now() - start)
	return res, nil
}

// boardSlot is one agent's cell on the observation board: the last state
// it adopted, posted after every adoption and snapshot by the quiescence
// check. A flat slice (not pointers) keeps the board to one allocation.
type boardSlot[T any] struct {
	mu sync.Mutex
	v  T
}

// nbEntry is one CSR neighbour record: the peer agent and the connecting
// edge id (for the dynamics edge-mask check).
type nbEntry struct {
	agent int32
	edge  int32
}

// run is one execution's complete state.
type run[T any] struct {
	p    core.Problem[T]
	g    *graph.Graph
	cmp  func(a, b T) int
	opts Options

	mon  *engine.Monitor[T]
	conv *engine.Convergence[T]
	ap   *dynamics.Applier

	shards    []shard[T]
	blockSize int // founding block size: agent a homes on shard min(a/blockSize, P-1)

	// Agent arrays, indexed by id. Scheduling flags live in flags under
	// the home shard lock; everything else is owned by the worker
	// currently processing the agent (ownership transfers through the
	// queue locks) or by the safepoint requester (all workers parked).
	states       []T
	initVals     []T // founding + joiners, the amnesiac reset source
	frozenVals   []T
	flags        []uint8
	seedBase     []int64
	eventSeq     []uint32
	awaiting     []bool
	crashed      []bool
	pendingCrash []bool
	sendTo       []int32 // delayed request's target (-1 = none)
	sendDue      []int64
	actDue       []int64 // admission deadline in virtual ticks
	backoff      []runtime.AIMD
	rings        []ring

	// CSR neighbour lists, rebuilt at join safepoints.
	nbrOff []int32
	nbrs   []nbEntry

	// es holds the dynamics edge/agent mask overlay for the current
	// epoch; written only at safepoints, read by workers.
	es env.State

	// Virtual time and budget: ops is the global initiation counter and
	// vnow the virtual clock. vnow advances with ops AND with
	// fast-forwarded deferrals — without the latter, a moment where every
	// agent is deferred (a busy storm, an all-delayed epoch) would freeze
	// the clock the deferrals are waiting on: nobody initiates, ops never
	// moves, the system spins until the wall-clock net. vnow ≥ ops always.
	ops         atomic.Int64
	vnow        atomic.Int64
	budgetOut   atomic.Bool
	nextEpochAt atomic.Int64
	epoch       int // next epoch to apply; safepoint-requester-owned

	// runnable counts agents that are queued, deferred, or running; the
	// transition to zero means nothing can ever happen again.
	runnable atomic.Int64

	properSteps atomic.Int64
	rejections  atomic.Int64
	lost        atomic.Int64
	steals      atomic.Int64
	checks      atomic.Int64

	// Observation board and quiescence-check state.
	board        []boardSlot[T]
	adoptions    atomic.Int64
	checkedAdopt atomic.Int64 // adoptions count consumed by the last check
	lastCheckOps atomic.Int64
	checkMu      sync.Mutex
	viewBuf      []T

	// Stop machinery and the safepoint barrier.
	stop     atomic.Bool
	sp       safepoint
	sleepers atomic.Int64
}

// safepoint is the stop-the-world barrier dynamics epochs run under.
type safepoint struct {
	mu         sync.Mutex
	cond       *sync.Cond
	want       atomic.Bool
	conducting bool // a worker is already conducting this safepoint
	parked     int
	exited     int
}

// setup builds every run structure for the founding population.
func (r *run[T]) setup(n int) {
	P := r.opts.Workers
	r.blockSize = (n + P - 1) / P
	r.shards = make([]shard[T], P)
	r.states = append([]T(nil), r.initVals[:n]...)
	r.frozenVals = make([]T, n)
	r.flags = make([]uint8, n)
	r.seedBase = make([]int64, n)
	r.eventSeq = make([]uint32, n)
	r.awaiting = make([]bool, n)
	r.crashed = make([]bool, n)
	r.pendingCrash = make([]bool, n)
	r.sendTo = make([]int32, n)
	r.sendDue = make([]int64, n)
	r.actDue = make([]int64, n)
	r.backoff = make([]runtime.AIMD, n)
	r.board = make([]boardSlot[T], n)
	r.viewBuf = make([]T, 0, n)
	for a := 0; a < n; a++ {
		r.seedBase[a] = engine.AgentSeed(r.opts.Seed, a)
		r.sendTo[a] = -1
		r.board[a].v = r.states[a]
	}
	r.buildCSR()
	for s := range r.shards {
		sh := &r.shards[s]
		sh.lo = s * r.blockSize
		sh.hi = sh.lo + r.blockSize
		if sh.lo > n {
			sh.lo = n
		}
		if sh.hi > n || s == len(r.shards)-1 {
			sh.hi = n
		}
		sh.wake = make(chan struct{}, 1)
	}
	r.buildMailboxes()
	r.sp.cond = sync.NewCond(&r.sp.mu)
	r.nextEpochAt.Store(int64(r.opts.OpsPerEpoch))
	// Seed the adoption cursor one behind so the first rate-limit window
	// always produces a check even if no agent ever adopts (an initial
	// state already at the target under a dynamics schedule).
	r.checkedAdopt.Store(-1)

	// Every agent starts runnable, enqueued on its home shard in id
	// order.
	r.runnable.Store(int64(n))
	for s := range r.shards {
		sh := &r.shards[s]
		if c := pow2(sh.hi - sh.lo); c > 0 {
			sh.runq = make([]int32, c)
		}
		for a := sh.lo; a < sh.hi; a++ {
			r.flags[a] = flagQueued
			sh.rqPush(int32(a))
		}
		if cap(sh.deferred) == 0 {
			sh.deferred = make([]deferEntry, 0, sh.hi-sh.lo+1)
		}
	}
}

// buildCSR (re)builds the flat neighbour lists from the graph, skipping
// retired edges. O(N+E); called at setup and join safepoints.
func (r *run[T]) buildCSR() {
	n := r.g.N()
	if cap(r.nbrOff) < n+1 {
		r.nbrOff = make([]int32, n+1)
	}
	r.nbrOff = r.nbrOff[:n+1]
	for i := range r.nbrOff {
		r.nbrOff[i] = 0
	}
	edges := r.g.EdgesView()
	live := 0
	for id := range edges {
		if r.g.EdgeRetired(id) {
			continue
		}
		r.nbrOff[edges[id].A+1]++
		r.nbrOff[edges[id].B+1]++
		live++
	}
	for i := 1; i <= n; i++ {
		r.nbrOff[i] += r.nbrOff[i-1]
	}
	if cap(r.nbrs) < 2*live {
		r.nbrs = make([]nbEntry, 2*live)
	}
	r.nbrs = r.nbrs[:2*live]
	fill := make([]int32, n)
	for id := range edges {
		if r.g.EdgeRetired(id) {
			continue
		}
		e := edges[id]
		r.nbrs[r.nbrOff[e.A]+fill[e.A]] = nbEntry{agent: int32(e.B), edge: int32(id)}
		fill[e.A]++
		r.nbrs[r.nbrOff[e.B]+fill[e.B]] = nbEntry{agent: int32(e.A), edge: int32(id)}
		fill[e.B]++
	}
}

// buildMailboxes (re)builds every shard's mailbox slab and every agent's
// ring, preserving pending messages. O(N+E); setup and join safepoints
// only.
func (r *run[T]) buildMailboxes() {
	n := r.g.N()
	oldRings := r.rings
	newRings := make([]ring, n)
	for s := range r.shards {
		sh := &r.shards[s]
		total := int32(0)
		for a := sh.lo; a < sh.hi; a++ {
			deg := int(r.nbrOff[a+1] - r.nbrOff[a])
			if a < len(oldRings) {
				// A rebuild may shrink an agent's degree (retired edges)
				// below its pending backlog; size for both.
				if pending := int(oldRings[a].tail - oldRings[a].head); pending > deg {
					deg = pending
				}
			}
			c := ringCap(deg)
			newRings[a] = ring{off: total, mask: c - 1}
			total += int32(c)
		}
		fresh := make([]message[T], total)
		if oldRings != nil {
			for a := sh.lo; a < sh.hi && a < len(oldRings); a++ {
				or := &oldRings[a]
				for {
					m, ok := popMsg(or, sh.slab)
					if !ok {
						break
					}
					pushMsg(&newRings[a], fresh, m)
				}
			}
		}
		sh.slab = fresh
	}
	r.rings = newRings
}

// home returns the agent's home shard index: contiguous blocks of the
// founding block size, with every overflow id (joiners) homed on the
// last shard — the engine.Shards append convention.
//
//det:hotpath
func (r *run[T]) home(a int32) *shard[T] {
	s := int(a) / r.blockSize
	if s >= len(r.shards) {
		s = len(r.shards) - 1
	}
	return &r.shards[s]
}

// halt stops the run: all sleepers wake, barrier waiters recheck, and
// every worker exits at its next loop top.
func (r *run[T]) halt() {
	r.stop.Store(true)
	for s := range r.shards {
		sh := &r.shards[s]
		sh.mu.Lock()
		wake := sh.sleeping
		sh.sleeping = false
		sh.mu.Unlock()
		if wake {
			select {
			case sh.wake <- struct{}{}:
			default:
			}
		}
	}
	r.sp.mu.Lock()
	r.sp.cond.Broadcast()
	r.sp.mu.Unlock()
}

// post publishes agent a's newly adopted state on the observation board.
//
//det:hotpath
func (r *run[T]) post(a int32, v T) {
	sl := &r.board[a]
	sl.mu.Lock()
	sl.v = v
	sl.mu.Unlock()
	r.adoptions.Add(1)
}

// advance moves the virtual clock forward to at least tick (monotonic
// CAS-max; concurrent advances commute).
//
//det:hotpath
func (r *run[T]) advance(tick int64) {
	for {
		cur := r.vnow.Load()
		if tick <= cur || r.vnow.CompareAndSwap(cur, tick) {
			return
		}
	}
}

// pow2 rounds n up to a power of two (minimum 8).
func pow2(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}
