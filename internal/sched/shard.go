package sched

import "sync"

// Agent scheduling flags, protected by the agent's HOME shard lock. An
// agent's home shard never changes (joiners home on the last shard, the
// engine.Shards append convention), so there is exactly one lock per
// agent's scheduling state and stealing cannot race it: a thief locks the
// victim shard — the home of every agent in the victim's queue — for the
// pop, and ownership of the agent's non-scheduling state (value, stream
// epoch, backoff controller) transfers through that critical section.
const (
	// flagQueued: the agent sits in its home run queue.
	flagQueued uint8 = 1 << iota
	// flagDeferred: the agent has an entry in its home deferred heap.
	flagDeferred
	// flagRunning: a worker is processing the agent right now.
	flagRunning
	// flagRepoll: a message arrived while the agent was running; the
	// finishing worker must requeue it so the message is served.
	flagRepoll
)

// deferEntry is one admission-control deferral: agent may not act before
// virtual time due (the global initiation counter). Ordered by (due,
// agent) so the single-worker drain order is a pure function of the seed.
type deferEntry struct {
	due   int64
	agent int32
}

// shard owns a contiguous agent block [lo, hi): their mailboxes (one slab,
// one ring each), their run-queue membership, and their deferred heap. One
// worker goroutine drains it; idle workers steal from other shards'
// queues.
type shard[T any] struct {
	mu sync.Mutex

	lo, hi int // agent block (hi grows when joiners home here)

	// runq is a FIFO ring deque of agent ids (head/tail indices, grow on
	// wrap when full). Only agents homed on this shard appear in it.
	runq   []int32
	rqHead int
	rqLen  int
	// deferred is a binary min-heap ordered by (due, agent).
	deferred []deferEntry

	// slab backs the mailbox rings of every agent homed here.
	slab []message[T]

	// sleeping marks the shard's worker as blocked on wake; set under mu,
	// cleared by the waker before the (capacity-1) send.
	sleeping bool
	wake     chan struct{}
}

// rqPush appends a to the run queue. Caller holds mu.
//
//det:hotpath
func (s *shard[T]) rqPush(a int32) {
	if s.rqLen == len(s.runq) {
		s.rqGrow()
	}
	s.runq[(s.rqHead+s.rqLen)&(len(s.runq)-1)] = a
	s.rqLen++
}

// rqPop removes the oldest queued agent; the bool is false when empty.
// Caller holds mu.
//
//det:hotpath
func (s *shard[T]) rqPop() (int32, bool) {
	if s.rqLen == 0 {
		return 0, false
	}
	a := s.runq[s.rqHead]
	s.rqHead = (s.rqHead + 1) & (len(s.runq) - 1)
	s.rqLen--
	return a, true
}

// rqGrow doubles the queue storage (setup-rare: the queue is preallocated
// to the shard's block size and an agent appears at most once).
func (s *shard[T]) rqGrow() {
	old := s.runq
	n := len(old) * 2
	if n == 0 {
		n = 8
	}
	fresh := make([]int32, n)
	for i := 0; i < s.rqLen; i++ {
		fresh[i] = old[(s.rqHead+i)&(len(old)-1)]
	}
	s.runq = fresh
	s.rqHead = 0
}

// heapPush inserts e into the deferred heap. Caller holds mu.
//
//det:hotpath
func (s *shard[T]) heapPush(e deferEntry) {
	h := append(s.deferred, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !deferLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.deferred = h
}

// heapPop removes and returns the earliest deferral; the bool is false
// when the heap is empty. Caller holds mu.
//
//det:hotpath
func (s *shard[T]) heapPop() (deferEntry, bool) {
	h := s.deferred
	n := len(h)
	if n == 0 {
		return deferEntry{}, false
	}
	top := h[0]
	n--
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && deferLess(h[l], h[m]) {
			m = l
		}
		if r < n && deferLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.deferred = h
	return top, true
}

//det:hotpath
func deferLess(a, b deferEntry) bool {
	if a.due != b.due {
		return a.due < b.due
	}
	return a.agent < b.agent
}
