package sched

import (
	"slices"
	"time"

	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
	ms "repro/internal/multiset"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// outcome is what the finishing worker does with a processed agent.
type outcome uint8

const (
	// outPark: the agent waits for an external event (a reply, a wake, a
	// delivery); nothing re-runs it until one arrives.
	outPark outcome = iota
	// outRequeue: the agent goes straight back on its home run queue.
	outRequeue
	// outDefer: the agent goes on its home deferred heap until the due
	// tick (admission control or a delayed send).
	outDefer
)

// ticks converts a wall-clock duration from the AIMD controller or the
// fault layer into virtual ticks at 1µs/tick (minimum 1): the controller
// keeps its calibrated shape, the scheduler keeps its virtual clock.
func ticks(d time.Duration) int64 {
	t := int64(d / time.Microsecond)
	if t < 1 {
		t = 1
	}
	return t
}

// worker drains shard w: due deferrals first, then the run queue, then a
// steal sweep, then a fast-forwarded deferral, then sleep. At Workers=1
// this order is the total event order of the run — a pure function of
// the seed — which is exactly the determinism pin the golden holds.
func (r *run[T]) worker(w int) {
	rng := engine.NewFastRand(r.opts.Seed)
	own := &r.shards[w]
	for {
		if r.stop.Load() {
			break
		}
		if r.sp.want.Load() {
			r.barrier()
			continue
		}
		r.maybeCheckQuiescence()

		a, ok := r.next(own, w)
		if !ok {
			if !r.sleep(own) {
				break
			}
			continue
		}
		r.process(a, rng)
	}
	r.sp.mu.Lock()
	r.sp.exited++
	r.sp.cond.Broadcast()
	r.sp.mu.Unlock()
}

// next claims one runnable agent for worker w, or reports none. Every
// flag transition happens under the claimed agent's home shard lock —
// one agent per steal, so a thief never moves scheduling state out from
// under its home lock.
func (r *run[T]) next(own *shard[T], w int) (int32, bool) {
	now := r.vnow.Load()
	own.mu.Lock()
	if len(own.deferred) > 0 && own.deferred[0].due <= now {
		e, _ := own.heapPop()
		r.flags[e.agent] = r.flags[e.agent]&^flagDeferred | flagRunning
		own.mu.Unlock()
		return e.agent, true
	}
	if a, ok := own.rqPop(); ok {
		r.opts.Probe.Add(obs.CounterSchedDepthSum, int64(own.rqLen))
		r.flags[a] = r.flags[a]&^flagQueued | flagRunning
		own.mu.Unlock()
		return a, true
	}
	own.mu.Unlock()

	// Steal: a deterministic round-robin sweep starting one shard up.
	if !r.opts.NoSteal {
		P := len(r.shards)
		for i := 1; i < P; i++ {
			v := &r.shards[(w+i)%P]
			v.mu.Lock()
			if a, ok := v.rqPop(); ok {
				r.opts.Probe.Add(obs.CounterSchedDepthSum, int64(v.rqLen))
				r.flags[a] = r.flags[a]&^flagQueued | flagRunning
				v.mu.Unlock()
				r.steals.Add(1)
				r.opts.Probe.Add(obs.CounterSchedSteals, 1)
				return a, true
			}
			v.mu.Unlock()
		}
	}

	// Fast-forward: nothing is ready anywhere this worker may look, so
	// the virtual clock jumps to its earliest future deferral and that
	// deferral runs — deadlines shape interleaving, they never cost
	// wall-clock or liveness. Without the clock jump this would spin: a
	// system where every agent waits on a deadline has no initiations to
	// move time forward.
	own.mu.Lock()
	if len(own.deferred) > 0 {
		e, _ := own.heapPop()
		r.flags[e.agent] = r.flags[e.agent]&^flagDeferred | flagRunning
		own.mu.Unlock()
		r.advance(e.due)
		return e.agent, true
	}
	own.mu.Unlock()
	return 0, false
}

// sleep blocks the worker until new work can exist for it. Returns false
// when the run is over (stop, or nothing can ever run again). The
// re-check after publishing sleeping closes the lost-wakeup window — a
// waker that saw sleeping=true has already parked its token in the
// capacity-1 channel, so the receive below cannot hang — and the
// runnable==0 check closes the termination one.
func (r *run[T]) sleep(own *shard[T]) bool {
	own.mu.Lock()
	if own.rqLen > 0 || len(own.deferred) > 0 {
		own.mu.Unlock()
		return true
	}
	own.sleeping = true
	own.mu.Unlock()

	if r.stop.Load() || r.sp.want.Load() {
		r.cancelSleep(own)
		return true
	}
	if r.runnable.Load() == 0 {
		// No agent is queued, deferred, or running anywhere, and every
		// in-flight message's target would be queued: nothing can ever
		// happen again. Drained — stop the run (islands, all crashed,
		// budget spent) instead of waiting out the wall-clock timeout.
		r.cancelSleep(own)
		r.halt()
		return false
	}
	r.sleepers.Add(1)
	r.opts.Probe.Add(obs.CounterSchedParks, 1)
	<-own.wake
	r.sleepers.Add(-1)
	return true
}

// cancelSleep retracts a published sleeping mark, consuming the wake
// token if a waker already sent it.
func (r *run[T]) cancelSleep(own *shard[T]) {
	own.mu.Lock()
	was := own.sleeping
	own.sleeping = false
	own.mu.Unlock()
	if !was {
		select {
		case <-own.wake:
		default:
		}
	}
}

// deliver pushes m into agent to's mailbox and makes to runnable. The
// push and the flag transition share to's home shard critical section.
//
//det:hotpath
func (r *run[T]) deliver(to int32, m message[T]) {
	sh := r.home(to)
	sh.mu.Lock()
	pushMsg(&r.rings[to], sh.slab, m)
	r.enqueueLocked(sh, to)
}

// enqueueLocked makes agent a runnable. The caller holds sh.mu (a's home
// shard); enqueueLocked releases it.
//
//det:hotpath
func (r *run[T]) enqueueLocked(sh *shard[T], a int32) {
	f := r.flags[a]
	if f&flagRunning != 0 {
		r.flags[a] = f | flagRepoll
		sh.mu.Unlock()
		return
	}
	if f&flagQueued != 0 {
		sh.mu.Unlock()
		return
	}
	r.flags[a] = f | flagQueued
	if f&flagDeferred == 0 {
		r.runnable.Add(1)
	}
	sh.rqPush(a)
	r.opts.Probe.Add(obs.CounterSchedEnqueues, 1)
	depth := sh.rqLen
	wake := sh.sleeping
	sh.sleeping = false
	sh.mu.Unlock()
	if wake {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	} else if depth > 1 && !r.opts.NoSteal && r.sleepers.Load() > 0 {
		r.wakeThief()
	}
}

// wakeThief wakes one sleeping worker so queued work on a busy shard is
// stolen instead of waiting for its owner to come around.
func (r *run[T]) wakeThief() {
	for s := range r.shards {
		sh := &r.shards[s]
		sh.mu.Lock()
		wake := sh.sleeping
		sh.sleeping = false
		sh.mu.Unlock()
		if wake {
			select {
			case sh.wake <- struct{}{}:
			default:
			}
			return
		}
	}
}

// process runs one scheduling event for agent a: drain the mailbox, then
// initiate, complete a delayed send, or park/defer; finally settle the
// scheduling flags. The worker owns a's non-scheduling state for the
// whole call — ownership transferred through the queue pop.
func (r *run[T]) process(a int32, rng *engine.FastRand) {
	sh := r.home(a)
	out := outPark
	var due int64

	for {
		sh.mu.Lock()
		m, ok := popMsg(&r.rings[a], sh.slab)
		sh.mu.Unlock()
		if !ok {
			break
		}
		r.handle(a, m, rng)
	}

	switch {
	case r.crashed[a]:
		// Frozen: served busy above, initiates nothing, parks.
	case r.awaiting[a]:
		// Mid-exchange: the reply will re-enqueue us.
	case r.sendTo[a] >= 0:
		// A delayed request is pending; the agent stays receptive until
		// the send tick, then commits its CURRENT state (the goroutine
		// runtime's delay loop has the same capture point).
		if now := r.vnow.Load(); now >= r.sendDue[a] {
			to := r.sendTo[a]
			r.sendTo[a] = -1
			r.awaiting[a] = true
			r.deliver(to, message[T]{from: a, kind: msgRequest, state: r.states[a]})
		} else {
			out, due = outDefer, r.sendDue[a]
		}
	case r.budgetOut.Load():
		// Budget drained: keep serving peers (above), initiate nothing.
	default:
		if now := r.vnow.Load(); r.actDue[a] > now {
			out, due = outDefer, r.actDue[a]
		} else {
			out, due = r.initiate(a, rng)
		}
	}

	r.finish(sh, a, out, due)
}

// finish settles agent a's scheduling flags after one processing event
// and detects the drained-system termination condition.
//
//det:hotpath
func (r *run[T]) finish(sh *shard[T], a int32, out outcome, due int64) {
	sh.mu.Lock()
	f := r.flags[a] &^ flagRunning
	if f&flagRepoll != 0 {
		f &^= flagRepoll
		if out == outPark {
			out = outRequeue
		}
	}
	switch out {
	case outRequeue:
		if f&flagQueued == 0 {
			f |= flagQueued
			sh.rqPush(a)
		}
	case outDefer:
		if f&flagDeferred == 0 {
			f |= flagDeferred
			sh.heapPush(deferEntry{due: due, agent: a})
		}
	}
	r.flags[a] = f
	sh.mu.Unlock()
	if f&(flagQueued|flagDeferred) == 0 {
		if r.runnable.Add(-1) == 0 {
			r.halt()
		}
	}
}

// handle serves one mailbox message for agent a.
func (r *run[T]) handle(a int32, m message[T], rng *engine.FastRand) {
	switch m.kind {
	case msgRequest:
		if r.crashed[a] || r.awaiting[a] {
			// The busy guard: a crashed agent is frozen, an awaiting
			// agent admits no second exchange while its half is in
			// flight — both reject, so two initiators aimed at each
			// other can never deadlock.
			r.deliver(m.from, message[T]{from: a, kind: msgReplyBusy})
			return
		}
		// The pair transition, atomic at the partner: adopt our half,
		// return the initiator's.
		r.reseed(a, rng)
		na, nb := r.p.PairStep(m.state, r.states[a], rng.Rand)
		if r.cmp(r.states[a], nb) != 0 {
			r.states[a] = nb
			r.post(a, nb)
		}
		r.deliver(m.from, message[T]{from: a, kind: msgReplyOK, state: na})
	case msgReplyOK:
		r.awaiting[a] = false
		r.backoff[a].OnSuccess()
		r.opts.Probe.Add(obs.CounterExchDeliver, 1)
		if r.cmp(r.states[a], m.state) != 0 {
			r.states[a] = m.state
			r.post(a, m.state)
			r.properSteps.Add(1)
		}
		r.settleCrash(a)
	case msgReplyBusy:
		r.awaiting[a] = false
		r.rejections.Add(1)
		r.opts.Probe.Add(obs.CounterExchBusy, 1)
		// Admission control: the AIMD window (runtime.AIMD — the same
		// controller the goroutine runtime parks a timer on) becomes a
		// virtual-tick deadline before which this agent may serve but
		// not re-initiate.
		window := r.backoff[a].OnRejected()
		r.reseed(a, rng)
		jitter := 1 + rng.Int63n(ticks(window))
		r.actDue[a] = r.vnow.Load() + jitter
		r.opts.Probe.Add(obs.CounterSchedAdmits, 1)
		r.opts.Probe.Add(obs.CounterExchBackoffs, 1)
		r.opts.Probe.Add(obs.CounterExchBackoffNs, jitter*int64(time.Microsecond))
		r.settleCrash(a)
	}
}

// settleCrash applies a crash that a dynamics epoch deferred because the
// agent's exchange half was in flight: the pair transition has now
// completed, so freezing is safe — conservation is never torn by a fault.
func (r *run[T]) settleCrash(a int32) {
	if r.pendingCrash[a] {
		r.pendingCrash[a] = false
		r.crashed[a] = true
		r.frozenVals[a] = r.states[a]
	}
}

// reseed rebases the worker's stream for agent a's next drawing event:
// SubSeed(AgentSeed(seed, a), eventIndex). Identity-keyed — which worker
// executes the event never matters — and O(1) per event, so per-agent
// randomness costs a counter, not a generator.
//
//det:hotpath
func (r *run[T]) reseed(a int32, rng *engine.FastRand) {
	rng.Reseed(engine.SubSeed(r.seedBase[a], int(r.eventSeq[a])))
	r.eventSeq[a]++
}

// initiate spends one op on a push-pull exchange attempt by agent a.
func (r *run[T]) initiate(a int32, rng *engine.FastRand) (outcome, int64) {
	lo, hi := r.nbrOff[a], r.nbrOff[a+1]
	if lo == hi {
		return outPark, 0 // isolated agent: nothing to gossip with, ever
	}
	n := r.ops.Add(1)
	if n > int64(r.opts.MaxOps) {
		r.ops.Add(-1)
		r.budgetOut.Store(true)
		return outPark, 0
	}
	r.advance(n)
	if r.ap != nil && n >= r.nextEpochAt.Load() {
		// Crossing an epoch boundary requests a safepoint; whichever
		// worker reaches the barrier first conducts it.
		r.sp.want.CompareAndSwap(false, true)
	}
	r.opts.Probe.Add(obs.CounterExchInitiate, 1)

	r.reseed(a, rng)
	pick := r.nbrs[int(lo)+rng.Intn(int(hi-lo))]
	if !r.es.EdgeIsUp(int(pick.edge)) {
		return outRequeue, 0 // dynamics masked the link this epoch
	}
	if p := r.opts.LinkUpProbability; p < 1 && rng.Float64() >= p {
		return outRequeue, 0 // link down for this attempt
	}
	if f := r.opts.Faults; f != nil {
		if f.LossP > 0 && rng.Float64() < f.LossP {
			// Lost in transit: the initiation is spent, nothing happens.
			r.lost.Add(1)
			r.opts.Probe.Add(obs.CounterExchLost, 1)
			return outRequeue, 0
		}
		if f.DelayMax > 0 {
			// In-flight delay: commit to the send at a future tick; the
			// agent serves its mailbox in the meantime.
			d := 1 + rng.Int63n(ticks(f.DelayMax))
			due := r.vnow.Load() + d
			r.sendTo[a] = pick.agent
			r.sendDue[a] = due
			return outDefer, due
		}
	}
	r.awaiting[a] = true
	r.deliver(pick.agent, message[T]{from: a, kind: msgRequest, state: r.states[a]})
	return outPark, 0
}

// maybeCheckQuiescence runs the rate-limited convergence check: only
// when some agent adopted since the last check AND at least CheckEvery
// initiations have passed since it. Checks stay event-driven and
// op-bounded — never more than one per adoption, the PR 2 sleep-poll
// lesson — but a 10⁵-agent run does not pay an O(N log N) board snapshot
// per event the way the goroutine runtime's per-nudge detector could
// afford to at 10³.
func (r *run[T]) maybeCheckQuiescence() {
	ad := r.adoptions.Load()
	if ad == r.checkedAdopt.Load() {
		return
	}
	if r.ops.Load()-r.lastCheckOps.Load() < int64(r.opts.CheckEvery) {
		return
	}
	if !r.checkMu.TryLock() {
		return
	}
	defer r.checkMu.Unlock()
	ad = r.adoptions.Load()
	if ad == r.checkedAdopt.Load() {
		return
	}
	r.checkedAdopt.Store(ad)
	r.lastCheckOps.Store(r.ops.Load())
	r.checks.Add(1)

	r.viewBuf = r.viewBuf[:0]
	for i := range r.board {
		sl := &r.board[i]
		sl.mu.Lock()
		r.viewBuf = append(r.viewBuf, sl.v)
		sl.mu.Unlock()
	}
	slices.SortFunc(r.viewBuf, r.cmp)
	if r.conv.Reached(ms.View(r.cmp, r.viewBuf)) {
		if r.ap != nil && r.ap.PendingJoins() {
			return // joins outstanding: the target will still move
		}
		r.halt()
	}
}

// barrier parks the calling worker for a dynamics safepoint. The first
// worker to arrive conducts: it waits for every other live worker to
// park or exit, applies every epoch whose boundary has passed, and
// releases the fleet.
func (r *run[T]) barrier() {
	sp := &r.sp
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if !sp.want.Load() {
		return
	}
	if sp.conducting {
		sp.parked++
		sp.cond.Broadcast()
		for sp.want.Load() && !r.stop.Load() {
			sp.cond.Wait()
		}
		sp.parked--
		return
	}
	sp.conducting = true
	// Wake sleepers so they come park; a worker about to sleep re-checks
	// sp.want after publishing sleeping, so none can miss this.
	for s := range r.shards {
		sh := &r.shards[s]
		sh.mu.Lock()
		wake := sh.sleeping
		sh.sleeping = false
		sh.mu.Unlock()
		if wake {
			select {
			case sh.wake <- struct{}{}:
			default:
			}
		}
	}
	for sp.parked+sp.exited < len(r.shards)-1 && !r.stop.Load() {
		sp.cond.Wait()
	}
	if !r.stop.Load() {
		now := r.ops.Load()
		for r.nextEpochAt.Load() <= now {
			r.epoch++
			r.applyEpoch(r.epoch)
			r.nextEpochAt.Add(int64(r.opts.OpsPerEpoch))
		}
	}
	sp.conducting = false
	sp.want.Store(false)
	sp.cond.Broadcast()
}

// applyEpoch applies dynamics epoch e while every other worker is parked
// (or, for epoch 0, before any has started): growth first, then the
// epoch's events and mask overlay — the sim round protocol with
// initiations as the clock.
func (r *run[T]) applyEpoch(e int) {
	if gr, ok := r.ap.GrowthFor(e); ok {
		r.applyGrowth(gr)
	}
	r.ap.EndRound()
	r.es = r.ap.BeginRound(e, env.State{})
	for _, ag := range r.ap.JustCrashed() {
		a := int32(ag)
		if r.awaiting[a] {
			// An exchange half is in flight: tearing it would break
			// conservation. Freeze after the reply lands (settleCrash).
			r.pendingCrash[a] = true
			continue
		}
		if r.sendTo[a] >= 0 {
			r.sendTo[a] = -1 // the delayed request dies with the sender
		}
		r.crashed[a] = true
		r.frozenVals[a] = r.states[a]
	}
	reset := false
	for _, ag := range r.ap.JustWoken() {
		a := int32(ag)
		if r.pendingCrash[a] {
			r.pendingCrash[a] = false // crash and wake cancelled in flight
			continue
		}
		r.crashed[a] = false
		if r.ap.Amnesiac() && r.cmp(r.states[a], r.initVals[a]) != 0 {
			// Amnesiac rejoin: re-enter with the initial state. A
			// sanctioned discontinuity — the variant rebases below; the
			// conservation law deliberately does not (§3.4 decides
			// which problems survive it, and the monitor reports
			// exactly that at quiescence).
			r.states[a] = r.initVals[a]
			r.post(a, r.states[a])
			reset = true
		}
		sh := r.home(a)
		sh.mu.Lock()
		r.enqueueLocked(sh, a)
	}
	if reset {
		r.mon.RebaseVariant(ms.New(r.cmp, r.states...))
	}
}

// applyGrowth extends every run structure for joiners arriving at a
// safepoint: states and board, the scheduling arrays, the last shard's
// block (the engine.Shards append rule), CSR and mailboxes (degrees may
// change anywhere), and the shared monitor/convergence targets — the sim
// applyGrowth protocol on the sched runtime.
func (r *run[T]) applyGrowth(gr graph.Growth) {
	n0 := len(r.states)
	joined := r.initVals[gr.FirstAgent : gr.FirstAgent+gr.NewAgents]
	r.states = append(r.states, joined...)
	n := len(r.states)
	for a := n0; a < n; a++ {
		r.frozenVals = append(r.frozenVals, r.states[a])
		r.flags = append(r.flags, 0)
		r.seedBase = append(r.seedBase, engine.AgentSeed(r.opts.Seed, a))
		r.eventSeq = append(r.eventSeq, 0)
		r.awaiting = append(r.awaiting, false)
		r.crashed = append(r.crashed, false)
		r.pendingCrash = append(r.pendingCrash, false)
		r.sendTo = append(r.sendTo, -1)
		r.sendDue = append(r.sendDue, 0)
		r.actDue = append(r.actDue, 0)
		r.backoff = append(r.backoff, runtime.AIMD{})
	}
	board := make([]boardSlot[T], n)
	for i := 0; i < n0; i++ {
		board[i].v = r.board[i].v
	}
	for a := n0; a < n; a++ {
		board[a].v = r.states[a]
	}
	r.board = board
	r.viewBuf = slices.Grow(r.viewBuf[:0], n)

	last := &r.shards[len(r.shards)-1]
	last.hi = n
	r.buildCSR()
	r.buildMailboxes()

	// The run now answers for the final population: the target absorbs
	// the joiners (exact for super-idempotent f, §3.4), convergence
	// restarts against it, and the variant baseline restarts from the
	// grown state — fresh input may legitimately raise h.
	r.mon.AdmitJoin(joined)
	r.conv.Retarget(r.mon.Target())
	r.mon.RebaseVariant(ms.New(r.cmp, r.states...))

	for a := n0; a < n; a++ {
		last.mu.Lock()
		r.enqueueLocked(last, int32(a))
	}
}
