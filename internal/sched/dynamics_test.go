package sched

import (
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/graph"
	ms "repro/internal/multiset"
	"repro/internal/problems"
)

// TestSchedCrashWake is the E17 shape on the sched runtime: the unique
// minimum holder crashes at epoch 0 and wakes at a later epoch; the
// system cannot converge before the wake, must converge after it, and
// the monitor (conservation + frozen-state contract) must stay clean.
func TestSchedCrashWake(t *testing.T) {
	g := graph.Ring(12)
	vals := make([]int, 12)
	for i := range vals {
		vals[i] = 50 + i
	}
	vals[7] = 1 // unique global minimum at agent 7
	const wake = 8
	res, err := Run[int](problems.NewMin(), g, vals, Options{
		Seed: 3, Timeout: 30 * time.Second,
		OpsPerEpoch: 24,
		Dynamics: dynamics.NewSchedule(
			dynamics.At(0, dynamics.CrashAgents(7)),
			dynamics.At(wake, dynamics.RecoverAgents(7)),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.Converged {
		t.Fatalf("did not converge after recovery: final=%v ops=%d", res.Final, res.Ops)
	}
	if res.Ops <= wake*24 {
		t.Fatalf("converged after %d ops, before the minimum-holder could wake at epoch %d (= op %d)",
			res.Ops, wake, wake*24)
	}
	for _, v := range res.Final {
		if v != 1 {
			t.Fatalf("final = %v, want all 1", res.Final)
		}
	}
	if res.Dynamics == nil || res.Dynamics.Crashes != 1 || res.Dynamics.Recoveries != 1 {
		t.Errorf("dynamics report: %+v, want 1 crash + 1 recovery", res.Dynamics)
	}
}

// TestSchedCrashConservesFrozen pins the frozen-state contract under a
// crash that never recovers: the crashed agent must hold exactly the
// state it froze with, and the run winds down on budget (it can never
// reach the full-population target if the frozen agent holds a stale
// value).
func TestSchedCrashForever(t *testing.T) {
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := Run[int](problems.NewMin(), g, vals, Options{
		Seed: 11, Timeout: 30 * time.Second,
		OpsPerEpoch: 16, MaxOps: 4000,
		Dynamics: dynamics.NewSchedule(dynamics.At(0, dynamics.CrashAgents(3))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Agent 3 froze at epoch 0 holding its initial 1; everyone else
	// converges to the best reachable value among the live (min over all
	// values is 1 but agent 3 is crashed; its neighbours can still READ
	// nothing from it — the ring with one frozen node is a line of live
	// agents whose min is 2).
	if res.Final[3] != 1 {
		t.Errorf("crashed agent moved: %d, want frozen 1", res.Final[3])
	}
	for i, v := range res.Final {
		if i == 3 {
			continue
		}
		if v != 2 {
			t.Errorf("live agent %d = %d, want 2 (min among live)", i, v)
		}
	}
}

// TestSchedJoin is the E19 shape on the sched runtime: joiners splice
// into the ring mid-run carrying fresh values; the target is extended
// per §3.4 and the run must converge over the final population with a
// clean monitor.
func TestSchedJoin(t *testing.T) {
	g := graph.Ring(8)
	// Founding values min=3; joiner arrives with 1 — the global minimum
	// enters with the join, so convergence REQUIRES admitting it.
	initial := []int{9, 4, 7, 3, 8, 5, 6, 5, 1, 2}
	res, err := Run[int](problems.NewMin(), g, initial, Options{
		Seed: 7, Timeout: 30 * time.Second,
		OpsPerEpoch: 32,
		Dynamics:    dynamics.NewSchedule(dynamics.Join(2, "ring", 3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.Converged {
		t.Fatalf("did not converge after join: final=%v ops=%d", res.Final, res.Ops)
	}
	if len(res.Final) != 10 {
		t.Fatalf("final population %d, want 10", len(res.Final))
	}
	for _, v := range res.Final {
		if v != 1 {
			t.Fatalf("final = %v, want all 1 (the joiner's value)", res.Final)
		}
	}
	if res.Dynamics == nil || res.Dynamics.Joins != 2 {
		t.Errorf("dynamics report: %+v, want 2 joins", res.Dynamics)
	}
	if !res.Target.Equal(ms.OfInts(1, 1, 1, 1, 1, 1, 1, 1, 1, 1)) {
		t.Errorf("target not extended to the joined population: %v", res.Target)
	}
}

// TestSchedJoinAmnesiacFlap composes everything E19 throws at a run —
// crashes, amnesiac re-entry, and joins — on min, which is insensitive
// to re-introduced initial values (§3.4 positive case): zero violations
// is pinned.
func TestSchedJoinAmnesiacFlap(t *testing.T) {
	g := graph.Ring(16)
	initial := make([]int, 18)
	for i := range initial {
		initial[i] = 7 + (i*5)%23
	}
	initial[9] = 2 // founding minimum
	initial[16] = 1
	initial[17] = 3 // joiners: the global minimum joins late
	res, err := Run[int](problems.NewMin(), g, initial, Options{
		Seed: 21, Timeout: 30 * time.Second,
		OpsPerEpoch: 48,
		Dynamics: dynamics.NewSchedule(
			dynamics.At(2, dynamics.CrashRandom(3)),
			dynamics.At(4, dynamics.RecoverAll()),
			dynamics.Join(2, "ring", 6),
			dynamics.AmnesiacRejoin(),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations under join+amnesiac flap: %v", res.Violations)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final=%v ops=%d report=%+v", res.Final, res.Ops, res.Dynamics)
	}
	for _, v := range res.Final {
		if v != 1 {
			t.Fatalf("final = %v, want all 1", res.Final)
		}
	}
}

// TestSchedAmnesiacSumViolates is the §3.4 negative case on sched: sum
// is NOT insensitive to re-introduced values — an amnesiac reset
// destroys or duplicates absorbed mass — and the monitor must DETECT it
// (violations > 0 pinned). MaxOps is small because the run can never
// reach its now-unreachable target.
func TestSchedAmnesiacSumViolates(t *testing.T) {
	g := graph.Complete(8)
	vals := []int{3, 1, 5, 2, 7, 4, 6, 2}
	res, err := Run[int](problems.NewSum(), g, vals, Options{
		Seed: 9, Timeout: 30 * time.Second,
		OpsPerEpoch: 16, MaxOps: 2000,
		Dynamics: dynamics.NewSchedule(
			dynamics.At(2, dynamics.CrashRandom(3)),
			dynamics.At(5, dynamics.RecoverAll()),
			dynamics.AmnesiacRejoin(),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dynamics == nil || res.Dynamics.AmnesiacResets == 0 {
		t.Skipf("no amnesiac reset actually fired (report %+v); nothing to violate", res.Dynamics)
	}
	if len(res.Violations) == 0 {
		t.Error("amnesiac reset on sum went undetected: want a conservation violation")
	}
}

// TestSchedPartition runs an edge-mask window (the partition shape) on
// sched: during the masked epochs the spanning edges are down and
// initiations across them requeue; after healing the run converges
// cleanly.
func TestSchedPartition(t *testing.T) {
	g := graph.Ring(12)
	vals := make([]int, 12)
	for i := range vals {
		vals[i] = 40 + i
	}
	vals[0] = 1
	res, err := Run[int](problems.NewMin(), g, vals, Options{
		Seed: 13, Timeout: 30 * time.Second,
		OpsPerEpoch: 24,
		Dynamics:    dynamics.NewSchedule(dynamics.Partition(2, 1, 6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.Converged {
		t.Fatalf("did not converge after heal: %v", res.Final)
	}
	if res.Dynamics == nil || res.Dynamics.MaskedEdgeRounds == 0 {
		t.Errorf("partition masked no edges: %+v", res.Dynamics)
	}
}
