package sweep

import (
	"fmt"
	"math/rand"
	goruntime "runtime"
	"strings"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/problems"
	"repro/internal/sim"
)

// quickAxes is the shared ≥3-axis test grid: 2 environments × 4 problems
// × 2 topologies × 2 modes × 4 seeds — the acceptance-criterion shape
// (≥ 2 environments × ≥ 3 problems × ≥ 4 seeds) plus the modes axis.
// MaxRounds is capped because sum under pairwise gossip on a ring
// rightfully stalls (§4.2's environment obligation) — non-convergence is
// a recorded outcome, not an error.
func quickAxes() Axes {
	return Axes{
		Envs:      []env.Desc{env.ChurnDesc(0.9), env.StaticDesc()},
		Problems:  []problems.Desc{problems.MinDesc(), problems.MaxDesc(), problems.GCDDesc(), problems.SumDesc()},
		Topos:     []Topo{RingTopo(), CompleteTopo()},
		Sizes:     []int{24},
		Modes:     []sim.Mode{sim.ComponentMode, sim.PairwiseMode},
		Seeds:     4,
		BaseSeed:  42,
		MaxRounds: 400,
	}
}

func cellFingerprint(c CellResult) string {
	return fmt.Sprintf("i=%d conv=%v round=%d rounds=%d steps=%d msgs=%d viol=%d final=%v",
		c.Cell.Index, c.Converged, c.Round, c.Rounds, c.GroupSteps, c.Messages, c.Violations, c.Final)
}

// TestGridMatchesIndependentRuns is the sweep determinism golden test:
// every cell of a grid run on warm, pool-fanned workers must be
// bit-identical — including final states — to an independent cold
// sim.Run built from nothing but the cell's own fields, and the rendered
// table must be byte-identical across worker counts (1, 2, GOMAXPROCS).
func TestGridMatchesIndependentRuns(t *testing.T) {
	grid, err := quickAxes().Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 2*4*2*2*4 {
		t.Fatalf("grid has %d cells, want %d", len(grid.Cells), 2*4*2*2*4)
	}

	var tables []string
	var first *Result
	for _, workers := range []int{1, 2, 0} {
		res, err := Run(grid, Options{Workers: workers, KeepFinal: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tables = append(tables, res.Table.CSV())
		if first == nil {
			first = res
		} else {
			for i := range res.Cells {
				if got, want := cellFingerprint(res.Cells[i]), cellFingerprint(first.Cells[i]); got != want {
					t.Fatalf("workers=%d: cell %d diverged\ngot:  %s\nwant: %s", workers, i, got, want)
				}
			}
		}
	}
	for i := 1; i < len(tables); i++ {
		if tables[i] != tables[0] {
			t.Fatalf("table bytes depend on worker count:\n%s\nvs\n%s", tables[0], tables[i])
		}
	}

	// Cold reference: rebuild each cell independently, straight through
	// sim.Run, and require identical results.
	converged := 0
	for i, c := range grid.Cells {
		n := c.Graph.N()
		p := c.Problem.New(n)
		initial := c.Problem.Init(n, rand.New(rand.NewSource(c.InitSeed)))
		res, err := sim.Run[int](p, c.Env.New(c.Graph), initial, c.Opts)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		want := CellResult{
			Cell: c, Converged: res.Converged, Round: res.Round, Rounds: res.Rounds,
			GroupSteps: res.GroupSteps, Messages: res.Messages,
			Violations: len(res.Violations), Final: res.Final,
		}
		if got, wantFP := cellFingerprint(first.Cells[i]), cellFingerprint(want); got != wantFP {
			t.Errorf("cell %d: grid result diverged from independent sim.Run\ngrid: %s\ncold: %s", i, got, wantFP)
		}
		if res.Converged {
			converged++
		}
	}
	// Sanity on the grid's content: the consensus problems must converge
	// everywhere; only sum cells may stall.
	if converged == 0 || converged == len(grid.Cells) {
		t.Errorf("converged cells = %d of %d — grid exercises nothing", converged, len(grid.Cells))
	}
	for _, c := range first.Cells {
		if c.Cell.Problem.Name != "sum" && !c.Converged {
			t.Errorf("cell %d (%s/%s/%s): consensus cell did not converge",
				c.Cell.Index, c.Cell.Env.Name, c.Cell.Problem.Name, c.Cell.Topo)
		}
		if c.Violations != 0 {
			t.Errorf("cell %d: %d monitor violations", c.Cell.Index, c.Violations)
		}
	}
}

// TestSweepSeedsAreSubstreams pins the seed-derivation contract: cell
// seeds come from engine.SubSeed at the cell index — distinct per cell,
// reproducible from (BaseSeed, Index) alone.
func TestSweepSeedsAreSubstreams(t *testing.T) {
	grid, err := quickAxes().Grid()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]int)
	for _, c := range grid.Cells {
		if want := engine.SubSeed(42, 2*c.Index); c.Opts.Seed != want {
			t.Fatalf("cell %d: run seed %d, want substream %d", c.Index, c.Opts.Seed, want)
		}
		if want := engine.SubSeed(42, 2*c.Index+1); c.InitSeed != want {
			t.Fatalf("cell %d: init seed %d, want substream %d", c.Index, c.InitSeed, want)
		}
		if prev, dup := seen[c.Opts.Seed]; dup {
			t.Fatalf("cells %d and %d share run seed %d", prev, c.Index, c.Opts.Seed)
		}
		seen[c.Opts.Seed] = c.Index
	}
}

// TestSweepNestedShardedRespectsBudget: a grid whose cells force the
// sharded, pool-parallel layout must keep the process-wide extra-worker
// count within the engine.AcquireSlots budget — sweep workers and the
// pools nested inside their cells draw from the same pot.
func TestSweepNestedShardedRespectsBudget(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	engine.ResetSlotPeak()

	a := Axes{
		Envs:              []env.Desc{env.ChurnDesc(0.6)},
		Problems:          []problems.Desc{problems.MinDesc()},
		Topos:             []Topo{RingTopo()},
		Sizes:             []int{64},
		Modes:             []sim.Mode{sim.ComponentMode, sim.PairwiseMode},
		Seeds:             4,
		BaseSeed:          7,
		MaxRounds:         60_000,
		Shards:            4,
		MatchBlocks:       4,
		ParallelThreshold: 1,
	}
	grid, err := a.Grid()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if !c.Converged || c.Violations != 0 {
			t.Errorf("cell %d: converged=%v violations=%d", c.Cell.Index, c.Converged, c.Violations)
		}
	}
	budget := goruntime.GOMAXPROCS(0) - 1
	if peak := engine.SlotPeak(); peak > budget {
		t.Errorf("sweep held %d extra-worker slots, budget is %d", peak, budget)
	} else if peak == 0 {
		t.Error("budget never engaged — sweep not routed through AcquireSlots")
	}
}

// TestWarmCellsAllocateLessThanCold is the warm-engine acceptance
// criterion as a machine-independent test: steady-state cells on a warm
// Worker must allocate well under half of what a cold Worker pays for
// the same cell (which re-pays trackers, matcher, arenas, monitor, and
// streams every time).
func TestWarmCellsAllocateLessThanCold(t *testing.T) {
	cell := benchCell()

	warmWorker := NewWorker()
	defer warmWorker.Close()
	if _, err := warmWorker.Do(cell); err != nil { // prime
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(5, func() {
		if _, err := warmWorker.Do(cell); err != nil {
			t.Fatal(err)
		}
	})
	cold := testing.AllocsPerRun(5, func() {
		w := NewWorker()
		defer w.Close()
		if _, err := w.Do(cell); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs per cell: warm=%.0f cold=%.0f", warm, cold)
	if warm*2 >= cold {
		t.Errorf("warm cells allocate %.0f, cold %.0f — warm reuse must save more than half", warm, cold)
	}
}

// benchCell is the steady-state cell BenchmarkSweepGrid and the
// warm-reuse test share: pairwise min on K64 under light churn — pair
// steps and the matcher are allocation-free, so the cell's allocations
// are engine set-up (cold) versus per-run bookkeeping (warm).
func benchCell() Cell {
	a := Axes{
		Envs:     []env.Desc{env.ChurnDesc(0.9)},
		Problems: []problems.Desc{problems.MinDesc()},
		Topos:    []Topo{CompleteTopo()},
		Sizes:    []int{64},
		Modes:    []sim.Mode{sim.PairwiseMode},
		Seeds:    1,
		BaseSeed: 3,
	}
	grid, err := a.Grid()
	if err != nil {
		panic(err)
	}
	return grid.Cells[0]
}

// TestTableEmitters pins the table shapes both emitters promise.
func TestTableEmitters(t *testing.T) {
	tbl := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	if got, want := tbl.CSV(), "a,b\n1,2\n3,4\n"; got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	md := tbl.Markdown()
	if !strings.HasPrefix(md, "| a | b |\n|---|---|\n") || !strings.Contains(md, "| 3 | 4 |") {
		t.Errorf("Markdown emitter malformed:\n%s", md)
	}
}

// TestAxesValidation: empty axes and degenerate sizes must fail loudly.
func TestAxesValidation(t *testing.T) {
	base := quickAxes()
	for name, mutate := range map[string]func(*Axes){
		"no envs":     func(a *Axes) { a.Envs = nil },
		"no problems": func(a *Axes) { a.Problems = nil },
		"no topos":    func(a *Axes) { a.Topos = nil },
		"no sizes":    func(a *Axes) { a.Sizes = nil },
		"size 1":      func(a *Axes) { a.Sizes = []int{1} },
	} {
		a := base
		mutate(&a)
		if _, err := a.Grid(); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	// Defaults: empty Modes and Seeds expand to component mode, 1 seed.
	a := base
	a.Modes, a.Seeds = nil, 0
	grid, err := a.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4 * 2 * 1 * 1; len(grid.Cells) != want {
		t.Errorf("defaulted grid has %d cells, want %d", len(grid.Cells), want)
	}
	for _, c := range grid.Cells {
		if c.Mode != sim.ComponentMode {
			t.Errorf("cell %d: mode %v, want component default", c.Index, c.Mode)
		}
	}
}

// TestParseTopo round-trips every family and rejects junk.
func TestParseTopo(t *testing.T) {
	for _, name := range []string{"ring", "line", "complete", "star", "tree", "hypercube", "torus"} {
		topo, err := ParseTopo(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if topo.Name != name {
			t.Errorf("ParseTopo(%q).Name = %q", name, topo.Name)
		}
		if g := topo.New(16); g.N() < 2 {
			t.Errorf("%s: graph for n=16 has %d agents", name, g.N())
		}
	}
	if _, err := ParseTopo("moebius"); err == nil {
		t.Error("unknown topology must error")
	}
	// Structural families round the size.
	hyper, _ := ParseTopo("hypercube")
	if g := hyper.New(100); g.N() != 128 {
		t.Errorf("hypercube(100) has %d agents, want 128", g.N())
	}
	torus, _ := ParseTopo("torus")
	if g := torus.New(100); g.N() != 100 {
		t.Errorf("torus(100) has %d agents, want 100", g.N())
	}
}

// dynamicsAxes is the fault-schedule grid the dynamics determinism and
// axis tests share: every registry family crossed with two problems and
// both interaction modes.
func dynamicsAxes() Axes {
	return Axes{
		Envs:     []env.Desc{env.ChurnDesc(0.9)},
		Problems: []problems.Desc{problems.MinDesc(), problems.GCDDesc()},
		Topos:    []Topo{RingTopo()},
		Sizes:    []int{32},
		Dynamics: []dynamics.Desc{
			dynamics.NoneDesc(),
			dynamics.CrashesDesc(0.02, 10),
			dynamics.PartitionDesc(2, 1, 25),
			dynamics.FlapDesc(3, 2, 20),
			dynamics.BurstDesc(0.5, 0, 15),
		},
		Modes:     []sim.Mode{sim.ComponentMode, sim.PairwiseMode},
		Seeds:     3,
		BaseSeed:  23,
		MaxRounds: 60_000,
	}
}

func dynFingerprint(c CellResult) string {
	fp := cellFingerprint(c)
	if c.Dyn != nil {
		fp += fmt.Sprintf(" dyn=%+v", *c.Dyn)
	}
	return fp
}

// TestSweepDynamicsDeterministicAcrossWorkersAndShards is the sweep half
// of the dynamics determinism satellite: a grid with a -dynamics axis
// must produce identical cell results — including the dynamics reports —
// for every worker count (1, 2, GOMAXPROCS) and for forced state-shard
// counts 1 and 4, and the dynamics cells must stay correct (the
// conservation law and the frozen-state check hold everywhere; every
// consensus cell reconverges through its faults).
func TestSweepDynamicsDeterministicAcrossWorkersAndShards(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			a := dynamicsAxes()
			a.Shards = shards
			grid, err := a.Grid()
			if err != nil {
				t.Fatal(err)
			}
			if want := 1 * 2 * 1 * 1 * 5 * 2 * 3; len(grid.Cells) != want {
				t.Fatalf("grid has %d cells, want %d", len(grid.Cells), want)
			}
			var first *Result
			for _, workers := range []int{1, 2, 0} {
				res, err := Run(grid, Options{Workers: workers, KeepFinal: true})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if first == nil {
					first = res
					continue
				}
				for i := range res.Cells {
					if got, want := dynFingerprint(res.Cells[i]), dynFingerprint(first.Cells[i]); got != want {
						t.Fatalf("workers=%d: cell %d diverged\ngot:  %s\nwant: %s", workers, i, got, want)
					}
				}
			}
			sawDynamics := false
			for _, c := range first.Cells {
				if c.Violations != 0 {
					t.Errorf("cell %d (%s): %d violations", c.Cell.Index, c.Cell.Dyn.Name, c.Violations)
				}
				if !c.Converged {
					t.Errorf("cell %d (%s/%s/%s): did not reconverge through its faults",
						c.Cell.Index, c.Cell.Problem.Name, c.Cell.Dyn.Name, c.Cell.Mode)
				}
				if c.Cell.Dyn.Name != "none" {
					sawDynamics = true
					if c.Dyn == nil {
						t.Fatalf("cell %d: dynamics cell carries no report", c.Cell.Index)
					}
				} else if c.Dyn != nil {
					t.Fatalf("cell %d: none cell carries a dynamics report", c.Cell.Index)
				}
			}
			if !sawDynamics {
				t.Fatal("grid exercised no dynamics cells")
			}
		})
	}
}

// TestSweepDynamicsCellsMatchIndependentRuns extends the golden contract
// to the dynamics axis: every dynamics cell rebuilt from its own fields
// through a cold sim.Run must match the grid result bit for bit.
func TestSweepDynamicsCellsMatchIndependentRuns(t *testing.T) {
	grid, err := dynamicsAxes().Grid()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(grid, Options{KeepFinal: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range grid.Cells {
		n := c.Graph.N()
		p := c.Problem.New(n)
		initial := c.Problem.Init(n, rand.New(rand.NewSource(c.InitSeed)))
		cold, err := sim.Run[int](p, c.Env.New(c.Graph), initial, c.Opts)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		want := CellResult{
			Cell: c, Converged: cold.Converged, Round: cold.Round, Rounds: cold.Rounds,
			GroupSteps: cold.GroupSteps, Messages: cold.Messages,
			Violations: len(cold.Violations), Final: cold.Final, Dyn: cold.Dynamics,
		}
		if got, wantFP := dynFingerprint(res.Cells[i]), dynFingerprint(want); got != wantFP {
			t.Errorf("cell %d (%s): grid diverged from independent run\ngrid: %s\ncold: %s",
				i, c.Dyn.Name, got, wantFP)
		}
	}
}

// membershipAxes is the membership grid the join-axis tests share:
// join and amnesiac-rejoin families next to a plain cell and a no-op
// schedule-free cell.
func membershipAxes() Axes {
	return Axes{
		Envs:     []env.Desc{env.ChurnDesc(0.9)},
		Problems: []problems.Desc{problems.MinDesc()},
		Topos:    []Topo{RingTopo()},
		Sizes:    []int{24},
		Dynamics: []dynamics.Desc{
			dynamics.NoneDesc(),
			dynamics.JoinDesc(4, "ring", 8),
			dynamics.AmnesiacFlapDesc(3, 2, 12),
		},
		Modes:     []sim.Mode{sim.ComponentMode, sim.PairwiseMode},
		Seeds:     3,
		BaseSeed:  31,
		MaxRounds: 60_000,
	}
}

// TestSweepMembershipDeterministicAcrossWorkers is the sweep half of the
// growable-population contract: a grid with a join axis must produce
// identical cell results for every worker count, join cells must report
// their joins and a grown final population, and — because cells of one
// (topology, size) share a pristine graph instance — running join cells
// must never mutate that shared graph (each join cell runs on a private
// clone).
func TestSweepMembershipDeterministicAcrossWorkers(t *testing.T) {
	grid, err := membershipAxes().Grid()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 * 1 * 1 * 1 * 3 * 2 * 3; len(grid.Cells) != want {
		t.Fatalf("grid has %d cells, want %d", len(grid.Cells), want)
	}
	var first *Result
	for _, workers := range []int{1, 2, 0} {
		res, err := Run(grid, Options{Workers: workers, KeepFinal: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = res
			continue
		}
		for i := range res.Cells {
			if got, want := dynFingerprint(res.Cells[i]), dynFingerprint(first.Cells[i]); got != want {
				t.Fatalf("workers=%d: cell %d diverged\ngot:  %s\nwant: %s", workers, i, got, want)
			}
		}
	}
	for _, c := range grid.Cells {
		if c.Graph.Gen() != 0 || c.Graph.N() != 24 {
			t.Fatalf("cell %d mutated the shared pristine graph: gen=%d n=%d", c.Index, c.Graph.Gen(), c.Graph.N())
		}
	}
	sawJoin := false
	for _, c := range first.Cells {
		if c.Violations != 0 {
			t.Errorf("cell %d (%s): %d violations", c.Cell.Index, c.Cell.Dyn.Name, c.Violations)
		}
		if !c.Converged {
			t.Errorf("cell %d (%s/%s): did not reconverge", c.Cell.Index, c.Cell.Dyn.Name, c.Cell.Mode)
		}
		joiners := 0
		if c.Cell.Opts.Dynamics != nil {
			joiners = c.Cell.Opts.Dynamics.TotalJoiners()
		}
		if want := 24 + joiners; len(c.Final) != want {
			t.Errorf("cell %d (%s): final population %d, want %d", c.Cell.Index, c.Cell.Dyn.Name, len(c.Final), want)
		}
		if joiners > 0 {
			sawJoin = true
			if c.Dyn == nil || c.Dyn.Joins != joiners {
				t.Errorf("cell %d: dynamics report %+v, want Joins=%d", c.Cell.Index, c.Dyn, joiners)
			}
		}
	}
	if !sawJoin {
		t.Fatal("grid exercised no join cells")
	}
}

// TestSweepMembershipCellsMatchIndependentRuns extends the cold-run
// golden contract to join cells: rebuilding a join cell from its own
// fields — final-population problem sizing, a private graph clone — must
// reproduce the grid result bit for bit.
func TestSweepMembershipCellsMatchIndependentRuns(t *testing.T) {
	grid, err := membershipAxes().Grid()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(grid, Options{KeepFinal: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range grid.Cells {
		rg := c.Graph
		joiners := 0
		if c.Opts.Dynamics != nil {
			joiners = c.Opts.Dynamics.TotalJoiners()
		}
		if joiners > 0 {
			rg = rg.Clone()
		}
		n := rg.N() + joiners
		p := c.Problem.New(n)
		initial := c.Problem.Init(n, rand.New(rand.NewSource(c.InitSeed)))
		cold, err := sim.Run[int](p, c.Env.New(rg), initial, c.Opts)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		want := CellResult{
			Cell: c, Converged: cold.Converged, Round: cold.Round, Rounds: cold.Rounds,
			GroupSteps: cold.GroupSteps, Messages: cold.Messages,
			Violations: len(cold.Violations), Final: cold.Final, Dyn: cold.Dynamics,
		}
		if got, wantFP := dynFingerprint(res.Cells[i]), dynFingerprint(want); got != wantFP {
			t.Errorf("cell %d (%s): grid diverged from independent run\ngrid: %s\ncold: %s",
				i, c.Dyn.Name, got, wantFP)
		}
	}
}
