package sweep

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dynamics"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CellResult is one cell's outcome. Every field except Duration is a
// deterministic function of the cell alone (seed substreams, never
// worker identity), and is bit-identical to what an independent sim.Run
// with Cell.Opts reports.
type CellResult struct {
	Cell Cell
	// Converged, Round, Rounds, GroupSteps, Messages mirror sim.Result.
	Converged  bool
	Round      int
	Rounds     int
	GroupSteps int
	Messages   int
	// Violations counts monitor failures (0 on a correct run).
	Violations int
	// Final holds the final agent states when Options.KeepFinal asked
	// for them (nil otherwise — grids can dwarf memory at scale).
	Final []int
	// Dyn reports what the cell's dynamics schedule did (nil when the
	// cell ran without dynamics): crash/recover counts and the heal
	// rounds the reconvergence metrics are computed from. Deterministic
	// like every other field — a pure function of the cell.
	Dyn *dynamics.Report
	// Duration is wall-clock time for the cell — the one field that is
	// machine- and scheduling-dependent, which is why the Table excludes
	// it.
	Duration time.Duration
}

// Worker owns one warm engine — an engine.RunContext plus a sim.Scratch
// — and executes cells sequentially on it. The first cell pays engine
// set-up (pool, trackers, matcher, arenas); every following cell reuses
// it all through sim.RunWith. A Worker belongs to one goroutine at a
// time. Experiments that need per-cell instrumentation (E15 brackets
// each cell with MemStats reads) drive a Worker directly; grids go
// through Runner, which keeps one Worker per pool slot.
type Worker struct {
	// KeepFinal makes Do retain each cell's final states in its
	// CellResult.
	KeepFinal bool
	// Probe, when non-nil, observes every cell this worker executes: it
	// is attached to each run (unless the cell's own Options carry a
	// probe already) and records the cell lifecycle — count, duration
	// histogram, and a JSONL cell event when a trace sink is configured.
	// One probe per worker: obs phase timers are single-goroutine, so
	// workers must not share probes (a shared TraceWriter is fine).
	// Observe-never-perturb — cell results are byte-identical either way.
	Probe *obs.Probe

	rc *engine.RunContext
	sc *sim.Scratch[int]
	// initRng is reseeded per cell for the initial-state draw —
	// identical to rand.New(rand.NewSource(InitSeed)) without
	// reallocating the source's table per cell.
	initRng *rand.Rand
}

// NewWorker builds a warm worker with an empty engine.
func NewWorker() *Worker {
	rc := engine.NewRunContext(0)
	//lint:ignore detrand warm-reuse twin of the cell contract: initial-state draws must be byte-identical to an independent rand.New(rand.NewSource(InitSeed)), so the worker keeps one stdlib Rand and reseeds it per cell
	return &Worker{rc: rc, sc: sim.NewScratch[int](rc), initRng: rand.New(rand.NewSource(0))}
}

// Do executes one cell on the worker's warm engine and reports its
// result. The run is bit-identical to an independent
// sim.Run(problem, env, initial, cell.Opts) — the warm-run contract of
// sim.RunWith.
func (w *Worker) Do(c Cell) (CellResult, error) {
	rg := c.Graph
	n := rg.N()
	// A join-bearing schedule grows its graph mid-run, and grid cells of
	// the same (topology, size) share one graph instance — so such a cell
	// runs on a private clone of the pristine topology, and its problem
	// and initial states are sized for the FINAL population (founding
	// agents first, joiners after, in join order — the layout sim.RunWith
	// consumes).
	joiners := 0
	if c.Opts.Dynamics != nil {
		joiners = c.Opts.Dynamics.TotalJoiners()
	}
	if joiners > 0 {
		rg = rg.Clone()
	}
	p := c.Problem.New(n + joiners)
	w.initRng.Seed(c.InitSeed)
	initial := c.Problem.Init(n+joiners, w.initRng)
	e := c.Env.New(rg)
	if c.Opts.Probe == nil {
		c.Opts.Probe = w.Probe // c is a value copy; the grid's cells are untouched
	}

	//lint:ignore timenow CellResult.Duration is documented as the one machine-dependent field; the Table excludes it and nothing downstream branches on it
	start := time.Now()
	res, err := sim.RunWith(w.sc, p, e, initial, c.Opts)
	if err != nil {
		return CellResult{Cell: c}, fmt.Errorf("sweep: cell %d (%s/%s/%s/%d/%s): %w",
			c.Index, c.Env.Name, c.Problem.Name, c.Topo, n, c.Mode, err)
	}
	cr := CellResult{
		Cell:       c,
		Converged:  res.Converged,
		Round:      res.Round,
		Rounds:     res.Rounds,
		GroupSteps: res.GroupSteps,
		Messages:   res.Messages,
		Violations: len(res.Violations),
		//lint:ignore timenow feeds only the machine-dependent-by-contract Duration field
		Duration: time.Since(start),
		Dyn:        res.Dynamics,
	}
	w.Probe.Cell(c.Index, int64(cr.Duration))
	if w.KeepFinal {
		cr.Final = res.Final
	}
	return cr, nil
}

// Close releases the worker's engine (pool goroutines).
func (w *Worker) Close() { w.rc.Close() }

// Options configures a grid run.
type Options struct {
	// Workers is the number of worker slots cells fan out over (≤ 0
	// means GOMAXPROCS). The caller's goroutine always participates;
	// EXTRA workers are granted from the process-wide
	// engine.AcquireSlots budget, so grids nesting sharded
	// (pool-parallel) cells never oversubscribe the machine, and a grid
	// granted no slots degrades to serial execution with identical
	// results.
	Workers int
	// KeepFinal retains each cell's final states in its CellResult.
	KeepFinal bool
	// NewProbe, when non-nil, builds one observability probe per worker
	// slot (called lazily with the slot index when the slot first runs a
	// cell). Per-worker probes keep the single-goroutine timer contract;
	// point them at one shared TraceWriter for a combined trace, and read
	// the merged aggregates with Runner.ObsReport.
	NewProbe func(worker int) *obs.Probe
}

// Result is a grid run's outcome: per-cell results in cell order, the
// rendered Table, and the wall-clock total.
type Result struct {
	Cells   []CellResult
	Table   *Table
	Elapsed time.Duration
}

// Runner executes grids on a persistent set of warm workers — one per
// pool slot, created lazily, kept warm across Run calls so repeated
// grids (benchmark iterations, long experiment sessions) stay in steady
// state. Not safe for concurrent use.
type Runner struct {
	opts    Options
	pool    *engine.Pool
	workers []*Worker
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	pool := engine.NewPool(opts.Workers, 1)
	return &Runner{opts: opts, pool: pool, workers: make([]*Worker, pool.Size())}
}

// Run executes every cell of the grid and assembles the results in cell
// order. Cells are distributed over the pool's workers dynamically;
// because each cell's entire outcome is a function of the cell alone,
// the distribution affects wall-clock only — results and Table bytes are
// identical for every worker count. The first error (in cell order)
// fails the run.
func (r *Runner) Run(g *Grid) (*Result, error) {
	//lint:ignore timenow Result.Elapsed is wall-clock reporting for the CLI; results and Table bytes never depend on it
	start := time.Now()
	results := make([]CellResult, len(g.Cells))
	errs := make([]error, len(g.Cells))
	r.pool.DoAll(len(g.Cells), func(worker, i int) {
		w := r.workers[worker]
		if w == nil {
			w = NewWorker()
			w.KeepFinal = r.opts.KeepFinal
			if r.opts.NewProbe != nil {
				w.Probe = r.opts.NewProbe(worker)
			}
			r.workers[worker] = w
		}
		results[i], errs[i] = w.Do(g.Cells[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	//lint:ignore timenow feeds only the reporting-layer Elapsed field
	return &Result{Cells: results, Table: ResultTable(results), Elapsed: time.Since(start)}, nil
}

// ObsReport merges the per-worker observability probes into one
// run-wide report (zero when Options.NewProbe was not set or no cell has
// run). Call between grid runs, not during one.
func (r *Runner) ObsReport() obs.RoundReport {
	var rep obs.RoundReport
	for _, w := range r.workers {
		if w != nil && w.Probe != nil {
			rep = rep.Merge(w.Probe.Report())
		}
	}
	return rep
}

// Close releases every worker engine and the runner's pool.
func (r *Runner) Close() {
	for _, w := range r.workers {
		if w != nil {
			w.Close()
		}
	}
	r.pool.Close()
}

// Run is the one-shot convenience: build a Runner, execute the grid,
// release everything.
func Run(g *Grid, opts Options) (*Result, error) {
	r := NewRunner(opts)
	defer r.Close()
	return r.Run(g)
}
