package sweep

import (
	"fmt"
	"strings"
)

// Table is a structured scenario-matrix result: a header and rows of
// string cells, rendered as CSV (machine consumption) or Markdown
// (EXPERIMENTS.md, cmd/sweep). Tables built by ResultTable contain only
// the deterministic columns — no wall-clock, no allocation counts — so
// their bytes are identical across worker counts and machines; that is
// the property the sweep determinism golden test pins.
type Table struct {
	Header []string
	Rows   [][]string
}

// ResultTable renders per-cell results (in the given order) into the
// canonical scenario-matrix table.
func ResultTable(cells []CellResult) *Table {
	t := &Table{Header: []string{
		"env", "problem", "topology", "n", "dynamics", "mode", "replica", "seed",
		"converged", "rounds", "steps", "messages", "violations",
	}}
	for _, c := range cells {
		dyn := c.Cell.Dyn.Name
		if dyn == "" {
			// Cells built outside Axes.Grid (E15 drives a Worker directly)
			// carry a zero Desc; render it as the none family.
			dyn = "none"
		}
		t.Rows = append(t.Rows, []string{
			c.Cell.Env.Name,
			c.Cell.Problem.Name,
			c.Cell.Topo,
			fmt.Sprint(c.Cell.Graph.N()),
			dyn,
			c.Cell.Mode.String(),
			fmt.Sprint(c.Cell.Replica),
			fmt.Sprint(c.Cell.Opts.Seed),
			fmt.Sprint(c.Converged),
			fmt.Sprint(c.Round),
			fmt.Sprint(c.GroupSteps),
			fmt.Sprint(c.Messages),
			fmt.Sprint(c.Violations),
		})
	}
	return t
}

// CSV renders the table as RFC-4180-plain CSV (no cell this package
// emits contains commas, quotes, or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("|" + strings.Join(sep, "|") + "|\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}
