// Package sweep is the batched scenario-grid runner: it executes every
// cell of a declarative (environment × problem × topology × size ×
// dynamics × mode × seed) grid in one process, on warm engines.
//
// The paper's self-similar framing is what makes this a single subsystem
// rather than a script: every combination of environment, problem,
// topology, and seed is a run of the SAME engine — the algorithms "speed
// up or slow down depending on the resources available" but never change
// shape — so a scenario matrix is just the engine applied pointwise over
// a product of axes. The runner exploits that uniformity for throughput:
//
//   - Warm engines. Each sweep worker owns one engine.RunContext (a
//     persistent worker pool and per-worker O(1)-reseed streams) and one
//     sim.Scratch (state trackers, shard sets, pairwise matchers, group
//     arenas, monitor buffers), handed from cell to cell via sim.RunWith.
//     Steady-state cells therefore re-pay none of the engine set-up that
//     a cold sim.Run performs — BenchmarkSweepGrid and the CI allocation
//     budget pin this.
//
//   - Determinism independent of scheduling. Every cell's run seed (and
//     its initial-state seed) is derived from the grid's base seed and
//     the CELL INDEX via engine.SubSeed FastRand substreams — never from
//     the identity of the worker that happens to execute the cell — and
//     sim.RunWith is bit-identical to sim.Run by the warm-run contract,
//     so a grid's results (and its rendered Table) are byte-identical for
//     every worker count, including fully serial execution. The golden
//     test in sweep_test.go pins this against independent sim.Run calls.
//
//   - Bounded parallelism. Cells fan out on an engine.Pool, whose extra
//     workers come from the process-wide engine.AcquireSlots budget; the
//     sharded, pool-parallel runs INSIDE cells draw from the same budget,
//     so a grid nesting 10⁵-agent sharded cells never oversubscribes the
//     machine (workers × shards stays capped at GOMAXPROCS).
//
// Results stream into a Table (CSV and Markdown emitters) that
// cmd/sweep renders directly and experiment E16 embeds. Axes are
// declared over the env/problems registries (env.Desc, problems.Desc),
// so grids are data, not code.
package sweep

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/dynamics"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/problems"
	"repro/internal/sim"
)

// Topo is a named topology family: a graph constructor parameterized by
// the requested system size. Families with structural constraints
// (hypercube, torus) round the size to the nearest realizable one — the
// cell records the actual agent count of the graph built.
type Topo struct {
	// Name identifies the family in axes and tables.
	Name string
	// New builds the family's graph for (approximately) n agents.
	New func(n int) *graph.Graph
}

// RingTopo, LineTopo, CompleteTopo, StarTopo, TreeTopo are the exact-size
// families.
func RingTopo() Topo     { return Topo{Name: "ring", New: graph.Ring} }
func LineTopo() Topo     { return Topo{Name: "line", New: graph.Line} }
func CompleteTopo() Topo { return Topo{Name: "complete", New: graph.Complete} }
func StarTopo() Topo     { return Topo{Name: "star", New: graph.Star} }
func TreeTopo() Topo     { return Topo{Name: "tree", New: graph.BinaryTree} }

// HypercubeTopo rounds n up to the next power of two.
func HypercubeTopo() Topo {
	return Topo{Name: "hypercube", New: func(n int) *graph.Graph {
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		return graph.Hypercube(d)
	}}
}

// TorusTopo builds the square torus nearest to n agents.
func TorusTopo() Topo {
	return Topo{Name: "torus", New: func(n int) *graph.Graph {
		r := int(math.Round(math.Sqrt(float64(n))))
		if r < 2 {
			r = 2
		}
		return graph.Torus(r, r)
	}}
}

// ParseTopo resolves a topology family by name — the CLI-facing half of
// the topology axis.
func ParseTopo(name string) (Topo, error) {
	all := []Topo{RingTopo(), LineTopo(), CompleteTopo(), StarTopo(), TreeTopo(), HypercubeTopo(), TorusTopo()}
	name = strings.TrimSpace(name)
	for _, t := range all {
		if t.Name == name {
			return t, nil
		}
	}
	known := make([]string, len(all))
	for i, t := range all {
		known[i] = t.Name
	}
	return Topo{}, fmt.Errorf("sweep: unknown topology %q (know %s)", name, strings.Join(known, ", "))
}

// Axes declares a scenario grid: the cartesian product of the listed
// environments, problems, topologies, sizes, dynamics schedules, and
// modes, replicated over Seeds independent seed substreams. Expansion
// (Axes.Grid) is pure — the same Axes always yield the same cells with
// the same derived seeds.
type Axes struct {
	// Envs, Problems, Topos, Sizes are the product axes; each must be
	// non-empty.
	Envs     []env.Desc
	Problems []problems.Desc
	Topos    []Topo
	Sizes    []int
	// Dynamics is the fault-schedule axis (see dynamics.Desc); empty
	// defaults to {dynamics.NoneDesc()} — no dynamics, the pre-axis grid
	// shape (cell indices, and therefore per-cell seeds, are unchanged).
	Dynamics []dynamics.Desc
	// Modes defaults to {sim.ComponentMode} when empty.
	Modes []sim.Mode
	// Seeds is the number of seed replicas per combination (default 1).
	Seeds int
	// BaseSeed is the root of every cell's seed substream (see Cell).
	BaseSeed int64
	// MaxRounds caps each cell (0 = sim.DefaultMaxRounds).
	MaxRounds int
	// Shards, MatchBlocks, ParallelThreshold are forwarded to every
	// cell's sim.Options (zero = auto, as in sim).
	Shards, MatchBlocks, ParallelThreshold int
}

// Cell is one fully resolved grid point: everything an independent
// sim.Run needs to reproduce its result bit for bit.
type Cell struct {
	// Index is the cell's position in grid expansion order; the seed
	// substreams are derived from it.
	Index int
	// Env and Problem are the registry descriptors of the cell's axes.
	Env     env.Desc
	Problem problems.Desc
	// Topo names the topology family; Graph is the instantiated graph
	// (shared between cells of the same family and size).
	Topo  string
	Graph *graph.Graph
	// Dyn is the dynamics-schedule descriptor of the cell's fault axis
	// (zero value and the none family both mean no dynamics); the built
	// schedule itself rides in Opts.Dynamics.
	Dyn dynamics.Desc
	// Mode is the interaction granularity.
	Mode sim.Mode
	// Replica is the cell's index along the seed axis.
	Replica int
	// InitSeed seeds the initial-state draw (Problem.Init); Opts.Seed
	// drives the run itself. Both are engine.SubSeed substreams of the
	// grid's BaseSeed at this cell's index — never functions of worker
	// identity — so results cannot depend on which worker runs the cell.
	InitSeed int64
	// Opts is the exact sim.Options an independent sim.Run would receive.
	Opts sim.Options
}

// Grid is an expanded scenario grid: the cell list in deterministic
// expansion order (environments outermost, then problems, topologies,
// sizes, dynamics, modes, seed replicas innermost).
type Grid struct {
	Cells []Cell
}

// Grid expands the axes into the full cell list. It validates the axes
// and builds each (topology, size) graph exactly once, so cells of the
// same family and size share a graph instance — which is also what lets
// a warm worker reuse its cached pairwise matcher across them.
func (a Axes) Grid() (*Grid, error) {
	switch {
	case len(a.Envs) == 0:
		return nil, errors.New("sweep: no environments")
	case len(a.Problems) == 0:
		return nil, errors.New("sweep: no problems")
	case len(a.Topos) == 0:
		return nil, errors.New("sweep: no topologies")
	case len(a.Sizes) == 0:
		return nil, errors.New("sweep: no sizes")
	}
	for _, n := range a.Sizes {
		if n < 2 {
			return nil, fmt.Errorf("sweep: size %d below the 2-agent minimum", n)
		}
	}
	modes := a.Modes
	if len(modes) == 0 {
		modes = []sim.Mode{sim.ComponentMode}
	}
	dyns := a.Dynamics
	if len(dyns) == 0 {
		dyns = []dynamics.Desc{dynamics.NoneDesc()}
	}
	for _, d := range dyns {
		if d.New == nil {
			return nil, fmt.Errorf("sweep: dynamics descriptor %q has no constructor", d.Name)
		}
	}
	seeds := a.Seeds
	if seeds <= 0 {
		seeds = 1
	}

	type gkey struct {
		topo string
		n    int
	}
	graphs := make(map[gkey]*graph.Graph)
	g := &Grid{}
	idx := 0
	for _, e := range a.Envs {
		for _, p := range a.Problems {
			for _, topo := range a.Topos {
				for _, n := range a.Sizes {
					k := gkey{topo.Name, n}
					if graphs[k] == nil {
						graphs[k] = topo.New(n)
					}
					for _, dyn := range dyns {
						// One immutable schedule per (dynamics, graph) — all
						// per-run state lives in the engine's applier, so the
						// mode/seed cells of a combination share it; built
						// against the cell's actual graph so partition cuts
						// and agent ids resolve correctly.
						sched := dyn.New(graphs[k])
						for _, mode := range modes {
							for rep := 0; rep < seeds; rep++ {
								g.Cells = append(g.Cells, Cell{
									Index:    idx,
									Env:      e,
									Problem:  p,
									Topo:     topo.Name,
									Graph:    graphs[k],
									Dyn:      dyn,
									Mode:     mode,
									Replica:  rep,
									InitSeed: engine.SubSeed(a.BaseSeed, 2*idx+1),
									Opts: sim.Options{
										Seed:              engine.SubSeed(a.BaseSeed, 2*idx),
										Mode:              mode,
										MaxRounds:         a.MaxRounds,
										StopOnConverged:   true,
										Shards:            a.Shards,
										MatchBlocks:       a.MatchBlocks,
										ParallelThreshold: a.ParallelThreshold,
										Dynamics:          sched,
									},
								})
								idx++
							}
						}
					}
				}
			}
		}
	}
	return g, nil
}
