package problems

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

func itemsOf(items ...Item) ms.Multiset[Item] { return ms.New(CompareItems, items...) }

func TestSortFMatchesPaper(t *testing.T) {
	// f({(1,3),(2,5),(3,3),(4,7)}) = {(1,3),(2,3),(3,5),(4,7)}.
	got := SortF().Apply(itemsOf(Item{1, 3}, Item{2, 5}, Item{3, 3}, Item{4, 7}))
	want := itemsOf(Item{1, 3}, Item{2, 3}, Item{3, 5}, Item{4, 7})
	if !got.Equal(want) {
		t.Errorf("f = %v, want %v", got, want)
	}
}

func TestSortFSuperIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eq := core.ExactEqual[Item]()
	gen := func(r *rand.Rand) ms.Multiset[Item] {
		n := 1 + r.Intn(6)
		perm := r.Perm(10)
		vals := r.Perm(20)
		items := make([]Item, n)
		for i := 0; i < n; i++ {
			items[i] = Item{Index: perm[i], Value: vals[i]}
		}
		return itemsOf(items...)
	}
	if v := core.CheckSuperIdempotent(SortF(), eq, gen, gen, 1500, rng); v != nil {
		t.Errorf("sort: %v", v)
	}
}

func TestNewSortingRejectsDuplicates(t *testing.T) {
	if _, err := NewSorting([]int{3, 3}); err == nil {
		t.Error("duplicate values accepted")
	}
}

func TestSortingGroupStepFull(t *testing.T) {
	p, err := NewSorting([]int{30, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	out := p.GroupStep(InitialItems([]int{30, 10, 20}), nil)
	want := []Item{{0, 10}, {1, 20}, {2, 30}}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestSortingGroupStepSubset(t *testing.T) {
	// Group holds only indexes 0 and 2; sorting permutes within the group.
	p, err := NewSorting([]int{30, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	out := p.GroupStep([]Item{{2, 20}, {0, 30}}, nil)
	// Values {20,30} at indexes {0,2}: 20→0, 30→2. Positional: first
	// element was index 2 (gets 30), second was index 0 (gets 20).
	if out[0] != (Item{2, 30}) || out[1] != (Item{0, 20}) {
		t.Errorf("subset step = %v", out)
	}
}

func TestSortingStepsAreDSteps(t *testing.T) {
	vals := []int{9, 4, 7, 1, 8, 2, 6}
	p, err := NewSorting(vals)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	items := InitialItems(vals)
	for trial := 0; trial < 500; trial++ {
		// Random subgroup of 2..n members.
		k := 2 + rng.Intn(len(items)-1)
		sel := rng.Perm(len(items))[:k]
		group := make([]Item, k)
		for i, s := range sel {
			group[i] = items[s]
		}
		after := p.GroupStep(group, rng)
		before := ms.New(p.Cmp(), group...)
		afterM := ms.New(p.Cmp(), after...)
		v := core.CheckDStep(p.F(), p.H(), p.Equal, before, afterM, 0)
		if !v.OK {
			t.Fatalf("sorting step %v→%v: %v", before, afterM, v)
		}
	}
}

func TestSortingAdjacentStepsAreDSteps(t *testing.T) {
	vals := []int{5, 3, 4, 1, 2, 0}
	p, err := NewSorting(vals)
	if err != nil {
		t.Fatal(err)
	}
	p.Adjacent = true
	rng := rand.New(rand.NewSource(3))
	items := InitialItems(vals)
	// Run adjacent swaps to completion, checking each step.
	for steps := 0; steps < 100; steps++ {
		after := p.GroupStep(items, rng)
		before := ms.New(p.Cmp(), items...)
		afterM := ms.New(p.Cmp(), after...)
		v := core.CheckDStep(p.F(), p.H(), p.Equal, before, afterM, 0)
		if !v.OK {
			t.Fatalf("adjacent step %v→%v: %v", before, afterM, v)
		}
		if before.Equal(afterM) {
			// Sorted: verify and stop.
			sorted := SortF().Apply(before)
			if !before.Equal(sorted) {
				t.Fatalf("stuttered while unsorted: %v", before)
			}
			return
		}
		items = after
	}
	t.Fatal("adjacent swaps did not terminate")
}

func TestSortingPairStep(t *testing.T) {
	p, err := NewSorting([]int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	// Out of order: swap.
	a, b := p.PairStep(Item{0, 20}, Item{1, 10}, nil)
	if a != (Item{0, 10}) || b != (Item{1, 20}) {
		t.Errorf("PairStep = %v,%v", a, b)
	}
	// In order: stutter.
	a, b = p.PairStep(Item{0, 10}, Item{1, 20}, nil)
	if a != (Item{0, 10}) || b != (Item{1, 20}) {
		t.Errorf("stutter = %v,%v", a, b)
	}
	// Arguments in reverse index order keep positional identity.
	a, b = p.PairStep(Item{1, 10}, Item{0, 20}, nil)
	if a != (Item{1, 20}) || b != (Item{0, 10}) {
		t.Errorf("reversed = %v,%v", a, b)
	}
}

func TestInversionsH(t *testing.T) {
	h := InversionsH()
	// [7,5,6,4,3,2,1] at indexes 0..6 has 20 inversions (recomputed; the
	// paper's Fig. 1 prints 14 — see EXPERIMENTS.md E1).
	before, after, _, _ := PaperFig1States()
	if got := h.Value(itemsOf(InitialItems(before)...)); got != 20 {
		t.Errorf("h(before) = %g, want 20", got)
	}
	if got := h.Value(itemsOf(InitialItems(after)...)); got != 17 {
		t.Errorf("h(after) = %g, want 17", got)
	}
	if got := h.Value(itemsOf(Item{0, 1}, Item{1, 2})); got != 0 {
		t.Errorf("sorted h = %g", got)
	}
}

// The substance of Fig. 1: the out-of-order-pairs objective violates the
// local-to-global property. Exhaustive search proves no violation exists
// for n ≤ 4 and exhibits one at n = 5.
func TestFig1InversionsViolation(t *testing.T) {
	for n := 3; n <= 4; n++ {
		if v := FindInversionsL2GViolation(n); v != nil {
			t.Errorf("unexpected violation at n=%d: %v", n, v)
		}
	}
	v := FindInversionsL2GViolation(5)
	if v == nil {
		t.Fatal("no violation found at n=5")
	}
	// Independently verify the reported counterexample.
	if v.InvB1 >= v.InvB0 {
		t.Errorf("B did not improve: %v", v)
	}
	if v.InvU1 <= v.InvU0 {
		t.Errorf("union did not worsen: %v", v)
	}
	// And through the Variant interface.
	h := InversionsH()
	b0 := itemsOf(pick(v.Before, v.BIndexes)...)
	b1 := itemsOf(pick(v.After, v.BIndexes)...)
	u0 := itemsOf(InitialItems(v.Before)...)
	u1 := itemsOf(InitialItems(v.After)...)
	if !(h.Value(b1) < h.Value(b0)) {
		t.Errorf("variant disagrees on B: %g vs %g", h.Value(b1), h.Value(b0))
	}
	if !(h.Value(u1) > h.Value(u0)) {
		t.Errorf("variant disagrees on union: %g vs %g", h.Value(u1), h.Value(u0))
	}
	// f is conserved on B (same indexes, same values).
	f := SortF()
	if !f.Apply(b0).Equal(f.Apply(b1)) {
		t.Error("counterexample does not conserve f on B")
	}
}

func pick(values []int, indexes []int) []Item {
	out := make([]Item, len(indexes))
	for i, ix := range indexes {
		out[i] = Item{Index: ix, Value: values[ix]}
	}
	return out
}

// The paper's replacement objective has the property (no violation up to
// n = 5, exhaustively).
func TestDisplacementHasL2G(t *testing.T) {
	for n := 3; n <= 5; n++ {
		if v := VerifyDisplacementL2G(n); v != nil {
			t.Errorf("squared-displacement violated at n=%d: %v", n, v)
		}
	}
}

func TestDisplacementH(t *testing.T) {
	p, err := NewSorting([]int{30, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	h := p.H()
	// ord: 10→0, 20→1, 30→2. State [30,10,20]: (0−2)²+(1−0)²+(2−1)² = 6.
	if got := h.Value(itemsOf(InitialItems([]int{30, 10, 20})...)); got != 6 {
		t.Errorf("h = %g, want 6", got)
	}
	if got := h.Value(itemsOf(InitialItems([]int{10, 20, 30})...)); got != 0 {
		t.Errorf("h(sorted) = %g, want 0", got)
	}
}

func TestSortingVariantL2GRandomized(t *testing.T) {
	// Randomized check of (7) for the squared-displacement variant via
	// the core checker, with sorting-specific step generators.
	vals := []int{0, 1, 2, 3, 4, 5, 6}
	p, err := NewSorting(vals)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	gen := func(r *rand.Rand) (ms.Multiset[Item], ms.Multiset[Item]) {
		k := 2 + r.Intn(4)
		idxs := r.Perm(7)[:k]
		valsPerm := r.Perm(7)[:k]
		group := make([]Item, k)
		for i := range group {
			group[i] = Item{Index: idxs[i], Value: valsPerm[i]}
		}
		after := p.GroupStep(group, r)
		return ms.New(p.Cmp(), group...), ms.New(p.Cmp(), after...)
	}
	if v := core.CheckLocalToGlobal(SortF(), p.H(), p.Equal, gen, gen, 800, 0, rng); v != nil {
		t.Errorf("displacement variant flagged: %v", v)
	}
}
