package problems

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
)

// Desc is a named int-state problem family for scenario sweeps: a
// constructor (parameterized by the system size, which families like max
// need for their value bound) plus the initial-state generator the
// experiments conventionally pair with the family. It is the problem
// half of the registry contract internal/sweep builds grids on — axes
// are declared over names ("min", "gcd"), not hard-coded constructor
// calls.
type Desc struct {
	// Name identifies the family in axes and tables.
	Name string
	// New builds a fresh problem instance for an n-agent system.
	New func(n int) core.Problem[int]
	// Init draws initial agent states for an n-agent system from rng.
	// Generators consume a deterministic amount of the stream for a given
	// n, so cells seeded by substream stay independent.
	Init func(n int, rng *rand.Rand) []int
}

// permInit is the experiments' conventional initial-state draw: n
// distinct values from [0, 4n).
func permInit(n int, rng *rand.Rand) []int { return rng.Perm(4 * n)[:n] }

// MinDesc describes minimum consensus (§4.1).
func MinDesc() Desc {
	return Desc{Name: "min", New: func(int) core.Problem[int] { return NewMin() }, Init: permInit}
}

// MaxDesc describes maximum consensus; the bound 4n covers every value
// permInit can draw.
func MaxDesc() Desc {
	return Desc{Name: "max", New: func(n int) core.Problem[int] { return NewMax(4 * n) }, Init: permInit}
}

// SumDesc describes the sum problem (§4.2). Remember its environment
// obligation: under pairwise gossip it terminates only when any two
// agents can communicate (the complete graph) — sweep cells outside that
// assumption record converged=false, exactly as the theory predicts.
func SumDesc() Desc {
	return Desc{Name: "sum", New: func(int) core.Problem[int] { return NewSum() }, Init: permInit}
}

// GCDDesc describes gcd consensus; initial values are scaled to share a
// factor of 6 so the goal is not trivially 1 (the E6 convention).
func GCDDesc() Desc {
	return Desc{
		Name: "gcd",
		New:  func(int) core.Problem[int] { return NewGCD() },
		Init: func(n int, rng *rand.Rand) []int {
			vals := permInit(n, rng)
			for i := range vals {
				vals[i] = (vals[i] + 1) * 6
			}
			return vals
		},
	}
}

// Catalog returns every registered int-problem family, in stable order.
func Catalog() []Desc { return []Desc{MinDesc(), MaxDesc(), SumDesc(), GCDDesc()} }

// ParseDesc resolves a problem family by name ("min", "max", "sum",
// "gcd") — the CLI-facing half of the registry.
func ParseDesc(name string) (Desc, error) {
	name = strings.TrimSpace(name)
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	known := make([]string, 0, 4)
	for _, d := range Catalog() {
		known = append(known, d.Name)
	}
	return Desc{}, fmt.Errorf("problems: unknown family %q (know %s)", name, strings.Join(known, ", "))
}
