package problems

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	ms "repro/internal/multiset"
)

func hullsOf(states ...HullState) ms.Multiset[HullState] {
	return ms.New(CompareHullStates, states...)
}

func randomPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	return pts
}

func TestHullFConverges(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 2, Y: 2}}
	init := hullsOf(InitialHulls(pts)...)
	got := HullF().Apply(init)
	global := geom.ConvexHull(pts)
	got.ForEach(func(s HullState) {
		if !geom.SamePointSet(s.V, global, 1e-9) {
			t.Errorf("agent hull %v != global %v", s.V, global)
		}
	})
}

// Fig. 3: the convex-hull function is super-idempotent (randomized check
// over random point sets).
func TestFig3HullSuperIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eq := HullStatesEqual(1e-7)
	gen := func(r *rand.Rand) ms.Multiset[HullState] {
		n := 1 + r.Intn(5)
		states := make([]HullState, n)
		for i := range states {
			// Each agent already knows a random set of 1..4 points.
			known := randomPoints(r, 1+r.Intn(4))
			states[i] = HullState{Home: known[0], V: geom.ConvexHull(known)}
		}
		return hullsOf(states...)
	}
	if v := core.CheckSuperIdempotent(HullF(), eq, gen, gen, 400, rng); v != nil {
		t.Errorf("hull flagged: %v", v)
	}
}

// Fig. 2: the naive circumscribing-circle function is NOT super-idempotent.
func TestFig2CircleNotSuperIdempotent(t *testing.T) {
	pts := Fig2Configuration()
	f := CircumcircleNaiveF()
	eq := CircleStatesEqual(1e-6)

	all := InitialCircles(pts)
	x := ms.New(CompareCircleStates, all[0], all[1], all[2]) // B = agents 1–3
	y := ms.New(CompareCircleStates, all[3])                 // C = agent 4

	direct := f.Apply(x.Union(y))
	via := f.Apply(f.Apply(x).Union(y))
	if eq(direct, via) {
		t.Fatalf("Fig. 2 configuration did not separate: direct=%v via=%v", direct, via)
	}
	// Quantify the gap like the figure does (solid vs dashed circle).
	dc := direct.At(0).Est
	vc := via.At(0).Est
	if vc.R <= dc.R {
		t.Errorf("expected the via-local circle to be strictly larger: direct=%v via=%v", dc, vc)
	}
	// And idempotence still holds.
	rng := rand.New(rand.NewSource(2))
	gen := func(r *rand.Rand) ms.Multiset[CircleState] {
		return ms.New(CompareCircleStates, InitialCircles(randomPoints(r, 1+r.Intn(5)))...)
	}
	if v := core.CheckIdempotent(f, eq, gen, 200, rng); v != nil {
		t.Errorf("naive circle not idempotent: %v", v)
	}
}

// Randomized search confirms Fig. 2 violations are common, not a corner
// case.
func TestFig2ViolationsAreCommon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := CircumcircleNaiveF()
	eq := CircleStatesEqual(1e-6)
	gen := func(r *rand.Rand) ms.Multiset[CircleState] {
		return ms.New(CompareCircleStates, InitialCircles(randomPoints(r, 2+r.Intn(3)))...)
	}
	v := core.CheckSuperIdempotent(f, eq, gen, gen, 500, rng)
	if v == nil {
		t.Error("no super-idempotence violation found for the naive circle function")
	}
}

func TestHullStepsAreDSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 8)
	p := NewHull(pts)
	states := InitialHulls(pts)
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(len(states))
		sel := rng.Perm(len(states))[:k]
		group := make([]HullState, k)
		for i, s := range sel {
			group[i] = states[s]
		}
		after := p.GroupStep(group, rng)
		before := ms.New(p.Cmp(), group...)
		afterM := ms.New(p.Cmp(), after...)
		v := core.CheckDStep(p.F(), p.H(), p.Equal, before, afterM, 1e-9)
		if !v.OK {
			t.Fatalf("hull step %v→%v: %v", before, afterM, v)
		}
		// Commit the step for some agents to diversify subsequent trials.
		for i, s := range sel {
			states[s] = after[i]
		}
	}
}

func TestHullVariantDecreasesToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 6)
	p := NewHull(pts)
	h := p.H()
	init := hullsOf(InitialHulls(pts)...)
	goal := HullF().Apply(init)
	if hv := h.Value(goal); hv > 1e-9 {
		t.Errorf("h at goal = %g, want 0", hv)
	}
	if h.Value(init) <= h.Value(goal) {
		t.Error("h(init) not above h(goal)")
	}
}

func TestCircumcircleFromHull(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	p := NewHull(pts)
	goal := p.F().Apply(hullsOf(InitialHulls(pts)...))
	c := Circumcircle(goal.At(0))
	want := geom.Circle{C: geom.Point{X: 1, Y: 1}, R: 1.4142135623730951}
	if !c.Near(want, 1e-6) {
		t.Errorf("circumcircle = %v, want %v", c, want)
	}
}

func TestHullEqualTolerance(t *testing.T) {
	p := NewHull([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	a := hullsOf(HullState{Home: geom.Point{}, V: []geom.Point{{X: 0, Y: 0}}})
	b := hullsOf(HullState{Home: geom.Point{}, V: []geom.Point{{X: 0, Y: 1e-9}}})
	if !p.Equal(a, b) {
		t.Error("tolerance equality too strict")
	}
	c := hullsOf(HullState{Home: geom.Point{}, V: []geom.Point{{X: 0, Y: 1}}})
	if p.Equal(a, c) {
		t.Error("tolerance equality too loose")
	}
	if p.Equal(a, a.Union(b)) {
		t.Error("different cardinalities compared equal")
	}
}

func TestHullPairStep(t *testing.T) {
	p := NewHull([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 3}})
	init := InitialHulls([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 3}})
	a, b := p.PairStep(init[0], init[1], nil)
	wantHull := geom.ConvexHull([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}})
	if !geom.SamePointSet(a.V, wantHull, 1e-9) || !geom.SamePointSet(b.V, wantHull, 1e-9) {
		t.Errorf("PairStep hulls = %v / %v", a.V, b.V)
	}
	if a.Home != init[0].Home || b.Home != init[1].Home {
		t.Error("PairStep changed home coordinates")
	}
}

func TestCompareHullStates(t *testing.T) {
	s1 := HullState{Home: geom.Point{X: 0, Y: 0}, V: []geom.Point{{X: 0, Y: 0}}}
	s2 := HullState{Home: geom.Point{X: 0, Y: 0}, V: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	s3 := HullState{Home: geom.Point{X: 1, Y: 0}, V: []geom.Point{{X: 0, Y: 0}}}
	if CompareHullStates(s1, s1) != 0 {
		t.Error("self-compare nonzero")
	}
	if CompareHullStates(s1, s2) >= 0 {
		t.Error("hull size tiebreak wrong")
	}
	if CompareHullStates(s1, s3) >= 0 {
		t.Error("home order wrong")
	}
	// Same vertex sets in different rotation compare equal.
	s4 := HullState{Home: geom.Point{X: 0, Y: 0}, V: []geom.Point{{X: 1, Y: 1}, {X: 0, Y: 0}}}
	if CompareHullStates(s2, s4) != 0 {
		t.Error("rotation-insensitive compare failed")
	}
}

func TestCompareCircleStates(t *testing.T) {
	c1 := CircleState{Home: geom.Point{X: 0, Y: 0}, Est: geom.Circle{C: geom.Point{X: 0, Y: 0}, R: 1}}
	c2 := CircleState{Home: geom.Point{X: 0, Y: 0}, Est: geom.Circle{C: geom.Point{X: 0, Y: 0}, R: 2}}
	if CompareCircleStates(c1, c1) != 0 || CompareCircleStates(c1, c2) >= 0 || CompareCircleStates(c2, c1) <= 0 {
		t.Error("circle state order wrong")
	}
}
