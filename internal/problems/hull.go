package problems

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	ms "repro/internal/multiset"
)

// HullState is the agent state for the §4.5 convex-hull problem: the
// agent's fixed coordinates plus its current hull estimate Va (a set of
// points, stored as the hull polygon). Initially Va = {(Xa, Ya)}.
type HullState struct {
	Home geom.Point
	V    []geom.Point // convex hull of the points the agent knows, CCW
}

// String renders the state compactly.
func (s HullState) String() string {
	return fmt.Sprintf("agent@%v hull|%d|", s.Home, len(s.V))
}

// CompareHullStates orders hull states canonically (home point, hull size,
// then lexicographic hull vertices). Exact float comparison is fine for a
// canonical order; semantic equality is tolerance-based via Hull.Equal.
func CompareHullStates(a, b HullState) int {
	if c := geom.ComparePoints(a.Home, b.Home); c != 0 {
		return c
	}
	if len(a.V) != len(b.V) {
		return len(a.V) - len(b.V)
	}
	// Compare vertex multisets in canonical order.
	as, bs := canonicalVertices(a.V), canonicalVertices(b.V)
	for i := range as {
		if c := geom.ComparePoints(as[i], bs[i]); c != 0 {
			return c
		}
	}
	return 0
}

func canonicalVertices(v []geom.Point) []geom.Point {
	out := make([]geom.Point, len(v))
	copy(out, v)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && geom.ComparePoints(out[j], out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// HullF is the paper's generalized f: every agent's V becomes the convex
// hull of the union of all points in the V sets of the multiset. It is
// super-idempotent: the hull of all points equals the hull of (hull of a
// subset) ∪ (remaining points) — the geometric argument of Fig. 3.
func HullF() core.Function[HullState] {
	return core.MarkSuperIdempotent[HullState](core.FuncOf("convex-hull", func(x ms.Multiset[HullState]) ms.Multiset[HullState] {
		if x.IsEmpty() {
			return x
		}
		var pts []geom.Point
		x.ForEach(func(s HullState) { pts = append(pts, s.V...) })
		merged := geom.ConvexHull(pts)
		return x.Map(func(s HullState) HullState {
			return HullState{Home: s.Home, V: merged}
		})
	}))
}

// Hull is the §4.5 problem: agents compute the convex hull of all agent
// positions; the circumscribing circle of the point set is then obtained
// from any converged agent's hull via geom.EnclosingCircle. h(S) =
// |A|·P − Σ perimeter(Va) with P the global hull perimeter — summation
// form with a global constant, exactly as the paper defines it; its range
// is the finite set of perimeters of hulls of subsets of the initial
// points, hence well-founded.
type Hull struct {
	// P is the perimeter of the global convex hull (the paper's constant).
	P float64
	// N is the number of agents (the |A| in the variant).
	N int
	// Tol is the geometric tolerance for equality checks.
	Tol float64
}

// NewHull returns the convex-hull problem for agents at the given points.
func NewHull(points []geom.Point) *Hull {
	return &Hull{
		P:   geom.Perimeter(geom.ConvexHull(points)),
		N:   len(points),
		Tol: 1e-7,
	}
}

// Name implements core.Problem.
func (*Hull) Name() string { return "convex-hull" }

// Cmp implements core.Problem.
func (*Hull) Cmp() ms.Cmp[HullState] { return CompareHullStates }

// Requirement implements core.Problem.
func (*Hull) Requirement() core.Requirement { return core.AnyConnected }

// Equal implements core.Problem: same homes and same hulls within Tol,
// compared in canonical order.
func (p *Hull) Equal(a, b ms.Multiset[HullState]) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		sa, sb := a.At(i), b.At(i)
		if !sa.Home.Near(sb.Home, p.Tol) {
			return false
		}
		if !geom.SamePointSet(sa.V, sb.V, p.Tol) {
			return false
		}
	}
	return true
}

// F implements core.Problem.
func (*Hull) F() core.Function[HullState] { return HullF() }

// H implements core.Problem: h(S) = |A|·P − Σ perimeter(Va).
func (p *Hull) H() core.Variant[HullState] {
	total := float64(p.N) * p.P
	return core.VariantOf[HullState]("|A|·P−Σperim", func(x ms.Multiset[HullState]) float64 {
		sum := 0.0
		x.ForEach(func(s HullState) { sum += geom.Perimeter(s.V) })
		return total - sum
	})
}

// GroupStep implements core.Problem: the group merges its hulls; every
// member adopts the merged hull (the paper also allows one-sided updates,
// which PairStep exercises when OneSided is requested via the rng —
// see PairStep).
func (*Hull) GroupStep(states []HullState, _ *rand.Rand) []HullState {
	var pts []geom.Point
	for _, s := range states {
		pts = append(pts, s.V...)
	}
	merged := geom.ConvexHull(pts)
	out := make([]HullState, len(states))
	for i, s := range states {
		out[i] = HullState{Home: s.Home, V: merged}
	}
	return out
}

// PairStep implements core.Problem: both members adopt the merged hull.
// (One-sided updates — an agent updating on message receipt without the
// sender changing, per §4.5 — are also valid D-steps; the asynchronous
// runtime exercises them.)
func (p *Hull) PairStep(a, b HullState, rng *rand.Rand) (HullState, HullState) {
	s := p.GroupStep([]HullState{a, b}, rng)
	return s[0], s[1]
}

// InitialHulls builds the §4.5 initial state: V(0) = {(Xa, Ya)}.
func InitialHulls(points []geom.Point) []HullState {
	out := make([]HullState, len(points))
	for i, pt := range points {
		out[i] = HullState{Home: pt, V: []geom.Point{pt}}
	}
	return out
}

// Circumcircle recovers the paper's original goal from a converged hull
// state: the smallest circle containing all the points.
func Circumcircle(s HullState) geom.Circle { return geom.EnclosingCircle(s.V) }

// --- The naive circle function (Fig. 2 negative example) ---

// CircleState is the agent state for the naive circumscribing-circle
// function: fixed coordinates plus the agent's current circle estimate
// (x, y, r). Initially the estimate is the agent's own position with
// radius 0 — the 5-tuple (Xa, Ya, x, y, r) of §4.5.
type CircleState struct {
	Home geom.Point
	Est  geom.Circle
}

// String renders the state.
func (s CircleState) String() string { return fmt.Sprintf("agent@%v est=%v", s.Home, s.Est) }

// CompareCircleStates orders circle states canonically.
func CompareCircleStates(a, b CircleState) int {
	if c := geom.ComparePoints(a.Home, b.Home); c != 0 {
		return c
	}
	if c := geom.ComparePoints(a.Est.C, b.Est.C); c != 0 {
		return c
	}
	switch {
	case a.Est.R < b.Est.R:
		return -1
	case a.Est.R > b.Est.R:
		return 1
	default:
		return 0
	}
}

// CircumcircleNaiveF is the paper's Fig. 2 function: every estimate
// becomes the smallest circle containing all the estimates in the
// multiset. It is idempotent but NOT super-idempotent — the Fig. 2
// configuration (three points whose circumscribing circle does not
// contain the information needed when a fourth point arrives) is verified
// in tests and by cmd/figures — so the self-similar strategy cannot be
// applied to it; Hull is the paper's working generalization.
func CircumcircleNaiveF() core.Function[CircleState] {
	return core.FuncOf("circumcircle-naive", func(x ms.Multiset[CircleState]) ms.Multiset[CircleState] {
		if x.IsEmpty() {
			return x
		}
		circles := make([]geom.Circle, 0, x.Len())
		x.ForEach(func(s CircleState) { circles = append(circles, s.Est) })
		enc := geom.EnclosingCircleOfCircles(circles)
		return x.Map(func(s CircleState) CircleState {
			return CircleState{Home: s.Home, Est: enc}
		})
	})
}

// InitialCircles builds the Fig. 2 initial state: each agent's estimate
// is a radius-0 circle at its own position.
func InitialCircles(points []geom.Point) []CircleState {
	out := make([]CircleState, len(points))
	for i, pt := range points {
		out[i] = CircleState{Home: pt, Est: geom.Circle{C: pt, R: 0}}
	}
	return out
}

// CircleStatesEqual is the tolerance-aware multiset equality for circle
// states, used by the super-idempotence checkers.
func CircleStatesEqual(tol float64) func(a, b ms.Multiset[CircleState]) bool {
	return func(a, b ms.Multiset[CircleState]) bool {
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			sa, sb := a.At(i), b.At(i)
			if !sa.Home.Near(sb.Home, tol) || !sa.Est.Near(sb.Est, tol) {
				return false
			}
		}
		return true
	}
}

// HullStatesEqual is the tolerance-aware multiset equality for hull
// states, used by the super-idempotence checkers.
func HullStatesEqual(tol float64) func(a, b ms.Multiset[HullState]) bool {
	return func(a, b ms.Multiset[HullState]) bool {
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			sa, sb := a.At(i), b.At(i)
			if !sa.Home.Near(sb.Home, tol) || !geom.SamePointSet(sa.V, sb.V, tol) {
				return false
			}
		}
		return true
	}
}

// Fig2Configuration returns a four-point configuration exhibiting the
// paper's Fig. 2: with B = the first three agents and C = the fourth,
// f(S_B ∪ S_C) ≠ f(f(S_B) ∪ S_C) for the naive circle function. The
// geometry mirrors the figure: three points whose circumscribing circle
// is centered away from a fourth, distant point, so circumscribing the
// circle-plus-point differs from circumscribing the four points.
func Fig2Configuration() []geom.Point {
	return []geom.Point{
		{X: 0, Y: 1},   // 1
		{X: 0, Y: -1},  // 2
		{X: 0.9, Y: 0}, // 3
		{X: 4, Y: 0},   // 4 (far to the right)
	}
}
