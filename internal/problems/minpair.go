package problems

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

// Pair is the agent state for the §4.3 generalized problem: X is the
// agent's estimate of the smallest value, Y its estimate of the second
// smallest. Initially X = Y = the agent's own value.
type Pair struct {
	X, Y int
}

// String renders the pair as (x, y).
func (p Pair) String() string { return fmt.Sprintf("(%d, %d)", p.X, p.Y) }

// ComparePairs orders pairs lexicographically.
func ComparePairs(a, b Pair) int {
	if a.X != b.X {
		return a.X - b.X
	}
	return a.Y - b.Y
}

// minPairOf computes the paper's f on the distinct values appearing as
// first or second elements: the smallest two distinct values (x, y) —
// except when all values are equal, in which case the multiset is
// unchanged (signalled by ok=false).
func minPairOf(values func(yield func(int))) (Pair, bool) {
	const unset = int(^uint(0) >> 1) // max int
	m1, m2 := unset, unset
	values(func(v int) {
		switch {
		case v < m1:
			if m1 < m2 {
				m2 = m1
			}
			m1 = v
		case v > m1 && v < m2:
			m2 = v
		}
	})
	if m2 == unset {
		return Pair{}, false // at most one distinct value
	}
	return Pair{m1, m2}, true
}

// MinPairF is the paper's §4.3 generalized function: every pair becomes
// (x, y) where x and y are the two smallest distinct values appearing in
// the multiset (as first or second elements), except when all values are
// equal, in which case the multiset is unchanged.
// f({(2,5),(3,4),(2,7)}) = {(2,3),(2,3),(2,3)};
// f({(2,2),(2,2)}) = {(2,2),(2,2)}.
func MinPairF() core.Function[Pair] {
	return core.MarkSuperIdempotent[Pair](core.FuncOf("min-pair", func(x ms.Multiset[Pair]) ms.Multiset[Pair] {
		if x.IsEmpty() {
			return x
		}
		target, ok := minPairOf(func(yield func(int)) {
			x.ForEach(func(p Pair) { yield(p.X); yield(p.Y) })
		})
		if !ok {
			return x
		}
		return x.Map(func(Pair) Pair { return target })
	}))
}

// MinPair is the §4.3 problem: compute both the smallest and the second
// smallest value, the super-idempotent generalization of the (not
// super-idempotent) second-smallest function.
//
// DEVIATION FROM THE PAPER: the printed variant h(S) = Σ (xa + ya) does
// not satisfy the paper's own §3.5 requirement that h be minimized,
// subject to f(S) = S*, uniquely at S*. Counterexample (N = 2, initial
// values {2, 5}): S(0) = {(2,2),(5,5)} has h = 14, and S* = f(S(0)) =
// {(2,5),(2,5)} also has h = 14 — so no sequence of strictly-h-decreasing,
// f-conserving steps can reach S*, and the intermediate {(2,2),(2,5)}
// (h = 11) is an inescapable non-goal minimum of h on the constraint
// surface. We therefore use a corrected variant of summation form (8):
//
//	ha(x, y) = K·x + φ(x, y),  φ(x, y) = y if y > x, else C
//
// where C is a strict upper bound on all values and K = N·C + 1. The K·x
// term makes any decrease of a first component dominate; when every first
// component is settled, φ drives second components: an unresolved pair
// (y = x) costs C, more than any resolved estimate, and resolved
// estimates decrease toward the true second-smallest. h is minimized on
// the constraint surface uniquely at S*, and every group step of R below
// strictly decreases it. TestMinPairPaperVariantFlaw machine-checks the
// flaw in the printed variant.
type MinPair struct {
	// N is the number of agents; C is a strict upper bound on values.
	N, C int
}

// NewMinPair returns the min-pair problem for n agents with all values
// < bound.
func NewMinPair(n, bound int) *MinPair { return &MinPair{N: n, C: bound} }

// Name implements core.Problem.
func (*MinPair) Name() string { return "min-pair" }

// Cmp implements core.Problem.
func (*MinPair) Cmp() ms.Cmp[Pair] { return ComparePairs }

// Requirement implements core.Problem.
func (*MinPair) Requirement() core.Requirement { return core.AnyConnected }

// Equal implements core.Problem.
func (*MinPair) Equal(a, b ms.Multiset[Pair]) bool { return a.Equal(b) }

// F implements core.Problem.
func (*MinPair) F() core.Function[Pair] { return MinPairF() }

// H implements core.Problem: the corrected summation-form variant (see
// the type comment).
func (p *MinPair) H() core.Variant[Pair] {
	c := float64(p.C)
	k := float64(p.N)*c + 1
	return core.SummationVariant[Pair]("K·x+φ(x,y)", func(v Pair) float64 {
		phi := c
		if v.Y > v.X {
			phi = float64(v.Y)
		}
		return k*float64(v.X) + phi
	})
}

// PaperH is the variant printed in §4.3, h(S) = Σ (xa + ya), kept so that
// tests and cmd/figures can demonstrate that it fails the §3.5
// requirement.
func (*MinPair) PaperH() core.Variant[Pair] {
	return core.SummationVariant[Pair]("Σ(x+y) [paper]", func(v Pair) float64 {
		return float64(v.X + v.Y)
	})
}

// GroupStep implements core.Problem: every member adopts the group's
// (smallest, second-smallest-distinct) pair; a group with a single
// distinct value stutters.
func (*MinPair) GroupStep(states []Pair, _ *rand.Rand) []Pair {
	out := copyStates(states)
	target, ok := minPairOf(func(yield func(int)) {
		for _, p := range states {
			yield(p.X)
			yield(p.Y)
		}
	})
	if !ok {
		return out
	}
	for i := range out {
		out[i] = target
	}
	return out
}

// PairStep implements core.Problem.
func (p *MinPair) PairStep(a, b Pair, rng *rand.Rand) (Pair, Pair) {
	s := p.GroupStep([]Pair{a, b}, rng)
	return s[0], s[1]
}

// InitialPairs builds the §4.3 initial state: each agent starts with
// (x, x) for its own value x.
func InitialPairs(values []int) []Pair {
	out := make([]Pair, len(values))
	for i, v := range values {
		out[i] = Pair{v, v}
	}
	return out
}
