package problems

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

// KVec is the agent state for the k-smallest generalization: the agent's
// current estimate of the k smallest distinct values, as a non-decreasing
// vector of length k. When fewer than k distinct values are known, the
// vector is padded by repeating the largest known value — so the initial
// state for an agent with value x is (x, x, …, x), matching MinPair's
// (x, x) at k = 2.
type KVec struct {
	Vals []int
}

// String renders the vector.
func (v KVec) String() string {
	parts := make([]string, len(v.Vals))
	for i, x := range v.Vals {
		parts[i] = fmt.Sprint(x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CompareKVecs orders vectors lexicographically (shorter first on ties).
func CompareKVecs(a, b KVec) int {
	for i := 0; i < len(a.Vals) && i < len(b.Vals); i++ {
		if a.Vals[i] != b.Vals[i] {
			return a.Vals[i] - b.Vals[i]
		}
	}
	return len(a.Vals) - len(b.Vals)
}

// kSmallestDistinct returns the first min(k, available) distinct values of
// the stream, padded by repetition of the last one to length k.
func kSmallestDistinct(k int, values func(yield func(int))) KVec {
	var all []int
	values(func(v int) { all = append(all, v) })
	sort.Ints(all)
	out := make([]int, 0, k)
	for _, v := range all {
		if len(out) > 0 && out[len(out)-1] == v {
			continue
		}
		out = append(out, v)
		if len(out) == k {
			break
		}
	}
	for len(out) < k && len(out) > 0 {
		out = append(out, out[len(out)-1])
	}
	return KVec{Vals: out}
}

// KSmallestF is f for the k-smallest problem: every vector becomes the k
// smallest distinct values appearing anywhere in the multiset (padded).
// At k = 2 it coincides with MinPairF. It is super-idempotent by the same
// argument: f keeps the k smallest distinct values, and dropped values
// can never re-enter the first k when more values are added.
func KSmallestF(k int) core.Function[KVec] {
	return core.MarkSuperIdempotent[KVec](core.FuncOf(fmt.Sprintf("%d-smallest", k), func(x ms.Multiset[KVec]) ms.Multiset[KVec] {
		if x.IsEmpty() {
			return x
		}
		target := kSmallestDistinct(k, func(yield func(int)) {
			x.ForEach(func(v KVec) {
				for _, val := range v.Vals {
					yield(val)
				}
			})
		})
		return x.Map(func(KVec) KVec { return target })
	}))
}

// KSmallest is the k-vector generalization of MinPair, the extension the
// paper sketches when noting that computing the k-th smallest value "will
// be even worse" in memory: each agent stores k values instead of one.
// The variant generalizes MinPair's corrected variant level by level:
//
//	ha(vec) = Σ_j K^(k−1−j) · φ_j(vec)
//	φ_0 = vec[0]; for j ≥ 1, φ_j = vec[j] if vec[j] > vec[j−1], else C
//
// with C a strict upper bound on values and K = N·C + 1, so a decrease at
// level j dominates any (impossible, but bounded anyway) churn at deeper
// levels. Levels settle in order: first components converge to the true
// minimum, then second components, and so on — a cascade the k = 2 proof
// in minpair.go generalizes level by level.
type KSmallest struct {
	// K is the number of smallest distinct values to compute.
	K int
	// N is the number of agents; C a strict upper bound on values.
	N, C int
}

// NewKSmallest returns the k-smallest problem for n agents, values < bound.
func NewKSmallest(k, n, bound int) *KSmallest { return &KSmallest{K: k, N: n, C: bound} }

// Name implements core.Problem.
func (p *KSmallest) Name() string { return fmt.Sprintf("%d-smallest", p.K) }

// Cmp implements core.Problem.
func (*KSmallest) Cmp() ms.Cmp[KVec] { return CompareKVecs }

// Requirement implements core.Problem.
func (*KSmallest) Requirement() core.Requirement { return core.AnyConnected }

// Equal implements core.Problem.
func (*KSmallest) Equal(a, b ms.Multiset[KVec]) bool { return a.Equal(b) }

// F implements core.Problem.
func (p *KSmallest) F() core.Function[KVec] { return KSmallestF(p.K) }

// H implements core.Problem (see the type comment).
func (p *KSmallest) H() core.Variant[KVec] {
	c := float64(p.C)
	bigK := float64(p.N)*c + 1
	k := p.K
	return core.SummationVariant[KVec]("cascade", func(v KVec) float64 {
		total := 0.0
		weight := 1.0
		// Accumulate from deepest level up so weight = K^(k−1−j).
		for j := k - 1; j >= 0; j-- {
			phi := c
			switch {
			case j == 0:
				phi = float64(v.Vals[0])
			case v.Vals[j] > v.Vals[j-1]:
				phi = float64(v.Vals[j])
			}
			total += weight * phi
			weight *= bigK
		}
		return total
	})
}

// GroupStep implements core.Problem: every member adopts the group's
// k-smallest-distinct vector; a group already agreeing stutters.
func (p *KSmallest) GroupStep(states []KVec, _ *rand.Rand) []KVec {
	target := kSmallestDistinct(p.K, func(yield func(int)) {
		for _, v := range states {
			for _, val := range v.Vals {
				yield(val)
			}
		}
	})
	out := make([]KVec, len(states))
	for i := range out {
		out[i] = target
	}
	return out
}

// PairStep implements core.Problem.
func (p *KSmallest) PairStep(a, b KVec, rng *rand.Rand) (KVec, KVec) {
	s := p.GroupStep([]KVec{a, b}, rng)
	return s[0], s[1]
}

// InitialKVecs builds the initial state: each agent starts with its own
// value repeated k times.
func InitialKVecs(k int, values []int) []KVec {
	out := make([]KVec, len(values))
	for i, v := range values {
		vals := make([]int, k)
		for j := range vals {
			vals[j] = v
		}
		out[i] = KVec{Vals: vals}
	}
	return out
}
