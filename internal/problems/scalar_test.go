package problems

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

func intGen(maxLen, maxVal int) core.Gen[int] {
	return func(rng *rand.Rand) ms.Multiset[int] {
		n := 1 + rng.Intn(maxLen)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(maxVal)
		}
		return ms.OfInts(vals...)
	}
}

// checkGroupStepIsDStep runs random group steps of an int problem and
// verifies each is a D-step — the paper's first proof obligation turned
// into a test.
func checkGroupStepIsDStep(t *testing.T, p core.Problem[int], genVals func(*rand.Rand) []int, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < trials; i++ {
		vals := genVals(rng)
		after := p.GroupStep(vals, rng)
		if len(after) != len(vals) {
			t.Fatalf("%s: GroupStep changed cardinality %d→%d", p.Name(), len(vals), len(after))
		}
		before := ms.New(p.Cmp(), vals...)
		afterM := ms.New(p.Cmp(), after...)
		v := core.CheckDStep(p.F(), p.H(), p.Equal, before, afterM, 0)
		if !v.OK {
			t.Fatalf("%s: step %v→%v is %v", p.Name(), before, afterM, v)
		}
	}
}

func TestMinMatchesPaper(t *testing.T) {
	got := MinF().Apply(ms.OfInts(3, 5, 3, 7))
	if !got.Equal(ms.OfInts(3, 3, 3, 3)) {
		t.Errorf("f({3,5,3,7}) = %v, want {3,3,3,3}", got)
	}
}

func TestMinGroupStep(t *testing.T) {
	p := NewMin()
	out := p.GroupStep([]int{5, 3, 9}, nil)
	for _, v := range out {
		if v != 3 {
			t.Errorf("GroupStep = %v, want all 3", out)
		}
	}
	// Stutter when already converged.
	out = p.GroupStep([]int{3, 3}, nil)
	if out[0] != 3 || out[1] != 3 {
		t.Errorf("stutter wrong: %v", out)
	}
	// Input not mutated.
	in := []int{7, 2}
	p.GroupStep(in, nil)
	if in[0] != 7 {
		t.Error("GroupStep mutated input")
	}
}

func TestMinPartialStepsAreDSteps(t *testing.T) {
	p := &Min{Partial: true}
	checkGroupStepIsDStep(t, p, func(rng *rand.Rand) []int {
		n := 1 + rng.Intn(6)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(50)
		}
		return vals
	}, 500)
}

func TestMinGreedyStepsAreDSteps(t *testing.T) {
	checkGroupStepIsDStep(t, NewMin(), func(rng *rand.Rand) []int {
		n := 1 + rng.Intn(6)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(50)
		}
		return vals
	}, 500)
}

func TestMinSuperIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := intGen(6, 12)
	if v := core.CheckSuperIdempotent(MinF(), core.ExactEqual[int](), gen, gen, 1000, rng); v != nil {
		t.Errorf("min: %v", v)
	}
	if v := core.ExhaustiveSuperIdempotent(MinF(), core.ExactEqual[int](), []int{0, 1, 2, 3}, ms.OrderedCmp[int](), 4); v != nil {
		t.Errorf("min exhaustive: %v", v)
	}
}

func TestMaxProblem(t *testing.T) {
	p := NewMax(100)
	got := MaxF().Apply(ms.OfInts(3, 5, 3, 7))
	if !got.Equal(ms.OfInts(7, 7, 7, 7)) {
		t.Errorf("max f = %v", got)
	}
	checkGroupStepIsDStep(t, p, func(rng *rand.Rand) []int {
		n := 1 + rng.Intn(6)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(100)
		}
		return vals
	}, 500)
	rng := rand.New(rand.NewSource(2))
	gen := intGen(6, 12)
	if v := core.CheckSuperIdempotent(MaxF(), core.ExactEqual[int](), gen, gen, 1000, rng); v != nil {
		t.Errorf("max: %v", v)
	}
	a, b := p.PairStep(3, 9, rng)
	if a != 9 || b != 9 {
		t.Errorf("PairStep = %d,%d", a, b)
	}
}

func TestSumMatchesPaper(t *testing.T) {
	got := SumF().Apply(ms.OfInts(3, 5, 3, 7))
	if !got.Equal(ms.OfInts(18, 0, 0, 0)) {
		t.Errorf("f({3,5,3,7}) = %v, want {18,0,0,0}", got)
	}
}

func TestSumGroupStep(t *testing.T) {
	p := NewSum()
	out := p.GroupStep([]int{3, 5, 7}, nil)
	// Total consolidates at the position of the max (value 7, position 2).
	if out[0] != 0 || out[1] != 0 || out[2] != 15 {
		t.Errorf("GroupStep = %v", out)
	}
	// At most one non-zero: stutter.
	out = p.GroupStep([]int{0, 9, 0}, nil)
	if out[0] != 0 || out[1] != 9 || out[2] != 0 {
		t.Errorf("stutter = %v", out)
	}
}

func TestSumStepsAreDSteps(t *testing.T) {
	checkGroupStepIsDStep(t, NewSum(), func(rng *rand.Rand) []int {
		n := 1 + rng.Intn(6)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(20)
		}
		return vals
	}, 500)
}

func TestSumPairStepZeroIsStutter(t *testing.T) {
	p := NewSum()
	if a, b := p.PairStep(0, 7, nil); a != 0 || b != 7 {
		t.Errorf("zero pair moved value: %d,%d (zero agents must not act as couriers)", a, b)
	}
	if a, b := p.PairStep(4, 6, nil); a != 10 || b != 0 {
		t.Errorf("PairStep = %d,%d", a, b)
	}
}

func TestSumVariantMatchesPaperForm(t *testing.T) {
	h := NewSum().H()
	// h({3,5,3,7}) = 18² − (9+25+9+49) = 324 − 92 = 232.
	if got := h.Value(ms.OfInts(3, 5, 3, 7)); got != 232 {
		t.Errorf("h = %g, want 232", got)
	}
	// At the goal state h = total² − total² = 0.
	if got := h.Value(ms.OfInts(18, 0, 0, 0)); got != 0 {
		t.Errorf("h(goal) = %g, want 0", got)
	}
}

func TestSumSuperIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen := intGen(5, 10)
	if v := core.CheckSuperIdempotent(SumF(), core.ExactEqual[int](), gen, gen, 1000, rng); v != nil {
		t.Errorf("sum: %v", v)
	}
}

func TestAverageProblem(t *testing.T) {
	p := NewAverage(1e-9)
	got := AverageF().Apply(ms.OfFloats(1, 2, 3, 6))
	want := ms.OfFloats(3, 3, 3, 3)
	if !p.Equal(got, want) {
		t.Errorf("average f = %v", got)
	}
	out := p.GroupStep([]float64{1, 3}, nil)
	if out[0] != 2 || out[1] != 2 {
		t.Errorf("GroupStep = %v", out)
	}
	a, b := p.PairStep(1, 2, nil)
	if a != 1.5 || b != 1.5 {
		t.Errorf("PairStep = %g,%g", a, b)
	}
}

func TestAverageStepsAreDSteps(t *testing.T) {
	p := NewAverage(1e-9)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		n := 2 + rng.Intn(5)
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = rng.Float64() * 10
		}
		before := ms.New(p.Cmp(), vals...)
		after := ms.New(p.Cmp(), p.GroupStep(vals, rng)...)
		v := core.CheckDStep(p.F(), p.H(), p.Equal, before, after, 0)
		if !v.OK {
			t.Fatalf("average step %v→%v: %v", before, after, v)
		}
	}
}

func TestAverageSuperIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gen := func(r *rand.Rand) ms.Multiset[float64] {
		n := 1 + r.Intn(5)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(r.Intn(8)) // grid values: exact means
		}
		return ms.OfFloats(vals...)
	}
	eq := NewAverage(1e-9).Equal
	if v := core.CheckSuperIdempotent(AverageF(), eq, gen, gen, 500, rng); v != nil {
		t.Errorf("average: %v", v)
	}
}

func TestGCDProblem(t *testing.T) {
	p := NewGCD()
	got := GCDF().Apply(ms.OfInts(12, 18, 30))
	if !got.Equal(ms.OfInts(6, 6, 6)) {
		t.Errorf("gcd f = %v", got)
	}
	checkGroupStepIsDStep(t, p, func(rng *rand.Rand) []int {
		n := 1 + rng.Intn(5)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = 1 + rng.Intn(60)
		}
		return vals
	}, 500)
	a, b := p.PairStep(12, 18, nil)
	if a != 6 || b != 6 {
		t.Errorf("PairStep = %d,%d", a, b)
	}
}

func TestGCDSuperIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gen := func(r *rand.Rand) ms.Multiset[int] {
		n := 1 + r.Intn(5)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = 1 + r.Intn(30)
		}
		return ms.OfInts(vals...)
	}
	if v := core.CheckSuperIdempotent(GCDF(), core.ExactEqual[int](), gen, gen, 1000, rng); v != nil {
		t.Errorf("gcd: %v", v)
	}
}

func TestSecondSmallestMatchesPaper(t *testing.T) {
	got := SecondSmallestF().Apply(ms.OfInts(3, 5, 3, 7))
	if !got.Equal(ms.OfInts(5, 5, 5, 5)) {
		t.Errorf("f({3,5,3,7}) = %v, want {5,5,5,5}", got)
	}
	got = SecondSmallestF().Apply(ms.OfInts(4, 4, 4))
	if !got.Equal(ms.OfInts(4, 4, 4)) {
		t.Errorf("all-equal = %v", got)
	}
}

// The paper's §4.3 negative result, both with the printed counterexample
// and by exhaustive refutation.
func TestSecondSmallestNotSuperIdempotent(t *testing.T) {
	f := SecondSmallestF()
	eq := core.ExactEqual[int]()
	// Printed counterexample: X={1,3}, Y={2}.
	x, y := ms.OfInts(1, 3), ms.OfInts(2)
	direct := f.Apply(x.Union(y))
	via := f.Apply(f.Apply(x).Union(y))
	if !direct.Equal(ms.OfInts(2, 2, 2)) || !via.Equal(ms.OfInts(3, 3, 3)) {
		t.Errorf("paper counterexample: f(X∪Y)=%v f(f(X)∪Y)=%v", direct, via)
	}
	// Idempotent…
	rng := rand.New(rand.NewSource(7))
	if v := core.CheckIdempotent(f, eq, intGen(6, 10), 500, rng); v != nil {
		t.Errorf("not idempotent: %v", v)
	}
	// …but not super-idempotent, exhaustively.
	if v := core.ExhaustiveSuperIdempotent(f, eq, []int{0, 1, 2, 3}, ms.OrderedCmp[int](), 3); v == nil {
		t.Error("second-smallest survived exhaustive super-idempotence check")
	}
}

func TestRequirements(t *testing.T) {
	if NewMin().Requirement() != core.AnyConnected {
		t.Error("min requirement")
	}
	if NewSum().Requirement() != core.CompleteGraph {
		t.Error("sum requirement (§4.2: complete graph)")
	}
	if NewGCD().Requirement() != core.AnyConnected {
		t.Error("gcd requirement")
	}
}

func TestVariantsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(6)
		vals := make([]int, n)
		for j := range vals {
			vals[j] = rng.Intn(50)
		}
		m := ms.OfInts(vals...)
		if h := NewMin().H().Value(m); h < 0 {
			t.Fatalf("min h negative: %g on %v", h, m)
		}
		if h := NewSum().H().Value(m); h < 0 {
			t.Fatalf("sum h negative: %g on %v", h, m)
		}
		if h := NewMax(50).H().Value(m); h < 0 {
			t.Fatalf("max h negative: %g on %v", h, m)
		}
	}
}

func TestAverageVariantIsPairwiseSquares(t *testing.T) {
	h := NewAverage(1e-9).H()
	m := ms.OfFloats(1, 3, 5)
	// Σ pairs (a−b)²: (1−3)²+(1−5)²+(3−5)² = 4+16+4 = 24.
	if got := h.Value(m); math.Abs(got-24) > 1e-12 {
		t.Errorf("h = %g, want 24", got)
	}
	if got := h.Value(ms.OfFloats(2, 2, 2)); got != 0 {
		t.Errorf("h(consensus) = %g", got)
	}
}
