package problems

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

// Tuple is the agent state of a product problem: one component per
// underlying problem.
type Tuple[A, B any] struct {
	A A
	B B
}

// String renders the tuple.
func (t Tuple[A, B]) String() string { return fmt.Sprintf("⟨%v, %v⟩", t.A, t.B) }

// Product composes two problems into one: agents carry a state component
// for each, f applies componentwise, and h is the sum of the component
// variants. If both component functions are super-idempotent and preserve
// cardinality, so is the product's — the methodology composes.
//
// The canonical pairing: a multiset of tuples is split into its A- and
// B-multisets; f applies the component functions and re-pairs the results
// in canonical (sorted) order, which is well defined on multisets. For
// consensus-style components (everyone converges to the same component
// value) the pairing is immaterial at the goal; the engine's conservation
// monitor holds throughout because both component multisets are conserved
// and the re-pairing is deterministic.
//
// A Product's Equal is exact (componentwise tolerance is not propagated),
// so compose only exact-equality problems — all the integer problems in
// this package qualify. Range (min and max simultaneously) is the
// classic instance; see NewRange.
type Product[A, B any] struct {
	// PA and PB are the component problems.
	PA core.Problem[A]
	PB core.Problem[B]
}

// NewProduct composes two problems.
func NewProduct[A, B any](pa core.Problem[A], pb core.Problem[B]) *Product[A, B] {
	return &Product[A, B]{PA: pa, PB: pb}
}

// Name implements core.Problem.
func (p *Product[A, B]) Name() string {
	return fmt.Sprintf("%s × %s", p.PA.Name(), p.PB.Name())
}

// Cmp implements core.Problem: lexicographic on components.
func (p *Product[A, B]) Cmp() ms.Cmp[Tuple[A, B]] {
	ca, cb := p.PA.Cmp(), p.PB.Cmp()
	return func(x, y Tuple[A, B]) int {
		if c := ca(x.A, y.A); c != 0 {
			return c
		}
		return cb(x.B, y.B)
	}
}

// Requirement implements core.Problem: the stronger of the two component
// requirements (complete graph dominates, then line, then any-connected).
func (p *Product[A, B]) Requirement() core.Requirement {
	ra, rb := p.PA.Requirement(), p.PB.Requirement()
	if ra == core.CompleteGraph || rb == core.CompleteGraph {
		return core.CompleteGraph
	}
	if ra == core.LineGraph || rb == core.LineGraph {
		return core.LineGraph
	}
	return core.AnyConnected
}

// Equal implements core.Problem (exact, via Cmp).
func (p *Product[A, B]) Equal(a, b ms.Multiset[Tuple[A, B]]) bool { return a.Equal(b) }

// split separates a tuple multiset into its component multisets.
func (p *Product[A, B]) split(x ms.Multiset[Tuple[A, B]]) (ms.Multiset[A], ms.Multiset[B]) {
	as := make([]A, 0, x.Len())
	bs := make([]B, 0, x.Len())
	x.ForEach(func(t Tuple[A, B]) {
		as = append(as, t.A)
		bs = append(bs, t.B)
	})
	return ms.New(p.PA.Cmp(), as...), ms.New(p.PB.Cmp(), bs...)
}

// F implements core.Problem: componentwise f with canonical re-pairing.
func (p *Product[A, B]) F() core.Function[Tuple[A, B]] {
	fa, fb := p.PA.F(), p.PB.F()
	cmp := p.Cmp()
	return core.FuncOf(p.Name(), func(x ms.Multiset[Tuple[A, B]]) ms.Multiset[Tuple[A, B]] {
		if x.IsEmpty() {
			return x
		}
		xa, xb := p.split(x)
		ra, rb := fa.Apply(xa), fb.Apply(xb)
		if ra.Len() != rb.Len() {
			panic("problems: product components changed cardinality differently")
		}
		out := make([]Tuple[A, B], ra.Len())
		for i := range out {
			out[i] = Tuple[A, B]{A: ra.At(i), B: rb.At(i)}
		}
		return ms.New(cmp, out...)
	})
}

// H implements core.Problem: h = hA + hB, which preserves the
// local-to-global property when both components have it.
func (p *Product[A, B]) H() core.Variant[Tuple[A, B]] {
	ha, hb := p.PA.H(), p.PB.H()
	return core.VariantOf[Tuple[A, B]]("h_A+h_B", func(x ms.Multiset[Tuple[A, B]]) float64 {
		xa, xb := p.split(x)
		return ha.Value(xa) + hb.Value(xb)
	})
}

// GroupStep implements core.Problem: componentwise group steps, re-paired
// positionally (each agent keeps its own components).
func (p *Product[A, B]) GroupStep(states []Tuple[A, B], rng *rand.Rand) []Tuple[A, B] {
	as := make([]A, len(states))
	bs := make([]B, len(states))
	for i, t := range states {
		as[i] = t.A
		bs[i] = t.B
	}
	na := p.PA.GroupStep(as, rng)
	nb := p.PB.GroupStep(bs, rng)
	out := make([]Tuple[A, B], len(states))
	for i := range out {
		out[i] = Tuple[A, B]{A: na[i], B: nb[i]}
	}
	return out
}

// PairStep implements core.Problem.
func (p *Product[A, B]) PairStep(a, b Tuple[A, B], rng *rand.Rand) (Tuple[A, B], Tuple[A, B]) {
	a1, a2 := p.PA.PairStep(a.A, b.A, rng)
	b1, b2 := p.PB.PairStep(a.B, b.B, rng)
	return Tuple[A, B]{A: a1, B: b1}, Tuple[A, B]{A: a2, B: b2}
}

// --- Range: min × max ---

// NewRange returns the range problem: every agent learns both the global
// minimum and the global maximum (values strictly below bound) — the
// product of the §4.1 minimum problem and its mirror.
func NewRange(bound int) *Product[int, int] {
	return NewProduct[int, int](NewMin(), NewMax(bound))
}

// InitialTuples pairs each agent's value with itself for a same-typed
// product (e.g. Range: (x, x)).
func InitialTuples(values []int) []Tuple[int, int] {
	out := make([]Tuple[int, int], len(values))
	for i, v := range values {
		out[i] = Tuple[int, int]{A: v, B: v}
	}
	return out
}
