package problems

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

func TestRangeF(t *testing.T) {
	p := NewRange(100)
	init := ms.New(p.Cmp(), InitialTuples([]int{3, 5, 3, 7})...)
	got := p.F().Apply(init)
	want := ms.New(p.Cmp(),
		Tuple[int, int]{3, 7}, Tuple[int, int]{3, 7},
		Tuple[int, int]{3, 7}, Tuple[int, int]{3, 7})
	if !got.Equal(want) {
		t.Errorf("range f = %v, want %v", got, want)
	}
}

func TestProductName(t *testing.T) {
	p := NewRange(10)
	if p.Name() != "minimum × maximum" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestProductRequirement(t *testing.T) {
	if NewRange(10).Requirement() != core.AnyConnected {
		t.Error("range requirement")
	}
	if NewProduct[int, int](NewMin(), NewSum()).Requirement() != core.CompleteGraph {
		t.Error("sum component must dominate")
	}
	sort3, _ := NewSorting([]int{1, 2, 3})
	if NewProduct[int, Item](NewMin(), sort3).Requirement() != core.LineGraph {
		t.Error("line component must dominate any-connected")
	}
}

func TestProductGroupStepIsDStep(t *testing.T) {
	p := NewRange(64)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(6)
		states := make([]Tuple[int, int], n)
		for i := range states {
			lo := rng.Intn(64)
			hi := lo + rng.Intn(64-lo)
			states[i] = Tuple[int, int]{A: lo, B: hi}
		}
		after := p.GroupStep(states, rng)
		before := ms.New(p.Cmp(), states...)
		afterM := ms.New(p.Cmp(), after...)
		v := core.CheckDStep(p.F(), p.H(), p.Equal, before, afterM, 0)
		if !v.OK {
			t.Fatalf("range step %v→%v: %v", before, afterM, v)
		}
	}
}

func TestProductSuperIdempotent(t *testing.T) {
	p := NewRange(16)
	rng := rand.New(rand.NewSource(2))
	gen := func(r *rand.Rand) ms.Multiset[Tuple[int, int]] {
		n := 1 + r.Intn(5)
		states := make([]Tuple[int, int], n)
		for i := range states {
			lo := r.Intn(16)
			states[i] = Tuple[int, int]{A: lo, B: lo + r.Intn(16-lo)}
		}
		return ms.New(p.Cmp(), states...)
	}
	if v := core.CheckSuperIdempotent(p.F(), p.Equal, gen, gen, 1000, rng); v != nil {
		t.Errorf("range: %v", v)
	}
}

func TestProductPairStep(t *testing.T) {
	p := NewRange(100)
	a, b := p.PairStep(Tuple[int, int]{3, 3}, Tuple[int, int]{7, 7}, nil)
	want := Tuple[int, int]{3, 7}
	if a != want || b != want {
		t.Errorf("PairStep = %v,%v", a, b)
	}
}

func TestProductCmpLexicographic(t *testing.T) {
	cmp := NewRange(10).Cmp()
	if cmp(Tuple[int, int]{1, 5}, Tuple[int, int]{1, 5}) != 0 {
		t.Error("equal tuples")
	}
	if cmp(Tuple[int, int]{1, 9}, Tuple[int, int]{2, 0}) >= 0 {
		t.Error("A dominates")
	}
	if cmp(Tuple[int, int]{1, 2}, Tuple[int, int]{1, 3}) >= 0 {
		t.Error("B tiebreak")
	}
}

func TestTupleString(t *testing.T) {
	if got := (Tuple[int, int]{1, 2}).String(); got != "⟨1, 2⟩" {
		t.Errorf("String = %q", got)
	}
}

func TestSetUnionBasics(t *testing.T) {
	s := SetOf(1, 5, 63)
	if !s.Contains(1) || !s.Contains(63) || s.Contains(2) {
		t.Error("membership wrong")
	}
	if s.Card() != 3 {
		t.Errorf("card = %d", s.Card())
	}
	if s.String() != "{1,5,63}" {
		t.Errorf("String = %q", s.String())
	}
	if SetOf().String() != "{}" {
		t.Error("empty set string")
	}
}

func TestSetUnionF(t *testing.T) {
	p := NewSetUnion()
	init := ms.New(p.Cmp(), SetOf(0, 1), SetOf(2), SetOf(1, 3))
	got := p.F().Apply(init)
	u := SetOf(0, 1, 2, 3)
	got.ForEach(func(s Set) {
		if s != u {
			t.Errorf("element %v, want %v", s, u)
		}
	})
}

func TestSetUnionSuperIdempotent(t *testing.T) {
	p := NewSetUnion()
	rng := rand.New(rand.NewSource(3))
	gen := func(r *rand.Rand) ms.Multiset[Set] {
		n := 1 + r.Intn(5)
		ss := make([]Set, n)
		for i := range ss {
			ss[i] = Set(r.Uint64() & 0xFF)
		}
		return ms.New(p.Cmp(), ss...)
	}
	if v := core.CheckSuperIdempotent(p.F(), p.Equal, gen, gen, 1000, rng); v != nil {
		t.Errorf("set-union: %v", v)
	}
}

func TestSetUnionStepsAreDSteps(t *testing.T) {
	p := NewSetUnion()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(6)
		states := make([]Set, n)
		for i := range states {
			states[i] = Set(rng.Uint64() & 0xFFFF)
		}
		after := p.GroupStep(states, rng)
		before := ms.New(p.Cmp(), states...)
		afterM := ms.New(p.Cmp(), after...)
		v := core.CheckDStep(p.F(), p.H(), p.Equal, before, afterM, 0)
		if !v.OK {
			t.Fatalf("set-union step %v→%v: %v", before, afterM, v)
		}
	}
	a, b := p.PairStep(SetOf(1), SetOf(2), nil)
	if a != SetOf(1, 2) || b != SetOf(1, 2) {
		t.Errorf("PairStep = %v,%v", a, b)
	}
}

// Median: the designer's first attempt — idempotent but refuted by the
// super-idempotence checkers, exactly like second-smallest.
func TestMedianNotSuperIdempotent(t *testing.T) {
	f := MedianF()
	eq := core.ExactEqual[int]()
	rng := rand.New(rand.NewSource(5))
	gen := func(r *rand.Rand) ms.Multiset[int] {
		n := 1 + r.Intn(6)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = r.Intn(9)
		}
		return ms.OfInts(vals...)
	}
	if v := core.CheckIdempotent(f, eq, gen, 500, rng); v != nil {
		t.Errorf("median not idempotent: %v", v)
	}
	v := core.ExhaustiveSuperIdempotent(f, eq, []int{0, 1, 2, 3}, ms.OrderedCmp[int](), 3)
	if v == nil {
		t.Fatal("median survived the super-idempotence check")
	}
	// The counterexample must be genuine.
	direct := f.Apply(v.X.Union(v.Y))
	via := f.Apply(f.Apply(v.X).Union(v.Y))
	if direct.Equal(via) {
		t.Errorf("reported counterexample is not one: %v", v)
	}
}

func TestMedianValue(t *testing.T) {
	got := MedianF().Apply(ms.OfInts(5, 1, 9))
	if !got.Equal(ms.OfInts(5, 5, 5)) {
		t.Errorf("median = %v", got)
	}
	// Even cardinality: lower median.
	got = MedianF().Apply(ms.OfInts(1, 2, 3, 4))
	if !got.Equal(ms.OfInts(2, 2, 2, 2)) {
		t.Errorf("lower median = %v", got)
	}
}
