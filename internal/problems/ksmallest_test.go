package problems

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

func kvecsOf(vs ...KVec) ms.Multiset[KVec] { return ms.New(CompareKVecs, vs...) }

func kv(vals ...int) KVec { return KVec{Vals: vals} }

func TestKSmallestFBasic(t *testing.T) {
	f := KSmallestF(3)
	got := f.Apply(kvecsOf(InitialKVecs(3, []int{5, 2, 9, 2, 7})...))
	want := kvecsOf(kv(2, 5, 7), kv(2, 5, 7), kv(2, 5, 7), kv(2, 5, 7), kv(2, 5, 7))
	if !got.Equal(want) {
		t.Errorf("f = %v, want %v", got, want)
	}
}

func TestKSmallestPadding(t *testing.T) {
	f := KSmallestF(3)
	// Only two distinct values: pad with the larger.
	got := f.Apply(kvecsOf(kv(4, 4, 4), kv(9, 9, 9)))
	want := kvecsOf(kv(4, 9, 9), kv(4, 9, 9))
	if !got.Equal(want) {
		t.Errorf("padded f = %v, want %v", got, want)
	}
	// Single distinct value: unchanged.
	same := kvecsOf(kv(4, 4, 4), kv(4, 4, 4))
	if !f.Apply(same).Equal(same) {
		t.Errorf("all-equal changed: %v", f.Apply(same))
	}
}

func TestKSmallestMatchesMinPairAtK2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fk := KSmallestF(2)
	fp := MinPairF()
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(10)
		}
		gotK := fk.Apply(kvecsOf(InitialKVecs(2, vals)...))
		gotP := fp.Apply(ms.New(ComparePairs, InitialPairs(vals)...))
		for i := 0; i < gotK.Len(); i++ {
			kvv := gotK.At(i)
			pv := gotP.At(i)
			if kvv.Vals[0] != pv.X || kvv.Vals[1] != pv.Y {
				t.Fatalf("trial %d: k=2 %v disagrees with min-pair %v (vals %v)", trial, kvv, pv, vals)
			}
		}
	}
}

func kvecGen(k, maxLen, maxVal int) core.Gen[KVec] {
	return func(rng *rand.Rand) ms.Multiset[KVec] {
		n := 1 + rng.Intn(maxLen)
		vs := make([]KVec, n)
		for i := range vs {
			// Draw a plausible estimate: sorted distinct prefix + padding.
			vals := make([]int, 0, k)
			v := rng.Intn(maxVal)
			vals = append(vals, v)
			for len(vals) < k {
				if rng.Intn(2) == 0 {
					v += 1 + rng.Intn(3)
				}
				vals = append(vals, v)
			}
			vs[i] = KVec{Vals: vals}
		}
		return kvecsOf(vs...)
	}
}

func TestKSmallestSuperIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 3, 4} {
		eq := core.ExactEqual[KVec]()
		gen := kvecGen(k, 5, 10)
		if v := core.CheckSuperIdempotent(KSmallestF(k), eq, gen, gen, 800, rng); v != nil {
			t.Errorf("k=%d: %v", k, v)
		}
	}
}

func TestKSmallestStepsAreDSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{2, 3} {
		// kvecGen can exceed its maxVal by 3 per level when padding, so
		// the bound C (a strict upper bound on all values) must cover it.
		p := NewKSmallest(k, 8, 16+3*k)
		gen := kvecGen(k, 6, 16)
		for i := 0; i < 500; i++ {
			before := gen(rng)
			states := before.Elements()
			after := ms.New(p.Cmp(), p.GroupStep(states, rng)...)
			v := core.CheckDStep(p.F(), p.H(), p.Equal, before, after, 0)
			if !v.OK {
				t.Fatalf("k=%d step %v→%v: %v", k, before, after, v)
			}
		}
	}
}

func TestKSmallestPairStep(t *testing.T) {
	p := NewKSmallest(3, 4, 10)
	a, b := p.PairStep(kv(2, 2, 2), kv(5, 7, 7), nil)
	want := kv(2, 5, 7)
	if CompareKVecs(a, want) != 0 || CompareKVecs(b, want) != 0 {
		t.Errorf("PairStep = %v,%v want %v", a, b, want)
	}
}

func TestCompareKVecs(t *testing.T) {
	if CompareKVecs(kv(1, 2), kv(1, 2)) != 0 {
		t.Error("equal vecs")
	}
	if CompareKVecs(kv(1, 2), kv(1, 3)) >= 0 {
		t.Error("lex order wrong")
	}
	if CompareKVecs(kv(1), kv(1, 0)) >= 0 {
		t.Error("length tiebreak wrong")
	}
}

func TestInitialKVecs(t *testing.T) {
	vs := InitialKVecs(3, []int{4, 7})
	if CompareKVecs(vs[0], kv(4, 4, 4)) != 0 || CompareKVecs(vs[1], kv(7, 7, 7)) != 0 {
		t.Errorf("InitialKVecs = %v", vs)
	}
}

func TestKVecString(t *testing.T) {
	if got := kv(1, 2).String(); got != "(1, 2)" {
		t.Errorf("String = %q", got)
	}
}
