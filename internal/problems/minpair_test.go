package problems

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

func pairsOf(pairs ...Pair) ms.Multiset[Pair] { return ms.New(ComparePairs, pairs...) }

func TestMinPairFMatchesPaper(t *testing.T) {
	f := MinPairF()
	// f({(2,5),(3,4),(2,7)}) = {(2,3),(2,3),(2,3)}.
	got := f.Apply(pairsOf(Pair{2, 5}, Pair{3, 4}, Pair{2, 7}))
	want := pairsOf(Pair{2, 3}, Pair{2, 3}, Pair{2, 3})
	if !got.Equal(want) {
		t.Errorf("f = %v, want %v", got, want)
	}
	// f({(2,2),(2,2)}) = {(2,2),(2,2)} (all values equal: unchanged).
	same := pairsOf(Pair{2, 2}, Pair{2, 2})
	if !f.Apply(same).Equal(same) {
		t.Errorf("all-equal case changed: %v", f.Apply(same))
	}
}

func TestMinPairFComputesSecondSmallest(t *testing.T) {
	// End-to-end: initial (x,x) pairs for values {3,5,3,7}; the second
	// component of the fixpoint is the second smallest, 5.
	init := pairsOf(InitialPairs([]int{3, 5, 3, 7})...)
	got := MinPairF().Apply(init)
	want := pairsOf(Pair{3, 5}, Pair{3, 5}, Pair{3, 5}, Pair{3, 5})
	if !got.Equal(want) {
		t.Errorf("f(init) = %v, want %v", got, want)
	}
}

func pairGen(maxLen, maxVal int) core.Gen[Pair] {
	return func(rng *rand.Rand) ms.Multiset[Pair] {
		n := 1 + rng.Intn(maxLen)
		ps := make([]Pair, n)
		for i := range ps {
			x := rng.Intn(maxVal)
			y := x
			if rng.Intn(2) == 0 {
				y = x + rng.Intn(maxVal-x)
			}
			ps[i] = Pair{x, y}
		}
		return pairsOf(ps...)
	}
}

func TestMinPairSuperIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eq := core.ExactEqual[Pair]()
	gen := pairGen(5, 8)
	if v := core.CheckSuperIdempotent(MinPairF(), eq, gen, gen, 2000, rng); v != nil {
		t.Errorf("min-pair: %v", v)
	}
	// Exhaustive over a small pair domain.
	var domain []Pair
	for x := 0; x < 3; x++ {
		for y := x; y < 3; y++ {
			domain = append(domain, Pair{x, y})
		}
	}
	if v := core.ExhaustiveSuperIdempotent(MinPairF(), eq, domain, ComparePairs, 3); v != nil {
		t.Errorf("min-pair exhaustive: %v", v)
	}
}

func TestMinPairStepsAreDSteps(t *testing.T) {
	p := NewMinPair(8, 20)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		n := 1 + rng.Intn(6)
		states := make([]Pair, n)
		for j := range states {
			x := rng.Intn(20)
			y := x
			switch rng.Intn(3) {
			case 0:
				y = x + rng.Intn(20-x)
			}
			states[j] = Pair{x, y}
		}
		before := ms.New(p.Cmp(), states...)
		after := ms.New(p.Cmp(), p.GroupStep(states, rng)...)
		v := core.CheckDStep(p.F(), p.H(), p.Equal, before, after, 0)
		if !v.OK {
			t.Fatalf("min-pair step %v→%v: %v", before, after, v)
		}
	}
}

// TestMinPairPaperVariantFlaw machine-checks the deviation documented in
// minpair.go: the variant printed in §4.3, h(S) = Σ(xa+ya), assigns the
// same value to S(0) = {(2,2),(5,5)} and to S* = f(S(0)) = {(2,5),(2,5)},
// violating the paper's own §3.5 requirement
// (f(S)=S* ∧ S≠S*) ⇒ h(S) > h(S*), so the natural group step is not a
// D-step under it. The corrected variant used by this package satisfies
// the requirement on the same instance.
func TestMinPairPaperVariantFlaw(t *testing.T) {
	p := NewMinPair(2, 6)
	s0 := pairsOf(Pair{2, 2}, Pair{5, 5})
	target := MinPairF().Apply(s0)
	if !target.Equal(pairsOf(Pair{2, 5}, Pair{2, 5})) {
		t.Fatalf("target = %v", target)
	}

	paperH := p.PaperH()
	if paperH.Value(s0) != paperH.Value(target) {
		t.Fatalf("expected the printed variant to tie: h(S0)=%g h(S*)=%g",
			paperH.Value(s0), paperH.Value(target))
	}
	// Under the printed variant the natural full step is NOT a D-step.
	v := core.CheckDStep(p.F(), paperH, p.Equal, s0, target, 0)
	if v.OK {
		t.Error("printed variant unexpectedly accepts the step")
	}
	// And the trap state has strictly smaller printed-h than the goal.
	trap := pairsOf(Pair{2, 2}, Pair{2, 5})
	if !MinPairF().Apply(trap).Equal(target) {
		t.Fatal("trap is not on the constraint surface")
	}
	if paperH.Value(trap) >= paperH.Value(target) {
		t.Errorf("trap h=%g not below goal h=%g under printed variant",
			paperH.Value(trap), paperH.Value(target))
	}

	// The corrected variant repairs both defects.
	h := p.H()
	if h.Value(s0) <= h.Value(target) {
		t.Errorf("corrected variant: h(S0)=%g not above h(S*)=%g", h.Value(s0), h.Value(target))
	}
	if h.Value(trap) <= h.Value(target) {
		t.Errorf("corrected variant: trap h=%g not above goal h=%g", h.Value(trap), h.Value(target))
	}
	if v := core.CheckDStep(p.F(), h, p.Equal, s0, target, 0); !v.OK {
		t.Errorf("corrected variant rejects the natural step: %v", v)
	}
}

// The corrected variant is minimized uniquely at S* on the constraint
// surface, checked exhaustively for a small instance.
func TestMinPairCorrectedVariantMinimalAtGoal(t *testing.T) {
	p := NewMinPair(3, 4)
	f := MinPairF()
	h := p.H()
	target := f.Apply(pairsOf(InitialPairs([]int{1, 3, 2})...)) // (1,2)×3
	hGoal := h.Value(target)
	var domain []Pair
	for x := 0; x < 4; x++ {
		for y := x; y < 4; y++ {
			domain = append(domain, Pair{x, y})
		}
	}
	core.EnumMultisets(domain, ComparePairs, 3, 3, func(s ms.Multiset[Pair]) bool {
		if !f.Apply(s).Equal(target) || s.Equal(target) {
			return true
		}
		if h.Value(s) <= hGoal {
			t.Errorf("state %v on constraint surface has h=%g ≤ h(S*)=%g", s, h.Value(s), hGoal)
			return false
		}
		return true
	})
}

func TestMinPairPairStep(t *testing.T) {
	p := NewMinPair(4, 10)
	a, b := p.PairStep(Pair{2, 2}, Pair{5, 5}, nil)
	if a != (Pair{2, 5}) || b != (Pair{2, 5}) {
		t.Errorf("PairStep = %v,%v", a, b)
	}
	// Single distinct value: stutter.
	a, b = p.PairStep(Pair{3, 3}, Pair{3, 3}, nil)
	if a != (Pair{3, 3}) || b != (Pair{3, 3}) {
		t.Errorf("stutter = %v,%v", a, b)
	}
}

func TestInitialPairs(t *testing.T) {
	ps := InitialPairs([]int{4, 7})
	if ps[0] != (Pair{4, 4}) || ps[1] != (Pair{7, 7}) {
		t.Errorf("InitialPairs = %v", ps)
	}
}

func TestComparePairs(t *testing.T) {
	if ComparePairs(Pair{1, 2}, Pair{1, 2}) != 0 {
		t.Error("equal pairs")
	}
	if ComparePairs(Pair{1, 9}, Pair{2, 0}) >= 0 {
		t.Error("x dominates")
	}
	if ComparePairs(Pair{1, 2}, Pair{1, 3}) >= 0 {
		t.Error("y tiebreak")
	}
}
