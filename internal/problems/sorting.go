package problems

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

// Item is the agent state for the §4.4 sorting problem: an index in the
// distributed array and the value currently held at that index. Indexes
// are distinct and fixed; a group step permutes the values of the group
// among the group's indexes.
type Item struct {
	Index, Value int
}

// String renders the item as index:value.
func (it Item) String() string { return fmt.Sprintf("%d:%d", it.Index, it.Value) }

// CompareItems orders items by index (indexes are unique within a state).
func CompareItems(a, b Item) int {
	if a.Index != b.Index {
		return a.Index - b.Index
	}
	return a.Value - b.Value
}

// SortF is the paper's f for sorting: the unique multiset with the same
// indexes and the same values in which values are non-decreasing along
// increasing indexes. f({(1,3),(2,5),(3,3),(4,7)}) =
// {(1,3),(2,3),(3,5),(4,7)}. It is super-idempotent: f(X) differs from X
// by a permutation of values w.r.t. indexes, and sorting after a
// permutation yields the same sorted array.
func SortF() core.Function[Item] {
	return core.MarkSuperIdempotent[Item](core.FuncOf("sort", func(x ms.Multiset[Item]) ms.Multiset[Item] {
		items := x.Elements()
		idx := make([]int, len(items))
		vals := make([]int, len(items))
		for i, it := range items {
			idx[i] = it.Index
			vals[i] = it.Value
		}
		sort.Ints(idx)
		sort.Ints(vals)
		out := make([]Item, len(items))
		for i := range out {
			out[i] = Item{idx[i], vals[i]}
		}
		return ms.New(CompareItems, out...)
	}))
}

// InversionsH is the Fig. 1 objective: the number of out-of-order pairs,
// h(S) = |{(a,b) ∈ A×A : ia < ib ∧ xb ≺ xa}|. Its range is well-founded,
// but it does NOT have the local-to-global property (10) — see
// FindInversionsL2GViolation, which exhibits a machine-checked
// counterexample, reproducing the content of the paper's Fig. 1.
func InversionsH() core.Variant[Item] {
	return core.VariantOf[Item]("out-of-order pairs", func(x ms.Multiset[Item]) float64 {
		items := x.Elements()
		count := 0
		for i := 0; i < len(items); i++ {
			for j := 0; j < len(items); j++ {
				if items[i].Index < items[j].Index && items[j].Value < items[i].Value {
					count++
				}
			}
		}
		return float64(count)
	})
}

// DisplacementH is the paper's corrected objective:
// h(S) = Σ (ia − ord(xa))², the sum of squared distances between each
// value's current and desired array position. ord maps a value to its
// index in the globally sorted array; it is fixed per problem instance
// (the paper assumes consecutive indexes and distinct values). This
// variant has the summation form of (8), so relation D satisfies the
// local-to-global obligation.
func DisplacementH(ord map[int]int) core.Variant[Item] {
	return core.SummationVariant[Item]("Σ(i−ord(x))²", func(it Item) float64 {
		d := float64(it.Index - ord[it.Value])
		return d * d
	})
}

// Sorting is the §4.4 problem: sort a distributed array in non-decreasing
// order, one (index, value) pair per agent. The environment obligation is
// satisfied by the linear graph over agents in index order: adjacent
// swaps suffice.
type Sorting struct {
	ord map[int]int
	// Adjacent, when true, restricts GroupStep to a single adjacent-pair
	// swap per step (classic distributed bubble sort, the slowest valid
	// refinement); otherwise the group fully sorts its own sub-array.
	Adjacent bool
}

// NewSorting returns the sorting problem for the given initial values,
// which must be distinct (the paper's simplifying assumption); indexes
// are 0..len(values)−1 and ord is derived from the sorted order.
func NewSorting(values []int) (*Sorting, error) {
	sorted := make([]int, len(values))
	copy(sorted, values)
	sort.Ints(sorted)
	ord := make(map[int]int, len(sorted))
	for i, v := range sorted {
		if _, dup := ord[v]; dup {
			return nil, fmt.Errorf("sorting: duplicate value %d (the paper assumes distinct values)", v)
		}
		ord[v] = i
	}
	return &Sorting{ord: ord}, nil
}

// Name implements core.Problem.
func (p *Sorting) Name() string {
	if p.Adjacent {
		return "sorting (adjacent swaps)"
	}
	return "sorting"
}

// Cmp implements core.Problem.
func (*Sorting) Cmp() ms.Cmp[Item] { return CompareItems }

// Requirement implements core.Problem.
func (*Sorting) Requirement() core.Requirement { return core.LineGraph }

// Equal implements core.Problem.
func (*Sorting) Equal(a, b ms.Multiset[Item]) bool { return a.Equal(b) }

// F implements core.Problem.
func (*Sorting) F() core.Function[Item] { return SortF() }

// H implements core.Problem: the squared-displacement variant.
func (p *Sorting) H() core.Variant[Item] { return DisplacementH(p.ord) }

// BadH returns the Fig. 1 out-of-order-pairs variant for this instance.
func (*Sorting) BadH() core.Variant[Item] { return InversionsH() }

// GroupStep implements core.Problem: sort the group's values among the
// group's indexes (or, in Adjacent mode, swap one out-of-order pair of
// index-adjacent members).
func (p *Sorting) GroupStep(states []Item, rng *rand.Rand) []Item {
	out := copyStates(states)
	if p.Adjacent {
		// Find out-of-order pairs among members adjacent in index order
		// within the group and swap one at random.
		order := make([]int, len(out))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return out[order[a]].Index < out[order[b]].Index })
		var swappable [][2]int
		for k := 0; k+1 < len(order); k++ {
			a, b := order[k], order[k+1]
			if out[a].Value > out[b].Value {
				swappable = append(swappable, [2]int{a, b})
			}
		}
		if len(swappable) == 0 {
			return out
		}
		pick := swappable[0]
		if rng != nil {
			pick = swappable[rng.Intn(len(swappable))]
		}
		out[pick[0]].Value, out[pick[1]].Value = out[pick[1]].Value, out[pick[0]].Value
		return out
	}
	idx := make([]int, len(out))
	vals := make([]int, len(out))
	for i, it := range out {
		idx[i] = it.Index
		vals[i] = it.Value
	}
	sort.Ints(idx)
	sort.Ints(vals)
	// Reassign: i-th smallest value to i-th smallest index; then put each
	// item back at its original position in the slice (positional
	// semantics: position i still belongs to the agent whose index was
	// states[i].Index).
	assigned := make(map[int]int, len(out))
	for i := range idx {
		assigned[idx[i]] = vals[i]
	}
	for i := range out {
		out[i].Value = assigned[out[i].Index]
	}
	return out
}

// PairStep implements core.Problem: swap values when out of order.
func (*Sorting) PairStep(a, b Item, _ *rand.Rand) (Item, Item) {
	lo, hi := a, b
	if b.Index < a.Index {
		lo, hi = b, a
	}
	if lo.Value > hi.Value {
		lo.Value, hi.Value = hi.Value, lo.Value
	}
	if a.Index == lo.Index {
		return lo, hi
	}
	return hi, lo
}

// InitialItems builds the initial sorting state: agent i holds index i
// and values[i].
func InitialItems(values []int) []Item {
	out := make([]Item, len(values))
	for i, v := range values {
		out[i] = Item{Index: i, Value: v}
	}
	return out
}

// --- Fig. 1 reproduction: the invalid objective ---

// L2GSortViolation is a concrete sorting counterexample to the
// local-to-global property for the out-of-order-pairs objective: group B
// takes a step that strictly decreases B's inversion count while C
// stutters, yet the inversion count of B ∪ C strictly increases.
type L2GSortViolation struct {
	// N is the array size; values are a permutation of 0..N−1.
	N int
	// BIndexes and CIndexes partition the indexes.
	BIndexes, CIndexes []int
	// Before and After are the full arrays (value at position i).
	Before, After []int
	// InvB0, InvB1 are B's inversion counts before/after; InvU0, InvU1
	// the union's.
	InvB0, InvB1, InvU0, InvU1 int
}

// String summarizes the violation.
func (v *L2GSortViolation) String() string {
	return fmt.Sprintf("B=%v C=%v: %v→%v, inv(B) %d→%d (improves), inv(B∪C) %d→%d (worsens)",
		v.BIndexes, v.CIndexes, v.Before, v.After, v.InvB0, v.InvB1, v.InvU0, v.InvU1)
}

func inversionsOf(indexes, values []int) int {
	count := 0
	for i := range indexes {
		for j := range indexes {
			if indexes[i] < indexes[j] && values[j] < values[i] {
				count++
			}
		}
	}
	return count
}

// FindInversionsL2GViolation exhaustively searches arrays of size n
// (values = permutations of 0..n−1) for a violation of the
// local-to-global property (10) by the out-of-order-pairs objective, with
// group C stuttering. It returns nil when none exists at that size — the
// search proves none exists for n ≤ 4 and finds one at n = 5, which is
// the machine-checked substance of the paper's Fig. 1. (The specific
// example printed in the paper, [7,5,6,4,3,2,1] → [6,5,7,3,4,1,2] with
// h values 14/10/15/9, does not match the stated definition of h under
// our arithmetic — see EXPERIMENTS.md E1 — but the figure's claim is
// correct, as this search demonstrates.)
func FindInversionsL2GViolation(n int) *L2GSortViolation {
	perms := permutations(n)
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		var bIdx, cIdx []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				bIdx = append(bIdx, i)
			} else {
				cIdx = append(cIdx, i)
			}
		}
		if len(bIdx) < 2 {
			continue
		}
		for _, valPerm := range perms {
			bVals := make([]int, len(bIdx))
			for i, ix := range bIdx {
				bVals[i] = valPerm[ix]
			}
			invB0 := inversionsOf(bIdx, bVals)
			if invB0 == 0 {
				continue
			}
			invU0 := inversionsOf(identity(n), valPerm)
			for _, sigma := range permutations(len(bIdx)) {
				nb := make([]int, len(bIdx))
				for i, s := range sigma {
					nb[i] = bVals[s]
				}
				invB1 := inversionsOf(bIdx, nb)
				if invB1 >= invB0 {
					continue
				}
				after := make([]int, n)
				copy(after, valPerm)
				for i, ix := range bIdx {
					after[ix] = nb[i]
				}
				invU1 := inversionsOf(identity(n), after)
				if invU1 > invU0 {
					return &L2GSortViolation{
						N: n, BIndexes: bIdx, CIndexes: cIdx,
						Before: valPerm, After: after,
						InvB0: invB0, InvB1: invB1, InvU0: invU0, InvU1: invU1,
					}
				}
			}
		}
	}
	return nil
}

// VerifyDisplacementL2G runs the same exhaustive search against the
// squared-displacement objective and returns the first violation found,
// or nil. For the paper's claim to hold it must return nil at every n the
// caller can afford (tests cover n ≤ 5).
func VerifyDisplacementL2G(n int) *L2GSortViolation {
	perms := permutations(n)
	// ord for values 0..n−1 at indexes 0..n−1 is the identity.
	disp := func(indexes, values []int) int {
		total := 0
		for i := range indexes {
			d := indexes[i] - values[i]
			total += d * d
		}
		return total
	}
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		var bIdx []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				bIdx = append(bIdx, i)
			}
		}
		if len(bIdx) < 2 {
			continue
		}
		for _, valPerm := range perms {
			bVals := make([]int, len(bIdx))
			for i, ix := range bIdx {
				bVals[i] = valPerm[ix]
			}
			hB0 := disp(bIdx, bVals)
			hU0 := disp(identity(n), valPerm)
			for _, sigma := range permutations(len(bIdx)) {
				nb := make([]int, len(bIdx))
				for i, s := range sigma {
					nb[i] = bVals[s]
				}
				hB1 := disp(bIdx, nb)
				if hB1 >= hB0 {
					continue
				}
				after := make([]int, n)
				copy(after, valPerm)
				for i, ix := range bIdx {
					after[ix] = nb[i]
				}
				hU1 := disp(identity(n), after)
				if hU1 >= hU0 {
					var cIdx []int
					for i := 0; i < n; i++ {
						if mask&(1<<uint(i)) == 0 {
							cIdx = append(cIdx, i)
						}
					}
					return &L2GSortViolation{
						N: n, BIndexes: bIdx, CIndexes: cIdx,
						Before: valPerm, After: after,
						InvB0: hB0, InvB1: hB1, InvU0: hU0, InvU1: hU1,
					}
				}
			}
		}
	}
	return nil
}

func identity(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func permutations(n int) [][]int {
	var out [][]int
	p := identity(n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, p)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
	return out
}

// PaperFig1States returns the exact states printed in the paper's Fig. 1
// (S = [7,5,6,4,3,2,1] → S' = [6,5,7,3,4,1,2], B = indexes
// {1,3,4,5,6,7}, C = {2}, 1-based) together with our recomputed
// out-of-order-pair counts, so cmd/figures can print the comparison.
func PaperFig1States() (before, after []int, bIdx, cIdx []int) {
	return []int{7, 5, 6, 4, 3, 2, 1}, []int{6, 5, 7, 3, 4, 1, 2},
		[]int{0, 2, 3, 4, 5, 6}, []int{1} // 0-based indexes
}
