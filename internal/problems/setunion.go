package problems

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

// Set is an agent state holding a set over a universe of at most 64
// elements, as a bitmask. It is the state type of the set-union consensus
// problem — e.g. "which events has the network observed", the classic
// gossip payload.
type Set uint64

// SetOf builds a Set from element indices (0–63).
func SetOf(elems ...int) Set {
	var s Set
	for _, e := range elems {
		s |= 1 << uint(e)
	}
	return s
}

// Contains reports membership of element e.
func (s Set) Contains(e int) bool { return s&(1<<uint(e)) != 0 }

// Card returns the cardinality.
func (s Set) Card() int { return bits.OnesCount64(uint64(s)) }

// String renders the set as {e0, e1, …}.
func (s Set) String() string {
	var parts []string
	for e := 0; e < 64; e++ {
		if s.Contains(e) {
			parts = append(parts, fmt.Sprint(e))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SetUnionF is f for set-union consensus: every agent's set becomes the
// union of all sets. Union is a commutative, associative, idempotent
// operator, so the §3.4 ◦-operator lemma makes f super-idempotent.
func SetUnionF() core.Function[Set] {
	return core.MarkSuperIdempotent[Set](core.FuncOf("set-union", func(x ms.Multiset[Set]) ms.Multiset[Set] {
		if x.IsEmpty() {
			return x
		}
		var u Set
		x.ForEach(func(s Set) { u |= s })
		return x.Map(func(Set) Set { return u })
	}))
}

// SetUnion is set-union consensus: every agent ends with the union of all
// initial sets. Not in the paper, but the most common gossip aggregate in
// practice; another instance of the ◦-operator recipe. The variant is
// h(S) = Σ (64 − |sa|), summation form, well-founded, strictly decreasing
// whenever any agent learns an element.
type SetUnion struct{}

// NewSetUnion returns the set-union consensus problem.
func NewSetUnion() *SetUnion { return &SetUnion{} }

// Name implements core.Problem.
func (*SetUnion) Name() string { return "set-union" }

// Cmp implements core.Problem.
func (*SetUnion) Cmp() ms.Cmp[Set] {
	return func(a, b Set) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// Requirement implements core.Problem.
func (*SetUnion) Requirement() core.Requirement { return core.AnyConnected }

// Equal implements core.Problem.
func (*SetUnion) Equal(a, b ms.Multiset[Set]) bool { return a.Equal(b) }

// F implements core.Problem.
func (*SetUnion) F() core.Function[Set] { return SetUnionF() }

// H implements core.Problem: h(S) = Σ (64 − |sa|).
func (*SetUnion) H() core.Variant[Set] {
	return core.SummationVariant[Set]("Σ(64−|s|)", func(s Set) float64 {
		return float64(64 - s.Card())
	})
}

// GroupStep implements core.Problem: everyone adopts the group union.
func (*SetUnion) GroupStep(states []Set, _ *rand.Rand) []Set {
	var u Set
	for _, s := range states {
		u |= s
	}
	out := make([]Set, len(states))
	for i := range out {
		out[i] = u
	}
	return out
}

// PairStep implements core.Problem.
func (*SetUnion) PairStep(a, b Set, _ *rand.Rand) (Set, Set) {
	u := a | b
	return u, u
}

// --- Median: a designer's would-be f that the checkers reject ---

// MedianF is the lower-median consensus function: every value becomes the
// lower median of the multiset. Like second-smallest (§4.3), it is
// idempotent but NOT super-idempotent, so the self-similar strategy does
// not apply to it directly — the checkers refute it mechanically (see
// examples/designcheck and the tests). It is included as the "designer's
// first attempt" in the methodology walkthrough.
func MedianF() core.Function[int] {
	return core.FuncOf("median", func(x ms.Multiset[int]) ms.Multiset[int] {
		if x.IsEmpty() {
			return x
		}
		med := x.At((x.Len() - 1) / 2) // lower median of the sorted bag
		return x.Map(func(int) int { return med })
	})
}
