// Package problems implements every example problem of the paper's §4 as a
// core.Problem, plus the negative examples (second-smallest, naive
// circumscribing circle) as raw functions whose failure of
// super-idempotence is demonstrated by the checkers in internal/core.
//
// Problems implemented:
//
//   - Min (§4.1): consensus on the minimum; h(S) = Σ xa.
//   - Max: the mirror image of Min (an obvious extension the paper's
//     methodology covers; h uses an upper bound on values).
//   - Sum (§4.2): non-consensus; one agent ends with the sum, the rest
//     with zero; h(S) = (Σ xa)² − Σ xa².
//   - Average: consensus on the mean over float states — the paper's §3.1
//     motivating example of a sensor-network f; a continuous-state case
//     (§1.2) whose variant is well-founded only up to a tolerance.
//   - GCD: consensus on the greatest common divisor (another
//     super-idempotent ◦-operator instance, per the §3.4 lemma).
//   - SecondSmallest (naive, §4.3): idempotent but NOT super-idempotent;
//     provided as a Function for the checkers.
//   - MinPair (§4.3): the (smallest, second-smallest) generalization that
//     restores super-idempotence. NOTE: the variant h = Σ(xa+ya) printed
//     in the paper does not satisfy the paper's own §3.5 requirement (see
//     minpair.go); we use a corrected variant and document the deviation.
//   - KSmallest: the k-vector generalization the paper sketches as the
//     "even worse" memory cost of extending MinPair to the k-th smallest.
//   - Sorting (§4.4): distributed sort of (index, value) pairs; includes
//     both the squared-displacement variant (valid) and the
//     out-of-order-pairs variant (Fig. 1's invalid objective) plus the
//     exhaustive search that exhibits a genuine local-to-global violation.
//   - Hull (§4.5): convex-hull consensus, the super-idempotent
//     generalization of the circumscribing circle; h(S) = |A|·P −
//     Σ perimeter(Va).
//   - CircumcircleNaive (§4.5): the naive circle function for Fig. 2.
package problems

import (
	ms "repro/internal/multiset"
)

// eqExact is the default multiset-equality predicate for discrete states.
func eqExact[T any](a, b ms.Multiset[T]) bool { return a.Equal(b) }

// copyStates is a small helper: problems return fresh slices from
// GroupStep so callers can never alias internal state.
func copyStates[T any](states []T) []T {
	out := make([]T, len(states))
	copy(out, states)
	return out
}

// fillInto appends n copies of v to dst — the shared shape of the
// core.IntoFunction fast paths of the consensus functions (min, max, gcd,
// average), whose image is a constant multiset and therefore trivially in
// canonical order. When ok is false (the empty multiset has no
// representative) nothing is appended.
func fillInto[T any](dst []T, n int, v T, ok bool) []T {
	if !ok {
		return dst
	}
	for i := 0; i < n; i++ {
		dst = append(dst, v)
	}
	return dst
}
