package problems

import (
	"math"
	"math/rand"

	"repro/internal/core"
	ms "repro/internal/multiset"
)

// --- Min (§4.1) ---

// Min is the paper's first example: consensus on the minimum of a
// distributed set of non-negative integers. f maps a multiset to the
// multiset of the same cardinality in which every value is the minimum;
// h(S) = Σ xa (summation form, well-founded over the non-negative
// integers); any connected graph satisfies the environment obligation (9).
type Min struct {
	// Partial, when true, makes GroupStep move each agent to a random
	// value between the group minimum and its current value instead of
	// jumping to the minimum — the paper's "update their value to any
	// value between their current value and the minimum of the group".
	// Used by the ablation experiments; the default full jump is the
	// fastest refinement of D.
	Partial bool
}

// NewMin returns the minimum-consensus problem with greedy steps.
func NewMin() *Min { return &Min{} }

// Name implements core.Problem.
func (*Min) Name() string { return "minimum" }

// Cmp implements core.Problem.
func (*Min) Cmp() ms.Cmp[int] { return ms.OrderedCmp[int]() }

// Requirement implements core.Problem.
func (*Min) Requirement() core.Requirement { return core.AnyConnected }

// Equal implements core.Problem.
func (*Min) Equal(a, b ms.Multiset[int]) bool { return eqExact(a, b) }

// MinF is the paper's f for §4.1: all values become the minimum.
// f({3,5,3,7}) = {3,3,3,3}. It carries the core.IntoFunction fast path so
// the engines' per-round conservation check can evaluate f without
// allocating.
func MinF() core.Function[int] {
	return core.MarkSuperIdempotent[int](core.FuncOfInto("min",
		func(x ms.Multiset[int]) ms.Multiset[int] {
			m, ok := x.Min()
			if !ok {
				return x
			}
			return x.Map(func(int) int { return m })
		},
		func(dst []int, x ms.Multiset[int]) []int {
			m, ok := x.Min()
			return fillInto(dst, x.Len(), m, ok)
		}))
}

// F implements core.Problem.
func (*Min) F() core.Function[int] { return MinF() }

// H implements core.Problem: h(S) = Σ xa.
func (*Min) H() core.Variant[int] {
	return core.SummationVariant[int]("Σx", func(v int) float64 { return float64(v) })
}

// GroupStep implements core.Problem: every member adopts the group
// minimum (or, when Partial, a value between its own and the minimum).
func (p *Min) GroupStep(states []int, rng *rand.Rand) []int {
	out := copyStates(states)
	m := states[0]
	for _, v := range states {
		if v < m {
			m = v
		}
	}
	for i, v := range out {
		switch {
		case v == m:
			// already at the group minimum
		case p.Partial && rng != nil:
			out[i] = m + rng.Intn(v-m) // uniform in [m, v)
		default:
			out[i] = m
		}
	}
	return out
}

// PairStep implements core.Problem. It is GroupStep on {a, b} unrolled
// to avoid the two slice allocations per matched pair — at 10⁵ agents a
// pairwise round executes ~5·10⁴ pair steps, so the hot path must not
// allocate. Draw order matches GroupStep exactly (a's draw before b's),
// so Partial results are unchanged.
func (p *Min) PairStep(a, b int, rng *rand.Rand) (int, int) {
	m := a
	if b < m {
		m = b
	}
	na, nb := m, m
	if p.Partial && rng != nil {
		if a != m {
			na = m + rng.Intn(a-m)
		}
		if b != m {
			nb = m + rng.Intn(b-m)
		}
	}
	return na, nb
}

// --- Max ---

// Max is the mirror of Min: consensus on the maximum. It is not in the
// paper but follows from the methodology unchanged: f is a ◦-operator
// multiset function (§3.4 lemma) and therefore super-idempotent. The
// variant needs an upper bound to stay non-negative: h(S) = Σ (Bound −
// xa), which is summation form with the global constant Bound (the paper's
// §4.5 h uses the global constant P in the same way).
type Max struct {
	// Bound is a strict upper bound on every initial value.
	Bound int
}

// NewMax returns the maximum-consensus problem for values < bound.
func NewMax(bound int) *Max { return &Max{Bound: bound} }

// Name implements core.Problem.
func (*Max) Name() string { return "maximum" }

// Cmp implements core.Problem.
func (*Max) Cmp() ms.Cmp[int] { return ms.OrderedCmp[int]() }

// Requirement implements core.Problem.
func (*Max) Requirement() core.Requirement { return core.AnyConnected }

// Equal implements core.Problem.
func (*Max) Equal(a, b ms.Multiset[int]) bool { return eqExact(a, b) }

// MaxF is f for the maximum: all values become the maximum.
func MaxF() core.Function[int] {
	return core.MarkSuperIdempotent[int](core.FuncOfInto("max",
		func(x ms.Multiset[int]) ms.Multiset[int] {
			m, ok := x.Max()
			if !ok {
				return x
			}
			return x.Map(func(int) int { return m })
		},
		func(dst []int, x ms.Multiset[int]) []int {
			m, ok := x.Max()
			return fillInto(dst, x.Len(), m, ok)
		}))
}

// F implements core.Problem.
func (*Max) F() core.Function[int] { return MaxF() }

// H implements core.Problem: h(S) = Σ (Bound − xa).
func (p *Max) H() core.Variant[int] {
	bound := p.Bound
	return core.SummationVariant[int]("Σ(B−x)", func(v int) float64 { return float64(bound - v) })
}

// GroupStep implements core.Problem.
func (*Max) GroupStep(states []int, _ *rand.Rand) []int {
	out := copyStates(states)
	m := states[0]
	for _, v := range states {
		if v > m {
			m = v
		}
	}
	for i := range out {
		out[i] = m
	}
	return out
}

// PairStep implements core.Problem: GroupStep on {a, b} unrolled so the
// pairwise hot path never allocates (see Min.PairStep).
func (*Max) PairStep(a, b int, _ *rand.Rand) (int, int) {
	m := a
	if b > m {
		m = b
	}
	return m, m
}

// --- Sum (§4.2) ---

// Sum is the paper's non-consensus example: one agent must end with the
// sum of all (non-negative) initial values while every other agent ends
// with zero. f({3,5,3,7}) = {18,0,0,0}; h(S) = (Σ xa)² − Σ xa², which is
// non-negative for non-negative values and decreases exactly when values
// spread apart (small values smaller, large values larger).
//
// The paper's key observation (reproduced by experiment E7): zero-valued
// agents have no meaningful interaction and cannot relay, so under
// pairwise gossip the weakest environment assumption is Q_E for the
// complete graph.
type Sum struct{}

// NewSum returns the sum problem.
func NewSum() *Sum { return &Sum{} }

// Name implements core.Problem.
func (*Sum) Name() string { return "sum" }

// Cmp implements core.Problem.
func (*Sum) Cmp() ms.Cmp[int] { return ms.OrderedCmp[int]() }

// Requirement implements core.Problem.
func (*Sum) Requirement() core.Requirement { return core.CompleteGraph }

// Equal implements core.Problem.
func (*Sum) Equal(a, b ms.Multiset[int]) bool { return eqExact(a, b) }

// SumF is f for §4.2: the total with multiplicity 1, zero with
// multiplicity N−1.
func SumF() core.Function[int] {
	return core.MarkSuperIdempotent[int](core.FuncOfInto("sum",
		func(x ms.Multiset[int]) ms.Multiset[int] {
			if x.IsEmpty() {
				return x
			}
			out := make([]int, x.Len())
			out[0] = ms.SumInts(x)
			return ms.New(x.Cmp(), out...)
		},
		func(dst []int, x ms.Multiset[int]) []int {
			if x.IsEmpty() {
				return dst
			}
			total := ms.SumInts(x)
			if total <= 0 { // canonical order: a non-positive total sorts before the zeros
				dst = append(dst, total)
			}
			for i := 0; i < x.Len()-1; i++ {
				dst = append(dst, 0)
			}
			if total > 0 {
				dst = append(dst, total)
			}
			return dst
		}))
}

// F implements core.Problem.
func (*Sum) F() core.Function[int] { return SumF() }

// H implements core.Problem: h(S) = (Σx)² − Σx². Under the conservation
// of f this equals a constant minus Σx², so it is equivalent to the
// summation-form variant −Σ xa² on the constraint surface.
func (*Sum) H() core.Variant[int] {
	return core.VariantOf[int]("(Σx)²−Σx²", func(x ms.Multiset[int]) float64 {
		var sum, sq float64
		x.ForEach(func(v int) {
			f := float64(v)
			sum += f
			sq += f * f
		})
		return sum*sum - sq
	})
}

// GroupStep implements core.Problem: the group consolidates its total at
// the member currently holding the largest value (first such position);
// everyone else drops to zero. If the group has at most one non-zero
// member it is already optimal and the step is a stutter.
func (*Sum) GroupStep(states []int, _ *rand.Rand) []int {
	out := copyStates(states)
	total, nonzero, maxAt := 0, 0, 0
	for i, v := range states {
		total += v
		if v != 0 {
			nonzero++
		}
		if v > states[maxAt] {
			maxAt = i
		}
	}
	if nonzero <= 1 {
		return out // stutter: f already achieved within this group
	}
	for i := range out {
		out[i] = 0
	}
	out[maxAt] = total
	return out
}

// PairStep implements core.Problem. A pair with a zero member is a
// stutter: the zero agent has nothing to contribute and, per §4.2, must
// not act as a courier (its state is interchangeable with any other
// zero's, so moving the value would be a multiset no-op that fakes
// progress the variant cannot justify).
func (*Sum) PairStep(a, b int, _ *rand.Rand) (int, int) {
	if a == 0 || b == 0 {
		return a, b
	}
	return a + b, 0
}

// --- Average ---

// Average is consensus on the arithmetic mean, the paper's §3.1 motivating
// sensor-network example ("if f computes the average of sensor values…").
// f preserves both the sum and the cardinality of the multiset, so it is
// super-idempotent. The state space is continuous (float64), which the
// paper flags in §1.2 as beyond its discrete scope; the variant
// h(S) = |S|·Σx² − (Σx)² (= Σ over pairs (xa−xb)²) decreases strictly on
// every proper step but is well-founded only up to the convergence
// tolerance Tol.
type Average struct {
	// Tol is the equality tolerance for convergence checks.
	Tol float64
}

// NewAverage returns the averaging problem with the given tolerance.
func NewAverage(tol float64) *Average { return &Average{Tol: tol} }

// Name implements core.Problem.
func (*Average) Name() string { return "average" }

// Cmp implements core.Problem.
func (*Average) Cmp() ms.Cmp[float64] { return ms.OrderedCmp[float64]() }

// Requirement implements core.Problem.
func (*Average) Requirement() core.Requirement { return core.AnyConnected }

// Equal implements core.Problem: elementwise within Tol.
func (p *Average) Equal(a, b ms.Multiset[float64]) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if math.Abs(a.At(i)-b.At(i)) > p.Tol {
			return false
		}
	}
	return true
}

// AverageF is f for the mean: every value becomes the mean.
func AverageF() core.Function[float64] {
	return core.MarkSuperIdempotent[float64](core.FuncOfInto("average",
		func(x ms.Multiset[float64]) ms.Multiset[float64] {
			if x.IsEmpty() {
				return x
			}
			mean := ms.SumFloats(x) / float64(x.Len())
			return x.Map(func(float64) float64 { return mean })
		},
		func(dst []float64, x ms.Multiset[float64]) []float64 {
			mean := 0.0
			if !x.IsEmpty() {
				mean = ms.SumFloats(x) / float64(x.Len())
			}
			return fillInto(dst, x.Len(), mean, !x.IsEmpty())
		}))
}

// F implements core.Problem.
func (*Average) F() core.Function[float64] { return AverageF() }

// H implements core.Problem: h(S) = |S|·Σx² − (Σx)².
func (*Average) H() core.Variant[float64] {
	return core.VariantOf[float64]("n·Σx²−(Σx)²", func(x ms.Multiset[float64]) float64 {
		var sum, sq float64
		x.ForEach(func(v float64) {
			sum += v
			sq += v * v
		})
		return float64(x.Len())*sq - sum*sum
	})
}

// GroupStep implements core.Problem: everyone adopts the group mean.
func (*Average) GroupStep(states []float64, _ *rand.Rand) []float64 {
	out := copyStates(states)
	total := 0.0
	for _, v := range states {
		total += v
	}
	mean := total / float64(len(states))
	for i := range out {
		out[i] = mean
	}
	return out
}

// PairStep implements core.Problem: pairwise averaging, the classical
// decentralized iterative scheme the paper cites ([4], [12]).
func (*Average) PairStep(a, b float64, _ *rand.Rand) (float64, float64) {
	m := (a + b) / 2
	return m, m
}

// --- GCD ---

// GCD is consensus on the greatest common divisor of positive integers.
// It is not in the paper, but gcd is a commutative associative idempotent
// operator, so the §3.4 lemma makes its consensus f super-idempotent; the
// variant is the same Σ xa as for Min. Included to demonstrate that the
// methodology is a recipe, not a case list.
type GCD struct{}

// NewGCD returns the gcd-consensus problem (values must be ≥ 1).
func NewGCD() *GCD { return &GCD{} }

// Name implements core.Problem.
func (*GCD) Name() string { return "gcd" }

// Cmp implements core.Problem.
func (*GCD) Cmp() ms.Cmp[int] { return ms.OrderedCmp[int]() }

// Requirement implements core.Problem.
func (*GCD) Requirement() core.Requirement { return core.AnyConnected }

// Equal implements core.Problem.
func (*GCD) Equal(a, b ms.Multiset[int]) bool { return eqExact(a, b) }

func gcd2(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDF is f for gcd-consensus: all values become the gcd.
func GCDF() core.Function[int] {
	gcdOf := func(x ms.Multiset[int]) int {
		g := 0
		x.ForEach(func(v int) { g = gcd2(g, v) })
		return g
	}
	return core.MarkSuperIdempotent[int](core.FuncOfInto("gcd",
		func(x ms.Multiset[int]) ms.Multiset[int] {
			if x.IsEmpty() {
				return x
			}
			g := gcdOf(x)
			return x.Map(func(int) int { return g })
		},
		func(dst []int, x ms.Multiset[int]) []int {
			return fillInto(dst, x.Len(), gcdOf(x), !x.IsEmpty())
		}))
}

// F implements core.Problem.
func (*GCD) F() core.Function[int] { return GCDF() }

// H implements core.Problem: h(S) = Σ xa.
func (*GCD) H() core.Variant[int] {
	return core.SummationVariant[int]("Σx", func(v int) float64 { return float64(v) })
}

// GroupStep implements core.Problem: everyone adopts the group gcd.
func (*GCD) GroupStep(states []int, _ *rand.Rand) []int {
	out := copyStates(states)
	g := 0
	for _, v := range states {
		g = gcd2(g, v)
	}
	for i := range out {
		out[i] = g
	}
	return out
}

// PairStep implements core.Problem.
func (*GCD) PairStep(a, b int, _ *rand.Rand) (int, int) {
	g := gcd2(a, b)
	return g, g
}

// --- Second smallest, naive (§4.3 negative example) ---

// SecondSmallestF is the paper's §4.3 function: every value becomes the
// second smallest, defined as the smallest value different from the
// minimum when one exists, else the common value. f({3,5,3,7}) =
// {5,5,5,5}. It is idempotent but NOT super-idempotent (the paper's
// counterexample X={1,3}, Y={2} is verified in tests and by cmd/figures),
// so the self-similar strategy cannot be applied to it directly; MinPair
// is the paper's generalization that can.
func SecondSmallestF() core.Function[int] {
	return core.FuncOf("second-smallest", func(x ms.Multiset[int]) ms.Multiset[int] {
		if x.IsEmpty() {
			return x
		}
		first, _ := x.Min()
		second := first
		x.ForEach(func(v int) {
			if v != first && (second == first || v < second) {
				second = v
			}
		})
		return x.Map(func(int) int { return second })
	})
}
