// Package metrics provides the small statistics and table-rendering
// helpers shared by the experiment harness (cmd/experiments), the figures
// tool, and the benchmarks. Experiments report medians and spreads across
// seeds, and render fixed-width tables into EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations.
type Sample struct {
	vals []float64
}

// Add records an observation.
func (s *Sample) Add(v float64) { s.vals = append(s.vals, v) }

// AddInt records an integer observation.
func (s *Sample) AddInt(v int) { s.Add(float64(v)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range s.vals {
		total += v
	}
	return total / float64(len(s.vals))
}

// Std returns the population standard deviation (0 for n < 2).
func (s *Sample) Std() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	total := 0.0
	for _, v := range s.vals {
		d := v - m
		total += d * d
	}
	return math.Sqrt(total / float64(n))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank on
// the sorted sample; 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Table renders rows of cells as a GitHub-flavoured markdown table with a
// header. Cells are padded for plain-text readability too.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v.
func (t *Table) AddRowf(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = FormatFloat(v)
		default:
			strs[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(strs...)
}

// String renders the markdown table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for i, c := range cells {
			b.WriteByte(' ')
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))+1))
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without a decimal
// point, otherwise three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
