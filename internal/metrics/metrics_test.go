package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Error("empty sample stats nonzero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("mean = %g", s.Mean())
	}
	if math.Abs(s.Std()-2) > 1e-12 {
		t.Errorf("std = %g, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestSampleAddInt(t *testing.T) {
	var s Sample
	s.AddInt(3)
	s.AddInt(5)
	if s.Mean() != 4 {
		t.Errorf("mean = %g", s.Mean())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 50}, {100, 100}, {90, 90}, {1, 1},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	var single Sample
	single.Add(7)
	if single.Median() != 7 {
		t.Errorf("median of singleton = %g", single.Median())
	}
}

func TestPercentileBounds(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
			s.Add(v)
		}
		pp := math.Mod(math.Abs(p), 100)
		got := s.Percentile(pp)
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "rounds")
	tb.AddRow("min", "12")
	tb.AddRowf("sum", 34.0)
	tb.AddRow("short") // padded
	out := tb.String()
	if !strings.Contains(out, "| name") || !strings.Contains(out, "| min") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + sep + 3 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// All lines equal width (fixed-width rendering).
	w := len(lines[0])
	for i, l := range lines {
		if len(l) != w {
			t.Errorf("line %d width %d != %d:\n%s", i, len(l), w, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"}, {3.14159, "3.14"}, {0.001234, "0.00123"}, {100, "100"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}
