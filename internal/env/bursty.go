package env

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// MarkovLinks is bursty link churn: each edge is an independent two-state
// (up/down) Markov chain with transition probabilities PUpToDown and
// PDownToUp per round. Unlike EdgeChurn's i.i.d. availability, outages are
// *correlated in time* — long good stretches and long bad stretches with
// the same average availability — which is the realistic wireless-fading
// model the paper's motivation (§1.1) describes. Every edge has positive
// probability of recovery, so assumption (2) holds almost surely.
type MarkovLinks struct {
	g *graph.Graph
	// PUpToDown and PDownToUp are the per-round transition probabilities.
	PUpToDown, PDownToUp float64

	inited bool
	buf    stateBuf
	deltaState
}

// NewMarkovLinks builds a bursty-churn environment. The stationary
// availability is PDownToUp / (PUpToDown + PDownToUp).
func NewMarkovLinks(g *graph.Graph, pUpToDown, pDownToUp float64) *MarkovLinks {
	return &MarkovLinks{g: g, PUpToDown: pUpToDown, PDownToUp: pDownToUp}
}

// StationaryAvailability returns the long-run fraction of time each edge
// is up.
func (e *MarkovLinks) StationaryAvailability() float64 {
	d := e.PUpToDown + e.PDownToUp
	if d == 0 {
		return 1
	}
	return e.PDownToUp / d
}

// Name implements Environment.
func (e *MarkovLinks) Name() string {
	return fmt.Sprintf("markov-links(↓%.2f ↑%.2f, avail %.2f)",
		e.PUpToDown, e.PDownToUp, e.StationaryAvailability())
}

// Graph implements Environment.
func (e *MarkovLinks) Graph() *graph.Graph { return e.g }

// Step implements Environment. The chain state lives directly in the
// state buffer; the per-edge transition loop records the exact flip list,
// so StepDeltas is exact from the second round on.
func (e *MarkovLinks) Step(_ int, rng *rand.Rand) State {
	m := e.g.M()
	var s State
	steady := e.inited
	if !e.inited {
		s = e.buf.allUp(e.g)
		avail := e.StationaryAvailability()
		for i := 0; i < m; i++ {
			s.EdgeUp.SetTo(i, rng.Float64() < avail)
		}
		e.inited = true
	} else {
		s = e.buf.s
	}
	edges := e.edges[:0]
	for i := 0; i < m; i++ {
		if s.EdgeUp.Get(i) {
			if rng.Float64() < e.PUpToDown {
				s.EdgeUp.Clear(i)
				edges = append(edges, i)
			}
		} else if rng.Float64() < e.PDownToUp {
			s.EdgeUp.Set(i)
			edges = append(edges, i)
		}
	}
	e.deltaState = deltaState{edges: edges, ok: steady}
	return s
}

// DayNight is deterministic periodic availability: during the "day"
// (DayRounds per period) all links are up; during the "night"
// (NightRounds) all links are down — duty-cycled radios, orbital contact
// windows. Assumption (2) holds with period DayRounds + NightRounds.
type DayNight struct {
	g *graph.Graph
	// DayRounds and NightRounds are the phase lengths.
	DayRounds, NightRounds int

	buf     stateBuf
	primed  bool
	prevDay bool
	deltaState
}

// NewDayNight builds the periodic environment.
func NewDayNight(g *graph.Graph, dayRounds, nightRounds int) *DayNight {
	if dayRounds < 1 {
		dayRounds = 1
	}
	if nightRounds < 0 {
		nightRounds = 0
	}
	return &DayNight{g: g, DayRounds: dayRounds, NightRounds: nightRounds}
}

// Name implements Environment.
func (e *DayNight) Name() string {
	return fmt.Sprintf("day-night(%d/%d)", e.DayRounds, e.NightRounds)
}

// Graph implements Environment.
func (e *DayNight) Graph() *graph.Graph { return e.g }

// Day reports whether the given round is a day round.
func (e *DayNight) Day(round int) bool {
	period := e.DayRounds + e.NightRounds
	return round%period < e.DayRounds
}

// Step implements Environment. Within a phase nothing changes (exact
// empty deltas); on a phase transition every edge flips, which StepDeltas
// reports as ok=false so consumers do the one full rescan the transition
// genuinely costs.
func (e *DayNight) Step(round int, _ *rand.Rand) State {
	day := e.Day(round)
	var s State
	switch {
	case !e.primed:
		if day {
			s = e.buf.allUp(e.g)
		} else {
			s = e.buf.edgesDown(e.g)
		}
		e.primed = true
		e.deltaState = deltaState{ok: false}
	case day != e.prevDay:
		s = e.buf.s
		s.EdgeUp.FillValue(day)
		e.deltaState = deltaState{ok: false}
	default:
		s = e.buf.s
		e.deltaState = deltaState{ok: true}
	}
	e.prevDay = day
	return s
}

// Compose layers environments over the same graph: an edge is up only
// when every layer has it up, and an agent only when every layer has it
// up. Use it to combine, e.g., bursty links with power-lossy agents.
type Compose struct {
	layers []Environment
	out    State
	deltaState
}

// NewCompose builds the conjunction of the given environments, which must
// all be over the same graph (checked).
func NewCompose(layers ...Environment) (*Compose, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("env: Compose needs at least one layer")
	}
	g := layers[0].Graph()
	for _, l := range layers[1:] {
		if l.Graph() != g {
			return nil, fmt.Errorf("env: Compose layers over different graphs (%s vs %s)",
				g.Name(), l.Graph().Name())
		}
	}
	return &Compose{layers: layers}, nil
}

// Name implements Environment.
func (e *Compose) Name() string {
	name := "compose("
	for i, l := range e.layers {
		if i > 0 {
			name += " ∧ "
		}
		name += l.Name()
	}
	return name + ")"
}

// Graph implements Environment.
func (e *Compose) Graph() *graph.Graph { return e.layers[0].Graph() }

// Step implements Environment. The conjunction is word-level AND over
// the layer masks. A layer flip need not flip the conjunction, but the
// "may have changed" contract of StepDeltas permits a superset, so the
// composite delta is simply the concatenation of the layer deltas — and
// it is only valid (ok) when every layer reported a valid delta.
func (e *Compose) Step(round int, rng *rand.Rand) State {
	first := e.layers[0].Step(round, rng)
	if e.out.EdgeUp.IsZero() {
		e.out = first.Clone()
	} else {
		e.out.EdgeUp.Copy(first.EdgeUp)
		e.out.AgentUp.Copy(first.AgentUp)
	}
	out := e.out
	edges, agents := e.edges[:0], e.agents[:0]
	allOK := true
	collect := func(l Environment) {
		de, isDelta := l.(DeltaEnvironment)
		if !isDelta {
			allOK = false
			return
		}
		ed, ag, ok := de.StepDeltas()
		if !ok {
			allOK = false
			return
		}
		edges = append(edges, ed...)
		agents = append(agents, ag...)
	}
	collect(e.layers[0])
	for _, l := range e.layers[1:] {
		s := l.Step(round, rng)
		out.EdgeUp.And(s.EdgeUp)
		out.AgentUp.And(s.AgentUp)
		collect(l)
	}
	e.deltaState = deltaState{edges: edges, agents: agents, ok: allOK}
	return out
}

// ExpectedGapBound returns a crude upper bound on the expected number of
// rounds between availabilities of a single edge under MarkovLinks —
// 1/PDownToUp — useful for sizing MaxRounds in experiments. Returns +Inf
// when recovery is impossible (PDownToUp = 0, violating (2)).
func (e *MarkovLinks) ExpectedGapBound() float64 {
	if e.PDownToUp <= 0 {
		return math.Inf(1)
	}
	return 1 / e.PDownToUp
}
