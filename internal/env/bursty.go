package env

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// MarkovLinks is bursty link churn: each edge is an independent two-state
// (up/down) Markov chain with transition probabilities PUpToDown and
// PDownToUp per round. Unlike EdgeChurn's i.i.d. availability, outages are
// *correlated in time* — long good stretches and long bad stretches with
// the same average availability — which is the realistic wireless-fading
// model the paper's motivation (§1.1) describes. Every edge has positive
// probability of recovery, so assumption (2) holds almost surely.
type MarkovLinks struct {
	g *graph.Graph
	// PUpToDown and PDownToUp are the per-round transition probabilities.
	PUpToDown, PDownToUp float64

	state  []bool
	inited bool
	buf    stateBuf
}

// NewMarkovLinks builds a bursty-churn environment. The stationary
// availability is PDownToUp / (PUpToDown + PDownToUp).
func NewMarkovLinks(g *graph.Graph, pUpToDown, pDownToUp float64) *MarkovLinks {
	return &MarkovLinks{g: g, PUpToDown: pUpToDown, PDownToUp: pDownToUp}
}

// StationaryAvailability returns the long-run fraction of time each edge
// is up.
func (e *MarkovLinks) StationaryAvailability() float64 {
	d := e.PUpToDown + e.PDownToUp
	if d == 0 {
		return 1
	}
	return e.PDownToUp / d
}

// Name implements Environment.
func (e *MarkovLinks) Name() string {
	return fmt.Sprintf("markov-links(↓%.2f ↑%.2f, avail %.2f)",
		e.PUpToDown, e.PDownToUp, e.StationaryAvailability())
}

// Graph implements Environment.
func (e *MarkovLinks) Graph() *graph.Graph { return e.g }

// Step implements Environment.
func (e *MarkovLinks) Step(_ int, rng *rand.Rand) State {
	if !e.inited {
		e.state = make([]bool, e.g.M())
		avail := e.StationaryAvailability()
		for i := range e.state {
			e.state[i] = rng.Float64() < avail
		}
		e.inited = true
	}
	for i, up := range e.state {
		if up {
			if rng.Float64() < e.PUpToDown {
				e.state[i] = false
			}
		} else if rng.Float64() < e.PDownToUp {
			e.state[i] = true
		}
	}
	s := e.buf.allUp(e.g)
	copy(s.EdgeUp, e.state)
	return s
}

// DayNight is deterministic periodic availability: during the "day"
// (DayRounds per period) all links are up; during the "night"
// (NightRounds) all links are down — duty-cycled radios, orbital contact
// windows. Assumption (2) holds with period DayRounds + NightRounds.
type DayNight struct {
	g *graph.Graph
	// DayRounds and NightRounds are the phase lengths.
	DayRounds, NightRounds int

	buf stateBuf
}

// NewDayNight builds the periodic environment.
func NewDayNight(g *graph.Graph, dayRounds, nightRounds int) *DayNight {
	if dayRounds < 1 {
		dayRounds = 1
	}
	if nightRounds < 0 {
		nightRounds = 0
	}
	return &DayNight{g: g, DayRounds: dayRounds, NightRounds: nightRounds}
}

// Name implements Environment.
func (e *DayNight) Name() string {
	return fmt.Sprintf("day-night(%d/%d)", e.DayRounds, e.NightRounds)
}

// Graph implements Environment.
func (e *DayNight) Graph() *graph.Graph { return e.g }

// Day reports whether the given round is a day round.
func (e *DayNight) Day(round int) bool {
	period := e.DayRounds + e.NightRounds
	return round%period < e.DayRounds
}

// Step implements Environment.
func (e *DayNight) Step(round int, _ *rand.Rand) State {
	if e.Day(round) {
		return e.buf.allUp(e.g)
	}
	return e.buf.edgesDown(e.g)
}

// Compose layers environments over the same graph: an edge is up only
// when every layer has it up, and an agent only when every layer has it
// up. Use it to combine, e.g., bursty links with power-lossy agents.
type Compose struct {
	layers []Environment
	out    State
}

// NewCompose builds the conjunction of the given environments, which must
// all be over the same graph (checked).
func NewCompose(layers ...Environment) (*Compose, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("env: Compose needs at least one layer")
	}
	g := layers[0].Graph()
	for _, l := range layers[1:] {
		if l.Graph() != g {
			return nil, fmt.Errorf("env: Compose layers over different graphs (%s vs %s)",
				g.Name(), l.Graph().Name())
		}
	}
	return &Compose{layers: layers}, nil
}

// Name implements Environment.
func (e *Compose) Name() string {
	name := "compose("
	for i, l := range e.layers {
		if i > 0 {
			name += " ∧ "
		}
		name += l.Name()
	}
	return name + ")"
}

// Graph implements Environment.
func (e *Compose) Graph() *graph.Graph { return e.layers[0].Graph() }

// Step implements Environment.
func (e *Compose) Step(round int, rng *rand.Rand) State {
	first := e.layers[0].Step(round, rng)
	if e.out.EdgeUp == nil {
		e.out = first.Clone()
	} else {
		copy(e.out.EdgeUp, first.EdgeUp)
		copy(e.out.AgentUp, first.AgentUp)
	}
	out := e.out
	for _, l := range e.layers[1:] {
		s := l.Step(round, rng)
		for i := range out.EdgeUp {
			out.EdgeUp[i] = out.EdgeUp[i] && s.EdgeUp[i]
		}
		for i := range out.AgentUp {
			out.AgentUp[i] = out.AgentUp[i] && s.AgentUp[i]
		}
	}
	return out
}

// ExpectedGapBound returns a crude upper bound on the expected number of
// rounds between availabilities of a single edge under MarkovLinks —
// 1/PDownToUp — useful for sizing MaxRounds in experiments. Returns +Inf
// when recovery is impossible (PDownToUp = 0, violating (2)).
func (e *MarkovLinks) ExpectedGapBound() float64 {
	if e.PDownToUp <= 0 {
		return math.Inf(1)
	}
	return 1 / e.PDownToUp
}
