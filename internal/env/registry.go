package env

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Desc is a named environment family: a constructor plus the display
// name scenario-sweep axes and tables use. It exists so that sweep axes
// are declared over names ("churn:0.9") rather than hard-coded
// constructor calls — the environment half of the registry contract the
// batched grid runner (internal/sweep) is built on. A Desc is a value;
// the environment it constructs is fresh per call (environments are
// stateful and single-run).
type Desc struct {
	// Name identifies the family and its parameters, e.g. "churn:0.90".
	Name string
	// New builds a fresh environment instance over g.
	New func(g *graph.Graph) Environment
}

// StaticDesc describes the benign always-up environment.
func StaticDesc() Desc {
	return Desc{Name: "static", New: func(g *graph.Graph) Environment { return NewStatic(g) }}
}

// ChurnDesc describes EdgeChurn with per-round edge availability p.
func ChurnDesc(p float64) Desc {
	return Desc{
		Name: fmt.Sprintf("churn:%.3g", p),
		New:  func(g *graph.Graph) Environment { return NewEdgeChurn(g, p) },
	}
}

// PowerLossDesc describes PowerLoss with per-round agent outage
// probability p.
func PowerLossDesc(p float64) Desc {
	return Desc{
		Name: fmt.Sprintf("powerloss:%.3g", p),
		New:  func(g *graph.Graph) Environment { return NewPowerLoss(g, p) },
	}
}

// AdversaryDesc describes the fair targeted-cut adversary with the given
// cut fraction and fairness window.
func AdversaryDesc(cut float64, window int) Desc {
	return Desc{
		Name: fmt.Sprintf("adversary:%.3g:%d", cut, window),
		New:  func(g *graph.Graph) Environment { return NewAdversary(g, cut, window) },
	}
}

// Families lists the registered spec families ParseDesc accepts — the
// single source the unknown-family error quotes, so the message can
// never drift from what is actually parseable.
func Families() []string { return []string{"static", "churn", "powerloss", "adversary"} }

// ParseDesc resolves a registry spec of the form "family[:param[:param]]"
// to a Desc:
//
//	static              the benign always-up environment
//	churn:P             EdgeChurn with availability P in (0, 1]
//	powerloss:P         PowerLoss with outage probability P in [0, 1)
//	adversary:CUT:W     fair Adversary cutting fraction CUT, window W
//
// It is the CLI-facing half of the registry: cmd/sweep axes name their
// environments with these specs.
func ParseDesc(spec string) (Desc, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	bad := func(format string, args ...any) (Desc, error) {
		return Desc{}, fmt.Errorf("env: bad spec %q: "+format, append([]any{spec}, args...)...)
	}
	parseP := func(s string, lo, hi float64) (float64, error) {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %q is not a number", s)
		}
		if p < lo || p > hi {
			return 0, fmt.Errorf("parameter %g outside [%g, %g]", p, lo, hi)
		}
		return p, nil
	}
	switch parts[0] {
	case "static":
		if len(parts) != 1 {
			return bad("static takes no parameters")
		}
		return StaticDesc(), nil
	case "churn":
		if len(parts) != 2 {
			return bad("want churn:P")
		}
		p, err := parseP(parts[1], 0, 1)
		if err != nil || p == 0 {
			return bad("%v", orZero(err, "availability must be in (0, 1]"))
		}
		return ChurnDesc(p), nil
	case "powerloss":
		if len(parts) != 2 {
			return bad("want powerloss:P")
		}
		p, err := parseP(parts[1], 0, 1)
		if err != nil || p == 1 {
			return bad("%v", orZero(err, "outage probability must be in [0, 1)"))
		}
		return PowerLossDesc(p), nil
	case "adversary":
		if len(parts) != 3 {
			return bad("want adversary:CUT:WINDOW")
		}
		cut, err := parseP(parts[1], 0, 1)
		if err != nil {
			return bad("%v", err)
		}
		w, err := strconv.Atoi(parts[2])
		if err != nil || w < 1 {
			return bad("window %q must be a positive integer", parts[2])
		}
		return AdversaryDesc(cut, w), nil
	default:
		return bad("unknown family (know %s)", strings.Join(Families(), ", "))
	}
}

// orZero returns err when non-nil and otherwise an error with the given
// fallback message — ParseDesc's shared out-of-range wording helper.
func orZero(err error, fallback string) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("%s", fallback)
}
