// Package env models the paper's environment: the component of a dynamic
// distributed system that enables and disables agents and communication
// links (§1.2, §2.1).
//
// The environment has its own state and transitions; agents cannot
// influence it, and designers cannot specify it. The only designer-visible
// knob is the assumption set Q of predicates on environment states, each of
// which must hold infinitely often (equation (2)). In §4 every Q is of the
// form Q_E = {Q_e | e ∈ E} for a communication graph E, where Q_e reads
// "edge e is available".
//
// A State here is therefore a mask over the edges of a graph plus a mask
// over agents ("disabled" agents execute no actions and keep their state).
// Environment implementations produce a State per round; the FairnessProbe
// measures empirically whether each Q_e held infinitely often — i.e.
// whether the run actually satisfied (2) — so experiments can correlate
// convergence with the assumption the correctness theorem needs.
//
// Masks are bit-packed (internal/bitset), and environments whose
// transitions are sparse additionally implement DeltaEnvironment: they
// report, per Step, exactly which mask entries may have changed since the
// previous Step. Engines use that changed-id stream to keep round cost
// proportional to what changed rather than to graph size.
package env

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// State is one environment state G restricted to what affects agents: which
// edges are available and which agents are enabled. Masks are owned by the
// environment and must be treated as read-only by consumers; engines copy
// what they retain. A zero EdgeUp/AgentUp mask means "everything up" —
// the same absent-mask convention graph.ComponentsInto uses.
type State struct {
	EdgeUp  bitset.Set // indexed by edge id of the underlying graph
	AgentUp bitset.Set // indexed by agent id
}

// AllUp returns a State with every edge and agent enabled.
func AllUp(g *graph.Graph) State {
	return State{EdgeUp: bitset.NewAllSet(g.M()), AgentUp: bitset.NewAllSet(g.N())}
}

// EdgeIsUp reports whether edge id is up (absent mask means all up).
func (s State) EdgeIsUp(id int) bool { return s.EdgeUp.IsZero() || s.EdgeUp.Get(id) }

// AgentIsUp reports whether agent a is up (absent mask means all up).
func (s State) AgentIsUp(a int) bool { return s.AgentUp.IsZero() || s.AgentUp.Get(a) }

// Usable reports whether edge id with endpoints a and b can carry an
// interaction: the edge and both endpoints are up.
func (s State) Usable(id, a, b int) bool {
	return s.EdgeIsUp(id) && s.AgentIsUp(a) && s.AgentIsUp(b)
}

// Clone deep-copies the state.
func (s State) Clone() State {
	return State{EdgeUp: s.EdgeUp.Clone(), AgentUp: s.AgentUp.Clone()}
}

// UpEdgeCount returns the number of available edges.
func (s State) UpEdgeCount() int { return s.EdgeUp.Count() }

// UpAgentCount returns the number of enabled agents.
func (s State) UpAgentCount() int { return s.AgentUp.Count() }

// stateBuf is the reusable State every environment hands out from Step.
// The package contract (see State) is that consumers treat the masks as
// read-only and copy what they retain, so an environment can repair one
// buffer per round instead of allocating two masks — which keeps the
// simulation engines' round loops allocation-free.
type stateBuf struct {
	s State
}

// allUp returns the buffer reset to every edge and agent enabled,
// allocating only on first use.
func (b *stateBuf) allUp(g *graph.Graph) State {
	if b.s.EdgeUp.IsZero() {
		b.s = AllUp(g)
		return b.s
	}
	b.s.EdgeUp.SetAll()
	b.s.AgentUp.SetAll()
	return b.s
}

// edgesDown returns the buffer with every agent enabled and every edge
// disabled.
func (b *stateBuf) edgesDown(g *graph.Graph) State {
	s := b.allUp(g)
	s.EdgeUp.ClearAll()
	return s
}

// grow resizes a primed buffer to g's current sizes, filling the new edge
// entries with edgeFill and bringing the new agents up. A buffer that was
// never primed (zero masks) has nothing to carry over — the next allUp
// sizes it correctly.
func (b *stateBuf) grow(g *graph.Graph, edgeFill bool) {
	if b.s.EdgeUp.IsZero() {
		return
	}
	if b.s.EdgeUp.Len() < g.M() {
		b.s.EdgeUp = b.s.EdgeUp.Resized(g.M(), edgeFill)
	}
	if b.s.AgentUp.Len() < g.N() {
		b.s.AgentUp = b.s.AgentUp.Resized(g.N(), true)
	}
}

// Environment produces a sequence of environment states over a fixed
// communication graph. Implementations are deterministic functions of the
// supplied random source, so runs are reproducible from a seed. The State
// returned by Step is owned by the environment and is typically the same
// buffer repaired in place each round: consumers must finish with (or
// copy) one round's State before requesting the next.
type Environment interface {
	// Name identifies the model in tables.
	Name() string
	// Graph returns the underlying communication graph (A, E).
	Graph() *graph.Graph
	// Step returns the environment state for the given round. Successive
	// calls model the environment's own state transitions; implementations
	// may keep internal state (e.g. mobility positions).
	Step(round int, rng *rand.Rand) State
}

// DeltaEnvironment is implemented by environments whose per-round mask
// transitions are sparse. StepDeltas reports the ids whose mask entries
// MAY have changed between the previous Step's State and the most recent
// one — a superset of the actual flips is allowed (consumers recompute
// the listed entries), a miss is not. The returned slices are owned by
// the environment and valid only until the next Step.
//
// ok is false when the environment cannot bound the change set for the
// round just produced (the first Step of a run, a phase that rewrote the
// whole mask, a mid-run parameter change): consumers must then fall back
// to a full rescan. Environments with inherently dense transitions
// (Adversary, Mobile) simply do not implement the interface.
type DeltaEnvironment interface {
	Environment
	StepDeltas() (edges, agents []int, ok bool)
}

// Growable is implemented by environments that support population growth
// mid-run. Grow is called after the underlying graph gained agents and/or
// edges (the graph is already grown when Grow runs): the environment must
// resize its masks so every new agent and edge id is covered, with the
// NEW entries up — joiners arrive alive, and their availability is then
// governed by the environment's ordinary transitions from the next Step
// on. Environments need not clear retired edge ids; every mask consumer
// skips them via graph.EdgeRetired. Environments whose state is
// structurally tied to the founding topology (Partitioner's cut set,
// Adversary's scoring, Mobile's pair-per-edge layout) do not implement
// the interface, and the engines reject join schedules over them.
type Growable interface {
	Environment
	Grow()
}

// deltaState is the StepDeltas bookkeeping shared by the delta-capable
// environments: each Step records its change lists here.
type deltaState struct {
	edges, agents []int
	ok            bool
}

func (d *deltaState) StepDeltas() (edges, agents []int, ok bool) {
	return d.edges, d.agents, d.ok
}

// mergeUnion appends to dst the ascending union of two ascending id lists.
func mergeUnion(dst, a, b []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// --- Static: the benign environment ---

// Static keeps every edge and agent up forever: the "benign conditions"
// under which the paper's problems are easy and the algorithms run at full
// speed.
type Static struct {
	g      *graph.Graph
	s      State
	primed bool
	deltaState
}

// NewStatic builds a Static environment over g.
func NewStatic(g *graph.Graph) *Static { return &Static{g: g, s: AllUp(g)} }

// Name implements Environment.
func (e *Static) Name() string { return "static" }

// Graph implements Environment.
func (e *Static) Graph() *graph.Graph { return e.g }

// Step implements Environment.
func (e *Static) Step(int, *rand.Rand) State {
	// Nothing ever changes: deltas are exact and empty from the second
	// Step on (the first Step has no predecessor to be a delta against).
	e.deltaState = deltaState{ok: e.primed}
	e.primed = true
	return e.s
}

// Grow implements Growable: the all-up masks simply extend, all-up.
func (e *Static) Grow() {
	if e.s.EdgeUp.Len() < e.g.M() {
		e.s.EdgeUp = e.s.EdgeUp.Resized(e.g.M(), true)
	}
	if e.s.AgentUp.Len() < e.g.N() {
		e.s.AgentUp = e.s.AgentUp.Resized(e.g.N(), true)
	}
}

// --- EdgeChurn: independent random link availability ---

// EdgeChurn makes each edge independently available with probability P each
// round (noise, wireless interference). Agents stay up. P = 1 reduces to
// Static. Every edge is up with positive probability each round, so each
// Q_e holds infinitely often with probability 1: assumption (2) is
// satisfied and the correctness theorem applies — convergence merely slows
// down as P drops, which experiment E4 measures.
//
// Step costs O(1 + M·min(P, 1−P)) expected, not O(M): each round draws
// one sub-seed from the master stream (so downstream master consumption
// is fixed) and samples only the MINORITY edges — the ones that deviate
// from the more likely value — by geometric gap skipping on an internal
// substream, repairing the previous round's minority entries in place
// instead of rewriting the whole mask. At P = 0.999 on a 10⁶-edge graph
// that is ~10³ mask writes per round instead of 10⁶, which is what makes
// large-N churn rounds affordable (E15). The sampled distribution is
// exactly iid Bernoulli(P) per edge per round. StepDeltas reports the
// union of the previous and current minority lists — the only entries
// whose value can differ between the two rounds.
type EdgeChurn struct {
	g *graph.Graph
	// P is the per-round, per-edge availability probability.
	P float64

	buf stateBuf
	// sub is the mask-sampling substream, reseeded each round from the
	// single master draw.
	sub *rand.Rand
	// flips holds the edge ids currently set to the minority value, so
	// the next round can undo exactly those writes. majority records the
	// fill value the rest of the mask holds (true when P ≥ 0.5); if P is
	// changed mid-run across 0.5 the mask is refilled once.
	flips      []int
	prevFlips  []int
	majority   bool
	maskPrimed bool
	deltaState
}

// NewEdgeChurn builds an EdgeChurn environment over g.
func NewEdgeChurn(g *graph.Graph, p float64) *EdgeChurn { return &EdgeChurn{g: g, P: p} }

// Name implements Environment.
func (e *EdgeChurn) Name() string { return fmt.Sprintf("edge-churn(p=%.2f)", e.P) }

// Graph implements Environment.
func (e *EdgeChurn) Graph() *graph.Graph { return e.g }

// geometricGap returns the number of majority-valued edges preceding the
// next minority edge: Geometric(q) on {0, 1, …} via inversion. 1−U is in
// (0, 1], so its logarithm is finite; logOneMinusQ is the precomputed
// log1p(−q), which is nonzero for every q in (0, 1] — including denormal
// q, where log(1−q) would round to log(1.0) = 0 and the division would
// produce ±Inf. Gaps at or beyond limit saturate to limit, so the
// float→int conversion can never overflow into a negative index.
func geometricGap(rng *rand.Rand, logOneMinusQ float64, limit int) int {
	u := 1 - rng.Float64()
	g := math.Log(u) / logOneMinusQ
	if !(g < float64(limit)) { // catches +Inf and NaN too
		return limit
	}
	return int(g)
}

// sampleFlips appends to dst[:0] the ascending ids in [0, m) of the
// minority edges for one round: each id independently selected with
// probability q via geometric gap skipping, consuming one draw per
// selected id (plus one final overshoot draw).
//det:hotpath
func sampleFlips(dst []int, m int, q float64, rng *rand.Rand) []int {
	dst = dst[:0]
	if q <= 0 || m == 0 {
		return dst
	}
	l := math.Log1p(-q)
	for id := geometricGap(rng, l, m); id < m; id += 1 + geometricGap(rng, l, m) {
		dst = append(dst, id)
	}
	return dst
}

// Step implements Environment.
func (e *EdgeChurn) Step(_ int, rng *rand.Rand) State {
	// One master draw per round, whatever P is: the rest of the engine's
	// stream consumption never depends on the mask contents.
	seed := rng.Int63()
	if e.sub == nil {
		//lint:ignore detrand churn sub-stream is golden-pinned to the stdlib source: constructed once, reseeded per round via Seed (one O(607) rebuild per ROUND, amortized — unlike the per-group reseeds FastRand replaced); migrating would re-pin every churn golden
		e.sub = rand.New(rand.NewSource(seed))
	} else {
		e.sub.Seed(seed)
	}

	majority := e.P >= 0.5
	q := 1 - e.P // minority probability
	if !majority {
		q = e.P
	}
	var s State
	steady := true
	if !e.maskPrimed || majority != e.majority {
		// First round (or P crossed ½): fill the whole mask once.
		s = e.buf.allUp(e.g)
		s.EdgeUp.FillValue(majority)
		e.majority = majority
		e.maskPrimed = true
		e.flips = e.flips[:0]
		steady = false
	} else {
		// Steady state: undo only last round's minority entries.
		s = e.buf.s
		for _, id := range e.flips {
			s.EdgeUp.SetTo(id, majority)
		}
	}
	e.prevFlips = append(e.prevFlips[:0], e.flips...)
	e.flips = sampleFlips(e.flips, e.g.M(), q, e.sub)
	for _, id := range e.flips {
		s.EdgeUp.SetTo(id, !majority)
	}
	e.deltaState = deltaState{
		edges: mergeUnion(e.edges[:0], e.prevFlips, e.flips),
		ok:    steady,
	}
	return s
}

// Grow implements Growable. New edge entries take the majority value and
// new agents come up; the very next Step samples the new edges iid like
// every other (sampleFlips ranges over the grown M), and the engine's
// join-touched stream covers the new ids, so downstream indices see their
// post-Step values.
func (e *EdgeChurn) Grow() { e.buf.grow(e.g, e.majority) }

// --- PowerLoss: agents go down and come back ---

// PowerLoss disables each agent independently with probability P each round
// (battery exhaustion, duty cycling). A disabled agent takes no steps and
// keeps its state, exactly as §1.1 prescribes. Edges are up, but an edge is
// unusable unless both endpoints are up. The per-agent Bernoulli draws are
// compared against the previous round's mask entry, so StepDeltas reports
// the exact set of agents whose up-ness flipped.
type PowerLoss struct {
	g *graph.Graph
	// P is the per-round, per-agent outage probability.
	P float64

	buf    stateBuf
	primed bool
	deltaState
}

// NewPowerLoss builds a PowerLoss environment over g.
func NewPowerLoss(g *graph.Graph, p float64) *PowerLoss { return &PowerLoss{g: g, P: p} }

// Name implements Environment.
func (e *PowerLoss) Name() string { return fmt.Sprintf("power-loss(p=%.2f)", e.P) }

// Graph implements Environment.
func (e *PowerLoss) Graph() *graph.Graph { return e.g }

// Step implements Environment.
func (e *PowerLoss) Step(_ int, rng *rand.Rand) State {
	var s State
	if !e.primed {
		s = e.buf.allUp(e.g)
		n := s.AgentUp.Len()
		for i := 0; i < n; i++ {
			s.AgentUp.SetTo(i, rng.Float64() >= e.P)
		}
		e.primed = true
		e.deltaState = deltaState{ok: false}
		return s
	}
	s = e.buf.s
	agents := e.agents[:0]
	n := s.AgentUp.Len()
	for i := 0; i < n; i++ {
		v := rng.Float64() >= e.P
		if v != s.AgentUp.Get(i) {
			s.AgentUp.SetTo(i, v)
			agents = append(agents, i)
		}
	}
	e.deltaState = deltaState{agents: agents, ok: true}
	return s
}

// Grow implements Growable: new agents arrive up (the next Step's
// Bernoulli pass covers them — it ranges over the grown mask), new edges
// are up.
func (e *PowerLoss) Grow() { e.buf.grow(e.g, true) }

// --- Partitioner: adversarial network splits that heal ---

// Partitioner alternates between a healthy phase (everything up) and a
// partitioned phase in which the agent set is split into Parts contiguous
// blocks with every inter-block edge cut. It models the paper's headline
// scenario: "the set of processes may be partitioned into subsets that
// cannot communicate with each other". During the partition, each block is
// a group that must behave as if it were the entire system —
// self-similarity made observable (experiment E5).
//
// The inter-block cut set is static, so it is computed once as a bitset:
// phase transitions are two word-level mask operations and StepDeltas
// reports the cut list exactly on transition rounds and nothing within a
// phase.
type Partitioner struct {
	g *graph.Graph
	// Parts is the number of blocks during the partitioned phase (≥ 2).
	Parts int
	// HealthyRounds and PartitionRounds are the phase lengths.
	HealthyRounds, PartitionRounds int

	buf      stateBuf
	cutMask  bitset.Set
	cutIDs   []int
	prevPart bool
	primed   bool
	deltaState
}

// NewPartitioner builds a Partitioner with the given phase structure.
func NewPartitioner(g *graph.Graph, parts, healthyRounds, partitionRounds int) *Partitioner {
	if parts < 2 {
		parts = 2
	}
	return &Partitioner{g: g, Parts: parts, HealthyRounds: healthyRounds, PartitionRounds: partitionRounds}
}

// Name implements Environment.
func (e *Partitioner) Name() string {
	return fmt.Sprintf("partitioner(%d parts, %d/%d)", e.Parts, e.HealthyRounds, e.PartitionRounds)
}

// Graph implements Environment.
func (e *Partitioner) Graph() *graph.Graph { return e.g }

// Partitioned reports whether the given round falls in a partitioned phase.
func (e *Partitioner) Partitioned(round int) bool {
	period := e.HealthyRounds + e.PartitionRounds
	if period <= 0 {
		return false
	}
	return round%period >= e.HealthyRounds
}

// Block returns the partition block of agent a during partitioned phases.
func (e *Partitioner) Block(a int) int {
	per := (e.g.N() + e.Parts - 1) / e.Parts
	if per == 0 {
		return 0
	}
	return a / per
}

func (e *Partitioner) ensureCut() {
	if !e.cutMask.IsZero() {
		return
	}
	e.cutMask = bitset.New(e.g.M())
	for id, edge := range e.g.EdgesView() {
		if e.Block(edge.A) != e.Block(edge.B) {
			e.cutMask.Set(id)
			e.cutIDs = append(e.cutIDs, id)
		}
	}
}

// Step implements Environment.
func (e *Partitioner) Step(round int, _ *rand.Rand) State {
	part := e.Partitioned(round)
	var s State
	if !e.primed {
		s = e.buf.allUp(e.g)
		e.ensureCut()
		if part {
			s.EdgeUp.AndNot(e.cutMask)
		}
		e.primed = true
		e.deltaState = deltaState{ok: false}
	} else {
		s = e.buf.s
		if part != e.prevPart {
			if part {
				s.EdgeUp.AndNot(e.cutMask)
			} else {
				s.EdgeUp.Or(e.cutMask)
			}
			e.deltaState = deltaState{edges: e.cutIDs, ok: true}
		} else {
			e.deltaState = deltaState{ok: true}
		}
	}
	e.prevPart = part
	return s
}

// --- Adversary: targeted edge cuts under a fairness budget ---

// Adversary is a stronger opponent: each round it cuts the CutFraction of
// edges it believes are most useful (those whose endpoints currently have
// the most distinct states, as reported through a feedback hook), but it is
// subject to a fairness budget: every edge is forcibly enabled at least
// once every Window rounds, so the assumption (2) still holds and the
// correctness theorem still applies. Setting Window ≤ 0 removes the budget
// and lets the adversary starve edges forever — the configuration used to
// demonstrate what happens when (2) is violated (experiment E12).
//
// The adversary rescoring is inherently O(M) per round (it re-ranks every
// edge), so it does not implement DeltaEnvironment.
type Adversary struct {
	g *graph.Graph
	// CutFraction in [0,1] is the fraction of edges cut each round.
	CutFraction float64
	// Window is the fairness budget; ≤ 0 disables fairness.
	Window int
	// Useful scores an edge's current usefulness; higher is more useful to
	// the agents and hence more attractive to cut. The simulation engine
	// installs a hook based on live agent states. A nil Useful falls back
	// to uniform random cuts.
	Useful func(e graph.Edge) float64

	lastEnabled []int // round at which each edge was last enabled
	buf         stateBuf
	order       []adversaryScore // reusable per-round scoring scratch
}

// adversaryScore pairs an edge id with the adversary's score for it.
type adversaryScore struct {
	id    int
	score float64
}

// NewAdversary builds an Adversary cutting the given fraction of edges with
// the given fairness window.
func NewAdversary(g *graph.Graph, cutFraction float64, window int) *Adversary {
	return &Adversary{g: g, CutFraction: cutFraction, Window: window,
		lastEnabled: make([]int, g.M())}
}

// SetUseful installs the usefulness oracle the adversary targets. The
// simulation engine wires this to live agent state (an edge is useful when
// its endpoints currently disagree) when Options.AdversaryFeedback is set.
func (e *Adversary) SetUseful(useful func(graph.Edge) float64) { e.Useful = useful }

// Name implements Environment.
func (e *Adversary) Name() string {
	fair := "fair"
	if e.Window <= 0 {
		fair = "UNFAIR"
	}
	return fmt.Sprintf("adversary(cut=%.2f, %s)", e.CutFraction, fair)
}

// Graph implements Environment.
func (e *Adversary) Graph() *graph.Graph { return e.g }

// Step implements Environment.
func (e *Adversary) Step(round int, rng *rand.Rand) State {
	s := e.buf.allUp(e.g)
	m := e.g.M()
	cut := int(math.Round(e.CutFraction * float64(m)))
	if cut > m {
		cut = m
	}
	// Score edges: adversary cuts the most useful first.
	if e.order == nil {
		e.order = make([]adversaryScore, m)
	}
	order := e.order
	for id := 0; id < m; id++ {
		sc := rng.Float64() // tie-break / fallback
		if e.Useful != nil {
			sc += 1000 * e.Useful(e.g.Edge(id))
		}
		order[id] = adversaryScore{id, sc}
	}
	// Partial selection of the top `cut` by score.
	for i := 0; i < cut; i++ {
		best := i
		for j := i + 1; j < m; j++ {
			if order[j].score > order[best].score {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
		s.EdgeUp.Clear(order[i].id)
	}
	// Fairness budget: re-enable any edge starved past the window.
	if e.Window > 0 {
		for id := 0; id < m; id++ {
			if s.EdgeUp.Get(id) {
				e.lastEnabled[id] = round
			} else if round-e.lastEnabled[id] >= e.Window {
				s.EdgeUp.Set(id)
				e.lastEnabled[id] = round
			}
		}
	}
	return s
}

// --- Starver: violates (2) on purpose ---

// Starver keeps a fixed set of edges permanently down and everything else
// permanently up. It violates assumption (2) for the starved edges, and is
// used to demonstrate the necessity of the environment assumptions: sum
// over a complete graph minus a starved star around the eventual collector
// cannot terminate, while min converges via alternate routes (E12).
type Starver struct {
	g *graph.Graph
	// starved is sorted and deduplicated: detlint's mapiter triage
	// replaced the original map[int]bool — Clear is commutative so the
	// produced mask was identical either way, but a deterministic scan
	// order costs nothing and leaves nothing for the analyzer to argue
	// about.
	starved []int
	buf     stateBuf
	primed  bool
	deltaState
}

// NewStarver builds a Starver that permanently disables the given edge ids.
func NewStarver(g *graph.Graph, starvedEdges []int) *Starver {
	ids := append([]int(nil), starvedEdges...)
	sort.Ints(ids)
	ids = slices.Compact(ids)
	return &Starver{g: g, starved: ids}
}

// Name implements Environment.
func (e *Starver) Name() string { return fmt.Sprintf("starver(%d edges)", len(e.starved)) }

// Graph implements Environment.
func (e *Starver) Graph() *graph.Graph { return e.g }

// Grow implements Growable: newly attached edges are not starved, so
// they extend the mask up; the starved id set is fixed at construction.
func (e *Starver) Grow() { e.buf.grow(e.g, true) }

// Step implements Environment.
func (e *Starver) Step(int, *rand.Rand) State {
	if !e.primed {
		s := e.buf.allUp(e.g)
		for _, id := range e.starved {
			s.EdgeUp.Clear(id)
		}
		e.primed = true
		e.deltaState = deltaState{ok: false}
		return s
	}
	e.deltaState = deltaState{ok: true}
	return e.buf.s
}

// --- RoundRobin: minimal fairness ---

// RoundRobin enables exactly one edge per round, cycling through the edge
// list. It is the weakest environment satisfying (2) over the whole graph:
// every Q_e holds infinitely often, but only one group of two agents can
// collaborate at a time. It bounds the slow extreme of the adaptivity
// spectrum in E4/E11. StepDeltas is exact: at most the previous and the
// current enabled edge change per round.
type RoundRobin struct {
	g   *graph.Graph
	buf stateBuf

	prevEdge int
	primed   bool
	deltaBuf [2]int
	deltaState
}

// NewRoundRobin builds a RoundRobin environment over g.
func NewRoundRobin(g *graph.Graph) *RoundRobin { return &RoundRobin{g: g, prevEdge: -1} }

// Name implements Environment.
func (e *RoundRobin) Name() string { return "round-robin(1 edge/round)" }

// Graph implements Environment.
func (e *RoundRobin) Graph() *graph.Graph { return e.g }

// Grow implements Growable: new edges join the cycle down (exactly one
// edge is up per round; the round counter reaches them in turn), new
// agents up. A round whose cursor lands on a retired id enables only
// that unusable edge — consumers skip it and the round idles, preserving
// the one-draw-per-round structure.
func (e *RoundRobin) Grow() { e.buf.grow(e.g, false) }

// Step implements Environment.
func (e *RoundRobin) Step(round int, _ *rand.Rand) State {
	cur := -1
	if e.g.M() > 0 {
		cur = round % e.g.M()
	}
	var s State
	if !e.primed {
		s = e.buf.edgesDown(e.g)
		if cur >= 0 {
			s.EdgeUp.Set(cur)
		}
		e.primed = true
		e.deltaState = deltaState{ok: false}
	} else {
		s = e.buf.s
		if e.prevEdge >= 0 && e.prevEdge != cur {
			s.EdgeUp.Clear(e.prevEdge)
		}
		if cur >= 0 {
			s.EdgeUp.Set(cur)
		}
		d := e.deltaBuf[:0]
		lo, hi := e.prevEdge, cur
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo >= 0 {
			d = append(d, lo)
		}
		if hi >= 0 && hi != lo {
			d = append(d, hi)
		}
		e.deltaState = deltaState{edges: d, ok: true}
	}
	e.prevEdge = cur
	return s
}

// --- Mobile: random-waypoint mobility over a geometric graph ---

// Mobile models the paper's mobile-agent motivation: agents move in the
// unit square (random-waypoint) and can communicate exactly when within
// Radius of each other. The underlying graph must be complete — edges
// correspond to agent pairs — and availability is derived from positions,
// so connectivity waxes and wanes as agents travel. Every pairwise
// distance is recomputed per round, so Mobile does not implement
// DeltaEnvironment.
type Mobile struct {
	g      *graph.Graph
	Radius float64
	Speed  float64

	pos    [][2]float64
	dst    [][2]float64
	inited bool
	buf    stateBuf
}

// NewMobile builds a Mobile environment over the complete graph g (one edge
// per agent pair).
func NewMobile(g *graph.Graph, radius, speed float64) (*Mobile, error) {
	if g.M() != g.N()*(g.N()-1)/2 {
		return nil, fmt.Errorf("env: Mobile requires the complete graph, got %s with %d edges", g.Name(), g.M())
	}
	return &Mobile{g: g, Radius: radius, Speed: speed}, nil
}

// Name implements Environment.
func (e *Mobile) Name() string {
	return fmt.Sprintf("mobile(r=%.2f, v=%.3f)", e.Radius, e.Speed)
}

// Graph implements Environment.
func (e *Mobile) Graph() *graph.Graph { return e.g }

// Positions returns a copy of the current agent positions (for examples
// that visualize the run). Before the first Step it returns nil.
func (e *Mobile) Positions() [][2]float64 {
	if !e.inited {
		return nil
	}
	out := make([][2]float64, len(e.pos))
	copy(out, e.pos)
	return out
}

// Step implements Environment.
func (e *Mobile) Step(_ int, rng *rand.Rand) State {
	n := e.g.N()
	if !e.inited {
		e.pos = graph.GeometricPositions(n, rng)
		e.dst = graph.GeometricPositions(n, rng)
		e.inited = true
	}
	// Move every agent toward its waypoint; pick a new one on arrival.
	for i := 0; i < n; i++ {
		dx := e.dst[i][0] - e.pos[i][0]
		dy := e.dst[i][1] - e.pos[i][1]
		d := math.Hypot(dx, dy)
		if d <= e.Speed {
			e.pos[i] = e.dst[i]
			e.dst[i] = [2]float64{rng.Float64(), rng.Float64()}
			continue
		}
		e.pos[i][0] += dx / d * e.Speed
		e.pos[i][1] += dy / d * e.Speed
	}
	s := e.buf.allUp(e.g)
	for id := 0; id < e.g.M(); id++ {
		edge := e.g.Edge(id)
		dx := e.pos[edge.A][0] - e.pos[edge.B][0]
		dy := e.pos[edge.A][1] - e.pos[edge.B][1]
		s.EdgeUp.SetTo(id, math.Hypot(dx, dy) <= e.Radius)
	}
	return s
}

// --- FairnessProbe: empirical check of assumption (2) ---

// FairnessProbe observes the sequence of environment states and reports,
// per edge, how often Q_e held. It turns the paper's environment
// assumption (2) into a measurable quantity: a run over which some edge
// never (or too rarely) came up is outside the theorem's hypotheses, and
// experiments report it as such.
//
// The probe is transition-based: it stores the previous round's mask and
// updates per-edge statistics only where the mask changed. Observe finds
// the changes itself with a word-level XOR scan (O(M/64 + flips) per
// round); ObserveDelta takes the caller's changed-id list and is O(flips)
// — the path the simulation engine uses when the environment reports
// exact deltas. Up-time and gap figures are reconstructed lazily at query
// time from run boundaries, so steady state costs nothing per edge.
type FairnessProbe struct {
	rounds int
	prev   bitset.Set // up-ness as of the last observed round
	// Per-edge run bookkeeping. For an edge currently up, runStart is the
	// round its current up-run began; accUp counts up-rounds in completed
	// runs only. lastUpEnd is the last round of the most recent completed
	// up-run (0 if none), and maxGap the largest closed gap — the gap
	// still open at query time is folded in by the accessors.
	accUp       []int
	runStart    []int
	lastUpEnd   []int
	maxGap      []int
	diffScratch []int
}

// NewFairnessProbe builds a probe for a graph with m edges.
func NewFairnessProbe(m int) *FairnessProbe {
	return &FairnessProbe{
		prev:      bitset.New(m),
		accUp:     make([]int, m),
		runStart:  make([]int, m),
		lastUpEnd: make([]int, m),
		maxGap:    make([]int, m),
		// Worst-case diff capacity up front: the round-1 full diff (every
		// up edge flips from the all-clear initial state) must not grow
		// the scratch by repeated doubling — warm sweep cells build a
		// fresh probe per run, so that growth would recur per cell.
		diffScratch: make([]int, 0, m),
	}
}

// Grow extends the probe to m edges. New edges are treated as born down
// at the given round: their first up-transition measures the gap since
// birth, not since round 0, and their up-fraction denominator remains the
// full observation window (a late joiner that is always up still shows a
// sub-1 fraction — the probe reports what was observed, not what was
// possible).
func (p *FairnessProbe) Grow(m, round int) {
	old := p.prev.Len()
	if m <= old {
		return
	}
	p.prev = p.prev.Resized(m, false)
	for id := old; id < m; id++ {
		p.accUp = append(p.accUp, 0)
		p.runStart = append(p.runStart, 0)
		p.lastUpEnd = append(p.lastUpEnd, round)
		p.maxGap = append(p.maxGap, 0)
	}
}

// transition records that edge id flipped to nowUp at round r.
func (p *FairnessProbe) transition(id int, nowUp bool, r int) {
	if nowUp {
		if gap := r - p.lastUpEnd[id]; gap > p.maxGap[id] {
			p.maxGap[id] = gap
		}
		p.runStart[id] = r
	} else {
		p.accUp[id] += r - p.runStart[id]
		p.lastUpEnd[id] = r - 1
	}
}

// Observe records one environment state, finding the changed edges by a
// word-level diff against the previous round.
func (p *FairnessProbe) Observe(s State) {
	p.rounds++
	r := p.rounds
	if s.EdgeUp.IsZero() {
		// Absent mask: everything up. Flip any edge currently tracked down.
		for id := 0; id < p.prev.Len(); id++ {
			if !p.prev.Get(id) {
				p.transition(id, true, r)
				p.prev.Set(id)
			}
		}
		return
	}
	p.diffScratch = s.EdgeUp.AppendDiff(p.prev, p.diffScratch[:0])
	for _, id := range p.diffScratch {
		p.transition(id, s.EdgeUp.Get(id), r)
	}
	p.prev.Copy(s.EdgeUp)
}

// ObserveDelta records one environment state given the caller's list of
// edge ids that may have changed since the previous observed state. The
// list may include ids that did not actually change; it must not omit any
// that did.
//det:hotpath
func (p *FairnessProbe) ObserveDelta(s State, touchedEdges []int) {
	p.rounds++
	r := p.rounds
	for _, id := range touchedEdges {
		nowUp := s.EdgeUp.IsZero() || s.EdgeUp.Get(id)
		if nowUp != p.prev.Get(id) {
			p.transition(id, nowUp, r)
			p.prev.SetTo(id, nowUp)
		}
	}
}

// Rounds returns how many states were observed.
func (p *FairnessProbe) Rounds() int { return p.rounds }

// upFor returns the number of observed rounds edge id was available.
func (p *FairnessProbe) upFor(id int) int {
	n := p.accUp[id]
	if p.prev.Get(id) {
		n += p.rounds - p.runStart[id] + 1
	}
	return n
}

// UpFraction returns the fraction of observed rounds in which edge id was
// available.
func (p *FairnessProbe) UpFraction(id int) float64 {
	if p.rounds == 0 {
		return 0
	}
	return float64(p.upFor(id)) / float64(p.rounds)
}

// MaxGap returns the longest observed stretch of rounds during which edge
// id was unavailable, counting a still-open gap through the last observed
// round.
func (p *FairnessProbe) MaxGap(id int) int {
	g := p.maxGap[id]
	if !p.prev.Get(id) {
		if open := p.rounds - p.lastUpEnd[id]; open > g {
			g = open
		}
	}
	return g
}

// Starved returns the ids of edges that were never available — witnesses
// that the run violated assumption (2) for those Q_e.
func (p *FairnessProbe) Starved() []int {
	var out []int
	for id := range p.accUp {
		if p.upFor(id) == 0 {
			out = append(out, id)
		}
	}
	return out
}
