package env

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
)

func TestStatic(t *testing.T) {
	g := graph.Ring(5)
	e := NewStatic(g)
	s := e.Step(0, nil)
	if s.UpEdgeCount() != g.M() || s.UpAgentCount() != g.N() {
		t.Errorf("static: %d/%d edges, %d/%d agents", s.UpEdgeCount(), g.M(), s.UpAgentCount(), g.N())
	}
	if e.Graph() != g || e.Name() == "" {
		t.Error("metadata wrong")
	}
}

func TestAllUpAndClone(t *testing.T) {
	g := graph.Line(4)
	s := AllUp(g)
	c := s.Clone()
	c.EdgeUp.Clear(0)
	c.AgentUp.Clear(0)
	if !s.EdgeUp.Get(0) || !s.AgentUp.Get(0) {
		t.Error("Clone aliases original")
	}
}

func TestEdgeChurnExtremes(t *testing.T) {
	g := graph.Complete(6)
	rng := rand.New(rand.NewSource(1))
	always := NewEdgeChurn(g, 1.0)
	if s := always.Step(0, rng); s.UpEdgeCount() != g.M() {
		t.Error("p=1 churn dropped edges")
	}
	never := NewEdgeChurn(g, 0.0)
	if s := never.Step(0, rng); s.UpEdgeCount() != 0 {
		t.Error("p=0 churn kept edges")
	}
}

func TestEdgeChurnRate(t *testing.T) {
	g := graph.Complete(10)
	e := NewEdgeChurn(g, 0.3)
	rng := rand.New(rand.NewSource(2))
	up, total := 0, 0
	for r := 0; r < 200; r++ {
		s := e.Step(r, rng)
		up += s.UpEdgeCount()
		total += g.M()
		if s.UpAgentCount() != g.N() {
			t.Fatal("churn disabled agents")
		}
	}
	frac := float64(up) / float64(total)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("empirical availability %.3f far from 0.3", frac)
	}
}

func TestPowerLoss(t *testing.T) {
	g := graph.Ring(8)
	e := NewPowerLoss(g, 0.5)
	rng := rand.New(rand.NewSource(3))
	down := 0
	for r := 0; r < 100; r++ {
		s := e.Step(r, rng)
		down += g.N() - s.UpAgentCount()
		if s.UpEdgeCount() != g.M() {
			t.Fatal("power loss disabled edges")
		}
	}
	if down == 0 || down == 100*g.N() {
		t.Errorf("implausible outage count %d", down)
	}
}

func TestPartitionerPhases(t *testing.T) {
	g := graph.Complete(6)
	e := NewPartitioner(g, 2, 3, 2) // rounds 0,1,2 healthy; 3,4 partitioned
	rng := rand.New(rand.NewSource(4))

	if e.Partitioned(0) || e.Partitioned(2) {
		t.Error("healthy rounds misclassified")
	}
	if !e.Partitioned(3) || !e.Partitioned(4) {
		t.Error("partitioned rounds misclassified")
	}
	if e.Partitioned(5) { // wraps around
		t.Error("period wrap wrong")
	}

	healthy := e.Step(0, rng)
	if healthy.UpEdgeCount() != g.M() {
		t.Error("healthy phase cut edges")
	}
	split := e.Step(3, rng)
	comps := g.Components(split.EdgeUp, split.AgentUp)
	if len(comps) != 2 {
		t.Fatalf("partitioned phase components = %d, want 2: %v", len(comps), comps)
	}
	// Blocks are contiguous: {0,1,2} and {3,4,5}.
	if e.Block(0) != 0 || e.Block(2) != 0 || e.Block(3) != 1 || e.Block(5) != 1 {
		t.Error("block assignment wrong")
	}
}

func TestPartitionerMinParts(t *testing.T) {
	g := graph.Complete(4)
	e := NewPartitioner(g, 1, 1, 1) // parts clamped to 2
	if e.Parts != 2 {
		t.Errorf("Parts = %d, want clamp to 2", e.Parts)
	}
}

func TestAdversaryFairWindow(t *testing.T) {
	g := graph.Complete(5)
	e := NewAdversary(g, 1.0, 4) // cuts everything, but window forces re-enable
	rng := rand.New(rand.NewSource(5))
	probe := NewFairnessProbe(g.M())
	for r := 0; r < 100; r++ {
		probe.Observe(e.Step(r, rng))
	}
	if starved := probe.Starved(); len(starved) != 0 {
		t.Errorf("fair adversary starved edges %v", starved)
	}
	for id := 0; id < g.M(); id++ {
		if probe.MaxGap(id) > 6 { // window 4 plus slack for initial phase
			t.Errorf("edge %d gap %d exceeds fairness window", id, probe.MaxGap(id))
		}
	}
}

func TestAdversaryUnfair(t *testing.T) {
	g := graph.Complete(4)
	e := NewAdversary(g, 0.5, 0) // no fairness budget
	// Make edge 0 always the most useful so it is always cut.
	e.Useful = func(ed graph.Edge) float64 {
		if ed == g.Edge(0) {
			return 1
		}
		return 0
	}
	rng := rand.New(rand.NewSource(6))
	probe := NewFairnessProbe(g.M())
	for r := 0; r < 50; r++ {
		probe.Observe(e.Step(r, rng))
	}
	if probe.UpFraction(0) != 0 {
		t.Errorf("targeted edge was up %.2f of rounds", probe.UpFraction(0))
	}
	if len(probe.Starved()) == 0 {
		t.Error("unfair adversary starved nothing")
	}
}

func TestStarver(t *testing.T) {
	g := graph.Complete(4)
	id, _ := g.EdgeID(0, 1)
	e := NewStarver(g, []int{id})
	rng := rand.New(rand.NewSource(7))
	for r := 0; r < 10; r++ {
		s := e.Step(r, rng)
		if s.EdgeUp.Get(id) {
			t.Fatal("starved edge came up")
		}
		if s.UpEdgeCount() != g.M()-1 {
			t.Fatal("starver cut extra edges")
		}
	}
}

func TestRoundRobin(t *testing.T) {
	g := graph.Ring(5)
	e := NewRoundRobin(g)
	rng := rand.New(rand.NewSource(8))
	probe := NewFairnessProbe(g.M())
	for r := 0; r < 3*g.M(); r++ {
		s := e.Step(r, rng)
		if s.UpEdgeCount() != 1 {
			t.Fatalf("round %d: %d edges up, want 1", r, s.UpEdgeCount())
		}
		probe.Observe(s)
	}
	for id := 0; id < g.M(); id++ {
		if probe.UpFraction(id) == 0 {
			t.Errorf("edge %d never scheduled", id)
		}
	}
}

func TestMobileRequiresComplete(t *testing.T) {
	if _, err := NewMobile(graph.Ring(5), 0.3, 0.05); err == nil {
		t.Error("Mobile accepted a non-complete graph")
	}
}

func TestMobileConnectivityVaries(t *testing.T) {
	g := graph.Complete(8)
	e, err := NewMobile(g, 0.35, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	if e.Positions() != nil {
		t.Error("positions before first step")
	}
	counts := map[int]bool{}
	for r := 0; r < 300; r++ {
		s := e.Step(r, rng)
		counts[s.UpEdgeCount()] = true
	}
	if len(counts) < 3 {
		t.Errorf("connectivity never varied: %v", counts)
	}
	if got := e.Positions(); len(got) != g.N() {
		t.Errorf("positions = %d, want %d", len(got), g.N())
	}
}

func TestFairnessProbeGaps(t *testing.T) {
	p := NewFairnessProbe(2)
	mk := func(a, b bool) State { return State{EdgeUp: bitset.FromBools([]bool{a, b})} }
	p.Observe(mk(true, false))
	p.Observe(mk(false, false))
	p.Observe(mk(true, false))
	if p.Rounds() != 3 {
		t.Errorf("rounds = %d", p.Rounds())
	}
	if f := p.UpFraction(0); f < 0.66 || f > 0.67 {
		t.Errorf("up fraction = %g", f)
	}
	if p.MaxGap(0) != 2 {
		t.Errorf("max gap edge0 = %d, want 2", p.MaxGap(0))
	}
	if p.MaxGap(1) != 3 {
		t.Errorf("max gap edge1 = %d, want 3", p.MaxGap(1))
	}
	starved := p.Starved()
	if len(starved) != 1 || starved[0] != 1 {
		t.Errorf("starved = %v", starved)
	}
}

func TestFairnessProbeEmpty(t *testing.T) {
	p := NewFairnessProbe(1)
	if p.UpFraction(0) != 0 {
		t.Error("up fraction on empty probe")
	}
}

// TestEdgeChurnIncrementalMatchesScratch: the incrementally repaired
// mask must equal, every round, the mask computed from scratch from the
// same per-round sub-seed — the regression guard on the undo-then-flip
// maintenance path (a stale or missed undo would silently skew
// availability).
func TestEdgeChurnIncrementalMatchesScratch(t *testing.T) {
	g := graph.Complete(14)
	for _, p := range []float64{0.999, 0.9, 0.5, 0.3, 0.01} {
		e := NewEdgeChurn(g, p)
		master := rand.New(rand.NewSource(7))
		mirror := rand.New(rand.NewSource(7)) // replays the master draws
		var scratch []int
		for round := 0; round < 300; round++ {
			s := e.Step(round, master)
			seed := mirror.Int63()
			majority := p >= 0.5
			q := 1 - p
			if !majority {
				q = p
			}
			scratch = sampleFlips(scratch, g.M(), q, rand.New(rand.NewSource(seed)))
			want := make([]bool, g.M())
			for i := range want {
				want[i] = majority
			}
			for _, id := range scratch {
				want[id] = !majority
			}
			for id := range want {
				if s.EdgeUp.Get(id) != want[id] {
					t.Fatalf("p=%g round %d: incremental mask[%d]=%v, from-scratch %v",
						p, round, id, s.EdgeUp.Get(id), want[id])
				}
			}
		}
	}
}

// TestEdgeChurnMasterConsumptionFixed: Step must consume exactly one
// master draw per round, independent of P and of how many edges flipped —
// the engine's downstream randomness (matching seeds, group seeds) must
// not shift when churn density changes.
func TestEdgeChurnMasterConsumptionFixed(t *testing.T) {
	g := graph.Ring(32)
	for _, p := range []float64{1.0, 0.7, 0.2, 0.0} {
		e := NewEdgeChurn(g, p)
		master := rand.New(rand.NewSource(3))
		control := rand.New(rand.NewSource(3))
		for round := 0; round < 50; round++ {
			e.Step(round, master)
			control.Int63()
		}
		if master.Int63() != control.Int63() {
			t.Fatalf("p=%g: Step consumed a P-dependent number of master draws", p)
		}
	}
}

// TestEdgeChurnPCrossesHalf: changing P across ½ mid-run flips the
// majority fill value; the mask must be refilled correctly instead of
// keeping stale majority entries.
func TestEdgeChurnPCrossesHalf(t *testing.T) {
	g := graph.Complete(10)
	e := NewEdgeChurn(g, 0.95)
	master := rand.New(rand.NewSource(9))
	for round := 0; round < 5; round++ {
		e.Step(round, master)
	}
	e.P = 0.05
	up := 0
	for round := 5; round < 105; round++ {
		up += e.Step(round, master).UpEdgeCount()
	}
	if frac := float64(up) / float64(100*g.M()); frac < 0.02 || frac > 0.1 {
		t.Errorf("after P change to 0.05, availability %.3f (stale majority fill?)", frac)
	}
}

// TestEdgeChurnStepAllocFree: the steady-state Step must not allocate —
// the mask buffer, flip list, and substream are all reused.
func TestEdgeChurnStepAllocFree(t *testing.T) {
	g := graph.Complete(24)
	e := NewEdgeChurn(g, 0.9)
	master := rand.New(rand.NewSource(5))
	e.Step(0, master) // prime mask, substream, and flip-list capacity
	e.Step(1, master)
	round := 2
	allocs := testing.AllocsPerRun(100, func() {
		e.Step(round, master)
		round++
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocated %.0f times per run", allocs)
	}
}

// TestEdgeChurnExtremeTinyP: availability probabilities down at the
// denormal end must not crash the gap sampler. Before the Log1p guard,
// q < ~1e-16 made log(1−q) round to zero, the division produce ±Inf,
// and the float→int conversion yield a negative edge id that panicked
// Step with an index-out-of-range.
func TestEdgeChurnExtremeTinyP(t *testing.T) {
	g := graph.Complete(8)
	for _, p := range []float64{1e-300, 1e-20, 1e-16, 1 - 1e-16} {
		e := NewEdgeChurn(g, p)
		master := rand.New(rand.NewSource(1))
		for round := 0; round < 50; round++ {
			s := e.Step(round, master)
			up := s.UpEdgeCount()
			if p < 0.5 && up > 1 {
				t.Fatalf("p=%g round %d: %d edges up", p, round, up)
			}
			if p > 0.5 && up < g.M()-1 {
				t.Fatalf("p=%g round %d: only %d/%d edges up", p, round, up, g.M())
			}
		}
	}
}
