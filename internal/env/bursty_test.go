package env

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestMarkovLinksStationaryAvailability(t *testing.T) {
	g := graph.Complete(8)
	e := NewMarkovLinks(g, 0.1, 0.3) // stationary availability 0.75
	if a := e.StationaryAvailability(); math.Abs(a-0.75) > 1e-12 {
		t.Fatalf("stationary = %g", a)
	}
	rng := rand.New(rand.NewSource(1))
	up, total := 0, 0
	for r := 0; r < 3000; r++ {
		s := e.Step(r, rng)
		up += s.UpEdgeCount()
		total += g.M()
	}
	frac := float64(up) / float64(total)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("empirical availability %.3f far from 0.75", frac)
	}
}

func TestMarkovLinksBurstiness(t *testing.T) {
	// Same stationary availability as i.i.d. churn, but runs must be
	// longer: measure the mean up-run length of edge 0.
	g := graph.Ring(6)
	bursty := NewMarkovLinks(g, 0.05, 0.05) // availability 0.5, sticky
	iid := NewEdgeChurn(g, 0.5)
	runLen := func(e Environment, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		runs, cur, total := 0, 0, 0
		for r := 0; r < 4000; r++ {
			s := e.Step(r, rng)
			if s.EdgeUp.Get(0) {
				cur++
			} else if cur > 0 {
				runs++
				total += cur
				cur = 0
			}
		}
		if runs == 0 {
			return float64(cur)
		}
		return float64(total) / float64(runs)
	}
	if b, i := runLen(bursty, 2), runLen(iid, 2); b < 3*i {
		t.Errorf("bursty mean run %.1f not clearly longer than i.i.d. %.1f", b, i)
	}
}

func TestMarkovLinksNeverStarvesWithRecovery(t *testing.T) {
	g := graph.Ring(5)
	e := NewMarkovLinks(g, 0.9, 0.2)
	rng := rand.New(rand.NewSource(3))
	probe := NewFairnessProbe(g.M())
	for r := 0; r < 2000; r++ {
		probe.Observe(e.Step(r, rng))
	}
	if len(probe.Starved()) != 0 {
		t.Errorf("starved edges %v despite positive recovery", probe.Starved())
	}
	if b := e.ExpectedGapBound(); b != 5 {
		t.Errorf("gap bound = %g, want 5", b)
	}
	if b := NewMarkovLinks(g, 0.5, 0).ExpectedGapBound(); !math.IsInf(b, 1) {
		t.Errorf("no-recovery gap bound = %g", b)
	}
}

func TestDayNight(t *testing.T) {
	g := graph.Ring(4)
	e := NewDayNight(g, 3, 2)
	rng := rand.New(rand.NewSource(4))
	for r := 0; r < 10; r++ {
		s := e.Step(r, rng)
		wantDay := r%5 < 3
		if e.Day(r) != wantDay {
			t.Errorf("round %d Day = %v", r, e.Day(r))
		}
		if wantDay && s.UpEdgeCount() != g.M() {
			t.Errorf("day round %d has %d edges", r, s.UpEdgeCount())
		}
		if !wantDay && s.UpEdgeCount() != 0 {
			t.Errorf("night round %d has %d edges", r, s.UpEdgeCount())
		}
	}
}

func TestDayNightClamps(t *testing.T) {
	e := NewDayNight(graph.Ring(3), 0, -1)
	if e.DayRounds != 1 || e.NightRounds != 0 {
		t.Errorf("clamps wrong: %d/%d", e.DayRounds, e.NightRounds)
	}
}

func TestCompose(t *testing.T) {
	g := graph.Ring(6)
	day := NewDayNight(g, 2, 2)
	power := NewPowerLoss(g, 0.5)
	c, err := NewCompose(day, power)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph() != g || c.Name() == "" {
		t.Error("compose metadata")
	}
	rng := rand.New(rand.NewSource(5))
	for r := 0; r < 8; r++ {
		s := c.Step(r, rng)
		if !day.Day(r) && s.UpEdgeCount() != 0 {
			t.Errorf("night round %d has edges through compose", r)
		}
		if s.UpAgentCount() == g.N() && r > 4 {
			// power loss at 0.5 across 6 agents: all-up is possible but
			// rare; tolerate without failing — just ensure the layer is
			// actually consulted by checking at least one round differs.
			continue
		}
	}
}

func TestComposeValidation(t *testing.T) {
	if _, err := NewCompose(); err == nil {
		t.Error("empty compose accepted")
	}
	g1, g2 := graph.Ring(4), graph.Ring(4)
	if _, err := NewCompose(NewStatic(g1), NewStatic(g2)); err == nil {
		t.Error("different graphs accepted")
	}
	if _, err := NewCompose(NewStatic(g1), NewPowerLoss(g1, 0.1)); err != nil {
		t.Errorf("valid compose rejected: %v", err)
	}
}
