package env

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// boolProbe is the pre-bitset reference: it retains the full []bool
// mask history and answers every FairnessProbe query by a naive O(rounds)
// scan. The bitset probe's word-diff Observe and the O(changes)
// ObserveDelta must both agree with it exactly — same fractions, same gap
// semantics (gaps measured between consecutive up-round indices, the
// still-open gap folded in), same starvation verdicts.
type boolProbe struct {
	m       int
	history [][]bool // history[r][id]; nil row = absent mask, all up
}

func (p *boolProbe) observe(mask []bool) {
	var row []bool
	if mask != nil {
		row = make([]bool, p.m)
		copy(row, mask)
	}
	p.history = append(p.history, row)
}

func (p *boolProbe) up(r, id int) bool { return p.history[r] == nil || p.history[r][id] }

func (p *boolProbe) upFraction(id int) float64 {
	if len(p.history) == 0 {
		return 0
	}
	n := 0
	for r := range p.history {
		if p.up(r, id) {
			n++
		}
	}
	return float64(n) / float64(len(p.history))
}

func (p *boolProbe) maxGap(id int) int {
	gap, lastUp := 0, 0
	for r := range p.history {
		if p.up(r, id) {
			if g := (r + 1) - lastUp; g > gap {
				gap = g
			}
			lastUp = r + 1
		}
	}
	if lastUp < len(p.history) {
		if open := len(p.history) - lastUp; open > gap {
			gap = open
		}
	}
	return gap
}

func (p *boolProbe) starved(id int) bool {
	for r := range p.history {
		if p.up(r, id) {
			return false
		}
	}
	return true
}

// TestFairnessProbeMatchesBoolReference drives three probes — word-diff
// Observe, O(changes) ObserveDelta, and the []bool reference — over the
// same mask sequences (random masks with occasional absent rounds, plus
// the starvation-prone sticky Markov model) on the golden-matrix seeds,
// comparing every accessor for every edge at several checkpoints. The
// ObserveDelta touched lists are deliberately padded with unchanged ids:
// supersets must be harmless.
func TestFairnessProbeMatchesBoolReference(t *testing.T) {
	g := graph.Torus(4, 5)
	m := g.M()
	checkpoints := map[int]bool{1: true, 7: true, 50: true, 120: true}

	check := func(t *testing.T, round int, full, delta *FairnessProbe, ref *boolProbe) {
		t.Helper()
		for id := 0; id < m; id++ {
			if a, b, c := full.UpFraction(id), delta.UpFraction(id), ref.upFraction(id); a != c || b != c {
				t.Fatalf("round %d edge %d: UpFraction full=%v delta=%v ref=%v", round, id, a, b, c)
			}
			if a, b, c := full.MaxGap(id), delta.MaxGap(id), ref.maxGap(id); a != c || b != c {
				t.Fatalf("round %d edge %d: MaxGap full=%v delta=%v ref=%v", round, id, a, b, c)
			}
		}
		want := map[int]bool{}
		for id := 0; id < m; id++ {
			if ref.starved(id) {
				want[id] = true
			}
		}
		for _, p := range []*FairnessProbe{full, delta} {
			got := p.Starved()
			if len(got) != len(want) {
				t.Fatalf("round %d: Starved() = %v, want %d ids", round, got, len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("round %d: Starved() reports %d, reference disagrees", round, id)
				}
			}
		}
	}

	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		full, delta := NewFairnessProbe(m), NewFairnessProbe(m)
		ref := &boolProbe{m: m}
		prev := make([]bool, m) // probe initial state: all down
		var touched []int
		for round := 1; round <= 120; round++ {
			var mask []bool
			switch rng.Intn(5) {
			case 0: // absent mask round: everything up
			case 1: // sticky: keep most of the previous round's mask
				mask = make([]bool, m)
				copy(mask, prev)
				for k := 0; k < 2; k++ {
					id := rng.Intn(m)
					mask[id] = !mask[id]
				}
			default:
				mask = make([]bool, m)
				for i := range mask {
					// Edge 0 starves until late: never up before round 90.
					mask[i] = rng.Float64() < 0.6 && (i != 0 || round > 90)
				}
			}
			touched = touched[:0]
			for id := 0; id < m; id++ {
				nowUp := mask == nil || mask[id]
				if nowUp != prev[id] {
					touched = append(touched, id)
				}
				prev[id] = nowUp
			}
			touched = append(touched, rng.Intn(m), rng.Intn(m)) // superset padding

			s := State{EdgeUp: bitset.FromBools(mask)}
			full.Observe(s)
			delta.ObserveDelta(s, touched)
			ref.observe(mask)
			if full.Rounds() != round || delta.Rounds() != round {
				t.Fatalf("round accounting: full=%d delta=%d want %d", full.Rounds(), delta.Rounds(), round)
			}
			if checkpoints[round] {
				check(t, round, full, delta, ref)
			}
		}
		check(t, 120, full, delta, ref)
	}
}
