// Package dynsys is an executable rendering of the paper's §2 model of
// dynamic distributed systems: the product transition system over pairs
// (G, S) of an environment state and the multiset of agent states.
//
// The paper defines:
//
//   - a system transition is EITHER an environment transition G → G' with
//     S unchanged, OR an agents transition S → S' with G unchanged, where
//     the agents' transition is composed of group transitions permitted
//     by the relation R in the current environment state;
//   - the escape relation  S # G  ≡  ∃S' ≠ S : (G,S) → (G,S')  ("S
//     escapes G"), lifted to predicates Q on environment states:
//     S # Q ≡ ∀G : Q(G) : S # G;
//   - the escape postulate (1): if agents can transit from a state
//     infinitely often then they eventually will —
//     ∀S : S # Q : □◇Q ⇒ ◇(S ≠ S).
//
// The postulate is not a theorem: §2.1 notes a system in which "the
// environment always transits from G to G' before the agents can take a
// step", so agents stay stuck forever even though Q holds infinitely
// often. This package makes both sides demonstrable: schedulers decide at
// every step whether the environment or the agents move, an adversarial
// scheduler reproduces the paper's counterexample, and a weakly fair
// scheduler validates the postulate; the checkers verify each outcome on
// recorded traces with the operators of internal/logic.
package dynsys

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/logic"
)

// System is a finite instantiation of the §2 model for agent-state
// vectors of type []T. Environment states are identified by index into
// EnvStates; the environment's own transition relation is unconstrained
// (any G may follow any G), exactly as the paper prescribes ("we place no
// direct constraints on state transitions of the environment").
type System[T any] struct {
	// EnvStates names the environment states (≥ 1).
	EnvStates []string
	// AgentSucc enumerates the agent transitions enabled while the
	// environment is in state g: all vectors S' ≠ S reachable from s in
	// one agents-transition. Stuttering is always permitted implicitly
	// (R is reflexive) and must not be included.
	AgentSucc func(g int, s []T) [][]T
	// Eq compares agent-state vectors.
	Eq func(a, b []T) bool
}

// Validate checks the system definition.
func (sys *System[T]) Validate() error {
	if len(sys.EnvStates) == 0 {
		return errors.New("dynsys: no environment states")
	}
	if sys.AgentSucc == nil || sys.Eq == nil {
		return errors.New("dynsys: AgentSucc and Eq are required")
	}
	return nil
}

// Escape reports the paper's S # G: while the environment is in state g,
// the agents can transit from s to some different state.
func (sys *System[T]) Escape(g int, s []T) bool {
	for _, next := range sys.AgentSucc(g, s) {
		if !sys.Eq(next, s) {
			return true
		}
	}
	return false
}

// EscapeUnder reports S # Q for the predicate "the environment state's
// index is in q": the agents can escape s under EVERY environment state
// satisfying the predicate.
func (sys *System[T]) EscapeUnder(q map[int]bool, s []T) bool {
	any := false
	for g := range sys.EnvStates {
		if !q[g] {
			continue
		}
		any = true
		if !sys.Escape(g, s) {
			return false
		}
	}
	return any
}

// Step is one recorded transition of a run.
type Step[T any] struct {
	// Env is the environment state after the step.
	Env int
	// Agents is the agent vector after the step (aliased to the run's
	// history storage; do not mutate).
	Agents []T
	// AgentMoved reports whether this was an agents-transition.
	AgentMoved bool
}

// Scheduler decides, at each step of a run, whether the environment or
// the agents move, and to where. It returns either (envNext, nil) for an
// environment transition or (-1, agentsNext) for an agents transition;
// agentsNext must be one of AgentSucc's results (or the current vector
// for a stutter).
type Scheduler[T any] interface {
	// Name identifies the scheduler.
	Name() string
	// Next chooses the next transition given the current configuration.
	Next(sys *System[T], g int, s []T, step int, rng *rand.Rand) (envNext int, agentsNext []T)
}

// Run executes steps transitions from (g0, s0) under the scheduler and
// returns the recorded trace (including the initial configuration).
func Run[T any](sys *System[T], sched Scheduler[T], g0 int, s0 []T, steps int, seed int64) ([]Step[T], error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if g0 < 0 || g0 >= len(sys.EnvStates) {
		return nil, fmt.Errorf("dynsys: initial env state %d out of range", g0)
	}
	//lint:ignore detrand finite-state dynamic-system explorer with its own golden-pinned trace stream; not on the engine round path
	rng := rand.New(rand.NewSource(seed))
	trace := make([]Step[T], 0, steps+1)
	cur := append([]T(nil), s0...)
	g := g0
	trace = append(trace, Step[T]{Env: g, Agents: cur})
	for i := 0; i < steps; i++ {
		envNext, agentsNext := sched.Next(sys, g, cur, i, rng)
		if agentsNext == nil {
			if envNext < 0 || envNext >= len(sys.EnvStates) {
				return nil, fmt.Errorf("dynsys: scheduler chose env state %d out of range", envNext)
			}
			g = envNext
			trace = append(trace, Step[T]{Env: g, Agents: cur})
			continue
		}
		next := append([]T(nil), agentsNext...)
		moved := !sys.Eq(next, cur)
		cur = next
		trace = append(trace, Step[T]{Env: g, Agents: cur, AgentMoved: moved})
	}
	return trace, nil
}

// --- Schedulers ---

// EnvFlipper is the paper's §2.1 counterexample scheduler: the
// environment always transits (cycling through its states) before the
// agents can take a step. Agents never move, no matter what Q holds
// infinitely often — the escape postulate fails.
type EnvFlipper[T any] struct{}

// Name implements Scheduler.
func (EnvFlipper[T]) Name() string { return "env-flipper (paper's §2.1 counterexample)" }

// Next implements Scheduler.
func (EnvFlipper[T]) Next(sys *System[T], g int, _ []T, _ int, _ *rand.Rand) (int, []T) {
	return (g + 1) % len(sys.EnvStates), nil
}

// WeaklyFair alternates: it grants the agents a step at least every
// Period transitions (choosing uniformly among the enabled successors)
// and lets the environment cycle otherwise. With Period ≥ 1 the escape
// postulate holds on its runs.
type WeaklyFair[T any] struct {
	// Period is the maximum number of consecutive environment
	// transitions (≥ 1).
	Period int
}

// Name implements Scheduler.
func (w WeaklyFair[T]) Name() string { return fmt.Sprintf("weakly-fair(period=%d)", w.Period) }

// Next implements Scheduler.
func (w WeaklyFair[T]) Next(sys *System[T], g int, s []T, step int, rng *rand.Rand) (int, []T) {
	period := w.Period
	if period < 1 {
		period = 1
	}
	if step%(period+1) == period {
		succs := sys.AgentSucc(g, s)
		if len(succs) > 0 {
			return -1, succs[rng.Intn(len(succs))]
		}
		return -1, s // forced stutter: nothing enabled here
	}
	return (g + 1) % len(sys.EnvStates), nil
}

// --- Postulate checking ---

// PostulateReport summarizes an escape-postulate check on a trace.
type PostulateReport struct {
	// QInfinitelyOften reports the finite-trace reading of □◇Q.
	QInfinitelyOften bool
	// EscapableThroughout reports whether every recorded configuration
	// satisfied S # Q (i.e. the hypothesis "agents can transit … was
	// continuously available").
	EscapableThroughout bool
	// AgentsEverMoved reports ◇(S ≠ S(0)) — some agents-transition
	// happened.
	AgentsEverMoved bool
	// Holds reports the postulate's implication on this trace: if the
	// hypotheses held, the agents moved.
	Holds bool
}

// CheckPostulate evaluates the escape postulate (1) on a recorded trace
// for the environment predicate q.
func CheckPostulate[T any](sys *System[T], trace []Step[T], q map[int]bool) PostulateReport {
	tr := logic.Trace[Step[T]](trace)
	rep := PostulateReport{
		QInfinitelyOften: logic.AlwaysEventually(tr, func(st Step[T]) bool { return q[st.Env] }),
		AgentsEverMoved:  logic.Eventually(tr, func(st Step[T]) bool { return st.AgentMoved }),
	}
	rep.EscapableThroughout = true
	for _, st := range trace {
		if st.AgentMoved {
			break // hypotheses only need to hold while stuck
		}
		if !sys.EscapeUnder(q, st.Agents) {
			rep.EscapableThroughout = false
			break
		}
	}
	hyp := rep.QInfinitelyOften && rep.EscapableThroughout
	rep.Holds = !hyp || rep.AgentsEverMoved
	return rep
}
