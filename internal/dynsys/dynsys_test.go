package dynsys

import (
	"testing"
)

// minSystem is a two-agent minimum-consensus instance in the §2 model:
// two environment states G0 ("link up") and G1 ("link down"); while the
// link is up the agents can equalize to the minimum, while it is down
// nothing is enabled.
func minSystem() *System[int] {
	eq := func(a, b []int) bool { return a[0] == b[0] && a[1] == b[1] }
	return &System[int]{
		EnvStates: []string{"link-up", "link-down"},
		Eq:        eq,
		AgentSucc: func(g int, s []int) [][]int {
			if g != 0 {
				return nil // link down: no collaborative step enabled
			}
			m := s[0]
			if s[1] < m {
				m = s[1]
			}
			if s[0] == m && s[1] == m {
				return nil // already converged
			}
			return [][]int{{m, m}}
		},
	}
}

// flippySystem has TWO link-up states (both satisfying Q) so the paper's
// counterexample applies: the environment can flip between them forever,
// Q holds at every instant, yet agents never get a turn.
func flippySystem() *System[int] {
	base := minSystem()
	return &System[int]{
		EnvStates: []string{"up-A", "up-B"},
		Eq:        base.Eq,
		AgentSucc: func(g int, s []int) [][]int {
			// Both states enable the same transition (both are "up").
			return base.AgentSucc(0, s)
		},
	}
}

func TestEscapeRelation(t *testing.T) {
	sys := minSystem()
	// Unconverged and link up: escapable.
	if !sys.Escape(0, []int{5, 3}) {
		t.Error("S # G0 should hold for unconverged state")
	}
	// Link down: not escapable.
	if sys.Escape(1, []int{5, 3}) {
		t.Error("S # G1 should fail (link down)")
	}
	// Converged: not escapable anywhere (stability).
	if sys.Escape(0, []int{3, 3}) {
		t.Error("converged state escapable")
	}
}

func TestEscapeUnderPredicate(t *testing.T) {
	sys := minSystem()
	up := map[int]bool{0: true}
	both := map[int]bool{0: true, 1: true}
	if !sys.EscapeUnder(up, []int{5, 3}) {
		t.Error("S # {up} should hold")
	}
	// Under the weaker predicate including link-down states, escape is
	// NOT guaranteed at every satisfying state.
	if sys.EscapeUnder(both, []int{5, 3}) {
		t.Error("S # {up,down} should fail")
	}
	// Empty predicate: vacuous ∀ but the definition requires Q to be
	// satisfiable to be useful; EscapeUnder returns false.
	if sys.EscapeUnder(map[int]bool{}, []int{5, 3}) {
		t.Error("empty predicate escaped")
	}
}

// The paper's §2.1 counterexample, executable: both environment states
// satisfy Q, the agents could escape under either, Q holds at every step
// — but the EnvFlipper scheduler never lets the agents act, so the escape
// postulate FAILS on this run.
func TestPaperCounterexamplePostulateFails(t *testing.T) {
	sys := flippySystem()
	trace, err := Run(sys, EnvFlipper[int]{}, 0, []int{5, 3}, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := map[int]bool{0: true, 1: true}
	rep := CheckPostulate(sys, trace, q)
	if !rep.QInfinitelyOften {
		t.Error("Q should hold infinitely often")
	}
	if !rep.EscapableThroughout {
		t.Error("the stuck state should be escapable under Q throughout")
	}
	if rep.AgentsEverMoved {
		t.Error("agents moved under the flipper")
	}
	if rep.Holds {
		t.Error("the postulate should FAIL on the flipper's runs — that is the paper's point")
	}
}

// Under a weakly fair scheduler the postulate holds: the agents get a
// turn, escape, and converge.
func TestFairSchedulerSatisfiesPostulate(t *testing.T) {
	sys := flippySystem()
	trace, err := Run(sys, WeaklyFair[int]{Period: 3}, 0, []int{5, 3}, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := map[int]bool{0: true, 1: true}
	rep := CheckPostulate(sys, trace, q)
	if !rep.Holds || !rep.AgentsEverMoved {
		t.Errorf("postulate should hold under fairness: %+v", rep)
	}
	// And the final state is converged.
	last := trace[len(trace)-1].Agents
	if last[0] != 3 || last[1] != 3 {
		t.Errorf("final agents = %v, want [3 3]", last)
	}
}

func TestFairSchedulerWithLinkDownState(t *testing.T) {
	// minSystem has a genuinely disabling state; fairness over the
	// environment cycle still converges because up-states recur.
	sys := minSystem()
	trace, err := Run(sys, WeaklyFair[int]{Period: 1}, 0, []int{9, 2}, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	last := trace[len(trace)-1].Agents
	if last[0] != 2 || last[1] != 2 {
		t.Errorf("final agents = %v, want [2 2]", last)
	}
}

func TestRunValidation(t *testing.T) {
	sys := minSystem()
	if _, err := Run(sys, EnvFlipper[int]{}, 5, []int{1, 2}, 10, 1); err == nil {
		t.Error("out-of-range env state accepted")
	}
	bad := &System[int]{EnvStates: nil}
	if _, err := Run(bad, EnvFlipper[int]{}, 0, []int{1}, 10, 1); err == nil {
		t.Error("invalid system accepted")
	}
	noSucc := &System[int]{EnvStates: []string{"g"}}
	if err := noSucc.Validate(); err == nil {
		t.Error("missing AgentSucc accepted")
	}
}

func TestTraceShape(t *testing.T) {
	sys := minSystem()
	trace, err := Run(sys, WeaklyFair[int]{Period: 2}, 0, []int{4, 1}, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 31 {
		t.Fatalf("trace length = %d, want 31", len(trace))
	}
	// Environment and agents never change in the same step.
	for i := 1; i < len(trace); i++ {
		envChanged := trace[i].Env != trace[i-1].Env
		if envChanged && trace[i].AgentMoved {
			t.Fatalf("step %d changed both environment and agents", i)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	if (EnvFlipper[int]{}).Name() == "" || (WeaklyFair[int]{Period: 2}).Name() == "" {
		t.Error("empty scheduler names")
	}
}

// The postulate report's Holds is vacuously true when the hypotheses
// fail: a state that is NOT escapable under Q may stay stuck.
func TestPostulateVacuous(t *testing.T) {
	sys := minSystem()
	// Q includes the link-down state, so S # Q fails: hypotheses false.
	trace, err := Run(sys, EnvFlipper[int]{}, 0, []int{5, 3}, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckPostulate(sys, trace, map[int]bool{0: true, 1: true})
	if rep.EscapableThroughout {
		t.Error("escapable should fail with link-down in Q")
	}
	if !rep.Holds {
		t.Error("postulate should hold vacuously")
	}
}
