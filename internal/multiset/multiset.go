// Package multiset implements the finite multisets ("bags") over which the
// paper's distributed functions f operate.
//
// In "Self-Similar Algorithms for Dynamic Distributed Systems" (Chandy &
// Charpentier, ICDCS 2007) the state of a group B of agents is the multiset
// S_B = {Sa | a ∈ B} of the states of its members, and the union of the
// states of disjoint groups is multiset union: S_{B∪C} = S_B ∪ S_C. All of
// the paper's machinery — super-idempotent functions, the conservation law,
// variant functions in summation form — is stated in terms of multisets, so
// this package is the foundation of everything else in the repository.
//
// A Multiset[T] is an immutable, canonically sorted bag of values of an
// arbitrary element type T. Because agent states range from plain integers
// to (index, value) pairs and convex-hull point sets, the element type is
// not required to be comparable in the Go sense; instead every multiset
// carries a total-order comparison function, which makes equality,
// canonical printing, and deterministic iteration possible for any T.
package multiset

import (
	"fmt"
	"sort"
	"strings"
)

// Cmp is a three-way comparison over element type T. It must define a total
// order: negative when a < b, zero when a == b, positive when a > b.
// Multiset equality is defined as "cmp reports zero elementwise on the
// canonical sorted forms", so cmp also decides which values are identical.
type Cmp[T any] func(a, b T) int

// Multiset is an immutable bag of values of type T, held in canonical
// (sorted) order. The zero value is an empty multiset with a nil comparison
// function; it is usable with Len, Elements and Union against another
// multiset that supplies a comparison function, but New should normally be
// used so the order is explicit.
type Multiset[T any] struct {
	cmp   Cmp[T]
	elems []T // sorted by cmp; never aliased to caller-visible memory
}

// New builds a multiset from the given elements using cmp as the total
// order. The input slice is copied; the caller may reuse it afterwards.
func New[T any](cmp Cmp[T], elems ...T) Multiset[T] {
	own := make([]T, len(elems))
	copy(own, elems)
	sort.SliceStable(own, func(i, j int) bool { return cmp(own[i], own[j]) < 0 })
	return Multiset[T]{cmp: cmp, elems: own}
}

// FromSorted builds a multiset from a slice that is already sorted by cmp.
// It copies the slice. It panics if the slice is not sorted, since a
// non-canonical multiset would silently break equality everywhere else.
func FromSorted[T any](cmp Cmp[T], sorted []T) Multiset[T] {
	for i := 1; i < len(sorted); i++ {
		if cmp(sorted[i-1], sorted[i]) > 0 {
			panic("multiset.FromSorted: input not sorted")
		}
	}
	own := make([]T, len(sorted))
	copy(own, sorted)
	return Multiset[T]{cmp: cmp, elems: own}
}

// Len reports the cardinality of the multiset (counting multiplicity).
func (m Multiset[T]) Len() int { return len(m.elems) }

// IsEmpty reports whether the multiset has no elements.
func (m Multiset[T]) IsEmpty() bool { return len(m.elems) == 0 }

// Cmp returns the comparison function the multiset was built with.
func (m Multiset[T]) Cmp() Cmp[T] { return m.cmp }

// At returns the i-th element in canonical (sorted) order.
func (m Multiset[T]) At(i int) T { return m.elems[i] }

// Elements returns a copy of the elements in canonical order. Mutating the
// returned slice does not affect the multiset.
func (m Multiset[T]) Elements() []T {
	out := make([]T, len(m.elems))
	copy(out, m.elems)
	return out
}

// Min returns the least element under the multiset's order. The boolean is
// false when the multiset is empty.
func (m Multiset[T]) Min() (T, bool) {
	if len(m.elems) == 0 {
		var zero T
		return zero, false
	}
	return m.elems[0], true
}

// Max returns the greatest element under the multiset's order. The boolean
// is false when the multiset is empty.
func (m Multiset[T]) Max() (T, bool) {
	if len(m.elems) == 0 {
		var zero T
		return zero, false
	}
	return m.elems[len(m.elems)-1], true
}

// Count reports how many elements compare equal to v.
func (m Multiset[T]) Count(v T) int {
	lo := sort.Search(len(m.elems), func(i int) bool { return m.cmp(m.elems[i], v) >= 0 })
	hi := sort.Search(len(m.elems), func(i int) bool { return m.cmp(m.elems[i], v) > 0 })
	return hi - lo
}

// Contains reports whether at least one element compares equal to v.
func (m Multiset[T]) Contains(v T) bool { return m.Count(v) > 0 }

// Add returns a new multiset with v added (multiplicity increases by one).
func (m Multiset[T]) Add(v T) Multiset[T] {
	out := make([]T, 0, len(m.elems)+1)
	i := sort.Search(len(m.elems), func(i int) bool { return m.cmp(m.elems[i], v) > 0 })
	out = append(out, m.elems[:i]...)
	out = append(out, v)
	out = append(out, m.elems[i:]...)
	return Multiset[T]{cmp: m.cmp, elems: out}
}

// Union returns the multiset union m ∪ other (multiplicities add). This is
// the bold-∪ of the paper: the state of a group B∪C is S_B ∪ S_C.
func (m Multiset[T]) Union(other Multiset[T]) Multiset[T] {
	cmp := m.cmp
	if cmp == nil {
		cmp = other.cmp
	}
	out := make([]T, 0, len(m.elems)+len(other.elems))
	i, j := 0, 0
	for i < len(m.elems) && j < len(other.elems) {
		if cmp(m.elems[i], other.elems[j]) <= 0 {
			out = append(out, m.elems[i])
			i++
		} else {
			out = append(out, other.elems[j])
			j++
		}
	}
	out = append(out, m.elems[i:]...)
	out = append(out, other.elems[j:]...)
	return Multiset[T]{cmp: cmp, elems: out}
}

// Equal reports multiset equality: same cardinality and pairwise-equal
// canonical forms under the comparison function.
func (m Multiset[T]) Equal(other Multiset[T]) bool {
	if len(m.elems) != len(other.elems) {
		return false
	}
	cmp := m.cmp
	if cmp == nil {
		cmp = other.cmp
	}
	for i := range m.elems {
		if cmp(m.elems[i], other.elems[i]) != 0 {
			return false
		}
	}
	return true
}

// Map applies fn to every element and returns the resulting multiset
// (re-canonicalized, since fn need not be monotone).
func (m Multiset[T]) Map(fn func(T) T) Multiset[T] {
	out := make([]T, len(m.elems))
	for i, v := range m.elems {
		out[i] = fn(v)
	}
	return New(m.cmp, out...)
}

// Filter returns the multiset of elements for which keep reports true.
func (m Multiset[T]) Filter(keep func(T) bool) Multiset[T] {
	out := make([]T, 0, len(m.elems))
	for _, v := range m.elems {
		if keep(v) {
			out = append(out, v)
		}
	}
	return Multiset[T]{cmp: m.cmp, elems: out}
}

// ForEach calls fn on every element in canonical order.
func (m Multiset[T]) ForEach(fn func(T)) {
	for _, v := range m.elems {
		fn(v)
	}
}

// Format renders the multiset as {e0, e1, ...} using the supplied element
// formatter, in canonical order.
func (m Multiset[T]) Format(elem func(T) string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range m.elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(elem(v))
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the multiset with fmt's default %v formatting per element.
func (m Multiset[T]) String() string {
	return m.Format(func(v T) string { return fmt.Sprintf("%v", v) })
}

// OrderedCmp returns a Cmp for any ordered primitive type.
func OrderedCmp[T int | int8 | int16 | int32 | int64 | uint | uint8 | uint16 | uint32 | uint64 | float32 | float64 | string]() Cmp[T] {
	return func(a, b T) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// OfInts builds a multiset of ints with the natural order. It is the most
// common constructor in the paper's examples (§4.1–§4.3).
func OfInts(vals ...int) Multiset[int] { return New(OrderedCmp[int](), vals...) }

// OfFloats builds a multiset of float64s with the natural order.
func OfFloats(vals ...float64) Multiset[float64] { return New(OrderedCmp[float64](), vals...) }

// SumInts returns the sum of an integer multiset. Helper for the paper's
// §4.2 sum problem and the summation-form variant functions of (8).
func SumInts(m Multiset[int]) int {
	total := 0
	m.ForEach(func(v int) { total += v })
	return total
}

// SumFloats returns the sum of a float multiset.
func SumFloats(m Multiset[float64]) float64 {
	total := 0.0
	m.ForEach(func(v float64) { total += v })
	return total
}
