// Package multiset implements the finite multisets ("bags") over which the
// paper's distributed functions f operate.
//
// In "Self-Similar Algorithms for Dynamic Distributed Systems" (Chandy &
// Charpentier, ICDCS 2007) the state of a group B of agents is the multiset
// S_B = {Sa | a ∈ B} of the states of its members, and the union of the
// states of disjoint groups is multiset union: S_{B∪C} = S_B ∪ S_C. All of
// the paper's machinery — super-idempotent functions, the conservation law,
// variant functions in summation form — is stated in terms of multisets, so
// this package is the foundation of everything else in the repository.
//
// A Multiset[T] is an immutable, canonically sorted bag of values of an
// arbitrary element type T. Because agent states range from plain integers
// to (index, value) pairs and convex-hull point sets, the element type is
// not required to be comparable in the Go sense; instead every multiset
// carries a total-order comparison function, which makes equality,
// canonical printing, and deterministic iteration possible for any T.
package multiset

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Cmp is a three-way comparison over element type T. It must define a total
// order: negative when a < b, zero when a == b, positive when a > b.
// Multiset equality is defined as "cmp reports zero elementwise on the
// canonical sorted forms", so cmp also decides which values are identical.
type Cmp[T any] func(a, b T) int

// Multiset is an immutable bag of values of type T, held in canonical
// (sorted) order. The zero value is an empty multiset with a nil comparison
// function; it is usable with Len, Elements and Union against another
// multiset that supplies a comparison function, but New should normally be
// used so the order is explicit.
type Multiset[T any] struct {
	cmp Cmp[T]
	// elems is sorted by cmp. Multisets built by New/FromSorted/Union/…
	// own their storage; the exceptions are View and Tracker.View, which
	// deliberately alias caller- or tracker-owned buffers for the engine
	// hot path — such views are invalidated by the next mutation of the
	// underlying buffer (Tracker.Replace recycles its old array as merge
	// scratch) and must not be retained across it.
	elems []T
}

// New builds a multiset from the given elements using cmp as the total
// order. The input slice is copied; the caller may reuse it afterwards.
func New[T any](cmp Cmp[T], elems ...T) Multiset[T] {
	own := make([]T, len(elems))
	copy(own, elems)
	sort.SliceStable(own, func(i, j int) bool { return cmp(own[i], own[j]) < 0 })
	return Multiset[T]{cmp: cmp, elems: own}
}

// FromSorted builds a multiset from a slice that is already sorted by cmp.
// It copies the slice. It panics if the slice is not sorted, since a
// non-canonical multiset would silently break equality everywhere else.
func FromSorted[T any](cmp Cmp[T], sorted []T) Multiset[T] {
	for i := 1; i < len(sorted); i++ {
		if cmp(sorted[i-1], sorted[i]) > 0 {
			panic("multiset.FromSorted: input not sorted")
		}
	}
	own := make([]T, len(sorted))
	copy(own, sorted)
	return Multiset[T]{cmp: cmp, elems: own}
}

// Len reports the cardinality of the multiset (counting multiplicity).
func (m Multiset[T]) Len() int { return len(m.elems) }

// IsEmpty reports whether the multiset has no elements.
func (m Multiset[T]) IsEmpty() bool { return len(m.elems) == 0 }

// Cmp returns the comparison function the multiset was built with.
func (m Multiset[T]) Cmp() Cmp[T] { return m.cmp }

// At returns the i-th element in canonical (sorted) order.
func (m Multiset[T]) At(i int) T { return m.elems[i] }

// Elements returns a copy of the elements in canonical order. Mutating the
// returned slice does not affect the multiset.
func (m Multiset[T]) Elements() []T {
	out := make([]T, len(m.elems))
	copy(out, m.elems)
	return out
}

// Min returns the least element under the multiset's order. The boolean is
// false when the multiset is empty.
func (m Multiset[T]) Min() (T, bool) {
	if len(m.elems) == 0 {
		var zero T
		return zero, false
	}
	return m.elems[0], true
}

// Max returns the greatest element under the multiset's order. The boolean
// is false when the multiset is empty.
func (m Multiset[T]) Max() (T, bool) {
	if len(m.elems) == 0 {
		var zero T
		return zero, false
	}
	return m.elems[len(m.elems)-1], true
}

// Count reports how many elements compare equal to v.
func (m Multiset[T]) Count(v T) int {
	lo := sort.Search(len(m.elems), func(i int) bool { return m.cmp(m.elems[i], v) >= 0 })
	hi := sort.Search(len(m.elems), func(i int) bool { return m.cmp(m.elems[i], v) > 0 })
	return hi - lo
}

// Contains reports whether at least one element compares equal to v.
func (m Multiset[T]) Contains(v T) bool { return m.Count(v) > 0 }

// Add returns a new multiset with v added (multiplicity increases by one).
func (m Multiset[T]) Add(v T) Multiset[T] {
	out := make([]T, 0, len(m.elems)+1)
	i := sort.Search(len(m.elems), func(i int) bool { return m.cmp(m.elems[i], v) > 0 })
	out = append(out, m.elems[:i]...)
	out = append(out, v)
	out = append(out, m.elems[i:]...)
	return Multiset[T]{cmp: m.cmp, elems: out}
}

// mergeCmp resolves the comparison function for a binary operation on m
// and other, preferring m's. Operations on two zero-value (nil-cmp)
// multisets are well defined only while no elements need comparing; the
// first operation that would actually have to compare panics with a clear
// message instead of silently producing a poisoned nil-cmp multiset that
// crashes far from the bug (inside sort.Search, rounds later).
func (m Multiset[T]) mergeCmp(other Multiset[T], op string) Cmp[T] {
	cmp := m.cmp
	if cmp == nil {
		cmp = other.cmp
	}
	if cmp == nil && (len(m.elems) > 0 || len(other.elems) > 0) {
		panic("multiset." + op + ": both operands have a nil comparison function (zero-value Multiset); build operands with New/FromSorted/View")
	}
	return cmp
}

// mergeAppend appends the sorted merge of a and b to dst — the shared
// core of Union, UnionInto, and Merger.Union. Ties emit a's element
// first, which is what makes every union in this package stable by
// operand order. dst must not alias a or b.
func mergeAppend[T any](dst []T, cmp Cmp[T], a, b []T) []T {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// Union returns the multiset union m ∪ other (multiplicities add). This is
// the bold-∪ of the paper: the state of a group B∪C is S_B ∪ S_C.
//
// The zero value is a usable empty operand: the result adopts the other
// operand's comparison function. A union of two non-empty nil-cmp
// multisets panics early with a descriptive message.
func (m Multiset[T]) Union(other Multiset[T]) Multiset[T] {
	cmp := m.mergeCmp(other, "Union")
	out := mergeAppend(make([]T, 0, len(m.elems)+len(other.elems)), cmp, m.elems, other.elems)
	return Multiset[T]{cmp: cmp, elems: out}
}

// UnionInto is Union into a caller-owned buffer: the merged elements are
// appended to buf[:0] (grown as needed) and the result is a zero-copy
// view of it. The returned buffer must be passed back in (or otherwise
// retained) to be reused; the view is invalidated by the next mutation
// of the buffer. Neither operand may alias buf. It is the two-operand
// sibling of Merger for callers that repeatedly merge exactly two
// multisets and must not allocate in steady state.
func (m Multiset[T]) UnionInto(other Multiset[T], buf []T) (Multiset[T], []T) {
	cmp := m.mergeCmp(other, "UnionInto")
	out := mergeAppend(buf[:0], cmp, m.elems, other.elems)
	return Multiset[T]{cmp: cmp, elems: out}, out
}

// Equal reports multiset equality: same cardinality and pairwise-equal
// canonical forms under the comparison function. Two empty multisets are
// equal regardless of comparison functions (so the zero value is safe to
// compare); comparing two non-empty nil-cmp multisets panics early with a
// descriptive message.
func (m Multiset[T]) Equal(other Multiset[T]) bool {
	if len(m.elems) != len(other.elems) {
		return false
	}
	if len(m.elems) == 0 {
		return true
	}
	cmp := m.mergeCmp(other, "Equal")
	for i := range m.elems {
		if cmp(m.elems[i], other.elems[i]) != 0 {
			return false
		}
	}
	return true
}

// Map applies fn to every element and returns the resulting multiset
// (re-canonicalized, since fn need not be monotone).
func (m Multiset[T]) Map(fn func(T) T) Multiset[T] {
	out := make([]T, len(m.elems))
	for i, v := range m.elems {
		out[i] = fn(v)
	}
	return New(m.cmp, out...)
}

// Filter returns the multiset of elements for which keep reports true.
func (m Multiset[T]) Filter(keep func(T) bool) Multiset[T] {
	out := make([]T, 0, len(m.elems))
	for _, v := range m.elems {
		if keep(v) {
			out = append(out, v)
		}
	}
	return Multiset[T]{cmp: m.cmp, elems: out}
}

// ForEach calls fn on every element in canonical order.
func (m Multiset[T]) ForEach(fn func(T)) {
	for _, v := range m.elems {
		fn(v)
	}
}

// Format renders the multiset as {e0, e1, ...} using the supplied element
// formatter, in canonical order.
func (m Multiset[T]) Format(elem func(T) string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range m.elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(elem(v))
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the multiset with fmt's default %v formatting per element.
func (m Multiset[T]) String() string {
	return m.Format(func(v T) string { return fmt.Sprintf("%v", v) })
}

// View wraps an already-sorted slice as a Multiset WITHOUT copying it. The
// caller promises that the slice is sorted by cmp and will not be mutated
// for as long as the returned multiset (or anything derived from it that
// aliases it) is in use. It exists for engine hot paths that maintain their
// own sorted scratch buffers and need a multiset view with zero
// allocation; everything else should use New or FromSorted.
func View[T any](cmp Cmp[T], sorted []T) Multiset[T] {
	return Multiset[T]{cmp: cmp, elems: sorted}
}

// Tracker maintains the canonically sorted multiset of a population of
// values that mutates in small increments — the engine-side "incremental
// snapshot". Where ms.New costs an allocation plus an O(n log n) sort per
// call, a Tracker owns one sorted buffer for the lifetime of a run and
// Replace repairs it after a group step using O(k log n) comparisons (k =
// changed values) and a single linear merge pass, allocating nothing once
// its scratch buffers have grown to a steady state.
type Tracker[T any] struct {
	cmp   Cmp[T]
	elems []T // sorted by cmp
	// Reusable scratch: sorted copies of the change set, removal indices,
	// insertion positions, and the merge output buffer (swapped with elems).
	oldBuf, newBuf []T
	remIdx, insPos []int
	mergeBuf       []T
}

// NewTracker builds a Tracker over a copy of the given population.
func NewTracker[T any](cmp Cmp[T], elems []T) *Tracker[T] {
	own := make([]T, len(elems))
	copy(own, elems)
	slices.SortStableFunc(own, cmp)
	return &Tracker[T]{cmp: cmp, elems: own}
}

// Reset rebinds the tracker to a fresh population, reusing its sorted
// buffer and scratch (they grow to the new size only if needed). The
// resulting state is identical to NewTracker(cmp, elems) — same stable
// sort, same canonical order — so a tracker handed from one run to the
// next (the scenario-sweep warm-engine contract) is observationally a
// new one. Any views of the previous population are invalidated.
func (t *Tracker[T]) Reset(cmp Cmp[T], elems []T) {
	t.cmp = cmp
	t.elems = append(t.elems[:0], elems...)
	slices.SortStableFunc(t.elems, cmp)
}

// Len reports the tracked population size.
func (t *Tracker[T]) Len() int { return len(t.elems) }

// View returns the current multiset as a zero-copy view. The view is
// invalidated by the next Replace; callers that retain it across mutations
// must copy it first (Multiset.Elements or ms.New).
func (t *Tracker[T]) View() Multiset[T] { return Multiset[T]{cmp: t.cmp, elems: t.elems} }

// Replace removes one occurrence of every value in olds and inserts every
// value in news, repairing sorted order incrementally. It panics when an
// old value is not present — a corrupted snapshot would silently poison
// every downstream monitor, so the failure is loud. olds and news may have
// different lengths and are not mutated.
func (t *Tracker[T]) Replace(olds, news []T) {
	if len(olds) == 0 && len(news) == 0 {
		return
	}
	t.oldBuf = append(t.oldBuf[:0], olds...)
	t.newBuf = append(t.newBuf[:0], news...)
	slices.SortFunc(t.oldBuf, t.cmp)
	slices.SortFunc(t.newBuf, t.cmp)

	// Locate removal indices: for a run of c equal old values, claim the
	// first c slots of that value's range in elems (all slots of an equal
	// run are interchangeable under cmp). O(k log n).
	t.remIdx = t.remIdx[:0]
	for i := 0; i < len(t.oldBuf); {
		v := t.oldBuf[i]
		run := 1
		for i+run < len(t.oldBuf) && t.cmp(t.oldBuf[i+run], v) == 0 {
			run++
		}
		lo := sort.Search(len(t.elems), func(j int) bool { return t.cmp(t.elems[j], v) >= 0 })
		for r := 0; r < run; r++ {
			idx := lo + r
			if idx >= len(t.elems) || t.cmp(t.elems[idx], v) != 0 {
				panic("multiset.Tracker.Replace: old value not present")
			}
			t.remIdx = append(t.remIdx, idx)
		}
		i += run
	}

	// Locate insertion positions (lower bound in the ORIGINAL coordinate
	// system; removals and insertions are then interleaved in one pass).
	t.insPos = t.insPos[:0]
	for _, v := range t.newBuf {
		t.insPos = append(t.insPos,
			sort.Search(len(t.elems), func(j int) bool { return t.cmp(t.elems[j], v) >= 0 }))
	}

	// Single merge pass: copy surviving elements, skip removed indices,
	// emit inserted values at their positions. Index comparisons only — no
	// further cmp calls.
	out := t.mergeBuf[:0]
	ri, ni := 0, 0
	for i := 0; i <= len(t.elems); i++ {
		for ni < len(t.insPos) && t.insPos[ni] == i {
			out = append(out, t.newBuf[ni])
			ni++
		}
		if i == len(t.elems) {
			break
		}
		if ri < len(t.remIdx) && t.remIdx[ri] == i {
			ri++
			continue
		}
		out = append(out, t.elems[i])
	}
	t.mergeBuf = t.elems[:0]
	t.elems = out
}

// Append inserts the given values into the tracked multiset — the
// population-growth path: joining agents extend the bag without touching
// any existing element, so incremental snapshots (and any positional
// bookkeeping keyed to existing agents) stay valid. It is Replace with an
// empty removal set; sorted order is repaired by the same O(k log n)
// merge.
func (t *Tracker[T]) Append(vals []T) { t.Replace(nil, vals) }

// Merger performs repeated P-way multiset unions into reusable merge
// buffers — the reduction step of a sharded state layout, where the
// global snapshot S = S_1 ∪ … ∪ S_P is rebuilt from per-shard sorted
// views every round. Where Union allocates a fresh slice per call, a
// Merger owns two ping-pong output buffers and the per-level segment
// scratch for the lifetime of a run and allocates nothing once they have
// grown to a steady state. The merge is a bottom-up tournament of 2-way
// merges — O(total · log P), so the sequential reduction stays flat as
// the shard count grows with the core count.
type Merger[T any] struct {
	cmp        Cmp[T]
	bufA, bufB []T
	cur, next  [][]T
}

// NewMerger builds a Merger using cmp as the total order.
func NewMerger[T any](cmp Cmp[T]) *Merger[T] {
	return &Merger[T]{cmp: cmp}
}

// Reset rebinds the merger to a new total order while keeping its
// ping-pong buffers and segment scratch warm — for mergers that outlive
// one run (the sharded layout handed between sweep cells), where the
// comparison function may change with the problem but the buffer
// capacity is the part worth keeping.
func (g *Merger[T]) Reset(cmp Cmp[T]) { g.cmp = cmp }

// Union merges the given multisets (each sorted by the Merger's cmp) into
// the internal buffers and returns a zero-copy view of the result. Ties
// are emitted lowest-operand-first (the tournament pairs adjacent
// operands and mergeAppend is left-stable), so the output is
// deterministic. The view is invalidated by the next Union call; callers
// that retain it must copy it first. Operands must not alias the
// Merger's buffers (i.e. must not be a previous Union result).
//
// A zero-value Merger (nil comparison function) adopts the first
// operand's comparison function, mirroring the zero-value contract of
// Multiset.Union; if no operand can supply one and elements must be
// merged, Union panics early with a descriptive message rather than
// crashing on the nil cmp deep inside the merge. A nil *Merger panics
// descriptively too.
func (g *Merger[T]) Union(sets ...Multiset[T]) Multiset[T] {
	if g == nil {
		panic("multiset.Merger.Union: nil *Merger receiver; build the merger with NewMerger")
	}
	if g.cmp == nil {
		for _, s := range sets {
			if s.cmp != nil {
				g.cmp = s.cmp
				break
			}
		}
		if g.cmp == nil {
			for _, s := range sets {
				if len(s.elems) > 0 {
					panic("multiset.Merger.Union: nil comparison function (zero-value Merger) and no operand supplies one; build the merger with NewMerger")
				}
			}
		}
	}
	cur := g.cur[:0]
	for _, s := range sets {
		if len(s.elems) > 0 {
			cur = append(cur, s.elems)
		}
	}
	switch len(cur) {
	case 0:
		g.cur = cur
		return Multiset[T]{cmp: g.cmp, elems: g.bufA[:0]}
	case 1:
		// Copy so the result honors the "operands never alias the
		// buffers" contract for the NEXT Union.
		g.bufA = append(g.bufA[:0], cur[0]...)
		g.cur = cur[:0]
		return Multiset[T]{cmp: g.cmp, elems: g.bufA}
	}
	out, spare := g.bufA, g.bufB
	for len(cur) > 1 {
		// Invariant: every segment this level PRODUCES — merged pairs and
		// the copied odd tail alike — lives in out, so the next level's
		// inputs never alias the buffer it writes to (spare).
		out = out[:0]
		next := g.next[:0]
		for i := 0; i+1 < len(cur); i += 2 {
			start := len(out)
			out = mergeAppend(out, g.cmp, cur[i], cur[i+1])
			next = append(next, out[start:len(out):len(out)])
		}
		if len(cur)%2 == 1 {
			start := len(out)
			out = append(out, cur[len(cur)-1]...)
			next = append(next, out[start:len(out):len(out)])
		}
		g.next = cur[:0] // recycle the level scratch
		cur = next
		out, spare = spare, out
	}
	g.cur = cur[:0]
	g.bufA, g.bufB = out, spare // spare holds the result; out is dead
	return Multiset[T]{cmp: g.cmp, elems: cur[0]}
}

// OrderedCmp returns a Cmp for any ordered primitive type.
func OrderedCmp[T int | int8 | int16 | int32 | int64 | uint | uint8 | uint16 | uint32 | uint64 | float32 | float64 | string]() Cmp[T] {
	return func(a, b T) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// OfInts builds a multiset of ints with the natural order. It is the most
// common constructor in the paper's examples (§4.1–§4.3).
func OfInts(vals ...int) Multiset[int] { return New(OrderedCmp[int](), vals...) }

// OfFloats builds a multiset of float64s with the natural order.
func OfFloats(vals ...float64) Multiset[float64] { return New(OrderedCmp[float64](), vals...) }

// SumInts returns the sum of an integer multiset. Helper for the paper's
// §4.2 sum problem and the summation-form variant functions of (8).
func SumInts(m Multiset[int]) int {
	total := 0
	m.ForEach(func(v int) { total += v })
	return total
}

// SumFloats returns the sum of a float multiset.
func SumFloats(m Multiset[float64]) float64 {
	total := 0.0
	m.ForEach(func(v float64) { total += v })
	return total
}
