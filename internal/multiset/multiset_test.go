package multiset

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewCanonicalOrder(t *testing.T) {
	m := OfInts(3, 1, 2, 1)
	want := []int{1, 1, 2, 3}
	got := m.Elements()
	if len(got) != len(want) {
		t.Fatalf("Len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("element %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNewCopiesInput(t *testing.T) {
	src := []int{5, 4}
	m := New(OrderedCmp[int](), src...)
	src[0] = 99
	if m.Contains(99) {
		t.Error("multiset aliases caller slice")
	}
}

func TestElementsCopy(t *testing.T) {
	m := OfInts(1, 2, 3)
	e := m.Elements()
	e[0] = 42
	if m.At(0) != 1 {
		t.Error("Elements returned aliased storage")
	}
}

func TestEmpty(t *testing.T) {
	m := OfInts()
	if !m.IsEmpty() || m.Len() != 0 {
		t.Error("empty multiset misreported")
	}
	if _, ok := m.Min(); ok {
		t.Error("Min on empty reported ok")
	}
	if _, ok := m.Max(); ok {
		t.Error("Max on empty reported ok")
	}
}

func TestMinMax(t *testing.T) {
	m := OfInts(7, 3, 9, 3)
	if v, ok := m.Min(); !ok || v != 3 {
		t.Errorf("Min = %d,%v want 3,true", v, ok)
	}
	if v, ok := m.Max(); !ok || v != 9 {
		t.Errorf("Max = %d,%v want 9,true", v, ok)
	}
}

func TestCountContains(t *testing.T) {
	m := OfInts(2, 2, 5, 7, 2)
	cases := []struct {
		v    int
		want int
	}{{2, 3}, {5, 1}, {7, 1}, {0, 0}, {8, 0}, {3, 0}}
	for _, c := range cases {
		if got := m.Count(c.v); got != c.want {
			t.Errorf("Count(%d) = %d, want %d", c.v, got, c.want)
		}
		if got := m.Contains(c.v); got != (c.want > 0) {
			t.Errorf("Contains(%d) = %v, want %v", c.v, got, c.want > 0)
		}
	}
}

func TestAdd(t *testing.T) {
	m := OfInts(1, 3)
	m2 := m.Add(2)
	if m.Len() != 2 {
		t.Error("Add mutated receiver")
	}
	if m2.Len() != 3 || m2.At(1) != 2 {
		t.Errorf("Add result = %v", m2)
	}
}

func TestUnion(t *testing.T) {
	a := OfInts(1, 3, 5)
	b := OfInts(2, 3)
	u := a.Union(b)
	want := OfInts(1, 2, 3, 3, 5)
	if !u.Equal(want) {
		t.Errorf("Union = %v, want %v", u, want)
	}
	// Union with empty on either side.
	if !a.Union(OfInts()).Equal(a) || !OfInts().Union(a).Equal(a) {
		t.Error("union with empty not identity")
	}
}

func TestUnionZeroValue(t *testing.T) {
	var zero Multiset[int]
	a := OfInts(4, 1)
	if !zero.Union(a).Equal(a) {
		t.Error("zero-value multiset union failed")
	}
}

func TestEqual(t *testing.T) {
	if !OfInts(1, 2, 2).Equal(OfInts(2, 1, 2)) {
		t.Error("order-insensitive equality failed")
	}
	if OfInts(1, 2).Equal(OfInts(1, 2, 2)) {
		t.Error("different multiplicities compared equal")
	}
	if OfInts(1, 2).Equal(OfInts(1, 3)) {
		t.Error("different values compared equal")
	}
}

func TestMap(t *testing.T) {
	m := OfInts(3, 1, 2)
	sq := m.Map(func(v int) int { return -v })
	want := OfInts(-1, -2, -3)
	if !sq.Equal(want) {
		t.Errorf("Map = %v, want %v", sq, want)
	}
}

func TestFilter(t *testing.T) {
	m := OfInts(1, 2, 3, 4, 5)
	even := m.Filter(func(v int) bool { return v%2 == 0 })
	if !even.Equal(OfInts(2, 4)) {
		t.Errorf("Filter = %v", even)
	}
}

func TestFromSorted(t *testing.T) {
	m := FromSorted(OrderedCmp[int](), []int{1, 2, 2, 9})
	if m.Len() != 4 || m.At(3) != 9 {
		t.Errorf("FromSorted = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSorted accepted unsorted input")
		}
	}()
	FromSorted(OrderedCmp[int](), []int{2, 1})
}

func TestStringFormat(t *testing.T) {
	m := OfInts(3, 1)
	if got := m.String(); got != "{1, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := OfInts().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestSums(t *testing.T) {
	if got := SumInts(OfInts(3, 5, 3, 7)); got != 18 {
		t.Errorf("SumInts = %d, want 18", got)
	}
	if got := SumFloats(OfFloats(1.5, 2.5)); got != 4.0 {
		t.Errorf("SumFloats = %g, want 4", got)
	}
	if got := SumInts(OfInts()); got != 0 {
		t.Errorf("SumInts empty = %d", got)
	}
}

// --- Property-based tests (testing/quick) ---

func TestPropUnionCommutative(t *testing.T) {
	f := func(a, b []int) bool {
		x, y := OfInts(a...), OfInts(b...)
		return x.Union(y).Equal(y.Union(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropUnionAssociative(t *testing.T) {
	f := func(a, b, c []int) bool {
		x, y, z := OfInts(a...), OfInts(b...), OfInts(c...)
		return x.Union(y).Union(z).Equal(x.Union(y.Union(z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropUnionCardinality(t *testing.T) {
	f := func(a, b []int) bool {
		x, y := OfInts(a...), OfInts(b...)
		return x.Union(y).Len() == len(a)+len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCountsSumToLen(t *testing.T) {
	f := func(a []int) bool {
		m := OfInts(a...)
		seen := map[int]bool{}
		total := 0
		for _, v := range a {
			if !seen[v] {
				seen[v] = true
				total += m.Count(v)
			}
		}
		return total == m.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEqualIsPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(a []int) bool {
		b := make([]int, len(a))
		copy(b, a)
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		return OfInts(a...).Equal(OfInts(b...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropElementsSorted(t *testing.T) {
	f := func(a []int) bool {
		return sort.IntsAreSorted(OfInts(a...).Elements())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddIncreasesCount(t *testing.T) {
	f := func(a []int, v int) bool {
		m := OfInts(a...)
		return m.Add(v).Count(v) == m.Count(v)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStructElementType(t *testing.T) {
	type pair struct{ x, y int }
	cmp := func(a, b pair) int {
		if a.x != b.x {
			return a.x - b.x
		}
		return a.y - b.y
	}
	m := New(cmp, pair{2, 1}, pair{1, 9}, pair{2, 0})
	if m.At(0) != (pair{1, 9}) || m.At(1) != (pair{2, 0}) || m.At(2) != (pair{2, 1}) {
		t.Errorf("struct multiset order wrong: %v", m)
	}
	if !m.Contains(pair{2, 1}) || m.Contains(pair{3, 3}) {
		t.Error("struct Contains wrong")
	}
}

// Fuzz: union/equality invariants under arbitrary inputs. In normal test
// runs only the seed corpus executes.
func FuzzUnionInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{255, 0, 128}, []byte{128})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		toInts := func(bs []byte) []int {
			out := make([]int, len(bs))
			for i, v := range bs {
				out[i] = int(v)
			}
			return out
		}
		x, y := OfInts(toInts(a)...), OfInts(toInts(b)...)
		u := x.Union(y)
		if u.Len() != x.Len()+y.Len() {
			t.Fatalf("union cardinality %d != %d+%d", u.Len(), x.Len(), y.Len())
		}
		if !u.Equal(y.Union(x)) {
			t.Fatal("union not commutative")
		}
		if !sort.IntsAreSorted(u.Elements()) {
			t.Fatal("union not canonical")
		}
		for _, v := range a {
			if u.Count(int(v)) != x.Count(int(v))+y.Count(int(v)) {
				t.Fatalf("count mismatch for %d", v)
			}
		}
	})
}

// --- Zero-value (nil-cmp) safety regressions ---

// TestZeroValueUnionEqualSafe: two zero-value multisets must union and
// compare without producing a multiset that panics far from the bug.
func TestZeroValueUnionEqualSafe(t *testing.T) {
	var a, b Multiset[int]
	u := a.Union(b)
	if u.Len() != 0 || !u.IsEmpty() {
		t.Fatalf("zero ∪ zero = %v, want empty", u)
	}
	if !a.Equal(b) {
		t.Error("zero-value multisets must be equal")
	}
	// The empty result stays usable with the zero-value-safe API.
	if got := u.Elements(); len(got) != 0 {
		t.Errorf("Elements() = %v", got)
	}
	// Union with a cmp-carrying operand adopts its order and is fully
	// usable afterwards.
	w := a.Union(OfInts(2, 1))
	if w.Len() != 2 || !w.Contains(1) || w.At(0) != 1 {
		t.Errorf("zero ∪ {1,2} = %v", w)
	}
	if !OfInts(1, 2).Equal(w) || !w.Equal(OfInts(1, 2)) {
		t.Error("adopted-cmp union does not compare equal to {1,2}")
	}
}

// TestNilCmpPanicsEarly: operations that would actually need to compare
// elements of two nil-cmp multisets must panic with a descriptive message
// at the call site, not later inside sort.Search.
func TestNilCmpPanicsEarly(t *testing.T) {
	poisoned := Multiset[int]{elems: []int{1, 2}} // non-canonical construction
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s on nil-cmp multisets did not panic", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "nil comparison function") {
				t.Errorf("%s panic message %v not descriptive", name, r)
			}
		}()
		fn()
	}
	expectPanic("Union", func() { _ = poisoned.Union(poisoned) })
	expectPanic("UnionInto", func() { _, _ = poisoned.UnionInto(poisoned, nil) })
	expectPanic("Equal", func() { _ = poisoned.Equal(poisoned) })
}

// --- UnionInto / Merger ---

func TestUnionIntoMatchesUnion(t *testing.T) {
	a := OfInts(5, 1, 3, 3)
	b := OfInts(2, 3, 9)
	var buf []int
	got, buf := a.UnionInto(b, buf)
	if !got.Equal(a.Union(b)) {
		t.Fatalf("UnionInto = %v, want %v", got, a.Union(b))
	}
	// Reuse: the same buffer must back the next merge without allocating.
	allocs := testing.AllocsPerRun(100, func() {
		_, buf = a.UnionInto(b, buf)
	})
	if allocs != 0 {
		t.Errorf("UnionInto with warm buffer allocated %.0f times per run", allocs)
	}
	// Zero-value left operand adopts the right operand's cmp.
	var z Multiset[int]
	v, _ := z.UnionInto(b, nil)
	if !v.Equal(b) {
		t.Errorf("zero UnionInto b = %v, want %v", v, b)
	}
}

func TestMergerKWay(t *testing.T) {
	cmp := OrderedCmp[int]()
	g := NewMerger(cmp)
	sets := []Multiset[int]{OfInts(4, 1), OfInts(2, 2, 7), OfInts(), OfInts(3)}
	want := OfInts(1, 2, 2, 3, 4, 7)
	got := g.Union(sets...)
	if !got.Equal(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	// Deterministic and allocation-free once warm.
	allocs := testing.AllocsPerRun(100, func() {
		if !g.Union(sets...).Equal(want) {
			t.Fatal("warm merge diverged")
		}
	})
	if allocs != 0 {
		t.Errorf("warm Merger.Union allocated %.0f times per run", allocs)
	}
	// Degenerate arities.
	if !g.Union().IsEmpty() {
		t.Error("empty merge not empty")
	}
	if one := g.Union(OfInts(9, 9)); !one.Equal(OfInts(9, 9)) {
		t.Errorf("1-way merge = %v", one)
	}
}

// TestMergerMatchesFoldedUnion cross-checks the k-way merge against a fold
// of binary unions on randomized inputs.
func TestMergerMatchesFoldedUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cmp := OrderedCmp[int]()
	g := NewMerger(cmp)
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(6)
		sets := make([]Multiset[int], p)
		want := New(cmp)
		for i := range sets {
			vals := make([]int, rng.Intn(8))
			for j := range vals {
				vals[j] = rng.Intn(10)
			}
			sets[i] = OfInts(vals...)
			want = want.Union(sets[i])
		}
		if got := g.Union(sets...); !got.Equal(want) {
			t.Fatalf("trial %d: merge %v != folded union %v", trial, got, want)
		}
	}
}

// TestZeroValueMergerSafe: a zero-value Merger must behave like the
// zero-value Multiset operands do — adopt a comparison function from its
// operands when one is available, and panic early with a descriptive
// message (not a nil-func crash deep inside mergeAppend) when elements
// must be merged and no cmp exists anywhere. A nil *Merger must panic
// descriptively too.
func TestZeroValueMergerSafe(t *testing.T) {
	// Empty operands: fine, no cmp ever needed.
	var m Merger[int]
	if got := m.Union(Multiset[int]{}, Multiset[int]{}); got.Len() != 0 {
		t.Fatalf("zero Merger over empties = %v", got)
	}

	// Operands carrying a cmp: the zero-value Merger adopts it.
	var m2 Merger[int]
	got := m2.Union(OfInts(3, 1), OfInts(2, 2))
	if !got.Equal(OfInts(1, 2, 2, 3)) {
		t.Fatalf("adopted-cmp merge = %v, want {1,2,2,3}", got)
	}
	// And the adopted cmp persists for later unions.
	if got := m2.Union(OfInts(5), OfInts(4)); !got.Equal(OfInts(4, 5)) {
		t.Fatalf("second merge after adoption = %v", got)
	}

	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s did not panic", name)
				return
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "NewMerger") {
				t.Errorf("%s panic %v not descriptive", name, r)
			}
		}()
		fn()
	}
	// Nil-cmp elements with no cmp anywhere: early, descriptive.
	var m3 Merger[int]
	poisoned := Multiset[int]{elems: []int{1, 2}}
	expectPanic("zero-value Merger with nil-cmp operands", func() { m3.Union(poisoned, poisoned) })
	// Nil receiver: early, descriptive.
	expectPanic("nil *Merger", func() { (*Merger[int])(nil).Union(OfInts(1)) })
}

// TestUnionIntoZeroValueReceiverRegression: UnionInto on a zero-value
// receiver must keep the early descriptive panic (poisoned operands) and
// the cmp-adoption path (empty receiver, cmp-carrying operand) — the
// same contract Union has.
func TestUnionIntoZeroValueReceiverRegression(t *testing.T) {
	var zero Multiset[int]
	got, _ := zero.UnionInto(OfInts(2, 1), nil)
	if !got.Equal(OfInts(1, 2)) {
		t.Fatalf("zero.UnionInto({1,2}) = %v", got)
	}
	// Result adopted the operand's cmp: usable downstream.
	if got.Count(2) != 1 {
		t.Fatal("adopted cmp unusable after UnionInto")
	}
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if r == nil || !ok || !strings.Contains(msg, "nil comparison function") {
			t.Errorf("poisoned UnionInto panic %v not descriptive", r)
		}
	}()
	poisoned := Multiset[int]{elems: []int{1}}
	_, _ = poisoned.UnionInto(poisoned, nil)
}
