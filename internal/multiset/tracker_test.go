package multiset

import (
	"math/rand"
	"testing"
)

// TestTrackerMatchesRebuild drives a Tracker through random replacement
// batches and checks after every batch that the incremental snapshot
// equals a from-scratch New over the live population.
func TestTrackerMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cmp := OrderedCmp[int]()
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		pop := make([]int, n)
		for i := range pop {
			pop[i] = rng.Intn(10) // dense values: plenty of duplicates
		}
		tr := NewTracker(cmp, pop)
		for step := 0; step < 30; step++ {
			k := 1 + rng.Intn(n)
			idxs := rng.Perm(n)[:k]
			olds := make([]int, k)
			news := make([]int, k)
			for j, idx := range idxs {
				olds[j] = pop[idx]
				news[j] = rng.Intn(10)
				pop[idx] = news[j]
			}
			tr.Replace(olds, news)
			if want := New(cmp, pop...); !tr.View().Equal(want) {
				t.Fatalf("trial %d step %d: view %v != rebuild %v", trial, step, tr.View(), want)
			}
			if tr.Len() != n {
				t.Fatalf("len drifted: %d != %d", tr.Len(), n)
			}
		}
	}
}

func TestTrackerUnequalLengths(t *testing.T) {
	cmp := OrderedCmp[int]()
	tr := NewTracker(cmp, []int{1, 2, 3})
	tr.Replace([]int{2}, []int{7, 8}) // grow
	if want := OfInts(1, 3, 7, 8); !tr.View().Equal(want) {
		t.Fatalf("grow: %v != %v", tr.View(), want)
	}
	tr.Replace([]int{7, 8}, []int{0}) // shrink
	if want := OfInts(0, 1, 3); !tr.View().Equal(want) {
		t.Fatalf("shrink: %v != %v", tr.View(), want)
	}
	tr.Replace(nil, nil) // no-op
	if want := OfInts(0, 1, 3); !tr.View().Equal(want) {
		t.Fatalf("no-op changed view: %v", tr.View())
	}
}

func TestTrackerPanicsOnMissingOld(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replace of a value not present must panic")
		}
	}()
	NewTracker(OrderedCmp[int](), []int{1, 2}).Replace([]int{9}, []int{1})
}

func TestViewAliasesWithoutCopy(t *testing.T) {
	cmp := OrderedCmp[int]()
	backing := []int{1, 2, 3}
	v := View(cmp, backing)
	if !v.Equal(OfInts(1, 2, 3)) {
		t.Fatalf("view = %v", v)
	}
	backing[0] = 0 // caller-visible mutation shows through: zero-copy
	if v.At(0) != 0 {
		t.Fatal("View copied its input; it must alias")
	}
}
