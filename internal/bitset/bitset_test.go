package bitset

import (
	"math/rand"
	"testing"
)

// refModel mirrors a Set as a []bool and checks every observable
// operation against it.
func TestSetAgainstBoolReference(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		rng := rand.New(rand.NewSource(int64(n)*7919 + 1))
		s := New(n)
		ref := make([]bool, n)
		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(10); {
			case op < 4 && n > 0:
				i := rng.Intn(n)
				v := rng.Intn(2) == 0
				s.SetTo(i, v)
				ref[i] = v
			case op == 4:
				s.SetAll()
				for i := range ref {
					ref[i] = true
				}
			case op == 5 && rng.Intn(8) == 0:
				s.ClearAll()
				for i := range ref {
					ref[i] = false
				}
			case op == 6 && n > 0:
				i := rng.Intn(n)
				s.Set(i)
				ref[i] = true
			case op == 7 && n > 0:
				i := rng.Intn(n)
				s.Clear(i)
				ref[i] = false
			}
		}
		// Full observable comparison.
		count := 0
		for i := 0; i < n; i++ {
			if s.Get(i) != ref[i] {
				t.Fatalf("n=%d: Get(%d)=%v ref=%v", n, i, s.Get(i), ref[i])
			}
			if ref[i] {
				count++
			}
		}
		if s.Count() != count {
			t.Fatalf("n=%d: Count=%d want %d", n, s.Count(), count)
		}
		all, none := count == n, count == 0
		if s.All() != all || s.None() != none {
			t.Fatalf("n=%d: All=%v None=%v count=%d", n, s.All(), s.None(), count)
		}
		var got []int
		s.ForEach(func(i int) { got = append(got, i) })
		var want []int
		for i, v := range ref {
			if v {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: ForEach yielded %d ids, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: ForEach[%d]=%d want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestWordOpsAgainstReference(t *testing.T) {
	n := 203
	rng := rand.New(rand.NewSource(42))
	randSet := func() (Set, []bool) {
		s := New(n)
		ref := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Set(i)
				ref[i] = true
			}
		}
		return s, ref
	}
	for trial := 0; trial < 50; trial++ {
		a, ra := randSet()
		b, rb := randSet()

		and := a.Clone()
		and.And(b)
		andNot := a.Clone()
		andNot.AndNot(b)
		or := a.Clone()
		or.Or(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (ra[i] && rb[i]) {
				t.Fatalf("And mismatch at %d", i)
			}
			if andNot.Get(i) != (ra[i] && !rb[i]) {
				t.Fatalf("AndNot mismatch at %d", i)
			}
			if or.Get(i) != (ra[i] || rb[i]) {
				t.Fatalf("Or mismatch at %d", i)
			}
		}

		var diff []int
		diff = a.AppendDiff(b, diff)
		var wantDiff []int
		for i := 0; i < n; i++ {
			if ra[i] != rb[i] {
				wantDiff = append(wantDiff, i)
			}
		}
		if len(diff) != len(wantDiff) {
			t.Fatalf("AppendDiff len=%d want %d", len(diff), len(wantDiff))
		}
		for i := range diff {
			if diff[i] != wantDiff[i] {
				t.Fatalf("AppendDiff[%d]=%d want %d", i, diff[i], wantDiff[i])
			}
		}

		if a.Equal(b) != (len(wantDiff) == 0) {
			t.Fatalf("Equal=%v but diff count=%d", a.Equal(b), len(wantDiff))
		}
		c := a.Clone()
		if !c.Equal(a) {
			t.Fatal("Clone not Equal to source")
		}
		c.Copy(b)
		if !c.Equal(b) {
			t.Fatal("Copy result not Equal to source")
		}
	}
}

func TestZeroValueConvention(t *testing.T) {
	var z Set
	if !z.IsZero() || z.Len() != 0 {
		t.Fatal("zero value should be absent with Len 0")
	}
	if !z.Clone().IsZero() {
		t.Fatal("Clone of zero should be zero")
	}
	e := New(0)
	if e.IsZero() {
		t.Fatal("New(0) must be an empty mask, not the absent zero value")
	}
	if !e.All() || !e.None() || e.Count() != 0 {
		t.Fatal("New(0) invariants")
	}
	full := NewAllSet(70)
	if !full.All() || full.Count() != 70 {
		t.Fatalf("NewAllSet: All=%v Count=%d", full.All(), full.Count())
	}
}

func TestTailBitsStayClear(t *testing.T) {
	s := NewAllSet(65)
	if s.Count() != 65 {
		t.Fatalf("Count=%d want 65", s.Count())
	}
	s.Clear(64)
	if s.Count() != 64 || s.All() {
		t.Fatalf("after Clear(64): Count=%d All=%v", s.Count(), s.All())
	}
	s.Set(64)
	if !s.All() {
		t.Fatal("after re-Set(64): All should hold")
	}
}
