package bitset

import (
	"slices"
	"testing"
)

// boolsFromBytes decodes fuzz input into an n-entry bool mask: bit i of
// the byte stream, truncated/extended to exactly n entries. n itself is
// derived from the first byte so the fuzzer explores word-boundary
// lengths (0, 63, 64, 65, ...) as well as arbitrary ones.
func boolsFromBytes(data []byte, n int) []bool {
	b := make([]bool, n)
	for i := 0; i < n; i++ {
		if i/8 < len(data) {
			b[i] = data[i/8]&(1<<(uint(i)&7)) != 0
		}
	}
	return b
}

// FuzzAppendDiff checks AppendDiff against the obvious []bool scan: the
// ids where two masks differ, ascending.
func FuzzAppendDiff(f *testing.F) {
	f.Add(uint16(64), []byte{0xff, 0x00}, []byte{0x0f, 0xf0})
	f.Add(uint16(1), []byte{1}, []byte{0})
	f.Add(uint16(130), []byte{}, []byte{0x80})
	f.Fuzz(func(t *testing.T, nRaw uint16, aRaw, bRaw []byte) {
		n := int(nRaw) % 1024
		aBools, bBools := boolsFromBytes(aRaw, n), boolsFromBytes(bRaw, n)
		a, b := FromBools(aBools), FromBools(bBools)

		var want []int
		for i := 0; i < n; i++ {
			if aBools[i] != bBools[i] {
				want = append(want, i)
			}
		}

		got := a.AppendDiff(b, nil)
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: AppendDiff = %v, reference scan = %v", n, got, want)
		}
		// Diff is symmetric, and appending onto a non-empty dst must
		// leave the prefix alone.
		prefix := []int{-1, -2}
		got2 := b.AppendDiff(a, slices.Clone(prefix))
		if !slices.Equal(got2[:2], prefix) || !slices.Equal(got2[2:], want) {
			t.Fatalf("n=%d: reversed AppendDiff onto prefix = %v, want %v + %v", n, got2, prefix, want)
		}
	})
}

// FuzzAppendSelected checks AppendSelected against the obvious []bool
// scan: ids[pos] for every selected position, ascending by position.
func FuzzAppendSelected(f *testing.F) {
	f.Add(uint16(64), []byte{0xff, 0x00})
	f.Add(uint16(65), []byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(uint16(3), []byte{0x05})
	f.Fuzz(func(t *testing.T, nRaw uint16, selRaw []byte) {
		n := int(nRaw) % 1024
		selBools := boolsFromBytes(selRaw, n)
		sel := FromBools(selBools)

		// A recognizable id table: ids[pos] = pos*3 + 1, so a wrong
		// position cannot alias a right one.
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i*3 + 1
		}
		var want []int
		for i := 0; i < n; i++ {
			if selBools[i] {
				want = append(want, ids[i])
			}
		}

		got := sel.AppendSelected(nil, ids)
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: AppendSelected = %v, reference scan = %v", n, got, want)
		}
		if c := sel.Count(); c != len(got) {
			t.Fatalf("n=%d: AppendSelected yielded %d ids, Count() = %d", n, len(got), c)
		}
	})
}
