// Package bitset provides the dense bit masks the engines use for edge
// and agent availability.
//
// The environment model (env.State) is a pair of masks over a graph's
// edges and agents. The seed engines stored them as []bool — one byte
// per entry, scanned entry by entry — which made every mask operation
// O(E) in entries even when nothing (or almost nothing) changed. A Set
// packs the same mask 64 entries per word, so that
//
//   - bulk operations (fill, copy, intersect, subtract) touch E/64 words,
//   - iteration skips zero words entirely (a fully-masked region costs
//     one word test per 64 entries), and
//   - round-over-round change detection is a word-wise XOR that yields
//     exactly the flipped ids — the primitive the usable-edge delta
//     index and the O(changes) fairness probe are built on.
//
// The zero value Set{} is "absent": Len() == 0 and IsZero() reports
// true. Call sites that accepted a nil []bool to mean "everything up"
// (graph.ComponentsInto, the pair matcher, the dynamics overlay) accept
// a zero Set the same way. A non-zero Set never changes length; bits
// outside [0, Len()) are kept zero by every operation, so Count and
// word-level scans never see tail garbage.
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-length bit vector. The zero value is the absent set
// (see the package comment); build real sets with New. Set is a small
// header — pass it by value; the words are shared, so mutations through
// any copy are visible through all of them (exactly like a slice).
type Set struct {
	words []uint64
	n     int
}

// New returns a Set of length n with every bit clear.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewAllSet returns a Set of length n with every bit set.
func NewAllSet(n int) Set {
	s := New(n)
	s.SetAll()
	return s
}

// FromBools returns a Set with bit i set iff b[i]; nil yields the absent
// zero value. The bridge from the legacy []bool mask representation.
func FromBools(b []bool) Set {
	if b == nil {
		return Set{}
	}
	s := New(len(b))
	for i, v := range b {
		if v {
			s.Set(i)
		}
	}
	return s
}

// Len returns the number of bits (0 for the zero value).
func (s Set) Len() int { return s.n }

// IsZero reports whether s is the absent zero value. Note a Set of
// length 0 built with New(0) is NOT zero — it is an empty mask.
func (s Set) IsZero() bool { return s.words == nil && s.n == 0 }

// Get reports bit i. Panics when i is out of range (in particular on
// the zero value — callers honouring the "absent means all up"
// convention must test IsZero first).
func (s Set) Get(i int) bool {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (s Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// SetTo sets bit i to v.
func (s Set) SetTo(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// SetAll sets every bit.
func (s Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.clearTail()
}

// ClearAll clears every bit.
func (s Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// FillValue sets every bit to v.
func (s Set) FillValue(v bool) {
	if v {
		s.SetAll()
	} else {
		s.ClearAll()
	}
}

// clearTail zeroes the bits beyond Len in the last word, preserving the
// invariant Count and word scans rely on.
func (s Set) clearTail() {
	if tail := uint(s.n) & 63; tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << tail) - 1
	}
}

// Count returns the number of set bits (popcount).
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// All reports whether every bit is set (vacuously true for length 0).
func (s Set) All() bool {
	if len(s.words) == 0 {
		return true
	}
	for _, w := range s.words[:len(s.words)-1] {
		if w != ^uint64(0) {
			return false
		}
	}
	last := s.words[len(s.words)-1]
	tail := uint(s.n) & 63
	if tail == 0 {
		return last == ^uint64(0)
	}
	return last == (1<<tail)-1
}

// None reports whether every bit is clear.
func (s Set) None() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Copy copies src's bits into s. Lengths must match.
func (s Set) Copy(src Set) {
	if s.n != src.n {
		panic("bitset: Copy length mismatch")
	}
	copy(s.words, src.words)
}

// Clone returns an independent copy of s (zero in, zero out).
func (s Set) Clone() Set {
	if s.IsZero() {
		return Set{}
	}
	c := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Resized returns a Set of length n that preserves s's bits in
// [0, min(n, s.Len())) and fills any bits beyond the old length with
// fill. The zero (absent) value stays absent when n matches its length
// convention would be ambiguous, so resizing the zero value is a panic —
// callers growing a mask decide first whether the mask is materialized
// (the zero value already means "all up" at every length). Shrinking is
// allowed; the result shares no storage with s.
func (s Set) Resized(n int, fill bool) Set {
	if s.IsZero() {
		panic("bitset: Resized on the absent zero value")
	}
	if n < 0 {
		panic("bitset: negative length")
	}
	r := New(n)
	copy(r.words, s.words)
	if n > s.n {
		// Clear any stale tail bits inherited from s's last word, then
		// fill the new region [s.n, n).
		if tail := uint(s.n) & 63; tail != 0 {
			r.words[s.n>>6] &= (1 << tail) - 1
		}
		if fill {
			for i := s.n; i < n; i++ {
				r.Set(i)
			}
		}
	}
	r.clearTail()
	return r
}

// And intersects s with other in place. Lengths must match.
func (s Set) And(other Set) {
	if s.n != other.n {
		panic("bitset: And length mismatch")
	}
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// AndNot clears in s every bit set in other. Lengths must match.
func (s Set) AndNot(other Set) {
	if s.n != other.n {
		panic("bitset: AndNot length mismatch")
	}
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// Or unions other into s. Lengths must match.
func (s Set) Or(other Set) {
	if s.n != other.n {
		panic("bitset: Or length mismatch")
	}
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// Equal reports whether s and other have identical length and bits.
func (s Set) Equal(other Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order, skipping zero
// words — an unchanged (all-clear) region costs one word test per 64
// entries.
//det:hotpath
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Words exposes the backing words (64 bits each, LSB = lowest id) for
// callers that need closure-free word-skip iteration in hot loops. The
// returned slice is shared; treat it as read-only. Bits beyond Len are
// guaranteed zero.
func (s Set) Words() []uint64 { return s.words }

// AppendSelected appends ids[pos] to dst for every set bit pos, in
// ascending position order. It is the closure-free form of ForEach used
// to materialize "the usable subset of this static id list" without
// allocating.
//det:hotpath
func (s Set) AppendSelected(dst []int, ids []int) []int {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, ids[base+b])
			w &= w - 1
		}
	}
	return dst
}

// AppendDiff appends to dst the ascending ids at which s and prev
// differ — the word-wise XOR change scan the delta consumers use. The
// two sets must have equal length.
//det:hotpath
func (s Set) AppendDiff(prev Set, dst []int) []int {
	if s.n != prev.n {
		panic("bitset: AppendDiff length mismatch")
	}
	for wi, w := range s.words {
		x := w ^ prev.words[wi]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			dst = append(dst, wi<<6+b)
			x &= x - 1
		}
	}
	return dst
}
