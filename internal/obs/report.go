package obs

import (
	"strconv"

	"repro/internal/metrics"
)

// PhaseStats aggregates one phase's timing: segment count, summed and
// max duration, and a log2 histogram (bucket b holds [2^(b-1), 2^b) ns).
type PhaseStats struct {
	Count   int64
	TotalNs int64
	MaxNs   int64
	Hist    [HistBuckets]int64
}

// MeanNs returns the mean segment duration (0 when empty).
func (s PhaseStats) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.TotalNs) / float64(s.Count)
}

// QuantileNs returns an upper bound on the q-quantile (0 < q ≤ 1)
// segment duration: the upper edge 2^b of the histogram bucket holding
// the q-th ranked segment. Coarse (factor-of-two) by construction; use
// the trace sink when exact per-segment durations matter.
func (s PhaseStats) QuantileNs(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for b := 0; b < HistBuckets; b++ {
		seen += s.Hist[b]
		if seen >= rank {
			if b == 0 {
				return 1
			}
			return int64(1) << uint(b)
		}
	}
	return s.MaxNs
}

// add folds o into s.
func (s *PhaseStats) add(o PhaseStats) {
	s.Count += o.Count
	s.TotalNs += o.TotalNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
	for b := range s.Hist {
		s.Hist[b] += o.Hist[b]
	}
}

// sub removes a prior snapshot o from s (Count/TotalNs/Hist are
// monotonic so the difference is exact; MaxNs keeps the later max,
// which upper-bounds the interval's true max).
func (s *PhaseStats) sub(o PhaseStats) {
	s.Count -= o.Count
	s.TotalNs -= o.TotalNs
	for b := range s.Hist {
		s.Hist[b] -= o.Hist[b]
	}
}

// RoundReport is a value snapshot of a probe's aggregates: per-phase
// timing plus the work counters. Reports subtract (per-interval deltas)
// and merge (across workers), and render through the internal/metrics
// table helpers.
type RoundReport struct {
	Phases   [NumPhases]PhaseStats
	Counters [NumCounters]int64
}

// Sub returns r minus the earlier snapshot prev — the activity between
// the two Report calls.
func (r RoundReport) Sub(prev RoundReport) RoundReport {
	out := r
	for ph := range out.Phases {
		out.Phases[ph].sub(prev.Phases[ph])
	}
	for c := range out.Counters {
		out.Counters[c] -= prev.Counters[c]
	}
	return out
}

// Merge returns the union of r and o — use to combine per-worker probes
// into one run-wide report.
func (r RoundReport) Merge(o RoundReport) RoundReport {
	out := r
	for ph := range out.Phases {
		out.Phases[ph].add(o.Phases[ph])
	}
	for c := range out.Counters {
		out.Counters[c] += o.Counters[c]
	}
	return out
}

// Rounds returns the observed round count.
func (r RoundReport) Rounds() int64 { return r.Counters[CounterRounds] }

// PhaseNs returns ph's total nanoseconds.
func (r RoundReport) PhaseNs(ph Phase) int64 { return r.Phases[ph].TotalNs }

// PhaseTable renders the non-empty phases as a markdown table: segment
// count, total ms, mean/p99-bound/max µs per segment.
func (r RoundReport) PhaseTable() *metrics.Table {
	t := metrics.NewTable("phase", "segments", "total ms", "mean µs", "p99≤ µs", "max µs")
	for ph := Phase(0); ph < NumPhases; ph++ {
		s := r.Phases[ph]
		if s.Count == 0 {
			continue
		}
		t.AddRow(
			ph.String(),
			strconv.FormatInt(s.Count, 10),
			metrics.FormatFloat(float64(s.TotalNs)/1e6),
			metrics.FormatFloat(s.MeanNs()/1e3),
			metrics.FormatFloat(float64(s.QuantileNs(0.99))/1e3),
			metrics.FormatFloat(float64(s.MaxNs)/1e3),
		)
	}
	return t
}

// CounterTable renders the non-zero counters as a markdown table.
func (r RoundReport) CounterTable() *metrics.Table {
	t := metrics.NewTable("counter", "value")
	for c := Counter(0); c < NumCounters; c++ {
		if r.Counters[c] == 0 {
			continue
		}
		t.AddRow(c.String(), strconv.FormatInt(r.Counters[c], 10))
	}
	return t
}
