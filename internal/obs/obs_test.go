package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestNilProbeIsInert(t *testing.T) {
	var p *Probe
	p.BeginRound(3)
	p.Begin(PhaseMatch)
	p.End(PhaseMatch)
	p.ObserveNs(PhaseEnvStep, 10)
	p.Add(CounterGroups, 5)
	p.Cell(0, 100)
	if got := p.Report(); got != (RoundReport{}) {
		t.Fatalf("nil probe report = %+v, want zero", got)
	}
	var tw *TraceWriter
	tw.Phase(0, 0, PhaseMatch, 1)
	tw.Cell(0, 0, 1)
	if err := tw.Flush(); err != nil {
		t.Fatalf("nil TraceWriter.Flush = %v", err)
	}
}

func TestPhaseTimingWithFakeClock(t *testing.T) {
	p := NewProbe(Config{Clock: &FakeClock{Step: 100}})
	for round := 0; round < 4; round++ {
		p.BeginRound(round)
		p.Begin(PhaseMatch)
		p.End(PhaseMatch) // two Now calls 100ns apart
	}
	rep := p.Report()
	if got := rep.Rounds(); got != 4 {
		t.Fatalf("rounds = %d, want 4", got)
	}
	s := rep.Phases[PhaseMatch]
	if s.Count != 4 || s.TotalNs != 400 || s.MaxNs != 100 {
		t.Fatalf("match stats = %+v, want count 4 total 400 max 100", s)
	}
	// 100ns lands in bucket bits.Len64(100) = 7, i.e. [64,128).
	if s.Hist[7] != 4 {
		t.Fatalf("hist = %v, want 4 segments in bucket 7", s.Hist)
	}
	if got := s.MeanNs(); got != 100 {
		t.Fatalf("mean = %v, want 100", got)
	}
	if got := s.QuantileNs(0.99); got != 128 {
		t.Fatalf("p99 bound = %d, want bucket edge 128", got)
	}
}

func TestNestedPhasesTimeIndependently(t *testing.T) {
	c := &FakeClock{Step: 10}
	p := NewProbe(Config{Clock: c})
	p.Begin(PhaseCell)  // t=10
	p.Begin(PhaseMatch) // t=20
	p.End(PhaseMatch)   // t=30 → 10ns
	p.End(PhaseCell)    // t=40 → 30ns
	rep := p.Report()
	if got := rep.Phases[PhaseMatch].TotalNs; got != 10 {
		t.Fatalf("inner phase = %dns, want 10", got)
	}
	if got := rep.Phases[PhaseCell].TotalNs; got != 30 {
		t.Fatalf("outer phase = %dns, want 30", got)
	}
}

func TestCountersAreConcurrencySafe(t *testing.T) {
	p := NewProbe(Config{Clock: &FakeClock{Step: 1}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Add(CounterExchInitiate, 1)
			}
		}()
	}
	wg.Wait()
	if got := p.Report().Counters[CounterExchInitiate]; got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestTraceWriterEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	p := NewProbe(Config{Clock: &FakeClock{Step: 7}, Trace: tw, Shard: 2})
	p.BeginRound(5)
	p.Begin(PhaseEnvStep)
	p.End(PhaseEnvStep)
	p.Cell(11, 1234)
	if err := tw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2:\n%s", len(lines), buf.String())
	}
	var phase struct {
		Event string `json:"event"`
		Shard int    `json:"shard"`
		Round int    `json:"round"`
		Phase string `json:"phase"`
		Ns    int64  `json:"ns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &phase); err != nil {
		t.Fatalf("phase line is not JSON: %v\n%s", err, lines[0])
	}
	if phase.Event != "phase" || phase.Shard != 2 || phase.Round != 5 || phase.Phase != "env" || phase.Ns != 7 {
		t.Fatalf("phase event = %+v", phase)
	}
	var cell struct {
		Event string `json:"event"`
		Shard int    `json:"shard"`
		Cell  int    `json:"cell"`
		Ns    int64  `json:"ns"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &cell); err != nil {
		t.Fatalf("cell line is not JSON: %v\n%s", err, lines[1])
	}
	if cell.Event != "cell" || cell.Shard != 2 || cell.Cell != 11 || cell.Ns != 1234 {
		t.Fatalf("cell event = %+v", cell)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	return 0, io.ErrClosedPipe
}

func TestTraceWriterLatchesFirstError(t *testing.T) {
	tw := NewTraceWriter(&failWriter{})
	tw.Phase(0, 0, PhaseMatch, 1)
	if err := tw.Flush(); err == nil {
		t.Fatal("want error from failing writer")
	}
	if tw.Err() == nil {
		t.Fatal("Err() should latch the failure")
	}
}

func TestReportSubAndMerge(t *testing.T) {
	p := NewProbe(Config{Clock: &FakeClock{Step: 50}})
	p.BeginRound(0)
	p.Begin(PhaseMatch)
	p.End(PhaseMatch)
	p.Add(CounterGroups, 3)
	snap := p.Report()
	p.BeginRound(1)
	p.Begin(PhaseMatch)
	p.End(PhaseMatch)
	p.Add(CounterGroups, 4)
	delta := p.Report().Sub(snap)
	if delta.Rounds() != 1 || delta.Counters[CounterGroups] != 4 {
		t.Fatalf("delta = rounds %d groups %d, want 1/4", delta.Rounds(), delta.Counters[CounterGroups])
	}
	if delta.Phases[PhaseMatch].Count != 1 || delta.Phases[PhaseMatch].TotalNs != 50 {
		t.Fatalf("delta match = %+v, want count 1 total 50", delta.Phases[PhaseMatch])
	}
	merged := snap.Merge(delta)
	if merged.Rounds() != 2 || merged.Counters[CounterGroups] != 7 {
		t.Fatalf("merged = rounds %d groups %d, want 2/7", merged.Rounds(), merged.Counters[CounterGroups])
	}
}

func TestTablesRender(t *testing.T) {
	p := NewProbe(Config{Clock: &FakeClock{Step: 1000}})
	p.BeginRound(0)
	p.Begin(PhaseGroupStep)
	p.End(PhaseGroupStep)
	p.Add(CounterPoolItems, 42)
	rep := p.Report()
	pt := rep.PhaseTable().String()
	if !strings.Contains(pt, "step") || !strings.Contains(pt, "phase") {
		t.Fatalf("phase table missing rows:\n%s", pt)
	}
	if strings.Contains(pt, "monitor") {
		t.Fatalf("phase table should omit empty phases:\n%s", pt)
	}
	ct := rep.CounterTable().String()
	if !strings.Contains(ct, "pool_items") || !strings.Contains(ct, "42") {
		t.Fatalf("counter table missing pool_items:\n%s", ct)
	}
}

func TestHotPathMethodsDoNotAllocate(t *testing.T) {
	tw := NewTraceWriter(io.Discard)
	p := NewProbe(Config{Clock: &FakeClock{Step: 3}, Trace: tw})
	allocs := testing.AllocsPerRun(1000, func() {
		p.BeginRound(1)
		p.Begin(PhaseEnvStep)
		p.End(PhaseEnvStep)
		p.Add(CounterTouchedEdges, 17)
		p.Cell(1, 99)
	})
	if allocs != 0 {
		t.Fatalf("probe hot path allocates %v per round, want 0", allocs)
	}
}

func TestQuantileBounds(t *testing.T) {
	var s PhaseStats
	if got := s.QuantileNs(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
	p := NewProbe(Config{Clock: &FakeClock{Step: 1}})
	// Durations 1ns ×9 then one huge outlier via ObserveNs.
	for i := 0; i < 9; i++ {
		p.ObserveNs(PhaseMonitor, 1)
	}
	p.ObserveNs(PhaseMonitor, 1<<20)
	st := p.Report().Phases[PhaseMonitor]
	if got := st.QuantileNs(0.5); got != 2 {
		t.Fatalf("median bound = %d, want bucket edge 2", got)
	}
	if got := st.QuantileNs(1.0); got != 1<<21 {
		t.Fatalf("max-quantile bound = %d, want %d", got, 1<<21)
	}
}
