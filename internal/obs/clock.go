// Package obs is the observability layer: a pluggable probe threaded
// through the engine's hot paths (sim round loop, engine.Shards flush and
// merge, engine.Pool fan-out, the async runtime's exchange lifecycle, and
// sweep cell execution) that aggregates per-phase timers and counters
// into a RoundReport and optionally emits a structured JSONL trace.
//
// The layer's contract is observe-never-perturb: probes read the engine,
// they never draw from or reorder the seeded random streams, so enabling
// observability changes no result bytes. A nil *Probe is fully inert —
// every method is nil-receiver-safe, so instrumented sites cost exactly
// one pointer check when observability is off.
package obs

import "time"

// Clock is the layer's time source: a monotonic nanosecond counter. The
// engine's determinism rules ban ad-hoc time.Now calls (the detlint
// timenow analyzer); all observability timing flows through this one
// abstraction so the sanctioned wall-clock sites are confined to this
// file and tests can substitute a deterministic fake.
type Clock interface {
	// Now returns nanoseconds on a monotonic scale. Only differences
	// between Now values are meaningful.
	Now() int64
}

// wallClock reads the process-monotonic clock as nanoseconds since an
// arbitrary base fixed at construction.
type wallClock struct {
	base time.Time
}

// NewWallClock returns the real monotonic clock. This is the layer's only
// wall-time source; everything else takes a Clock.
func NewWallClock() Clock {
	//lint:ignore timenow the obs.Clock abstraction's single sanctioned wall-time site; timing here observes phases and never feeds seeded streams
	return &wallClock{base: time.Now()}
}

func (c *wallClock) Now() int64 {
	//lint:ignore timenow monotonic read for phase timing; observability only, never feeds seeded streams
	return int64(time.Since(c.base))
}

// FakeClock is a deterministic Clock for tests: each Now call advances by
// Step nanoseconds (a zero Step freezes time). Not safe for concurrent
// use; tests drive it from one goroutine.
type FakeClock struct {
	Step int64
	now  int64
}

// Now advances the fake time by Step and returns it.
func (c *FakeClock) Now() int64 {
	c.now += c.Step
	return c.now
}
