package obs

import (
	"context"
	"math/bits"
	"runtime/pprof"
	"sync/atomic"
)

// Phase identifies one instrumented stage of the engine. The sim round
// loop brackets each stage with Begin/End; the sweep runner times whole
// cells under PhaseCell.
type Phase uint8

const (
	// PhaseEnvStep is the environment transition: Step plus the delta
	// stream's StepDeltas.
	PhaseEnvStep Phase = iota
	// PhaseDynamics covers the scripted dynamics schedule: growth
	// application, overlay begin (crash/partition/churn masks), amnesia,
	// the frozen-state check, and end-of-round overlay release.
	PhaseDynamics
	// PhaseTouched is touched-set assembly: collecting flipped edges and
	// agents and feeding the fairness probe.
	PhaseTouched
	// PhaseMatcherUpdate is the usable-edge delta index repair inside
	// PairMatcher.Update (pairwise mode only).
	PhaseMatcherUpdate
	// PhaseMatch is group formation: the random maximal matching draw in
	// pairwise mode, or the component-partition derivation (memo hit or
	// recompute) in component mode.
	PhaseMatch
	// PhaseGroupStep is group execution: building group jobs, the pool
	// fan-out running Step/PairStep, and applying the resulting states.
	PhaseGroupStep
	// PhaseMonitor is invariant maintenance: the sharded tracker flush
	// and the monitor's per-round observation.
	PhaseMonitor
	// PhaseCell times one whole sweep cell (sim.RunWith end to end).
	PhaseCell
	// NumPhases bounds the fixed per-phase arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"env", "dynamics", "touched", "update", "match", "step", "monitor", "cell",
}

// String returns the short phase name used in trace events, report
// tables, and pprof labels.
func (ph Phase) String() string {
	if ph < NumPhases {
		return phaseNames[ph]
	}
	return "unknown"
}

// Counter identifies one monotonically increasing work counter. Counters
// are updated atomically, so any goroutine (pool workers, async agents)
// may add to them; phase timers, in contrast, belong to the single
// goroutine driving the round loop.
type Counter uint8

const (
	// CounterRounds counts engine rounds observed via BeginRound.
	CounterRounds Counter = iota
	// CounterGroups counts agent groups formed (components or matched
	// pairs plus solo fallbacks, per the engine's accounting).
	CounterGroups
	// CounterMatchedPairs counts pairs drawn by the maximal matching.
	CounterMatchedPairs
	// CounterTouchedEdges / CounterTouchedAgents count the per-round
	// touched sets — the O(changes) work the delta path is sized by.
	CounterTouchedEdges
	CounterTouchedAgents
	// CounterShardFlushes counts Shards.Flush calls; CounterStagedDeltas
	// the per-shard staged tracker deltas they drained;
	// CounterShardMerges the P-way View merges.
	CounterShardFlushes
	CounterStagedDeltas
	CounterShardMerges
	// CounterPoolBatches counts pool fan-outs (Do/DoAll calls that
	// engaged workers); CounterPoolItems the items they spanned;
	// CounterPoolSerial the calls that ran inline below the threshold;
	// CounterPoolSlots the extra worker slots granted by the
	// process-wide budget — together the fan-out occupancy picture.
	CounterPoolBatches
	CounterPoolItems
	CounterPoolSerial
	CounterPoolSlots
	// CounterCells counts sweep cells completed.
	CounterCells
	// CounterExchInitiate / CounterExchBusy / CounterExchDeliver /
	// CounterExchLost count the async runtime's exchange lifecycle:
	// initiations, busy rejections, adopted replies, and messages lost
	// to scripted faults. CounterExchBackoffs counts backoff windows
	// entered and CounterExchBackoffNs their summed duration.
	CounterExchInitiate
	CounterExchBusy
	CounterExchDeliver
	CounterExchLost
	CounterExchBackoffs
	CounterExchBackoffNs
	// CounterSchedEnqueues / CounterSchedDepthSum / CounterSchedSteals /
	// CounterSchedAdmits / CounterSchedParks count the sharded scheduler's
	// event loop: agents made runnable, run-queue depth sampled at each
	// pop (divide by pops for mean depth), agents stolen by idle workers,
	// busy-rejected agents re-admitted with an AIMD deadline, and workers
	// parked on an empty system.
	CounterSchedEnqueues
	CounterSchedDepthSum
	CounterSchedSteals
	CounterSchedAdmits
	CounterSchedParks
	// NumCounters bounds the fixed counter array.
	NumCounters
)

var counterNames = [NumCounters]string{
	"rounds", "groups", "matched_pairs", "touched_edges", "touched_agents",
	"shard_flushes", "staged_deltas", "shard_merges",
	"pool_batches", "pool_items", "pool_serial", "pool_extra_slots",
	"cells",
	"exch_initiate", "exch_busy", "exch_deliver", "exch_lost",
	"exch_backoffs", "exch_backoff_ns",
	"sched_enqueues", "sched_depth_sum", "sched_steals",
	"sched_admits", "sched_parks",
}

// String returns the counter's snake_case name used in report tables.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "unknown"
}

// HistBuckets is the number of log2 latency buckets per phase: bucket b
// holds durations in [2^(b-1), 2^b) ns, so 40 buckets span sub-ns to
// ~9 minutes; longer durations clamp into the last bucket.
const HistBuckets = 40

// Config configures a Probe. The zero value is valid: real wall clock,
// no trace, shard 0, no pprof labels.
type Config struct {
	// Clock supplies phase timing; nil selects the real monotonic clock.
	Clock Clock
	// Trace, when non-nil, receives one JSONL event per phase segment
	// and per sweep cell. Several probes may share one TraceWriter.
	Trace *TraceWriter
	// Shard stamps this probe's trace events (e.g. the sweep worker
	// index) so events from probes sharing a TraceWriter stay separable.
	Shard int
	// PprofLabels attaches a pprof "phase" label to the calling
	// goroutine for the duration of each phase, so CPU profiles
	// attribute samples to phases. Off by default: label switching has
	// measurable (if small) per-phase cost.
	PprofLabels bool
}

// phaseAgg accumulates one phase's timing on the probe's owning
// goroutine (no atomics: timers are single-goroutine by contract).
type phaseAgg struct {
	count   int64
	totalNs int64
	maxNs   int64
	hist    [HistBuckets]int64
}

// Probe is the engine's observability hook. All methods are
// nil-receiver-safe: a nil *Probe is the disabled state and costs one
// pointer check per instrumented site. When enabled, the hot-path
// methods (BeginRound, Begin, End, Add) are allocation-free —
// preallocated per-phase slots, no closures — so probed runs keep the
// engine's allocation budgets.
//
// Concurrency: Add is safe from any goroutine (atomic counters);
// BeginRound/Begin/End/ObserveNs must be called from a single goroutine
// at a time (the round-loop or sweep-worker goroutine that owns the
// probe). Give each concurrent worker its own Probe and Merge the
// reports.
type Probe struct {
	clock Clock
	trace *TraceWriter
	shard int

	pprofOn bool
	labels  [NumPhases]context.Context
	basectx context.Context

	round    int64
	open     [NumPhases]int64
	agg      [NumPhases]phaseAgg
	counters [NumCounters]atomic.Int64
}

// NewProbe builds an enabled probe from cfg.
func NewProbe(cfg Config) *Probe {
	p := &Probe{clock: cfg.Clock, trace: cfg.Trace, shard: cfg.Shard}
	if p.clock == nil {
		p.clock = NewWallClock()
	}
	if cfg.PprofLabels {
		p.pprofOn = true
		p.basectx = context.Background()
		for ph := Phase(0); ph < NumPhases; ph++ {
			p.labels[ph] = pprof.WithLabels(p.basectx, pprof.Labels("phase", ph.String()))
		}
	}
	return p
}

// BeginRound marks the start of round r: subsequent phase events carry
// this round number, and the rounds counter advances.
//
//det:hotpath
func (p *Probe) BeginRound(r int) {
	if p == nil {
		return
	}
	p.round = int64(r)
	p.counters[CounterRounds].Add(1)
}

// Begin opens a timing segment for ph. Segments of distinct phases may
// nest (PhaseCell wraps a whole run); reopening the same phase before
// End discards the earlier start.
//
//det:hotpath
func (p *Probe) Begin(ph Phase) {
	if p == nil {
		return
	}
	if p.pprofOn {
		pprof.SetGoroutineLabels(p.labels[ph])
	}
	p.open[ph] = p.clock.Now()
}

// End closes the current segment for ph, folding its duration into the
// phase's aggregate and emitting a trace event if a sink is attached.
//
//det:hotpath
func (p *Probe) End(ph Phase) {
	if p == nil {
		return
	}
	ns := p.clock.Now() - p.open[ph]
	if p.pprofOn {
		pprof.SetGoroutineLabels(p.basectx)
	}
	p.observe(ph, ns)
}

// ObserveNs folds an externally measured duration into ph's aggregate —
// for callers that already hold a duration (e.g. the sweep runner's
// per-cell wall clock) rather than bracketing with Begin/End.
//
//det:hotpath
func (p *Probe) ObserveNs(ph Phase, ns int64) {
	if p == nil {
		return
	}
	p.observe(ph, ns)
}

//det:hotpath
func (p *Probe) observe(ph Phase, ns int64) {
	a := &p.agg[ph]
	a.count++
	a.totalNs += ns
	if ns > a.maxNs {
		a.maxNs = ns
	}
	b := 0
	if ns > 0 {
		b = bits.Len64(uint64(ns))
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	a.hist[b]++
	if p.trace != nil {
		p.trace.Phase(p.shard, int(p.round), ph, ns)
	}
}

// Add adds n to counter c. Safe from any goroutine.
//
//det:hotpath
func (p *Probe) Add(c Counter, n int64) {
	if p == nil {
		return
	}
	p.counters[c].Add(n)
}

// Cell records completion of sweep cell index with the given duration:
// the cells counter advances, the duration folds into PhaseCell, and a
// cell trace event is emitted. The round number stamped on the trace
// event is the cell index.
func (p *Probe) Cell(index int, ns int64) {
	if p == nil {
		return
	}
	p.counters[CounterCells].Add(1)
	a := &p.agg[PhaseCell]
	a.count++
	a.totalNs += ns
	if ns > a.maxNs {
		a.maxNs = ns
	}
	b := 0
	if ns > 0 {
		b = bits.Len64(uint64(ns))
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	a.hist[b]++
	if p.trace != nil {
		p.trace.Cell(p.shard, index, ns)
	}
}

// Report snapshots the probe's aggregates. Counters are read atomically;
// phase timers are read as-is, so call Report only when the probed run
// is not mid-phase on another goroutine.
func (p *Probe) Report() RoundReport {
	var r RoundReport
	if p == nil {
		return r
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		a := &p.agg[ph]
		r.Phases[ph] = PhaseStats{Count: a.count, TotalNs: a.totalNs, MaxNs: a.maxNs, Hist: a.hist}
	}
	for c := Counter(0); c < NumCounters; c++ {
		r.Counters[c] = p.counters[c].Load()
	}
	return r
}
