package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// TraceWriter emits structured JSONL trace events: one object per line,
// one line per phase segment or sweep cell. It is safe for concurrent
// use (sweep workers share one writer) and allocation-free in steady
// state: lines are assembled in a reusable buffer with strconv appends
// and flushed through one bufio.Writer.
//
// Event shapes:
//
//	{"event":"phase","shard":0,"round":12,"phase":"match","ns":48211}
//	{"event":"cell","shard":3,"cell":17,"ns":90211377}
type TraceWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewTraceWriter wraps w. The caller owns w's lifetime; call Flush
// before closing it.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 128)}
}

// Phase emits a phase event.
func (t *TraceWriter) Phase(shard, round int, ph Phase, ns int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.buf[:0]
	b = append(b, `{"event":"phase","shard":`...)
	b = strconv.AppendInt(b, int64(shard), 10)
	b = append(b, `,"round":`...)
	b = strconv.AppendInt(b, int64(round), 10)
	b = append(b, `,"phase":"`...)
	b = append(b, ph.String()...)
	b = append(b, `","ns":`...)
	b = strconv.AppendInt(b, ns, 10)
	b = append(b, '}', '\n')
	t.write(b)
	t.mu.Unlock()
}

// Cell emits a sweep-cell completion event.
func (t *TraceWriter) Cell(shard, cell int, ns int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := t.buf[:0]
	b = append(b, `{"event":"cell","shard":`...)
	b = strconv.AppendInt(b, int64(shard), 10)
	b = append(b, `,"cell":`...)
	b = strconv.AppendInt(b, int64(cell), 10)
	b = append(b, `,"ns":`...)
	b = strconv.AppendInt(b, ns, 10)
	b = append(b, '}', '\n')
	t.write(b)
	t.mu.Unlock()
}

// write appends the assembled line to the buffered writer, latching the
// first error. Callers hold t.mu.
func (t *TraceWriter) write(b []byte) {
	t.buf = b[:0]
	if t.err != nil {
		return
	}
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
	}
}

// Flush drains buffered events to the underlying writer and returns the
// first error seen by any write or flush.
func (t *TraceWriter) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.bw.Flush()
	}
	return t.err
}

// Err returns the first error seen, without flushing.
func (t *TraceWriter) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
