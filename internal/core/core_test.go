package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	ms "repro/internal/multiset"
)

// Toy functions over int multisets, mirroring §4.

func minFunc() Function[int] {
	return FuncOf("min", func(x ms.Multiset[int]) ms.Multiset[int] {
		m, ok := x.Min()
		if !ok {
			return x
		}
		return x.Map(func(int) int { return m })
	})
}

func sumFunc() Function[int] {
	return FuncOf("sum", func(x ms.Multiset[int]) ms.Multiset[int] {
		if x.IsEmpty() {
			return x
		}
		total := ms.SumInts(x)
		out := make([]int, x.Len())
		out[0] = total
		return ms.New(x.Cmp(), out...)
	})
}

// secondSmallest is the paper's §4.3 negative example: idempotent but not
// super-idempotent.
func secondSmallestFunc() Function[int] {
	return FuncOf("second-smallest", func(x ms.Multiset[int]) ms.Multiset[int] {
		if x.IsEmpty() {
			return x
		}
		first, _ := x.Min()
		second := first
		x.ForEach(func(v int) {
			if v != first && (second == first || v < second) {
				second = v
			}
		})
		return x.Map(func(int) int { return second })
	})
}

func smallInts(maxLen, maxVal int) Gen[int] {
	return func(rng *rand.Rand) ms.Multiset[int] {
		n := 1 + rng.Intn(maxLen)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(maxVal)
		}
		return ms.OfInts(vals...)
	}
}

func TestFuncAdapter(t *testing.T) {
	f := minFunc()
	if f.Name() != "min" {
		t.Errorf("Name = %q", f.Name())
	}
	got := f.Apply(ms.OfInts(3, 5, 3, 7))
	if !got.Equal(ms.OfInts(3, 3, 3, 3)) {
		t.Errorf("min apply = %v", got) // paper's §4.1 example
	}
}

func TestSumFuncMatchesPaperExample(t *testing.T) {
	got := sumFunc().Apply(ms.OfInts(3, 5, 3, 7))
	if !got.Equal(ms.OfInts(18, 0, 0, 0)) {
		t.Errorf("sum apply = %v, want {18,0,0,0}", got) // §4.2 example
	}
}

func TestSecondSmallestMatchesPaperExample(t *testing.T) {
	got := secondSmallestFunc().Apply(ms.OfInts(3, 5, 3, 7))
	if !got.Equal(ms.OfInts(5, 5, 5, 5)) {
		t.Errorf("second smallest = %v, want {5,5,5,5}", got) // §4.3 example
	}
	// All equal: second smallest is that value.
	got = secondSmallestFunc().Apply(ms.OfInts(4, 4))
	if !got.Equal(ms.OfInts(4, 4)) {
		t.Errorf("all-equal second smallest = %v", got)
	}
}

func TestSummationVariant(t *testing.T) {
	h := SummationVariant("sum of values", func(v int) float64 { return float64(v) })
	if got := h.Value(ms.OfInts(1, 2, 3)); got != 6 {
		t.Errorf("h = %g, want 6", got)
	}
	if got := h.Value(ms.OfInts()); got != 0 {
		t.Errorf("h empty = %g", got)
	}
}

func TestCheckIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eq := ExactEqual[int]()
	if v := CheckIdempotent(minFunc(), eq, smallInts(6, 10), 500, rng); v != nil {
		t.Errorf("min flagged non-idempotent: %v", v)
	}
	if v := CheckIdempotent(secondSmallestFunc(), eq, smallInts(6, 10), 500, rng); v != nil {
		t.Errorf("second-smallest flagged non-idempotent: %v", v)
	}
	// A genuinely non-idempotent function: increment everything.
	inc := FuncOf("inc", func(x ms.Multiset[int]) ms.Multiset[int] {
		return x.Map(func(v int) int { return v + 1 })
	})
	if v := CheckIdempotent(inc, eq, smallInts(4, 5), 100, rng); v == nil {
		t.Error("inc not flagged")
	}
}

func TestCheckSuperIdempotentPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	eq := ExactEqual[int]()
	gen := smallInts(6, 10)
	if v := CheckSuperIdempotent(minFunc(), eq, gen, gen, 1000, rng); v != nil {
		t.Errorf("min flagged: %v", v)
	}
	if v := CheckSuperIdempotent(sumFunc(), eq, gen, gen, 1000, rng); v != nil {
		t.Errorf("sum flagged: %v", v)
	}
}

func TestCheckSuperIdempotentNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eq := ExactEqual[int]()
	gen := smallInts(5, 8)
	v := CheckSuperIdempotent(secondSmallestFunc(), eq, gen, gen, 2000, rng)
	if v == nil {
		t.Fatal("second-smallest not flagged as non-super-idempotent")
	}
	// The counterexample must be genuine.
	f := secondSmallestFunc()
	direct := f.Apply(v.X.Union(v.Y))
	via := f.Apply(f.Apply(v.X).Union(v.Y))
	if direct.Equal(via) {
		t.Errorf("reported counterexample is not one: %v", v)
	}
}

// The paper's own §4.3 counterexample: X={1,3}, Y={2}.
func TestPaperSecondSmallestCounterexample(t *testing.T) {
	f := secondSmallestFunc()
	x := ms.OfInts(1, 3)
	y := ms.OfInts(2)
	direct := f.Apply(x.Union(y))       // f({1,3,2}) = {2,2,2}
	via := f.Apply(f.Apply(x).Union(y)) // f({3,3,2}) = {3,3,3}
	if !direct.Equal(ms.OfInts(2, 2, 2)) {
		t.Errorf("f(X∪Y) = %v, want {2,2,2}", direct)
	}
	if !via.Equal(ms.OfInts(3, 3, 3)) {
		t.Errorf("f(f(X)∪Y) = %v, want {3,3,3}", via)
	}
	if direct.Equal(via) {
		t.Error("paper counterexample did not separate the two sides")
	}
}

func TestCheckSuperIdempotentSingleton(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eq := ExactEqual[int]()
	genV := func(r *rand.Rand) int { return r.Intn(8) }
	if v := CheckSuperIdempotentSingleton(minFunc(), eq, smallInts(5, 8), genV, ms.OrderedCmp[int](), 800, rng); v != nil {
		t.Errorf("min flagged by singleton criterion: %v", v)
	}
	if v := CheckSuperIdempotentSingleton(secondSmallestFunc(), eq, smallInts(5, 8), genV, ms.OrderedCmp[int](), 2000, rng); v == nil {
		t.Error("second-smallest passed singleton criterion")
	}
}

func TestEnumMultisets(t *testing.T) {
	var count int
	EnumMultisets([]int{0, 1, 2}, ms.OrderedCmp[int](), 1, 2, func(m ms.Multiset[int]) bool {
		count++
		return true
	})
	// Size 1: 3; size 2: C(3+1,2)=6. Total 9.
	if count != 9 {
		t.Errorf("enumerated %d multisets, want 9", count)
	}
	// Early stop.
	count = 0
	EnumMultisets([]int{0, 1, 2}, ms.OrderedCmp[int](), 1, 2, func(m ms.Multiset[int]) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Errorf("early stop visited %d", count)
	}
	// minSize respected.
	count = 0
	EnumMultisets([]int{0, 1}, ms.OrderedCmp[int](), 2, 2, func(m ms.Multiset[int]) bool {
		if m.Len() != 2 {
			t.Errorf("minSize violated: %v", m)
		}
		count++
		return true
	})
	if count != 3 {
		t.Errorf("size-2 multisets over {0,1} = %d, want 3", count)
	}
}

func TestExhaustiveSuperIdempotent(t *testing.T) {
	eq := ExactEqual[int]()
	domain := []int{0, 1, 2, 3}
	if v := ExhaustiveSuperIdempotent(minFunc(), eq, domain, ms.OrderedCmp[int](), 4); v != nil {
		t.Errorf("min refuted exhaustively: %v", v)
	}
	if v := ExhaustiveSuperIdempotent(sumFunc(), eq, domain, ms.OrderedCmp[int](), 4); v != nil {
		t.Errorf("sum refuted exhaustively: %v", v)
	}
	v := ExhaustiveSuperIdempotent(secondSmallestFunc(), eq, domain, ms.OrderedCmp[int](), 3)
	if v == nil {
		t.Fatal("second-smallest survived exhaustive check")
	}
	if v.Y.Len() != 1 && !v.Y.IsEmpty() {
		t.Errorf("singleton criterion counterexample has |Y| = %d", v.Y.Len())
	}
}

func TestCheckDStep(t *testing.T) {
	f := minFunc()
	h := SummationVariant[int]("Σx", func(v int) float64 { return float64(v) })
	eq := ExactEqual[int]()

	// §4.1: agents update toward the group minimum.
	before := ms.OfInts(3, 5, 7)
	after := ms.OfInts(3, 3, 4)
	v := CheckDStep(f, h, eq, before, after, 0)
	if !v.OK || v.Stutter {
		t.Errorf("valid step rejected: %v", v)
	}

	// Stutter.
	v = CheckDStep(f, h, eq, before, before, 0)
	if !v.OK || !v.Stutter {
		t.Errorf("stutter misjudged: %v", v)
	}

	// Breaks conservation: minimum changes.
	bad := ms.OfInts(4, 5, 7)
	v = CheckDStep(f, h, eq, before, bad, 0)
	if v.OK || v.ConservesF {
		t.Errorf("conservation violation accepted: %v", v)
	}

	// Conserves f but h does not decrease.
	worse := ms.OfInts(3, 6, 7)
	v = CheckDStep(f, h, eq, before, worse, 0)
	if v.OK || v.DecreasesH {
		t.Errorf("non-improving step accepted: %v", v)
	}
	if v.DeltaH != 1 {
		t.Errorf("DeltaH = %g, want 1", v.DeltaH)
	}
}

func TestCheckLocalToGlobalSummationForm(t *testing.T) {
	// For min with a summation-form h, no counterexample should exist
	// (paper §3.5 lemma).
	rng := rand.New(rand.NewSource(5))
	f := minFunc()
	h := SummationVariant[int]("Σx", func(v int) float64 { return float64(v) })
	eq := ExactEqual[int]()
	gen := func(r *rand.Rand) (ms.Multiset[int], ms.Multiset[int]) {
		// Random group state, step = everyone moves toward min.
		n := 1 + r.Intn(5)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = 1 + r.Intn(9)
		}
		before := ms.OfInts(vals...)
		m, _ := before.Min()
		after := before.Map(func(v int) int {
			if v == m {
				return v
			}
			return m + r.Intn(v-m) // strictly toward the min
		})
		return before, after
	}
	if v := CheckLocalToGlobal(f, h, eq, gen, gen, 500, 0, rng); v != nil {
		t.Errorf("summation-form variant flagged: %v", v)
	}
}

func TestCheckVariantContextMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := SummationVariant[int]("Σx", func(v int) float64 { return float64(v) })
	gen := func(r *rand.Rand) (ms.Multiset[int], ms.Multiset[int]) {
		before := ms.OfInts(5, 9)
		return before, ms.OfInts(5, 5)
	}
	genV := func(r *rand.Rand) int { return r.Intn(10) }
	if v := CheckVariantContextMonotone(h, gen, genV, ms.OrderedCmp[int](), 200, 0, rng); v != nil {
		t.Errorf("summation variant flagged: %v", v)
	}
	// A context-sensitive "variant": the number of distinct values. Moving
	// {5,9}→{5,5} reduces it, but in context {9}: {5,9,9}→{5,5,9} keeps it.
	distinct := VariantOf("distinct", func(x ms.Multiset[int]) float64 {
		seen := map[int]bool{}
		x.ForEach(func(v int) { seen[v] = true })
		return float64(len(seen))
	})
	genBad := func(r *rand.Rand) (ms.Multiset[int], ms.Multiset[int]) {
		return ms.OfInts(5, 9), ms.OfInts(5, 5)
	}
	genV9 := func(r *rand.Rand) int { return 9 }
	if v := CheckVariantContextMonotone(distinct, genBad, genV9, ms.OrderedCmp[int](), 50, 0, rng); v == nil {
		t.Error("context-sensitive variant not flagged")
	}
}

func TestRequirementString(t *testing.T) {
	if AnyConnected.String() == "" || CompleteGraph.String() == "" || LineGraph.String() == "" {
		t.Error("empty requirement strings")
	}
	if Requirement(99).String() == "" {
		t.Error("unknown requirement renders empty")
	}
}

func TestStepVerdictString(t *testing.T) {
	ok := StepVerdict{OK: true, Stutter: true}
	if ok.String() == "" {
		t.Error("empty verdict string")
	}
	bad := StepVerdict{ConservesF: true, DeltaH: 2}
	if bad.String() == "" {
		t.Error("empty bad verdict string")
	}
}

// --- Property-based tests (testing/quick) ---

// Summation-form variants are additive over multiset union — the exact
// reason the paper's lemma (8) gives them the local-to-global property.
func TestPropSummationVariantAdditive(t *testing.T) {
	h := SummationVariant[int]("Σx²", func(v int) float64 { return float64(v) * float64(v) })
	f := func(a, b []int8) bool {
		// Small values: the check is exact in float64 (no rounding
		// ambiguity from summation order).
		toInts := func(xs []int8) []int {
			out := make([]int, len(xs))
			for i, v := range xs {
				out[i] = int(v)
			}
			return out
		}
		x, y := ms.OfInts(toInts(a)...), ms.OfInts(toInts(b)...)
		return h.Value(x.Union(y)) == h.Value(x)+h.Value(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// CheckDStep judges any state as a stutter against itself.
func TestPropDStepReflexive(t *testing.T) {
	fmin := minFunc()
	h := SummationVariant[int]("Σx", func(v int) float64 { return float64(v) })
	eq := ExactEqual[int]()
	f := func(a []int) bool {
		x := ms.OfInts(a...)
		v := CheckDStep(fmin, h, eq, x, x, 0)
		return v.OK && v.Stutter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// EnumMultisets over a domain of size d with exact size k enumerates
// exactly C(d+k−1, k) multisets.
func TestPropEnumMultisetCounts(t *testing.T) {
	binom := func(n, k int) int {
		r := 1
		for i := 1; i <= k; i++ {
			r = r * (n - k + i) / i
		}
		return r
	}
	for d := 1; d <= 5; d++ {
		for k := 0; k <= 4; k++ {
			domain := make([]int, d)
			for i := range domain {
				domain[i] = i
			}
			count := 0
			EnumMultisets(domain, ms.OrderedCmp[int](), k, k, func(ms.Multiset[int]) bool {
				count++
				return true
			})
			want := binom(d+k-1, k)
			if k == 0 {
				want = 0 // minSize 0 with visit gated at len ≥ minSize but empty pick visited once... adjust below
			}
			if k == 0 {
				// EnumMultisets visits the empty multiset when minSize is 0.
				want = 1
			}
			if count != want {
				t.Errorf("d=%d k=%d: enumerated %d, want %d", d, k, count, want)
			}
		}
	}
}

// Super-idempotence survives min/max/gcd-style ◦-operators: the §3.4
// lemma checked generically for min over random draws of arbitrary size.
func TestPropMinSuperIdempotentQuick(t *testing.T) {
	fmin := minFunc()
	eq := ExactEqual[int]()
	f := func(a, b []int) bool {
		if len(a) == 0 {
			return true
		}
		x, y := ms.OfInts(a...), ms.OfInts(b...)
		direct := fmin.Apply(x.Union(y))
		via := fmin.Apply(fmin.Apply(x).Union(y))
		return eq(direct, via)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Target is idempotent: Target(p, Target(p, S)) = Target(p, S) for the
// min problem — the f-image is a fixpoint set.
func TestPropTargetFixpoint(t *testing.T) {
	fmin := minFunc()
	f := func(a []int) bool {
		if len(a) == 0 {
			return true
		}
		x := ms.OfInts(a...)
		once := fmin.Apply(x)
		return fmin.Apply(once).Equal(once)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
