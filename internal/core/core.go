// Package core implements the paper's primary contribution: the
// self-similar design methodology of "Self-Similar Algorithms for Dynamic
// Distributed Systems" (Chandy & Charpentier, ICDCS 2007), §3.
//
// The methodology casts "compute f(S(0)) in a dynamic distributed system"
// as constrained optimization:
//
//   - a distributed function f over multisets of agent states must be
//     conserved by every group step (the conservation law, §3.2–3.3);
//   - a well-founded variant (objective) function h must strictly decrease
//     on every proper group step (§3.5);
//   - the induced step relation D (§3.6) is
//     S_B D S'_B  ≡  (f(S_B) = f(S'_B) ∧ h(S_B) > h(S'_B)) ∨ S_B = S'_B.
//
// The key structural condition is super-idempotence of f (§3.4):
// f(X ∪ Y) = f(f(X) ∪ Y) for all multisets X, Y — exactly the idempotent
// functions for which local conservation implies global conservation, and
// hence exactly the functions to which the self-similar strategy applies.
//
// This package provides:
//
//   - the Function and Variant abstractions for f and h;
//   - machine checkers for idempotence, super-idempotence (both the
//     definition and the singleton criterion (6)), randomized and
//     exhaustive over finite domains;
//   - the relation D as a runtime-checkable predicate (IsDStep), which
//     turns the paper's first proof obligation, "R implements D", into a
//     monitor that the simulator and tests enforce on every executed step;
//   - checkers for the local-to-global properties of f and h ((7), (10)).
//
// Everything downstream (the problem library, the simulator, the model
// checker, the figures) is built on these definitions.
package core

import (
	"fmt"
	"math/rand"

	ms "repro/internal/multiset"
)

// Function is the paper's distributed function f: a map from multisets of
// agent states to multisets of agent states. For the consensus problems of
// §4 the result has the same cardinality as the input; the abstraction does
// not require it, but every checker verifies the properties the paper
// states for the particular f at hand.
type Function[T any] interface {
	// Name identifies the function in diagnostics and tables.
	Name() string
	// Apply computes f(X).
	Apply(x ms.Multiset[T]) ms.Multiset[T]
}

// FuncOf adapts a plain Go function into a Function.
func FuncOf[T any](name string, apply func(ms.Multiset[T]) ms.Multiset[T]) Function[T] {
	return funcAdapter[T]{name: name, apply: apply}
}

type funcAdapter[T any] struct {
	name  string
	apply func(ms.Multiset[T]) ms.Multiset[T]
}

func (f funcAdapter[T]) Name() string                          { return f.name }
func (f funcAdapter[T]) Apply(x ms.Multiset[T]) ms.Multiset[T] { return f.apply(x) }

// IntoFunction is the optional allocation-free fast path of a Function:
// ApplyInto appends the elements of f(x) to dst in canonical (sorted)
// order and returns the extended slice, allocating only when dst must
// grow. Engines that evaluate f every round (the conservation-law check)
// detect this interface via ApplyInto below and reuse one buffer for the
// lifetime of a run.
type IntoFunction[T any] interface {
	Function[T]
	ApplyInto(dst []T, x ms.Multiset[T]) []T
}

// ApplyInto evaluates f(x) through the IntoFunction fast path when f
// provides one: the result elements are written into buf (reused across
// calls; pass the returned slice back in) and the returned multiset is a
// zero-copy view of it, invalidated by the next call with the same
// buffer. Functions without the fast path fall back to Apply, in which
// case the result owns its storage and buf passes through unchanged.
func ApplyInto[T any](f Function[T], buf []T, x ms.Multiset[T]) (ms.Multiset[T], []T) {
	if into, ok := f.(IntoFunction[T]); ok {
		buf = into.ApplyInto(buf[:0], x)
		return ms.View(x.Cmp(), buf), buf
	}
	return f.Apply(x), buf
}

// FuncOfInto adapts a plain Go function plus its into-buffer fast path
// into an IntoFunction. applyInto must append the same elements Apply
// would produce, in canonical order, to its dst argument.
func FuncOfInto[T any](name string, apply func(ms.Multiset[T]) ms.Multiset[T],
	applyInto func(dst []T, x ms.Multiset[T]) []T) IntoFunction[T] {
	return intoFuncAdapter[T]{funcAdapter[T]{name: name, apply: apply}, applyInto}
}

type intoFuncAdapter[T any] struct {
	funcAdapter[T]
	applyInto func(dst []T, x ms.Multiset[T]) []T
}

func (f intoFuncAdapter[T]) ApplyInto(dst []T, x ms.Multiset[T]) []T { return f.applyInto(dst, x) }

// SuperIdempotentFunction is an optional marker a Function carries to
// assert the §3.4 structural condition f(X ∪ Y) = f(f(X) ∪ Y). The
// sharded monitor reduction (engine.Monitor.ObserveRoundSharded) checks
// conservation through per-shard partial images f(S_i) — an equality
// that holds exactly when f is super-idempotent — so it takes the
// partial-image path only for marked functions and falls back to
// evaluating f on the merged global snapshot otherwise. Marking a
// function that is NOT super-idempotent makes the sharded conservation
// verdict diverge from the unsharded one; problems should mark f only
// when the property is established (the checkers in this package, the E9
// classification).
type SuperIdempotentFunction interface {
	// SuperIdempotentF is a marker method; it carries no behavior.
	SuperIdempotentF()
}

// IsSuperIdempotent reports whether f carries the super-idempotence
// marker (possibly through MarkSuperIdempotent).
func IsSuperIdempotent[T any](f Function[T]) bool {
	_, ok := f.(SuperIdempotentFunction)
	return ok
}

// MarkSuperIdempotent wraps f with the SuperIdempotentFunction marker,
// preserving the IntoFunction fast path when f provides one.
func MarkSuperIdempotent[T any](f Function[T]) Function[T] {
	if into, ok := f.(IntoFunction[T]); ok {
		return superIntoFunc[T]{into}
	}
	return superFunc[T]{f}
}

type superFunc[T any] struct{ Function[T] }

func (superFunc[T]) SuperIdempotentF() {}

type superIntoFunc[T any] struct{ IntoFunction[T] }

func (superIntoFunc[T]) SuperIdempotentF() {}

// Variant is the paper's variant (objective) function h over group states
// (§3.5). Its range must be well-founded for the order >; integer-valued
// variants are represented exactly in float64 far beyond the sizes used
// here, and geometric variants carry a problem-chosen tolerance.
type Variant[T any] interface {
	// Name identifies the variant in diagnostics and tables.
	Name() string
	// Value computes h(X).
	Value(x ms.Multiset[T]) float64
}

// VariantOf adapts a plain Go function into a Variant.
func VariantOf[T any](name string, value func(ms.Multiset[T]) float64) Variant[T] {
	return variantAdapter[T]{name: name, value: value}
}

type variantAdapter[T any] struct {
	name  string
	value func(ms.Multiset[T]) float64
}

func (v variantAdapter[T]) Name() string                   { return v.name }
func (v variantAdapter[T]) Value(x ms.Multiset[T]) float64 { return v.value(x) }

// SummationVariant builds a variant in the summation form of the paper's
// equation (8): h(S_B) = Σ_{a∈B} ha(Sa). The paper's lemma in §3.5 shows
// this form satisfies the local-to-global improvement property (7) whenever
// f is super-idempotent, so problems should prefer it; the Fig. 1
// counterexample is precisely a variant NOT of this form.
func SummationVariant[T any](name string, ha func(T) float64) Variant[T] {
	return variantAdapter[T]{name: name, value: func(x ms.Multiset[T]) float64 {
		total := 0.0
		x.ForEach(func(v T) { total += ha(v) })
		return total
	}}
}

// Requirement describes the environment assumption Q a problem needs, per
// §4: the set Q_E for a graph family E such that proof obligation (9)
// holds.
type Requirement int

const (
	// AnyConnected: Q_E for any connected graph suffices (minimum §4.1,
	// convex hull §4.5).
	AnyConnected Requirement = iota
	// CompleteGraph: E must be the complete graph — any two agents must
	// communicate infinitely often (sum, §4.2: zero-valued agents cannot
	// relay).
	CompleteGraph
	// LineGraph: E must include the linear graph in index order
	// (sorting, §4.4).
	LineGraph
)

// String renders the requirement for tables.
func (r Requirement) String() string {
	switch r {
	case AnyConnected:
		return "any connected graph"
	case CompleteGraph:
		return "complete graph"
	case LineGraph:
		return "line graph (index order)"
	default:
		return fmt.Sprintf("Requirement(%d)", int(r))
	}
}

// Problem bundles one of the paper's example problems: the function f to
// compute, the variant h that drives optimization, and concrete
// refinements of the step relation D — a group-level collaborative step
// (used by the round-based engine) and a pairwise gossip step (used by the
// asynchronous message-passing runtime).
//
// Self-similarity is structural: GroupStep receives nothing but the states
// of the group's own members and is used for every group of every size, so
// each group behaves as if the system consisted of that group alone.
type Problem[T any] interface {
	// Name identifies the problem.
	Name() string
	// Cmp is the total order on agent states used to canonicalize
	// multisets of them.
	Cmp() ms.Cmp[T]
	// F is the distributed function to compute.
	F() Function[T]
	// H is the variant function.
	H() Variant[T]
	// GroupStep executes one collaborative step of the relation R for a
	// group currently holding the given states. The returned slice has the
	// same length; position i is the new state of the member that held
	// states[i]. Every step must be a D-step (checked by monitors).
	GroupStep(states []T, rng *rand.Rand) []T
	// PairStep is the two-agent refinement of R used by the asynchronous
	// runtime. It must also be a D-step on the two-element multiset.
	PairStep(a, b T, rng *rand.Rand) (T, T)
	// Equal reports whether two multisets of agent states should be
	// considered the same for convergence and conservation checking —
	// exact for discrete problems, tolerance-based for geometry.
	Equal(a, b ms.Multiset[T]) bool
	// Requirement is the environment assumption the paper identifies for
	// this problem.
	Requirement() Requirement
}

// Target computes the goal state S* = f(S(0)) for a problem instance.
func Target[T any](p Problem[T], initial ms.Multiset[T]) ms.Multiset[T] {
	return p.F().Apply(initial)
}

// --- The relation D (§3.6) ---

// StepVerdict reports whether a transition is a valid D-step and why not
// when it is not.
type StepVerdict struct {
	OK bool
	// Stutter is true when the step left the state unchanged.
	Stutter bool
	// ConservesF is true when f(before) = f(after).
	ConservesF bool
	// DecreasesH is true when h(after) < h(before) (strictly).
	DecreasesH bool
	// DeltaH is h(after) − h(before).
	DeltaH float64
}

// String renders the verdict.
func (v StepVerdict) String() string {
	if v.OK {
		if v.Stutter {
			return "D-step (stutter)"
		}
		return fmt.Sprintf("D-step (Δh=%g)", v.DeltaH)
	}
	return fmt.Sprintf("NOT a D-step (conservesF=%v decreasesH=%v Δh=%g)",
		v.ConservesF, v.DecreasesH, v.DeltaH)
}

// CheckDStep decides whether the transition before → after is a step of
// the relation D: either a stutter, or an f-conserving strict h-decrease.
// Equality of multisets is judged by eq (problem-specific, tolerance-aware
// for geometry); hEps is the slack below which an h decrease does not count
// as strict (0 for exact integer variants).
func CheckDStep[T any](f Function[T], h Variant[T], eq func(a, b ms.Multiset[T]) bool,
	before, after ms.Multiset[T], hEps float64) StepVerdict {
	if eq(before, after) {
		return StepVerdict{OK: true, Stutter: true, ConservesF: true}
	}
	fb, fa := f.Apply(before), f.Apply(after)
	hb, haf := h.Value(before), h.Value(after)
	v := StepVerdict{
		ConservesF: eq(fb, fa),
		DecreasesH: haf < hb-hEps,
		DeltaH:     haf - hb,
	}
	v.OK = v.ConservesF && v.DecreasesH
	return v
}

// --- Checkers for the structural conditions of §3.4 ---

// Gen draws a random multiset (for randomized property checking).
type Gen[T any] func(rng *rand.Rand) ms.Multiset[T]

// ElemGen draws a random element.
type ElemGen[T any] func(rng *rand.Rand) T

// IdempotenceViolation is a counterexample to f(f(X)) = f(X).
type IdempotenceViolation[T any] struct {
	X, FX, FFX ms.Multiset[T]
}

// Error renders the counterexample.
func (v *IdempotenceViolation[T]) Error() string {
	return fmt.Sprintf("not idempotent: X=%v f(X)=%v f(f(X))=%v", v.X, v.FX, v.FFX)
}

// CheckIdempotent draws trials multisets from gen and checks
// f(f(X)) = f(X) for each. It returns nil when no counterexample is found,
// or the first counterexample. eq judges multiset equality.
func CheckIdempotent[T any](f Function[T], eq func(a, b ms.Multiset[T]) bool,
	gen Gen[T], trials int, rng *rand.Rand) *IdempotenceViolation[T] {
	for i := 0; i < trials; i++ {
		x := gen(rng)
		fx := f.Apply(x)
		ffx := f.Apply(fx)
		if !eq(fx, ffx) {
			return &IdempotenceViolation[T]{X: x, FX: fx, FFX: ffx}
		}
	}
	return nil
}

// SuperIdempotenceViolation is a counterexample to f(X ∪ Y) = f(f(X) ∪ Y).
type SuperIdempotenceViolation[T any] struct {
	X, Y      ms.Multiset[T]
	Direct    ms.Multiset[T] // f(X ∪ Y)
	ViaLocalF ms.Multiset[T] // f(f(X) ∪ Y)
}

// Error renders the counterexample in the notation of §3.4.
func (v *SuperIdempotenceViolation[T]) Error() string {
	return fmt.Sprintf("not super-idempotent: X=%v Y=%v f(X∪Y)=%v f(f(X)∪Y)=%v",
		v.X, v.Y, v.Direct, v.ViaLocalF)
}

// CheckSuperIdempotent draws trials pairs (X, Y) and checks the defining
// equation of §3.4: f(X ∪ Y) = f(f(X) ∪ Y). Returns nil or the first
// counterexample found.
func CheckSuperIdempotent[T any](f Function[T], eq func(a, b ms.Multiset[T]) bool,
	genX, genY Gen[T], trials int, rng *rand.Rand) *SuperIdempotenceViolation[T] {
	for i := 0; i < trials; i++ {
		x, y := genX(rng), genY(rng)
		direct := f.Apply(x.Union(y))
		via := f.Apply(f.Apply(x).Union(y))
		if !eq(direct, via) {
			return &SuperIdempotenceViolation[T]{X: x, Y: y, Direct: direct, ViaLocalF: via}
		}
	}
	return nil
}

// CheckSuperIdempotentSingleton checks the simpler criterion of the
// paper's equation (6): f is super-idempotent iff it is idempotent and
// f(X ∪ {v}) = f(f(X) ∪ {v}) for every multiset X and single value v.
func CheckSuperIdempotentSingleton[T any](f Function[T], eq func(a, b ms.Multiset[T]) bool,
	genX Gen[T], genV ElemGen[T], cmp ms.Cmp[T], trials int, rng *rand.Rand) *SuperIdempotenceViolation[T] {
	genY := func(r *rand.Rand) ms.Multiset[T] { return ms.New(cmp, genV(r)) }
	return CheckSuperIdempotent(f, eq, genX, genY, trials, rng)
}

// EnumMultisets enumerates every multiset over the given finite domain with
// cardinality between minSize and maxSize (inclusive), invoking visit for
// each; visit returning false stops the enumeration early. Enumeration is
// combinations-with-repetition over domain indices, so each multiset is
// produced exactly once.
func EnumMultisets[T any](domain []T, cmp ms.Cmp[T], minSize, maxSize int,
	visit func(ms.Multiset[T]) bool) {
	var rec func(start int, picked []T) bool
	rec = func(start int, picked []T) bool {
		if len(picked) >= minSize {
			if !visit(ms.New(cmp, picked...)) {
				return false
			}
		}
		if len(picked) == maxSize {
			return true
		}
		for i := start; i < len(domain); i++ {
			picked = append(picked, domain[i])
			if !rec(i, picked) {
				return false
			}
			picked = picked[:len(picked)-1]
		}
		return true
	}
	rec(0, make([]T, 0, maxSize))
}

// ExhaustiveSuperIdempotent verifies the singleton criterion (6)
// exhaustively: for every multiset X over domain with |X| ≤ maxSize and
// every v ∈ domain, f(X ∪ {v}) = f(f(X) ∪ {v}); idempotence of f is checked
// on the same universe. It returns nil or the first counterexample.
// Exhaustive checking over a finite sub-domain cannot prove
// super-idempotence over an infinite domain, but it does *refute* it
// conclusively — which is how the paper's negative results (second
// smallest, circumscribing circle) are reproduced as machine facts.
func ExhaustiveSuperIdempotent[T any](f Function[T], eq func(a, b ms.Multiset[T]) bool,
	domain []T, cmp ms.Cmp[T], maxSize int) *SuperIdempotenceViolation[T] {
	var found *SuperIdempotenceViolation[T]
	EnumMultisets(domain, cmp, 1, maxSize, func(x ms.Multiset[T]) bool {
		fx := f.Apply(x)
		if !eq(fx, f.Apply(fx)) {
			found = &SuperIdempotenceViolation[T]{
				X: x, Y: ms.New(cmp), Direct: fx, ViaLocalF: f.Apply(fx),
			}
			return false
		}
		for _, v := range domain {
			direct := f.Apply(x.Add(v))
			via := f.Apply(fx.Add(v))
			if !eq(direct, via) {
				found = &SuperIdempotenceViolation[T]{
					X: x, Y: ms.New(cmp, v), Direct: direct, ViaLocalF: via,
				}
				return false
			}
		}
		return true
	})
	return found
}

// --- Local-to-global checkers ((7) and (10)) ---

// L2GViolation is a counterexample to the local-to-global property (10):
// two disjoint groups each take a D-step, but the union transition is not
// a D-step.
type L2GViolation[T any] struct {
	// Group B's transition.
	B, BAfter ms.Multiset[T]
	// Group C's transition.
	C, CAfter ms.Multiset[T]
	// h on the union before and after.
	HBefore, HAfter float64
	// ConservedF reports whether f was conserved on the union (it always
	// is when f is super-idempotent; false indicates an f-level failure).
	ConservedF bool
}

// Error renders the counterexample.
func (v *L2GViolation[T]) Error() string {
	return fmt.Sprintf("local-to-global violated: B %v→%v, C %v→%v, h(union) %g→%g, f conserved: %v",
		v.B, v.BAfter, v.C, v.CAfter, v.HBefore, v.HAfter, v.ConservedF)
}

// StepGen produces a random valid local D-step for a group: a (before,
// after) pair with f conserved and h strictly decreased, or before==after
// when the group cannot move. It is supplied by each problem's tests.
type StepGen[T any] func(rng *rand.Rand) (before, after ms.Multiset[T])

// CheckLocalToGlobal draws trials pairs of independent group steps from
// genB and genC and verifies (10): if both local transitions are D-steps,
// the union transition is a D-step. hEps as in CheckDStep. It returns nil
// or the first counterexample — for the paper's Fig. 1 variant the
// counterexample comes out in a handful of trials.
func CheckLocalToGlobal[T any](f Function[T], h Variant[T],
	eq func(a, b ms.Multiset[T]) bool, genB, genC StepGen[T],
	trials int, hEps float64, rng *rand.Rand) *L2GViolation[T] {
	for i := 0; i < trials; i++ {
		b0, b1 := genB(rng)
		c0, c1 := genC(rng)
		// Both local steps must be D-steps; skip malformed draws.
		if !CheckDStep(f, h, eq, b0, b1, hEps).OK || !CheckDStep(f, h, eq, c0, c1, hEps).OK {
			continue
		}
		// Skip double stutters: the union is trivially a stutter.
		if eq(b0, b1) && eq(c0, c1) {
			continue
		}
		u0, u1 := b0.Union(c0), b1.Union(c1)
		verdict := CheckDStep(f, h, eq, u0, u1, hEps)
		if !verdict.OK {
			return &L2GViolation[T]{
				B: b0, BAfter: b1, C: c0, CAfter: c1,
				HBefore: h.Value(u0), HAfter: h.Value(u1),
				ConservedF: verdict.ConservesF,
			}
		}
	}
	return nil
}

// CheckVariantContextMonotone checks the sufficient condition of the §3.5
// theorem for h: for f-conserving transitions X → X' with h(X') < h(X),
// adding any single element v preserves the strict decrease:
// h(X' ∪ {v}) < h(X ∪ {v}). Summation-form variants satisfy it trivially;
// the Fig. 1 out-of-order-pairs variant does not.
func CheckVariantContextMonotone[T any](h Variant[T], gen StepGen[T],
	genV ElemGen[T], cmp ms.Cmp[T], trials int, hEps float64, rng *rand.Rand) *L2GViolation[T] {
	for i := 0; i < trials; i++ {
		x0, x1 := gen(rng)
		if !(h.Value(x1) < h.Value(x0)-hEps) {
			continue // not a proper improvement; skip
		}
		v := genV(rng)
		u0, u1 := x0.Add(v), x1.Add(v)
		if !(h.Value(u1) < h.Value(u0)-hEps) {
			return &L2GViolation[T]{
				B: x0, BAfter: x1,
				C: ms.New(cmp, v), CAfter: ms.New(cmp, v),
				HBefore: h.Value(u0), HAfter: h.Value(u1),
				ConservedF: true,
			}
		}
	}
	return nil
}

// ExactEqual returns the default multiset-equality predicate (the
// comparison function decides identity). Geometry problems substitute a
// tolerance-aware predicate.
func ExactEqual[T any]() func(a, b ms.Multiset[T]) bool {
	return func(a, b ms.Multiset[T]) bool { return a.Equal(b) }
}
