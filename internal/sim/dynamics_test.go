package sim

import (
	"fmt"
	goruntime "runtime"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/problems"
)

// TestEngineEquivalenceGoldenEmptyDynamics re-runs the entire golden
// matrix with an EMPTY dynamics schedule attached. An empty schedule
// exercises the applier plumbing (per-round Begin/EndRound, the frozen
// check over an empty list) but fires no events, so every cell must
// stay bit-identical to the nil-Dynamics goldens — together with the
// plain golden tests (which run with Dynamics == nil) this pins the
// satellite contract that the dynamics hook is invisible until a
// schedule actually does something.
func TestEngineEquivalenceGoldenEmptyDynamics(t *testing.T) {
	runGoldenCases(t, func(o *Options) { o.Dynamics = dynamics.NewSchedule() })
}

// dynamicsOpts is the dynamics-heavy configuration the determinism
// matrix reuses: random crashes, a partition cycle, and a churn burst
// all at once, over a pairwise run with the partitioned matcher.
func dynamicsSchedule() *dynamics.Schedule {
	return dynamics.NewSchedule(
		dynamics.RandomCrashes(0.03, 6),
		dynamics.PartitionCycle(2, 8, 5),
		dynamics.Burst(0.3, 3, 25),
		dynamics.Every(10, dynamics.CrashRandom(1)),
	)
}

// TestDynamicsDeterministicAcrossLayouts is the engine half of the
// determinism satellite: a dynamics-laden run must produce bit-identical
// results for every state layout (Shards ∈ {−1, 1, 4}), forced
// parallelism, and matcher partition — the dynamics substreams are
// functions of (seed, round) only, so nothing the layout changes can
// reach them.
func TestDynamicsDeterministicAcrossLayouts(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)

	for _, mode := range []Mode{ComponentMode, PairwiseMode} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			base := Options{
				Seed: 5, Mode: mode, StopOnConverged: true, MaxRounds: 60_000,
				CheckSteps: true, Dynamics: dynamicsSchedule(),
			}
			run := func(o Options) string {
				g := graph.Ring(48)
				vals := make([]int, 48)
				for i := range vals {
					vals[i] = (i*37 + 11) % 192
				}
				res, err := Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.8), vals, o)
				if err != nil {
					t.Fatal(err)
				}
				s, err := summarize(res, nil)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("%s dyn=%+v", s, *res.Dynamics)
			}
			want := run(base)
			for _, tweak := range []func(*Options){
				func(o *Options) { o.Shards = 1 },
				func(o *Options) { o.Shards = 4 },
				func(o *Options) { o.Shards = -1 },
				func(o *Options) { o.ParallelThreshold = 1; o.Shards = 3 },
				func(o *Options) { o.MatchBlocks = 0 },
			} {
				o := base
				tweak(&o)
				if got := run(o); got != want {
					t.Fatalf("layout variant diverged\n got: %s\nwant: %s", got, want)
				}
			}
			if len(want) == 0 {
				t.Fatal("empty summary")
			}
		})
	}
}

// TestDynamicsCrashGatesConvergence: crash the unique minimum-holder
// before it can gossip and the system cannot converge until the agent
// recovers — the crashed agent's value is frozen inside it. This is the
// dynamism story of the paper made into an assertion: correctness
// (conservation, zero violations) never wavers while progress stalls
// exactly as long as the fault persists.
func TestDynamicsCrashGatesConvergence(t *testing.T) {
	g := graph.Ring(12)
	vals := make([]int, 12)
	for i := range vals {
		vals[i] = 50 + i
	}
	vals[7] = 1 // unique global minimum at agent 7
	const wake = 40
	res, err := Run[int](problems.NewMin(), env.NewStatic(g), vals, Options{
		Seed: 3, StopOnConverged: true, CheckSteps: true, MaxRounds: 10_000,
		Dynamics: dynamics.NewSchedule(
			dynamics.At(0, dynamics.CrashAgents(7)),
			dynamics.At(wake, dynamics.RecoverAgents(7)),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.Converged {
		t.Fatal("did not converge after recovery")
	}
	if res.Round <= wake {
		t.Fatalf("converged at round %d, before the minimum-holder woke at %d", res.Round, wake)
	}
	if res.Dynamics == nil || res.Dynamics.Crashes != 1 || res.Dynamics.Recoveries != 1 {
		t.Fatalf("dynamics report = %+v, want 1 crash / 1 recovery", res.Dynamics)
	}
	if res.Dynamics.FrozenAgentRounds != wake {
		t.Fatalf("FrozenAgentRounds = %d, want %d", res.Dynamics.FrozenAgentRounds, wake)
	}
}

// TestDynamicsPartitionReconvergence: a partition window that separates
// the minimum from half the ring delays convergence until the heal; the
// report's heal round makes rounds-to-reconverge measurable.
func TestDynamicsPartitionReconvergence(t *testing.T) {
	g := graph.Ring(16)
	vals := make([]int, 16)
	for i := range vals {
		vals[i] = 100 + i
	}
	vals[2] = 1 // minimum lives in block 0 of the 2-way contiguous split
	const heal = 30
	res, err := Run[int](problems.NewMin(), env.NewStatic(g), vals, Options{
		Seed: 9, StopOnConverged: true, CheckSteps: true, MaxRounds: 10_000,
		Dynamics: dynamics.NewSchedule(dynamics.Partition(2, 0, heal)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.Converged {
		t.Fatal("did not reconverge after heal")
	}
	if res.Round <= heal {
		t.Fatalf("converged at round %d, inside the partition window [0, %d)", res.Round, heal)
	}
	rep := res.Dynamics
	if rep.Heals != 1 || rep.LastHealRound != heal {
		t.Fatalf("report %+v, want 1 heal at round %d", rep, heal)
	}
	if reconv := res.Round - rep.LastHealRound; reconv <= 0 || reconv > 100 {
		t.Fatalf("rounds-to-reconverge = %d, want a small positive count", reconv)
	}
}

// TestDynamicsWarmReuseMatchesCold: runs with dynamics through a shared
// Scratch (the sweep path) must equal independent cold runs — the
// applier's Reset restores a fresh-applier state.
func TestDynamicsWarmReuseMatchesCold(t *testing.T) {
	g := graph.Complete(16)
	vals := make([]int, 16)
	for i := range vals {
		vals[i] = (i*29 + 5) % 64
	}
	opts := func(seed int64) Options {
		return Options{
			Seed: seed, Mode: PairwiseMode, StopOnConverged: true,
			MaxRounds: 60_000, Dynamics: dynamicsSchedule(),
		}
	}
	rc := engine.NewRunContext(0)
	defer rc.Close()
	sc := NewScratch[int](rc)
	for seed := int64(1); seed <= 4; seed++ {
		warm, err := RunWith(sc, problems.NewMin(), env.NewEdgeChurn(g, 0.9), vals, opts(seed))
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.9), vals, opts(seed))
		if err != nil {
			t.Fatal(err)
		}
		ws, _ := summarize(warm, nil)
		cs, _ := summarize(cold, nil)
		if ws != cs || *warm.Dynamics != *cold.Dynamics {
			t.Fatalf("seed %d: warm run diverged from cold\nwarm: %s %+v\ncold: %s %+v",
				seed, ws, *warm.Dynamics, cs, *cold.Dynamics)
		}
	}
}
