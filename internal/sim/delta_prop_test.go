package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/problems"
)

// deltaBlind hides an environment's StepDeltas method: the embedded
// interface exposes only env.Environment, so the runner's delta type
// assertion fails and every round takes the from-scratch path — full
// usability rescan in the matcher, full probe scan, fresh component
// partition. The delta machinery must be invisible in results, so a run
// through the blind wrapper is the reference a delta run is pinned to.
type deltaBlind struct{ env.Environment }

// TestDeltaStreamMatchesDeltaBlind is the end-to-end half of the delta
// contract (the matcher-level half is internal/engine's
// TestUsableIndexIncrementalMatchesRebuild): complete runs through the
// incremental path — env flip lists plus the dynamics Applier's overlay
// logs feeding matcher.Update, probe.ObserveDelta, and the quiescent
// component memo — must be bit-identical to the same runs with the delta
// stream hidden, across environment kind × dynamics schedule
// (partition/heal, crash/recover, burst) × mode × MatchBlocks.
func TestDeltaStreamMatchesDeltaBlind(t *testing.T) {
	mkEnv := map[string]func(g *graph.Graph) env.Environment{
		"churn0.6": func(g *graph.Graph) env.Environment { return env.NewEdgeChurn(g, 0.6) },
		"markov":   func(g *graph.Graph) env.Environment { return env.NewMarkovLinks(g, 0.15, 0.35) },
	}
	mkDyn := map[string]func() *dynamics.Schedule{
		"nodyn": func() *dynamics.Schedule { return nil },
		"faults": func() *dynamics.Schedule {
			return dynamics.NewSchedule(
				dynamics.PartitionCycle(2, 9, 4),
				dynamics.RandomCrashes(0.08, 5),
				dynamics.Burst(0.5, 30, 45),
			)
		},
	}
	for topoName, g := range map[string]*graph.Graph{"complete18": graph.Complete(18), "torus6x6": graph.Torus(6, 6)} {
		for envName, mk := range mkEnv {
			for dynName, mkd := range mkDyn {
				for _, mode := range []Mode{ComponentMode, PairwiseMode} {
					for _, blocks := range []int{0, 1, 3} {
						if mode == ComponentMode && blocks != 0 {
							continue // MatchBlocks is pairwise-only
						}
						name := fmt.Sprintf("%s/%s/%s/%v/blocks=%d", topoName, envName, dynName, mode, blocks)
						t.Run(name, func(t *testing.T) {
							vals := make([]int, g.N())
							rng := rand.New(rand.NewSource(17))
							for i := range vals {
								vals[i] = rng.Intn(5 * g.N())
							}
							opts := Options{
								Seed: 7, Mode: mode, MatchBlocks: blocks,
								MaxRounds: 400, CheckSteps: true, RecordH: true,
								Dynamics: mkd(),
							}
							run := func(e env.Environment) string {
								s, err := summarize(Run[int](problems.NewMin(), e, vals, opts))
								if err != nil {
									t.Fatal(err)
								}
								return s
							}
							got := run(mk(g))
							want := run(deltaBlind{mk(g)})
							if got != want {
								t.Errorf("delta path diverged from delta-blind run\n got: %s\nwant: %s", got, want)
							}
						})
					}
				}
			}
		}
	}
}
