package sim

import (
	"testing"

	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/problems"
)

// TestMillionAgentPairwiseSmoke drives a handful of pairwise rounds on a
// 10⁶-agent ring at 99.9% availability — the regime the usable-edge
// delta index targets. It is a liveness/scale smoke, not a convergence
// test (a 10⁶-ring needs ~N rounds to converge): the system must build,
// step, match, and observe at that size in seconds, with the delta path
// engaged (EdgeChurn reports exact flip lists, so each round's index
// maintenance is O(changes), not O(E)). Skipped under -short.
func TestMillionAgentPairwiseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁶-agent smoke cell skipped in -short mode")
	}
	g := graph.Ring(1_000_000)
	vals := make([]int, g.N())
	for i := range vals {
		vals[i] = (i*2654435761 + 12345) % (4 * g.N())
	}
	res, err := Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.999), vals,
		Options{Seed: 1, MaxRounds: 6, Mode: PairwiseMode, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", res.Rounds)
	}
	if res.Messages == 0 || res.GroupSteps == 0 {
		t.Fatalf("no work done: steps=%d msgs=%d", res.GroupSteps, res.Messages)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}
