package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
	ms "repro/internal/multiset"
	"repro/internal/problems"
)

// fingerprint flattens everything observable about a Result into one
// string, so warm-scratch runs can be compared bit for bit against
// single-use runs.
func fingerprint(res *Result[int]) string {
	return fmt.Sprintf("conv=%v round=%d rounds=%d steps=%d msgs=%d viol=%v final=%v target=%s",
		res.Converged, res.Round, res.Rounds, res.GroupSteps, res.Messages,
		res.Violations, res.Final, res.Target.String())
}

// TestRunWithScratchReuseBitIdentical drives one Scratch through a
// heterogeneous sequence of runs — different problems, environments,
// graph sizes, modes, and state layouts — and requires every result to
// match an independent single-use Run bit for bit. This is the warm-
// engine contract the scenario-sweep runner depends on: nothing
// observable may leak from one run into the next through the reused
// trackers, matchers, monitor, seeder, or arenas.
func TestRunWithScratchReuseBitIdentical(t *testing.T) {
	rc := engine.NewRunContext(0)
	defer rc.Close()
	sc := NewScratch[int](rc)

	mkVals := func(n int, seed int64) []int {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = int((int64(i)*seed*2654435761 + seed) % int64(4*n))
			if vals[i] < 0 {
				vals[i] = -vals[i]
			}
		}
		return vals
	}

	type spec struct {
		name    string
		p       core.Problem[int]
		e       func() env.Environment
		initial []int
		opts    Options
	}
	ring32 := graph.Ring(32)
	ring64 := graph.Ring(64)
	k16 := graph.Complete(16)
	specs := []spec{
		{"min/ring32/component", problems.NewMin(),
			func() env.Environment { return env.NewEdgeChurn(ring32, 0.6) },
			mkVals(32, 3), Options{Seed: 3, StopOnConverged: true, MaxRounds: 60_000}},
		{"min/ring64/sharded", problems.NewMin(),
			func() env.Environment { return env.NewEdgeChurn(ring64, 0.7) },
			mkVals(64, 5), Options{Seed: 5, StopOnConverged: true, MaxRounds: 60_000, Shards: 4, ParallelThreshold: 1}},
		{"sum/k16/pairwise", problems.NewSum(),
			func() env.Environment { return env.NewEdgeChurn(k16, 0.8) },
			mkVals(16, 7), Options{Seed: 7, StopOnConverged: true, MaxRounds: 60_000, Mode: PairwiseMode, MatchBlocks: 2}},
		{"gcd/ring32/component", problems.NewGCD(),
			func() env.Environment { return env.NewEdgeChurn(ring32, 0.5) },
			func() []int {
				v := mkVals(32, 9)
				for i := range v {
					v[i] = (v[i] + 1) * 6
				}
				return v
			}(), Options{Seed: 9, StopOnConverged: true, MaxRounds: 60_000}},
		// Revisit the first shape so buffers sized by a LARGER run are
		// re-entered by a smaller one.
		{"min/ring32/component/revisit", problems.NewMin(),
			func() env.Environment { return env.NewEdgeChurn(ring32, 0.6) },
			mkVals(32, 11), Options{Seed: 11, StopOnConverged: true, MaxRounds: 60_000}},
		// Pairwise min on the ring the component runs used: the matcher
		// cache must key on (graph, blocks), not just last use.
		{"min/ring32/pairwise", problems.NewMin(),
			func() env.Environment { return env.NewEdgeChurn(ring32, 0.9) },
			mkVals(32, 13), Options{Seed: 13, StopOnConverged: true, MaxRounds: 60_000, Mode: PairwiseMode}},
	}

	for _, s := range specs {
		warm, err := RunWith[int](sc, s.p, s.e(), s.initial, s.opts)
		if err != nil {
			t.Fatalf("%s: warm: %v", s.name, err)
		}
		cold, err := Run[int](s.p, s.e(), s.initial, s.opts)
		if err != nil {
			t.Fatalf("%s: cold: %v", s.name, err)
		}
		if got, want := fingerprint(warm), fingerprint(cold); got != want {
			t.Errorf("%s: warm-scratch result diverged from single-use Run\nwarm: %s\ncold: %s", s.name, got, want)
		}
		if !warm.Converged {
			t.Errorf("%s: did not converge", s.name)
		}
	}
}

// TestRunWithResultsDoNotAliasScratch pins the ownership contract: a
// Result returned by RunWith must stay intact after the Scratch executes
// another run (Final, Target, and Violations are caller-owned copies).
func TestRunWithResultsDoNotAliasScratch(t *testing.T) {
	rc := engine.NewRunContext(0)
	defer rc.Close()
	sc := NewScratch[int](rc)

	g := graph.Ring(16)
	vals1 := []int{9, 4, 7, 1, 8, 2, 6, 5, 15, 11, 3, 14, 10, 13, 12, 16}
	res1, err := RunWith[int](sc, problems.NewMin(), env.NewEdgeChurn(g, 0.7), vals1,
		Options{Seed: 1, StopOnConverged: true, MaxRounds: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	fp1 := fingerprint(res1)
	finalCopy := append([]int(nil), res1.Final...)
	targetCopy := res1.Target.String()

	// A different run overwrites every scratch buffer.
	vals2 := []int{31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 2}
	if _, err := RunWith[int](sc, problems.NewSum(), env.NewEdgeChurn(graph.Complete(16), 0.9), vals2,
		Options{Seed: 2, StopOnConverged: true, MaxRounds: 60_000, Mode: PairwiseMode}); err != nil {
		t.Fatal(err)
	}

	if got := fingerprint(res1); got != fp1 {
		t.Errorf("first result mutated by later run:\nbefore: %s\nafter:  %s", fp1, got)
	}
	if !ms.OfInts(res1.Final...).Equal(ms.OfInts(finalCopy...)) {
		t.Error("Final aliased scratch state")
	}
	if res1.Target.String() != targetCopy {
		t.Error("Target aliased scratch state")
	}
}
