package sim

import (
	"fmt"
	"os"
	goruntime "runtime"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/problems"
)

// Membership golden tests: join-laden and amnesiac-rejoin runs pinned
// bit for bit, then replayed across every engine layout (forced worker
// pool, sharded state for P ∈ {−1, 1, 4, GOMAXPROCS}, sharded+pooled).
// Each case constructs a FRESH graph per run — growth mutates the run's
// graph in place, so sharing one instance across golden variants would
// leak topology between runs.
//
// Regenerate (only on an INTENTIONAL behavior change) with:
//
//	SIM_JOIN_GOLDEN_REGEN=1 go test ./internal/sim -run TestMembershipGolden -v

// amnesiacFlap is the schedule the §3.4 classification cases share: k
// random agents crash at round from, and at round to ALL crashed agents
// rejoin with their INITIAL states.
func amnesiacFlap(k, from, to int) *dynamics.Schedule {
	return dynamics.NewSchedule(
		dynamics.At(from, dynamics.CrashRandom(k)),
		dynamics.At(to, dynamics.RecoverAll()),
		dynamics.AmnesiacRejoin(),
	)
}

// summarizeDyn extends the shared run summary with the dynamics report,
// so the goldens pin Joins/Crashes/AmnesiacResets counts too — a golden
// whose schedule silently never fires cannot pass as a real one.
func summarizeDyn(res *Result[int], err error) (string, error) {
	s, err := summarize(res, err)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s dyn=%+v", s, *res.Dynamics), nil
}

func joinGoldenCases() []goldenCase {
	intVals := func(n int, seed int64) []int {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = int((int64(i+1)*2654435761 + seed*97) % int64(4*n))
		}
		return vals
	}
	return []goldenCase{
		{"min/ring12+join4ring/churn0.8", func(seed int64, tweak func(*Options)) (string, error) {
			// Ring splice: 12 founding agents, 4 join at round 6 — the run
			// must reconverge to the 16-agent minimum.
			sched := dynamics.NewSchedule(dynamics.Join(4, "ring", 6))
			return summarizeDyn(Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(12), 0.8),
				intVals(16, 3), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, MaxRounds: 10_000, Dynamics: sched}, tweak)))
		}},
		{"min/complete10+join3pref/pairwise", func(seed int64, tweak func(*Options)) (string, error) {
			// Preferential attachment under the partitioned pairwise
			// matcher: the matcher's buckets grow mid-run. Min, not sum —
			// §4.2 gives sum's pairwise gossip a complete-graph
			// requirement, and preferential attachment is not complete.
			sched := dynamics.NewSchedule(dynamics.Join(3, "pref", 4))
			return summarizeDyn(Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Complete(10), 0.7),
				intVals(13, 11), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, Mode: PairwiseMode, MaxRounds: 10_000, Dynamics: sched}, tweak)))
		}},
		{"gcd/hypercube8+join8cube/static", func(seed int64, tweak func(*Options)) (string, error) {
			// Hypercube dimension fill: 8 joiners complete Hypercube(4).
			sched := dynamics.NewSchedule(dynamics.Join(8, "hypercube", 3))
			vals := intVals(16, 13)
			for i := range vals {
				vals[i] = (vals[i] + 1) * 6
			}
			return summarizeDyn(Run[int](problems.NewGCD(), env.NewStatic(graph.Hypercube(3)),
				vals, tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, MaxRounds: 10_000, Dynamics: sched}, tweak)))
		}},
		{"min/ring16+join2ring+amnesiacflap/churn0.9", func(seed int64, tweak func(*Options)) (string, error) {
			// Joins AND amnesiac rejoins in one run: agents crash at round
			// 2, re-enter amnesiac at 4, and 2 agents join at 6 — min is
			// super-idempotent, so conservation must survive all of it
			// with viol=0. The recovery sits BEFORE the last join round on
			// purpose: pending joins keep the run alive even once
			// converged, so every event is guaranteed to fire.
			sched := dynamics.NewSchedule(
				dynamics.At(2, dynamics.CrashRandom(3)),
				dynamics.At(4, dynamics.RecoverAll()),
				dynamics.Join(2, "ring", 6),
				dynamics.AmnesiacRejoin(),
			)
			return summarizeDyn(Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(16), 0.9),
				intVals(18, 7), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, MaxRounds: 10_000, Dynamics: sched}, tweak)))
		}},
		{"min/ring12/amnesiacflap/pairwise", func(seed int64, tweak func(*Options)) (string, error) {
			// §3.4 positive case: min is insensitive to re-introduced
			// initial values, so amnesiac re-entry preserves the
			// conservation law — viol=0 is pinned. Pairwise on a ring:
			// convergence is slow enough (O(n) rounds) that the flap at
			// rounds 2–7 fires mid-run instead of after an immediate
			// component-mode convergence.
			return summarizeDyn(Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(12), 0.8),
				intVals(12, 5), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, Mode: PairwiseMode, MaxRounds: 10_000, Dynamics: amnesiacFlap(3, 2, 7)}, tweak)))
		}},
		{"sum/complete12/amnesiacflap-violations", func(seed int64, tweak func(*Options)) (string, error) {
			// §3.4 negative case: sum is NOT insensitive to re-introduced
			// values — an amnesiac reset duplicates or destroys absorbed
			// mass, and the monitor must DETECT it (viol > 0 is pinned).
			// MaxRounds is small because the run can never reach its (now
			// unreachable) target.
			return summarizeDyn(Run[int](problems.NewSum(), env.NewEdgeChurn(graph.Complete(12), 0.8),
				intVals(12, 9), tweaked(Options{Seed: seed, StopOnConverged: true, Mode: PairwiseMode, MaxRounds: 60, Dynamics: amnesiacFlap(3, 2, 7)}, tweak)))
		}},
		{"min/ring24+join4ring/pairwise-blocks3", func(seed int64, tweak func(*Options)) (string, error) {
			// Fixed MatchBlocks with a ring splice: the boundary
			// reconciliation schedule gains pairs mid-run.
			sched := dynamics.NewSchedule(dynamics.Join(4, "ring", 7))
			return summarizeDyn(Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(24), 0.7),
				intVals(28, 19), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, Mode: PairwiseMode, MatchBlocks: 3, MaxRounds: 100_000, Dynamics: sched}, tweak)))
		}},
	}
}

// joinGoldens maps "case/seed" to the pinned summary of the join-laden
// reference runs.
var joinGoldens = map[string]string{
	"min/ring12+join4ring/churn0.8/seed1": "conv=true round=9 rounds=9 steps=5 msgs=76 viol=0 final=[2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:4 AmnesiacResets:0}",
	"min/ring12+join4ring/churn0.8/seed2": "conv=true round=8 rounds=8 steps=5 msgs=100 viol=0 final=[2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:4 AmnesiacResets:0}",
	"min/ring12+join4ring/churn0.8/seed3": "conv=true round=8 rounds=8 steps=3 msgs=62 viol=0 final=[2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:4 AmnesiacResets:0}",
	"min/complete10+join3pref/pairwise/seed1": "conv=true round=6 rounds=6 steps=18 msgs=36 viol=0 final=[4 4 4 4 4 4 4 4 4 4 4 4 4] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:3 AmnesiacResets:0}",
	"min/complete10+join3pref/pairwise/seed2": "conv=true round=10 rounds=10 steps=20 msgs=40 viol=0 final=[4 4 4 4 4 4 4 4 4 4 4 4 4] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:3 AmnesiacResets:0}",
	"min/complete10+join3pref/pairwise/seed3": "conv=true round=6 rounds=6 steps=19 msgs=38 viol=0 final=[4 4 4 4 4 4 4 4 4 4 4 4 4] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:3 AmnesiacResets:0}",
	"gcd/hypercube8+join8cube/static/seed1": "conv=true round=4 rounds=4 steps=2 msgs=44 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6 6 6 6 6] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:8 AmnesiacResets:0}",
	"gcd/hypercube8+join8cube/static/seed2": "conv=true round=4 rounds=4 steps=2 msgs=44 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6 6 6 6 6] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:8 AmnesiacResets:0}",
	"gcd/hypercube8+join8cube/static/seed3": "conv=true round=4 rounds=4 steps=2 msgs=44 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6 6 6 6 6] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:8 AmnesiacResets:0}",
	"min/ring16+join2ring+amnesiacflap/churn0.9/seed1": "conv=true round=7 rounds=7 steps=3 msgs=54 viol=0 final=[9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:6 Joins:2 AmnesiacResets:3}",
	"min/ring16+join2ring+amnesiacflap/churn0.9/seed2": "conv=true round=7 rounds=7 steps=4 msgs=122 viol=0 final=[9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:6 Joins:2 AmnesiacResets:3}",
	"min/ring16+join2ring+amnesiacflap/churn0.9/seed3": "conv=true round=7 rounds=7 steps=3 msgs=92 viol=0 final=[9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9 9] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:6 Joins:2 AmnesiacResets:3}",
	"min/ring12/amnesiacflap/pairwise/seed1": "conv=true round=16 rounds=16 steps=21 msgs=42 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:15 Joins:0 AmnesiacResets:3}",
	"min/ring12/amnesiacflap/pairwise/seed2": "conv=true round=15 rounds=15 steps=20 msgs=40 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:15 Joins:0 AmnesiacResets:3}",
	"min/ring12/amnesiacflap/pairwise/seed3": "conv=true round=10 rounds=10 steps=19 msgs=38 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:15 Joins:0 AmnesiacResets:3}",
	"sum/complete12/amnesiacflap-violations/seed1": "conv=false round=60 rounds=60 steps=14 msgs=28 viol=53 final=[235 0 0 0 0 0 0 0 0 0 0 0] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:15 Joins:0 AmnesiacResets:3}",
	"sum/complete12/amnesiacflap-violations/seed2": "conv=false round=60 rounds=60 steps=12 msgs=24 viol=53 final=[169 0 0 0 0 0 0 0 0 0 0 0] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:15 Joins:0 AmnesiacResets:3}",
	"sum/complete12/amnesiacflap-violations/seed3": "conv=false round=60 rounds=60 steps=12 msgs=24 viol=53 final=[128 0 0 0 0 0 0 0 0 0 0 0] dyn={Crashes:3 Recoveries:3 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:15 Joins:0 AmnesiacResets:3}",
	"min/ring24+join4ring/pairwise-blocks3/seed1": "conv=true round=23 rounds=23 steps=67 msgs=134 viol=0 final=[5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:4 AmnesiacResets:0}",
	"min/ring24+join4ring/pairwise-blocks3/seed2": "conv=true round=45 rounds=45 steps=73 msgs=146 viol=0 final=[5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:4 AmnesiacResets:0}",
	"min/ring24+join4ring/pairwise-blocks3/seed3": "conv=true round=29 rounds=29 steps=68 msgs=136 viol=0 final=[5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5] dyn={Crashes:0 Recoveries:0 Heals:0 LastHealRound:-1 MaskedEdgeRounds:0 FrozenAgentRounds:0 Joins:4 AmnesiacResets:0}",
}

func runJoinGoldenCases(t *testing.T, tweak func(*Options)) {
	t.Helper()
	for _, c := range joinGoldenCases() {
		for _, s := range []int64{1, 2, 3} {
			key := fmt.Sprintf("%s/seed%d", c.name, s)
			t.Run(key, func(t *testing.T) {
				got, err := c.run(s, tweak)
				if err != nil {
					t.Fatal(err)
				}
				want, ok := joinGoldens[key]
				if !ok {
					t.Fatalf("no golden recorded for %s; run with SIM_JOIN_GOLDEN_REGEN=1", key)
				}
				if got != want {
					t.Errorf("join-laden run diverged\n got: %s\nwant: %s", got, want)
				}
			})
		}
	}
}

func TestMembershipGolden(t *testing.T) {
	if os.Getenv("SIM_JOIN_GOLDEN_REGEN") != "" {
		fmt.Println("var joinGoldens = map[string]string{")
		for _, c := range joinGoldenCases() {
			for _, s := range []int64{1, 2, 3} {
				got, err := c.run(s, nil)
				if err != nil {
					t.Fatalf("%s/seed%d: %v", c.name, s, err)
				}
				fmt.Printf("\t%q: %q,\n", fmt.Sprintf("%s/seed%d", c.name, s), got)
			}
		}
		fmt.Println("}")
		return
	}
	runJoinGoldenCases(t, nil)
}

// TestMembershipGoldenParallel forces the worker pool on: join rounds
// and amnesiac resets must be invisible to scheduling.
func TestMembershipGoldenParallel(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	runJoinGoldenCases(t, func(o *Options) { o.ParallelThreshold = 1 })
}

// TestMembershipGoldenSharded replays the join matrix under the sharded
// state layout for P ∈ {−1, 1, 4, GOMAXPROCS}: joiners append to the
// last shard without rebalancing, so the layout stays unobservable.
func TestMembershipGoldenSharded(t *testing.T) {
	for _, p := range []int{-1, 1, 4, goruntime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("shards=%d", p), func(t *testing.T) {
			runJoinGoldenCases(t, func(o *Options) { o.Shards = p })
		})
	}
}

// TestMembershipGoldenShardedParallel: sharding and pooling together,
// with a shard count that divides none of the case populations.
func TestMembershipGoldenShardedParallel(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	runJoinGoldenCases(t, func(o *Options) {
		o.Shards = 3
		o.ParallelThreshold = 1
	})
}

// TestEngineEquivalenceGoldenDormantMembership is the dormant-schedule
// regression: a schedule that carries the AmnesiacRejoin policy flag but
// fires no event and joins nobody must leave every pre-join golden cell
// byte-identical — the membership machinery is invisible until a rule
// actually does something.
func TestEngineEquivalenceGoldenDormantMembership(t *testing.T) {
	runGoldenCases(t, func(o *Options) { o.Dynamics = dynamics.NewSchedule(dynamics.AmnesiacRejoin()) })
}

// TestJoinRetargetsConvergence: a joiner carrying a NEW global minimum
// arrives after the founding population has converged; the run must
// re-open, absorb it, and converge to the final population's target —
// with zero violations, because min is super-idempotent (§3.4 makes
// f(f(X) ∪ Y) = f(X ∪ Y) exact, so admitting joiners against the
// reduced target is sound).
func TestJoinRetargetsConvergence(t *testing.T) {
	const joinRound = 30
	vals := make([]int, 10)
	for i := range vals {
		vals[i] = 50 + i
	}
	vals[8], vals[9] = 7, 3 // the two joiners; 3 is the new global minimum
	res, err := Run[int](problems.NewMin(), env.NewStatic(graph.Ring(8)), vals, Options{
		Seed: 11, StopOnConverged: true, CheckSteps: true, MaxRounds: 10_000,
		Dynamics: dynamics.NewSchedule(dynamics.Join(2, "ring", joinRound)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.Converged {
		t.Fatal("did not converge after the join")
	}
	if res.Round <= joinRound {
		t.Fatalf("converged at round %d, before the join at %d retargeted S*", res.Round, joinRound)
	}
	if len(res.Final) != 10 {
		t.Fatalf("final population %d, want 10", len(res.Final))
	}
	for i, v := range res.Final {
		if v != 3 {
			t.Fatalf("agent %d final state %d, want the joiner's minimum 3", i, v)
		}
	}
	if res.Dynamics == nil || res.Dynamics.Joins != 2 {
		t.Fatalf("dynamics report %+v, want Joins=2", res.Dynamics)
	}
}

// TestAmnesiacClassification is the engine-level reading of §3.4's
// classification: under identical amnesiac-rejoin faults, the functions
// insensitive to re-introduced initial values (min, max, gcd) preserve
// the conservation law — zero violations — while sum's violations are
// DETECTED. Every run asserts AmnesiacResets > 0, so a flap that fires
// after convergence cannot make the test pass vacuously.
func TestAmnesiacClassification(t *testing.T) {
	const n = 12
	intVals := func(mult int) []int {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = (i*31%97 + 1) * mult
		}
		return vals
	}
	for _, shards := range []int{-1, 3} {
		run := func(name string, r *Result[int], err error) *Result[int] {
			t.Helper()
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, name, err)
			}
			if r.Dynamics == nil || r.Dynamics.AmnesiacResets == 0 {
				t.Fatalf("shards=%d %s: no amnesiac resets fired (dyn=%+v) — the scenario is vacuous", shards, name, r.Dynamics)
			}
			return r
		}
		// Crash at round 1: gcd collapses to its target within a few
		// pairwise rounds, so a later flap would fire after convergence
		// (the AmnesiacResets assert above would catch that).
		opts := func(mode Mode, maxRounds int) Options {
			return Options{
				Seed: 21, StopOnConverged: true, MaxRounds: maxRounds,
				Shards: shards, Mode: mode,
				Dynamics: amnesiacFlap(4, 1, 6),
			}
		}
		// Pairwise on a ring for the consensus-style functions: slow
		// enough convergence that the flap fires mid-run.
		for _, tc := range []struct {
			name string
			run  func() (*Result[int], error)
		}{
			{"min", func() (*Result[int], error) {
				return Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(n), 0.8), intVals(1), opts(PairwiseMode, 400))
			}},
			{"max", func() (*Result[int], error) {
				return Run[int](problems.NewMax(4*97), env.NewEdgeChurn(graph.Ring(n), 0.8), intVals(1), opts(PairwiseMode, 400))
			}},
			{"gcd", func() (*Result[int], error) {
				return Run[int](problems.NewGCD(), env.NewEdgeChurn(graph.Ring(n), 0.8), intVals(6), opts(PairwiseMode, 400))
			}},
		} {
			res, err := tc.run()
			r := run(tc.name, res, err)
			if len(r.Violations) != 0 || !r.Converged {
				t.Errorf("shards=%d %s: viol=%d conv=%v, want super-idempotent f to survive amnesiac rejoin",
					shards, tc.name, len(r.Violations), r.Converged)
			}
		}
		// Sum's pairwise gossip requires the complete graph (§4.2); the
		// flap fires because sum cannot converge while crashed agents
		// hold unabsorbed mass.
		sumRes, sumErr := Run[int](problems.NewSum(), env.NewEdgeChurn(graph.Complete(n), 0.8), intVals(1), opts(PairwiseMode, 80))
		r := run("sum", sumRes, sumErr)
		if len(r.Violations) == 0 {
			t.Errorf("shards=%d sum: 0 violations under amnesiac rejoin — the monitor failed to detect the §3.4 violation", shards)
		}
	}
}

// TestJoinWarmReuseMatchesCold: join-laden runs through a shared Scratch
// (the sweep path) must equal independent cold runs — growth state never
// leaks between runs because each run gets a fresh graph clone.
func TestJoinWarmReuseMatchesCold(t *testing.T) {
	vals := make([]int, 20)
	for i := range vals {
		vals[i] = (i*29 + 5) % 64
	}
	sched := dynamics.NewSchedule(
		dynamics.Join(4, "ring", 3),
		dynamics.At(6, dynamics.CrashRandom(2)),
		dynamics.At(10, dynamics.RecoverAll()),
		dynamics.AmnesiacRejoin(),
	)
	opts := func(seed int64) Options {
		return Options{
			Seed: seed, Mode: PairwiseMode, StopOnConverged: true,
			MaxRounds: 60_000, Dynamics: sched,
		}
	}
	rc := engine.NewRunContext(0)
	defer rc.Close()
	sc := NewScratch[int](rc)
	for seed := int64(1); seed <= 4; seed++ {
		warm, err := RunWith(sc, problems.NewMin(), env.NewEdgeChurn(graph.Ring(16), 0.9), vals, opts(seed))
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(16), 0.9), vals, opts(seed))
		if err != nil {
			t.Fatal(err)
		}
		ws, _ := summarize(warm, nil)
		cs, _ := summarize(cold, nil)
		if ws != cs || *warm.Dynamics != *cold.Dynamics {
			t.Fatalf("seed %d: warm join run diverged from cold\nwarm: %s %+v\ncold: %s %+v",
				seed, ws, *warm.Dynamics, cs, *cold.Dynamics)
		}
	}
}

// TestJoinContracts pins the join-bearing RunWith error contracts: the
// initial-state array must cover the final population, and the
// environment must be growable.
func TestJoinContracts(t *testing.T) {
	sched := dynamics.NewSchedule(dynamics.Join(2, "ring", 1))
	opts := Options{Seed: 1, MaxRounds: 50, Dynamics: sched}

	if _, err := Run[int](problems.NewMin(), env.NewStatic(graph.Ring(6)), make([]int, 6), opts); err == nil {
		t.Fatal("expected an error for initial states sized to the founding population only")
	}
	// Partitioner is structurally tied to its founding topology and
	// deliberately not Growable.
	if _, err := Run[int](problems.NewMin(), env.NewPartitioner(graph.Ring(6), 2, 5, 10), make([]int, 8), opts); err == nil {
		t.Fatal("expected an error for a join schedule over a non-growable environment")
	}
	if _, err := Run[int](problems.NewMin(), env.NewStatic(graph.Ring(6)), make([]int, 8), opts); err != nil {
		t.Fatalf("correctly sized join run failed: %v", err)
	}
}
