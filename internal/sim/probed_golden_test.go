package sim

// Probed golden replays: the observe-never-perturb contract, pinned.
//
// Every golden matrix (engine equivalence, join-laden membership, empty
// dynamics) re-runs with a RECORDING probe attached — fake clock so
// every phase bracket takes a nonzero observed duration, plus a JSONL
// trace sink so the encode path runs too — and the summaries must stay
// byte-identical to the unprobed goldens across every state layout
// (serial, pooled, sharded, sharded+pooled). The harness also asserts
// the probes actually observed the runs: a probe that silently detached
// (a wiring regression in RunWith) would pass the byte-identity check
// for the wrong reason.

import (
	"fmt"
	"io"
	goruntime "runtime"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/obs"
)

// withProbe wraps a golden-case tweak so every run gets a FRESH probe
// (obs timers are per-run, and goldens run concurrently under t.Run).
// The returned collect function merges every probe's report so callers
// can assert the probes were engaged.
func withProbe(base func(*Options)) (tweak func(*Options), collect func() obs.RoundReport) {
	var probes []*obs.Probe
	tweak = func(o *Options) {
		if base != nil {
			base(o)
		}
		p := obs.NewProbe(obs.Config{
			Clock: &obs.FakeClock{Step: 1},
			Trace: obs.NewTraceWriter(io.Discard),
		})
		o.Probe = p
		probes = append(probes, p)
	}
	collect = func() obs.RoundReport {
		var merged obs.RoundReport
		for _, p := range probes {
			merged = merged.Merge(p.Report())
		}
		return merged
	}
	return tweak, collect
}

// requireEngaged fails the test if the merged report shows the probes
// never saw a round or a phase sample.
func requireEngaged(t *testing.T, rep obs.RoundReport) {
	t.Helper()
	if rep.Rounds() == 0 {
		t.Fatal("probes attached but observed zero rounds — probe wiring is dead")
	}
	var samples int64
	for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
		samples += rep.Phases[ph].Count
	}
	if samples == 0 {
		t.Fatal("probes attached but recorded zero phase samples")
	}
}

// TestEngineEquivalenceGoldenProbed replays the full equivalence matrix
// with a recording probe on every layout variant. Identical goldens with
// probes on IS the observability contract: enabling tracing changes no
// result bytes.
func TestEngineEquivalenceGoldenProbed(t *testing.T) {
	variants := []struct {
		name string
		base func(*Options)
	}{
		{"serial", nil},
		{"parallel", func(o *Options) { o.ParallelThreshold = 1 }},
		{"sharded", func(o *Options) { o.Shards = 4 }},
		{"sharded-parallel", func(o *Options) {
			o.Shards = 3 // deliberately not a divisor of any case's agent count
			o.ParallelThreshold = 1
		}},
	}
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			tweak, collect := withProbe(v.base)
			runGoldenCases(t, tweak)
			requireEngaged(t, collect())
		})
	}
}

// TestMembershipGoldenProbed replays the join-laden membership matrix
// probed — growth rounds (graph splice, matcher/tracker extension,
// amnesiac resets) emit phase samples and dynamics counters without
// touching results — serially and with sharding+pooling forced on.
func TestMembershipGoldenProbed(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	for _, p := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", p), func(t *testing.T) {
			tweak, collect := withProbe(func(o *Options) {
				if p != 0 {
					o.Shards = p
					o.ParallelThreshold = 1
				}
			})
			runJoinGoldenCases(t, tweak)
			requireEngaged(t, collect())
		})
	}
}

// TestEngineEquivalenceGoldenProbedDynamics replays the goldens with an
// EMPTY dynamics schedule and a probe attached at once: the dynamics
// hook and the observability hook stack without perturbing results.
func TestEngineEquivalenceGoldenProbedDynamics(t *testing.T) {
	tweak, collect := withProbe(func(o *Options) { o.Dynamics = dynamics.NewSchedule() })
	runGoldenCases(t, tweak)
	requireEngaged(t, collect())
}
