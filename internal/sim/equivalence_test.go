package sim

import (
	"fmt"
	"os"
	goruntime "runtime"
	"testing"

	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/problems"
)

// Engine-equivalence golden tests.
//
// The golden strings below pin the serial reference engine: every layout
// and parallelism variant (worker pool forced on, sharded state for
// P ∈ {1, 4, GOMAXPROCS}, sharded + pooled) must produce bit-for-bit
// identical results — same RNG stream consumption, same group ordering,
// same monitor verdicts — for every (problem × environment × seed) cell,
// so any divergence in Converged/Round/Rounds/GroupSteps/Messages/
// Violations/Final fails here with the exact cell named.
//
// Provenance: originally recorded from the seed (pre-refactor) engine;
// re-recorded once for the PR 3 intentional behavior changes — EdgeChurn
// now samples only minority edges from a per-round substream (one master
// draw per round), PairwiseMode draws its maximal matching via the
// partitioned matcher with per-pair child seeds (engine.PairMatcher),
// and the per-group worker streams are engine.FastRand (O(1) reseed) —
// after verifying that every cell still converges with zero violations.
//
// Regenerate (only when an INTENTIONAL behavior change is made) with:
//
//	SIM_GOLDEN_REGEN=1 go test ./internal/sim -run TestEngineEquivalenceGolden -v
//
// and paste the printed map literal over engineGoldens.

type goldenCase struct {
	name string
	run  func(seed int64, tweak func(*Options)) (string, error)
}

// tweaked applies an optional Options mutation — used by the parallel
// variant of the golden test to force the worker pool on without touching
// anything that affects results.
func tweaked(opts Options, tweak func(*Options)) Options {
	if tweak != nil {
		tweak(&opts)
	}
	return opts
}

// summarize renders every Result field the equivalence contract covers.
func summarize[T any](res *Result[T], err error) (string, error) {
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("conv=%v round=%d rounds=%d steps=%d msgs=%d viol=%d final=%v",
		res.Converged, res.Round, res.Rounds, res.GroupSteps, res.Messages,
		len(res.Violations), res.Final), nil
}

func goldenCases() []goldenCase {
	intVals := func(n int, seed int64) []int {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = int((int64(i+1)*2654435761 + seed*97) % int64(4*n))
		}
		return vals
	}
	return []goldenCase{
		{"min/ring16/churn0.5", func(seed int64, tweak func(*Options)) (string, error) {
			return summarize(Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(16), 0.5),
				intVals(16, 3), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, MaxRounds: 10_000}, tweak)))
		}},
		{"min/complete12/partitioner", func(seed int64, tweak func(*Options)) (string, error) {
			return summarize(Run[int](problems.NewMin(), env.NewPartitioner(graph.Complete(12), 3, 5, 20),
				intVals(12, 5), tweaked(Options{Seed: seed, StopOnConverged: true, MaxRounds: 10_000}, tweak)))
		}},
		{"min/complete8/adversary-feedback", func(seed int64, tweak func(*Options)) (string, error) {
			return summarize(Run[int](problems.NewMin(), env.NewAdversary(graph.Complete(8), 0.9, 6),
				intVals(8, 7), tweaked(Options{Seed: seed, StopOnConverged: true, AdversaryFeedback: true, MaxRounds: 10_000}, tweak)))
		}},
		{"partialmin/ring12/powerloss", func(seed int64, tweak func(*Options)) (string, error) {
			return summarize(Run[int](&problems.Min{Partial: true}, env.NewPowerLoss(graph.Ring(12), 0.3),
				intVals(12, 9), tweaked(Options{Seed: seed, StopOnConverged: true, MaxRounds: 60_000}, tweak)))
		}},
		{"sum/complete10/pairwise", func(seed int64, tweak func(*Options)) (string, error) {
			return summarize(Run[int](problems.NewSum(), env.NewEdgeChurn(graph.Complete(10), 0.7),
				intVals(10, 11), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, Mode: PairwiseMode, MaxRounds: 10_000}, tweak)))
		}},
		{"gcd/star9/roundrobin", func(seed int64, tweak func(*Options)) (string, error) {
			vals := intVals(9, 13)
			for i := range vals {
				vals[i] = (vals[i] + 1) * 6
			}
			return summarize(Run[int](problems.NewGCD(), env.NewRoundRobin(graph.Star(9)),
				vals, tweaked(Options{Seed: seed, StopOnConverged: true, MaxRounds: 10_000}, tweak)))
		}},
		{"sorting/line8/pairwise", func(seed int64, tweak func(*Options)) (string, error) {
			vals := []int{7, 2, 5, 0, 6, 1, 4, 3}
			p, err := problems.NewSorting(vals)
			if err != nil {
				return "", err
			}
			return summarize(Run[problems.Item](p, env.NewEdgeChurn(graph.Line(8), 0.8),
				problems.InitialItems(vals), tweaked(Options{Seed: seed, StopOnConverged: true, Mode: PairwiseMode, MaxRounds: 100_000}, tweak)))
		}},
		{"sorting/complete8/component", func(seed int64, tweak func(*Options)) (string, error) {
			vals := []int{7, 2, 5, 0, 6, 1, 4, 3}
			p, err := problems.NewSorting(vals)
			if err != nil {
				return "", err
			}
			return summarize(Run[problems.Item](p, env.NewEdgeChurn(graph.Complete(8), 0.6),
				problems.InitialItems(vals), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, MaxRounds: 100_000}, tweak)))
		}},
		{"minpair/complete6/churn0.6", func(seed int64, tweak func(*Options)) (string, error) {
			vals := []int{5, 2, 4, 1, 3, 0}
			return summarize(Run[problems.Pair](problems.NewMinPair(6, 8), env.NewEdgeChurn(graph.Complete(6), 0.6),
				problems.InitialPairs(vals), tweaked(Options{Seed: seed, StopOnConverged: true, MaxRounds: 10_000}, tweak)))
		}},
		{"hull/ring6/churn0.5", func(seed int64, tweak func(*Options)) (string, error) {
			pts := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 1}, {X: 2, Y: 5}, {X: 6, Y: 3}, {X: 1, Y: 4}, {X: 5, Y: 5}}
			return summarize(Run[problems.HullState](problems.NewHull(pts), env.NewEdgeChurn(graph.Ring(6), 0.5),
				problems.InitialHulls(pts), tweaked(Options{Seed: seed, StopOnConverged: true, HEps: 1e-9, MaxRounds: 10_000}, tweak)))
		}},
		{"min/ring64/pairwise-blocks4", func(seed int64, tweak func(*Options)) (string, error) {
			// MatchBlocks 4 forces the partitioned matcher's boundary
			// reconciliation on a small system, so the golden matrix pins
			// the interior/boundary split across every layout variant.
			return summarize(Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(64), 0.6),
				intVals(64, 19), tweaked(Options{Seed: seed, StopOnConverged: true, CheckSteps: true, Mode: PairwiseMode, MatchBlocks: 4, MaxRounds: 100_000}, tweak)))
		}},
		{"sum/complete24/pairwise-blocks3", func(seed int64, tweak func(*Options)) (string, error) {
			// Complete graph: most edges are boundary edges, so the
			// sequential reconciliation pass carries the round.
			return summarize(Run[int](problems.NewSum(), env.NewEdgeChurn(graph.Complete(24), 0.7),
				intVals(24, 21), tweaked(Options{Seed: seed, StopOnConverged: true, Mode: PairwiseMode, MatchBlocks: 3, MaxRounds: 10_000}, tweak)))
		}},
		{"min/ring16/no-stop-stability", func(seed int64, tweak func(*Options)) (string, error) {
			// StopOnConverged off: the run continues to MaxRounds and the
			// goal state must be stable (spec (4)); exercises the full-length
			// round loop and snapshot maintenance after convergence.
			return summarize(Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(16), 0.8),
				intVals(16, 17), tweaked(Options{Seed: seed, MaxRounds: 120}, tweak)))
		}},
	}
}

// engineGoldens maps "case/seed" to the seed-engine summary.
var engineGoldens = map[string]string{
	"min/ring16/churn0.5/seed1":              "conv=true round=7 rounds=7 steps=13 msgs=70 viol=0 final=[2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2]",
	"min/ring16/churn0.5/seed2":              "conv=true round=7 rounds=7 steps=13 msgs=72 viol=0 final=[2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2]",
	"min/ring16/churn0.5/seed3":              "conv=true round=12 rounds=12 steps=19 msgs=88 viol=0 final=[2 2 2 2 2 2 2 2 2 2 2 2 2 2 2 2]",
	"min/complete12/partitioner/seed1":       "conv=true round=1 rounds=1 steps=1 msgs=22 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6]",
	"min/complete12/partitioner/seed2":       "conv=true round=1 rounds=1 steps=1 msgs=22 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6]",
	"min/complete12/partitioner/seed3":       "conv=true round=1 rounds=1 steps=1 msgs=22 viol=0 final=[6 6 6 6 6 6 6 6 6 6 6 6]",
	"min/complete8/adversary-feedback/seed1": "conv=true round=7 rounds=7 steps=3 msgs=20 viol=0 final=[9 9 9 9 9 9 9 9]",
	"min/complete8/adversary-feedback/seed2": "conv=true round=7 rounds=7 steps=3 msgs=20 viol=0 final=[9 9 9 9 9 9 9 9]",
	"min/complete8/adversary-feedback/seed3": "conv=true round=7 rounds=7 steps=2 msgs=20 viol=0 final=[9 9 9 9 9 9 9 9]",
	"partialmin/ring12/powerloss/seed1":      "conv=true round=11 rounds=11 steps=12 msgs=86 viol=0 final=[10 10 10 10 10 10 10 10 10 10 10 10]",
	"partialmin/ring12/powerloss/seed2":      "conv=true round=8 rounds=8 steps=12 msgs=72 viol=0 final=[10 10 10 10 10 10 10 10 10 10 10 10]",
	"partialmin/ring12/powerloss/seed3":      "conv=true round=9 rounds=9 steps=6 msgs=64 viol=0 final=[10 10 10 10 10 10 10 10 10 10 10 10]",
	"sum/complete10/pairwise/seed1":          "conv=true round=7 rounds=7 steps=9 msgs=18 viol=0 final=[325 0 0 0 0 0 0 0 0 0]",
	"sum/complete10/pairwise/seed2":          "conv=true round=21 rounds=21 steps=9 msgs=18 viol=0 final=[325 0 0 0 0 0 0 0 0 0]",
	"sum/complete10/pairwise/seed3":          "conv=true round=35 rounds=35 steps=9 msgs=18 viol=0 final=[325 0 0 0 0 0 0 0 0 0]",
	"gcd/star9/roundrobin/seed1":             "conv=true round=8 rounds=8 steps=8 msgs=16 viol=0 final=[6 6 6 6 6 6 6 6 6]",
	"gcd/star9/roundrobin/seed2":             "conv=true round=8 rounds=8 steps=8 msgs=16 viol=0 final=[6 6 6 6 6 6 6 6 6]",
	"gcd/star9/roundrobin/seed3":             "conv=true round=8 rounds=8 steps=8 msgs=16 viol=0 final=[6 6 6 6 6 6 6 6 6]",
	"sorting/line8/pairwise/seed1":           "conv=true round=32 rounds=32 steps=17 msgs=34 viol=0 final=[0:0 1:1 2:2 3:3 4:4 5:5 6:6 7:7]",
	"sorting/line8/pairwise/seed2":           "conv=true round=19 rounds=19 steps=17 msgs=34 viol=0 final=[0:0 1:1 2:2 3:3 4:4 5:5 6:6 7:7]",
	"sorting/line8/pairwise/seed3":           "conv=true round=14 rounds=14 steps=17 msgs=34 viol=0 final=[0:0 1:1 2:2 3:3 4:4 5:5 6:6 7:7]",
	"sorting/complete8/component/seed1":      "conv=true round=1 rounds=1 steps=1 msgs=14 viol=0 final=[0:0 1:1 2:2 3:3 4:4 5:5 6:6 7:7]",
	"sorting/complete8/component/seed2":      "conv=true round=1 rounds=1 steps=1 msgs=14 viol=0 final=[0:0 1:1 2:2 3:3 4:4 5:5 6:6 7:7]",
	"sorting/complete8/component/seed3":      "conv=true round=1 rounds=1 steps=1 msgs=14 viol=0 final=[0:0 1:1 2:2 3:3 4:4 5:5 6:6 7:7]",
	"minpair/complete6/churn0.6/seed1":       "conv=true round=1 rounds=1 steps=1 msgs=10 viol=0 final=[(0, 1) (0, 1) (0, 1) (0, 1) (0, 1) (0, 1)]",
	"minpair/complete6/churn0.6/seed2":       "conv=true round=1 rounds=1 steps=1 msgs=10 viol=0 final=[(0, 1) (0, 1) (0, 1) (0, 1) (0, 1) (0, 1)]",
	"minpair/complete6/churn0.6/seed3":       "conv=true round=1 rounds=1 steps=1 msgs=10 viol=0 final=[(0, 1) (0, 1) (0, 1) (0, 1) (0, 1) (0, 1)]",
	"hull/ring6/churn0.5/seed1":              "conv=true round=1 rounds=1 steps=1 msgs=10 viol=0 final=[agent@(0, 0) hull|6| agent@(4, 1) hull|6| agent@(2, 5) hull|6| agent@(6, 3) hull|6| agent@(1, 4) hull|6| agent@(5, 5) hull|6|]",
	"hull/ring6/churn0.5/seed2":              "conv=true round=2 rounds=2 steps=3 msgs=16 viol=0 final=[agent@(0, 0) hull|6| agent@(4, 1) hull|6| agent@(2, 5) hull|6| agent@(6, 3) hull|6| agent@(1, 4) hull|6| agent@(5, 5) hull|6|]",
	"hull/ring6/churn0.5/seed3":              "conv=true round=3 rounds=3 steps=3 msgs=22 viol=0 final=[agent@(0, 0) hull|6| agent@(4, 1) hull|6| agent@(2, 5) hull|6| agent@(6, 3) hull|6| agent@(1, 4) hull|6| agent@(5, 5) hull|6|]",
	"min/ring64/pairwise-blocks4/seed1":      "conv=true round=111 rounds=111 steps=218 msgs=436 viol=0 final=[1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1]",
	"min/ring64/pairwise-blocks4/seed2":      "conv=true round=94 rounds=94 steps=225 msgs=450 viol=0 final=[1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1]",
	"min/ring64/pairwise-blocks4/seed3":      "conv=true round=76 rounds=76 steps=212 msgs=424 viol=0 final=[1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1]",
	"sum/complete24/pairwise-blocks3/seed1":  "conv=true round=346 rounds=346 steps=23 msgs=46 viol=0 final=[1380 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0]",
	"sum/complete24/pairwise-blocks3/seed2":  "conv=true round=775 rounds=775 steps=23 msgs=46 viol=0 final=[1380 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0]",
	"sum/complete24/pairwise-blocks3/seed3":  "conv=true round=521 rounds=521 steps=23 msgs=46 viol=0 final=[1380 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0]",
	"min/ring16/no-stop-stability/seed1":     "conv=true round=1 rounds=120 steps=1 msgs=30 viol=0 final=[1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1]",
	"min/ring16/no-stop-stability/seed2":     "conv=true round=2 rounds=120 steps=3 msgs=56 viol=0 final=[1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1]",
	"min/ring16/no-stop-stability/seed3":     "conv=true round=4 rounds=120 steps=6 msgs=58 viol=0 final=[1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1]",
}

func TestEngineEquivalenceGolden(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if os.Getenv("SIM_GOLDEN_REGEN") != "" {
		fmt.Println("var engineGoldens = map[string]string{")
		for _, c := range goldenCases() {
			for _, s := range seeds {
				got, err := c.run(s, nil)
				if err != nil {
					t.Fatalf("%s/seed%d: %v", c.name, s, err)
				}
				fmt.Printf("\t%q: %q,\n", fmt.Sprintf("%s/seed%d", c.name, s), got)
			}
		}
		fmt.Println("}")
		return
	}
	runGoldenCases(t, nil)
}

// TestEngineEquivalenceGoldenParallel re-runs every golden cell with the
// worker pool forced on (threshold 1) and enough worker slots to actually
// interleave even on a single-CPU machine. Results must STILL match the
// sequential seed engine bit for bit: per-group child seeds are drawn in
// group order from the master stream, so scheduling cannot leak into
// results.
func TestEngineEquivalenceGoldenParallel(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	runGoldenCases(t, func(o *Options) { o.ParallelThreshold = 1 })
}

// TestEngineEquivalenceGoldenSharded re-runs every golden cell with the
// sharded state layout forced on, for P ∈ {1, 4, GOMAXPROCS}. The shard
// trackers plus P-way merged snapshot (and the sharded monitor reduction
// f(f(S_1) ∪ … ∪ f(S_P))) must reproduce the seed engine bit for bit —
// the conservation law holds for any partition of the agent multiset, so
// the partition into shards cannot be observable in results.
func TestEngineEquivalenceGoldenSharded(t *testing.T) {
	for _, p := range []int{1, 4, goruntime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("shards=%d", p), func(t *testing.T) {
			runGoldenCases(t, func(o *Options) { o.Shards = p })
		})
	}
}

// TestEngineEquivalenceGoldenShardedParallel forces sharding AND the
// worker pool on together — shard repairs, group steps, and the per-shard
// f partial images all fan out, and results must still match the
// sequential seed engine exactly.
func TestEngineEquivalenceGoldenShardedParallel(t *testing.T) {
	old := goruntime.GOMAXPROCS(4)
	defer goruntime.GOMAXPROCS(old)
	runGoldenCases(t, func(o *Options) {
		o.Shards = 3 // deliberately not a divisor of any case's agent count
		o.ParallelThreshold = 1
	})
}

func runGoldenCases(t *testing.T, tweak func(*Options)) {
	t.Helper()
	for _, c := range goldenCases() {
		for _, s := range []int64{1, 2, 3} {
			key := fmt.Sprintf("%s/seed%d", c.name, s)
			t.Run(key, func(t *testing.T) {
				got, err := c.run(s, tweak)
				if err != nil {
					t.Fatal(err)
				}
				want, ok := engineGoldens[key]
				if !ok {
					t.Fatalf("no golden recorded for %s; run with SIM_GOLDEN_REGEN=1", key)
				}
				if got != want {
					t.Errorf("engine diverged from seed engine\n got: %s\nwant: %s", got, want)
				}
			})
		}
	}
}
