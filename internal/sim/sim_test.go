package sim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/env"
	"repro/internal/geom"
	"repro/internal/graph"
	ms "repro/internal/multiset"
	"repro/internal/problems"
)

func testOpts() Options {
	return Options{Seed: 1, CheckSteps: true, StopOnConverged: true, MaxRounds: 5000}
}

func TestMinConvergesStatic(t *testing.T) {
	g := graph.Ring(8)
	e := env.NewStatic(g)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := Converges[int](problems.NewMin(), e, vals, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Static connected graph in ComponentMode: one round suffices.
	if res.Round != 1 {
		t.Errorf("rounds = %d, want 1 (whole graph is one group)", res.Round)
	}
	if !res.Target.Equal(ms.OfInts(1, 1, 1, 1, 1, 1, 1, 1)) {
		t.Errorf("target = %v", res.Target)
	}
	for _, v := range res.Final {
		if v != 1 {
			t.Errorf("final = %v", res.Final)
		}
	}
}

func TestMinConvergesUnderChurn(t *testing.T) {
	g := graph.Ring(10)
	e := env.NewEdgeChurn(g, 0.3)
	vals := make([]int, 10)
	for i := range vals {
		vals[i] = (i*7 + 3) % 20
	}
	res, err := Converges[int](problems.NewMin(), e, vals, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds", res.Rounds)
	}
	if res.Round <= 1 {
		t.Errorf("churn run converged suspiciously fast: %d", res.Round)
	}
}

func TestChurnSlowsButNeverBreaks(t *testing.T) {
	// The paper's adaptivity claim in miniature: lower availability means
	// more rounds, never incorrectness.
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	prevRounds := 0
	for _, pUp := range []float64{1.0, 0.5, 0.1} {
		res, err := Converges[int](problems.NewMin(), env.NewEdgeChurn(g, pUp), vals, testOpts())
		if err != nil {
			t.Fatalf("p=%.1f: %v", pUp, err)
		}
		if !res.Converged {
			t.Fatalf("p=%.1f did not converge", pUp)
		}
		if res.Round < prevRounds {
			// Not strictly guaranteed per-seed, but with this seed and
			// these availabilities the ordering is stable; a failure here
			// signals a real regression in the engine.
			t.Errorf("p=%.1f rounds %d < rounds at higher availability %d", pUp, res.Round, prevRounds)
		}
		prevRounds = res.Round
	}
}

func TestGoalStateIsStable(t *testing.T) {
	// Spec (4): once S = f(S), it stays. Run past convergence.
	g := graph.Complete(5)
	e := env.NewEdgeChurn(g, 0.5)
	opts := testOpts()
	opts.StopOnConverged = false
	opts.MaxRounds = 300
	res, err := Converges[int](problems.NewMin(), e, []int{5, 3, 8, 1, 9}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	final := ms.OfInts(res.Final...)
	if !final.Equal(res.Target) {
		t.Errorf("goal state not stable: final %v ≠ target %v", final, res.Target)
	}
}

func TestSumNeedsCompleteGraphPairwise(t *testing.T) {
	// §4.2: under pairwise gossip, sum converges on the complete graph…
	vals := []int{3, 0, 5, 0, 7, 2}
	opts := testOpts()
	opts.Mode = PairwiseMode
	res, err := Converges[int](problems.NewSum(), env.NewStatic(graph.Complete(6)), vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("sum did not converge on complete graph")
	}
	// …but stalls on a line where zeros separate the non-zero agents
	// (zero agents cannot act as couriers).
	stallVals := []int{3, 0, 5, 0, 7, 2}
	opts.MaxRounds = 400
	res, err = Converges[int](problems.NewSum(), env.NewStatic(graph.Line(6)), stallVals, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("sum converged on a line despite zero separators — §4.2 says it must not")
	}
}

func TestSumComponentModeConverges(t *testing.T) {
	// In ComponentMode a connected group consolidates at once, so even a
	// line works: the group sees all its members' states.
	res, err := Converges[int](problems.NewSum(), env.NewStatic(graph.Line(5)), []int{1, 0, 2, 0, 4}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("component-mode sum did not converge")
	}
	if !res.Target.Equal(ms.OfInts(7, 0, 0, 0, 0)) {
		t.Errorf("target = %v", res.Target)
	}
}

func TestPartitionSelfSimilarity(t *testing.T) {
	// During a partition each block must converge to its own f — each
	// group behaves as though the system were that group alone.
	g := graph.Complete(6)
	e := env.NewPartitioner(g, 2, 0, 1_000_000) // permanently partitioned
	vals := []int{9, 4, 7, 3, 8, 5}             // blocks {0,1,2} and {3,4,5}
	opts := testOpts()
	opts.StopOnConverged = false
	opts.MaxRounds = 10
	res, err := Converges[int](problems.NewMin(), e, vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged globally despite permanent partition")
	}
	// Block 1 must agree on 4, block 2 on 3.
	for i := 0; i < 3; i++ {
		if res.Final[i] != 4 {
			t.Errorf("block 1 agent %d = %d, want 4", i, res.Final[i])
		}
	}
	for i := 3; i < 6; i++ {
		if res.Final[i] != 3 {
			t.Errorf("block 2 agent %d = %d, want 3", i, res.Final[i])
		}
	}
}

func TestPartitionHealsAndConverges(t *testing.T) {
	g := graph.Complete(6)
	e := env.NewPartitioner(g, 3, 2, 5)
	vals := []int{9, 4, 7, 3, 8, 5}
	res, err := Converges[int](problems.NewMin(), e, vals, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge after heals")
	}
}

func TestPowerLossStillConverges(t *testing.T) {
	g := graph.Ring(8)
	e := env.NewPowerLoss(g, 0.4)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := Converges[int](problems.NewMin(), e, vals, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under power loss")
	}
}

func TestStarvationBlocksSumButNotMin(t *testing.T) {
	// E12 in miniature. Starve every edge adjacent to agent 0 (the
	// max-value holder for sum): sum cannot finish; min still can via
	// other routes… but if agent 0 holds the unique minimum, min cannot
	// finish either — so give the minimum to agent 1.
	g := graph.Complete(5)
	var starved []int
	for id, edge := range g.Edges() {
		if edge.A == 0 || edge.B == 0 {
			starved = append(starved, id)
		}
	}
	e := env.NewStarver(g, starved)

	opts := testOpts()
	opts.Mode = PairwiseMode
	opts.MaxRounds = 500
	sumRes, err := Converges[int](problems.NewSum(), e, []int{9, 1, 2, 3, 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sumRes.Converged {
		t.Error("sum converged despite starved collector edges")
	}
	if len(sumRes.Probe.Starved()) == 0 {
		t.Error("probe did not witness the (2) violation")
	}

	// Min with minimum at agent 1: agents 1..4 reach consensus, but agent
	// 0 is isolated → still no global convergence. With agent 0 already
	// holding the min value it *does* converge? No: others cannot learn
	// it. Verify the nuanced case: agent 0 isolated but holding a
	// non-minimal value blocks global min consensus too.
	minRes, err := Converges[int](problems.NewMin(), e, []int{9, 1, 2, 3, 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if minRes.Converged {
		t.Error("min converged despite isolated agent")
	}
	// But agents 1..4 did reach their group's consensus — self-similarity.
	for i := 1; i < 5; i++ {
		if minRes.Final[i] != 1 {
			t.Errorf("agent %d = %d, want 1", i, minRes.Final[i])
		}
	}
}

func TestAverageConverges(t *testing.T) {
	g := graph.Ring(6)
	e := env.NewEdgeChurn(g, 0.5)
	vals := []float64{1, 2, 3, 4, 5, 9}
	p := problems.NewAverage(1e-9)
	opts := testOpts()
	opts.HEps = 1e-9
	res, err := Converges[float64](p, e, vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("average did not converge")
	}
	if diff := res.Final[0] - 4; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean = %g, want 4", res.Final[0])
	}
}

func TestSortingOnLine(t *testing.T) {
	vals := []int{6, 2, 5, 0, 4, 1, 3}
	p, err := problems.NewSorting(vals)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Line(7)
	e := env.NewEdgeChurn(g, 0.5)
	opts := testOpts()
	opts.Mode = PairwiseMode
	res, err := Converges[problems.Item](p, e, problems.InitialItems(vals), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sorting did not converge in %d rounds", res.Rounds)
	}
	for i, it := range res.Final {
		if it.Index != i || it.Value != i {
			t.Errorf("final[%d] = %v", i, it)
		}
	}
}

func TestHullConverges(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 1}, {X: 2, Y: 5}, {X: 6, Y: 3}, {X: 1, Y: 4}, {X: 5, Y: 5}}
	p := problems.NewHull(pts)
	g := graph.Ring(len(pts))
	e := env.NewEdgeChurn(g, 0.4)
	opts := testOpts()
	opts.HEps = 1e-9
	res, err := Converges[problems.HullState](p, e, problems.InitialHulls(pts), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("hull did not converge")
	}
	// Every agent's circumscribing circle matches the direct computation.
	want := geom.EnclosingCircle(pts)
	for _, s := range res.Final {
		if got := problems.Circumcircle(s); !got.Near(want, 1e-6) {
			t.Errorf("agent circle %v, want %v", got, want)
		}
	}
}

func TestMinPairConverges(t *testing.T) {
	vals := []int{3, 5, 3, 7}
	p := problems.NewMinPair(len(vals), 10)
	g := graph.Ring(len(vals))
	e := env.NewEdgeChurn(g, 0.5)
	res, err := Converges[problems.Pair](p, e, problems.InitialPairs(vals), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("min-pair did not converge")
	}
	for _, pr := range res.Final {
		if pr != (problems.Pair{X: 3, Y: 5}) {
			t.Errorf("final pair = %v, want (3,5)", pr)
		}
	}
}

func TestKSmallestConverges(t *testing.T) {
	vals := []int{8, 3, 6, 1, 9, 4}
	p := problems.NewKSmallest(3, len(vals), 16)
	g := graph.Ring(len(vals))
	e := env.NewEdgeChurn(g, 0.5)
	res, err := Converges[problems.KVec](p, e, problems.InitialKVecs(3, vals), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("k-smallest did not converge")
	}
	want := []int{1, 3, 4}
	for _, v := range res.Final {
		for j := range want {
			if v.Vals[j] != want[j] {
				t.Errorf("final vec = %v, want %v", v, want)
			}
		}
	}
}

func TestGCDConverges(t *testing.T) {
	g := graph.Line(5)
	e := env.NewEdgeChurn(g, 0.6)
	res, err := Converges[int](problems.NewGCD(), e, []int{12, 18, 30, 48, 6}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Final[0] != 6 {
		t.Fatalf("gcd run: converged=%v final=%v", res.Converged, res.Final)
	}
}

func TestRoundRobinEnvironmentConverges(t *testing.T) {
	// The weakest fair environment: one edge per round.
	g := graph.Ring(6)
	e := env.NewRoundRobin(g)
	res, err := Converges[int](problems.NewMin(), e, []int{9, 4, 7, 1, 8, 2}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under round-robin")
	}
	if res.Round < 3 {
		t.Errorf("round-robin converged too fast: %d", res.Round)
	}
}

func TestMobileEnvironmentConverges(t *testing.T) {
	g := graph.Complete(8)
	e, err := env.NewMobile(g, 0.4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := Converges[int](problems.NewMin(), e, vals, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under mobility")
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.Ring(4)
	if _, err := Run[int](problems.NewMin(), env.NewStatic(g), []int{1, 2}, Options{}); err == nil {
		t.Error("state/agent count mismatch accepted")
	}
	empty := graph.Line(0)
	if _, err := Run[int](problems.NewMin(), env.NewStatic(empty), nil, Options{}); err == nil {
		t.Error("empty system accepted")
	}
}

func TestAlreadyConverged(t *testing.T) {
	g := graph.Ring(3)
	res, err := Run[int](problems.NewMin(), env.NewStatic(g), []int{2, 2, 2}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Round != 0 {
		t.Errorf("converged=%v round=%d, want true/0", res.Converged, res.Round)
	}
	if res.GroupSteps != 0 {
		t.Errorf("group steps = %d on a converged start", res.GroupSteps)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	opts := testOpts()
	a, err := Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.3), vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.3), vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Round != b.Round || a.GroupSteps != b.GroupSteps || a.Messages != b.Messages {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	opts.Seed = 2
	c, err := Run[int](problems.NewMin(), env.NewEdgeChurn(g, 0.3), vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Round == c.Round && a.GroupSteps == c.GroupSteps && a.Messages == c.Messages {
		t.Log("different seeds coincided (possible but unlikely); not failing")
	}
}

func TestTraceHMonotone(t *testing.T) {
	g := graph.Ring(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	res, err := TraceH[int](problems.NewMin(), env.NewEdgeChurn(g, 0.4), vals, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HTrace) == 0 {
		t.Fatal("no h trace recorded")
	}
	if res.HTrace[len(res.HTrace)-1] != 8 { // 8 agents × min value 1
		t.Errorf("final h = %g, want 8", res.HTrace[len(res.HTrace)-1])
	}
}

func TestPartialMinStillConverges(t *testing.T) {
	// The lazy refinement ("any value between current and minimum") also
	// converges — the algorithm-class point of §4.1.
	g := graph.Ring(6)
	p := &problems.Min{Partial: true}
	res, err := Converges[int](p, env.NewEdgeChurn(g, 0.6), []int{9, 4, 7, 1, 8, 2}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("partial min did not converge")
	}
}

func TestMessagesAccounting(t *testing.T) {
	g := graph.Complete(4)
	res, err := Run[int](problems.NewMin(), env.NewStatic(g), []int{4, 3, 2, 1}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// One component step over 4 members: 2·(4−1) = 6 messages.
	if res.Messages != 6 || res.GroupSteps != 1 {
		t.Errorf("messages=%d steps=%d, want 6/1", res.Messages, res.GroupSteps)
	}
}

func TestModeString(t *testing.T) {
	if ComponentMode.String() != "component" || PairwiseMode.String() != "pairwise" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestOnRoundObserver(t *testing.T) {
	g := graph.Ring(6)
	var infos []RoundInfo
	opts := testOpts()
	opts.OnRound = func(ri RoundInfo) { infos = append(infos, ri) }
	res, err := Converges[int](problems.NewMin(), env.NewEdgeChurn(g, 0.5), []int{9, 4, 7, 1, 8, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != res.Rounds {
		t.Fatalf("observer called %d times for %d rounds", len(infos), res.Rounds)
	}
	// Rounds are sequential, h non-increasing, final info converged.
	for i, ri := range infos {
		if ri.Round != i {
			t.Errorf("info %d has round %d", i, ri.Round)
		}
		if i > 0 && ri.H > infos[i-1].H {
			t.Errorf("observer saw h increase at round %d", i)
		}
		if ri.ActiveGroups <= 0 {
			t.Errorf("round %d: no active groups reported", i)
		}
	}
	if !infos[len(infos)-1].Converged {
		t.Error("final observer info not converged")
	}
	totalProper := 0
	for _, ri := range infos {
		totalProper += ri.ProperSteps
	}
	if totalProper != res.GroupSteps {
		t.Errorf("observer proper steps %d != result %d", totalProper, res.GroupSteps)
	}
}

func TestMarkovLinksConverges(t *testing.T) {
	g := graph.Ring(8)
	e := env.NewMarkovLinks(g, 0.2, 0.2)
	res, err := Converges[int](problems.NewMin(), e, []int{9, 4, 7, 1, 8, 2, 6, 5}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under bursty churn")
	}
}

func TestDayNightConverges(t *testing.T) {
	g := graph.Ring(6)
	e := env.NewDayNight(g, 1, 9) // only 1 round in 10 is usable
	res, err := Converges[int](problems.NewMin(), e, []int{9, 4, 7, 1, 8, 2}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under day/night cycling")
	}
	// Round 0 is a day round and the whole ring is one component, so the
	// engine converges on the first day — which is exactly the "efficient
	// when conditions permit" behaviour.
	if res.Round != 1 {
		t.Errorf("rounds = %d, want 1 (first day round)", res.Round)
	}
	// Pairwise mode cannot finish in the single day round: the night must
	// actually delay it.
	opts := testOpts()
	opts.Mode = PairwiseMode
	res, err = Converges[int](problems.NewMin(), env.NewDayNight(g, 1, 9), []int{9, 4, 7, 1, 8, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("pairwise did not converge under day/night")
	}
	if res.Round <= 10 {
		t.Errorf("pairwise converged before the second day: %d", res.Round)
	}
}

func TestComposedEnvironmentConverges(t *testing.T) {
	g := graph.Ring(8)
	day := env.NewDayNight(g, 3, 3)
	churn := env.NewEdgeChurn(g, 0.6)
	e, err := env.NewCompose(day, churn)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Converges[int](problems.NewMin(), e, []int{9, 4, 7, 1, 8, 2, 6, 5}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under composed environment")
	}
}

func TestRangeProblemConverges(t *testing.T) {
	p := problems.NewRange(64)
	g := graph.Ring(6)
	vals := []int{9, 4, 7, 1, 8, 2}
	res, err := Converges[problems.Tuple[int, int]](p, env.NewEdgeChurn(g, 0.5),
		problems.InitialTuples(vals), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("range did not converge")
	}
	want := problems.Tuple[int, int]{A: 1, B: 9}
	for _, v := range res.Final {
		if v != want {
			t.Errorf("final = %v, want %v", v, want)
		}
	}
}

func TestSetUnionConverges(t *testing.T) {
	p := problems.NewSetUnion()
	g := graph.Line(5)
	init := []problems.Set{
		problems.SetOf(0), problems.SetOf(1, 2), problems.SetOf(3),
		problems.SetOf(), problems.SetOf(4, 5),
	}
	res, err := Converges[problems.Set](p, env.NewEdgeChurn(g, 0.5), init, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("set-union did not converge")
	}
	want := problems.SetOf(0, 1, 2, 3, 4, 5)
	for _, s := range res.Final {
		if s != want {
			t.Errorf("final = %v, want %v", s, want)
		}
	}
}

// spyProblem wraps Min and records the exact group sizes its GroupStep
// was invoked with — the structural self-similarity check: a group step
// must see nothing but its own members' states.
type spyProblem struct {
	*problems.Min
	mu    sync.Mutex
	sizes []int
}

func (s *spyProblem) GroupStep(states []int, rng *rand.Rand) []int {
	s.mu.Lock()
	s.sizes = append(s.sizes, len(states))
	s.mu.Unlock()
	return s.Min.GroupStep(states, rng)
}

func TestSelfSimilarityStructural(t *testing.T) {
	// Permanently partitioned into 3 blocks of 2: every group step must
	// see exactly the component size (2), never more — the engine cannot
	// leak non-member state into a group.
	g := graph.Complete(6)
	e := env.NewPartitioner(g, 3, 0, 1<<30)
	spy := &spyProblem{Min: problems.NewMin()}
	opts := testOpts()
	opts.StopOnConverged = false
	opts.MaxRounds = 5
	if _, err := Run[int](spy, e, []int{9, 4, 7, 3, 8, 5}, opts); err != nil {
		t.Fatal(err)
	}
	if len(spy.sizes) == 0 {
		t.Fatal("no group steps recorded")
	}
	for _, size := range spy.sizes {
		if size != 2 {
			t.Errorf("group step saw %d states; partition blocks have 2", size)
		}
	}
}

func TestAdversaryFeedbackTargetsDisagreement(t *testing.T) {
	// With feedback, the adversary cuts exactly the edges whose endpoints
	// disagree; with a fairness window convergence still happens, but
	// (for the same seed) no faster than under blind cuts.
	g := graph.Complete(8)
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5}
	opts := testOpts()
	opts.AdversaryFeedback = true
	targeted, err := Converges[int](problems.NewMin(), env.NewAdversary(g, 0.6, 6), vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !targeted.Converged {
		t.Fatal("fair targeted adversary prevented convergence — fairness window broken")
	}
	blind, err := Converges[int](problems.NewMin(), env.NewAdversary(g, 0.6, 6), vals, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !blind.Converged {
		t.Fatal("blind adversary run did not converge")
	}
	if targeted.Round < blind.Round {
		t.Logf("note: targeted (%d) beat blind (%d) on this seed — acceptable, windows dominate",
			targeted.Round, blind.Round)
	}
}

func TestAdversaryFeedbackUnfairBlocks(t *testing.T) {
	// Feedback + no fairness window: the adversary can cut every useful
	// edge forever, so an unconverged system stays unconverged — the
	// strongest-opponent version of E12.
	g := graph.Complete(6)
	vals := []int{9, 4, 7, 1, 8, 2}
	opts := testOpts()
	opts.AdversaryFeedback = true
	opts.MaxRounds = 300
	// Cut fraction must cover all disagreeing edges: with 15 edges and
	// feedback, 1.0 cuts everything useful.
	res, err := Converges[int](problems.NewMin(), env.NewAdversary(g, 1.0, 0), vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("unfair omniscient adversary failed to block convergence")
	}
}

// Soak test: every problem on a mid-sized system under a hostile mix —
// guarded by -short.
func TestSoakAllProblems(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n = 32
	vals := make([]int, n)
	for i := range vals {
		vals[i] = (i*37 + 11) % 128
	}
	g := graph.Ring(n)
	mkEnv := func() env.Environment { return env.NewMarkovLinks(g, 0.3, 0.15) }
	opts := testOpts()
	opts.MaxRounds = 200_000

	t.Run("min", func(t *testing.T) {
		res, err := Converges[int](problems.NewMin(), mkEnv(), vals, opts)
		if err != nil || !res.Converged {
			t.Fatalf("err=%v converged=%v", err, res != nil && res.Converged)
		}
	})
	t.Run("gcd", func(t *testing.T) {
		gv := make([]int, n)
		for i := range gv {
			gv[i] = (vals[i] + 1) * 4
		}
		res, err := Converges[int](problems.NewGCD(), mkEnv(), gv, opts)
		if err != nil || !res.Converged {
			t.Fatalf("err=%v converged=%v", err, res != nil && res.Converged)
		}
	})
	t.Run("minpair", func(t *testing.T) {
		res, err := Converges[problems.Pair](problems.NewMinPair(n, 128), mkEnv(), problems.InitialPairs(vals), opts)
		if err != nil || !res.Converged {
			t.Fatalf("err=%v converged=%v", err, res != nil && res.Converged)
		}
	})
	t.Run("range", func(t *testing.T) {
		res, err := Converges[problems.Tuple[int, int]](problems.NewRange(128), mkEnv(), problems.InitialTuples(vals), opts)
		if err != nil || !res.Converged {
			t.Fatalf("err=%v converged=%v", err, res != nil && res.Converged)
		}
	})
	t.Run("setunion", func(t *testing.T) {
		sets := make([]problems.Set, n)
		for i := range sets {
			sets[i] = problems.SetOf(i % 64)
		}
		res, err := Converges[problems.Set](problems.NewSetUnion(), mkEnv(), sets, opts)
		if err != nil || !res.Converged {
			t.Fatalf("err=%v converged=%v", err, res != nil && res.Converged)
		}
	})
	t.Run("sorting-pairwise", func(t *testing.T) {
		sortVals := make([]int, n)
		for i := range sortVals {
			sortVals[i] = (i*13 + 5) % (4 * n)
		}
		seen := map[int]bool{}
		for i := range sortVals {
			for seen[sortVals[i]] {
				sortVals[i]++
			}
			seen[sortVals[i]] = true
		}
		p, err := problems.NewSorting(sortVals)
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Mode = PairwiseMode
		res, err := Converges[problems.Item](p, env.NewMarkovLinks(graph.Line(n), 0.3, 0.15), problems.InitialItems(sortVals), o)
		if err != nil || !res.Converged {
			t.Fatalf("err=%v converged=%v", err, res != nil && res.Converged)
		}
	})
}

// TestAutoShardingLargeRing: above DefaultShardThreshold agents the
// engine auto-engages the sharded state layout (Options.Shards == 0) and
// a large-N run stays correct end to end — this is the paper's
// conservation-law license to shard exercised at scale.
func TestAutoShardingLargeRing(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N run")
	}
	n := DefaultShardThreshold + 500
	vals := make([]int, n)
	for i := range vals {
		vals[i] = 1 + (i*2654435761)%(4*n) // strictly positive; plant the unique minimum
	}
	vals[n/3] = 0
	res, err := Run[int](problems.NewMin(), env.NewEdgeChurn(graph.Ring(n), 0.99), vals,
		Options{Seed: 5, StopOnConverged: true, MaxRounds: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sharded large ring did not converge in %d rounds", res.Rounds)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("monitor violations: %v", res.Violations[0])
	}
	for i, v := range res.Final {
		if v != 0 {
			t.Fatalf("agent %d final %d, want 0", i, v)
		}
	}
}

// swapMin is Min with a PairStep that sometimes returns the pair SWAPPED
// — a multiset-preserving positional permutation, i.e. a legal stutter
// of D. It exists to pin a sharded-layout regression: such a permutation
// leaves the GROUP multiset unchanged (so the single-tracker layout has
// nothing to repair) but still changes the PER-SHARD multisets when the
// pair crosses a shard boundary, so the sharded layout must stage it.
type swapMin struct{ *problems.Min }

func (s swapMin) PairStep(a, b int, rng *rand.Rand) (int, int) {
	if a != b && rng.Intn(2) == 0 {
		return b, a
	}
	m := a
	if b < m {
		m = b
	}
	return m, m
}

func TestShardedSwapStutterStaysConsistent(t *testing.T) {
	// Before the fix, the swap desynced shard trackers from the
	// positional states and a later proper step panicked inside
	// Shards.Flush ("old value not present"). Shards=5 deliberately cuts
	// the ring into blocks so swaps cross shard boundaries.
	vals := []int{9, 4, 7, 1, 8, 2, 6, 5, 3, 0}
	for _, shards := range []int{-1, 1, 5} {
		res, err := Run[int](swapMin{problems.NewMin()}, env.NewEdgeChurn(graph.Ring(len(vals)), 0.9), vals,
			Options{Seed: 11, StopOnConverged: true, Mode: PairwiseMode, MaxRounds: 5000, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !res.Converged {
			t.Fatalf("shards=%d: did not converge: %v", shards, res.Final)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("shards=%d: violations: %v", shards, res.Violations[0])
		}
		for _, v := range res.Final {
			if v != 0 {
				t.Fatalf("shards=%d: final %v", shards, res.Final)
			}
		}
	}
}
