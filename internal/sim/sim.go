// Package sim is the round-based simulation engine for dynamic distributed
// systems, implementing the paper's execution model (§2.1).
//
// A system transition is either an environment transition or an agents
// transition; the engine alternates them. Each round:
//
//  1. the environment transitions (env.Environment.Step), yielding the set
//     of available edges and enabled agents;
//  2. the partition π of agents is derived: the connected components of
//     the enabled subgraph (a disabled agent is a singleton group that
//     takes no action — it "executes no actions and does not change
//     state");
//  3. every group in π executes one collaborative step of R concurrently
//     (a persistent worker pool fans the disjoint groups out across
//     GOMAXPROCS workers — groups are disjoint, so the paper's "disjoint
//     sets of agents can execute the algorithm concurrently" is realized
//     literally; small rounds run serially, which is cheaper and
//     bit-for-bit identical because every group steps on a private stream
//     seeded in group order). In PairwiseMode the groups are the pairs of
//     a random maximal matching, computed by the partitioned matcher
//     (engine.PairMatcher): per-block interior matchings fan out across
//     the pool and a sequential boundary-reconciliation pass completes
//     maximality, after which the matched pairs step like any other
//     groups — so the engine's last serial per-round O(E) stage is gone.
//
// Self-similarity is structural: a group step sees nothing but the states
// of the group's own members, and the same GroupStep code runs for every
// group of every size.
//
// The engine doubles as a runtime verifier. With Options.CheckSteps it
// checks that every executed group step is a D-step (proof obligation
// "R implements D" of §3.7), and it always monitors the conservation law
// f(S) = S* (§3.2) and the monotone descent of the variant h on the global
// state. Violations are recorded in the Result and fail tests. The
// monitors, convergence detection, and seeding discipline are shared with
// the asynchronous runtime via internal/engine.
//
// The round loop is allocation-free in steady state: the global state
// multiset is maintained incrementally by a multiset.Tracker (repaired
// after each proper group step instead of re-sorted from scratch), the
// partition is derived into reusable scratch (graph.ComponentsInto), and
// all matching and group buffers are engine-owned and reused across
// rounds.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	goruntime "runtime"
	"slices"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/logic"
	ms "repro/internal/multiset"
	"repro/internal/obs"
)

// Mode selects how groups execute steps each round.
type Mode int

const (
	// ComponentMode gives every connected component one collaborative
	// group step per round (the fastest refinement of D the environment
	// allows — "efficient computations in benign environments").
	ComponentMode Mode = iota
	// PairwiseMode restricts interaction to a random maximal matching
	// over the available edges, one PairStep per matched edge: classic
	// gossip, the minimal refinement. Used by the ablation experiments
	// and by problems (like sum) whose environment assumptions are
	// stated pairwise. The matching is computed by the partitioned
	// matcher (see Options.MatchBlocks) and the pair steps run on
	// private seeded streams, so pairwise rounds parallelize exactly
	// like component rounds.
	PairwiseMode
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ComponentMode:
		return "component"
	case PairwiseMode:
		return "pairwise"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DefaultParallelThreshold is the group count at which a round's group
// steps fan out to the worker pool; below it they run serially on the
// caller's goroutine. Group steps on the small systems the experiments
// sweep are far cheaper than a hand-off, so the threshold is high.
const DefaultParallelThreshold = 32

// DefaultShardThreshold is the agent count at which Options.Shards == 0
// switches the engine to the sharded state layout (GOMAXPROCS shards).
// Below it the single-tracker layout is cheaper: the per-group
// incremental repair already costs O(n) and sharding would only add merge
// overhead. Results are bit-identical in both layouts.
const DefaultShardThreshold = 1 << 14

// DefaultMatchBlockAgents is the agent-block size of the pairwise
// matcher's partition when Options.MatchBlocks is 0: systems below it use
// a single block (one shuffle, no boundary pass); a 10⁵-agent system gets
// ~25 blocks whose interior matchings fan out across the pool. Unlike the
// shard count, the block count is derived from the system size only —
// never from GOMAXPROCS — because it selects which matching is drawn (see
// Options.MatchBlocks) and results must not depend on the machine.
const DefaultMatchBlockAgents = 1 << 12

// Options configures a simulation run.
type Options struct {
	// MaxRounds bounds the run; 0 means the DefaultMaxRounds.
	MaxRounds int
	// Seed drives all randomness (environment and steps); runs are
	// reproducible bit for bit.
	Seed int64
	// Mode selects component-wide or pairwise steps.
	Mode Mode
	// CheckSteps verifies every group step is a D-step (slower; on in
	// tests, off in benchmarks unless measuring the monitor).
	CheckSteps bool
	// HEps is the strict-decrease slack for D-step checking (0 for exact
	// integer variants; geometry problems pass a small tolerance).
	HEps float64
	// RecordH records the global h value after every round.
	RecordH bool
	// StopOnConverged stops as soon as the state multiset equals the
	// target f(S(0)). When false the run continues to MaxRounds,
	// verifying stability of the goal state (spec (4)).
	StopOnConverged bool
	// ParallelThreshold overrides DefaultParallelThreshold: the minimum
	// number of groups in a round before group steps fan out to the
	// persistent worker pool. 0 means the default; negative forces serial
	// execution of group steps. Results are identical either way.
	ParallelThreshold int
	// Shards selects the sharded state layout: the agent array is split
	// into P contiguous shards, each owning its own multiset tracker with
	// deltas staged per round, and the global snapshot for the monitors is
	// a P-way merge of the shard views (see engine.Shards). 0 means auto —
	// sharding engages with GOMAXPROCS shards once the system has at least
	// DefaultShardThreshold agents; > 0 forces that many shards (clamped to
	// the agent count); negative forces the single-tracker layout. Results
	// are bit-identical in every layout — the conservation law S_{B∪C} =
	// S_B ∪ S_C holds for any partition of the agent multiset, which is
	// exactly the paper's license to shard.
	Shards int
	// MatchBlocks configures the pairwise matcher's partition: the agent
	// array is split into that many contiguous blocks; each block computes
	// a maximal matching over its interior edges on its own deterministic
	// substream (pool-parallel), and a sequential reconciliation pass then
	// matches the boundary edges between blocks, so the combined matching
	// is maximal (see engine.PairMatcher). 0 means auto — one block per
	// DefaultMatchBlockAgents agents; > 0 forces that many blocks (clamped
	// to the agent count); negative forces a single block. The block count
	// is part of the algorithm: like the seed, it selects WHICH random
	// maximal matching is drawn each round, so different values give
	// different (equally valid) runs — but for a fixed value results are
	// bit-identical for every Shards setting, every ParallelThreshold, and
	// every GOMAXPROCS. Ignored outside PairwiseMode.
	MatchBlocks int
	// OnRound, when non-nil, is called after every round with live
	// progress — used by examples and the experiment harness to trace
	// runs without retaining full traces.
	OnRound func(RoundInfo)
	// Dynamics, when non-nil, applies a scripted fault-and-dynamism
	// schedule on top of the environment: agent crash/recover (a crashed
	// agent's state is frozen and it is excluded from groups and
	// matchings), partition/heal windows, and churn bursts — see
	// internal/dynamics. The schedule's masks are overlaid between the
	// environment step and group formation each round (the FairnessProbe
	// observes the EFFECTIVE masks), its randomness comes from
	// engine.SubSeed substreams of (Seed, round) — never from the master
	// stream — so results are bit-identical for every Shards, MatchBlocks,
	// ParallelThreshold, and GOMAXPROCS, and the frozen-state conservation
	// contract is checked by the monitor every round. nil (and an empty
	// schedule) leave the engine bit-identical to the pre-dynamics
	// goldens.
	Dynamics *dynamics.Schedule
	// Probe, when non-nil, attaches the observability layer (internal/obs):
	// the round loop brackets each phase — environment step, dynamics
	// apply, touched-set assembly, matcher update, match, group step,
	// monitor — with probe timers, and the engine's work counters (groups,
	// matched pairs, touched ids, shard flushes, pool fan-out) accumulate
	// into the probe's RoundReport. The contract is observe-never-perturb:
	// the probe never draws from or reorders the seeded streams, so an
	// attached probe changes NO result bytes (pinned by the probed golden
	// replay tests); a nil probe costs one pointer check per site. The
	// probe's timer methods are driven from the run's goroutine — give
	// concurrent runs their own probes and merge the reports.
	Probe *obs.Probe
	// AdversaryFeedback, when the environment is an *env.Adversary, wires
	// the adversary's usefulness oracle to live agent state: an edge is
	// "useful" (and therefore cut first) exactly when its endpoints
	// currently hold different states. This realizes the paper's
	// strongest opponent — one that watches the computation — while the
	// fairness window keeps assumption (2) intact.
	AdversaryFeedback bool
}

// RoundInfo is the per-round progress report passed to Options.OnRound.
type RoundInfo struct {
	// Round is the round just executed (0-based).
	Round int
	// ActiveGroups is the number of groups (components or matched pairs)
	// that could act this round.
	ActiveGroups int
	// ProperSteps is how many of them changed state.
	ProperSteps int
	// H is the global variant value after the round.
	H float64
	// Converged reports whether the state equals the target.
	Converged bool
}

// DefaultMaxRounds bounds runs whose Options leave MaxRounds zero.
const DefaultMaxRounds = 10_000

// Result reports a simulation run.
type Result[T any] struct {
	// Converged reports whether the state reached the target f(S(0)).
	Converged bool
	// Round is the first round at which the target held (or the last
	// round executed when not converged).
	Round int
	// Rounds is the total number of rounds executed.
	Rounds int
	// GroupSteps counts proper (non-stutter) group steps.
	GroupSteps int
	// Messages estimates communication: 2(|B|−1) per proper component
	// step (gather + scatter along a spanning tree), 2 per proper pair
	// step.
	Messages int
	// Violations lists monitor failures (empty on a correct run).
	Violations []string
	// HTrace is the per-round global h (when Options.RecordH).
	HTrace []float64
	// Final holds the final agent states (positional).
	Final []T
	// Target is f(S(0)).
	Target ms.Multiset[T]
	// Probe reports the empirical fairness of the environment over the
	// run — whether assumption (2) actually held. With Options.Dynamics
	// set it measures the EFFECTIVE masks (environment composed with the
	// dynamics overlay) — what the agents actually experienced.
	Probe *env.FairnessProbe
	// Dynamics reports what the dynamics schedule did (nil when
	// Options.Dynamics was nil): crash/recover counts, heal rounds for
	// reconvergence metrics, masked-edge totals.
	Dynamics *dynamics.Report
}

// runner holds the engine state of a run: the shared engine-core pieces
// (monitor, convergence, seeder, pool) plus every scratch buffer the round
// loop reuses so that steady-state rounds allocate nothing. A runner lives
// inside a Scratch and survives from one run to the next — RunWith rebinds
// the per-run fields and hands the warm buffers straight to the next run.
type runner[T any] struct {
	p    core.Problem[T]
	e    env.Environment
	g    *graph.Graph
	opts Options
	cmp  ms.Cmp[T]

	// obs is the run's observability probe (nil = off). Named obs, not
	// probe: Result.Probe is the pre-existing env.FairnessProbe.
	obs *obs.Probe

	rc     *engine.RunContext
	mon    *engine.Monitor[T]
	conv   *engine.Convergence[T]
	seeder *engine.Seeder
	pool   *engine.Pool
	// Exactly one of tracker (single-tracker layout) and shards (sharded
	// layout) is non-nil during a run; see Options.Shards. Both point into
	// the Scratch's caches, which persist across runs.
	tracker *ms.Tracker[T]
	shards  *engine.Shards[T]

	states []T
	res    *Result[T]

	// Component-mode scratch. comps caches the most recent partition π;
	// compsValid marks it reusable for a quiescent round (no mask entry
	// changed), which skips the O(E) union-find pass entirely.
	compScratch graph.ComponentScratch
	comps       [][]int
	compsValid  bool
	jobs        []groupJob[T]
	beforeArena []T
	stepFn      func(worker, i int)

	// Changed-id stream scratch: the round's combined touched edge/agent
	// lists (environment StepDeltas ∪ previous round's dynamics overlay ∪
	// this round's overlay) and the saved copies of the overlay logs.
	touchedE, touchedA         []int
	prevOverlayE, prevOverlayA []int

	// Pairwise-mode scratch: the partitioned matcher (resolved per run
	// from the Scratch's cache), the round's pair jobs, and the fixed-size
	// views handed to classifyStep/applyDelta.
	matcher     *engine.PairMatcher
	pairJobs    []pairJob[T]
	pairStepFn  func(worker, i int)
	pairOld     [2]T
	pairNew     [2]T
	pairMembers [2]int

	// Proper-step detection scratch (sorted copies of a group's before and
	// after states, compared as zero-copy multiset views).
	sortA, sortB []T

	// Dynamics state (nil applier when Options.Dynamics is nil): the
	// schedule applier plus the crash-time snapshot of every frozen
	// agent's state, which the monitor's frozen-state check compares
	// against each round.
	dyn        *dynamics.Applier
	frozenVals []T

	// Membership state, populated only when the schedule joins agents or
	// wakes them amnesiacally: the full initial-state array (founding
	// population followed by joiners in join order — joiner values and
	// amnesiac resets both read it positionally), the growth-touched id
	// scratch folded into the round's changed-id stream, and the
	// amnesiac-reset repair batch.
	initVals     []T
	growE, growA []int
	amOlds       []T
	amNews       []T
}

// matcherKey identifies a cached PairMatcher: the matching it draws is a
// function of the graph and the block count, so one matcher serves every
// run over that pair.
type matcherKey struct {
	g      *graph.Graph
	blocks int
}

// maxCachedMatchers bounds a Scratch's pairwise-matcher cache; see the
// eviction comment in RunWith.
const maxCachedMatchers = 64

// Scratch is the borrowed warm-engine state RunWith executes against: a
// RunContext (persistent worker pool, per-worker streams) plus every
// engine-owned buffer a run reuses — the state tracker or shard set, the
// monitor's evaluation buffers, the group/pair job arenas, the component
// scratch, and a cache of pairwise matchers keyed by (graph, blocks).
//
// One Scratch belongs to one executing goroutine at a time. Handing the
// same Scratch to a sequence of runs (the scenario-sweep runner's warm
// workers do exactly this) makes every run after the first skip engine
// set-up allocations entirely; results are bit-identical to independent
// Run calls with the same Options, because nothing observable leaks from
// one run to the next — every reused structure is Reset to the state a
// fresh one would have, and all randomness restarts from Options.Seed.
type Scratch[T any] struct {
	rc *engine.RunContext
	r  runner[T]

	// Warm caches the runner binds per run.
	tracker  *ms.Tracker[T]
	shards   *engine.Shards[T]
	matchers map[matcherKey]*engine.PairMatcher
	dyn      *dynamics.Applier
}

// NewScratch builds an empty Scratch over the given RunContext. The
// context is borrowed, not owned: Scratches sharing a RunContext must not
// run concurrently, and closing the context is the caller's job.
func NewScratch[T any](rc *engine.RunContext) *Scratch[T] {
	return &Scratch[T]{rc: rc}
}

// groupJob is one group's step: members and before alias engine scratch
// and are valid for the current round only; after is produced by the
// problem's GroupStep.
type groupJob[T any] struct {
	members []int
	before  []T
	after   []T
	seed    int64
}

// pairJob is one matched pair's step. Like groupJob it carries a child
// seed drawn from the master stream in deterministic (matching) order, so
// the PairStep calls can run on any worker in any order without results
// depending on scheduling.
type pairJob[T any] struct {
	a, b       int
	oldA, oldB T
	newA, newB T
	seed       int64
}

// Run simulates problem p over environment e from the given initial
// (positional) agent states.
func Run[T any](p core.Problem[T], e env.Environment, initial []T, opts Options) (*Result[T], error) {
	rc := engine.NewRunContext(0)
	defer rc.Close()
	return RunWith(NewScratch[T](rc), p, e, initial, opts)
}

// RunWith is Run against borrowed scratch: it executes the identical
// algorithm — results are bit-for-bit what Run returns for the same
// arguments — but reuses the Scratch's warm engine state (pool workers,
// trackers, matchers, arenas, monitor buffers) instead of rebuilding it,
// so a sequence of runs on one Scratch pays engine set-up once. This is
// the entry point the scenario-sweep batch runner (internal/sweep)
// drives; Run itself is RunWith over a single-use Scratch.
func RunWith[T any](sc *Scratch[T], p core.Problem[T], e env.Environment, initial []T, opts Options) (*Result[T], error) {
	g := e.Graph()
	// A join-bearing schedule enlarges the population mid-run: the caller
	// supplies initial states for the FINAL population — founding agents
	// first, then joiners in join order — and growth mutates the run's
	// graph in place (sweep cells clone the pristine topology per run).
	joiners := 0
	if opts.Dynamics != nil {
		joiners = opts.Dynamics.TotalJoiners()
	}
	if len(initial) != g.N()+joiners {
		if joiners > 0 {
			return nil, fmt.Errorf("sim: %d initial states for %d agents + %d scheduled joiners", len(initial), g.N(), joiners)
		}
		return nil, fmt.Errorf("sim: %d initial states for %d agents", len(initial), g.N())
	}
	if joiners > 0 {
		if _, ok := e.(env.Growable); !ok {
			return nil, fmt.Errorf("sim: dynamics schedule adds %d agents but environment %q cannot grow (env.Growable)", joiners, e.Name())
		}
	}
	if g.N() == 0 {
		return nil, errors.New("sim: empty system")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	threshold := opts.ParallelThreshold
	switch {
	case threshold == 0:
		threshold = DefaultParallelThreshold
	case threshold < 0:
		threshold = int(^uint(0) >> 1) // never engage: serial rounds
	}

	r := &sc.r
	r.rc = sc.rc
	r.p, r.e, r.g, r.opts, r.cmp = p, e, g, opts, p.Cmp()
	r.states = append(r.states[:0], initial[:g.N()]...)
	r.initVals = r.initVals[:0]
	if joiners > 0 || (opts.Dynamics != nil && opts.Dynamics.Amnesiac()) {
		r.initVals = append(r.initVals, initial...)
	}
	r.growE, r.growA = r.growE[:0], r.growA[:0]
	if r.seeder == nil {
		r.seeder = engine.NewSeeder(opts.Seed)
	} else {
		r.seeder.Reset(opts.Seed)
	}
	r.pool = sc.rc.Pool()
	r.pool.SetThreshold(threshold)
	// Rebind the observability probe every run: a nil opts.Probe must also
	// CLEAR any probe a previous run on this warm scratch attached.
	r.obs = opts.Probe
	r.pool.SetProbe(opts.Probe)
	r.tracker, r.shards = nil, nil
	switch shardCount := resolveShards(opts.Shards, g.N()); {
	case shardCount > 0:
		if sc.shards == nil {
			sc.shards = engine.NewShards(r.cmp, r.states, shardCount)
		} else {
			sc.shards.Reset(r.cmp, r.states, shardCount)
		}
		r.shards = sc.shards
	default:
		if sc.tracker == nil {
			sc.tracker = ms.NewTracker(r.cmp, r.states)
		} else {
			sc.tracker.Reset(r.cmp, r.states)
		}
		r.tracker = sc.tracker
	}
	if sc.shards != nil {
		// Rebound even when this run uses the single-tracker layout, so a
		// stale probe from a previous sharded run never outlives its run.
		sc.shards.SetProbe(opts.Probe)
	}
	if r.mon == nil {
		r.mon = engine.NewMonitor(p, r.snapshot(), opts.HEps)
	} else {
		r.mon.Reset(p, r.snapshot(), opts.HEps)
	}
	r.conv = engine.NewConvergence(p.Equal, r.mon.Target())
	r.res = &Result[T]{Target: r.mon.Target(), Probe: env.NewFairnessProbe(g.M())}
	if r.stepFn == nil {
		// Built once per Scratch: the closures capture the runner, whose
		// per-run fields are rebound above, so they serve every run.
		r.stepFn = func(worker, i int) {
			j := &r.jobs[i]
			j.after = r.p.GroupStep(j.before, r.rc.WorkerRand(worker, j.seed))
		}
		r.pairStepFn = func(worker, i int) {
			j := &r.pairJobs[i]
			j.newA, j.newB = r.p.PairStep(j.oldA, j.oldB, r.rc.WorkerRand(worker, j.seed))
		}
	}
	r.dyn = nil
	if opts.Dynamics != nil {
		if sc.dyn == nil {
			sc.dyn = opts.Dynamics.NewApplier(g, opts.Seed)
		} else {
			sc.dyn.Reset(opts.Dynamics, g, opts.Seed)
		}
		r.dyn = sc.dyn
		// Crash-time state snapshots, indexed by agent; only the entries
		// of currently frozen agents are meaningful.
		if cap(r.frozenVals) < g.N() {
			r.frozenVals = make([]T, g.N())
		}
		r.frozenVals = r.frozenVals[:g.N()]
	}

	r.matcher = nil
	if opts.Mode == PairwiseMode {
		key := matcherKey{g, resolveMatchBlocks(opts.MatchBlocks, g.N())}
		if sc.matchers == nil {
			sc.matchers = make(map[matcherKey]*engine.PairMatcher)
		}
		if sc.matchers[key] == nil {
			// The cache is bounded: a long-lived Scratch sweeping many
			// distinct graphs must not retain an O(E) matcher (and pin its
			// graph) per key forever. Eviction is wholesale — cache misses
			// change set-up cost only, never results — and the bound is
			// far above the distinct (graph, blocks) pairs of any one
			// scenario grid, so steady-state sweeps never evict.
			if len(sc.matchers) >= maxCachedMatchers {
				clear(sc.matchers)
			}
			sc.matchers[key] = engine.NewPairMatcher(key.g, key.blocks)
		}
		r.matcher = sc.matchers[key]
		// A cached matcher may have been built before its graph last grew
		// (a previous run's join); Grow is a generation-checked no-op when
		// it is current.
		r.matcher.Grow()
	}

	if opts.AdversaryFeedback {
		if ad, ok := e.(*env.Adversary); ok {
			ad.SetUseful(func(edge graph.Edge) float64 {
				if r.cmp(r.states[edge.A], r.states[edge.B]) != 0 {
					return 1
				}
				return 0
			})
		}
	}

	res := r.res
	if r.conv.Observe(0, r.snapshot()) {
		res.Converged = true
	}

	// Delta-capable environments report which mask entries each Step may
	// have changed; the engine folds those ids with the dynamics overlay
	// logs into one changed-id stream that drives the fairness probe, the
	// matcher's usable-edge index, and the quiescent-partition reuse —
	// keeping steady-state round overhead proportional to what changed.
	delta, _ := e.(env.DeltaEnvironment)
	r.compsValid = false
	r.touchedE, r.touchedA = r.touchedE[:0], r.touchedA[:0]
	r.prevOverlayE, r.prevOverlayA = r.prevOverlayE[:0], r.prevOverlayA[:0]

	rng := r.seeder.Master()
	round := 0
	for ; round < maxRounds; round++ {
		// A converged run with joins still pending keeps going: the join
		// retargets convergence to the final population's S*.
		if res.Converged && opts.StopOnConverged && (r.dyn == nil || !r.dyn.PendingJoins()) {
			break
		}
		r.obs.BeginRound(round)
		// Population growth first — joiners participate in the very round
		// they arrive: the graph attaches them, the environment, matcher,
		// probe, and state snapshot grow in place, and the conservation
		// target is extended per §3.4 (f(f(X) ∪ Y) = f(X ∪ Y)).
		if r.dyn != nil {
			r.obs.Begin(obs.PhaseDynamics)
			if gr, ok := r.dyn.GrowthFor(round); ok {
				r.applyGrowth(gr, round)
			}
			r.obs.End(obs.PhaseDynamics)
		}
		// Environment transition, then the dynamics overlay: the schedule
		// fires this round's events and masks its cut edges and crashed
		// agents on top of whatever the environment produced (writing
		// false to exactly the suppressed up-entries; EndRound below
		// undoes exactly those writes before the environment's next
		// Step). The probe therefore observes the effective masks.
		r.obs.Begin(obs.PhaseEnvStep)
		es := e.Step(round, rng)
		exact := false
		var envE, envA []int
		if delta != nil {
			envE, envA, exact = delta.StepDeltas()
		}
		r.obs.End(obs.PhaseEnvStep)
		if r.dyn != nil {
			r.obs.Begin(obs.PhaseDynamics)
			es = r.dyn.BeginRound(round, es)
			for _, a := range r.dyn.JustCrashed() {
				r.frozenVals[a] = r.states[a]
			}
			// Amnesiac rejoins: every agent woken this round re-enters with
			// its INITIAL state (§3.4's re-entry model) — a sanctioned
			// discontinuity, so the variant baseline is rebased; whether the
			// conservation law survives it is exactly what the monitor then
			// measures (it does iff f is super-idempotent).
			if r.dyn.Amnesiac() && len(r.dyn.JustWoken()) > 0 {
				r.applyAmnesia(r.dyn.JustWoken())
			}
			r.obs.End(obs.PhaseDynamics)
		}
		r.obs.Begin(obs.PhaseTouched)
		// Combined touched ids for the effective (post-overlay) masks: the
		// environment's own flips, plus everything the previous round's
		// overlay restored at EndRound, plus everything this round's
		// overlay just suppressed, plus this round's growth (new and
		// retired edges, new agents). Only meaningful when exact.
		r.touchedE, r.touchedA = r.touchedE[:0], r.touchedA[:0]
		if exact {
			r.touchedE = append(append(append(append(r.touchedE, envE...), r.prevOverlayE...), r.curOverlayE()...), r.growE...)
			r.touchedA = append(append(append(append(r.touchedA, envA...), r.prevOverlayA...), r.curOverlayA()...), r.growA...)
		}
		r.growE, r.growA = r.growE[:0], r.growA[:0]
		if exact {
			res.Probe.ObserveDelta(es, r.touchedE)
		} else {
			res.Probe.Observe(es)
		}
		if r.obs != nil {
			r.obs.Add(obs.CounterTouchedEdges, int64(len(r.touchedE)))
			r.obs.Add(obs.CounterTouchedAgents, int64(len(r.touchedA)))
		}
		r.obs.End(obs.PhaseTouched)

		// Agents transition: groups step concurrently.
		stepsBefore := res.GroupSteps
		var activeGroups int
		switch opts.Mode {
		case PairwiseMode:
			activeGroups = r.stepPairs(es, rng, exact)
		default:
			activeGroups = r.stepComponents(es, exact)
		}
		if r.obs != nil {
			r.obs.Add(obs.CounterGroups, int64(activeGroups))
		}

		// Global monitors: conservation law and variant descent, on the
		// incrementally maintained snapshot. The sharded layout first
		// applies the round's staged deltas (one parallel repair per
		// shard) and then reduces the per-shard views.
		var now ms.Multiset[T]
		var nowH float64
		r.obs.Begin(obs.PhaseMonitor)
		if r.shards != nil {
			r.shards.Flush(r.pool)
			now = r.shards.View()
			nowH = r.mon.ObserveRoundSharded(round, now, r.shards, r.pool)
		} else {
			now = r.tracker.View()
			nowH = r.mon.ObserveRound(round, now)
		}
		r.obs.End(obs.PhaseMonitor)
		if opts.RecordH {
			res.HTrace = append(res.HTrace, nowH)
		}

		if r.dyn != nil {
			r.obs.Begin(obs.PhaseDynamics)
			// Frozen-state conservation: a crashed agent was excluded from
			// every group and matching this round, so its state must still
			// equal its crash-time snapshot.
			r.mon.CheckFrozen(round, r.cmp, r.dyn.Frozen(), r.frozenVals, r.states)
			// EndRound is about to undo this round's overlay writes; copy
			// the logs first so next round's touched set can cover the
			// restored entries (the overlay buffers are reused).
			r.prevOverlayE = append(r.prevOverlayE[:0], r.dyn.OverlayEdges()...)
			r.prevOverlayA = append(r.prevOverlayA[:0], r.dyn.OverlayAgents()...)
			r.dyn.EndRound()
			r.obs.End(obs.PhaseDynamics)
		}

		if r.conv.Observe(round+1, now) {
			res.Converged = true
			res.Round = round + 1
		}
		if opts.OnRound != nil {
			opts.OnRound(RoundInfo{
				Round: round, ActiveGroups: activeGroups,
				ProperSteps: res.GroupSteps - stepsBefore,
				H:           nowH, Converged: res.Converged,
			})
		}
	}
	res.Rounds = round
	if !res.Converged {
		res.Round = round
	}
	// The state buffer is scratch-owned and will be overwritten by the
	// next run; the Result gets its own copy (same one-allocation cost the
	// single-use path always paid for its initial-state copy).
	res.Final = append(make([]T, 0, len(r.states)), r.states...)
	res.Violations = r.mon.Violations()
	if r.dyn != nil {
		rep := r.dyn.Report()
		res.Dynamics = &rep
	}
	return res, nil
}

// resolveMatchBlocks maps Options.MatchBlocks to the pairwise matcher's
// block count for n agents (n ≥ 1; the matcher clamps to [1, n]).
func resolveMatchBlocks(opt, n int) int {
	switch {
	case opt < 0:
		return 1
	case opt > 0:
		return opt
	default:
		return (n + DefaultMatchBlockAgents - 1) / DefaultMatchBlockAgents
	}
}

// resolveShards maps Options.Shards to a shard count for n agents: 0 when
// the single-tracker layout should be used, otherwise the number of
// shards for the sharded layout.
func resolveShards(opt, n int) int {
	switch {
	case opt < 0:
		return 0
	case opt > 0:
		if opt > n {
			return n
		}
		return opt
	case n >= DefaultShardThreshold:
		return goruntime.GOMAXPROCS(0)
	default:
		return 0
	}
}

// curOverlayE returns this round's dynamics overlay edge log (the edge
// ids whose up-entries the overlay just suppressed), or nil without a
// schedule. Valid until EndRound.
func (r *runner[T]) curOverlayE() []int {
	if r.dyn == nil {
		return nil
	}
	return r.dyn.OverlayEdges()
}

// curOverlayA is curOverlayE for agents.
func (r *runner[T]) curOverlayA() []int {
	if r.dyn == nil {
		return nil
	}
	return r.dyn.OverlayAgents()
}

// snapshot returns the current global state multiset as a zero-copy view,
// invalidated by the next state mutation (or, in the sharded layout, the
// next snapshot call).
func (r *runner[T]) snapshot() ms.Multiset[T] {
	if r.shards != nil {
		return r.shards.View()
	}
	return r.tracker.View()
}

// applyDelta repairs the incremental snapshot after a group step (olds
// and news are parallel slices along members). The single-tracker layout
// repairs immediately, and only when the GROUP multiset changed — the
// caller's `changed` — because a multiset-preserving permutation of the
// group leaves the global multiset intact. The sharded layout must be
// called for every executed step regardless: a permutation that crosses
// shard boundaries (a swap stutter) changes the per-shard multisets even
// though the group multiset is unchanged, so each member whose own value
// changed is staged with its owning shard.
func (r *runner[T]) applyDelta(members []int, olds, news []T, changed bool) {
	if r.shards == nil {
		if changed {
			r.tracker.Replace(olds, news)
		}
		return
	}
	for i, a := range members {
		if r.cmp(olds[i], news[i]) != 0 {
			r.shards.Stage(a, olds[i], news[i])
		}
	}
}

// applyGrowth threads one round's population growth through every layer
// that was sized to the old population: the environment's masks, the
// fairness probe, the positional state array and its incremental
// snapshot (appended, never rebuilt — last-shard rule), the pairwise
// matcher's buckets, the conservation target (§3.4), the convergence
// detector, and the variant baseline. The graph itself already grew —
// the applier's GrowthFor mutated it through the incremental attachment
// paths — so this is purely the engine-side catch-up, O(growth), not
// O(population).
func (r *runner[T]) applyGrowth(gr graph.Growth, round int) {
	r.e.(env.Growable).Grow() // guaranteed Growable by the RunWith gate
	r.res.Probe.Grow(r.g.M(), round)
	joined := r.initVals[gr.FirstAgent : gr.FirstAgent+gr.NewAgents]
	r.states = append(r.states, joined...)
	if r.shards != nil {
		r.shards.Append(joined)
	} else {
		r.tracker.Append(joined)
	}
	var zero T
	for len(r.frozenVals) < r.g.N() {
		r.frozenVals = append(r.frozenVals, zero)
	}
	if r.matcher != nil {
		r.matcher.Grow()
	}
	// The run now answers for the FINAL population: the target absorbs
	// the joiners' values (exact for super-idempotent f), convergence
	// restarts against the new target, and the variant baseline restarts
	// from the grown state (fresh input may legitimately raise h).
	r.mon.AdmitJoin(joined)
	r.conv.Retarget(r.mon.Target())
	r.res.Target = r.mon.Target()
	r.res.Converged = false
	r.mon.RebaseVariant(r.snapshot())
	// Feed the structural delta into this round's changed-id stream and
	// drop the cached partition — growth touched it.
	r.growE = append(append(r.growE, gr.NewEdgeIDs...), gr.RetiredEdgeIDs...)
	for a := gr.FirstAgent; a < gr.FirstAgent+gr.NewAgents; a++ {
		r.growA = append(r.growA, a)
	}
	r.compsValid = false
}

// applyAmnesia resets every agent woken this round to its initial state
// and repairs the incremental snapshot accordingly. The sharded layout
// stages and flushes immediately so the round's own group steps still
// stage each agent at most once per flush; the single-tracker layout
// batches one Replace. The variant baseline is rebased because the reset
// is a sanctioned discontinuity — the conservation law is deliberately
// NOT touched, so the monitor reports exactly the violations §3.4
// predicts for non-super-idempotent f.
func (r *runner[T]) applyAmnesia(woken []int) {
	r.amOlds, r.amNews = r.amOlds[:0], r.amNews[:0]
	changed := false
	for _, a := range woken {
		if r.cmp(r.states[a], r.initVals[a]) == 0 {
			continue // the frozen state IS the initial state: nothing to repair
		}
		changed = true
		if r.shards != nil {
			r.shards.Stage(a, r.states[a], r.initVals[a])
		} else {
			r.amOlds = append(r.amOlds, r.states[a])
			r.amNews = append(r.amNews, r.initVals[a])
		}
		r.states[a] = r.initVals[a]
	}
	if !changed {
		return
	}
	if r.shards != nil {
		r.shards.Flush(r.pool)
	} else {
		r.tracker.Replace(r.amOlds, r.amNews)
	}
	r.mon.RebaseVariant(r.snapshot())
}

// classifyStep compares a group's before and after states as multisets.
// proper reports a change under the problem's equality (tolerance-aware
// for geometry) — these count as group steps; changed reports any change
// under the total order cmp — these must repair the incremental snapshot
// even when tolerance calls them stutters, because the positional states
// did change. It sorts scratch copies and compares zero-copy views, so the
// hot path allocates nothing.
func (r *runner[T]) classifyStep(before, after []T) (proper, changed bool) {
	r.sortA = append(r.sortA[:0], before...)
	r.sortB = append(r.sortB[:0], after...)
	slices.SortFunc(r.sortA, r.cmp)
	slices.SortFunc(r.sortB, r.cmp)
	for i := range r.sortA {
		if r.cmp(r.sortA[i], r.sortB[i]) != 0 {
			changed = true
			break
		}
	}
	proper = !r.p.Equal(ms.View(r.cmp, r.sortA), ms.View(r.cmp, r.sortB))
	return proper, changed
}

// stepComponents runs one ComponentMode round: every connected component
// of up agents executes one group step; the worker pool runs components
// concurrently when the round is large enough (groups are disjoint, so
// writes never overlap).
func (r *runner[T]) stepComponents(es env.State, exact bool) int {
	// Quiescent-round memo: when the changed-id stream proves no mask
	// entry moved since the previous round, the partition is byte-for-byte
	// the previous one — reuse it and skip the O(E) union-find pass. The
	// per-group seed draws below still happen in the same partition order,
	// so the master-stream positions (and hence results) are unchanged.
	// Component mode's group formation is the partition derivation, so it
	// times under PhaseMatch (memo hits make it near-free on quiescent
	// rounds — visible in the phase table as sub-µs match segments).
	r.obs.Begin(obs.PhaseMatch)
	if !exact || len(r.touchedE) > 0 || len(r.touchedA) > 0 || !r.compsValid {
		r.comps = r.g.ComponentsInto(es.EdgeUp, es.AgentUp, &r.compScratch)
		r.compsValid = true
	}
	comps := r.comps
	r.obs.End(obs.PhaseMatch)

	r.obs.Begin(obs.PhaseGroupStep)
	r.jobs = r.jobs[:0]
	arena := r.beforeArena[:0]
	for _, comp := range comps {
		// Disabled agents form singleton components that take no action;
		// any component containing a down agent is necessarily that
		// singleton (components never join down agents).
		if len(comp) == 1 && !es.AgentUp.IsZero() && !es.AgentUp.Get(comp[0]) {
			continue
		}
		start := len(arena)
		for _, a := range comp {
			arena = append(arena, r.states[a])
		}
		// Deterministic per-group randomness independent of worker
		// scheduling: child seeds are drawn from the master stream in group
		// order (groups are deterministically ordered by smallest member).
		r.jobs = append(r.jobs, groupJob[T]{
			members: comp,
			before:  arena[start:len(arena):len(arena)],
			seed:    r.seeder.GroupSeed(),
		})
	}
	r.beforeArena = arena[:0]

	r.pool.Do(len(r.jobs), r.stepFn)

	for i := range r.jobs {
		j := &r.jobs[i]
		if r.opts.CheckSteps {
			beforeM := ms.New(r.cmp, j.before...)
			afterM := ms.New(r.cmp, j.after...)
			if v := r.mon.VerifyStep(beforeM, afterM); !v.OK {
				r.mon.AddViolation("group %v: %v", j.members, v)
			}
		}
		proper, changed := r.classifyStep(j.before, j.after)
		if proper {
			r.res.GroupSteps++
			r.res.Messages += 2 * (len(j.members) - 1)
		}
		r.applyDelta(j.members, j.before, j.after, changed)
		for idx, a := range j.members {
			r.states[a] = j.after[idx]
		}
	}
	r.obs.End(obs.PhaseGroupStep)
	return len(r.jobs)
}

// stepPairs runs one PairwiseMode round: the round's changed-id stream
// repairs the matcher's usable-edge index (O(changes) when the stream is
// exact, one O(E) rescan otherwise), then the partitioned matcher draws a
// random maximal matching over the usable edges (per-block interior
// matchings fan out across the pool, level-scheduled boundary pairs
// complete maximality — see engine.PairMatcher), then each matched pair
// executes one PairStep on a private stream seeded in matching order,
// exactly as component groups do. Master-stream consumption is one draw
// for the matching seed plus one child-seed draw per matched pair,
// independent of the state layout and the pool, so results are
// bit-identical for every Shards/ParallelThreshold/GOMAXPROCS
// combination.
func (r *runner[T]) stepPairs(es env.State, rng *rand.Rand, exact bool) int {
	r.obs.Begin(obs.PhaseMatcherUpdate)
	r.matcher.Update(es.EdgeUp, es.AgentUp, r.touchedE, r.touchedA, exact)
	r.obs.End(obs.PhaseMatcherUpdate)
	r.obs.Begin(obs.PhaseMatch)
	matched := r.matcher.Match(rng.Int63(), r.pool)
	r.obs.End(obs.PhaseMatch)
	if r.obs != nil {
		r.obs.Add(obs.CounterMatchedPairs, int64(len(matched)))
	}

	r.obs.Begin(obs.PhaseGroupStep)
	r.pairJobs = r.pairJobs[:0]
	for _, id := range matched {
		e := r.matcher.Edge(id)
		r.pairJobs = append(r.pairJobs, pairJob[T]{
			a: e.A, b: e.B,
			oldA: r.states[e.A], oldB: r.states[e.B],
			seed: r.seeder.GroupSeed(),
		})
	}

	r.pool.Do(len(r.pairJobs), r.pairStepFn)

	for i := range r.pairJobs {
		j := &r.pairJobs[i]
		if r.opts.CheckSteps {
			beforeM := ms.New(r.cmp, j.oldA, j.oldB)
			afterM := ms.New(r.cmp, j.newA, j.newB)
			if v := r.mon.VerifyStep(beforeM, afterM); !v.OK {
				r.mon.AddViolation("pair (%d,%d): %v", j.a, j.b, v)
			}
		}
		r.pairOld[0], r.pairOld[1] = j.oldA, j.oldB
		r.pairNew[0], r.pairNew[1] = j.newA, j.newB
		r.pairMembers[0], r.pairMembers[1] = j.a, j.b
		proper, changed := r.classifyStep(r.pairOld[:], r.pairNew[:])
		if proper {
			r.res.GroupSteps++
			r.res.Messages += 2
		}
		r.applyDelta(r.pairMembers[:], r.pairOld[:], r.pairNew[:], changed)
		r.states[j.a], r.states[j.b] = j.newA, j.newB
	}
	r.obs.End(obs.PhaseGroupStep)
	return len(r.pairJobs)
}

// Converges is a convenience wrapper for tests and experiments: it runs
// the simulation and reports whether it converged without violations,
// with diagnostics when it did not.
func Converges[T any](p core.Problem[T], e env.Environment, initial []T, opts Options) (*Result[T], error) {
	res, err := Run(p, e, initial, opts)
	if err != nil {
		return nil, err
	}
	if len(res.Violations) > 0 {
		return res, fmt.Errorf("sim: %d monitor violations; first: %s", len(res.Violations), res.Violations[0])
	}
	return res, nil
}

// TraceH runs with RecordH and returns the h trajectory alongside the
// result, ensuring the trace is monotone non-increasing (the global
// reading of the improvement discipline) — a logic.Monotone check
// packaged for experiments.
func TraceH[T any](p core.Problem[T], e env.Environment, initial []T, opts Options) (*Result[T], error) {
	opts.RecordH = true
	res, err := Run(p, e, initial, opts)
	if err != nil {
		return nil, err
	}
	tr := logic.Trace[float64](res.HTrace)
	if i := logic.MonotoneViolation(tr, func(v float64) float64 { return v }); i >= 0 {
		return res, fmt.Errorf("sim: h trace increased at round %d", i)
	}
	return res, nil
}
