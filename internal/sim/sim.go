// Package sim is the round-based simulation engine for dynamic distributed
// systems, implementing the paper's execution model (§2.1).
//
// A system transition is either an environment transition or an agents
// transition; the engine alternates them. Each round:
//
//  1. the environment transitions (env.Environment.Step), yielding the set
//     of available edges and enabled agents;
//  2. the partition π of agents is derived: the connected components of
//     the enabled subgraph (a disabled agent is a singleton group that
//     takes no action — it "executes no actions and does not change
//     state");
//  3. every group in π executes one collaborative step of R concurrently
//     (one goroutine per group — groups are disjoint, so the paper's
//     "disjoint sets of agents can execute the algorithm concurrently" is
//     realized literally).
//
// Self-similarity is structural: a group step sees nothing but the states
// of the group's own members, and the same GroupStep code runs for every
// group of every size.
//
// The engine doubles as a runtime verifier. With Options.CheckSteps it
// checks that every executed group step is a D-step (proof obligation
// "R implements D" of §3.7), and it always monitors the conservation law
// f(S) = S* (§3.2) and the monotone descent of the variant h on the global
// state. Violations are recorded in the Result and fail tests.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/graph"
	"repro/internal/logic"
	ms "repro/internal/multiset"
)

// Mode selects how groups execute steps each round.
type Mode int

const (
	// ComponentMode gives every connected component one collaborative
	// group step per round (the fastest refinement of D the environment
	// allows — "efficient computations in benign environments").
	ComponentMode Mode = iota
	// PairwiseMode restricts interaction to a random maximal matching
	// over the available edges, one PairStep per matched edge: classic
	// gossip, the minimal refinement. Used by the ablation experiments
	// and by problems (like sum) whose environment assumptions are
	// stated pairwise.
	PairwiseMode
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ComponentMode:
		return "component"
	case PairwiseMode:
		return "pairwise"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a simulation run.
type Options struct {
	// MaxRounds bounds the run; 0 means the DefaultMaxRounds.
	MaxRounds int
	// Seed drives all randomness (environment and steps); runs are
	// reproducible bit for bit.
	Seed int64
	// Mode selects component-wide or pairwise steps.
	Mode Mode
	// CheckSteps verifies every group step is a D-step (slower; on in
	// tests, off in benchmarks unless measuring the monitor).
	CheckSteps bool
	// HEps is the strict-decrease slack for D-step checking (0 for exact
	// integer variants; geometry problems pass a small tolerance).
	HEps float64
	// RecordH records the global h value after every round.
	RecordH bool
	// StopOnConverged stops as soon as the state multiset equals the
	// target f(S(0)). When false the run continues to MaxRounds,
	// verifying stability of the goal state (spec (4)).
	StopOnConverged bool
	// OnRound, when non-nil, is called after every round with live
	// progress — used by examples and the experiment harness to trace
	// runs without retaining full traces.
	OnRound func(RoundInfo)
	// AdversaryFeedback, when the environment is an *env.Adversary, wires
	// the adversary's usefulness oracle to live agent state: an edge is
	// "useful" (and therefore cut first) exactly when its endpoints
	// currently hold different states. This realizes the paper's
	// strongest opponent — one that watches the computation — while the
	// fairness window keeps assumption (2) intact.
	AdversaryFeedback bool
}

// RoundInfo is the per-round progress report passed to Options.OnRound.
type RoundInfo struct {
	// Round is the round just executed (0-based).
	Round int
	// ActiveGroups is the number of groups (components or matched pairs)
	// that could act this round.
	ActiveGroups int
	// ProperSteps is how many of them changed state.
	ProperSteps int
	// H is the global variant value after the round.
	H float64
	// Converged reports whether the state equals the target.
	Converged bool
}

// DefaultMaxRounds bounds runs whose Options leave MaxRounds zero.
const DefaultMaxRounds = 10_000

// Result reports a simulation run.
type Result[T any] struct {
	// Converged reports whether the state reached the target f(S(0)).
	Converged bool
	// Round is the first round at which the target held (or the last
	// round executed when not converged).
	Round int
	// Rounds is the total number of rounds executed.
	Rounds int
	// GroupSteps counts proper (non-stutter) group steps.
	GroupSteps int
	// Messages estimates communication: 2(|B|−1) per proper component
	// step (gather + scatter along a spanning tree), 2 per proper pair
	// step.
	Messages int
	// Violations lists monitor failures (empty on a correct run).
	Violations []string
	// HTrace is the per-round global h (when Options.RecordH).
	HTrace []float64
	// Final holds the final agent states (positional).
	Final []T
	// Target is f(S(0)).
	Target ms.Multiset[T]
	// Probe reports the empirical fairness of the environment over the
	// run — whether assumption (2) actually held.
	Probe *env.FairnessProbe
}

// Run simulates problem p over environment e from the given initial
// (positional) agent states.
func Run[T any](p core.Problem[T], e env.Environment, initial []T, opts Options) (*Result[T], error) {
	g := e.Graph()
	if len(initial) != g.N() {
		return nil, fmt.Errorf("sim: %d initial states for %d agents", len(initial), g.N())
	}
	if g.N() == 0 {
		return nil, errors.New("sim: empty system")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	states := make([]T, len(initial))
	copy(states, initial)
	cmp := p.Cmp()
	f, h := p.F(), p.H()

	target := f.Apply(ms.New(cmp, states...))
	res := &Result[T]{Target: target, Probe: env.NewFairnessProbe(g.M())}

	if opts.AdversaryFeedback {
		if ad, ok := e.(*env.Adversary); ok {
			ad.SetUseful(func(edge graph.Edge) float64 {
				if cmp(states[edge.A], states[edge.B]) != 0 {
					return 1
				}
				return 0
			})
		}
	}

	snapshot := func() ms.Multiset[T] { return ms.New(cmp, states...) }
	lastH := h.Value(snapshot())

	if p.Equal(snapshot(), target) {
		res.Converged = true
	}

	round := 0
	for ; round < maxRounds; round++ {
		if res.Converged && opts.StopOnConverged {
			break
		}
		// Environment transition.
		es := e.Step(round, rng)
		res.Probe.Observe(es)

		// Agents transition: groups step concurrently.
		stepsBefore := res.GroupSteps
		var activeGroups int
		switch opts.Mode {
		case PairwiseMode:
			activeGroups = res.stepPairs(p, g.Edges(), es, states, rng, opts)
		default:
			activeGroups = res.stepComponents(p, e, es, states, rng, opts)
		}

		// Global monitors: conservation law and variant descent.
		now := snapshot()
		if !p.Equal(f.Apply(now), target) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("round %d: conservation law violated: f(S) ≠ S*", round))
		}
		nowH := h.Value(now)
		if nowH > lastH+opts.HEps {
			res.Violations = append(res.Violations,
				fmt.Sprintf("round %d: variant increased %g → %g", round, lastH, nowH))
		}
		lastH = nowH
		if opts.RecordH {
			res.HTrace = append(res.HTrace, nowH)
		}

		if !res.Converged && p.Equal(now, target) {
			res.Converged = true
			res.Round = round + 1
		}
		if opts.OnRound != nil {
			opts.OnRound(RoundInfo{
				Round: round, ActiveGroups: activeGroups,
				ProperSteps: res.GroupSteps - stepsBefore,
				H:           nowH, Converged: res.Converged,
			})
		}
	}
	res.Rounds = round
	if !res.Converged {
		res.Round = round
	}
	res.Final = states
	return res, nil
}

// stepComponents runs one ComponentMode round: every connected component
// of up agents executes one group step, concurrently (one goroutine per
// group; groups are disjoint, so writes never overlap).
func (res *Result[T]) stepComponents(p core.Problem[T], e env.Environment,
	es env.State, states []T, rng *rand.Rand, opts Options) int {
	g := e.Graph()
	comps := g.Components(es.EdgeUp, es.AgentUp)

	type groupResult struct {
		members []int
		before  []T
		after   []T
	}
	results := make([]groupResult, 0, len(comps))
	for _, comp := range comps {
		// Disabled agents form singleton components that take no action;
		// any component containing a down agent is necessarily that
		// singleton (Components never joins down agents).
		if len(comp) == 1 && es.AgentUp != nil && !es.AgentUp[comp[0]] {
			continue
		}
		before := make([]T, len(comp))
		for i, a := range comp {
			before[i] = states[a]
		}
		results = append(results, groupResult{members: comp, before: before})
	}

	var wg sync.WaitGroup
	for i := range results {
		gr := &results[i]
		// Deterministic per-group randomness independent of goroutine
		// scheduling: derive a child seed from the master stream in group
		// order (groups are deterministically ordered by smallest member).
		childSeed := rng.Int63()
		wg.Add(1)
		go func() {
			defer wg.Done()
			gr.after = p.GroupStep(gr.before, rand.New(rand.NewSource(childSeed)))
		}()
	}
	wg.Wait()

	cmp := p.Cmp()
	for _, gr := range results {
		beforeM := ms.New(cmp, gr.before...)
		afterM := ms.New(cmp, gr.after...)
		if opts.CheckSteps {
			if v := core.CheckDStep(p.F(), p.H(), p.Equal, beforeM, afterM, opts.HEps); !v.OK {
				res.Violations = append(res.Violations,
					fmt.Sprintf("group %v: %v", gr.members, v))
			}
		}
		if !p.Equal(beforeM, afterM) {
			res.GroupSteps++
			res.Messages += 2 * (len(gr.members) - 1)
		}
		for i, a := range gr.members {
			states[a] = gr.after[i]
		}
	}
	return len(results)
}

// stepPairs runs one PairwiseMode round: a random maximal matching over
// the available edges; each matched pair executes one PairStep.
func (res *Result[T]) stepPairs(p core.Problem[T], edges []graph.Edge,
	es env.State, states []T, rng *rand.Rand, opts Options) int {
	// Collect usable edges (available, both endpoints up).
	usable := make([]int, 0, len(edges))
	for id := range edges {
		if es.EdgeUp != nil && !es.EdgeUp[id] {
			continue
		}
		a, b := edges[id].A, edges[id].B
		if es.AgentUp != nil && (!es.AgentUp[a] || !es.AgentUp[b]) {
			continue
		}
		usable = append(usable, id)
	}
	rng.Shuffle(len(usable), func(i, j int) { usable[i], usable[j] = usable[j], usable[i] })
	matched := make(map[int]bool, len(states))
	pairs := 0
	cmp := p.Cmp()
	for _, id := range usable {
		a, b := edges[id].A, edges[id].B
		if matched[a] || matched[b] {
			continue
		}
		matched[a], matched[b] = true, true
		na, nb := p.PairStep(states[a], states[b], rng)
		beforeM := ms.New(cmp, states[a], states[b])
		afterM := ms.New(cmp, na, nb)
		if opts.CheckSteps {
			if v := core.CheckDStep(p.F(), p.H(), p.Equal, beforeM, afterM, opts.HEps); !v.OK {
				res.Violations = append(res.Violations,
					fmt.Sprintf("pair (%d,%d): %v", a, b, v))
			}
		}
		if !p.Equal(beforeM, afterM) {
			res.GroupSteps++
			res.Messages += 2
		}
		states[a], states[b] = na, nb
		pairs++
	}
	return pairs
}

// Converges is a convenience wrapper for tests and experiments: it runs
// the simulation and reports whether it converged without violations,
// with diagnostics when it did not.
func Converges[T any](p core.Problem[T], e env.Environment, initial []T, opts Options) (*Result[T], error) {
	res, err := Run(p, e, initial, opts)
	if err != nil {
		return nil, err
	}
	if len(res.Violations) > 0 {
		return res, fmt.Errorf("sim: %d monitor violations; first: %s", len(res.Violations), res.Violations[0])
	}
	return res, nil
}

// TraceH runs with RecordH and returns the h trajectory alongside the
// result, ensuring the trace is monotone non-increasing (the global
// reading of the improvement discipline) — a logic.Monotone check
// packaged for experiments.
func TraceH[T any](p core.Problem[T], e env.Environment, initial []T, opts Options) (*Result[T], error) {
	opts.RecordH = true
	res, err := Run(p, e, initial, opts)
	if err != nil {
		return nil, err
	}
	tr := logic.Trace[float64](res.HTrace)
	if i := logic.MonotoneViolation(tr, func(v float64) float64 { return v }); i >= 0 {
		return res, fmt.Errorf("sim: h trace increased at round %d", i)
	}
	return res, nil
}
