package geom

import (
	"math"
	"testing"
)

// Fuzz harnesses: robustness of the geometric substrate against arbitrary
// coordinates. Run with `go test -fuzz=FuzzConvexHull ./internal/geom`;
// in normal test runs only the seed corpus executes.

func fuzzPoints(vals []float64) []Point {
	pts := make([]Point, 0, len(vals)/2)
	for i := 0; i+1 < len(vals); i += 2 {
		x, y := vals[i], vals[i+1]
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return nil
		}
		if math.Abs(x) > 1e9 || math.Abs(y) > 1e9 {
			return nil
		}
		pts = append(pts, Point{x, y})
	}
	return pts
}

func FuzzConvexHull(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0)
	f.Add(-5.0, 3.0, 7.0, -2.0, 0.1, 0.2, -0.3, 0.4)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3, x4, y4 float64) {
		pts := fuzzPoints([]float64{x1, y1, x2, y2, x3, y3, x4, y4})
		if pts == nil {
			t.Skip()
		}
		h := ConvexHull(pts)
		if len(h) > len(pts) {
			t.Fatalf("hull larger than input: %d > %d", len(h), len(pts))
		}
		for _, p := range pts {
			if !ContainsPoint(h, p, 1e-6*(1+math.Abs(p.X)+math.Abs(p.Y))) {
				t.Fatalf("hull %v does not contain input %v", h, p)
			}
		}
		// Idempotence.
		if !SamePointSet(ConvexHull(h), h, 1e-9) {
			t.Fatalf("hull not idempotent: %v", h)
		}
	})
}

func FuzzEnclosingCircle(f *testing.F) {
	f.Add(0.0, 0.0, 2.0, 0.0, 1.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(1.0, 0.0, 2.0, 0.0, 3.0, 0.0)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3 float64) {
		pts := fuzzPoints([]float64{x1, y1, x2, y2, x3, y3})
		if pts == nil {
			t.Skip()
		}
		c := EnclosingCircle(pts)
		scale := 1.0
		for _, p := range pts {
			scale = math.Max(scale, math.Abs(p.X)+math.Abs(p.Y))
		}
		for _, p := range pts {
			if c.C.Dist(p) > c.R+1e-6*scale {
				t.Fatalf("point %v outside circle %v", p, c)
			}
		}
	})
}
