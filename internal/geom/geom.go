// Package geom is the computational-geometry substrate for the paper's
// §4.5 "Circumscribing Circle" example.
//
// The example needs: points in the plane, convex hulls (the
// super-idempotent generalization, Fig. 3), hull perimeters (the variant
// function h(S) = |A|·P − Σ perimeter(V_a)), the smallest enclosing circle
// of a point set (to recover the circumscribing circle from the hull), and
// the smallest circle containing a set of *circles* (the naive f whose
// failure of super-idempotence is Fig. 2).
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Eps is the default geometric tolerance used by approximate comparisons.
const Eps = 1e-9

// Point is a point in the Euclidean plane.
type Point struct {
	X, Y float64
}

// String renders the point as (x, y) with compact precision.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Sub returns p − q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Near reports whether p and q coincide within tolerance eps.
func (p Point) Near(q Point, eps float64) bool { return p.Dist(q) <= eps }

// Cross returns the z-component of (b−a) × (c−a): positive when a→b→c is a
// counter-clockwise turn, negative when clockwise, zero when collinear.
func Cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// ComparePoints orders points lexicographically by (X, Y). It is the
// canonical order used wherever point sets are stored in multisets.
func ComparePoints(a, b Point) int {
	switch {
	case a.X < b.X:
		return -1
	case a.X > b.X:
		return 1
	case a.Y < b.Y:
		return -1
	case a.Y > b.Y:
		return 1
	default:
		return 0
	}
}

// ConvexHull returns the convex hull of pts in counter-clockwise order
// starting from the lexicographically smallest vertex, with collinear
// interior points removed (Andrew's monotone chain). The input is not
// mutated. Degenerate inputs are handled: 0, 1 and 2 points return copies,
// and fully collinear inputs return the two extreme points.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	sorted := make([]Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return ComparePoints(sorted[i], sorted[j]) < 0 })
	// Dedupe coincident points so the hull walk is well defined.
	uniq := sorted[:0]
	for i, p := range sorted {
		if i == 0 || ComparePoints(p, uniq[len(uniq)-1]) != 0 {
			uniq = append(uniq, p)
		}
	}
	sorted = uniq
	n = len(sorted)
	if n <= 2 {
		out := make([]Point, n)
		copy(out, sorted)
		return out
	}
	hull := make([]Point, 0, 2*n)
	// Lower hull.
	for _, p := range sorted {
		for len(hull) >= 2 && Cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := sorted[i]
		for len(hull) >= lower && Cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1] // last point repeats the first
}

// Perimeter returns the perimeter of the closed polygon with the given
// vertices (in order). One point has perimeter 0; two points count the
// segment twice (out and back), which keeps the hull-merge variant strictly
// monotone as degenerate hulls grow.
func Perimeter(poly []Point) float64 {
	n := len(poly)
	switch n {
	case 0, 1:
		return 0
	case 2:
		return 2 * poly[0].Dist(poly[1])
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += poly[i].Dist(poly[(i+1)%n])
	}
	return total
}

// ContainsPoint reports whether p lies inside or on the convex polygon poly
// (CCW order), within tolerance eps.
func ContainsPoint(poly []Point, p Point, eps float64) bool {
	n := len(poly)
	switch n {
	case 0:
		return false
	case 1:
		return poly[0].Near(p, eps)
	case 2:
		// On-segment test.
		d := poly[0].Dist(p) + p.Dist(poly[1]) - poly[0].Dist(poly[1])
		return math.Abs(d) <= eps
	}
	for i := 0; i < n; i++ {
		if Cross(poly[i], poly[(i+1)%n], p) < -eps {
			return false
		}
	}
	return true
}

// SamePointSet reports whether a and b contain the same points as sets,
// within tolerance eps (order- and multiplicity-insensitive for hulls,
// whose vertices are distinct).
func SamePointSet(a, b []Point, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, p := range a {
		for j, q := range b {
			if !used[j] && p.Near(q, eps) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// Circle is a circle given by center and radius.
type Circle struct {
	C Point
	R float64
}

// String renders the circle as center@radius.
func (c Circle) String() string { return fmt.Sprintf("⊙%v r=%.4g", c.C, c.R) }

// ContainsCircle reports whether c contains the circle d entirely (within
// tolerance eps): |c.C − d.C| + d.R ≤ c.R + eps.
func (c Circle) ContainsCircle(d Circle, eps float64) bool {
	return c.C.Dist(d.C)+d.R <= c.R+eps
}

// Near reports whether two circles coincide within tolerance eps.
func (c Circle) Near(d Circle, eps float64) bool {
	return c.C.Near(d.C, eps) && math.Abs(c.R-d.R) <= eps
}

func circleFrom2(a, b Point) Circle {
	center := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
	return Circle{center, center.Dist(a)}
}

func circleFrom3(a, b, c Point) (Circle, bool) {
	// Circumcircle via perpendicular-bisector intersection.
	d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
	if math.Abs(d) < 1e-12 {
		return Circle{}, false // collinear
	}
	ax2 := a.X*a.X + a.Y*a.Y
	bx2 := b.X*b.X + b.Y*b.Y
	cx2 := c.X*c.X + c.Y*c.Y
	ux := (ax2*(b.Y-c.Y) + bx2*(c.Y-a.Y) + cx2*(a.Y-b.Y)) / d
	uy := (ax2*(c.X-b.X) + bx2*(a.X-c.X) + cx2*(b.X-a.X)) / d
	center := Point{ux, uy}
	return Circle{center, center.Dist(a)}, true
}

func inCircle(c Circle, p Point) bool { return c.C.Dist(p) <= c.R+Eps }

// EnclosingCircle returns the smallest circle containing all the points
// (Welzl's algorithm, iterative move-to-front form, expected linear time).
// This is the paper's "circumscribing circle": the unique circle of
// smallest area with all points on or inside it. An empty input yields the
// zero Circle.
func EnclosingCircle(pts []Point) Circle {
	if len(pts) == 0 {
		return Circle{}
	}
	// Work on a copy; the move-to-front heuristic permutes it.
	ps := make([]Point, len(pts))
	copy(ps, pts)
	c := Circle{ps[0], 0}
	for i := 1; i < len(ps); i++ {
		if inCircle(c, ps[i]) {
			continue
		}
		c = Circle{ps[i], 0}
		for j := 0; j < i; j++ {
			if inCircle(c, ps[j]) {
				continue
			}
			c = circleFrom2(ps[i], ps[j])
			for k := 0; k < j; k++ {
				if inCircle(c, ps[k]) {
					continue
				}
				if cc, ok := circleFrom3(ps[i], ps[j], ps[k]); ok {
					c = cc
				} else {
					// Collinear triple: the two farthest-apart points
					// define the circle.
					c = widestPairCircle(ps[i], ps[j], ps[k])
				}
			}
		}
	}
	return c
}

func widestPairCircle(a, b, c Point) Circle {
	best := circleFrom2(a, b)
	if cc := circleFrom2(a, c); cc.R > best.R {
		best = cc
	}
	if cc := circleFrom2(b, c); cc.R > best.R {
		best = cc
	}
	return best
}

// EnclosingCircleOfCircles returns the smallest circle that contains every
// circle in the input (the "miniball of balls" in the plane).
//
// This primitive exists to make the paper's Fig. 2 executable: the naive
// "circumscribing circle of current estimates" function f is defined in
// terms of it, and the figure's point is that f is *not* super-idempotent.
// The paper's recommended algorithm (convex hulls, Fig. 3) never calls it.
//
// Smallest-enclosing-ball-of-balls is an LP-type problem with combinatorial
// dimension 3 in the plane, so the Welzl move-to-front scheme applies
// unchanged; only the basis computations differ from the point case:
// the 2-circle basis is the analytic span, and the 3-circle basis solves
// the internal-tangency (Apollonius) system |c − C_i| = R − R_i.
func EnclosingCircleOfCircles(circles []Circle) Circle {
	switch len(circles) {
	case 0:
		return Circle{}
	case 1:
		return circles[0]
	}
	cs := make([]Circle, len(circles))
	copy(cs, circles)
	enc := cs[0]
	for i := 1; i < len(cs); i++ {
		if enc.ContainsCircle(cs[i], Eps) {
			continue
		}
		enc = cs[i]
		for j := 0; j < i; j++ {
			if enc.ContainsCircle(cs[j], Eps) {
				continue
			}
			enc = ballOf2(cs[i], cs[j])
			for k := 0; k < j; k++ {
				if enc.ContainsCircle(cs[k], Eps) {
					continue
				}
				enc = ballOf3(cs[i], cs[j], cs[k])
			}
		}
	}
	return enc
}

// ballOf2 returns the smallest circle containing both a and b: the larger
// one if it already contains the other, otherwise the circle spanning them
// along the line of centers.
func ballOf2(a, b Circle) Circle {
	if a.ContainsCircle(b, 0) {
		return a
	}
	if b.ContainsCircle(a, 0) {
		return b
	}
	d := a.C.Dist(b.C)
	r := (d + a.R + b.R) / 2
	// Center sits at distance r − a.R from a's center toward b's center.
	t := (r - a.R) / d
	return Circle{a.C.Add(b.C.Sub(a.C).Scale(t)), r}
}

// ballOf3 returns the smallest circle containing the three circles, given
// that no two-circle span of any pair contains all three (the Welzl
// invariant when it is called). It solves the internal-tangency system
// |c − C_i| = R − R_i, which after subtracting pairs is linear in c with R
// as a parameter, then quadratic in R. Degenerate (collinear-center) cases
// fall back to the best pairwise candidate.
func ballOf3(a, b, c Circle) Circle {
	// Reduce containment among the three first.
	for _, pair := range [][2]Circle{{a, b}, {a, c}, {b, c}} {
		if pair[0].ContainsCircle(pair[1], 0) || pair[1].ContainsCircle(pair[0], 0) {
			// One of the three is redundant; take the best pairwise ball
			// that covers all three.
			return bestPairwiseBall(a, b, c)
		}
	}
	// Linear system from tangency differences (i=a vs b, a vs c):
	//   2(C_j − C_i)·c = (|C_j|² − |C_i|² − R_j² + R_i²) + 2R(R_j − R_i)
	a11 := 2 * (b.C.X - a.C.X)
	a12 := 2 * (b.C.Y - a.C.Y)
	a21 := 2 * (c.C.X - a.C.X)
	a22 := 2 * (c.C.Y - a.C.Y)
	sq := func(p Point) float64 { return p.X*p.X + p.Y*p.Y }
	u1 := sq(b.C) - sq(a.C) - b.R*b.R + a.R*a.R
	u2 := sq(c.C) - sq(a.C) - c.R*c.R + a.R*a.R
	v1 := 2 * (b.R - a.R)
	v2 := 2 * (c.R - a.R)
	det := a11*a22 - a12*a21
	if math.Abs(det) < 1e-12 {
		return bestPairwiseBall(a, b, c)
	}
	// c = p + q·R componentwise.
	px := (u1*a22 - u2*a12) / det
	py := (a11*u2 - a21*u1) / det
	qx := (v1*a22 - v2*a12) / det
	qy := (a11*v2 - a21*v1) / det
	// Substitute into |c − C_a|² = (R − R_a)²:
	dx, dy := px-a.C.X, py-a.C.Y
	qa := qx*qx + qy*qy - 1
	qb := 2 * (dx*qx + dy*qy + a.R)
	qc := dx*dx + dy*dy - a.R*a.R
	minR := math.Max(a.R, math.Max(b.R, c.R))
	best := Circle{R: math.Inf(1)}
	consider := func(r float64) {
		if math.IsNaN(r) || r < minR-Eps {
			return
		}
		cand := Circle{Point{px + qx*r, py + qy*r}, r}
		if cand.ContainsCircle(a, 1e-7) && cand.ContainsCircle(b, 1e-7) &&
			cand.ContainsCircle(c, 1e-7) && cand.R < best.R {
			best = cand
		}
	}
	if math.Abs(qa) < 1e-12 {
		if math.Abs(qb) > 1e-12 {
			consider(-qc / qb)
		}
	} else {
		disc := qb*qb - 4*qa*qc
		if disc >= 0 {
			s := math.Sqrt(disc)
			consider((-qb + s) / (2 * qa))
			consider((-qb - s) / (2 * qa))
		}
	}
	if !math.IsInf(best.R, 1) {
		return best
	}
	return bestPairwiseBall(a, b, c)
}

// bestPairwiseBall returns the smallest two-circle span among the pairs of
// {a, b, c} that contains the remaining circle.
func bestPairwiseBall(a, b, c Circle) Circle {
	best := Circle{R: math.Inf(1)}
	try := func(x, y, other Circle) {
		cand := ballOf2(x, y)
		if cand.ContainsCircle(other, 1e-7) && cand.R < best.R {
			best = cand
		}
	}
	try(a, b, c)
	try(a, c, b)
	try(b, c, a)
	if math.IsInf(best.R, 1) {
		// Numerically pathological input; fall back to the span of the two
		// most distant circles grown to cover the third.
		cand := ballOf2(ballOf2(a, b), c)
		return cand
	}
	return best
}
