package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p, q := Point{1, 2}, Point{4, 6}
	if d := p.Dist(q); math.Abs(d-5) > Eps {
		t.Errorf("Dist = %g, want 5", d)
	}
	if s := p.Add(q); s != (Point{5, 8}) {
		t.Errorf("Add = %v", s)
	}
	if s := q.Sub(p); s != (Point{3, 4}) {
		t.Errorf("Sub = %v", s)
	}
	if s := p.Scale(2); s != (Point{2, 4}) {
		t.Errorf("Scale = %v", s)
	}
	if !p.Near(Point{1 + 1e-12, 2}, Eps) {
		t.Error("Near too strict")
	}
}

func TestCross(t *testing.T) {
	a, b, c := Point{0, 0}, Point{1, 0}, Point{1, 1}
	if Cross(a, b, c) <= 0 {
		t.Error("CCW turn should be positive")
	}
	if Cross(a, c, b) >= 0 {
		t.Error("CW turn should be negative")
	}
	if Cross(a, b, Point{2, 0}) != 0 {
		t.Error("collinear should be zero")
	}
}

func TestComparePoints(t *testing.T) {
	if ComparePoints(Point{1, 2}, Point{1, 2}) != 0 {
		t.Error("equal points")
	}
	if ComparePoints(Point{0, 9}, Point{1, 0}) >= 0 {
		t.Error("X dominates")
	}
	if ComparePoints(Point{1, 0}, Point{1, 1}) >= 0 {
		t.Error("Y tiebreak")
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.5, 0.2}}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size = %d, want 4: %v", len(h), h)
	}
	want := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if !SamePointSet(h, want, Eps) {
		t.Errorf("hull = %v", h)
	}
	if math.Abs(Perimeter(h)-4) > Eps {
		t.Errorf("perimeter = %g, want 4", Perimeter(h))
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); len(h) != 0 {
		t.Errorf("empty hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}}); len(h) != 1 {
		t.Errorf("singleton hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}, {2, 2}}); len(h) != 2 {
		t.Errorf("two-point hull = %v", h)
	}
	// Duplicates collapse.
	if h := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}}); len(h) != 1 {
		t.Errorf("duplicate hull = %v", h)
	}
	// Collinear points reduce to extremes.
	h := ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 || !SamePointSet(h, []Point{{0, 0}, {3, 3}}, Eps) {
		t.Errorf("collinear hull = %v", h)
	}
}

func TestConvexHullRemovesCollinearBoundary(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {1, 0}, {2, 2}, {0, 2}, {2, 1}}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Errorf("hull with collinear boundary points = %v", h)
	}
}

func TestContainsPoint(t *testing.T) {
	sq := ConvexHull([]Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true}, // vertex
		{Point{1, 0}, true}, // edge
		{Point{3, 1}, false},
		{Point{-0.1, 1}, false},
	}
	for _, c := range cases {
		if got := ContainsPoint(sq, c.p, Eps); got != c.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if ContainsPoint(nil, Point{0, 0}, Eps) {
		t.Error("empty polygon contains nothing")
	}
	if !ContainsPoint([]Point{{1, 1}}, Point{1, 1}, Eps) {
		t.Error("point-polygon should contain itself")
	}
	seg := []Point{{0, 0}, {2, 0}}
	if !ContainsPoint(seg, Point{1, 0}, Eps) || ContainsPoint(seg, Point{1, 1}, Eps) {
		t.Error("segment containment wrong")
	}
}

func TestPerimeterDegenerate(t *testing.T) {
	if Perimeter(nil) != 0 || Perimeter([]Point{{1, 2}}) != 0 {
		t.Error("degenerate perimeters nonzero")
	}
	if p := Perimeter([]Point{{0, 0}, {3, 4}}); math.Abs(p-10) > Eps {
		t.Errorf("segment perimeter = %g, want 10", p)
	}
}

func TestEnclosingCircleBasic(t *testing.T) {
	// Two points: diameter circle.
	c := EnclosingCircle([]Point{{0, 0}, {2, 0}})
	if !c.Near(Circle{Point{1, 0}, 1}, 1e-7) {
		t.Errorf("two-point circle = %v", c)
	}
	// Equilateral-ish triangle with known circumcircle.
	c = EnclosingCircle([]Point{{0, 0}, {2, 0}, {1, 1}})
	if !inCircle(c, Point{0, 0}) || !inCircle(c, Point{2, 0}) || !inCircle(c, Point{1, 1}) {
		t.Errorf("triangle circle %v misses a vertex", c)
	}
	// Square: circumcircle has radius √2·side/2.
	c = EnclosingCircle([]Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}})
	if !c.Near(Circle{Point{1, 1}, math.Sqrt2}, 1e-7) {
		t.Errorf("square circle = %v", c)
	}
	// Interior points do not matter.
	c2 := EnclosingCircle([]Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}, {0.3, 1.2}})
	if !c.Near(c2, 1e-7) {
		t.Errorf("interior points changed circle: %v vs %v", c, c2)
	}
}

func TestEnclosingCircleDegenerate(t *testing.T) {
	if c := EnclosingCircle(nil); c != (Circle{}) {
		t.Errorf("empty circle = %v", c)
	}
	if c := EnclosingCircle([]Point{{3, 4}}); !c.Near(Circle{Point{3, 4}, 0}, Eps) {
		t.Errorf("singleton circle = %v", c)
	}
	// Collinear points.
	c := EnclosingCircle([]Point{{0, 0}, {1, 0}, {4, 0}, {2, 0}})
	if !c.Near(Circle{Point{2, 0}, 2}, 1e-7) {
		t.Errorf("collinear circle = %v", c)
	}
	// Duplicated points.
	c = EnclosingCircle([]Point{{1, 1}, {1, 1}, {3, 1}})
	if !c.Near(Circle{Point{2, 1}, 1}, 1e-7) {
		t.Errorf("duplicate circle = %v", c)
	}
}

func TestPropEnclosingCircleContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64()*20 - 10, rng.Float64()*20 - 10}
		}
		c := EnclosingCircle(pts)
		for _, p := range pts {
			if c.C.Dist(p) > c.R+1e-7 {
				t.Fatalf("trial %d: point %v outside circle %v", trial, p, c)
			}
		}
		// Minimality: at least two points must be (nearly) on the boundary
		// unless n == 1.
		if n >= 2 {
			onBoundary := 0
			for _, p := range pts {
				if math.Abs(c.C.Dist(p)-c.R) < 1e-6 {
					onBoundary++
				}
			}
			if onBoundary < 2 {
				t.Fatalf("trial %d: circle %v not supported by ≥2 points", trial, c)
			}
		}
	}
}

func TestPropHullContainsAllPoints(t *testing.T) {
	f := func(raw []struct{ X, Y int8 }) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{float64(r.X), float64(r.Y)}
		}
		h := ConvexHull(pts)
		for _, p := range pts {
			if !ContainsPoint(h, p, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropHullIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
		}
		h := ConvexHull(pts)
		h2 := ConvexHull(h)
		if !SamePointSet(h, h2, 1e-9) {
			t.Fatalf("hull not idempotent: %v vs %v", h, h2)
		}
	}
}

func TestEnclosingCircleOfCirclesTwo(t *testing.T) {
	// Two disjoint circles: the optimum spans them along the center line.
	a := Circle{Point{0, 0}, 1}
	b := Circle{Point{10, 0}, 2}
	c := EnclosingCircleOfCircles([]Circle{a, b})
	// Span from (-1,0) to (12,0): center (5.5,0), radius 6.5.
	if !c.Near(Circle{Point{5.5, 0}, 6.5}, 1e-6) {
		t.Errorf("two-circle enclosure = %v", c)
	}
}

func TestEnclosingCircleOfCirclesNested(t *testing.T) {
	a := Circle{Point{0, 0}, 5}
	b := Circle{Point{1, 0}, 1} // entirely inside a
	c := EnclosingCircleOfCircles([]Circle{a, b})
	if !c.Near(a, 1e-6) {
		t.Errorf("nested enclosure = %v, want %v", c, a)
	}
}

func TestEnclosingCircleOfCirclesDegenerate(t *testing.T) {
	if c := EnclosingCircleOfCircles(nil); c != (Circle{}) {
		t.Errorf("empty = %v", c)
	}
	a := Circle{Point{2, 3}, 4}
	if c := EnclosingCircleOfCircles([]Circle{a}); !c.Near(a, Eps) {
		t.Errorf("singleton = %v", c)
	}
}

func TestPropEnclosingCircleOfCirclesContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		cs := make([]Circle, n)
		for i := range cs {
			cs[i] = Circle{Point{rng.Float64() * 10, rng.Float64() * 10}, rng.Float64() * 3}
		}
		enc := EnclosingCircleOfCircles(cs)
		for _, ci := range cs {
			if !enc.ContainsCircle(ci, 1e-5) {
				t.Fatalf("trial %d: %v not contained in %v", trial, ci, enc)
			}
		}
	}
}

// Points (radius-0 circles) must agree with Welzl within numerical
// tolerance — cross-validation of the two solvers.
func TestEnclosingCircleSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		pts := make([]Point, n)
		cs := make([]Circle, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
			cs[i] = Circle{pts[i], 0}
		}
		exact := EnclosingCircle(pts)
		numeric := EnclosingCircleOfCircles(cs)
		if math.Abs(exact.R-numeric.R) > 1e-5 {
			t.Fatalf("trial %d: radius mismatch exact=%v numeric=%v", trial, exact, numeric)
		}
	}
}

func TestStringers(t *testing.T) {
	if (Point{1, 2}).String() == "" {
		t.Error("Point.String empty")
	}
	if (Circle{Point{1, 2}, 3}).String() == "" {
		t.Error("Circle.String empty")
	}
}

func TestSamePointSetMismatches(t *testing.T) {
	a := []Point{{0, 0}, {1, 1}}
	if SamePointSet(a, []Point{{0, 0}}, Eps) {
		t.Error("different sizes compared equal")
	}
	if SamePointSet(a, []Point{{0, 0}, {2, 2}}, Eps) {
		t.Error("different points compared equal")
	}
	// Duplicate handling: {p, p} vs {p, q} must not match by reusing p.
	if SamePointSet([]Point{{0, 0}, {0, 0}}, []Point{{0, 0}, {1, 1}}, Eps) {
		t.Error("multiplicity ignored")
	}
}

func TestWelzlCollinearSupportTriple(t *testing.T) {
	// Force the collinear-triple branch in Welzl: many collinear points
	// arranged so three collinear candidates end up as the support set.
	pts := []Point{{0, 0}, {4, 0}, {2, 0}, {1, 0}, {3, 0}, {2, 1e-12}}
	c := EnclosingCircle(pts)
	for _, p := range pts {
		if c.C.Dist(p) > c.R+1e-7 {
			t.Fatalf("point %v outside %v", p, c)
		}
	}
	if math.Abs(c.R-2) > 1e-6 {
		t.Errorf("radius = %g, want 2", c.R)
	}
}

func TestBallOf2Containment(t *testing.T) {
	big := Circle{Point{0, 0}, 5}
	small := Circle{Point{1, 1}, 1}
	if got := ballOf2(big, small); !got.Near(big, Eps) {
		t.Errorf("containing ball = %v, want %v", got, big)
	}
	if got := ballOf2(small, big); !got.Near(big, Eps) {
		t.Errorf("reversed containing ball = %v, want %v", got, big)
	}
}

func TestBallOf3ContainmentReduction(t *testing.T) {
	// One circle contains another: ballOf3 must reduce to a pairwise
	// ball.
	a := Circle{Point{0, 0}, 3}
	b := Circle{Point{0.5, 0}, 1} // inside a
	c := Circle{Point{10, 0}, 1}
	got := ballOf3(a, b, c)
	for _, ci := range []Circle{a, b, c} {
		if !got.ContainsCircle(ci, 1e-6) {
			t.Fatalf("%v not contained in %v", ci, got)
		}
	}
	// Optimal: the span of a and c: from (-3,0) to (11,0) → r = 7.
	if math.Abs(got.R-7) > 1e-6 {
		t.Errorf("radius = %g, want 7", got.R)
	}
}

func TestBallOf3CollinearCenters(t *testing.T) {
	// Collinear centers (degenerate linear system) fall back to pairwise.
	a := Circle{Point{0, 0}, 1}
	b := Circle{Point{5, 0}, 1}
	c := Circle{Point{10, 0}, 1}
	got := ballOf3(a, b, c)
	for _, ci := range []Circle{a, b, c} {
		if !got.ContainsCircle(ci, 1e-6) {
			t.Fatalf("%v not contained in %v", ci, got)
		}
	}
	if math.Abs(got.R-6) > 1e-6 { // span (-1,0)..(11,0)
		t.Errorf("radius = %g, want 6", got.R)
	}
}

func TestBallOf3ProperTangency(t *testing.T) {
	// Symmetric triangle of equal circles: the optimum touches all three.
	r := 0.5
	cs := []Circle{
		{Point{0, 0}, r},
		{Point{4, 0}, r},
		{Point{2, 3}, r},
	}
	got := ballOf3(cs[0], cs[1], cs[2])
	for _, ci := range cs {
		d := got.C.Dist(ci.C) + ci.R
		if math.Abs(d-got.R) > 1e-6 {
			t.Errorf("circle %v not tangent: |c−ci|+ri = %g vs R = %g", ci, d, got.R)
		}
	}
}

func TestEnclosingCircleOfCirclesMany(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(12)
		cs := make([]Circle, n)
		for i := range cs {
			cs[i] = Circle{Point{rng.Float64() * 20, rng.Float64() * 20}, rng.Float64() * 4}
		}
		enc := EnclosingCircleOfCircles(cs)
		support := 0
		for _, ci := range cs {
			if !enc.ContainsCircle(ci, 1e-5) {
				t.Fatalf("trial %d: %v outside %v", trial, ci, enc)
			}
			if math.Abs(enc.C.Dist(ci.C)+ci.R-enc.R) < 1e-5 {
				support++
			}
		}
		// Minimality: the optimum is supported by ≥1 internally tangent
		// circle (≥2 unless one input circle contains all others).
		if support == 0 {
			t.Fatalf("trial %d: unsupported enclosure %v", trial, enc)
		}
	}
}
