package dynamics

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/graph"
)

// mustPanic asserts that f panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want message containing %q)", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

// TestZeroValuesPanicEarly pins the multiset.Merger convention: the
// zero-value Schedule and Rule, and every malformed constructor call,
// must panic immediately with a descriptive message.
func TestZeroValuesPanicEarly(t *testing.T) {
	g := graph.Ring(8)
	mustPanic(t, "zero-value Schedule", func() { var s Schedule; s.NewApplier(g, 1) })
	mustPanic(t, "zero-value Schedule", func() { var s Schedule; s.Rules() })
	mustPanic(t, "zero-value Rule", func() { NewSchedule(Rule{}) })
	mustPanic(t, "negative round", func() { At(-1, RecoverAll()) })
	mustPanic(t, "nil Event", func() { At(0, nil) })
	mustPanic(t, "non-positive period", func() { Every(0, RecoverAll()) })
	mustPanic(t, "at least 2 parts", func() { Partition(1, 0, 10) })
	mustPanic(t, "empty window", func() { Partition(2, 5, 5) })
	mustPanic(t, "negative start round", func() { Partition(2, -1, 5) })
	mustPanic(t, "phase lengths", func() { PartitionCycle(2, 0, 5) })
	mustPanic(t, "empty edge list", func() { CutEdges(nil, 0, 5) })
	mustPanic(t, "negative edge id", func() { CutEdges([]int{-1}, 0, 5) })
	mustPanic(t, "outside (0, 1]", func() { Burst(0, 0, 5) })
	mustPanic(t, "outside (0, 1)", func() { RandomCrashes(1.5, 10) })
	mustPanic(t, "mean downtime", func() { RandomCrashes(0.1, 0) })
	mustPanic(t, "empty agent list", func() { CrashAgents() })
	mustPanic(t, "negative agent id", func() { CrashAgents(-3) })
	mustPanic(t, "non-positive count", func() { CrashRandom(0) })
	// Out-of-range ids surface when the applier binds a graph.
	mustPanic(t, "agent id 9 out of range", func() {
		NewSchedule(At(0, CrashAgents(9))).NewApplier(graph.Ring(8), 1)
	})
	mustPanic(t, "edge id 99 out of range", func() {
		NewSchedule(CutEdges([]int{99}, 0, 5)).NewApplier(graph.Ring(8), 1)
	})
	mustPanic(t, "negative round", func() {
		NewSchedule().NewApplier(g, 1).BeginRound(-1, env.AllUp(g))
	})
}

// TestCrashRecoverFreezesAgents: crash masks the agent out of AgentUp,
// recover restores it, and the report counts both.
func TestCrashRecoverFreezesAgents(t *testing.T) {
	g := graph.Ring(6)
	a := NewSchedule(
		At(1, CrashAgents(2, 4)),
		At(3, RecoverAgents(2)),
		At(5, RecoverAll()),
	).NewApplier(g, 7)

	es := env.AllUp(g)
	frozenAt := map[int][]int{
		0: {}, 1: {2, 4}, 2: {2, 4}, 3: {4}, 4: {4}, 5: {}, 6: {},
	}
	for round := 0; round <= 6; round++ {
		eff := a.BeginRound(round, es)
		want := frozenAt[round]
		if got := a.Frozen(); len(got) != len(want) {
			t.Fatalf("round %d: frozen %v, want %v", round, got, want)
		}
		for _, ag := range want {
			if eff.AgentUp.Get(ag) {
				t.Errorf("round %d: crashed agent %d still up", round, ag)
			}
		}
		if round == 1 {
			jc := a.JustCrashed()
			if len(jc) != 2 || jc[0] != 2 || jc[1] != 4 {
				t.Errorf("round 1: JustCrashed = %v, want [2 4]", jc)
			}
		}
		a.EndRound()
		// The overlay must be fully undone.
		if !es.AgentUp.All() {
			t.Fatalf("round %d: agents left masked after EndRound", round)
		}
	}
	rep := a.Report()
	if rep.Crashes != 2 || rep.Recoveries != 2 {
		t.Errorf("report crashes=%d recoveries=%d, want 2/2", rep.Crashes, rep.Recoveries)
	}
	if rep.FrozenAgentRounds != 2+2+1+1 {
		t.Errorf("FrozenAgentRounds = %d, want 6", rep.FrozenAgentRounds)
	}
}

// TestPartitionWindowMasksAndHeals: during the window every inter-block
// edge is down; at the window end a heal is recorded and the mask is
// restored.
func TestPartitionWindowMasksAndHeals(t *testing.T) {
	g := graph.Complete(8) // blocks {0..3}, {4..7} under parts=2
	a := NewSchedule(Partition(2, 2, 5)).NewApplier(g, 3)
	es := env.AllUp(g)
	crossEdges := 0
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if (e.A < 4) != (e.B < 4) {
			crossEdges++
		}
	}
	for round := 0; round < 7; round++ {
		eff := a.BeginRound(round, es)
		masked := 0
		for id := 0; id < g.M(); id++ {
			if !eff.EdgeUp.Get(id) {
				e := g.Edge(id)
				if (e.A < 4) == (e.B < 4) {
					t.Fatalf("round %d: interior edge %v masked", round, e)
				}
				masked++
			}
		}
		inWindow := round >= 2 && round < 5
		if inWindow && masked != crossEdges {
			t.Errorf("round %d: %d edges masked, want %d", round, masked, crossEdges)
		}
		if !inWindow && masked != 0 {
			t.Errorf("round %d: %d edges masked outside window", round, masked)
		}
		a.EndRound()
		if !es.EdgeUp.All() {
			t.Fatalf("round %d: edges left masked after EndRound", round)
		}
	}
	rep := a.Report()
	if rep.Heals != 1 || rep.LastHealRound != 5 {
		t.Errorf("heals=%d lastHeal=%d, want 1 at round 5", rep.Heals, rep.LastHealRound)
	}
	if rep.MaskedEdgeRounds != 3*crossEdges {
		t.Errorf("MaskedEdgeRounds = %d, want %d", rep.MaskedEdgeRounds, 3*crossEdges)
	}
}

// TestPartitionCycleHealsRepeatedly counts one heal per down→healthy
// transition.
func TestPartitionCycleHealsRepeatedly(t *testing.T) {
	g := graph.Ring(8)
	a := NewSchedule(PartitionCycle(2, 3, 2)).NewApplier(g, 11)
	es := env.AllUp(g)
	for round := 0; round < 15; round++ { // 3 full periods
		a.BeginRound(round, es)
		a.EndRound()
	}
	rep := a.Report()
	if rep.Heals != 2 { // heals at rounds 5 and 10; round 15 not executed
		t.Errorf("heals = %d, want 2", rep.Heals)
	}
	if rep.LastHealRound != 10 {
		t.Errorf("LastHealRound = %d, want 10", rep.LastHealRound)
	}
}

// TestDynamicsDeterministic: two appliers over the same (schedule,
// graph, seed) produce identical masks, live sets, and reports round for
// round — and a reused (Reset) applier replays them identically too.
func TestDynamicsDeterministic(t *testing.T) {
	g := graph.Torus(4, 4)
	mk := func() *Schedule {
		return NewSchedule(
			RandomCrashes(0.05, 4),
			Burst(0.3, 2, 20),
			PartitionCycle(2, 4, 3),
			Every(6, CrashRandom(1)),
		)
	}
	trace := func(a *Applier) string {
		var b strings.Builder
		es := env.AllUp(g)
		for round := 0; round < 40; round++ {
			eff := a.BeginRound(round, es)
			fmt.Fprintf(&b, "r%d frozen=%v edges=", round, a.Frozen())
			for id := 0; id < eff.EdgeUp.Len(); id++ {
				if eff.EdgeUp.Get(id) {
					b.WriteByte('1')
				} else {
					b.WriteByte('0')
				}
			}
			b.WriteByte('\n')
			a.EndRound()
		}
		fmt.Fprintf(&b, "%+v\n", a.Report())
		return b.String()
	}
	a1 := mk().NewApplier(g, 42)
	a2 := mk().NewApplier(g, 42)
	t1, t2 := trace(a1), trace(a2)
	if t1 != t2 {
		t.Fatalf("two appliers over the same seed diverged:\n%s\nvs\n%s", t1, t2)
	}
	a1.Reset(mk(), g, 42)
	if t3 := trace(a1); t3 != t1 {
		t.Fatalf("Reset applier diverged from fresh applier:\n%s\nvs\n%s", t3, t1)
	}
	// A different seed must give a different trace (the schedule has
	// random rules).
	a2.Reset(mk(), g, 43)
	if trace(a2) == t1 {
		t.Fatal("seed 42 and 43 produced identical dynamics traces")
	}
}

// TestEmptyScheduleIsTransparent: no rules → the environment state
// passes through untouched and nothing accumulates.
func TestEmptyScheduleIsTransparent(t *testing.T) {
	g := graph.Ring(8)
	a := NewSchedule().NewApplier(g, 5)
	es := env.AllUp(g)
	for round := 0; round < 10; round++ {
		eff := a.BeginRound(round, es)
		if &eff.EdgeUp.Words()[0] != &es.EdgeUp.Words()[0] || &eff.AgentUp.Words()[0] != &es.AgentUp.Words()[0] {
			t.Fatal("empty schedule replaced the environment's buffers")
		}
		a.EndRound()
	}
	if rep := a.Report(); rep != (Report{LastHealRound: -1}) {
		t.Errorf("empty schedule accumulated a report: %+v", rep)
	}
}

// TestNilMaskFallback: environments may hand out nil masks (meaning
// all-up); the applier must materialize its own buffers and keep them
// all-true between rounds.
func TestNilMaskFallback(t *testing.T) {
	g := graph.Ring(6)
	a := NewSchedule(At(0, CrashAgents(3)), Partition(2, 0, 2)).NewApplier(g, 9)
	for round := 0; round < 4; round++ {
		eff := a.BeginRound(round, env.State{})
		if round < 2 {
			if eff.AgentUp.IsZero() || eff.AgentUp.Get(3) {
				t.Fatalf("round %d: crashed agent not masked under absent AgentUp", round)
			}
			if eff.EdgeUp.IsZero() || eff.EdgeUp.Count() == eff.EdgeUp.Len() {
				t.Fatalf("round %d: no edges masked under absent EdgeUp", round)
			}
		}
		a.EndRound()
	}
}

// TestCrashRandomExactCount: CrashRandom(k) crashes exactly k live
// agents whenever at least k are live — even when most of the
// population is already down — and everyone when fewer are.
func TestCrashRandomExactCount(t *testing.T) {
	g := graph.Ring(20)
	var most []int
	for ag := 0; ag < 15; ag++ {
		most = append(most, ag)
	}
	a := NewSchedule(
		At(0, CrashAgents(most...)), // only agents 15..19 stay live
		At(1, CrashRandom(3)),       // must still find exactly 3 of the 5
		At(2, CrashRandom(10)),      // only 2 live remain: crash both
	).NewApplier(g, 21)
	es := env.AllUp(g)
	wantFrozen := map[int]int{0: 15, 1: 18, 2: 20}
	for round := 0; round <= 2; round++ {
		a.BeginRound(round, es)
		if got := len(a.Frozen()); got != wantFrozen[round] {
			t.Fatalf("round %d: %d frozen, want %d", round, got, wantFrozen[round])
		}
		a.EndRound()
	}
}

// TestRandomCrashesRecover: the random process both crashes and wakes
// agents over time.
func TestRandomCrashesRecover(t *testing.T) {
	g := graph.Ring(64)
	a := NewSchedule(RandomCrashes(0.05, 5)).NewApplier(g, 17)
	es := env.AllUp(g)
	for round := 0; round < 200; round++ {
		a.BeginRound(round, es)
		a.EndRound()
	}
	rep := a.Report()
	if rep.Crashes == 0 || rep.Recoveries == 0 {
		t.Fatalf("200 rounds at rate 0.05: crashes=%d recoveries=%d", rep.Crashes, rep.Recoveries)
	}
	if rep.Recoveries > rep.Crashes {
		t.Fatalf("more recoveries (%d) than crashes (%d)", rep.Recoveries, rep.Crashes)
	}
}

// TestParseDesc round-trips every family and rejects junk with errors
// (never panics — the CLI surface).
func TestParseDesc(t *testing.T) {
	good := []string{
		"none", "crashes:0.02:20", "partition:2:1:40",
		"partitioncycle:4:10:5", "flap:3:2:30", "burst:0.5:0:30",
	}
	g := graph.Ring(16)
	for _, spec := range good {
		d, err := ParseDesc(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if d.Name != spec {
			t.Errorf("ParseDesc(%q).Name = %q", spec, d.Name)
		}
		s := d.New(g)
		if spec == "none" {
			if s != nil {
				t.Errorf("none built a schedule")
			}
		} else if s == nil || s.Rules() == 0 {
			t.Errorf("%s built an empty schedule", spec)
		}
	}
	bad := []string{
		"", "meteor", "crashes:2:10", "crashes:0.1:0", "crashes:0.1",
		"partition:1:0:10", "partition:2:10:10", "partition:2:x:10",
		"partitioncycle:2:0:5", "flap:0:0:10", "flap:2:10:10",
		"burst:0:0:10", "burst:1.5:0:10", "burst:0.5:10:10", "none:1",
	}
	for _, spec := range bad {
		if _, err := ParseDesc(spec); err == nil {
			t.Errorf("ParseDesc(%q): expected an error", spec)
		}
	}
}

// TestFaultsValidate pins the async fault-spec validation.
func TestFaultsValidate(t *testing.T) {
	if err := (&Faults{LossP: 0.3, DelayMax: time.Millisecond}).Validate(); err != nil {
		t.Errorf("valid faults rejected: %v", err)
	}
	if err := (&Faults{}).Validate(); err != nil {
		t.Errorf("zero faults rejected: %v", err)
	}
	for _, f := range []Faults{{LossP: 1}, {LossP: -0.1}, {DelayMax: -time.Second}} {
		f := f
		if err := f.Validate(); err == nil {
			t.Errorf("Faults%+v: expected an error", f)
		}
	}
}

// TestScheduleHorizon pins the one-shot horizon accessor the sched
// engine validates its op budget against.
func TestScheduleHorizon(t *testing.T) {
	cases := []struct {
		name string
		s    *Schedule
		want int
	}{
		{"empty", NewSchedule(), -1},
		{"at", NewSchedule(At(5, CrashAgents(0))), 5},
		{"join", NewSchedule(Join(2, "ring", 9)), 9},
		{"window", NewSchedule(Partition(2, 3, 8)), 7},
		{"burst", NewSchedule(Burst(0.5, 2, 12)), 11},
		{"recurring-only", NewSchedule(Every(4, RecoverAll()), RandomCrashes(0.01, 3)), -1},
		{"cyclic-only", NewSchedule(PartitionCycle(2, 3, 2)), -1},
		{"mixed", NewSchedule(At(2, CrashAgents(1)), Join(1, "ring", 6), Partition(2, 1, 4), Every(3, RecoverAll())), 6},
	}
	for _, c := range cases {
		if got := c.s.Horizon(); got != c.want {
			t.Errorf("%s: Horizon() = %d, want %d", c.name, got, c.want)
		}
	}
}
