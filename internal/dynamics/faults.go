package dynamics

import (
	"fmt"
	"time"
)

// Faults is the asynchronous-runtime half of the dynamism model: faults
// injected at the EXCHANGE layer rather than the round loop, because the
// async runtime has no rounds. internal/runtime consumes this through
// runtime.Options.Faults; a nil Faults leaves the runtime untouched
// (pinned bit-identical by the GOMAXPROCS(1) async golden test).
//
// Loss models a request dropped in transit: the initiation is spent (it
// counts against MaxOps and Result.Lost) but no exchange happens — the
// initiator moves on exactly as if the link had been down, which is the
// classic fire-and-forget reading of loss in a gossip protocol. Delay
// models transit latency: the initiator waits a uniform (0, DelayMax]
// before its request is delivered, serving its own inbox meanwhile so
// delays never deadlock the protocol. Both draw from the initiating
// agent's own seeded stream, so fault decisions are reproducible
// per-agent even though the global interleaving is scheduler-dependent
// (as everything in the async runtime is).
//
// The conservation law is untouched by either fault: a lost request
// changes no state, and a delayed one executes the same atomic PairStep
// later — which is exactly why the paper's algorithms tolerate them.
type Faults struct {
	// LossP is the probability, per initiated exchange whose link is up,
	// that the request is lost in transit. Must be in [0, 1).
	LossP float64
	// DelayMax, when positive, adds a uniform (0, DelayMax] delivery
	// latency to every surviving request.
	DelayMax time.Duration
}

// Validate reports whether the fault parameters are usable; the runtime
// rejects a run with invalid faults before starting any agent.
func (f *Faults) Validate() error {
	if f.LossP < 0 || f.LossP >= 1 {
		return fmt.Errorf("dynamics: fault loss probability %g outside [0, 1)", f.LossP)
	}
	if f.DelayMax < 0 {
		return fmt.Errorf("dynamics: negative fault delay %v", f.DelayMax)
	}
	return nil
}
