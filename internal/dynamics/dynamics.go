// Package dynamics is the scripted fault-and-dynamism layer: a
// declarative, seed-deterministic schedule of dynamism events applied on
// top of whatever environment a run uses.
//
// The paper's subject is computation in DYNAMIC distributed systems —
// "agents enter and leave the system, and the interaction graph shifts,
// while the computation remains correct" — yet an env.Environment models
// only stationary randomness (churn probabilities, mobility). A Schedule
// adds the scripted, scenario-shaped dynamism the theory is actually
// about:
//
//   - agent CRASH / RECOVER: a crashed agent's state is frozen and the
//     agent is excluded from groups and matchings — exactly the paper's
//     "disabled agent executes no actions and does not change state",
//     but driven by a script (or a seeded random process) instead of an
//     iid coin;
//   - graph PARTITION / HEAL: the cut edges of a block partition are
//     masked off for a window of rounds, then restored — §1's "the set
//     of processes may be partitioned into subsets that cannot
//     communicate", with the heal round recorded so experiments can
//     measure rounds-to-reconverge;
//   - churn BURSTS: a window during which every edge is additionally
//     dropped with some probability each round — a temporary
//     availability override on top of the environment's own behaviour.
//
// (Message loss and delay for the asynchronous runtimes are the fourth
// primitive; they live in Faults, injected at the exchange layer by
// internal/runtime and internal/sched.)
//
// A Schedule is engine-agnostic: the round engine (internal/sim) applies
// one schedule round per simulation round, and the sharded scheduler
// (internal/sched) applies one per epoch of OpsPerEpoch initiations at a
// stop-the-world safepoint — the same script, the same Applier, on both
// realizations of the paper's execution model.
//
// Determinism contract. A Schedule is pure data; all per-run state lives
// in an Applier. Every random draw the applier makes comes from a
// per-round substream seeded engine.SubSeed(SubSeed(runSeed, seedTag),
// round) — never from the engine's master stream and never dependent on
// what previous rounds drew — so dynamics are a pure function of
// (run seed, round) and results are bit-identical for every state
// layout (Shards), matcher partition (MatchBlocks), worker count, and
// GOMAXPROCS. A nil Schedule (sim.Options.Dynamics == nil) leaves the
// engine untouched, and an empty schedule (NewSchedule with no rules)
// is behaviourally identical to nil — both are pinned by the sim golden
// matrix.
//
// Incrementality contract. The applier never rewrites an environment
// mask. It maintains the live-agent set and the active cut-edge set
// incrementally (O(changes) at event rounds), overlays them onto the
// environment's own State buffer by writing false to exactly the
// entries that were up, and undoes exactly those writes at the end of
// the round — so a steady-state round with an active partition costs
// O(cut size + frozen agents), and a round with no active dynamism
// costs nothing and allocates nothing.
//
// Zero values. Following the multiset.Merger convention, a zero-value
// Schedule or Rule panics early with a descriptive message the moment it
// is used: schedules must be built with NewSchedule from the Rule
// constructors, which validate rounds, windows, probabilities, and ids
// at construction time rather than failing obscurely mid-run.
package dynamics

import (
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/env"
	"repro/internal/graph"
)

// seedTag separates the dynamics substream family from every other use
// of engine.SubSeed on the same run seed (sweep cells use small indices;
// this is an arbitrary large constant).
const seedTag = 0x00d1_fa57

// growTag derives the growth substream base from the dynamics base. It is
// negative so it can never collide with the per-round event substreams
// SubSeed(base, round), whose indices are the (non-negative) round
// numbers: preferential-attachment draws must not perturb — or be
// perturbed by — the same round's event draws.
const growTag = -0x6a01_2e77

// Schedule is an immutable, declarative set of dynamism rules. Build one
// with NewSchedule; the zero value panics on use. A Schedule carries no
// per-run state and may be shared by any number of concurrent runs —
// each run owns an Applier.
type Schedule struct {
	rules []rule
	built bool
}

// NewSchedule composes a schedule from rules. An empty schedule is valid
// and behaviourally identical to no dynamics at all (the alloc-budget
// benchmark pins that it adds ~0 allocs/round).
func NewSchedule(rules ...Rule) *Schedule {
	s := &Schedule{built: true}
	for i, r := range rules {
		if !r.ok {
			panic(fmt.Sprintf("dynamics.NewSchedule: rule %d is a zero-value Rule; build rules with At/Every/Partition/PartitionCycle/CutEdges/Burst/RandomCrashes/Join/AmnesiacRejoin", i))
		}
		s.rules = append(s.rules, r.r)
	}
	return s
}

// Rules returns the number of rules in the schedule.
func (s *Schedule) Rules() int {
	s.check()
	return len(s.rules)
}

// TotalJoiners returns the total number of agents the schedule's Join
// rules will add over the whole run — the engine sizes the initial-state
// array (founding population + joiners, in join order) from this.
func (s *Schedule) TotalJoiners() int {
	s.check()
	k := 0
	for i := range s.rules {
		if s.rules[i].kind == ruleJoin {
			k += s.rules[i].joinK
		}
	}
	return k
}

// HasJoins reports whether the schedule contains any Join rule.
func (s *Schedule) HasJoins() bool { return s.TotalJoiners() > 0 }

// Horizon returns the last round at which one of the schedule's
// one-shot rules still fires or changes scripted state: the latest At
// round, window end, or Join round (−1 for an empty schedule or one
// with only recurring rules — Every, RandomCrashes, cyclic partitions —
// which have no finite horizon). Engines that map schedule rounds onto
// another clock — the sched runtime applies one round per OpsPerEpoch
// initiations — use this to check the whole script fits inside the
// run's budget.
func (s *Schedule) Horizon() int {
	s.check()
	h := -1
	for i := range s.rules {
		r := &s.rules[i]
		switch r.kind {
		case ruleAt, ruleJoin:
			if r.round > h {
				h = r.round
			}
		case ruleCutWindow, ruleBurst:
			if !r.cyclic && r.to-1 > h {
				h = r.to - 1
			}
		}
	}
	return h
}

// LastJoinRound returns the latest round at which a Join rule fires
// (−1 when the schedule has none) — engines must not stop on
// convergence before every scheduled join has been applied.
func (s *Schedule) LastJoinRound() int {
	s.check()
	last := -1
	for i := range s.rules {
		if s.rules[i].kind == ruleJoin && s.rules[i].round > last {
			last = s.rules[i].round
		}
	}
	return last
}

// Amnesiac reports whether the schedule carries the AmnesiacRejoin
// policy flag: recoveries re-enter with their initial state.
func (s *Schedule) Amnesiac() bool {
	s.check()
	for i := range s.rules {
		if s.rules[i].kind == ruleAmnesiac {
			return true
		}
	}
	return false
}

func (s *Schedule) check() {
	if s == nil || !s.built {
		panic("dynamics: zero-value Schedule; build with dynamics.NewSchedule(...)")
	}
}

// Rule is one scheduled dynamism rule — a timed Event (At, Every), a
// masking window (Partition, PartitionCycle, CutEdges, Burst), or a
// random crash/recovery process (RandomCrashes). The zero value panics
// when passed to NewSchedule.
type Rule struct {
	ok bool
	r  rule
}

type ruleKind int

const (
	ruleAt ruleKind = iota
	ruleEvery
	ruleCutWindow // partition or explicit cut: a window of masked edges
	ruleBurst     // per-round random extra edge loss inside a window
	ruleRandomCrashes
	ruleJoin     // population growth: k agents attach at a scheduled round
	ruleAmnesiac // policy flag: recoveries are amnesiac rejoins
)

type rule struct {
	kind ruleKind
	ev   Event // At / Every

	round, every int // At round; Every period; Join round

	// Join rules: how many agents arrive and which attachment family
	// splices them in (see JoinTopos). joinM is the links-per-joiner
	// parameter of preferential attachment.
	joinK    int
	joinTopo string
	joinM    int

	// Window rules. A one-shot window is [from, to); a cyclic window
	// (PartitionCycle) is up during rounds r with r%(healthy+down) >=
	// healthy.
	from, to      int
	healthy, down int
	cyclic        bool

	parts  int   // partition windows: contiguous block count
	cutIDs []int // explicit cut windows: edge ids

	q        float64 // burst: per-edge per-round extra drop probability
	rate     float64 // random crashes: per-live-agent per-round crash probability
	recoverP float64 // random crashes: per-crashed-agent per-round wake probability
}

// At schedules ev to fire once, at the given round. Rounds are 0-based,
// matching sim.RoundInfo.Round; negative rounds panic early.
func At(round int, ev Event) Rule {
	if round < 0 {
		panic(fmt.Sprintf("dynamics.At: negative round %d", round))
	}
	if ev == nil {
		panic("dynamics.At: nil Event")
	}
	return Rule{ok: true, r: rule{kind: ruleAt, round: round, ev: ev}}
}

// Every schedules ev to fire at every positive multiple of k (rounds k,
// 2k, 3k, …). k ≤ 0 panics early.
func Every(k int, ev Event) Rule {
	if k <= 0 {
		panic(fmt.Sprintf("dynamics.Every: non-positive period %d", k))
	}
	if ev == nil {
		panic("dynamics.Every: nil Event")
	}
	return Rule{ok: true, r: rule{kind: ruleEvery, every: k, ev: ev}}
}

// Partition masks every edge between distinct blocks of a parts-way
// contiguous agent partition for rounds [from, to) — the same block rule
// env.Partitioner and the sharded state layout use. The heal (round to)
// is recorded in the Report so experiments can measure reconvergence.
func Partition(parts, from, to int) Rule {
	if parts < 2 {
		panic(fmt.Sprintf("dynamics.Partition: need at least 2 parts, got %d", parts))
	}
	checkWindow("dynamics.Partition", from, to)
	return Rule{ok: true, r: rule{kind: ruleCutWindow, parts: parts, from: from, to: to}}
}

// PartitionCycle is the repeating form of Partition: healthy rounds of
// full connectivity alternating with down rounds of a parts-way block
// partition, forever. Every down→healthy transition is a recorded heal.
func PartitionCycle(parts, healthy, down int) Rule {
	if parts < 2 {
		panic(fmt.Sprintf("dynamics.PartitionCycle: need at least 2 parts, got %d", parts))
	}
	if healthy < 1 || down < 1 {
		panic(fmt.Sprintf("dynamics.PartitionCycle: phase lengths must be positive, got healthy=%d down=%d", healthy, down))
	}
	return Rule{ok: true, r: rule{kind: ruleCutWindow, parts: parts, cyclic: true, healthy: healthy, down: down}}
}

// CutEdges masks the given edge ids for rounds [from, to). Ids are
// validated against the run's graph when the Applier is built.
func CutEdges(ids []int, from, to int) Rule {
	if len(ids) == 0 {
		panic("dynamics.CutEdges: empty edge list")
	}
	checkWindow("dynamics.CutEdges", from, to)
	for _, id := range ids {
		if id < 0 {
			panic(fmt.Sprintf("dynamics.CutEdges: negative edge id %d", id))
		}
	}
	return Rule{ok: true, r: rule{kind: ruleCutWindow, cutIDs: append([]int(nil), ids...), from: from, to: to}}
}

// Burst drops every edge independently with probability q each round of
// [from, to), on top of whatever the environment already masked — a
// temporary churn-probability override (availability multiplied by
// 1−q for the window).
func Burst(q float64, from, to int) Rule {
	if !(q > 0 && q <= 1) {
		panic(fmt.Sprintf("dynamics.Burst: drop probability %g outside (0, 1]", q))
	}
	checkWindow("dynamics.Burst", from, to)
	return Rule{ok: true, r: rule{kind: ruleBurst, q: q, from: from, to: to}}
}

// RandomCrashes crashes each live agent independently with probability
// rate per round, and wakes each crashed agent independently with
// probability 1/meanDown per round (so outages last meanDown rounds in
// expectation). Sampling uses geometric gap skipping, so a round costs
// O(1 + n·rate + crashed), not O(n).
func RandomCrashes(rate float64, meanDown int) Rule {
	if !(rate > 0 && rate < 1) {
		panic(fmt.Sprintf("dynamics.RandomCrashes: crash rate %g outside (0, 1)", rate))
	}
	if meanDown < 1 {
		panic(fmt.Sprintf("dynamics.RandomCrashes: mean downtime %d rounds below 1", meanDown))
	}
	return Rule{ok: true, r: rule{kind: ruleRandomCrashes, rate: rate, recoverP: 1 / float64(meanDown)}}
}

// JoinTopos lists the attachment families Join accepts: "ring" splices
// the joiners into the ring's closing edge (graph.SpliceRing),
// "hypercube" fills the next dimension's vertices (graph.GrowHypercube),
// and "pref" attaches each joiner to 2 existing agents drawn
// preferentially by degree (graph.AttachPreferential).
func JoinTopos() []string { return []string{"ring", "hypercube", "pref"} }

// Join schedules k agents to JOIN the system at the given round,
// attached to the live topology by the named family (see JoinTopos).
// The joiners arrive live, with agent ids assigned append-only past the
// current population; the engine is responsible for supplying their
// initial states and extending the conservation target per §3.4
// (f(f(X) ∪ Y) = f(X ∪ Y)). Growth mutates the run's graph — sweep
// runs clone the pristine topology per cell.
func Join(k int, topo string, round int) Rule {
	if k < 1 {
		panic(fmt.Sprintf("dynamics.Join: non-positive joiner count %d", k))
	}
	if round < 0 {
		panic(fmt.Sprintf("dynamics.Join: negative round %d", round))
	}
	ok := false
	for _, t := range JoinTopos() {
		if topo == t {
			ok = true
			break
		}
	}
	if !ok {
		panic(fmt.Sprintf("dynamics.Join: unknown attachment family %q (know %s)", topo, joinToposList()))
	}
	return Rule{ok: true, r: rule{kind: ruleJoin, round: round, joinK: k, joinTopo: topo, joinM: 2}}
}

func joinToposList() string {
	s := ""
	for i, t := range JoinTopos() {
		if i > 0 {
			s += ", "
		}
		s += t
	}
	return s
}

// AmnesiacRejoin marks every recovery in the schedule as an AMNESIAC
// rejoin: instead of waking with its frozen (pre-crash) state, the agent
// re-enters the computation with its INITIAL state, as if it had never
// participated — the paper's §3.4 re-entry model, where correctness
// under rejoin is exactly super-idempotence of f. The engine performs
// the state reset (the applier only reports who woke, via JustWoken);
// the monitor rebases its variant baseline at such rounds, and for
// non-super-idempotent f (sum, average) the conservation law is
// EXPECTED to break — that detection is experiment E19's subject.
func AmnesiacRejoin() Rule {
	return Rule{ok: true, r: rule{kind: ruleAmnesiac}}
}

// checkWindow validates a [from, to) round window.
func checkWindow(what string, from, to int) {
	if from < 0 {
		panic(fmt.Sprintf("%s: negative start round %d", what, from))
	}
	if to <= from {
		panic(fmt.Sprintf("%s: empty window [%d, %d)", what, from, to))
	}
}

// activeAt reports whether a window rule masks edges during round r.
func (r *rule) activeAt(round int) bool {
	if r.cyclic {
		return round%(r.healthy+r.down) >= r.healthy
	}
	return round >= r.from && round < r.to
}

// Event is something a timed rule (At, Every) does to the agent
// population when it fires. The set is closed: events are built with
// CrashAgents, RecoverAgents, CrashRandom, and RecoverAll.
type Event interface {
	fire(a *Applier, round int)
	fmt.Stringer
}

type crashAgents struct{ agents []int }

// CrashAgents crashes the listed agents (ids are validated against the
// run's graph when the Applier is built; crashing an already-crashed
// agent is a no-op).
func CrashAgents(agents ...int) Event {
	if len(agents) == 0 {
		panic("dynamics.CrashAgents: empty agent list")
	}
	for _, a := range agents {
		if a < 0 {
			panic(fmt.Sprintf("dynamics.CrashAgents: negative agent id %d", a))
		}
	}
	return crashAgents{agents: append([]int(nil), agents...)}
}

func (e crashAgents) fire(a *Applier, _ int) {
	for _, ag := range e.agents {
		a.crash(ag)
	}
}
func (e crashAgents) String() string { return fmt.Sprintf("crash%v", e.agents) }

type recoverAgents struct{ agents []int }

// RecoverAgents wakes the listed agents (waking a live agent is a
// no-op).
func RecoverAgents(agents ...int) Event {
	if len(agents) == 0 {
		panic("dynamics.RecoverAgents: empty agent list")
	}
	for _, a := range agents {
		if a < 0 {
			panic(fmt.Sprintf("dynamics.RecoverAgents: negative agent id %d", a))
		}
	}
	return recoverAgents{agents: append([]int(nil), agents...)}
}

func (e recoverAgents) fire(a *Applier, _ int) {
	for _, ag := range e.agents {
		a.wake(ag)
	}
}
func (e recoverAgents) String() string { return fmt.Sprintf("recover%v", e.agents) }

type crashRandom struct{ k int }

// CrashRandom crashes exactly k agents drawn uniformly without
// replacement from the currently live population (all of them when
// fewer than k are live).
func CrashRandom(k int) Event {
	if k < 1 {
		panic(fmt.Sprintf("dynamics.CrashRandom: non-positive count %d", k))
	}
	return crashRandom{k: k}
}

func (e crashRandom) fire(a *Applier, _ int) {
	n := a.g.N()
	liveCount := n - len(a.frozen)
	if liveCount <= e.k {
		for ag := 0; ag < n; ag++ {
			if a.live[ag] {
				a.crash(ag)
			}
		}
		return
	}
	// Exact uniform sampling without replacement: pick the r-th live
	// agent by rank, k times. One draw per pick, deterministic given
	// (seed, round) and the live set; O(k·n) only at event rounds.
	for picked := 0; picked < e.k; picked++ {
		r := a.rng.Intn(liveCount - picked)
		for ag := 0; ag < n; ag++ {
			if a.live[ag] {
				if r == 0 {
					a.crash(ag)
					break
				}
				r--
			}
		}
	}
}
func (e crashRandom) String() string { return fmt.Sprintf("crash-random(%d)", e.k) }

type recoverAll struct{}

// RecoverAll wakes every crashed agent.
func RecoverAll() Event { return recoverAll{} }

func (recoverAll) fire(a *Applier, _ int) {
	// wake mutates a.frozen; drain from the back so the iteration stays
	// well-defined.
	for len(a.frozen) > 0 {
		a.wake(a.frozen[len(a.frozen)-1])
	}
}
func (recoverAll) String() string { return "recover-all" }

// Report accumulates what a run's dynamics actually did — the
// convergence-under-churn observables experiments aggregate.
type Report struct {
	// Crashes and Recoveries count agent sleep/wake transitions applied.
	Crashes, Recoveries int
	// Heals counts cut-window ends (partition heals) that took effect;
	// LastHealRound is the round of the most recent one (−1 when none).
	// Rounds-to-reconverge after the final heal is the convergence round
	// minus LastHealRound.
	Heals         int
	LastHealRound int
	// MaskedEdgeRounds sums, over rounds, the number of edges the
	// dynamics layer forced down that the environment had up.
	MaskedEdgeRounds int
	// FrozenAgentRounds sums, over rounds, the number of crashed agents.
	FrozenAgentRounds int
	// Joins counts agents added by Join rules; AmnesiacResets counts
	// recoveries that re-entered with their initial state (every
	// recovery, when the schedule carries AmnesiacRejoin).
	Joins          int
	AmnesiacResets int
}

// Applier is one run's mutable dynamics state: the live-agent set, the
// active cut windows, the per-round substream, and the overlay undo
// logs. It belongs to one run (one goroutine) at a time and is reused
// across runs via Reset — the warm-engine contract sim.Scratch extends
// to dynamics.
type Applier struct {
	s    *Schedule
	g    *graph.Graph
	base int64

	live        []bool
	frozen      []int // crashed agents, ascending — the frozen-check list
	justCrashed []int // agents crashed by the current BeginRound
	justWoken   []int // agents woken by the current BeginRound
	wakeScratch []int

	// Population growth: remaining scheduled joiners, the amnesiac
	// policy flag, and the growth substream base (negative-tag sibling of
	// the per-round event substreams — see growTag).
	joinsLeft int
	amnesiac  bool
	growBase  int64

	winActive []bool  // per rule: window currently masking
	winCut    [][]int // per rule: lazily computed cut edge ids

	burstIDs []int // this round's burst-dropped edge ids

	// All-true fallback masks, used only when the environment hands out
	// absent (zero) EdgeUp/AgentUp masks — meaning "all up" — and the
	// overlay needs something to write into. The undo pass restores them
	// to all-true.
	edgeUpBuf, agentUpBuf bitset.Set

	// Overlay undo logs: exactly the mask entries BeginRound set false.
	curEdgeUp, curAgentUp bitset.Set
	edgeUndo, agentUndo   []int

	rng *engine.FastRand
	rep Report
}

// NewApplier builds the per-run applier for schedule s over graph g,
// deriving every random draw from runSeed. Agent and edge ids referenced
// by the schedule are validated against g here, with early panics.
func (s *Schedule) NewApplier(g *graph.Graph, runSeed int64) *Applier {
	a := &Applier{}
	a.Reset(s, g, runSeed)
	return a
}

// Reset rebinds the applier to a new run: all agents live, no windows
// active, report zeroed, substream base re-derived from runSeed. Buffers
// are kept warm; an applier reused across sweep cells re-pays nothing
// beyond mask resizing when the graph changes.
func (a *Applier) Reset(s *Schedule, g *graph.Graph, runSeed int64) {
	s.check()
	a.s, a.g = s, g
	a.base = engine.SubSeed(runSeed, seedTag)
	a.growBase = engine.SubSeed(a.base, growTag)
	a.joinsLeft = s.TotalJoiners()
	a.amnesiac = s.Amnesiac()
	a.validate()

	n := g.N()
	if cap(a.live) < n {
		a.live = make([]bool, n)
	}
	a.live = a.live[:n]
	for i := range a.live {
		a.live[i] = true
	}
	a.frozen = a.frozen[:0]
	a.justCrashed = a.justCrashed[:0]
	a.justWoken = a.justWoken[:0]
	a.burstIDs = a.burstIDs[:0]
	a.edgeUndo, a.agentUndo = a.edgeUndo[:0], a.agentUndo[:0]
	a.curEdgeUp, a.curAgentUp = bitset.Set{}, bitset.Set{}
	a.edgeUpBuf, a.agentUpBuf = bitset.Set{}, bitset.Set{} // re-materialized on demand for the new graph

	if cap(a.winActive) < len(s.rules) {
		a.winActive = make([]bool, len(s.rules))
		a.winCut = make([][]int, len(s.rules))
	}
	a.winActive = a.winActive[:len(s.rules)]
	a.winCut = a.winCut[:len(s.rules)]
	for i := range a.winActive {
		a.winActive[i] = false
		a.winCut[i] = nil // cut sets are graph-dependent; recompute lazily
	}

	if a.rng == nil {
		a.rng = engine.NewFastRand(a.base)
	}
	a.rep = Report{LastHealRound: -1}
}

// validate checks every id the schedule references against the graph.
// Scripted agent ids may address joiners (ids in [N, N + TotalJoiners)):
// crashing or waking an agent that has not yet joined panics at fire
// time, not here.
func (a *Applier) validate() {
	n, m := a.g.N()+a.s.TotalJoiners(), a.g.M()
	for i := range a.s.rules {
		r := &a.s.rules[i]
		switch r.kind {
		case ruleAt, ruleEvery:
			switch ev := r.ev.(type) {
			case crashAgents:
				checkAgentIDs("dynamics.CrashAgents", ev.agents, n)
			case recoverAgents:
				checkAgentIDs("dynamics.RecoverAgents", ev.agents, n)
			}
		case ruleCutWindow:
			for _, id := range r.cutIDs {
				if id >= m {
					panic(fmt.Sprintf("dynamics.CutEdges: edge id %d out of range for graph %s with %d edges", id, a.g.Name(), m))
				}
			}
		}
	}
}

func checkAgentIDs(what string, ids []int, n int) {
	for _, id := range ids {
		if id >= n {
			panic(fmt.Sprintf("%s: agent id %d out of range for %d agents", what, id, n))
		}
	}
}

// crash freezes agent ag (no-op when already crashed).
func (a *Applier) crash(ag int) {
	if ag >= len(a.live) {
		panic(fmt.Sprintf("dynamics: crash of agent %d scheduled before it joins (population is %d)", ag, len(a.live)))
	}
	if !a.live[ag] {
		return
	}
	a.live[ag] = false
	a.frozen = insertSorted(a.frozen, ag)
	a.justCrashed = append(a.justCrashed, ag)
	a.rep.Crashes++
}

// wake unfreezes agent ag (no-op when live).
func (a *Applier) wake(ag int) {
	if ag >= len(a.live) {
		panic(fmt.Sprintf("dynamics: recovery of agent %d scheduled before it joins (population is %d)", ag, len(a.live)))
	}
	if a.live[ag] {
		return
	}
	a.live[ag] = true
	a.frozen = removeSorted(a.frozen, ag)
	a.justWoken = append(a.justWoken, ag)
	a.rep.Recoveries++
	if a.amnesiac {
		a.rep.AmnesiacResets++
	}
}

func insertSorted(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// cutFor returns rule i's cut edge ids, computing them on first use: the
// inter-block edges of the contiguous partition (Partition,
// PartitionCycle) or the validated explicit list (CutEdges).
func (a *Applier) cutFor(i int) []int {
	if a.winCut[i] != nil {
		return a.winCut[i]
	}
	r := &a.s.rules[i]
	if r.cutIDs != nil {
		a.winCut[i] = r.cutIDs
		return r.cutIDs
	}
	n := a.g.N()
	per := (n + r.parts - 1) / r.parts
	if per == 0 {
		per = 1
	}
	var ids []int
	for id := 0; id < a.g.M(); id++ {
		if a.g.EdgeRetired(id) {
			continue
		}
		e := a.g.Edge(id)
		if e.A/per != e.B/per {
			ids = append(ids, id)
		}
	}
	if ids == nil {
		ids = []int{} // non-nil marks "computed"
	}
	a.winCut[i] = ids
	return ids
}

// GrowthFor applies the round's Join rules, if any, mutating the run's
// graph through the incremental attachment paths (graph.SpliceRing,
// GrowHypercube, AttachPreferential) and returning the merged Growth
// record. The engine calls this at the TOP of each round, before the
// environment steps and before BeginRound: the joiners participate in
// the very round they arrive. Returns (zero, false) on rounds with no
// scheduled join — the steady-state fast path, one counter test.
//
//det:hotpath
func (a *Applier) GrowthFor(round int) (graph.Growth, bool) {
	if a.joinsLeft == 0 {
		return graph.Growth{}, false
	}
	return a.growthSlow(round)
}

// growthSlow is GrowthFor off the fast path: at most once per join
// round. Preferential-attachment draws come from the growth substream
// SubSeed(growBase, round) — disjoint by construction from the event
// substreams (growTag < 0, rounds ≥ 0) — and a.rng is reseeded again by
// BeginRound before any event fires, so growth and events cannot
// perturb each other's draws.
func (a *Applier) growthSlow(round int) (graph.Growth, bool) {
	var total graph.Growth
	any := false
	reseeded := false
	for i := range a.s.rules {
		r := &a.s.rules[i]
		if r.kind != ruleJoin || r.round != round {
			continue
		}
		var gr graph.Growth
		var err error
		switch r.joinTopo {
		case "ring":
			gr, err = a.g.SpliceRing(r.joinK)
		case "hypercube":
			gr, err = a.g.GrowHypercube(r.joinK)
		case "pref":
			if !reseeded {
				a.rng.Reseed(engine.SubSeed(a.growBase, round))
				reseeded = true
			}
			gr, err = a.g.AttachPreferential(r.joinK, r.joinM, a.rng)
		}
		if err != nil {
			panic(fmt.Sprintf("dynamics.Join(%d, %q, %d): attachment failed on graph %s: %v", r.joinK, r.joinTopo, round, a.g.Name(), err))
		}
		if !any {
			total, any = gr, true
		} else {
			total.NewAgents += gr.NewAgents
			total.NewEdgeIDs = append(total.NewEdgeIDs, gr.NewEdgeIDs...)
			total.RetiredEdgeIDs = append(total.RetiredEdgeIDs, gr.RetiredEdgeIDs...)
		}
		a.joinsLeft -= r.joinK
		a.rep.Joins += r.joinK
	}
	if !any {
		return graph.Growth{}, false
	}
	// Joiners arrive live.
	for len(a.live) < a.g.N() {
		a.live = append(a.live, true)
	}
	// Graph-sized caches were built for the smaller topology: drop the
	// all-true fallback masks (re-materialized at the new size on demand)
	// and the block-partition cut lists, whose block size is a function
	// of the current population (explicit CutEdges lists are untouched —
	// they name founding edges by id, and ids are stable).
	a.edgeUpBuf, a.agentUpBuf = bitset.Set{}, bitset.Set{}
	for i := range a.winCut {
		if a.s.rules[i].kind == ruleCutWindow && a.s.rules[i].cutIDs == nil {
			a.winCut[i] = nil
		}
	}
	return total, true
}

// PendingJoins reports whether any scheduled join has not yet fired —
// engines must not stop on convergence while this holds.
func (a *Applier) PendingJoins() bool { return a.joinsLeft > 0 }

// BeginRound applies the schedule for one round: it fires the round's
// events (updating the live set and window states incrementally), then
// overlays the dynamics masks onto the environment state by writing
// false to exactly the up entries being suppressed, and returns the
// effective state. The returned State aliases the input's buffers (or
// the applier's all-true fallbacks when the input masks are nil);
// EndRound MUST be called after the round's masks have been consumed and
// before the environment's next Step, to undo the overlay writes.
func (a *Applier) BeginRound(round int, es env.State) env.State {
	if round < 0 {
		panic(fmt.Sprintf("dynamics.Applier.BeginRound: negative round %d", round))
	}
	a.justCrashed = a.justCrashed[:0]
	a.justWoken = a.justWoken[:0]
	a.burstIDs = a.burstIDs[:0]
	if len(a.s.rules) == 0 {
		return es
	}
	// One substream per round: every draw below is a function of
	// (run seed, round) and the deterministic schedule state only.
	a.rng.Reseed(engine.SubSeed(a.base, round))

	anyCut := false
	for i := range a.s.rules {
		r := &a.s.rules[i]
		switch r.kind {
		case ruleAt:
			if round == r.round {
				r.ev.fire(a, round)
			}
		case ruleEvery:
			if round > 0 && round%r.every == 0 {
				r.ev.fire(a, round)
			}
		case ruleCutWindow:
			want := r.activeAt(round)
			if want != a.winActive[i] {
				a.winActive[i] = want
				if !want {
					a.rep.Heals++
					a.rep.LastHealRound = round
				}
			}
			anyCut = anyCut || want
		case ruleBurst:
			if r.activeAt(round) {
				a.burstIDs = sampleIDs(a.burstIDs, a.g.M(), r.q, a.rng)
			}
		case ruleRandomCrashes:
			// Crashes: geometric gap skipping over the agent ids, so the
			// draw count is O(1 + n·rate); already-crashed hits are no-ops.
			a.sampleCrashes(r.rate)
			// Recoveries: one draw per crashed agent, ascending order.
			a.wakeScratch = a.wakeScratch[:0]
			for _, ag := range a.frozen {
				if a.rng.Float64() < r.recoverP {
					a.wakeScratch = append(a.wakeScratch, ag)
				}
			}
			for _, ag := range a.wakeScratch {
				a.wake(ag)
			}
		}
	}

	// Overlay: edges first.
	eu := es.EdgeUp
	if eu.IsZero() && (anyCut || len(a.burstIDs) > 0) {
		eu = a.allTrueEdges()
	}
	if anyCut {
		for i := range a.s.rules {
			if a.s.rules[i].kind == ruleCutWindow && a.winActive[i] {
				for _, id := range a.cutFor(i) {
					if eu.Get(id) {
						eu.Clear(id)
						a.edgeUndo = append(a.edgeUndo, id)
					}
				}
			}
		}
	}
	for _, id := range a.burstIDs {
		if eu.Get(id) {
			eu.Clear(id)
			a.edgeUndo = append(a.edgeUndo, id)
		}
	}
	// Then the live set.
	au := es.AgentUp
	if au.IsZero() && len(a.frozen) > 0 {
		au = a.allTrueAgents()
	}
	for _, ag := range a.frozen {
		if au.Get(ag) {
			au.Clear(ag)
			a.agentUndo = append(a.agentUndo, ag)
		}
	}
	a.curEdgeUp, a.curAgentUp = eu, au
	a.rep.MaskedEdgeRounds += len(a.edgeUndo)
	a.rep.FrozenAgentRounds += len(a.frozen)
	return env.State{EdgeUp: eu, AgentUp: au}
}

// sampleCrashes samples this round's random crashes with probability
// rate per agent id via geometric gap skipping.
func (a *Applier) sampleCrashes(rate float64) {
	n := a.g.N()
	l := math.Log1p(-rate)
	for id := geometricGap(a.rng, l, n); id < n; id += 1 + geometricGap(a.rng, l, n) {
		a.crash(id)
	}
}

// EndRound undoes BeginRound's overlay writes, restoring the
// environment's buffers to exactly the values its Step produced.
func (a *Applier) EndRound() {
	for _, id := range a.edgeUndo {
		a.curEdgeUp.Set(id)
	}
	for _, ag := range a.agentUndo {
		a.curAgentUp.Set(ag)
	}
	a.edgeUndo, a.agentUndo = a.edgeUndo[:0], a.agentUndo[:0]
	a.curEdgeUp, a.curAgentUp = bitset.Set{}, bitset.Set{}
}

// OverlayEdges returns the edge ids the most recent BeginRound forced
// down (entries the environment had up that the overlay cleared). Valid
// until EndRound; callers that need the list across the round boundary —
// the engine's changed-id stream does — must copy it. Together with the
// environment's own StepDeltas, the previous round's overlay list, and
// this one, a consumer has a superset of every mask entry that can
// differ between consecutive effective states.
func (a *Applier) OverlayEdges() []int { return a.edgeUndo }

// OverlayAgents is OverlayEdges for the agent mask (the currently frozen
// agents that the environment had up).
func (a *Applier) OverlayAgents() []int { return a.agentUndo }

func (a *Applier) allTrueEdges() bitset.Set {
	if a.edgeUpBuf.IsZero() {
		a.edgeUpBuf = bitset.NewAllSet(a.g.M())
	}
	return a.edgeUpBuf
}

func (a *Applier) allTrueAgents() bitset.Set {
	if a.agentUpBuf.IsZero() {
		a.agentUpBuf = bitset.NewAllSet(a.g.N())
	}
	return a.agentUpBuf
}

// JustCrashed returns the agents crashed by the most recent BeginRound —
// the engine snapshots their states as the frozen reference values. The
// slice aliases applier scratch, valid until the next BeginRound.
func (a *Applier) JustCrashed() []int { return a.justCrashed }

// JustWoken returns the agents woken by the most recent BeginRound, in
// wake order. Under an amnesiac schedule (Amnesiac true) the engine
// resets each of them to its initial state before the round's groups
// step. The slice aliases applier scratch, valid until the next
// BeginRound.
func (a *Applier) JustWoken() []int { return a.justWoken }

// Amnesiac reports whether recoveries are amnesiac rejoins for this run.
func (a *Applier) Amnesiac() bool { return a.amnesiac }

// Frozen returns the currently crashed agents in ascending order — the
// list the engine's frozen-state conservation check walks each round.
// The slice aliases applier state, valid until the next BeginRound.
func (a *Applier) Frozen() []int { return a.frozen }

// Report returns the dynamics observables accumulated so far.
func (a *Applier) Report() Report { return a.rep }

// geometricGap returns the number of skipped ids before the next
// selected one: Geometric(q) on {0, 1, …} via inversion, with gaps at or
// beyond limit saturating to limit (same derivation as env's churn
// sampler; logOneMinusQ is the precomputed log1p(−q), nonzero for every
// q in (0, 1]).
func geometricGap(rng *engine.FastRand, logOneMinusQ float64, limit int) int {
	u := 1 - rng.Float64()
	g := math.Log(u) / logOneMinusQ
	if !(g < float64(limit)) { // catches +Inf and NaN too
		return limit
	}
	return int(g)
}

// sampleIDs appends to dst the ascending ids in [0, m) selected
// independently with probability q, consuming one draw per selected id
// plus one overshoot draw.
func sampleIDs(dst []int, m int, q float64, rng *engine.FastRand) []int {
	if q <= 0 || m == 0 {
		return dst
	}
	l := math.Log1p(-q)
	for id := geometricGap(rng, l, m); id < m; id += 1 + geometricGap(rng, l, m) {
		dst = append(dst, id)
	}
	return dst
}
