package dynamics

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Desc is a named dynamism-schedule family: a constructor parameterized
// by the run's graph, plus the display name sweep axes and tables use.
// It is the dynamics third of the registry contract internal/sweep
// builds grids on (env.Desc and problems.Desc are the other two) — axes
// are declared over names ("partition:2:1:40"), not hard-coded Rule
// compositions. A Desc is a value; New returns a fresh immutable
// Schedule per call (nil means "no dynamics" — the none family).
type Desc struct {
	// Name identifies the family and its parameters in axes and tables.
	Name string
	// New builds the family's schedule for the given graph; a nil return
	// means the cell runs without a dynamics layer.
	New func(g *graph.Graph) *Schedule
}

// NoneDesc describes the absence of dynamics — the baseline axis value.
func NoneDesc() Desc {
	return Desc{Name: "none", New: func(*graph.Graph) *Schedule { return nil }}
}

// CrashesDesc describes RandomCrashes(rate, meanDown).
func CrashesDesc(rate float64, meanDown int) Desc {
	return Desc{
		Name: fmt.Sprintf("crashes:%.3g:%d", rate, meanDown),
		New:  func(*graph.Graph) *Schedule { return NewSchedule(RandomCrashes(rate, meanDown)) },
	}
}

// PartitionDesc describes a one-shot Partition(parts, from, to) window.
func PartitionDesc(parts, from, to int) Desc {
	return Desc{
		Name: fmt.Sprintf("partition:%d:%d:%d", parts, from, to),
		New:  func(*graph.Graph) *Schedule { return NewSchedule(Partition(parts, from, to)) },
	}
}

// PartitionCycleDesc describes a repeating PartitionCycle(parts,
// healthy, down).
func PartitionCycleDesc(parts, healthy, down int) Desc {
	return Desc{
		Name: fmt.Sprintf("partitioncycle:%d:%d:%d", parts, healthy, down),
		New:  func(*graph.Graph) *Schedule { return NewSchedule(PartitionCycle(parts, healthy, down)) },
	}
}

// FlapDesc describes a deterministic crash window: k random agents crash
// at round from and every crashed agent recovers at round to.
func FlapDesc(k, from, to int) Desc {
	if to <= from {
		panic(fmt.Sprintf("dynamics.FlapDesc: empty window [%d, %d)", from, to))
	}
	return Desc{
		Name: fmt.Sprintf("flap:%d:%d:%d", k, from, to),
		New: func(*graph.Graph) *Schedule {
			return NewSchedule(At(from, CrashRandom(k)), At(to, RecoverAll()))
		},
	}
}

// BurstDesc describes a Burst(q, from, to) churn-override window.
func BurstDesc(q float64, from, to int) Desc {
	return Desc{
		Name: fmt.Sprintf("burst:%.3g:%d:%d", q, from, to),
		New:  func(*graph.Graph) *Schedule { return NewSchedule(Burst(q, from, to)) },
	}
}

// JoinDesc describes Join(k, topo, round): k agents attach at the given
// round by the named family (see JoinTopos).
func JoinDesc(k int, topo string, round int) Desc {
	return Desc{
		Name: fmt.Sprintf("join:%d:%s:%d", k, topo, round),
		New:  func(*graph.Graph) *Schedule { return NewSchedule(Join(k, topo, round)) },
	}
}

// AmnesiacFlapDesc is FlapDesc under the AmnesiacRejoin policy: k random
// agents crash at round from and at round to rejoin AMNESIACALLY — with
// their initial states, not their frozen ones. The E19 membership
// experiment reads the §3.4 classification off this family: f survives
// amnesiac rejoin iff it is super-idempotent.
func AmnesiacFlapDesc(k, from, to int) Desc {
	if to <= from {
		panic(fmt.Sprintf("dynamics.AmnesiacFlapDesc: empty window [%d, %d)", from, to))
	}
	return Desc{
		Name: fmt.Sprintf("amnesiacflap:%d:%d:%d", k, from, to),
		New: func(*graph.Graph) *Schedule {
			return NewSchedule(At(from, CrashRandom(k)), At(to, RecoverAll()), AmnesiacRejoin())
		},
	}
}

// Families lists the registered spec families ParseDesc accepts, in the
// order the doc comment presents them — the single source the
// unknown-family error quotes, so the message can never drift from what
// is actually parseable.
func Families() []string {
	return []string{"none", "crashes", "partition", "partitioncycle", "flap", "burst", "join", "amnesiacflap"}
}

// ParseDesc resolves a registry spec of the form "family[:param…]" to a
// Desc:
//
//	none                        no dynamics (the baseline)
//	crashes:RATE:MEANDOWN       RandomCrashes — rate in (0,1), meanDown ≥ 1
//	partition:PARTS:FROM:TO     one partition window over [FROM, TO)
//	partitioncycle:PARTS:H:D    repeating H healthy / D partitioned rounds
//	flap:K:FROM:TO              K random agents crash at FROM, all wake at TO
//	burst:Q:FROM:TO             extra per-edge drop probability Q over [FROM, TO)
//	join:K:FAMILY:ROUND         K agents join at ROUND via ring|hypercube|pref
//	amnesiacflap:K:FROM:TO      flap whose recoveries are amnesiac rejoins
//
// It is the CLI-facing half of the registry: cmd/sweep's -dynamics axis
// names its schedules with these specs. Parameters the Rule constructors
// would reject are reported as errors here (the CLI must not panic).
func ParseDesc(spec string) (Desc, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	bad := func(format string, args ...any) (Desc, error) {
		return Desc{}, fmt.Errorf("dynamics: bad spec %q: "+format, append([]any{spec}, args...)...)
	}
	ints := func(raw []string) ([]int, error) {
		out := make([]int, len(raw))
		for i, s := range raw {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("parameter %q is not an integer", s)
			}
			out[i] = v
		}
		return out, nil
	}
	switch parts[0] {
	case "none":
		if len(parts) != 1 {
			return bad("none takes no parameters")
		}
		return NoneDesc(), nil
	case "crashes":
		if len(parts) != 3 {
			return bad("want crashes:RATE:MEANDOWN")
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || !(rate > 0 && rate < 1) {
			return bad("rate %q must be a number in (0, 1)", parts[1])
		}
		meanDown, err := strconv.Atoi(parts[2])
		if err != nil || meanDown < 1 {
			return bad("mean downtime %q must be a positive integer", parts[2])
		}
		return CrashesDesc(rate, meanDown), nil
	case "partition", "partitioncycle":
		if len(parts) != 4 {
			return bad("want %s:PARTS:A:B", parts[0])
		}
		v, err := ints(parts[1:])
		if err != nil {
			return bad("%v", err)
		}
		if v[0] < 2 {
			return bad("need at least 2 parts, got %d", v[0])
		}
		if parts[0] == "partition" {
			if v[1] < 0 || v[2] <= v[1] {
				return bad("empty or negative window [%d, %d)", v[1], v[2])
			}
			return PartitionDesc(v[0], v[1], v[2]), nil
		}
		if v[1] < 1 || v[2] < 1 {
			return bad("phase lengths must be positive, got healthy=%d down=%d", v[1], v[2])
		}
		return PartitionCycleDesc(v[0], v[1], v[2]), nil
	case "flap":
		if len(parts) != 4 {
			return bad("want flap:K:FROM:TO")
		}
		v, err := ints(parts[1:])
		if err != nil {
			return bad("%v", err)
		}
		if v[0] < 1 {
			return bad("need at least 1 agent, got %d", v[0])
		}
		if v[1] < 0 || v[2] <= v[1] {
			return bad("empty or negative window [%d, %d)", v[1], v[2])
		}
		return FlapDesc(v[0], v[1], v[2]), nil
	case "burst":
		if len(parts) != 4 {
			return bad("want burst:Q:FROM:TO")
		}
		q, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || !(q > 0 && q <= 1) {
			return bad("drop probability %q must be a number in (0, 1]", parts[1])
		}
		v, err := ints(parts[2:])
		if err != nil {
			return bad("%v", err)
		}
		if v[0] < 0 || v[1] <= v[0] {
			return bad("empty or negative window [%d, %d)", v[0], v[1])
		}
		return BurstDesc(q, v[0], v[1]), nil
	case "join":
		if len(parts) != 4 {
			return bad("want join:K:FAMILY:ROUND")
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k < 1 {
			return bad("joiner count %q must be a positive integer", parts[1])
		}
		topo := parts[2]
		known := false
		for _, t := range JoinTopos() {
			if topo == t {
				known = true
				break
			}
		}
		if !known {
			return bad("unknown attachment family %q (know %s)", topo, strings.Join(JoinTopos(), ", "))
		}
		round, err := strconv.Atoi(parts[3])
		if err != nil || round < 0 {
			return bad("round %q must be a non-negative integer", parts[3])
		}
		return JoinDesc(k, topo, round), nil
	case "amnesiacflap":
		if len(parts) != 4 {
			return bad("want amnesiacflap:K:FROM:TO")
		}
		v, err := ints(parts[1:])
		if err != nil {
			return bad("%v", err)
		}
		if v[0] < 1 {
			return bad("need at least 1 agent, got %d", v[0])
		}
		if v[1] < 0 || v[2] <= v[1] {
			return bad("empty or negative window [%d, %d)", v[1], v[2])
		}
		return AmnesiacFlapDesc(v[0], v[1], v[2]), nil
	default:
		return bad("unknown family (know %s)", strings.Join(Families(), ", "))
	}
}
