// Package runtime is an asynchronous, message-passing realization of the
// paper's algorithms: one goroutine per agent, channels as communication
// links, and an environment that toggles link availability while the
// agents run.
//
// It complements the round-based engine in internal/sim: sim realizes the
// paper's synchronous-partition execution model exactly, while this
// package demonstrates the remark in §4.5 that the step relation "can be
// easily implemented by asynchronous message passing". There is no round
// structure here: agents gossip whenever they like over whatever links the
// environment currently allows, and the conservation law plus variant
// descent still carry the system to f(S(0)).
//
// Protocol (push-pull gossip with a busy guard):
//
//   - an initiating agent picks a random neighbour whose link is up and
//     sends its state together with a reply channel;
//   - the partner — unless it is itself mid-exchange — computes
//     PairStep(initiator, partner), adopts its half, and replies with the
//     initiator's half; a busy partner replies "busy" and nothing changes;
//   - while awaiting the reply, the initiator answers its own inbox with
//     "busy" so that two agents initiating at each other can never
//     deadlock.
//
// The pair transition is atomic at the partner, and the initiator admits
// no other exchange while its half is in flight, so the two-agent multiset
// transition is exactly a PairStep of the problem — i.e. a D-step. The
// global multiset passes through transient states where one half has been
// adopted and the other is in flight; conservation is therefore asserted
// at quiescence, not per-interleaving — via the same engine.Monitor the
// round-based engine uses, so the two engines share one definition of the
// conservation law, the variant discipline, convergence, and the
// deterministic seeding scheme.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	ms "repro/internal/multiset"
)

// Options configures an asynchronous run.
type Options struct {
	// Seed drives neighbour selection and link churn.
	Seed int64
	// LinkUpProbability is the chance a link is up each time the
	// environment refreshes (1.0 = static network).
	LinkUpProbability float64
	// RefreshEvery is how many initiations pass between environment
	// refreshes of link availability (default 16).
	RefreshEvery int
	// MaxOps bounds the total number of initiated exchanges (default
	// 1_000_000).
	MaxOps int
	// Timeout bounds wall-clock time (default 10s).
	Timeout time.Duration
}

// Result reports an asynchronous run.
type Result[T any] struct {
	// Converged reports whether the final multiset equals f(S(0)).
	Converged bool
	// Ops counts initiated exchanges (including busy rejections).
	Ops int
	// ProperSteps counts exchanges that changed the pair's multiset.
	ProperSteps int
	// Violations lists monitor failures asserted at quiescence (the
	// conservation law f(S) = S* and the net descent of the variant h);
	// empty on a correct run.
	Violations []string
	// Final holds the final (positional) agent states.
	Final []T
	// Target is f(S(0)).
	Target ms.Multiset[T]
}

type request[T any] struct {
	state T
	reply chan response[T]
}

type response[T any] struct {
	busy  bool
	state T
}

// linkTable is the shared environment state: which links are currently
// up. Agents consult it before initiating; it is refreshed concurrently.
type linkTable struct {
	mu sync.RWMutex
	up []bool
}

func (lt *linkTable) isUp(id int) bool {
	lt.mu.RLock()
	defer lt.mu.RUnlock()
	return lt.up[id]
}

func (lt *linkTable) refresh(p float64, rng *rand.Rand) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for i := range lt.up {
		lt.up[i] = rng.Float64() < p
	}
}

// Run executes problem p over graph g from the given initial states using
// one goroutine per agent, until the observed state multiset equals
// f(S(0)) or a budget is exhausted. The final states are authoritative
// (gathered after all agents have stopped), so the convergence verdict is
// exact even though progress observation is approximate.
func Run[T any](p core.Problem[T], g *graph.Graph, initial []T, opts Options) (*Result[T], error) {
	n := g.N()
	if len(initial) != n {
		return nil, fmt.Errorf("runtime: %d initial states for %d agents", len(initial), n)
	}
	if n == 0 {
		return nil, errors.New("runtime: empty system")
	}
	if opts.RefreshEvery <= 0 {
		opts.RefreshEvery = 16
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = 1_000_000
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.LinkUpProbability <= 0 {
		opts.LinkUpProbability = 1
	}

	cmp := p.Cmp()
	initialM := ms.New(cmp, initial...)
	mon := engine.NewMonitor(p, initialM, 0)
	conv := engine.NewConvergence(p.Equal, mon.Target())
	target := mon.Target()
	res := &Result[T]{Target: target}
	if conv.Observe(0, initialM) {
		res.Converged = true
		res.Final = append([]T(nil), initial...)
		return res, nil
	}

	links := &linkTable{up: make([]bool, g.M())}
	envRng := rand.New(rand.NewSource(engine.EnvSeed(opts.Seed)))
	links.refresh(opts.LinkUpProbability, envRng)

	// Shared observation board: agents post their state after every
	// adoption; the supervisor watches it for apparent convergence.
	type slot struct {
		mu sync.Mutex
		v  T
	}
	board := make([]*slot, n)
	for i := range board {
		board[i] = &slot{v: initial[i]}
	}
	post := func(i int, v T) {
		board[i].mu.Lock()
		board[i].v = v
		board[i].mu.Unlock()
	}
	view := func() ms.Multiset[T] {
		vals := make([]T, n)
		for i := range vals {
			board[i].mu.Lock()
			vals[i] = board[i].v
			board[i].mu.Unlock()
		}
		return ms.New(cmp, vals...)
	}

	inboxes := make([]chan request[T], n)
	for i := range inboxes {
		inboxes[i] = make(chan request[T], n)
	}

	// Neighbour/edge ids per agent for link checks.
	type nb struct{ agent, edge int }
	neighbours := make([][]nb, n)
	for id, e := range g.Edges() {
		neighbours[e.A] = append(neighbours[e.A], nb{e.B, id})
		neighbours[e.B] = append(neighbours[e.B], nb{e.A, id})
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()

	var opCount, properCount int64
	var countMu sync.Mutex
	budgetLeft := func() bool {
		countMu.Lock()
		defer countMu.Unlock()
		return int(opCount) < opts.MaxOps
	}

	finals := make([]T, n)
	var wg sync.WaitGroup
	for a := 0; a < n; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			my := initial[a]
			defer func() { finals[a] = my }()
			rng := rand.New(rand.NewSource(engine.AgentSeed(opts.Seed, a)))
			inbox := inboxes[a]

			serve := func(req request[T]) {
				na, nb := p.PairStep(req.state, my, rng)
				my = nb
				post(a, my)
				req.reply <- response[T]{state: na}
			}

			for {
				// Serve anything pending first.
				select {
				case <-ctx.Done():
					return
				case req := <-inbox:
					serve(req)
					continue
				default:
				}
				if !budgetLeft() {
					// Budget exhausted: keep serving so peers can finish,
					// until cancellation.
					select {
					case <-ctx.Done():
						return
					case req := <-inbox:
						serve(req)
					}
					continue
				}
				// Initiate with a random up-neighbour.
				if len(neighbours[a]) == 0 {
					select {
					case <-ctx.Done():
						return
					case req := <-inbox:
						serve(req)
					}
					continue
				}
				pick := neighbours[a][rng.Intn(len(neighbours[a]))]
				countMu.Lock()
				opCount++
				if int(opCount)%opts.RefreshEvery == 0 {
					links.refresh(opts.LinkUpProbability, envRng)
				}
				countMu.Unlock()
				if !links.isUp(pick.edge) {
					continue
				}
				replyCh := make(chan response[T], 1)
				select {
				case inboxes[pick.agent] <- request[T]{state: my, reply: replyCh}:
				case <-ctx.Done():
					return
				}
				// Await the reply; answer own inbox with busy meanwhile
				// (prevents initiator-initiator deadlock).
				before := my
			awaitReply:
				for {
					select {
					case <-ctx.Done():
						return
					case r := <-replyCh:
						if !r.busy {
							my = r.state
							post(a, my)
							if cmp(before, my) != 0 {
								countMu.Lock()
								properCount++
								countMu.Unlock()
							}
						}
						break awaitReply
					case req := <-inbox:
						req.reply <- response[T]{busy: true}
					}
				}
			}
		}(a)
	}

	// Supervisor: watch the board for apparent convergence, then cancel.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			if conv.Reached(view()) {
				cancel()
				return
			}
			if !budgetLeft() {
				cancel()
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Wait()
	<-done

	res.Final = finals
	res.Ops = int(opCount)
	res.ProperSteps = int(properCount)
	finalM := ms.New(cmp, finals...)
	res.Converged = conv.Observe(res.Ops, finalM)
	mon.ObserveQuiescence(finalM)
	res.Violations = mon.Violations()
	return res, nil
}
