// Package runtime is an asynchronous, message-passing realization of the
// paper's algorithms: one goroutine per agent, channels as communication
// links, and an environment that toggles link availability while the
// agents run.
//
// It complements the round-based engine in internal/sim: sim realizes the
// paper's synchronous-partition execution model exactly, while this
// package demonstrates the remark in §4.5 that the step relation "can be
// easily implemented by asynchronous message passing". There is no round
// structure here: agents gossip whenever they like over whatever links the
// environment currently allows, and the conservation law plus variant
// descent still carry the system to f(S(0)).
//
// Protocol (push-pull gossip with a busy guard):
//
//   - an initiating agent picks a random neighbour whose link is up and
//     sends its state together with a reply channel;
//   - the partner — unless it is itself mid-exchange — computes
//     PairStep(initiator, partner), adopts its half, and replies with the
//     initiator's half; a busy partner replies "busy" and nothing changes;
//   - while awaiting the reply, the initiator answers its own inbox with
//     "busy" so that two agents initiating at each other can never
//     deadlock;
//   - a busy-rejected initiator backs off for a short randomized window
//     during which it SERVES its inbox instead of re-initiating. Without
//     the backoff the system can phase-lock into a busy storm — every
//     agent perpetually mid-initiate, every request answered "busy" —
//     because an agent is receptive only in the tiny window between
//     exchanges; the backoff both desynchronizes the retries and widens
//     exactly that window. The window is ADAPTIVE: each agent derives it
//     from its observed busy-rejection rate with an AIMD controller
//     (multiplicative increase on rejection, additive decrease on
//     success, ceiling scaled by the rejection-rate EWMA — see
//     backoff.go), so low-contention agents pay near-zero latency while
//     high-degree neighbourhoods, where rejection probability grows with
//     degree, back off much further than the old fixed 512µs ceiling
//     allowed.
//
// The pair transition is atomic at the partner, and the initiator admits
// no other exchange while its half is in flight, so the two-agent multiset
// transition is exactly a PairStep of the problem — i.e. a D-step. The
// global multiset passes through transient states where one half has been
// adopted and the other is in flight; conservation is therefore asserted
// at quiescence, not per-interleaving — via the same engine.Monitor the
// round-based engine uses, so the two engines share one definition of the
// conservation law, the variant discipline, convergence, and the
// deterministic seeding scheme.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dynamics"
	"repro/internal/engine"
	"repro/internal/graph"
	ms "repro/internal/multiset"
	"repro/internal/obs"
)

// Options configures an asynchronous run.
type Options struct {
	// Seed drives neighbour selection and link churn.
	Seed int64
	// LinkUpProbability is the chance a link is up each time the
	// environment refreshes (1.0 = static network).
	LinkUpProbability float64
	// RefreshEvery is how many initiations pass between environment
	// refreshes of link availability (default 16).
	RefreshEvery int
	// MaxOps bounds the total number of initiated exchanges (default
	// 1_000_000).
	MaxOps int
	// Timeout bounds wall-clock time (default 10s).
	Timeout time.Duration
	// Faults, when non-nil, injects message loss and delivery delay at
	// the exchange layer (see dynamics.Faults): a request whose link is
	// up may still be lost in transit with probability LossP (the
	// initiation is spent, counted in Result.Lost), and surviving
	// requests wait a uniform (0, DelayMax] before delivery, the
	// initiator serving its inbox meanwhile. nil injects nothing and is
	// bit-identical to the pre-fault runtime (the GOMAXPROCS(1) golden
	// pins it).
	Faults *dynamics.Faults
	// Probe, when non-nil, records the exchange lifecycle on the
	// observability layer's atomic counters: initiations, busy
	// rejections, adopted deliveries, in-transit losses, and backoff
	// windows entered (plus their summed nanoseconds). Counters only —
	// agents run concurrently, and obs phase timers are single-goroutine.
	// Probes never draw from the seeded streams, so attaching one leaves
	// the GOMAXPROCS(1) golden byte-identical.
	Probe *obs.Probe
	// FixedBackoff replaces the adaptive AIMD busy-backoff controller
	// with the legacy fixed doubling ladder (512µs ceiling, reset to
	// zero on success). Scheduling policy only — results are unaffected;
	// retained as the baseline the backoff field-validation benchmarks
	// compare the AIMD controller against (EXPERIMENTS.md appendix).
	FixedBackoff bool
}

// Result reports an asynchronous run.
type Result[T any] struct {
	// Converged reports whether the final multiset equals f(S(0)).
	Converged bool
	// Ops counts initiated exchanges (including busy rejections).
	Ops int
	// ProperSteps counts exchanges that changed the pair's multiset.
	ProperSteps int
	// Violations lists monitor failures asserted at quiescence (the
	// conservation law f(S) = S* and the net descent of the variant h);
	// empty on a correct run.
	Violations []string
	// Final holds the final (positional) agent states.
	Final []T
	// Target is f(S(0)).
	Target ms.Multiset[T]
	// QuiescenceChecks counts how many times the quiescence detector
	// examined the observation board. The detector is event-driven — it
	// wakes only when an agent adopts a new state — so this is bounded by
	// the number of adoptions (at most 2·Ops), never by wall-clock time;
	// tests pin this bound to keep the busy-poll loop from coming back.
	QuiescenceChecks int
	// Rejections counts busy-rejected initiations — the contention signal
	// the adaptive AIMD backoff feeds on (Rejections ≤ Ops −
	// ProperSteps; high values mean the run spent real time in backoff).
	Rejections int
	// Lost counts initiated exchanges whose request was dropped in
	// transit by the fault layer (0 when Options.Faults is nil).
	Lost int
	// Elapsed is the wall-clock duration of the run, stamped via the
	// sanctioned obs clock by both async engines (goroutine-per-agent and
	// sched) so their throughput is comparable without benchmark
	// scaffolding.
	Elapsed time.Duration
	// Steals counts run-queue steals by idle workers; always 0 on the
	// goroutine-per-agent runtime, populated by the sched engine.
	Steals int
	// Dynamics reports what a dynamics schedule actually did (crashes,
	// recoveries, joins, amnesiac resets); nil when no schedule ran.
	Dynamics *dynamics.Report
}

// ProperStepsPerSec derives the throughput figure the E20 scaling table
// reports: proper steps per wall-clock second, 0 when Elapsed is zero
// (a run that converged before its clock ticked, or a hand-built Result).
func (r *Result[T]) ProperStepsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.ProperSteps) / r.Elapsed.Seconds()
}

type request[T any] struct {
	state T
	reply chan response[T]
}

type response[T any] struct {
	busy  bool
	state T
}

// linkTable is the shared environment state: which links are currently
// up. Agents consult it before initiating; it is refreshed concurrently.
type linkTable struct {
	mu sync.RWMutex
	up []bool
}

func (lt *linkTable) isUp(id int) bool {
	lt.mu.RLock()
	defer lt.mu.RUnlock()
	return lt.up[id]
}

func (lt *linkTable) refresh(p float64, rng *rand.Rand) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for i := range lt.up {
		lt.up[i] = rng.Float64() < p
	}
}

// Run executes problem p over graph g from the given initial states using
// one goroutine per agent, until the observed state multiset equals
// f(S(0)) or a budget is exhausted. The final states are authoritative
// (gathered after all agents have stopped), so the convergence verdict is
// exact even though progress observation is approximate.
func Run[T any](p core.Problem[T], g *graph.Graph, initial []T, opts Options) (*Result[T], error) {
	clk := obs.NewWallClock()
	startNs := clk.Now()
	n := g.N()
	if len(initial) != n {
		return nil, fmt.Errorf("runtime: %d initial states for %d agents", len(initial), n)
	}
	if n == 0 {
		return nil, errors.New("runtime: empty system")
	}
	if opts.RefreshEvery <= 0 {
		opts.RefreshEvery = 16
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = 1_000_000
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.LinkUpProbability <= 0 {
		opts.LinkUpProbability = 1
	}
	if opts.Faults != nil {
		if err := opts.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
	}

	cmp := p.Cmp()
	initialM := ms.New(cmp, initial...)
	mon := engine.NewMonitor(p, initialM, 0)
	conv := engine.NewConvergence(p.Equal, mon.Target())
	target := mon.Target()
	res := &Result[T]{Target: target}
	if conv.Observe(0, initialM) {
		res.Converged = true
		res.Final = append([]T(nil), initial...)
		res.Elapsed = time.Duration(clk.Now() - startNs)
		return res, nil
	}

	// PR 3 migrated the round engine's group streams off stdlib rand's
	// O(607)-per-reseed source; these were the last two stdlib streams
	// the engines constructed. FastRand substreams keep the same
	// (seed)-determinism contract — the GOMAXPROCS(1) golden pins the
	// final multiset, which is stream-independent, so the migration is
	// a behavioural no-op at the level the goldens check.
	links := &linkTable{up: make([]bool, g.M())}
	envRng := engine.NewFastRand(engine.EnvSeed(opts.Seed))
	links.refresh(opts.LinkUpProbability, envRng.Rand)

	// Shared observation board: agents post their state after every
	// adoption and nudge the quiescence detector, which re-examines the
	// board only then — event-driven, no polling. The nudge channel has
	// capacity 1 and posts never block on it: a pending nudge already
	// guarantees the detector will read the board after this post.
	type slot struct {
		mu sync.Mutex
		v  T
	}
	board := make([]*slot, n)
	for i := range board {
		board[i] = &slot{v: initial[i]}
	}
	progress := make(chan struct{}, 1)
	post := func(i int, v T) {
		board[i].mu.Lock()
		board[i].v = v
		board[i].mu.Unlock()
		select {
		case progress <- struct{}{}:
		default:
		}
	}
	// reached snapshots the board into a reusable sorted buffer and probes
	// the convergence target — supervisor-only, zero allocation per check.
	viewBuf := make([]T, n)
	reached := func() bool {
		for i := range viewBuf {
			board[i].mu.Lock()
			viewBuf[i] = board[i].v
			board[i].mu.Unlock()
		}
		slices.SortFunc(viewBuf, cmp)
		return conv.Reached(ms.View(cmp, viewBuf))
	}

	// Inbox capacity is the protocol bound — at most one outstanding
	// request per neighbour — not n: capacity-n inboxes cost O(n²) memory
	// in total, which is what capped this engine near 10³ agents before
	// the E20 scaling study needed 10⁴ goroutine-per-agent cells.
	inboxes := make([]chan request[T], n)
	for i := range inboxes {
		inboxes[i] = make(chan request[T], g.Degree(i)+1)
	}

	// Neighbour/edge ids per agent for link checks.
	type nb struct{ agent, edge int }
	neighbours := make([][]nb, n)
	for id, e := range g.Edges() {
		neighbours[e.A] = append(neighbours[e.A], nb{e.B, id})
		neighbours[e.B] = append(neighbours[e.B], nb{e.A, id})
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()

	// budgetOut is closed exactly once, by the agent whose initiation
	// brings opCount to MaxOps — the supervisor's event-driven signal that
	// the run must wind down even if no further state change ever happens.
	var opCount, properCount int64
	var countMu sync.Mutex
	budgetOut := make(chan struct{})
	budgetClosed := false
	budgetLeft := func() bool {
		countMu.Lock()
		defer countMu.Unlock()
		return int(opCount) < opts.MaxOps
	}

	// Two-phase wind-down. Cancellation must never tear an exchange: once
	// a request is in a partner's inbox, the partner may adopt its half
	// (a sum transfer moves mass) — if the initiator then exits without
	// adopting the reply, conservation is violated in the finals. So on
	// cancel an agent first finishes any exchange of its own that is in
	// flight (serving busy meanwhile), signals it will initiate no more,
	// and then keeps answering busy until EVERY agent has so signalled —
	// only then can no request still be en route to its inbox, and a
	// final non-blocking drain makes exiting safe.
	var initiating sync.WaitGroup
	initiating.Add(n)
	servePhase := make(chan struct{})
	go func() { initiating.Wait(); close(servePhase) }()

	finals := make([]T, n)
	rejections := make([]int, n)
	lost := make([]int, n)
	var wg sync.WaitGroup
	for a := 0; a < n; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			my := initial[a]
			defer func() { finals[a] = my }()
			rng := engine.NewFastRand(engine.AgentSeed(opts.Seed, a))
			inbox := inboxes[a]
			// One reusable reply channel for the agent's whole lifetime:
			// the initiator admits no other exchange while its half is in
			// flight, so at most one reply is ever outstanding and the
			// run allocates O(agents), not O(exchanges), reply channels.
			replyCh := make(chan response[T], 1)
			// One reusable backoff timer (created stopped; Reset arms it).
			backoffTimer := time.NewTimer(time.Hour)
			if !backoffTimer.Stop() {
				<-backoffTimer.C
			}
			defer backoffTimer.Stop()
			// Per-agent adaptive backoff: the window derives from this
			// agent's own observed rejection rate (see backoff.go).
			// Options.FixedBackoff swaps in the legacy fixed ladder — the
			// baseline the field-validation benchmarks compare against.
			var backoff AIMD
			var ladder fixedLadder
			useFixed := opts.FixedBackoff

			serve := func(req request[T]) {
				na, nb := p.PairStep(req.state, my, rng.Rand)
				my = nb
				post(a, my)
				req.reply <- response[T]{state: na}
			}
			// windDown is the only way out of the loop: announce this
			// agent initiates no more, then answer busy until every agent
			// has announced the same (so nothing can still be en route
			// here), then drain and go. Busy replies never block: each
			// neighbour has at most one exchange outstanding and its
			// reply channel has capacity 1.
			windDown := func() {
				initiating.Done()
				for {
					select {
					case req := <-inbox:
						req.reply <- response[T]{busy: true}
					case <-servePhase:
						for {
							select {
							case req := <-inbox:
								req.reply <- response[T]{busy: true}
							default:
								return
							}
						}
					}
				}
			}

			for {
				// Serve anything pending first.
				select {
				case <-ctx.Done():
					windDown()
					return
				case req := <-inbox:
					serve(req)
					continue
				default:
				}
				if !budgetLeft() {
					// Budget exhausted: keep serving so peers can finish,
					// until cancellation.
					select {
					case <-ctx.Done():
						windDown()
						return
					case req := <-inbox:
						serve(req)
					}
					continue
				}
				// Initiate with a random up-neighbour.
				if len(neighbours[a]) == 0 {
					select {
					case <-ctx.Done():
						windDown()
						return
					case req := <-inbox:
						serve(req)
					}
					continue
				}
				pick := neighbours[a][rng.Intn(len(neighbours[a]))]
				countMu.Lock()
				opCount++
				if int(opCount)%opts.RefreshEvery == 0 {
					links.refresh(opts.LinkUpProbability, envRng.Rand)
				}
				if !budgetClosed && int(opCount) >= opts.MaxOps {
					budgetClosed = true
					close(budgetOut)
				}
				countMu.Unlock()
				opts.Probe.Add(obs.CounterExchInitiate, 1)
				if !links.isUp(pick.edge) {
					continue
				}
				if f := opts.Faults; f != nil {
					// Exchange-layer fault injection, on the agent's own
					// stream. Loss: the request vanishes in transit — the
					// initiation is spent, no exchange happens, the
					// initiator moves on as if the link had dropped.
					if f.LossP > 0 && rng.Float64() < f.LossP {
						lost[a]++
						opts.Probe.Add(obs.CounterExchLost, 1)
						continue
					}
					// Delay: the request is in flight for a while before
					// delivery; the agent stays receptive meanwhile (a
					// delayed sender that refused service could deadlock
					// against its own partner).
					if f.DelayMax > 0 {
						backoffTimer.Reset(time.Duration(1 + rng.Int63n(int64(f.DelayMax))))
					delaying:
						for {
							select {
							case <-ctx.Done():
								windDown()
								return
							case req := <-inbox:
								serve(req)
							case <-backoffTimer.C:
								break delaying
							}
						}
					}
				}
				select {
				case inboxes[pick.agent] <- request[T]{state: my, reply: replyCh}:
				case <-ctx.Done():
					windDown()
					return
				}
				// Await the reply; answer own inbox with busy meanwhile
				// (prevents initiator-initiator deadlock).
				before := my
				rejected := false
				dying := false
				ctxDone := ctx.Done()
			awaitReply:
				for {
					select {
					case <-ctxDone:
						// The request is already in the partner's inbox (or
						// being served): abandoning the reply would tear the
						// exchange — the partner's half adopted, ours not.
						// The reply is guaranteed (the partner cannot exit
						// its serve phase while our half is in flight), so
						// stop watching the context and wait it out.
						dying = true
						ctxDone = nil
					case r := <-replyCh:
						if r.busy {
							rejected = true
						} else {
							if useFixed {
								ladder.OnSuccess()
							} else {
								backoff.OnSuccess()
							}
							my = r.state
							post(a, my)
							opts.Probe.Add(obs.CounterExchDeliver, 1)
							if cmp(before, my) != 0 {
								countMu.Lock()
								properCount++
								countMu.Unlock()
							}
						}
						break awaitReply
					case req := <-inbox:
						req.reply <- response[T]{busy: true}
					}
				}
				if dying {
					windDown()
					return
				}
				if rejected {
					// Receptive backoff: serve peers instead of re-initiating
					// for a randomized window whose size the AIMD controller
					// derives from the observed rejection rate (see the
					// protocol notes in the package comment and backoff.go).
					rejections[a]++
					opts.Probe.Add(obs.CounterExchBusy, 1)
					var window time.Duration
					if useFixed {
						window = ladder.OnRejected()
					} else {
						window = backoff.OnRejected()
					}
					wait := time.Duration(1 + rng.Int63n(int64(window)))
					if opts.Probe != nil {
						opts.Probe.Add(obs.CounterExchBackoffs, 1)
						opts.Probe.Add(obs.CounterExchBackoffNs, int64(wait))
					}
					backoffTimer.Reset(wait)
				backingOff:
					for {
						select {
						case <-ctx.Done():
							windDown()
							return
						case req := <-inbox:
							serve(req)
						case <-backoffTimer.C:
							break backingOff
						}
					}
				}
			}
		}(a)
	}

	// Quiescence detector: sleeps until an agent adopts a new state (or
	// the op budget runs out), re-examines the board exactly then, and
	// cancels the run at apparent convergence. The final verdict below is
	// still computed from the authoritative post-join states, so the
	// detector only decides WHEN to stop, never WHAT the answer is.
	done := make(chan struct{})
	checks := 0
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			case <-budgetOut:
				cancel()
				return
			case <-progress:
			}
			checks++
			if reached() {
				cancel()
				return
			}
		}
	}()

	wg.Wait()
	<-done

	res.Final = finals
	res.Ops = int(opCount)
	res.ProperSteps = int(properCount)
	res.QuiescenceChecks = checks
	for _, r := range rejections {
		res.Rejections += r
	}
	for _, l := range lost {
		res.Lost += l
	}
	finalM := ms.New(cmp, finals...)
	res.Converged = conv.Observe(res.Ops, finalM)
	mon.ObserveQuiescence(finalM)
	res.Violations = mon.Violations()
	res.Elapsed = time.Duration(clk.Now() - startNs)
	return res, nil
}
